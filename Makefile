# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short bench experiments results examples vet fmt cover race check

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency-heavy packages under the race detector: the parallel
# experiment runner and the pipeline it drives.
race:
	$(GO) test -race ./internal/harness ./internal/cpu

# The full pre-commit gate.
check: build vet test race

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

cover:
	$(GO) test -cover ./internal/...

# Every table and figure of the paper, as testing.B benchmarks.
bench:
	$(GO) test -bench=. -benchmem ./...

# Every table and figure, as readable text tables.
experiments:
	$(GO) run ./cmd/experiments -experiment all

# Regenerate the archived experiment output.
results:
	$(GO) run ./cmd/experiments -experiment all | tee docs/RESULTS.txt

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ropdefense
	$(GO) run ./examples/jitrop
	$(GO) run ./examples/cachestudy
	$(GO) run ./examples/rerandomize
	$(GO) run ./examples/multicore
