# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test test-short bench bench-pipeline bench-pipeline-record bench-check bench-fault bench-attack bench-service bench-multicore bench-realbin experiments results examples vet fmt fmtcheck cover race check trace serve serve-fleet serve-smoke faults fault-smoke attacks attack-smoke multicore realbin

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

# The concurrency-heavy packages under the race detector: the parallel
# experiment runner, the pipeline it drives (including the block-cache
# differential and fuzz-corpus tests), the functional core the block
# executor calls into, the shared trace cache, the versioned wire format,
# the vcfrd job queue / worker pool, and the sharded fault-injection
# campaign runner, and the sharded adversary-in-the-loop attack campaign,
# the sharded multi-tenant interference campaign, the fleet coordinator, and
# the content-addressed artifact store.
race:
	$(GO) test -race ./internal/harness ./internal/cpu ./internal/emu ./internal/trace ./internal/results ./internal/server ./internal/fault ./internal/attack ./internal/multicore ./internal/fleet ./internal/artifact

# The full pre-commit gate. `test` runs every fuzz corpus as seeds
# (including the ELF-parser and RV64-decoder corpora under
# internal/realbin/testdata/fuzz); `realbin` additionally verifies the
# checked-in fixture binaries against their generator and SHA-256 pins.
check: build vet fmtcheck test race realbin

# The real-binary front end's own wall: verify the checked-in ELF fixtures
# (generator-identical + pin-clean), then run the parser/decoder/lifter
# tests and fuzz seeds.
realbin:
	./scripts/realbin_fixtures.sh
	$(GO) test ./internal/realbin/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fail if any file is not gofmt-clean (the CI variant of fmt).
fmtcheck:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

cover:
	$(GO) test -cover ./internal/...

# Every table and figure of the paper, as testing.B benchmarks, plus the
# archived pipeline baseline (BENCH_pipeline.json).
bench: bench-pipeline
	$(GO) test -bench=. -benchmem ./...

# The fig13+fig14 DRC-sweep acceptance benchmark, guarded against the
# budget archived in BENCH_pipeline.json: fail on a >15% ns/instr
# regression, re-pin the file when the fresh numbers are faster.
bench-pipeline: bench-check

bench-check:
	./scripts/bench_check.sh

# Unconditionally re-record BENCH_pipeline.json (first pin on a new
# machine, or after an accepted regression).
bench-pipeline-record:
	./scripts/bench_pipeline.sh

# Campaign throughput (injections/s), archived as BENCH_fault.json.
bench-fault:
	./scripts/bench_fault.sh

# Attack-evaluation throughput (chains/s, fires/s), archived as
# BENCH_attack.json.
bench-attack:
	./scripts/bench_attack.sh

# Service-level load benchmark (cmd/vcfrload) against a single vcfrd and a
# 1-coordinator + 2-worker fleet, archived as BENCH_service.json.
bench-service:
	./scripts/bench_service.sh

# Scheduled-cluster throughput (ns/instr), archived as BENCH_multicore.json
# and held within 1.5x of the single-core execute budget.
bench-multicore:
	./scripts/bench_multicore.sh

# Real-binary front-end throughput (lift instrs/s, simulate ns/instr on
# lifted text), archived as BENCH_realbin.json. Non-gating.
bench-realbin:
	./scripts/bench_realbin.sh

# Every table and figure, as readable text tables.
experiments:
	$(GO) run ./cmd/experiments -experiment all

# Regenerate the archived experiment output.
results:
	$(GO) run ./cmd/experiments -experiment all | tee docs/RESULTS.txt

# Record-once/replay-many demo: capture a trace, inspect it, replay it
# against two DRC sizes (see docs/EXPERIMENTS.md).
trace:
	$(GO) run ./cmd/vxtrace record -workload h264ref -mode vcfr -instructions 120000 -o /tmp/h264ref.vxt
	$(GO) run ./cmd/vxtrace info /tmp/h264ref.vxt
	$(GO) run ./cmd/vxtrace replay /tmp/h264ref.vxt
	$(GO) run ./cmd/vxtrace replay -drc 64 /tmp/h264ref.vxt

# Run the simulation service in the foreground (SIGINT/SIGTERM drain).
serve:
	$(GO) run ./cmd/vcfrd

# Run a local fleet in the foreground: two workers on fixed ports plus a
# coordinator on :8080 that shards campaigns across them.
serve-fleet:
	$(GO) build -o /tmp/vcfrd ./cmd/vcfrd
	trap 'kill 0' INT TERM EXIT; \
	/tmp/vcfrd -addr 127.0.0.1:8081 & \
	/tmp/vcfrd -addr 127.0.0.1:8082 & \
	/tmp/vcfrd -addr 127.0.0.1:8080 -coordinator -backends http://127.0.0.1:8081,http://127.0.0.1:8082

# Boot vcfrd, exercise every endpoint, prove simulate output is
# byte-identical to vcfrsim -stats-json, and drain on SIGTERM.
serve-smoke:
	./scripts/serve_smoke.sh

# The canonical fault-injection campaign as a text coverage table.
faults:
	$(GO) run ./cmd/faultsim

# Boot vcfrd, run a campaign through POST /v1/faults, prove the stored
# envelope is byte-identical to faultsim -json, and drain on SIGTERM.
fault-smoke:
	./scripts/fault_smoke.sh

# The canonical adversary-in-the-loop campaign as a text work-factor table.
attacks:
	$(GO) run ./cmd/attacksim

# Boot vcfrd, run a campaign through POST /v1/attacks, prove the stored
# envelope is byte-identical to attacksim -json, and drain on SIGTERM.
attack-smoke:
	./scripts/attack_smoke.sh

# The canonical multi-tenant interference campaign as a text table.
multicore:
	$(GO) run ./cmd/clustersim

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ropdefense
	$(GO) run ./examples/jitrop
	$(GO) run ./examples/cachestudy
	$(GO) run ./examples/rerandomize
	$(GO) run ./examples/multicore
