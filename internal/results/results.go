// Package results defines the one versioned wire format every VCFR entry
// point speaks: the vcfrd service, vcfrsim -stats-json, experiments
// -stats-json, and vxtrace info -json all serialize through the Envelope
// below. One schema, one marshal path — a consumer that parses the output of
// any producer parses them all, and the golden-file tests in this package
// pin the byte-level format so accidental drift fails CI instead of breaking
// downstream tooling.
package results

import (
	"encoding/json"
	"fmt"
	"io"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/stats"
)

// SchemaVersion is the wire-format version carried by every Envelope. Bump
// it on any change to the field set, field names, or number formatting of
// the types below, and regenerate the golden files (go test ./internal/results
// -update).
//
// Version history:
//
//	1 — initial run/sweep/trace envelopes.
//	2 — run rows gained `intervals` (per-window time series from
//	    cpu.Config.SampleEvery sampling), `ilr` (the rewriter statistics
//	    that were previously only in CLI text output), and `emu` (software
//	    emulation counters, set by emulated-ILR runs); cpu.Config gained
//	    SampleEvery. Purely additive: every v1 document is a valid v2
//	    document with those fields absent, and Unmarshal accepts both.
//	3 — two new envelope kinds: `campaign` (fault-injection detection
//	    coverage, internal/fault) and `gadget` (the gadgetscan report,
//	    previously unversioned text-only output). Purely additive: run,
//	    sweep, and trace documents are unchanged, and Unmarshal accepts
//	    1..3.
//	4 — new envelope kind `attack` (the adversary-in-the-loop evaluation,
//	    internal/attack: static chain building, JIT-ROP disclosure work
//	    factors, and re-randomization racing). Purely additive: all prior
//	    kinds are unchanged, and Unmarshal accepts 1..4.
//	5 — new envelope kind `multicore` (the multi-tenant interference
//	    campaign, internal/multicore: cores × tenants × mode cells with
//	    per-tenant rows, per-cell cluster totals, and scheduler switch
//	    counters). Purely additive: all prior kinds are unchanged, and
//	    Unmarshal accepts 1..5.
const SchemaVersion = 5

// minSchemaVersion is the oldest version Unmarshal still accepts; every
// version in [minSchemaVersion, SchemaVersion] is additive-compatible.
const minSchemaVersion = 1

// Kind discriminates what an Envelope carries.
type Kind string

// Envelope kinds.
const (
	// KindRun is one or more single simulations of one workload (one row
	// per architecture mode), sharing a layout seed and timing config.
	KindRun Kind = "run"
	// KindSweep is a full stats sweep: every workload under every mode,
	// with per-cell derived seeds.
	KindSweep Kind = "sweep"
	// KindTrace describes a captured execution trace file.
	KindTrace Kind = "trace"
	// KindCampaign is a fault-injection campaign's detection-coverage
	// table (schema v3; see internal/fault).
	KindCampaign Kind = "campaign"
	// KindGadget is a gadget-pool scan report (schema v3; the versioned
	// form of cmd/gadgetscan's output).
	KindGadget Kind = "gadget"
	// KindAttack is an attack campaign's work-factor table (schema v4; see
	// internal/attack).
	KindAttack Kind = "attack"
	// KindMulticore is a multi-tenant interference campaign's table (schema
	// v5; see internal/multicore).
	KindMulticore Kind = "multicore"
)

// Envelope is the single top-level object every producer emits. Exactly one
// of Run, Sweep, Trace, Campaign, Gadget, Attack, Multicore is populated,
// selected by Kind.
type Envelope struct {
	SchemaVersion int           `json:"schema_version"`
	Kind          Kind          `json:"kind"`
	Run           []Run         `json:"run,omitempty"`
	Sweep         *Sweep        `json:"sweep,omitempty"`
	Trace         *Trace        `json:"trace,omitempty"`
	Campaign      *Campaign     `json:"campaign,omitempty"`
	Gadget        *GadgetReport `json:"gadget,omitempty"`
	Attack        *Attack       `json:"attack,omitempty"`
	Multicore     *Multicore    `json:"multicore,omitempty"`
}

// Run is one (workload, mode) simulation's complete output: the exact
// machine configuration that produced it plus the full Result with every
// cache, DRAM, DRC, and predictor counter. A failed or cancelled run carries
// its error in Error and a zero Result.
type Run struct {
	Workload string     `json:"workload"`
	Mode     string     `json:"mode"`
	Seed     int64      `json:"seed"`
	Config   cpu.Config `json:"config"`
	Result   cpu.Result `json:"result"`
	// Ilr carries the rewriter statistics for the layout this run executed
	// (schema v2; absent under ModeBaseline, which runs the original binary).
	Ilr *ilr.Stats `json:"ilr,omitempty"`
	// Emu carries software-emulation counters for emulated-ILR runs
	// (schema v2; absent for pipeline-driven runs).
	Emu *emu.Stats `json:"emu,omitempty"`
	// Intervals is the per-window time series sampled every
	// cpu.Config.SampleEvery instructions (schema v2; absent when sampling
	// is off).
	Intervals []Interval `json:"intervals,omitempty"`
	Error     string     `json:"error,omitempty"`
}

// Failed reports whether the run errored instead of completing.
func (r Run) Failed() bool { return r.Error != "" }

// Sweep is a multi-workload stats sweep. Partial is set when any row failed
// or the sweep was cancelled mid-flight: the rows that did finish are
// present and valid, failed cells appear as error rows.
type Sweep struct {
	Rows    []Run `json:"rows"`
	Partial bool  `json:"partial,omitempty"`
}

// Trace describes one captured execution trace (the machine-readable
// counterpart of vxtrace info).
type Trace struct {
	Workload     string `json:"workload"`
	Mode         string `json:"mode"`
	LayoutSeed   int64  `json:"layout_seed"`
	Spread       int    `json:"spread"`
	Scale        int    `json:"scale"`
	ImageHash    string `json:"image_hash"` // %#016x, matching vxtrace info
	MaxInsts     uint64 `json:"max_insts"`  // capture cap; 0 = to completion
	Records      int    `json:"records"`
	UniqueInsts  int    `json:"unique_insts"`
	Halted       bool   `json:"halted"`
	ExitCode     uint32 `json:"exit_code"`
	OutputBytes  int    `json:"output_bytes"`
	EncodedBytes int64  `json:"encoded_bytes,omitempty"` // on-disk size, if known
}

// NewRun wraps single-simulation rows in a versioned envelope.
func NewRun(rows ...Run) Envelope {
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindRun, Run: rows}
}

// NewSweep wraps a stats sweep in a versioned envelope. Partial is derived
// from the rows themselves: any error row marks the sweep partial.
func NewSweep(rows []Run) Envelope {
	s := &Sweep{Rows: rows}
	for _, r := range rows {
		if r.Failed() {
			s.Partial = true
			break
		}
	}
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindSweep, Sweep: s}
}

// NewTrace wraps a trace description in a versioned envelope.
func NewTrace(t Trace) Envelope {
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindTrace, Trace: &t}
}

// Campaign is one fault-injection campaign's detection-coverage table
// (schema v3). The header pins every input that shaped the campaign, so a
// consumer can re-run it bit-identically; Rows come in the fixed
// (workload, mode, fault) order the campaign planner emits.
type Campaign struct {
	Seed       int64    `json:"seed"`
	Scale      int      `json:"scale"`
	Spread     int      `json:"spread"`
	MaxInsts   uint64   `json:"max_insts"`  // reference-run instruction cap
	Injections int      `json:"injections"` // per (workload, mode) cell
	Bits       int      `json:"bits"`       // bits flipped per injection
	Workloads  []string `json:"workloads"`
	Modes      []string `json:"modes"`
	Faults     []string `json:"faults"` // fault-model kinds injected

	Rows   []CampaignRow  `json:"rows"`
	Totals CampaignCounts `json:"totals"`
	// Partial is set when any row failed or the campaign was cancelled
	// mid-flight; finished rows keep their counts.
	Partial bool `json:"partial,omitempty"`
}

// CampaignRow is one (workload, mode, fault kind) line of the coverage
// table.
type CampaignRow struct {
	Workload      string         `json:"workload"`
	Mode          string         `json:"mode"`
	Fault         string         `json:"fault"`
	Outcomes      CampaignCounts `json:"outcomes"`
	DetectionRate float64        `json:"detection_rate"`
	Error         string         `json:"error,omitempty"`
}

// CampaignCounts is the outcome-taxonomy histogram of a row (or of the
// whole campaign, in Campaign.Totals).
type CampaignCounts struct {
	Injected            uint64 `json:"injected"`
	DetectedUnmappedRPC uint64 `json:"detected_unmapped_rpc"`
	DetectedIllegal     uint64 `json:"detected_illegal_instruction"`
	Crashes             uint64 `json:"crashes"`
	SDC                 uint64 `json:"silent_data_corruption"`
	Masked              uint64 `json:"masked"`
	Hangs               uint64 `json:"hangs"`
}

// NewCampaign wraps a coverage table in a versioned envelope. Partial is
// derived from the rows: any error row marks the campaign partial.
func NewCampaign(c Campaign) Envelope {
	for _, r := range c.Rows {
		if r.Error != "" {
			c.Partial = true
			break
		}
	}
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindCampaign, Campaign: &c}
}

// GadgetReport is a gadget-pool scan (schema v3): the pool census of one
// image and which payload templates it supports, plus — when the scan also
// randomized — the surviving pool.
type GadgetReport struct {
	Image    string `json:"image"`
	MaxInsts int    `json:"max_insts"` // max gadget body length scanned for
	Total    int    `json:"total"`
	Unique   int    `json:"unique"`
	// Census counts gadgets per capability kind; Payloads reports which
	// attack templates assemble from the pool. Both marshal with sorted
	// keys (encoding/json), keeping the wire form deterministic.
	Census     map[string]int    `json:"census"`
	Payloads   map[string]bool   `json:"payloads"`
	Randomized *GadgetRandomized `json:"randomized,omitempty"`
}

// GadgetRandomized describes the pool surviving one randomized layout.
type GadgetRandomized struct {
	Seed        int64           `json:"seed"`
	Survivors   int             `json:"survivors"`
	RemovalRate float64         `json:"removal_rate"`
	Payloads    map[string]bool `json:"payloads"`
}

// NewGadget wraps a gadget scan in a versioned envelope.
func NewGadget(g GadgetReport) Envelope {
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindGadget, Gadget: &g}
}

// Attack is one adversary-in-the-loop campaign's work-factor table (schema
// v4). The header pins every input that shaped the campaign, so a consumer
// can re-run it bit-identically; Rows come in the fixed (workload, mode,
// payload) order the campaign planner emits.
type Attack struct {
	Seed         int64    `json:"seed"`
	Scale        int      `json:"scale"`
	Spread       int      `json:"spread"`
	MaxInsts     uint64   `json:"max_insts"`     // per-fired-run instruction cap
	LeakBudget   int      `json:"leak_budget"`   // canonical disclosure allowance B0
	MaxLeaks     int      `json:"max_leaks"`     // exploration horizon; 0 = per-cell auto
	RerandEvery  int      `json:"rerand_every"`  // re-randomization period, leak ops
	AdvanceInsts uint64   `json:"advance_insts"` // victim instructions per leak op
	Workloads    []string `json:"workloads"`
	Modes        []string `json:"modes"`
	Payloads     []string `json:"payloads"`

	Rows      []AttackRow         `json:"rows"`
	Summaries []AttackModeSummary `json:"summaries"`
	Totals    AttackCounts        `json:"totals"`
	// Partial is set when any row failed or the campaign was cancelled
	// mid-flight; finished rows keep their results.
	Partial bool `json:"partial,omitempty"`
}

// AttackRow is one (workload, mode, payload) cell of the work-factor table.
type AttackRow struct {
	Workload string           `json:"workload"`
	Mode     string           `json:"mode"`
	Payload  string           `json:"payload"`
	Static   AttackStatic     `json:"static"`
	Plain    AttackDisclosure `json:"plain"`
	// Rerand is the disclosure arm raced against periodic re-randomization;
	// absent under baseline.
	Rerand *AttackDisclosure `json:"rerand,omitempty"`
	Error  string            `json:"error,omitempty"`
}

// AttackStatic is a cell's full-knowledge phase: the pool an attacker with
// the program binary compiles against before leaking anything.
type AttackStatic struct {
	PoolSize int    `json:"pool_size"`
	Built    bool   `json:"built"`
	ChainLen int    `json:"chain_len"`
	Outcome  string `json:"outcome"`
}

// AttackDisclosure is one JIT-ROP arm's work factor: the leak ops spent and
// what they bought.
type AttackDisclosure struct {
	Success      bool   `json:"success"`
	WithinBudget bool   `json:"within_budget"`
	Leaks        int    `json:"leaks"`
	CodePages    int    `json:"code_pages"`
	MapPages     int    `json:"map_pages"`
	ChainsBuilt  int    `json:"chains_built"`
	ChainsFired  int    `json:"chains_fired"`
	Blocked      int    `json:"blocked"`
	Epochs       int    `json:"epochs"`
	Outcome      string `json:"outcome"`
}

// AttackModeSummary is one mode's aggregate over the campaign's cells — the
// ordering the paper's security claim ranks (baseline > naive-ILR >= VCFR).
type AttackModeSummary struct {
	Mode            string  `json:"mode"`
	Cells           int     `json:"cells"`
	StaticSuccesses int     `json:"static_successes"`
	Successes       int     `json:"successes"`
	WithinBudget    int     `json:"within_budget"`
	SuccessRate     float64 `json:"success_rate"`
	MeanLeaks       float64 `json:"mean_leaks"`
	RerandSuccesses int     `json:"rerand_successes"`
	MeanRerandLeaks float64 `json:"mean_rerand_leaks"`
}

// AttackCounts is the attacker-activity histogram of the whole campaign.
type AttackCounts struct {
	ChainsBuilt      uint64 `json:"chains_built"`
	ChainsFired      uint64 `json:"chains_fired"`
	Successes        uint64 `json:"successes"`
	BlockedRPC       uint64 `json:"blocked_unmapped_rpc"`
	BlockedIllegal   uint64 `json:"blocked_illegal_instruction"`
	Crashes          uint64 `json:"crashes"`
	NoEffect         uint64 `json:"no_effect"`
	Leaks            uint64 `json:"leaks"`
	CodePages        uint64 `json:"code_pages"`
	MapPages         uint64 `json:"map_pages"`
	Rerandomizations uint64 `json:"rerandomizations"`
}

// NewAttack wraps a work-factor table in a versioned envelope. Partial is
// derived from the rows: any error row marks the campaign partial.
func NewAttack(a Attack) Envelope {
	for _, r := range a.Rows {
		if r.Error != "" {
			a.Partial = true
			break
		}
	}
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindAttack, Attack: &a}
}

// Multicore is one multi-tenant interference campaign's table (schema v5).
// The header pins every input that shaped the campaign, so a consumer can
// re-run it bit-identically; Rows come in the fixed (cell, mode, tenant)
// order the campaign planner emits, one row per tenant process plus a solo
// reference row per (workload instance, mode).
type Multicore struct {
	Seed     int64  `json:"seed"`
	Scale    int    `json:"scale"`
	Spread   int    `json:"spread"`
	MaxInsts uint64 `json:"max_insts"` // per-tenant instruction cap
	Quantum  uint64 `json:"quantum"`   // scheduler time slice, instructions
	// Workloads is the tenant pool: tenant i of a cell runs workload
	// instance i%len(Workloads), epoch i/len(Workloads).
	Workloads []string `json:"workloads"`
	Modes     []string `json:"modes"`
	Cells     []string `json:"cells"` // cores×tenants grid, e.g. "2c4t"

	Rows      []MulticoreRow         `json:"rows"`
	Summaries []MulticoreModeSummary `json:"summaries"`
	Totals    []MulticoreTotal       `json:"totals"` // one per (cell, mode), plan order
	// Partial is set when any row failed or the campaign was cancelled
	// mid-flight; finished rows keep their counters.
	Partial bool `json:"partial,omitempty"`
}

// MulticoreRow is one tenant process of one (cell, mode) cluster run. Solo
// reference rows carry cell "solo" and leave the interference fields zero.
type MulticoreRow struct {
	Cell         string  `json:"cell"`
	Cores        int     `json:"cores"`
	Tenants      int     `json:"tenants"`
	Mode         string  `json:"mode"`
	Tenant       int     `json:"tenant"` // tenant index within the cell
	Core         int     `json:"core"`   // core the tenant is pinned to
	Workload     string  `json:"workload"`
	Epoch        int     `json:"epoch"` // randomization epoch of this instance
	Seed         int64   `json:"seed"`  // derived layout seed of this instance
	Instructions uint64  `json:"instructions"`
	Cycles       uint64  `json:"cycles"`
	IPC          float64 `json:"ipc"`
	// SoloIPC is this workload instance's IPC alone on one core under the
	// same mode; Slowdown is SoloIPC/IPC — the co-run degradation factor
	// (1.0 = no interference). Zero on the solo reference rows themselves.
	SoloIPC     float64 `json:"solo_ipc,omitempty"`
	Slowdown    float64 `json:"slowdown,omitempty"`
	DRCFlushes  uint64  `json:"drc_flushes"`
	DRCMissRate float64 `json:"drc_miss_rate"`
	Error       string  `json:"error,omitempty"`
}

// MulticoreTotal aggregates one (cell, mode) cluster run: makespan timing,
// scheduler activity, and the shared-L2 view all tenants contend in.
type MulticoreTotal struct {
	Cell         string  `json:"cell"`
	Mode         string  `json:"mode"`
	Instructions uint64  `json:"instructions"` // sum over tenants
	Cycles       uint64  `json:"cycles"`       // makespan: max core cycles
	IPC          float64 `json:"ipc"`          // throughput: instructions/makespan
	Quanta       uint64  `json:"quanta"`
	Switches     uint64  `json:"switches"`
	Preemptions  uint64  `json:"preemptions"`
	BlockDrops   uint64  `json:"block_drops"`
	DRCFlushes   uint64  `json:"drc_flushes"`
	L2Accesses   uint64  `json:"l2_accesses"`
	L2MissRate   float64 `json:"l2_miss_rate"`
	MeanSlowdown float64 `json:"mean_slowdown,omitempty"` // geomean over tenants
}

// MulticoreModeSummary is one mode's aggregate over every co-run cell — the
// ordering the paper's consolidation claim ranks: VCFR's co-run degradation
// tracks baseline while naive ILR pays extra for its scattered footprint in
// the shared L2.
type MulticoreModeSummary struct {
	Mode         string  `json:"mode"`
	Rows         int     `json:"rows"` // co-run tenant rows aggregated
	MeanSlowdown float64 `json:"mean_slowdown"`
	MaxSlowdown  float64 `json:"max_slowdown"`
	Switches     uint64  `json:"switches"`
	DRCFlushes   uint64  `json:"drc_flushes"`
}

// NewMulticore wraps an interference table in a versioned envelope. Partial
// is derived from the rows: any error row marks the campaign partial.
func NewMulticore(m Multicore) Envelope {
	for _, r := range m.Rows {
		if r.Error != "" {
			m.Partial = true
			break
		}
	}
	return Envelope{SchemaVersion: SchemaVersion, Kind: KindMulticore, Multicore: &m}
}

// Marshal is the one serialization path: two-space-indented JSON with a
// trailing newline. Every producer must emit exactly these bytes, which is
// what makes service responses and CLI output byte-comparable.
func Marshal(e Envelope) ([]byte, error) {
	b, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("results: %w", err)
	}
	return append(b, '\n'), nil
}

// Write marshals e and writes it to w.
func Write(w io.Writer, e Envelope) error {
	b, err := Marshal(e)
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Unmarshal parses an envelope and rejects schema versions this package
// does not understand.
func Unmarshal(data []byte) (Envelope, error) {
	var e Envelope
	if err := json.Unmarshal(data, &e); err != nil {
		return Envelope{}, fmt.Errorf("results: %w", err)
	}
	if e.SchemaVersion < minSchemaVersion || e.SchemaVersion > SchemaVersion {
		return Envelope{}, fmt.Errorf("results: schema version %d, want %d..%d",
			e.SchemaVersion, minSchemaVersion, SchemaVersion)
	}
	return e, nil
}

// Interval is one sampling window of a run: cumulative counters at the
// window's end plus the per-window rates the paper's phase plots need. It is
// derived purely from spine snapshots (MakeIntervals) — no field here is
// copied from a stat struct by hand.
type Interval struct {
	// Instructions and Cycles are cumulative at the window's end.
	Instructions uint64 `json:"instructions"`
	Cycles       uint64 `json:"cycles"`
	// WindowInstructions/WindowCycles are this window's increments.
	WindowInstructions uint64 `json:"window_instructions"`
	WindowCycles       uint64 `json:"window_cycles"`
	// IPC is the window's instructions per cycle.
	IPC float64 `json:"ipc"`
	// IL1MissRate and DL1MissRate are the window's demand miss rates.
	IL1MissRate float64 `json:"il1_miss_rate"`
	DL1MissRate float64 `json:"dl1_miss_rate"`
	// DRCMissRate is the window's DRC miss rate (0 outside VCFR).
	DRCMissRate float64 `json:"drc_miss_rate"`
	// DRCStall and FetchStall are the window's stall-cycle increments.
	DRCStall   uint64 `json:"drc_stall"`
	FetchStall uint64 `json:"fetch_stall"`
}

// MakeIntervals turns a run's cumulative spine snapshots
// (cpu.Result.Intervals) into the per-window wire series. The first window
// is measured against zeroed counters; a registry missing a name (no drc.*
// outside VCFR) contributes zeros for it.
func MakeIntervals(snaps []stats.Snapshot) []Interval {
	if len(snaps) == 0 {
		return nil
	}
	get := func(s stats.Snapshot, key string) uint64 {
		v, _ := s.Uint(key)
		return v
	}
	rate := func(num, den uint64) float64 {
		if den == 0 {
			return 0
		}
		return float64(num) / float64(den)
	}
	out := make([]Interval, len(snaps))
	var prev stats.Snapshot
	havePrev := false
	for i, s := range snaps {
		win := s
		if havePrev {
			d, err := s.Delta(prev)
			if err == nil {
				win = d
			}
		}
		insts := get(win, "cpu.instructions")
		cycles := get(win, "cpu.cycles")
		out[i] = Interval{
			Instructions:       get(s, "cpu.instructions"),
			Cycles:             get(s, "cpu.cycles"),
			WindowInstructions: insts,
			WindowCycles:       cycles,
			IPC:                rate(insts, cycles),
			IL1MissRate:        rate(get(win, "mem.il1.misses"), get(win, "mem.il1.accesses")),
			DL1MissRate:        rate(get(win, "mem.dl1.misses"), get(win, "mem.dl1.accesses")),
			DRCMissRate:        rate(get(win, "drc.misses"), get(win, "drc.lookups")),
			DRCStall:           get(win, "cpu.stall.drc"),
			FetchStall:         get(win, "cpu.stall.fetch"),
		}
		prev, havePrev = s, true
	}
	return out
}
