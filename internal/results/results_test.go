package results

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixtures builds one deterministic envelope per kind. The values are
// synthetic but structurally complete, so the goldens pin every field the
// wire format carries — including the full cpu.Config / cpu.Result shape.
func fixtures() map[string]Envelope {
	cfg := cpu.DefaultConfig(cpu.ModeVCFR)
	var res cpu.Result
	res.Stats.Instructions = 120000
	res.Stats.Cycles = 180000
	res.IL1.Accesses = 120000
	res.IL1.Misses = 420
	res.DRC.Lookups = 9000
	res.DRC.RandLookups = 8800
	res.Out = []byte("ok\n")
	res.Halted = true

	run := Run{
		Workload: "h264ref",
		Mode:     "vcfr",
		Seed:     42,
		Config:   cfg,
		Result:   res,
		// Schema v2 extras: the rewriter statistics for the layout this run
		// executed and a two-window interval series.
		Ilr: &ilr.Stats{
			Instructions:    812,
			CodeRelocs:      340,
			DataRelocs:      12,
			CallsRandomized: 96,
			CallsPlain:      4,
			EntropyBits:     9.67,
			TableBytes:      6496,
		},
		Intervals: []Interval{
			{Instructions: 60000, Cycles: 91000, WindowInstructions: 60000,
				WindowCycles: 91000, IPC: 0.6593, IL1MissRate: 0.0041, DRCMissRate: 0.012,
				DRCStall: 800, FetchStall: 4100},
			{Instructions: 120000, Cycles: 180000, WindowInstructions: 60000,
				WindowCycles: 89000, IPC: 0.6742, IL1MissRate: 0.0029, DRCMissRate: 0.008,
				DRCStall: 610, FetchStall: 3900},
		},
	}
	emulated := Run{
		Workload: "h264ref",
		Mode:     "emulated-ilr",
		Seed:     42,
		Emu: &emu.Stats{
			Instructions: 120000,
			Taken:        14200,
			Calls:        1800,
			Rets:         1800,
			IndirectCF:   1810,
			Loads:        31000,
			Stores:       18000,
			Syscalls:     3,
			HostCycles:   410000,
		},
	}
	failed := Run{Workload: "lbm", Mode: "", Seed: 42, Error: "context deadline exceeded"}

	campaign := Campaign{
		Seed:       42,
		Scale:      1,
		Spread:     8,
		MaxInsts:   25000,
		Injections: 120,
		Bits:       1,
		Workloads:  []string{"bzip2", "sjeng"},
		Modes:      []string{"baseline", "vcfr"},
		Faults:     []string{"branch-target", "opcode"},
		Rows: []CampaignRow{
			{Workload: "bzip2", Mode: "baseline", Fault: "branch-target",
				Outcomes: CampaignCounts{Injected: 60, DetectedIllegal: 41, Crashes: 9,
					SDC: 6, Masked: 3, Hangs: 1}, DetectionRate: 0.6833},
			{Workload: "bzip2", Mode: "vcfr", Fault: "branch-target",
				Outcomes: CampaignCounts{Injected: 60, DetectedUnmappedRPC: 52,
					DetectedIllegal: 5, Crashes: 2, Masked: 1}, DetectionRate: 0.95},
			{Workload: "sjeng", Mode: "vcfr", Fault: "opcode",
				Error: "context deadline exceeded"},
		},
		Totals: CampaignCounts{Injected: 120, DetectedUnmappedRPC: 52,
			DetectedIllegal: 46, Crashes: 11, SDC: 6, Masked: 4, Hangs: 1},
	}
	gadgetRep := GadgetReport{
		Image:    "xalan",
		MaxInsts: 5,
		Total:    2801,
		Unique:   211,
		Census:   map[string]int{"arith": 1357, "bare-ret": 603, "jop": 1314},
		Payloads: map[string]bool{"exfiltrate": true, "print-and-exit": true},
		Randomized: &GadgetRandomized{
			Seed:        7,
			Survivors:   141,
			RemovalRate: 0.9497,
			Payloads:    map[string]bool{"exfiltrate": false, "print-and-exit": false},
		},
	}

	attackRep := Attack{
		Seed:         42,
		Scale:        1,
		Spread:       8,
		MaxInsts:     25000,
		LeakBudget:   16,
		RerandEvery:  5,
		AdvanceInsts: 2000,
		Workloads:    []string{"bzip2"},
		Modes:        []string{"baseline", "naive-ilr", "vcfr"},
		Payloads:     []string{"print-and-exit"},
		Rows: []AttackRow{
			{Workload: "bzip2", Mode: "baseline", Payload: "print-and-exit",
				Static: AttackStatic{PoolSize: 44, Built: true, ChainLen: 9, Outcome: "success"},
				Plain: AttackDisclosure{Success: true, WithinBudget: true, Leaks: 1,
					CodePages: 1, ChainsBuilt: 1, ChainsFired: 1, Outcome: "success"}},
			{Workload: "bzip2", Mode: "naive-ilr", Payload: "print-and-exit",
				Static: AttackStatic{PoolSize: 24, Built: true, ChainLen: 9, Outcome: "success"},
				Plain: AttackDisclosure{Success: true, WithinBudget: true, Leaks: 12,
					CodePages: 6, MapPages: 1, ChainsBuilt: 3, ChainsFired: 3, Outcome: "success"},
				Rerand: &AttackDisclosure{Success: true, Leaks: 77, CodePages: 61,
					MapPages: 16, ChainsBuilt: 9, ChainsFired: 9, Epochs: 15, Outcome: "success"}},
			{Workload: "bzip2", Mode: "vcfr", Payload: "print-and-exit",
				Static: AttackStatic{PoolSize: 41, Built: true, ChainLen: 9, Outcome: "blocked-unmapped-rpc"},
				Plain: AttackDisclosure{Leaks: 1, CodePages: 1, ChainsBuilt: 1,
					ChainsFired: 1, Blocked: 1, Outcome: "blocked-unmapped-rpc"},
				Rerand: &AttackDisclosure{Leaks: 8, CodePages: 8, ChainsBuilt: 1,
					ChainsFired: 1, Blocked: 1, Epochs: 7, Outcome: "blocked-unmapped-rpc"}},
		},
		Summaries: []AttackModeSummary{
			{Mode: "baseline", Cells: 1, StaticSuccesses: 1, Successes: 1, WithinBudget: 1,
				SuccessRate: 1, MeanLeaks: 1},
			{Mode: "naive-ilr", Cells: 1, StaticSuccesses: 1, Successes: 1, WithinBudget: 1,
				SuccessRate: 1, MeanLeaks: 12, RerandSuccesses: 1, MeanRerandLeaks: 77},
			{Mode: "vcfr", Cells: 1},
		},
		Totals: AttackCounts{ChainsBuilt: 16, ChainsFired: 16, Successes: 8, BlockedRPC: 2,
			NoEffect: 6, Leaks: 99, CodePages: 77, MapPages: 17, Rerandomizations: 22},
	}

	multicoreRep := Multicore{
		Seed:      42,
		Scale:     1,
		Spread:    8,
		MaxInsts:  25000,
		Quantum:   10000,
		Workloads: []string{"bzip2", "sjeng"},
		Modes:     []string{"baseline", "naive-ilr", "vcfr"},
		Cells:     []string{"2c2t", "1c2t"},
		Rows: []MulticoreRow{
			{Cell: "solo", Cores: 1, Tenants: 1, Mode: "vcfr", Tenant: 0, Core: 0,
				Workload: "bzip2", Epoch: 0, Seed: 811, Instructions: 25000,
				Cycles: 38000, IPC: 0.6579, DRCMissRate: 0.012},
			{Cell: "2c2t", Cores: 2, Tenants: 2, Mode: "vcfr", Tenant: 0, Core: 0,
				Workload: "bzip2", Epoch: 0, Seed: 811, Instructions: 25000,
				Cycles: 39100, IPC: 0.6394, SoloIPC: 0.6579, Slowdown: 1.0289,
				DRCMissRate: 0.013},
			{Cell: "1c2t", Cores: 1, Tenants: 2, Mode: "vcfr", Tenant: 1, Core: 0,
				Workload: "sjeng", Epoch: 0, Seed: 913, Instructions: 25000,
				Cycles: 40800, IPC: 0.6127, SoloIPC: 0.648, Slowdown: 1.0576,
				DRCFlushes: 4, DRCMissRate: 0.019},
			{Cell: "1c2t", Cores: 1, Tenants: 2, Mode: "vcfr", Tenant: 0, Core: 0,
				Workload: "bzip2", Epoch: 0, Seed: 811,
				Error: "context deadline exceeded"},
		},
		Summaries: []MulticoreModeSummary{
			{Mode: "baseline", Rows: 4, MeanSlowdown: 1.021, MaxSlowdown: 1.044, Switches: 8},
			{Mode: "naive-ilr", Rows: 4, MeanSlowdown: 1.089, MaxSlowdown: 1.131, Switches: 8},
			{Mode: "vcfr", Rows: 4, MeanSlowdown: 1.034, MaxSlowdown: 1.058,
				Switches: 8, DRCFlushes: 8},
		},
		Totals: []MulticoreTotal{
			{Cell: "2c2t", Mode: "vcfr", Instructions: 50000, Cycles: 39500,
				IPC: 1.2658, Quanta: 6, L2Accesses: 2900, L2MissRate: 0.21,
				MeanSlowdown: 1.0301},
			{Cell: "1c2t", Mode: "vcfr", Instructions: 50000, Cycles: 81400,
				IPC: 0.6143, Quanta: 6, Switches: 5, Preemptions: 4, BlockDrops: 5,
				DRCFlushes: 5, L2Accesses: 3100, L2MissRate: 0.24, MeanSlowdown: 1.0511},
		},
	}

	return map[string]Envelope{
		"run":       NewRun(run, emulated),
		"sweep":     NewSweep([]Run{run, failed}),
		"campaign":  NewCampaign(campaign),
		"gadget":    NewGadget(gadgetRep),
		"attack":    NewAttack(attackRep),
		"multicore": NewMulticore(multicoreRep),
		"trace": NewTrace(Trace{
			Workload:     "h264ref",
			Mode:         "vcfr",
			LayoutSeed:   42,
			Spread:       8,
			Scale:        1,
			ImageHash:    "0x00000deadbeef123",
			MaxInsts:     120000,
			Records:      120000,
			UniqueInsts:  812,
			Halted:       false,
			ExitCode:     0,
			OutputBytes:  3,
			EncodedBytes: 151234,
		}),
	}
}

// TestGolden pins the wire format byte for byte. Any change to the schema —
// field set, names, ordering, indentation — must bump SchemaVersion and
// regenerate these files with -update.
func TestGolden(t *testing.T) {
	for name, env := range fixtures() {
		t.Run(name, func(t *testing.T) {
			got, err := Marshal(env)
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("wire format drifted from %s:\n--- got ---\n%s\n--- want ---\n%s",
					path, got, want)
			}
		})
	}
}

// TestRoundTrip proves Marshal/Unmarshal are inverses and the schema gate
// rejects foreign versions.
func TestRoundTrip(t *testing.T) {
	for name, env := range fixtures() {
		b, err := Marshal(env)
		if err != nil {
			t.Fatal(err)
		}
		back, err := Unmarshal(b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b2, err := Marshal(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(b, b2) {
			t.Errorf("%s: round trip not stable", name)
		}
	}
	if _, err := Unmarshal([]byte(`{"schema_version": 999, "kind": "run"}`)); err == nil {
		t.Error("foreign schema version accepted")
	}
}

// TestSweepPartial locks the partial-derivation rule: any error row marks
// the sweep partial, none means complete.
func TestSweepPartial(t *testing.T) {
	ok := NewSweep([]Run{{Workload: "a"}})
	if ok.Sweep.Partial {
		t.Error("clean sweep marked partial")
	}
	bad := NewSweep([]Run{{Workload: "a"}, {Workload: "b", Error: "boom"}})
	if !bad.Sweep.Partial {
		t.Error("sweep with error row not marked partial")
	}
}

// TestAttackPartial locks the same derivation rule for attack campaigns.
func TestAttackPartial(t *testing.T) {
	ok := NewAttack(Attack{Rows: []AttackRow{{Workload: "a"}}})
	if ok.Attack.Partial {
		t.Error("clean attack campaign marked partial")
	}
	bad := NewAttack(Attack{Rows: []AttackRow{{Workload: "a"}, {Workload: "b", Error: "boom"}}})
	if !bad.Attack.Partial {
		t.Error("attack campaign with error row not marked partial")
	}
}

// TestMulticorePartial locks the same derivation rule for multicore
// campaigns.
func TestMulticorePartial(t *testing.T) {
	ok := NewMulticore(Multicore{Rows: []MulticoreRow{{Workload: "a"}}})
	if ok.Multicore.Partial {
		t.Error("clean multicore campaign marked partial")
	}
	bad := NewMulticore(Multicore{Rows: []MulticoreRow{{Workload: "a"}, {Workload: "b", Error: "boom"}}})
	if !bad.Multicore.Partial {
		t.Error("multicore campaign with error row not marked partial")
	}
}

// TestCampaignPartial locks the same derivation rule for campaigns.
func TestCampaignPartial(t *testing.T) {
	ok := NewCampaign(Campaign{Rows: []CampaignRow{{Workload: "a"}}})
	if ok.Campaign.Partial {
		t.Error("clean campaign marked partial")
	}
	bad := NewCampaign(Campaign{Rows: []CampaignRow{{Workload: "a"}, {Workload: "b", Error: "boom"}}})
	if !bad.Campaign.Partial {
		t.Error("campaign with error row not marked partial")
	}
}
