package trace

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vcfr/internal/cpu"
)

// tinyTrace builds a minimal sealed trace for cache tests.
func tinyTrace(workload string) *Trace {
	b := NewBuilder(Meta{Workload: workload, Mode: cpu.ModeVCFR})
	var res cpu.Result
	res.Halted = true
	return b.Finish(res)
}

// TestDoSingleflight locks the double-capture fix: 8 concurrent identical
// requests must run exactly one capture, with every caller receiving the
// same trace and exactly one of them reporting leadership.
func TestDoSingleflight(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{ImageHash: 0xabc, LayoutSeed: 42, Mode: cpu.ModeVCFR, MaxInsts: 1000}

	var captures atomic.Int64
	release := make(chan struct{})
	capture := func() (*Trace, error) {
		captures.Add(1)
		<-release // hold the flight open until every goroutine has arrived
		return tinyTrace("h264ref"), nil
	}

	const n = 8
	var (
		wg      sync.WaitGroup
		started sync.WaitGroup
		mu      sync.Mutex
		traces  []*Trace
		leaders int
	)
	started.Add(n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			started.Done()
			tr, leader, err := c.Do(context.Background(), k, capture)
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			traces = append(traces, tr)
			if leader {
				leaders++
			}
			mu.Unlock()
		}()
	}
	started.Wait()
	close(release)
	wg.Wait()

	if got := captures.Load(); got != 1 {
		t.Fatalf("%d captures under %d concurrent identical requests, want exactly 1", got, n)
	}
	if leaders != 1 {
		t.Errorf("%d leaders, want 1", leaders)
	}
	for i, tr := range traces {
		if tr != traces[0] {
			t.Errorf("caller %d got a different trace pointer", i)
		}
	}
	if tr, ok := c.Get(k); !ok || tr != traces[0] {
		t.Error("captured trace not inserted into the cache")
	}
}

// TestDoCachedHit proves Do never runs capture when the trace is already
// cached.
func TestDoCachedHit(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{ImageHash: 1}
	want := tinyTrace("lbm")
	c.Put(k, want)

	got, leader, err := c.Do(context.Background(), k, func() (*Trace, error) {
		t.Fatal("capture ran despite cached trace")
		return nil, nil
	})
	if err != nil || leader || got != want {
		t.Errorf("Do(cached) = (%p, leader=%v, %v), want (%p, false, nil)", got, leader, err, want)
	}
}

// TestDoLeaderError proves a failed capture is propagated to followers, not
// cached, and does not wedge later callers.
func TestDoLeaderError(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{ImageHash: 2}
	boom := errors.New("capture failed")

	if _, _, err := c.Do(context.Background(), k, func() (*Trace, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("leader error = %v, want %v", err, boom)
	}
	if _, ok := c.Get(k); ok {
		t.Error("failed capture was cached")
	}
	// The key is not poisoned: the next Do runs a fresh capture.
	tr, leader, err := c.Do(context.Background(), k, func() (*Trace, error) { return tinyTrace("x"), nil })
	if err != nil || !leader || tr == nil {
		t.Errorf("retry after failure = (%p, leader=%v, %v), want fresh leader capture", tr, leader, err)
	}
}

// TestDoLeaderPanic proves a panicking capture cannot poison the key: the
// panic propagates to the leader, followers are released with an error
// instead of blocking forever, and the next Do runs a fresh capture.
func TestDoLeaderPanic(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{ImageHash: 3}

	inCapture := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() {
			if recover() == nil {
				t.Error("leader's panic was swallowed")
			}
		}()
		_, _, _ = c.Do(context.Background(), k, func() (*Trace, error) {
			close(inCapture)
			<-release
			panic("capture blew up")
		})
	}()

	<-inCapture
	type outcome struct {
		tr  *Trace
		err error
	}
	followerDone := make(chan outcome, 1)
	go func() {
		tr, _, err := c.Do(context.Background(), k, func() (*Trace, error) { return tinyTrace("y"), nil })
		followerDone <- outcome{tr, err}
	}()
	// Give the follower a moment to join the flight, then trip the panic.
	time.Sleep(10 * time.Millisecond)
	close(release)

	select {
	case o := <-followerDone:
		// Joined the flight → released with the panic error; raced past the
		// cleanup → led its own successful capture. Both are panic-free;
		// what must never happen is blocking forever below.
		if o.err == nil && o.tr == nil {
			t.Error("follower returned neither a trace nor an error")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower still blocked after the leader panicked: key is poisoned")
	}

	// The key is clean: the next Do leads a fresh, successful capture.
	tr, leader, err := c.Do(context.Background(), k, func() (*Trace, error) { return tinyTrace("z"), nil })
	if err != nil || !leader || tr == nil {
		t.Errorf("Do after panic = (%p, leader=%v, %v), want fresh leader capture", tr, leader, err)
	}
}

// TestDoFollowerDeadline proves a coalesced follower honors its own context
// while the leader is still capturing, instead of inheriting the leader's
// pace.
func TestDoFollowerDeadline(t *testing.T) {
	c := NewCache(1 << 20)
	k := Key{ImageHash: 4}

	inCapture := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = c.Do(context.Background(), k, func() (*Trace, error) {
			close(inCapture)
			<-release
			return tinyTrace("slow"), nil
		})
	}()
	<-inCapture

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, _, err := c.Do(ctx, k, func() (*Trace, error) { return tinyTrace("never"), nil })
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Errorf("follower error = %v, want context.DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("follower ignored its deadline while coalesced behind a slow leader")
	}
}
