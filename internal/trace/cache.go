package trace

import (
	"container/list"
	"context"
	"fmt"
	"sync"

	"vcfr/internal/cpu"
)

// Key identifies one cacheable execution. ImageHash and LayoutSeed pin the
// executed image and the ILR layout; Mode and MaxInsts pin the functional
// stream (the stream differs per architecture mode — VCFR's hooks change
// pushed return addresses — and a trace only replays exactly at its capture
// cap); Aux folds in everything else that shapes the functional execution
// (rewriter options, program input), so colliding layouts with, say,
// different return-address randomization modes never share a trace.
type Key struct {
	ImageHash  uint64
	LayoutSeed int64
	Mode       cpu.Mode
	MaxInsts   uint64
	Aux        uint64
}

// Cache is a bounded, concurrency-safe LRU of captured traces, keyed by
// (image hash, layout seed) plus the stream-shaping fields above. Capacity
// is accounted in bytes (SizeBytes per trace); inserting past the bound
// evicts least-recently-used entries. A single trace larger than the whole
// bound is not admitted.
type Cache struct {
	mu      sync.Mutex
	cap     int64
	size    int64
	order   *list.List // front = most recently used; values are *centry
	entries map[Key]*list.Element
	flights map[Key]*flight // in-progress captures, for Do's singleflight
	remote  Remote          // optional second-level store; see SetRemote

	hits, misses uint64
}

// Remote is an optional second level behind the in-memory cache: a shared
// content-addressed artifact store (disk-backed or a peer vcfrd over HTTP)
// consulted on a local miss and populated after every local capture, so a
// fleet of workers records each (image, layout, mode, cap) execution once.
// Fetch returns the encoded trace bytes for k (as Trace.Bytes produced
// them) and whether the store had them; Store uploads freshly captured
// bytes. Both are called outside the cache mutex, may block on I/O, and
// must be safe for concurrent use. Errors are modeled as "not found" /
// "dropped": the store is an accelerator, never a correctness dependency.
type Remote interface {
	Fetch(k Key) (data []byte, ok bool)
	Store(k Key, data []byte)
}

// SetRemote attaches (or, with nil, detaches) the second-level store.
func (c *Cache) SetRemote(r Remote) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.remote = r
	c.mu.Unlock()
}

// flight is one in-progress capture that concurrent Do callers for the same
// key wait on instead of capturing again.
type flight struct {
	done chan struct{}
	t    *Trace
	err  error
}

type centry struct {
	key Key
	t   *Trace
}

// NewCache returns a cache bounded to maxBytes of trace data. maxBytes <= 0
// returns a cache that admits nothing (every Get misses), which callers can
// use as an "off" value without nil checks.
func NewCache(maxBytes int64) *Cache {
	return &Cache{cap: maxBytes, order: list.New(), entries: make(map[Key]*list.Element)}
}

// Get returns the cached trace for k, marking it most recently used.
func (c *Cache) Get(k Key) (*Trace, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*centry).t, true
}

// Put inserts t under k, evicting least-recently-used traces as needed to
// stay within the byte bound.
func (c *Cache) Put(k Key, t *Trace) {
	if c == nil || t == nil {
		return
	}
	sz := t.SizeBytes()
	c.mu.Lock()
	defer c.mu.Unlock()
	if sz > c.cap {
		return
	}
	if el, ok := c.entries[k]; ok {
		c.size += sz - el.Value.(*centry).t.SizeBytes()
		el.Value.(*centry).t = t
		c.order.MoveToFront(el)
	} else {
		c.entries[k] = c.order.PushFront(&centry{key: k, t: t})
		c.size += sz
	}
	for c.size > c.cap {
		el := c.order.Back()
		if el == nil {
			break
		}
		e := el.Value.(*centry)
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.size -= e.t.SizeBytes()
	}
}

// Do returns the trace for k, coalescing concurrent captures of the same
// key: a cached trace is returned immediately; otherwise the first caller
// (the leader, reported by the second return value) runs capture and the
// sealed trace is inserted and handed to every waiter. Followers that
// arrive while the leader is capturing block until it finishes and receive
// the same trace — or the leader's error, in which case they are free to
// fall back to executing themselves. A follower stops waiting when its own
// ctx expires (returning ctx.Err()), so one slow leader cannot hold a
// coalesced request past that request's deadline.
//
// This closes the double-capture race: without it, two concurrent cells
// with the same (image hash, seed, mode, cap) key would both miss Get and
// both pay a full execute-driven capture.
//
// If capture panics, the flight is unregistered and its waiters released
// with an error before the panic is re-raised to the leader, so a panic
// cannot poison the key: followers fall back, and the next Do for k runs a
// fresh capture.
//
// With a Remote attached (SetRemote), a local miss consults the shared
// store before capturing — a remote hit is inserted locally and returned
// with leader=false, and a fresh local capture is uploaded for peers.
func (c *Cache) Do(ctx context.Context, k Key, capture func() (*Trace, error)) (t *Trace, leader bool, err error) {
	if c == nil {
		t, err = capture()
		return t, true, err
	}
	c.mu.Lock()
	if el, ok := c.entries[k]; ok {
		c.hits++
		c.order.MoveToFront(el)
		t = el.Value.(*centry).t
		c.mu.Unlock()
		return t, false, nil
	}
	if f, ok := c.flights[k]; ok {
		// A capture for k is already in flight: joining it serves this
		// request without a second capture, which is a hit in every sense
		// that matters for the counters.
		c.hits++
		c.mu.Unlock()
		select {
		case <-f.done:
			return f.t, false, f.err
		case <-ctx.Done():
			// The leader keeps capturing (its own ctx governs it); this
			// follower just refuses to outwait its deadline.
			return nil, false, ctx.Err()
		}
	}
	c.misses++
	f := &flight{done: make(chan struct{})}
	if c.flights == nil {
		c.flights = make(map[Key]*flight)
	}
	c.flights[k] = f
	rem := c.remote
	c.mu.Unlock()

	fetched := false
	defer func() {
		if r := recover(); r != nil {
			f.t, f.err = nil, fmt.Errorf("trace capture panicked: %v", r)
			c.unregister(k)
			close(f.done)
			panic(r)
		}
		if f.err == nil {
			c.Put(k, f.t)
			if rem != nil && !fetched && f.t != nil {
				rem.Store(k, f.t.Bytes())
			}
		}
		c.unregister(k)
		close(f.done)
	}()
	// Before paying a capture, try the second-level store: a peer may have
	// recorded this exact execution already. A fetched trace is reported
	// with leader=false — the caller replays it like any cache hit (only a
	// genuine local capture produces the leader's live cpu.Result). A store
	// that returns garbage is simply ignored; the capture below is the
	// fallback for every remote failure mode.
	if rem != nil {
		if data, ok := rem.Fetch(k); ok {
			if t, derr := Decode(data); derr == nil {
				fetched = true
				f.t = t
				return f.t, false, nil
			}
		}
	}
	f.t, f.err = capture()
	return f.t, true, f.err
}

// unregister removes k's in-flight marker.
func (c *Cache) unregister(k Key) {
	c.mu.Lock()
	delete(c.flights, k)
	c.mu.Unlock()
}

// Drop removes k from the cache (used when a cached trace proves stale —
// e.g. a replay diverges — so the caller can fall back to execution and
// re-capture).
func (c *Cache) Drop(k Key) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		c.order.Remove(el)
		delete(c.entries, k)
		c.size -= el.Value.(*centry).t.SizeBytes()
	}
}

// Stats reports cache effectiveness counters and current occupancy.
func (c *Cache) Stats() (hits, misses uint64, bytes int64, entries int) {
	if c == nil {
		return 0, 0, 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.size, len(c.entries)
}
