package trace

import (
	"bytes"
	"testing"

	"vcfr/internal/cpu"
)

// FuzzDecode throws arbitrary bytes at the codec. Two properties must hold
// for every input: Decode never panics (corruption is always an error), and
// any input it does accept re-encodes canonically — encode→decode→encode is
// byte-identical.
func FuzzDecode(f *testing.F) {
	good := synthetic().Bytes()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte("VXTR"))
	f.Add(good[:len(good)/2])
	flipped := append([]byte(nil), good...)
	flipped[len(flipped)/3] ^= 0xff
	f.Add(flipped)
	// An empty-but-valid trace.
	f.Add(NewBuilder(Meta{}).Finish(cpu.Result{}).Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(data)
		if err != nil {
			return
		}
		enc1 := tr.Bytes()
		tr2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("re-decoding an accepted trace failed: %v", err)
		}
		if enc2 := tr2.Bytes(); !bytes.Equal(enc1, enc2) {
			t.Fatalf("encode→decode→encode not byte-identical: %d vs %d bytes", len(enc1), len(enc2))
		}
		// The record stream of an accepted trace must fully iterate.
		n := 0
		it := tr.Iter()
		for {
			if _, ok := it.Next(); !ok {
				break
			}
			n++
		}
		if n != tr.Len() {
			t.Fatalf("iterated %d records, header says %d", n, tr.Len())
		}
	})
}
