package trace_test

// Lockstep equivalence: trace-driven replay must reproduce execute-driven
// simulation bit for bit — same Stats, same cache/DRAM/DRC/bpred counters,
// same program output — for every workload and every architecture mode, and
// under every timing configuration replayed from one capture. This is the
// contract that lets the harness substitute replay for execution without
// changing a single table cell.

import (
	"bytes"
	"reflect"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/trace"
	"vcfr/internal/workloads"
)

var allModes = []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}

func equivCap(t *testing.T) uint64 {
	if testing.Short() {
		return 30_000
	}
	return 120_000
}

// capture runs app in mode execute-driven with a recorder attached.
func capture(t *testing.T, app *harness.App, mode cpu.Mode, maxInsts uint64) (*trace.Trace, cpu.Result) {
	t.Helper()
	p, _, err := app.Pipeline(mode, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, res, err := trace.Capture(p, maxInsts, trace.Meta{
		Workload: app.W.Name, Mode: mode, LayoutSeed: app.R.Opts.Seed,
		Spread: app.R.Opts.Spread, MaxInsts: maxInsts,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

// replayWith replays tr through a fresh pipeline built with mutate.
func replayWith(t *testing.T, app *harness.App, mode cpu.Mode, tr *trace.Trace,
	maxInsts uint64, mutate func(*cpu.Config)) cpu.Result {
	t.Helper()
	p, _, err := app.Pipeline(mode, mutate)
	if err != nil {
		t.Fatal(err)
	}
	res, err := trace.Replay(tr, p, maxInsts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestReplayEquivalenceAllWorkloads locks the headline acceptance property:
// for all 11 SPEC analogs under baseline, naive-ILR, and VCFR, a replayed
// run's full Result equals the execute-driven one, including after a
// save/load round trip of the trace.
func TestReplayEquivalenceAllWorkloads(t *testing.T) {
	maxInsts := equivCap(t)
	for _, name := range workloads.SpecNames {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := harness.Config{Seed: harness.CellSeed(42, "replay-equiv", name)}
			app, err := harness.Prepare(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range allModes {
				tr, want := capture(t, app, mode, maxInsts)
				if got := replayWith(t, app, mode, tr, maxInsts, nil); !reflect.DeepEqual(got, want) {
					t.Errorf("%v: replayed Result differs from execute-driven\ngot:  %+v\nwant: %+v",
						mode, got, want)
				}
				// The serialized form must replay identically too.
				loaded, err := trace.Decode(tr.Bytes())
				if err != nil {
					t.Fatalf("%v: decode: %v", mode, err)
				}
				if got := replayWith(t, app, mode, loaded, maxInsts, nil); !reflect.DeepEqual(got, want) {
					t.Errorf("%v: replay of decoded trace differs from execute-driven", mode)
				}
			}
		})
	}
}

// TestReplayAcrossTimingConfigs is the record-once/replay-many property the
// harness relies on: one capture at the default configuration replays
// bit-identically against execute-driven runs under every timing mutation
// the experiments use.
func TestReplayAcrossTimingConfigs(t *testing.T) {
	maxInsts := equivCap(t)
	mutations := []struct {
		name   string
		mutate func(*cpu.Config)
	}{
		{"drc-512", func(c *cpu.Config) { c.DRCEntries = 512 }},
		{"drc-64", func(c *cpu.Config) { c.DRCEntries = 64 }},
		{"drc-64-4way", func(c *cpu.Config) { c.DRCEntries, c.DRCAssoc = 64, 4 }},
		{"drc-split", func(c *cpu.Config) { c.DRCSplit = true }},
		{"drc2", func(c *cpu.Config) { c.DRCEntries, c.DRC2Entries = 64, 1024 }},
		{"dual-issue", func(c *cpu.Config) { c.IssueWidth = 2 }},
		{"ctxswitch-10k", func(c *cpu.Config) { c.ContextSwitchEvery = 10_000 }},
		{"predict-rpc", func(c *cpu.Config) { c.PredictOnRPC = true }},
	}
	for _, name := range []string{"h264ref", "xalan"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := harness.Config{Seed: harness.CellSeed(42, "replay-configs", name)}
			app, err := harness.Prepare(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range allModes {
				tr, _ := capture(t, app, mode, maxInsts)
				for _, m := range mutations {
					wantRes, _, err := app.Run(mode, maxInsts, m.mutate)
					if err != nil {
						t.Fatal(err)
					}
					got := replayWith(t, app, mode, tr, maxInsts, m.mutate)
					if !reflect.DeepEqual(got, wantRes) {
						t.Errorf("%v/%s: replayed Result differs from execute-driven", mode, m.name)
					}
				}
			}
		})
	}
}

// TestReplayDivergenceDetected proves the replay front end rejects a trace
// captured from a different layout instead of silently producing garbage.
func TestReplayDivergenceDetected(t *testing.T) {
	maxInsts := uint64(20_000)
	appA, err := harness.Prepare("h264ref", harness.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	appB, err := harness.Prepare("sjeng", harness.Config{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	tr, _ := capture(t, appA, cpu.ModeVCFR, maxInsts)
	p, _, err := appB.Pipeline(cpu.ModeVCFR, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := trace.Replay(tr, p, maxInsts); err == nil {
		t.Fatal("replaying h264ref's trace on sjeng's pipeline succeeded; want divergence error")
	}
}

// TestCaptureOutputRoundTrip checks the terminal program state survives
// capture, serialization, and replay for a workload that emits output.
func TestCaptureOutputRoundTrip(t *testing.T) {
	app, err := harness.Prepare("memcpy", harness.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	tr, want := capture(t, app, cpu.ModeVCFR, 0)
	if !want.Halted {
		t.Fatal("memcpy did not run to completion")
	}
	if !tr.Halted || tr.ExitCode != want.ExitCode || !bytes.Equal(tr.Out, want.Out) {
		t.Fatalf("trace terminal state %v/%d/%q != result %v/%d/%q",
			tr.Halted, tr.ExitCode, tr.Out, want.Halted, want.ExitCode, want.Out)
	}
	got := replayWith(t, app, cpu.ModeVCFR, tr, 0, nil)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("replay-to-completion Result differs from execute-driven")
	}
}
