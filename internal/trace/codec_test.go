package trace

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// synthetic builds a trace from hand-written records exercising every flag
// combination: sequential and far instruction-table jumps, negative memory
// and target deltas, derand counts, and a halt record.
func synthetic() *Trace {
	b := NewBuilder(Meta{
		Workload:   "synthetic",
		Mode:       cpu.ModeVCFR,
		LayoutSeed: -7,
		Spread:     8,
		Scale:      2,
		MaxInsts:   1000,
		ImageHash:  0xdeadbeefcafef00d,
	})
	insts := []isa.Inst{
		{Op: isa.OpNop, Addr: 0x1000},
		{Op: isa.OpMovRR, Rd: 1, Rs: 2, Addr: 0x1001},
		{Op: isa.OpLoad, Rd: 3, Imm: -64, Addr: 0x1003},
		{Op: isa.OpCall, Target: 0x2000, Addr: 0x1009},
		{Op: isa.OpRet, Addr: 0x2000},
		{Op: isa.OpHalt, Addr: 0x100e},
	}
	recs := []cpu.ExecRecord{
		{Inst: insts[0]},
		{Inst: insts[1]},
		{Inst: insts[2], MemKind: emu.MemLoad, MemAddr: 0xfff0},
		{Inst: insts[3], Taken: true, Target: 0x9000_2000, MemKind: emu.MemStore, MemAddr: 0xffec},
		{Inst: insts[4], Taken: true, Target: 0x100e, MemKind: emu.MemLoad, MemAddr: 0xffec, Derands: 2},
		{Inst: insts[1]}, // revisit: non-sequential table index, backwards
		{Inst: insts[5], Halt: true},
	}
	for _, r := range recs {
		b.Add(r)
	}
	return b.Finish(cpu.Result{Halted: true, ExitCode: 3, Out: []byte("done\n")})
}

// records drains an iterator.
func records(t *Trace) []cpu.ExecRecord {
	var out []cpu.ExecRecord
	it := t.Iter()
	for {
		r, ok := it.Next()
		if !ok {
			return out
		}
		out = append(out, r)
	}
}

func TestRoundTripSynthetic(t *testing.T) {
	orig := synthetic()
	enc1 := orig.Bytes()
	dec, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(dec.Meta, orig.Meta) {
		t.Errorf("meta changed: %+v != %+v", dec.Meta, orig.Meta)
	}
	if dec.Halted != orig.Halted || dec.ExitCode != orig.ExitCode || !bytes.Equal(dec.Out, orig.Out) {
		t.Errorf("terminal state changed")
	}
	if !reflect.DeepEqual(dec.Insts, orig.Insts) {
		t.Errorf("instruction table changed: %v != %v", dec.Insts, orig.Insts)
	}
	if got, want := records(dec), records(orig); !reflect.DeepEqual(got, want) {
		t.Errorf("records changed:\ngot:  %+v\nwant: %+v", got, want)
	}
	// encode→decode→encode is byte-identical.
	enc2 := dec.Bytes()
	if !bytes.Equal(enc1, enc2) {
		t.Errorf("re-encoding changed bytes: %d vs %d", len(enc1), len(enc2))
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	good := synthetic().Bytes()

	t.Run("bad-magic", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[0] = 'X'
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		data := append([]byte(nil), good...)
		data[4] = 0x7f
		if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
	t.Run("flipped-byte", func(t *testing.T) {
		// Any single bit flip anywhere must fail the checksum.
		for _, i := range []int{5, len(good) / 2, len(good) - 5} {
			data := append([]byte(nil), good...)
			data[i] ^= 0x40
			if _, err := Decode(data); err == nil {
				t.Errorf("flip at %d accepted", i)
			}
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must error, never panic.
		for i := 0; i < len(good); i++ {
			if _, err := Decode(good[:i]); err == nil {
				t.Fatalf("truncation to %d bytes accepted", i)
			}
		}
	})
	t.Run("trailing-garbage", func(t *testing.T) {
		if _, err := Decode(append(append([]byte(nil), good...), 0, 1, 2)); err == nil {
			t.Error("trailing bytes accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := Decode(nil); !errors.Is(err, ErrCorrupt) {
			t.Errorf("got %v, want ErrCorrupt", err)
		}
	})
}

// TestDecodeRejectsForgedStructure re-signs structurally broken payloads with
// a valid CRC, proving the structural validation itself catches them.
func TestDecodeRejectsForgedStructure(t *testing.T) {
	reSign := func(mutate func(*Trace)) []byte {
		tr := synthetic()
		mutate(tr)
		return tr.Bytes() // Bytes computes a fresh, valid CRC
	}
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"record-count-too-high", func(tr *Trace) { tr.n += 3 }},
		{"record-count-too-low", func(tr *Trace) { tr.n -= 2 }},
		{"truncated-records", func(tr *Trace) { tr.recs = tr.recs[:len(tr.recs)-2] }},
		{"index-out-of-table", func(tr *Trace) { tr.Insts = tr.Insts[:2] }},
		{"forged-memkind", func(tr *Trace) { tr.recs[0] |= 0x03 }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Decode(reSign(c.mutate)); !errors.Is(err, ErrCorrupt) {
				t.Errorf("got %v, want ErrCorrupt", err)
			}
		})
	}
}

func TestCacheLRUAndBounds(t *testing.T) {
	tr := synthetic()
	sz := tr.SizeBytes()
	key := func(i int) Key { return Key{ImageHash: uint64(i)} }

	c := NewCache(2 * sz)
	c.Put(key(1), tr)
	c.Put(key(2), tr)
	if _, ok := c.Get(key(1)); !ok {
		t.Fatal("key 1 missing before eviction")
	}
	// Key 2 is now least recently used; inserting key 3 must evict it.
	c.Put(key(3), tr)
	if _, ok := c.Get(key(2)); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, i := range []int{1, 3} {
		if _, ok := c.Get(key(i)); !ok {
			t.Errorf("key %d evicted out of LRU order", i)
		}
	}

	c.Drop(key(1))
	if _, ok := c.Get(key(1)); ok {
		t.Error("dropped entry still present")
	}
	hits, misses, bytes, entries := c.Stats()
	if entries != 1 || bytes != sz {
		t.Errorf("stats after drop: %d entries / %d bytes, want 1 / %d", entries, bytes, sz)
	}
	if hits == 0 || misses == 0 {
		t.Errorf("hit/miss counters not advancing: %d/%d", hits, misses)
	}

	// A trace larger than the whole bound is not admitted; a zero-byte
	// cache admits nothing and both are safe to use.
	small := NewCache(sz - 1)
	small.Put(key(9), tr)
	if _, ok := small.Get(key(9)); ok {
		t.Error("oversized trace admitted")
	}
	off := NewCache(0)
	off.Put(key(9), tr)
	if _, ok := off.Get(key(9)); ok {
		t.Error("zero-capacity cache admitted a trace")
	}
}

func TestCacheNilSafe(t *testing.T) {
	var c *Cache
	c.Put(Key{}, synthetic())
	if _, ok := c.Get(Key{}); ok {
		t.Error("nil cache returned a trace")
	}
	c.Drop(Key{})
	if h, m, b, e := c.Stats(); h != 0 || m != 0 || b != 0 || e != 0 {
		t.Error("nil cache reported non-zero stats")
	}
}
