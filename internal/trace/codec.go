package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// On-disk layout (all integers varint-encoded unless noted; see
// docs/ARCHITECTURE.md "Trace format"):
//
//	magic "VXTR" | version byte | header | inst table | records | crc32
//
// The CRC-32 (IEEE, little-endian, 4 bytes) covers everything before it,
// magic and version included, so header corruption and truncation are both
// caught before any field is trusted.

const (
	magic   = "VXTR"
	version = 1
)

// ErrCorrupt reports a trace file that failed structural validation: bad
// magic, unsupported version, checksum mismatch, truncation, or a malformed
// field. Load never panics on hostile input; it returns an error wrapping
// ErrCorrupt instead.
var ErrCorrupt = errors.New("trace: corrupt trace file")

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

// memKind narrows a flags field to emu.MemKind.
func memKind(v byte) emu.MemKind { return emu.MemKind(v) }

// varint/uvarint decode from the iterator's record stream.

func (it *Iter) varint() (int64, bool) {
	v, n := binary.Varint(it.t.recs[it.pos:])
	if n <= 0 {
		return 0, false
	}
	it.pos += n
	return v, true
}

func (it *Iter) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(it.t.recs[it.pos:])
	if n <= 0 {
		return 0, false
	}
	it.pos += n
	return v, true
}

// Bytes encodes the trace into its canonical byte form. The encoder is
// canonical: Decode(t.Bytes()) followed by Bytes() reproduces the same bytes,
// so encode→decode→encode is a fixed point.
func (t *Trace) Bytes() []byte {
	b := make([]byte, 0, 64+len(t.Out)+len(t.Insts)*8+len(t.recs))
	b = append(b, magic...)
	b = append(b, version)

	// Header.
	b = appendUvarint(b, uint64(len(t.Meta.Workload)))
	b = append(b, t.Meta.Workload...)
	b = append(b, byte(t.Meta.Mode))
	b = appendVarint(b, t.Meta.LayoutSeed)
	b = appendUvarint(b, uint64(t.Meta.Spread))
	b = appendUvarint(b, uint64(t.Meta.Scale))
	b = appendUvarint(b, t.Meta.MaxInsts)
	b = binary.LittleEndian.AppendUint64(b, t.Meta.ImageHash)
	if t.Halted {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = appendUvarint(b, uint64(t.ExitCode))
	b = appendUvarint(b, uint64(len(t.Out)))
	b = append(b, t.Out...)

	// Instruction table, in first-use order; Addr is delta-encoded against
	// the previous entry.
	b = appendUvarint(b, uint64(len(t.Insts)))
	var prevAddr uint32
	for _, in := range t.Insts {
		b = append(b, byte(in.Op), byte(in.Rd), byte(in.Rs), byte(in.Rt))
		b = appendVarint(b, int64(in.Imm))
		b = appendUvarint(b, uint64(in.Target))
		b = appendVarint(b, int64(int32(in.Addr-prevAddr)))
		prevAddr = in.Addr
	}

	// Records.
	b = appendUvarint(b, uint64(t.n))
	b = appendUvarint(b, uint64(len(t.recs)))
	b = append(b, t.recs...)

	return binary.LittleEndian.AppendUint32(b, crc32.ChecksumIEEE(b))
}

// Save writes the encoded trace to w.
func (t *Trace) Save(w io.Writer) error {
	_, err := w.Write(t.Bytes())
	return err
}

// SaveFile writes the encoded trace to path.
func (t *Trace) SaveFile(path string) error {
	return os.WriteFile(path, t.Bytes(), 0o644)
}

// Load reads and decodes one trace from r, validating magic, version,
// checksum, and the full record stream. It returns an error (wrapping
// ErrCorrupt for structural damage) and never panics, whatever the input.
func Load(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// LoadFile reads and decodes the trace at path.
func LoadFile(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// Decode decodes one trace from its canonical byte form.
func Decode(data []byte) (*Trace, error) {
	if len(data) < len(magic)+1+4 {
		return nil, fmt.Errorf("%w: %d bytes is shorter than the smallest trace", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	if v := data[len(magic)]; v != version {
		return nil, fmt.Errorf("%w: unsupported version %d (want %d)", ErrCorrupt, v, version)
	}
	body, sum := data[:len(data)-4], binary.LittleEndian.Uint32(data[len(data)-4:])
	if got := crc32.ChecksumIEEE(body); got != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (file %#x, computed %#x)", ErrCorrupt, sum, got)
	}

	d := &decoder{data: body, pos: len(magic) + 1}
	t := &Trace{}
	t.Meta.Workload = string(d.bytes(int(d.uvarint())))
	t.Meta.Mode = cpu.Mode(d.byte())
	t.Meta.LayoutSeed = d.varint()
	t.Meta.Spread = int(d.uvarint())
	t.Meta.Scale = int(d.uvarint())
	t.Meta.MaxInsts = d.uvarint()
	t.Meta.ImageHash = d.uint64()
	t.Halted = d.byte() != 0
	t.ExitCode = uint32(d.uvarint())
	t.Out = append([]byte(nil), d.bytes(int(d.uvarint()))...)

	nInsts := int(d.uvarint())
	if d.err == nil && (nInsts < 0 || nInsts > d.remaining()) {
		d.fail("instruction table count %d exceeds file size", nInsts)
	}
	var prevAddr uint32
	for i := 0; i < nInsts && d.err == nil; i++ {
		var in isa.Inst
		in.Op = isa.Op(d.byte())
		in.Rd = isa.Reg(d.byte())
		in.Rs = isa.Reg(d.byte())
		in.Rt = isa.Reg(d.byte())
		in.Imm = int32(d.varint())
		in.Target = uint32(d.uvarint())
		in.Addr = prevAddr + uint32(int32(d.varint()))
		prevAddr = in.Addr
		t.Insts = append(t.Insts, in)
	}

	t.n = int(d.uvarint())
	nRecs := int(d.uvarint())
	if d.err == nil && (t.n < 0 || nRecs < 0 || nRecs != d.remaining()) {
		d.fail("record stream length %d does not match remaining %d bytes", nRecs, d.remaining())
	}
	t.recs = append([]byte(nil), d.bytes(nRecs)...)
	if d.err != nil {
		return nil, d.err
	}
	if err := t.validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

// decoder reads the payload sequentially, latching the first error so
// callers can decode a whole section and check once.
type decoder struct {
	data []byte
	pos  int
	err  error
}

func (d *decoder) remaining() int { return len(d.data) - d.pos }

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrCorrupt}, args...)...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || d.pos >= len(d.data) {
		d.fail("truncated at byte %d", d.pos)
		return 0
	}
	b := d.data[d.pos]
	d.pos++
	return b
}

func (d *decoder) bytes(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.remaining() {
		d.fail("field of %d bytes truncated at byte %d", n, d.pos)
		return nil
	}
	b := d.data[d.pos : d.pos+n]
	d.pos += n
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.pos:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.pos)
		return 0
	}
	d.pos += n
	return v
}

func (d *decoder) uint64() uint64 {
	b := d.bytes(8)
	if len(b) != 8 {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}
