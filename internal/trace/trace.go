// Package trace captures the canonical dynamic execution of a (workload, ILR
// layout) pair and replays it through the cycle-level pipeline.
//
// A trace records, per executed instruction, exactly what the timing model
// consumes from the functional execute stage (see cpu.ExecRecord): the
// decoded instruction with its original-space PC, the control-transfer
// outcome with its architectural (possibly randomized-space) target, the
// data-memory access, and the VCFR auto-de-randomization count. Because the
// functional execution of a fixed (workload, layout, mode, instruction cap)
// is invariant under every timing knob — DRC geometry, issue width,
// context-switch interval, prediction space — one captured trace drives any
// number of timing configurations, and each replay reproduces the
// execute-driven Result bit for bit.
//
// On disk a trace is a compact versioned binary: a header, a table of unique
// decoded instructions, and a delta/varint-packed record stream, protected
// end to end by a CRC-32 (see codec.go and docs/ARCHITECTURE.md for the
// byte-level format).
package trace

import (
	"context"
	"fmt"
	"sync"

	"vcfr/internal/cpu"
	"vcfr/internal/isa"
)

// Meta identifies what a trace captured: the workload, the ILR layout it was
// randomized with, the architecture mode it executed under, and the
// instruction cap of the capture run. A replay is only meaningful against
// the same five-tuple; ImageHash lets consumers verify they rebuilt the same
// executed image.
type Meta struct {
	Workload   string
	Mode       cpu.Mode
	LayoutSeed int64
	Spread     int
	Scale      int
	MaxInsts   uint64
	ImageHash  uint64
}

// Trace is one captured execution. Insts is the table of unique decoded
// instructions (keyed by full content, so self-modifying images stay
// faithful); the packed record stream references them by index.
type Trace struct {
	Meta     Meta
	Halted   bool   // the capture run halted (vs hitting the instruction cap)
	ExitCode uint32 // program exit code at capture end
	Out      []byte // program output at capture end

	Insts []isa.Inst
	n     int    // record count
	recs  []byte // delta/varint-packed record stream

	matOnce sync.Once
	mat     []cpu.ExecRecord // materialized records, built on first replay
}

// Len returns the number of recorded instructions.
func (t *Trace) Len() int { return t.n }

// SizeBytes approximates the trace's in-memory footprint, used by the
// bounded Cache for eviction accounting. A cached trace exists to be
// replayed, and the first replay materializes the record stream into a flat
// slice (see records), so that slice is charged up front.
func (t *Trace) SizeBytes() int64 {
	const instSize = 24 // isa.Inst: packed field sizes, rounded up
	const recSize = 48  // cpu.ExecRecord, rounded up
	return int64(len(t.recs)) + int64(t.n)*recSize +
		int64(len(t.Insts))*instSize + int64(len(t.Out)) + 128
}

// records returns the trace's record stream as a flat slice, decoding the
// packed form exactly once. Safe for concurrent replays of a shared trace;
// callers must not mutate the result.
func (t *Trace) records() []cpu.ExecRecord {
	t.matOnce.Do(func() {
		out := make([]cpu.ExecRecord, 0, t.n)
		it := t.Iter()
		for {
			r, ok := it.Next()
			if !ok {
				break
			}
			out = append(out, r)
		}
		t.mat = out
	})
	return t.mat
}

// Builder accumulates ExecRecords into a Trace during a capture run.
type Builder struct {
	t       *Trace
	idx     map[isa.Inst]int
	prevIdx int
	prevMem uint32
	prevTgt uint32
}

// NewBuilder returns a builder for one capture run.
func NewBuilder(meta Meta) *Builder {
	return &Builder{
		t:       &Trace{Meta: meta},
		idx:     make(map[isa.Inst]int),
		prevIdx: -1,
	}
}

// Record flag bits (one flags byte per packed record).
const (
	recMemKindMask = 0x03 // bits 0-1: emu.MemKind
	recTaken       = 1 << 2
	recHalt        = 1 << 3
	recDerands     = 1 << 4 // Derands > 0; count follows as uvarint
	recSeqInst     = 1 << 5 // instruction index == previous index + 1
)

// Add appends one executed instruction's record. It is shaped to be passed
// directly to cpu.Pipeline.SetRecorder.
func (b *Builder) Add(r cpu.ExecRecord) {
	t := b.t
	i, ok := b.idx[r.Inst]
	if !ok {
		i = len(t.Insts)
		b.idx[r.Inst] = i
		t.Insts = append(t.Insts, r.Inst)
	}

	flags := byte(r.MemKind) & recMemKindMask
	if r.Taken {
		flags |= recTaken
	}
	if r.Halt {
		flags |= recHalt
	}
	if r.Derands > 0 {
		flags |= recDerands
	}
	if i == b.prevIdx+1 {
		flags |= recSeqInst
	}
	t.recs = append(t.recs, flags)
	if flags&recSeqInst == 0 {
		t.recs = appendVarint(t.recs, int64(i)-int64(b.prevIdx))
	}
	b.prevIdx = i
	if r.MemKind != 0 {
		t.recs = appendVarint(t.recs, int64(int32(r.MemAddr-b.prevMem)))
		b.prevMem = r.MemAddr
	}
	if r.Taken {
		t.recs = appendVarint(t.recs, int64(int32(r.Target-b.prevTgt)))
		b.prevTgt = r.Target
	}
	if r.Derands > 0 {
		t.recs = appendUvarint(t.recs, uint64(r.Derands))
	}
	t.n++
}

// Finish seals the trace with the capture run's terminal program state.
func (b *Builder) Finish(res cpu.Result) *Trace {
	t := b.t
	t.Halted = res.Halted
	t.ExitCode = res.ExitCode
	t.Out = append([]byte(nil), res.Out...)
	return t
}

// Iter walks a trace's packed records in execution order.
type Iter struct {
	t       *Trace
	pos     int
	prevIdx int
	prevMem uint32
	prevTgt uint32
}

// Iter returns an iterator positioned at the first record.
func (t *Trace) Iter() *Iter { return &Iter{t: t, prevIdx: -1} }

// Next decodes the next record. ok=false at the end of the trace or on a
// malformed stream (Load validates the stream, so a loaded trace never hits
// the malformed case).
func (it *Iter) Next() (cpu.ExecRecord, bool) {
	t := it.t
	if it.pos >= len(t.recs) {
		return cpu.ExecRecord{}, false
	}
	flags := t.recs[it.pos]
	it.pos++

	idx := it.prevIdx + 1
	if flags&recSeqInst == 0 {
		d, ok := it.varint()
		if !ok {
			return cpu.ExecRecord{}, false
		}
		idx = it.prevIdx + int(d)
	}
	if idx < 0 || idx >= len(t.Insts) {
		return cpu.ExecRecord{}, false
	}
	it.prevIdx = idx

	r := cpu.ExecRecord{
		Inst:  t.Insts[idx],
		Taken: flags&recTaken != 0,
		Halt:  flags&recHalt != 0,
	}
	if flags&recMemKindMask > 2 {
		return cpu.ExecRecord{}, false // no such emu.MemKind
	}
	r.MemKind = memKind(flags & recMemKindMask)
	if r.MemKind != 0 {
		d, ok := it.varint()
		if !ok {
			return cpu.ExecRecord{}, false
		}
		it.prevMem += uint32(int32(d))
		r.MemAddr = it.prevMem
	}
	if r.Taken {
		d, ok := it.varint()
		if !ok {
			return cpu.ExecRecord{}, false
		}
		it.prevTgt += uint32(int32(d))
		r.Target = it.prevTgt
	}
	if flags&recDerands != 0 {
		v, ok := it.uvarint()
		if !ok || v == 0 {
			return cpu.ExecRecord{}, false
		}
		r.Derands = int(v)
	}
	return r, true
}

// validate walks every record once, proving the packed stream is
// well-formed: each record decodes, indices stay in the instruction table,
// and the stream ends exactly at the declared count.
func (t *Trace) validate() error {
	it := t.Iter()
	for i := 0; i < t.n; i++ {
		if _, ok := it.Next(); !ok {
			return fmt.Errorf("trace: malformed record %d of %d", i, t.n)
		}
	}
	if it.pos != len(t.recs) {
		return fmt.Errorf("trace: %d trailing record bytes after %d records", len(t.recs)-it.pos, t.n)
	}
	return nil
}

// Replayer adapts a Trace to cpu.ReplaySource. It walks the materialized
// record slice, so replay pays no per-record varint decoding.
type Replayer struct {
	t    *Trace
	recs []cpu.ExecRecord
	pos  int
}

// NewReplayer returns a replay source positioned at the trace's start.
func NewReplayer(t *Trace) *Replayer { return &Replayer{t: t, recs: t.records()} }

// Next implements cpu.ReplaySource.
func (r *Replayer) Next() (cpu.ExecRecord, bool) {
	if r.pos >= len(r.recs) {
		return cpu.ExecRecord{}, false
	}
	rec := r.recs[r.pos]
	r.pos++
	return rec, true
}

// Records exposes the materialized slice, enabling the pipeline's zero-copy
// replay fast path (see cpu.Pipeline.SetReplay). Callers must not mutate it.
func (r *Replayer) Records() []cpu.ExecRecord { return r.recs }

// Final implements cpu.ReplaySource. The output is copied so concurrent
// replays of one cached trace never share the slice.
func (r *Replayer) Final() ([]byte, uint32) {
	return append([]byte(nil), r.t.Out...), r.t.ExitCode
}

// Capture runs p for up to maxInsts instructions with a recorder attached
// and returns the sealed trace alongside the run's own Result.
func Capture(p *cpu.Pipeline, maxInsts uint64, meta Meta) (*Trace, cpu.Result, error) {
	return CaptureContext(context.Background(), p, maxInsts, meta)
}

// CaptureContext is Capture with mid-run cancellation: a cancelled context
// aborts the capture promptly (see cpu.Pipeline.RunContext) and no trace is
// produced.
func CaptureContext(ctx context.Context, p *cpu.Pipeline, maxInsts uint64, meta Meta) (*Trace, cpu.Result, error) {
	b := NewBuilder(meta)
	p.SetRecorder(b.Add)
	res, err := p.RunContext(ctx, maxInsts)
	p.SetRecorder(nil)
	if err != nil {
		return nil, res, err
	}
	return b.Finish(res), res, nil
}

// Replay drives p from t and returns the replayed Result. With maxInsts
// matching the capture run's cap, the Result is bit-identical to the
// execute-driven one.
func Replay(t *Trace, p *cpu.Pipeline, maxInsts uint64) (cpu.Result, error) {
	return ReplayContext(context.Background(), t, p, maxInsts)
}

// ReplayContext is Replay with mid-run cancellation.
func ReplayContext(ctx context.Context, t *Trace, p *cpu.Pipeline, maxInsts uint64) (cpu.Result, error) {
	p.SetReplay(NewReplayer(t))
	return p.RunContext(ctx, maxInsts)
}
