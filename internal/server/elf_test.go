package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// TestELFJobMatchesCLI is the real-binary front end's service acceptance: a
// kind=run job over a lifted fixture must store the exact bytes
// `vcfrsim -workload elf-fib -mode all -seed 42 -stats-json` prints — the
// registry serves the lifted image to both producers, and both run the
// identical harness path.
func TestELFJobMatchesCLI(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, body := post(t, s, "/v1/jobs",
		`{"kind": "run", "workload": "elf-fib", "mode": "all", "seed": 42}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /v1/jobs: %d: %s", resp.StatusCode, body)
	}
	id := acceptedID(t, body)
	if v := pollJob(t, s, id); v.State != JobDone {
		t.Fatalf("elf job failed: %s", v.Error)
	}
	rresp, got := get(t, s, "/v1/jobs/"+id+"/result")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result: %d: %s", rresp.StatusCode, got)
	}

	modes := []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
	cfg := harness.Config{Scale: 1, Seed: 42, Spread: 8}
	rows, err := harness.SimulateRuns(context.Background(), harness.NewRunner(1), "elf-fib", modes, cfg,
		func(c *cpu.Config) { c.DRCEntries = 128; c.IssueWidth = 1; c.ContextSwitchEvery = 0 })
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Marshal(results.NewRun(rows...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("job result differs from CLI bytes:\n--- service ---\n%.400s\n--- cli ---\n%.400s", got, want)
	}
}

// TestWorkloadsEndpointSource pins the /v1/workloads listing contract: every
// entry carries a source field, the embedded ELF fixtures are listed with
// source "elf", and the synthetic analogs with source "synthetic" — the same
// name/source/desc triple `vcfrsim -list` prints.
func TestWorkloadsEndpointSource(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, body := get(t, s, "/v1/workloads")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/workloads: %d: %s", resp.StatusCode, body)
	}
	var entries []struct {
		Name   string `json:"name"`
		Desc   string `json:"desc"`
		Source string `json:"source"`
	}
	if err := json.Unmarshal(body, &entries); err != nil {
		t.Fatalf("bad listing: %v\n%s", err, body)
	}
	got := make(map[string]string, len(entries))
	for _, e := range entries {
		if e.Source != workloads.SourceSynthetic && e.Source != workloads.SourceELF {
			t.Errorf("%s: source = %q, want %q or %q",
				e.Name, e.Source, workloads.SourceSynthetic, workloads.SourceELF)
		}
		if e.Desc == "" {
			t.Errorf("%s: empty desc", e.Name)
		}
		got[e.Name] = e.Source
	}
	for _, n := range workloads.ELFNames() {
		if got[n] != workloads.SourceELF {
			t.Errorf("fixture %s: source = %q, want %q", n, got[n], workloads.SourceELF)
		}
	}
	if got["bzip2"] != workloads.SourceSynthetic {
		t.Errorf("bzip2: source = %q, want %q", got["bzip2"], workloads.SourceSynthetic)
	}
}
