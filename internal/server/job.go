package server

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"vcfr/internal/artifact"
	"vcfr/internal/attack"
	"vcfr/internal/cpu"
	"vcfr/internal/fault"
	"vcfr/internal/harness"
	"vcfr/internal/multicore"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// JobKind selects what a job computes.
type JobKind string

// Job kinds.
const (
	// JobRun is one workload under one or more modes with a fixed layout
	// seed — the service twin of `vcfrsim -stats-json`.
	JobRun JobKind = "run"
	// JobSweep is a full stats sweep with per-cell derived seeds — the
	// service twin of `experiments -stats-json`.
	JobSweep JobKind = "sweep"
	// JobFaults is a fault-injection campaign — the service twin of
	// `faultsim -json` and `experiments -mode faults`.
	JobFaults JobKind = "faults"
	// JobAttacks is an adversary-in-the-loop attack campaign — the service
	// twin of `attacksim -json` and `experiments -mode attacks`.
	JobAttacks JobKind = "attacks"
	// JobMulticore is a multi-tenant interference campaign — the service
	// twin of `clustersim -json` and `experiments -mode multicore`.
	JobMulticore JobKind = "multicore"
)

// JobState is a job's position in its lifecycle. Transitions are strictly
// queued -> running -> (done | failed); there are no other edges.
type JobState string

// Job states.
const (
	JobQueued  JobState = "queued"
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// SimRequest is the body of POST /v1/simulate and POST /v1/sweep. Absent
// fields take the matching CLI's defaults (documented per field), which is
// what keeps service responses byte-identical to CLI output. The numeric
// tuning knobs are pointers so that presence, not value, selects the
// default: `"seed": 0` means literally seed 0 (handled downstream exactly
// as the CLIs handle `-seed 0`), while omitting seed means the default.
type SimRequest struct {
	// Workload names the built-in workload to simulate (required for
	// simulate; ignored by sweep).
	Workload string `json:"workload,omitempty"`
	// Workloads restricts a sweep to a subset (default: all 11 SPEC
	// analogs). Ignored by simulate.
	Workloads []string `json:"workloads,omitempty"`
	// Mode is baseline | naive | vcfr | all. Default "vcfr" (vcfrsim's
	// default). Ignored by sweep, which always runs all three modes.
	Mode string `json:"mode,omitempty"`
	// Seed is the randomization seed. Default 1 for simulate (vcfrsim's
	// -seed default) and 42 for sweep (experiments' -seed default).
	Seed *int64 `json:"seed,omitempty"`
	// Spread is the ILR scatter factor. Default 8.
	Spread *int `json:"spread,omitempty"`
	// Scale multiplies workload iteration counts. Default 1.
	Scale *int `json:"scale,omitempty"`
	// Instructions caps simulated instructions per run. 0 = to completion.
	Instructions uint64 `json:"instructions,omitempty"`
	// DRC is the De-Randomization Cache entry count. Default 128.
	DRC *int `json:"drc,omitempty"`
	// Width is the issue width. Default 1 (the paper's core).
	Width *int `json:"width,omitempty"`
	// CtxSwitchEvery flushes process-private state every N instructions.
	// Default 0 (never).
	CtxSwitchEvery uint64 `json:"ctxswitch,omitempty"`
	// Interval samples the statistics spine every N simulated instructions,
	// adding the per-window `intervals` series to every result row (the
	// service twin of vcfrsim -interval). Default 0 (off).
	Interval uint64 `json:"interval,omitempty"`
	// Injections per (workload, mode) cell of a fault campaign. Default
	// 120 (faultsim's default). Ignored by simulate and sweep.
	Injections int `json:"injections,omitempty"`
	// Faults restricts a campaign to a subset of the fault model (kind
	// names as in internal/fault). Default: the full model. Ignored by
	// simulate and sweep.
	Faults []string `json:"faults,omitempty"`
	// Bits flipped per injection. Default 1. Ignored by simulate and sweep.
	Bits int `json:"bits,omitempty"`
	// Payloads restricts an attack campaign to a subset of the payload
	// templates (names as in internal/attack). Default: all three. Only
	// attacks jobs read it.
	Payloads []string `json:"payloads,omitempty"`
	// LeakBudget is the attack campaign's canonical disclosure allowance.
	// Default 16 (attacksim's default). Only attacks jobs read it.
	LeakBudget int `json:"leak_budget,omitempty"`
	// MaxLeaks caps each attack arm's leak ops. Default 0 (derive from the
	// cell's universe). Only attacks jobs read it.
	MaxLeaks int `json:"max_leaks,omitempty"`
	// RerandEvery is the re-randomization period in leak ops. Default 5.
	// Only attacks jobs read it.
	RerandEvery int `json:"rerand_every,omitempty"`
	// AdvanceInsts is how many instructions the victim executes between leak
	// ops. Default 2000. Only attacks jobs read it.
	AdvanceInsts uint64 `json:"advance_insts,omitempty"`
	// Cells restricts a multicore campaign to a cores×tenants grid subset
	// ("2c4t" form, as clustersim -cells). Default: the canonical grid.
	// Only multicore jobs read it.
	Cells []string `json:"cells,omitempty"`
	// Quantum is the multicore scheduler's time slice in committed
	// instructions. Default 10000 (clustersim's default). Only multicore
	// jobs read it.
	Quantum uint64 `json:"quantum,omitempty"`
	// TimeoutMS bounds the job's execution wall clock, refining the
	// server's default job timeout. 0 = server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// normalize applies the per-kind CLI defaults to absent fields and
// validates the request. After it returns nil, every pointer field is
// non-nil.
func (r *SimRequest) normalize(kind JobKind) error {
	if r.Mode == "" {
		r.Mode = "vcfr"
		if kind == JobFaults || kind == JobAttacks || kind == JobMulticore {
			// A campaign's point is the cross-mode comparison; default to all
			// three architectures (the campaign CLIs' -mode default).
			r.Mode = "all"
		}
	}
	if _, err := parseModes(r.Mode); err != nil {
		return err
	}
	if kind == JobFaults {
		if _, err := fault.ParseKinds(r.Faults); err != nil {
			return err
		}
		if r.Injections < 0 {
			return fmt.Errorf("injections must be >= 0")
		}
		if r.Bits < 0 {
			return fmt.Errorf("bits must be >= 0")
		}
	}
	if kind == JobMulticore && len(r.Cells) > 0 {
		if _, err := multicore.ParseCells(strings.Join(r.Cells, ",")); err != nil {
			return err
		}
	}
	if kind == JobAttacks {
		if _, err := attack.ParsePayloads(r.Payloads); err != nil {
			return err
		}
		if r.LeakBudget < 0 {
			return fmt.Errorf("leak_budget must be >= 0")
		}
		if r.MaxLeaks < 0 {
			return fmt.Errorf("max_leaks must be >= 0")
		}
		if r.RerandEvery < 0 {
			return fmt.Errorf("rerand_every must be >= 0")
		}
	}
	if r.Seed == nil {
		seed := int64(1)
		if kind != JobRun {
			seed = 42
		}
		r.Seed = &seed
	}
	if r.Spread == nil {
		spread := 8
		r.Spread = &spread
	}
	if r.Scale == nil {
		scale := 1
		r.Scale = &scale
	}
	if r.DRC == nil {
		drc := 128
		r.DRC = &drc
	}
	if r.Width == nil {
		width := 1
		r.Width = &width
	}
	if kind == JobRun {
		if r.Workload == "" {
			return fmt.Errorf("simulate needs a workload")
		}
		if _, err := workloads.ByName(r.Workload, 1); err != nil {
			return err
		}
	}
	for _, w := range r.Workloads {
		if _, err := workloads.ByName(w, 1); err != nil {
			return err
		}
	}
	if r.TimeoutMS < 0 {
		return fmt.Errorf("timeout_ms must be >= 0")
	}
	// Machine-config bounds live in exactly one place — cpu.Config.Validate,
	// the same check vcfrsim applies to its flags — so a bad drc or width in a
	// request body fails with the same message a bad CLI flag gets. Sweeps
	// ignore Mode and always run all three architectures.
	modes := statsModes
	if kind == JobRun {
		modes, _ = parseModes(r.Mode)
	}
	mutate := r.mutate()
	for _, m := range modes {
		c := cpu.DefaultConfig(m)
		mutate(&c)
		if err := c.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// statsModes is the fixed mode set of a sweep (mirrors harness.StatsSweep).
var statsModes = []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}

// mutate returns the machine-config mutation the request describes —
// field-for-field the same closure vcfrsim builds from its flags. Call
// only after normalize has filled the pointer fields.
func (r *SimRequest) mutate() func(*cpu.Config) {
	drc, width, ctxEvery, interval := *r.DRC, *r.Width, r.CtxSwitchEvery, r.Interval
	return func(c *cpu.Config) {
		c.DRCEntries = drc
		c.IssueWidth = width
		c.ContextSwitchEvery = ctxEvery
		c.SampleEvery = interval
	}
}

// config maps the request onto a harness.Config. Call only after normalize
// has filled the pointer fields.
func (r *SimRequest) config() harness.Config {
	return harness.Config{
		Workloads: r.Workloads,
		Scale:     *r.Scale,
		MaxInsts:  r.Instructions,
		Seed:      *r.Seed,
		Spread:    *r.Spread,
	}
}

// faultConfig maps the request onto a fault campaign config. Call only
// after normalize has filled the pointer fields. The campaign runs the
// default machine configuration per mode (like faultsim), so the machine
// tuning knobs (drc, width, ctxswitch, interval) do not apply here.
func (r *SimRequest) faultConfig() fault.Config {
	modes, _ := fault.ParseModes(r.Mode)
	kinds, _ := fault.ParseKinds(r.Faults)
	return fault.Config{
		Workloads:  r.Workloads,
		Modes:      modes,
		Kinds:      kinds,
		Injections: r.Injections,
		Seed:       *r.Seed,
		Scale:      *r.Scale,
		Spread:     *r.Spread,
		MaxInsts:   r.Instructions,
		Bits:       r.Bits,
	}
}

// attackConfig maps the request onto an attack campaign config. Call only
// after normalize has filled the pointer fields. Like faultConfig, the
// campaign runs the default machine configuration per mode, so the machine
// tuning knobs do not apply here.
func (r *SimRequest) attackConfig() attack.Config {
	modes, _ := attack.ParseModes(r.Mode)
	payloads, _ := attack.ParsePayloads(r.Payloads)
	return attack.Config{
		Workloads:    r.Workloads,
		Modes:        modes,
		Payloads:     payloads,
		Seed:         *r.Seed,
		Scale:        *r.Scale,
		Spread:       *r.Spread,
		MaxInsts:     r.Instructions,
		LeakBudget:   r.LeakBudget,
		MaxLeaks:     r.MaxLeaks,
		RerandEvery:  r.RerandEvery,
		AdvanceInsts: r.AdvanceInsts,
	}
}

// multicoreConfig maps the request onto a multicore campaign config. Call
// only after normalize has filled the pointer fields. Like faultConfig, the
// campaign runs the default machine configuration per mode, so the machine
// tuning knobs do not apply here.
func (r *SimRequest) multicoreConfig() multicore.Config {
	modes, _ := multicore.ParseModes(r.Mode)
	var cells []multicore.Cell
	if len(r.Cells) > 0 {
		cells, _ = multicore.ParseCells(strings.Join(r.Cells, ","))
	}
	return multicore.Config{
		Workloads: r.Workloads,
		Modes:     modes,
		Cells:     cells,
		Quantum:   r.Quantum,
		Seed:      *r.Seed,
		Scale:     *r.Scale,
		Spread:    *r.Spread,
		MaxInsts:  r.Instructions,
	}
}

func parseModes(s string) ([]cpu.Mode, error) {
	switch s {
	case "baseline":
		return []cpu.Mode{cpu.ModeBaseline}, nil
	case "naive":
		return []cpu.Mode{cpu.ModeNaiveILR}, nil
	case "vcfr":
		return []cpu.Mode{cpu.ModeVCFR}, nil
	case "all":
		return []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}, nil
	default:
		return nil, fmt.Errorf("unknown mode %q (want baseline, naive, vcfr, or all)", s)
	}
}

// Job is one queued or executing request. State, timestamps, and the result
// are guarded by mu; done is closed exactly once when the job leaves the
// running state, which is what synchronous waiters block on.
type Job struct {
	ID   string
	Kind JobKind
	Req  SimRequest

	// seq is the monotonic submission number embedded in ID, kept numeric
	// for cursor comparisons (string compare would wrap past job-999999).
	seq uint64
	// ctx is cancelled by DELETE /v1/jobs/{id}; the per-job execution
	// deadline derives from it, so cancellation reaches a running
	// simulation mid-loop. cancel is safe to call repeatedly.
	ctx    context.Context
	cancel context.CancelFunc
	// idemKey is the Idempotency-Key that created this job ("" if none);
	// retention eviction uses it to drop the dedupe entry with the job.
	idemKey string

	mu       sync.Mutex
	state    JobState
	created  time.Time
	started  time.Time
	finished time.Time
	err      string
	envelope []byte                             // marshaled results.Envelope, set when state == JobDone
	progress *harness.Progress                  // live sweep completion state, set while running
	subs     map[chan harness.Progress]struct{} // SSE subscribers; buffered(1), coalescing

	done chan struct{}
}

func newJob(id string, seq uint64, kind JobKind, req SimRequest) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	return &Job{
		ID:      id,
		Kind:    kind,
		Req:     req,
		seq:     seq,
		ctx:     ctx,
		cancel:  cancel,
		state:   JobQueued,
		created: time.Now(),
		done:    make(chan struct{}),
	}
}

// State returns the job's current lifecycle state.
func (j *Job) State() JobState {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Done returns the channel closed when the job finishes (done or failed).
func (j *Job) Done() <-chan struct{} { return j.done }

// Envelope returns the marshaled result bytes and error text; valid only
// after Done.
func (j *Job) Envelope() (body []byte, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.envelope, j.err
}

// setProgress records the job's live completion state; it is the progress
// callback of harness.StatsSweepProgress and fault.RunCampaign, invoked
// from worker goroutines. Subscribers get a coalescing notification: each
// channel holds at most the latest update, so a slow SSE client never
// backpressures the simulation.
func (j *Job) setProgress(p harness.Progress) {
	j.mu.Lock()
	j.progress = &p
	for ch := range j.subs {
		select {
		case ch <- p:
		default:
			select {
			case <-ch:
			default:
			}
			select {
			case ch <- p:
			default:
			}
		}
	}
	j.mu.Unlock()
}

// subscribe registers a progress listener, primed with the latest update if
// one exists.
func (j *Job) subscribe() chan harness.Progress {
	ch := make(chan harness.Progress, 1)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan harness.Progress]struct{})
	}
	j.subs[ch] = struct{}{}
	if j.progress != nil {
		ch <- *j.progress
	}
	j.mu.Unlock()
	return ch
}

func (j *Job) unsubscribe(ch chan harness.Progress) {
	j.mu.Lock()
	delete(j.subs, ch)
	j.mu.Unlock()
}

// view is the JSON shape GET /v1/jobs/{id} serves.
type jobView struct {
	ID       string     `json:"id"`
	Kind     JobKind    `json:"kind"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	// Progress is the job's live completion state (cells or injections
	// finished, total, simulated instructions so far), populated while a
	// sweep or fault campaign runs and retained on its final view.
	Progress *harness.Progress `json:"progress,omitempty"`
	Result   json.RawMessage   `json:"result,omitempty"`
}

func (j *Job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{ID: j.ID, Kind: j.Kind, State: j.state, Created: j.created, Error: j.err}
	if j.progress != nil {
		p := *j.progress
		v.Progress = &p
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	if j.state == JobDone {
		v.Result = json.RawMessage(j.envelope)
	}
	return v
}

// worker drains the queue until it is closed (graceful shutdown closes the
// queue only after intake stops, so every accepted job still executes).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// runJob executes one job with panic isolation and a per-job deadline. A
// panic anywhere in the simulator fails this job and this job only; the
// worker, the queue, and every other job keep going.
func (s *Server) runJob(j *Job) {
	start := time.Now()
	j.mu.Lock()
	j.state = JobRunning
	j.started = start
	queueWait := start.Sub(j.created)
	j.mu.Unlock()
	s.metrics.jobStarted(queueWait)

	timeout := s.cfg.JobTimeout
	if ms := j.Req.TimeoutMS; ms > 0 {
		if t := time.Duration(ms) * time.Millisecond; timeout <= 0 || t < timeout {
			timeout = t
		}
	}
	// The deadline derives from the job's own cancellable context, so a
	// DELETE /v1/jobs/{id} reaches a running simulation exactly like an
	// expired deadline does.
	ctx := j.ctx
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	body, err := func() (body []byte, err error) {
		defer func() {
			if r := recover(); r != nil {
				s.metrics.jobPanicked()
				err = fmt.Errorf("job panicked: %v\n%s", r, debug.Stack())
			}
		}()
		return s.executeBytes(ctx, j)
	}()

	now := time.Now()
	j.mu.Lock()
	j.finished = now
	if err != nil {
		j.state = JobFailed
		j.err = err.Error()
	} else {
		j.state = JobDone
		j.envelope = body
	}
	j.mu.Unlock()
	s.metrics.jobFinished(err == nil, now.Sub(start))
	close(j.done)
	s.retireJob(j)
}

// executeBytes produces a job's final envelope bytes. Three paths, in
// precedence order: a configured Executor (the fleet coordinator) returns
// merged bytes verbatim; a configured artifact store may already hold the
// envelope for this exact normalized request (an identical campaign
// finished somewhere in the fleet — serve it without simulating); else the
// job executes locally and, when it ran to completion, its envelope is
// stored for peers. Partial results (cancelled or timed-out jobs) are
// never memoized — a partial envelope is an artifact of this request's
// deadline, not of the request identity.
func (s *Server) executeBytes(ctx context.Context, j *Job) ([]byte, error) {
	if s.cfg.Executor != nil {
		return s.cfg.Executor(ctx, j.Kind, j.Req, j.setProgress)
	}
	key := ""
	if s.cfg.Artifacts != nil || s.cfg.ArtifactPeer != nil {
		key = envelopeKey(j.Kind, j.Req)
		if body, ok := s.envelopeLookup(key); ok {
			return body, nil
		}
	}
	env, err := s.exec(ctx, j)
	if err != nil {
		return nil, err
	}
	body, err := results.Marshal(env)
	if err != nil {
		return nil, err
	}
	if key != "" && ctx.Err() == nil {
		s.envelopeStore(key, body)
	}
	return body, nil
}

// envelopeKey is the content address of a finished result: the job kind
// plus the normalized request (pointer fields filled, defaults applied),
// minus the execution deadline — a timeout changes whether a request
// completes, never what its completed result is.
func envelopeKey(kind JobKind, req SimRequest) string {
	req.TimeoutMS = 0
	b, _ := json.Marshal(req)
	h := sha256.Sum256(append([]byte(string(kind)+"\x00"), b...))
	return hex.EncodeToString(h[:])
}

func (s *Server) envelopeLookup(key string) ([]byte, bool) {
	if s.cfg.Artifacts != nil {
		if body, ok := s.cfg.Artifacts.Get(artifact.EnvelopeNS, key); ok {
			return body, true
		}
	}
	if s.cfg.ArtifactPeer != nil {
		if body, ok := s.cfg.ArtifactPeer.Get(artifact.EnvelopeNS, key); ok {
			if s.cfg.Artifacts != nil {
				_ = s.cfg.Artifacts.Put(artifact.EnvelopeNS, key, body)
			}
			return body, true
		}
	}
	return nil, false
}

func (s *Server) envelopeStore(key string, body []byte) {
	if s.cfg.Artifacts != nil {
		_ = s.cfg.Artifacts.Put(artifact.EnvelopeNS, key, body)
	}
	if s.cfg.ArtifactPeer != nil {
		_ = s.cfg.ArtifactPeer.Put(artifact.EnvelopeNS, key, body)
	}
}

// execute is the production job executor (tests substitute s.exec): the
// service is a thin HTTP shell around exactly the entry points the CLIs
// use, which is what pins service responses to CLI output byte for byte.
func (s *Server) execute(ctx context.Context, j *Job) (results.Envelope, error) {
	switch j.Kind {
	case JobRun:
		modes, err := parseModes(j.Req.Mode)
		if err != nil {
			return results.Envelope{}, err
		}
		rows, err := harness.SimulateRuns(ctx, s.runner, j.Req.Workload, modes, j.Req.config(), j.Req.mutate())
		if err != nil {
			return results.Envelope{}, err
		}
		return results.NewRun(rows...), nil
	case JobSweep:
		rows, err := harness.StatsSweepProgress(ctx, s.runner, j.Req.config(), j.setProgress)
		if err != nil {
			return results.Envelope{}, err
		}
		return results.NewSweep(rows), nil
	case JobFaults:
		rep, err := fault.RunCampaign(ctx, s.runner, j.Req.faultConfig(), j.setProgress)
		if err != nil {
			return results.Envelope{}, err
		}
		s.metrics.campaignFinished(rep.Totals)
		return rep.Envelope(), nil
	case JobAttacks:
		rep, err := attack.RunCampaign(ctx, s.runner, j.Req.attackConfig(), j.setProgress)
		if err != nil {
			return results.Envelope{}, err
		}
		s.metrics.attackCampaignFinished(rep.Totals)
		return rep.Envelope(), nil
	case JobMulticore:
		rep, err := multicore.RunCampaign(ctx, s.runner, j.Req.multicoreConfig(), j.setProgress)
		if err != nil {
			return results.Envelope{}, err
		}
		return rep.Envelope(), nil
	default:
		return results.Envelope{}, fmt.Errorf("unknown job kind %q", j.Kind)
	}
}
