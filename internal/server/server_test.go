package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"vcfr/internal/attack"
	"vcfr/internal/cpu"
	"vcfr/internal/fault"
	"vcfr/internal/harness"
	"vcfr/internal/multicore"
	"vcfr/internal/results"
	"vcfr/internal/trace"
)

// startServer builds and starts a server on an ephemeral port, cleaning it
// up when the test ends.
func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func post(t *testing.T, s *Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post("http://"+s.Addr()+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func get(t *testing.T, s *Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get("http://" + s.Addr() + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSimulateMatchesCLI is the acceptance criterion of the API redesign: a
// POST /v1/simulate response body must be byte-identical to what
// `vcfrsim -stats-json` prints for the same (workload, mode, seed, config).
// The CLI's JSON path is harness.SimulateRuns + results.Marshal, so the
// test computes those bytes directly and compares.
func TestSimulateMatchesCLI(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})

	resp, body := post(t, s, "/v1/simulate",
		`{"workload": "h264ref", "mode": "all", "instructions": 30000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d: %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}

	// The CLI equivalent: vcfrsim -workload h264ref -mode all
	// -instructions 30000 -stats-json (defaults: seed 1, spread 8,
	// drc 128, width 1).
	modes := []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
	cfg := harness.Config{Scale: 1, MaxInsts: 30000, Seed: 1, Spread: 8}
	rows, err := harness.SimulateRuns(context.Background(), harness.NewRunner(1), "h264ref", modes, cfg,
		func(c *cpu.Config) { c.DRCEntries = 128; c.IssueWidth = 1; c.ContextSwitchEvery = 0 })
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Marshal(results.NewRun(rows...))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, want) {
		t.Errorf("service response differs from CLI bytes:\n--- service ---\n%.400s\n--- cli ---\n%.400s", body, want)
	}
}

// TestRepeatedQueryReplays locks the shared-cache behavior: a second
// request that changes only timing knobs (DRC size) must be served by
// replaying the first request's captured trace — the hit counter moves, the
// capture counter does not.
func TestRepeatedQueryReplays(t *testing.T) {
	r := harness.NewRunner(0)
	r.Traces = trace.NewCache(64 << 20)
	s := startServer(t, Config{Workers: 2, QueueDepth: 8, Runner: r})

	body := `{"workload": "lbm", "mode": "vcfr", "instructions": 30000}`
	if resp, b := post(t, s, "/v1/simulate", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("first simulate: %d: %s", resp.StatusCode, b)
	}
	hits0, misses0, _, _ := r.Traces.Stats()
	if misses0 == 0 {
		t.Fatal("first request did not capture")
	}

	timingOnly := `{"workload": "lbm", "mode": "vcfr", "instructions": 30000, "drc": 64}`
	if resp, b := post(t, s, "/v1/simulate", timingOnly); resp.StatusCode != http.StatusOK {
		t.Fatalf("second simulate: %d: %s", resp.StatusCode, b)
	}
	hits1, misses1, _, _ := r.Traces.Stats()
	if hits1 <= hits0 {
		t.Errorf("timing-only repeat was not a cache hit (hits %d -> %d)", hits0, hits1)
	}
	if misses1 != misses0 {
		t.Errorf("timing-only repeat re-captured (misses %d -> %d)", misses0, misses1)
	}

	// The /metrics endpoint must surface the same counters.
	_, metricsBody := get(t, s, "/metrics")
	want := fmt.Sprintf("vcfrd_trace_cache_hits_total %d", hits1)
	if !strings.Contains(string(metricsBody), want) {
		t.Errorf("/metrics missing %q", want)
	}
}

// blockingExec returns a job executor that signals when a job starts and
// holds it until released, letting tests pin the queue in known states.
func blockingExec(started chan<- string, release <-chan struct{}) func(context.Context, *Job) (results.Envelope, error) {
	return func(ctx context.Context, j *Job) (results.Envelope, error) {
		started <- j.ID
		select {
		case <-release:
			return results.NewRun(results.Run{Workload: j.Req.Workload}), nil
		case <-ctx.Done():
			return results.Envelope{}, ctx.Err()
		}
	}
}

// TestBackpressure429 fills the queue and asserts the service refuses with
// 429 + Retry-After instead of buffering unboundedly — and recovers once
// the queue drains.
func TestBackpressure429(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := startServer(t, Config{Workers: 1, QueueDepth: 1})
	s.exec = blockingExec(started, release)

	// Job 1 occupies the single worker; wait until it is actually running
	// so job 2 deterministically sits in the queue.
	if resp, b := post(t, s, "/v1/sweep", `{}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d: %s", resp.StatusCode, b)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job 1 never started")
	}
	if resp, b := post(t, s, "/v1/sweep", `{}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d: %s", resp.StatusCode, b)
	}

	// Queue (depth 1) is full: job 3 must bounce with backpressure.
	resp, body := post(t, s, "/v1/sweep", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Synchronous simulate hits the same bound.
	if resp, _ := post(t, s, "/v1/simulate", `{"workload": "lbm"}`); resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("simulate under full queue: %d, want 429", resp.StatusCode)
	}

	// Bounced jobs must leave no trace in the accounting: only jobs 1 and 2
	// were admitted, and both rejections counted.
	_, metricsBody := get(t, s, "/metrics")
	for _, want := range []string{"vcfrd_jobs_accepted_total 2", "vcfrd_jobs_rejected_total 2"} {
		if !strings.Contains(string(metricsBody), want) {
			t.Errorf("/metrics missing %q after rollback", want)
		}
	}

	close(release)
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job 2 never started after release")
	}
	// Once the queue drains, intake works again.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, s, "/v1/sweep", `{}`)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never recovered after drain")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownDrains locks the graceful-termination contract the SIGTERM
// path relies on: Shutdown refuses new work but every accepted job runs to
// completion before Shutdown returns.
func TestShutdownDrains(t *testing.T) {
	started := make(chan string, 2)
	release := make(chan struct{})
	s := New(Config{Addr: "127.0.0.1:0", Workers: 1, QueueDepth: 4})
	s.exec = blockingExec(started, release)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}

	resp, body := post(t, s, "/v1/sweep", `{}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct{ ID string }
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job never started")
	}

	shutdownDone := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownDone <- s.Shutdown(ctx)
	}()

	// Shutdown must be blocked on the in-flight job, not bailing early.
	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned %v while a job was still running", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown never returned after the job finished")
	}

	s.jobMu.Lock()
	j := s.jobs[accepted.ID]
	s.jobMu.Unlock()
	if j == nil || j.State() != JobDone {
		t.Errorf("drained job state = %v, want done", j.State())
	}
}

// TestFinishedJobRetention proves completed jobs do not accumulate for the
// life of the process: past the retention bound the oldest-finished jobs
// (and their result envelopes) are evicted from /v1/jobs/{id}, while the
// newest stay pollable.
func TestFinishedJobRetention(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 4, JobRetention: 2})
	s.exec = func(ctx context.Context, j *Job) (results.Envelope, error) {
		return results.NewRun(results.Run{Workload: j.Req.Workload}), nil
	}

	var ids []string
	for i := 0; i < 4; i++ {
		resp, body := post(t, s, "/v1/simulate", `{"workload": "lbm"}`)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d: %d: %s", i, resp.StatusCode, body)
		}
		ids = append(ids, resp.Header.Get("X-Job-Id"))
	}

	// The last job's retirement (which evicts ids[1]) may still be racing
	// the response; poll for the eviction instead of asserting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp0, _ := get(t, s, "/v1/jobs/"+ids[0])
		resp1, _ := get(t, s, "/v1/jobs/"+ids[1])
		if resp0.StatusCode == http.StatusNotFound && resp1.StatusCode == http.StatusNotFound {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("oldest jobs not evicted: %s=%d %s=%d, want 404s", ids[0], resp0.StatusCode, ids[1], resp1.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
	for _, id := range ids[2:] {
		if resp, _ := get(t, s, "/v1/jobs/"+id); resp.StatusCode != http.StatusOK {
			t.Errorf("recent job %s: %d, want 200 (still within retention)", id, resp.StatusCode)
		}
	}
}

// TestNormalizeExplicitZero locks the zero-vs-unset distinction: an explicit
// zero in the request survives normalize (reaching the harness exactly as a
// CLI `-seed 0` etc. would), while absent fields take the per-kind defaults.
func TestNormalizeExplicitZero(t *testing.T) {
	zero64, zero := int64(0), 0
	r := SimRequest{Workload: "lbm", Seed: &zero64, Spread: &zero, Scale: &zero}
	if err := r.normalize(JobRun); err != nil {
		t.Fatal(err)
	}
	if *r.Seed != 0 || *r.Spread != 0 || *r.Scale != 0 {
		t.Errorf("explicit zeros rewritten: seed=%d spread=%d scale=%d, want all 0",
			*r.Seed, *r.Spread, *r.Scale)
	}

	// The machine knobs keep the same zero-vs-unset distinction, but an
	// explicit zero is an invalid machine config, and normalize now rejects
	// it up front via cpu.Config.Validate — with the exact message the CLI
	// produces for the equivalent bad flag, because it is the same check.
	badWidth := SimRequest{Workload: "lbm", Width: &zero}
	if err := badWidth.normalize(JobRun); err == nil || err.Error() != "cpu: issue width 0 out of range [1,4]" {
		t.Errorf("width 0: err = %v, want cpu.Config.Validate's message", err)
	}
	badDRC := SimRequest{Workload: "lbm", DRC: &zero}
	if err := badDRC.normalize(JobRun); err == nil || !strings.Contains(err.Error(), "cpu: DRC 0 entries") {
		t.Errorf("drc 0: err = %v, want cpu.Config.Validate's message", err)
	}

	run := SimRequest{Workload: "lbm"}
	if err := run.normalize(JobRun); err != nil {
		t.Fatal(err)
	}
	if *run.Seed != 1 || *run.Spread != 8 || *run.Scale != 1 || *run.DRC != 128 || *run.Width != 1 {
		t.Errorf("simulate defaults: seed=%d spread=%d scale=%d drc=%d width=%d, want 1/8/1/128/1",
			*run.Seed, *run.Spread, *run.Scale, *run.DRC, *run.Width)
	}

	sweep := SimRequest{}
	if err := sweep.normalize(JobSweep); err != nil {
		t.Fatal(err)
	}
	if *sweep.Seed != 42 {
		t.Errorf("sweep default seed = %d, want 42", *sweep.Seed)
	}
}

// TestRequestValidation locks the 400 surface: bad bodies, unknown fields,
// unknown workloads and modes are rejected before touching the queue.
func TestRequestValidation(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2})
	for _, tc := range []struct{ name, body string }{
		{"empty", `{}`}, // simulate requires a workload
		{"unknown workload", `{"workload": "doom"}`},
		{"unknown mode", `{"workload": "lbm", "mode": "quantum"}`},
		{"unknown field", `{"workload": "lbm", "turbo": true}`},
		{"negative timeout", `{"workload": "lbm", "timeout_ms": -5}`},
		{"not json", `drop table jobs`},
	} {
		if resp, b := post(t, s, "/v1/simulate", tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d (%s), want 400", tc.name, resp.StatusCode, b)
		}
	}
	if resp, _ := get(t, s, "/v1/jobs/job-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: %d, want 404", resp.StatusCode)
	}
}

// TestPanicIsolation proves one panicking job fails alone: the worker
// survives and the next job on the same worker completes.
func TestPanicIsolation(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 4})
	boom := true
	s.exec = func(ctx context.Context, j *Job) (results.Envelope, error) {
		if boom {
			boom = false
			panic("simulated defect")
		}
		return results.NewRun(results.Run{Workload: j.Req.Workload}), nil
	}

	if resp, b := post(t, s, "/v1/simulate", `{"workload": "lbm"}`); resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking job: %d (%s), want 500", resp.StatusCode, b)
	}
	if resp, b := post(t, s, "/v1/simulate", `{"workload": "lbm"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("job after panic: %d (%s), want 200 from the same worker", resp.StatusCode, b)
	}
	_, metricsBody := get(t, s, "/metrics")
	if !strings.Contains(string(metricsBody), "vcfrd_job_panics_total 1") {
		t.Error("/metrics does not count the panic")
	}
}

// TestJobEndpointLifecycle follows an async sweep from 202 through done and
// checks the result envelope parses under the pinned schema.
func TestJobEndpointLifecycle(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, body := post(t, s, "/v1/sweep", `{"workloads": ["lbm"], "instructions": 20000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("sweep: %d: %s", resp.StatusCode, body)
	}
	var accepted struct{ ID string }
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(30 * time.Second)
	var v jobView
	for {
		_, b := get(t, s, "/v1/jobs/"+accepted.ID)
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == JobDone || v.State == JobFailed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s", v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if v.State != JobDone {
		t.Fatalf("job failed: %s", v.Error)
	}
	env, err := results.Unmarshal(v.Result)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != results.KindSweep || len(env.Sweep.Rows) != 3 {
		t.Errorf("sweep result: kind=%s rows=%d, want sweep with 3 rows (1 workload x 3 modes)", env.Kind, len(env.Sweep.Rows))
	}
	// The sweep reported live progress through the spine; the final view
	// retains the last report: all cells done, instructions accumulated.
	if v.Progress == nil {
		t.Fatal("finished sweep has no progress")
	}
	if v.Progress.CellsDone != 1 || v.Progress.CellsTotal != 1 || v.Progress.Instructions == 0 {
		t.Errorf("final progress = %+v, want 1/1 cells with nonzero instructions", *v.Progress)
	}
}

// pollJob waits for a job to leave the running states and returns its final
// view.
func pollJob(t *testing.T, s *Server, id string) jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	var v jobView
	for {
		_, b := get(t, s, "/v1/jobs/"+id)
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == JobDone || v.State == JobFailed {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %s", id, v.State)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestFaultsEndpointLifecycle follows a fault campaign from 202 through done
// and pins the acceptance criterion for the service surface: the finished
// result must be byte-identical to what fault.RunCampaign emits for the same
// config (which is what `faultsim -json` prints).
func TestFaultsEndpointLifecycle(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, body := post(t, s, "/v1/faults",
		`{"workloads": ["bzip2"], "mode": "vcfr", "injections": 10, "instructions": 5000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("faults: %d: %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var accepted struct{ ID string }
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	v := pollJob(t, s, accepted.ID)
	if v.State != JobDone {
		t.Fatalf("campaign job failed: %s", v.Error)
	}
	if v.Progress == nil || v.Progress.CellsDone != v.Progress.CellsTotal || v.Progress.CellsDone == 0 {
		t.Errorf("final progress = %+v, want all injections done", v.Progress)
	}

	// The CLI equivalent: faultsim -workloads bzip2 -mode vcfr
	// -injections 10 -instructions 5000 (defaults: seed 42, spread 8).
	rep, err := fault.RunCampaign(context.Background(), harness.NewRunner(1), fault.Config{
		Workloads:  []string{"bzip2"},
		Modes:      []cpu.Mode{cpu.ModeVCFR},
		Injections: 10,
		MaxInsts:   5000,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Marshal(rep.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	// The polling view re-indents its embedded result; the /result endpoint
	// is the byte-exact surface.
	resultResp, resultBody := get(t, s, "/v1/jobs/"+accepted.ID+"/result")
	if resultResp.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d: %s", resultResp.StatusCode, resultBody)
	}
	if !bytes.Equal(resultBody, want) {
		t.Errorf("service campaign differs from CLI bytes:\n--- service ---\n%.600s\n--- cli ---\n%.600s", resultBody, want)
	}
	// The view's embedded result must agree semantically.
	if env, err := results.Unmarshal(v.Result); err != nil || env.Kind != results.KindCampaign {
		t.Errorf("job view result: kind=%v err=%v, want campaign", env.Kind, err)
	}

	// The finished campaign feeds the fault.* spine counters on /metrics.
	_, metricsBody := get(t, s, "/metrics")
	for _, wantLine := range []string{
		"vcfrd_fault_campaigns_total 1",
		fmt.Sprintf("vcfrd_fault_injected_total %d", rep.Totals.Injected),
	} {
		if !strings.Contains(string(metricsBody), wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}
}

// TestAttacksEndpointLifecycle follows an attack campaign from 202 through
// done and pins the same acceptance criterion as the faults surface: the
// finished result must be byte-identical to what attack.RunCampaign emits for
// the same config (which is what `attacksim -json` prints).
func TestAttacksEndpointLifecycle(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, body := post(t, s, "/v1/attacks",
		`{"workloads": ["bzip2"], "mode": "vcfr", "payloads": ["print-and-exit"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("attacks: %d: %s", resp.StatusCode, body)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Errorf("Location = %q", loc)
	}
	var accepted struct{ ID string }
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	v := pollJob(t, s, accepted.ID)
	if v.State != JobDone {
		t.Fatalf("attack job failed: %s", v.Error)
	}
	if v.Progress == nil || v.Progress.CellsDone != v.Progress.CellsTotal || v.Progress.CellsDone == 0 {
		t.Errorf("final progress = %+v, want all cells done", v.Progress)
	}

	// The CLI equivalent: attacksim -workloads bzip2 -mode vcfr
	// -payloads print-and-exit (defaults: seed 42, spread 8, budget 16).
	rep, err := attack.RunCampaign(context.Background(), harness.NewRunner(1), attack.Config{
		Workloads: []string{"bzip2"},
		Modes:     []cpu.Mode{cpu.ModeVCFR},
		Payloads:  []attack.Payload{attack.PayloadPrint},
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Marshal(rep.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	resultResp, resultBody := get(t, s, "/v1/jobs/"+accepted.ID+"/result")
	if resultResp.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d: %s", resultResp.StatusCode, resultBody)
	}
	if !bytes.Equal(resultBody, want) {
		t.Errorf("service campaign differs from CLI bytes:\n--- service ---\n%.600s\n--- cli ---\n%.600s", resultBody, want)
	}
	if env, err := results.Unmarshal(v.Result); err != nil || env.Kind != results.KindAttack {
		t.Errorf("job view result: kind=%v err=%v, want attack", env.Kind, err)
	}

	// The finished campaign feeds the attack.* spine counters on /metrics.
	_, metricsBody := get(t, s, "/metrics")
	for _, wantLine := range []string{
		"vcfrd_attack_campaigns_total 1",
		fmt.Sprintf("vcfrd_attack_leaks_total %d", rep.Totals.Leaks),
		fmt.Sprintf("vcfrd_attack_blocked_unmapped_rpc_total %d", rep.Totals.BlockedRPC),
	} {
		if !strings.Contains(string(metricsBody), wantLine) {
			t.Errorf("/metrics missing %q", wantLine)
		}
	}

	// Request validation rides the same vocabulary as the CLI flags.
	if resp, _ := post(t, s, "/v1/attacks", `{"payloads": ["rootkit"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad payload accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(t, s, "/v1/attacks", `{"leak_budget": -1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("negative leak_budget accepted: %d", resp.StatusCode)
	}
}

// TestMulticoreEndpointLifecycle follows a multicore campaign submitted
// through the unified jobs route from 202 through done and pins the
// acceptance criterion for the service surface: the finished result must be
// byte-identical to what multicore.RunCampaign emits for the same config
// (which is what `clustersim -json` prints).
func TestMulticoreEndpointLifecycle(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, body := post(t, s, "/v1/jobs",
		`{"kind": "multicore", "workloads": ["bzip2"], "mode": "vcfr", "cells": ["1c2t"], "quantum": 1000, "instructions": 5000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("multicore: %d: %s", resp.StatusCode, body)
	}
	var accepted struct{ ID string }
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}

	v := pollJob(t, s, accepted.ID)
	if v.State != JobDone {
		t.Fatalf("multicore job failed: %s", v.Error)
	}
	if v.Progress == nil || v.Progress.CellsDone != v.Progress.CellsTotal || v.Progress.CellsDone == 0 {
		t.Errorf("final progress = %+v, want all units done", v.Progress)
	}

	// The CLI equivalent: clustersim -workloads bzip2 -mode vcfr -cells 1c2t
	// -quantum 1000 -instructions 5000 (defaults: seed 42, spread 8).
	rep, err := multicore.RunCampaign(context.Background(), harness.NewRunner(1), multicore.Config{
		Workloads: []string{"bzip2"},
		Modes:     []cpu.Mode{cpu.ModeVCFR},
		Cells:     []multicore.Cell{{Cores: 1, Tenants: 2}},
		Quantum:   1000,
		MaxInsts:  5000,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := results.Marshal(rep.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	resultResp, resultBody := get(t, s, "/v1/jobs/"+accepted.ID+"/result")
	if resultResp.StatusCode != http.StatusOK {
		t.Fatalf("job result: %d: %s", resultResp.StatusCode, resultBody)
	}
	if !bytes.Equal(resultBody, want) {
		t.Errorf("service campaign differs from CLI bytes:\n--- service ---\n%.600s\n--- cli ---\n%.600s", resultBody, want)
	}
	if env, err := results.Unmarshal(v.Result); err != nil || env.Kind != results.KindMulticore {
		t.Errorf("job view result: kind=%v err=%v, want multicore", env.Kind, err)
	}

	// Request validation rides the same vocabulary as the CLI flags.
	if resp, _ := post(t, s, "/v1/jobs", `{"kind": "multicore", "cells": ["2x4"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cell spec accepted: %d", resp.StatusCode)
	}
	if resp, _ := post(t, s, "/v1/jobs", `{"kind": "multicore", "workloads": ["doom"]}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown workload accepted: %d", resp.StatusCode)
	}
}

// TestFaultsBackpressureAndCancellation exercises the campaign endpoint's
// two failure surfaces: a full queue refuses with 429, and a job deadline
// mid-campaign yields a done job whose envelope is the partial coverage
// table (full row plan, unexecuted rows marked), not an error.
func TestFaultsBackpressureAndCancellation(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := startServer(t, Config{Workers: 1, QueueDepth: 1})
	realExec := s.exec
	s.exec = blockingExec(started, release)

	if resp, b := post(t, s, "/v1/faults", `{}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d: %s", resp.StatusCode, b)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job 1 never started")
	}
	if resp, b := post(t, s, "/v1/faults", `{}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d: %s", resp.StatusCode, b)
	}
	resp, body := post(t, s, "/v1/faults", `{}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d (%s), want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	close(release)
	<-started // job 2 reaches the worker, then finishes immediately

	// Queue drained; restore the real executor and run a campaign under a
	// deadline too short to execute anything.
	s.exec = realExec
	deadline := time.Now().Add(5 * time.Second)
	var accepted struct{ ID string }
	for {
		resp, body = post(t, s, "/v1/faults",
			`{"workloads": ["bzip2"], "mode": "vcfr", "injections": 10, "timeout_ms": 1}`)
		if resp.StatusCode == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never recovered: %d: %s", resp.StatusCode, body)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := json.Unmarshal(body, &accepted); err != nil {
		t.Fatal(err)
	}
	v := pollJob(t, s, accepted.ID)
	if v.State != JobDone {
		t.Fatalf("deadline-bounded campaign failed instead of returning partial rows: %s", v.Error)
	}
	env, err := results.Unmarshal(v.Result)
	if err != nil {
		t.Fatal(err)
	}
	if env.Kind != results.KindCampaign || env.Campaign == nil {
		t.Fatalf("result kind = %s, want campaign", env.Kind)
	}
	if !env.Campaign.Partial {
		t.Error("deadline-bounded campaign not marked partial")
	}
	if len(env.Campaign.Rows) == 0 {
		t.Fatal("partial campaign carries no rows")
	}
	errored := 0
	for _, r := range env.Campaign.Rows {
		if r.Error != "" {
			errored++
		}
	}
	if errored == 0 {
		t.Error("partial campaign has no error-marked rows")
	}
}

// TestFaultsRequestValidation locks the 400 surface of the campaign
// endpoint.
func TestFaultsRequestValidation(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 2})
	for _, tc := range []struct{ name, body string }{
		{"unknown fault kind", `{"faults": ["cosmic-ray"]}`},
		{"unknown workload", `{"workloads": ["doom"]}`},
		{"unknown mode", `{"mode": "quantum"}`},
		{"negative injections", `{"injections": -1}`},
		{"negative bits", `{"bits": -2}`},
		{"unknown field", `{"turbo": true}`},
	} {
		if resp, b := post(t, s, "/v1/faults", tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d (%s), want 400", tc.name, resp.StatusCode, b)
		}
	}
}

// TestSimulateInterval drives the spine's interval sampling end to end over
// HTTP: a simulate request with "interval" set must produce rows whose
// per-window series covers the whole run.
func TestSimulateInterval(t *testing.T) {
	s := startServer(t, Config{Workers: 1, QueueDepth: 4})
	resp, body := post(t, s, "/v1/simulate",
		`{"workload": "lbm", "mode": "vcfr", "instructions": 30000, "interval": 10000}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d: %s", resp.StatusCode, body)
	}
	env, err := results.Unmarshal(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(env.Run) != 1 {
		t.Fatalf("rows = %d, want 1", len(env.Run))
	}
	row := env.Run[0]
	if len(row.Intervals) < 3 {
		t.Fatalf("intervals = %d, want >= 3 (30000 instructions / 10000 window)", len(row.Intervals))
	}
	last := row.Intervals[len(row.Intervals)-1]
	if last.Instructions != row.Result.Stats.Instructions {
		t.Errorf("last interval cumulative instructions = %d, want the run total %d",
			last.Instructions, row.Result.Stats.Instructions)
	}
	var winSum uint64
	for _, iv := range row.Intervals {
		winSum += iv.WindowInstructions
	}
	if winSum != last.Instructions {
		t.Errorf("sum of window instructions = %d, want cumulative %d", winSum, last.Instructions)
	}
}
