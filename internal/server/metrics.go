package server

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"time"

	"vcfr/internal/attack"
	"vcfr/internal/fault"
	"vcfr/internal/realbin"
	"vcfr/internal/stats"
)

// metrics is the server's observability state: job counters by lifecycle
// state, queue pressure, and per-stage latency histograms. The scalar series
// are registered into a stats.Registry at construction — name, help, and
// type live only there, and /metrics is generated from the registry, so a
// counter added to the registry cannot be silently dropped from the
// exposition (metrics_test.go asserts the exactly-once property). The
// fixed-bucket histograms keep their hand-rolled rendering: the registry
// models scalars, and the paper repo carries no metrics dependency.
type metrics struct {
	mu  sync.Mutex
	reg *stats.Registry

	accepted uint64 // jobs admitted to the queue
	rejected uint64 // jobs refused with 429 (queue full)
	queued   int64  // currently waiting
	running  int64  // currently executing
	done     int64  // finished successfully (cumulative)
	failed   int64  // finished with an error (cumulative)
	panicked uint64 // failures caused by a recovered panic (subset of failed)

	// Mirrors of state owned elsewhere (the queue channel, the shared trace
	// cache), copied in under mu at render time so the registry has one
	// consistent instant to snapshot.
	queueDepth   int64
	queueCap     int64
	traceHits    uint64
	traceMisses  uint64
	traceBytes   int64
	traceEntries int64

	// Fault-campaign outcome totals, merged in as each campaign job
	// finishes, plus the count of finished campaigns.
	faults    fault.Stats
	campaigns uint64

	// Attack-campaign activity totals, merged in the same way.
	attacks         attack.Stats
	attackCampaigns uint64

	// Mirror of the process-wide real-binary front-end totals (lifts,
	// refusals, recovered blocks), refreshed at render time like the trace
	// cache mirrors.
	realbin realbin.Totals

	queueWait *histogram
	runDur    *histogram
}

func newMetrics() *metrics {
	// Bounds chosen for simulation jobs: sub-millisecond queue waits up to
	// multi-minute uncapped sweeps.
	bounds := []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}
	m := &metrics{
		queueWait: newHistogram(bounds),
		runDur:    newHistogram(bounds),
	}
	// Registration order is exposition order; series sharing a metric name
	// (jobs.state) must be registered consecutively.
	r := stats.New()
	r.Counter("jobs.accepted", "Jobs admitted to the queue.", &m.accepted)
	r.Counter("jobs.rejected", "Jobs refused with 429 because the queue was full.", &m.rejected)
	stateHelp := "Jobs currently in each lifecycle state (queued, running) and cumulative terminal counts (done, failed)."
	r.GaugeL("jobs.state", `state="queued"`, stateHelp, &m.queued)
	r.GaugeL("jobs.state", `state="running"`, stateHelp, &m.running)
	r.GaugeL("jobs.state", `state="done"`, stateHelp, &m.done)
	r.GaugeL("jobs.state", `state="failed"`, stateHelp, &m.failed)
	r.Counter("job.panics", "Jobs failed by a recovered panic.", &m.panicked)
	r.Gauge("queue.depth", "Jobs waiting in the bounded queue.", &m.queueDepth)
	r.Gauge("queue.capacity", "Bound of the job queue.", &m.queueCap)
	r.Counter("trace.cache.hits", "Trace cache hits (replays and coalesced captures) across all jobs.", &m.traceHits)
	r.Counter("trace.cache.misses", "Trace cache misses (each one paid a capture).", &m.traceMisses)
	r.Gauge("trace.cache.bytes", "Bytes of trace data currently cached.", &m.traceBytes)
	r.Gauge("trace.cache.entries", "Traces currently cached.", &m.traceEntries)
	r.Counter("fault.campaigns", "Fault-injection campaigns finished.", &m.campaigns)
	m.faults.Register(r)
	r.Counter("attack.campaigns", "Adversary-in-the-loop attack campaigns finished.", &m.attackCampaigns)
	m.attacks.Register(r)
	m.realbin.Register(r)
	m.reg = r
	return m
}

func (m *metrics) jobAccepted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accepted++
	m.queued++
}

// jobAcceptRolledBack undoes one jobAccepted for a job that was registered
// optimistically but then bounced off a full queue.
func (m *metrics) jobAcceptRolledBack() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accepted--
	m.queued--
}

func (m *metrics) jobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

func (m *metrics) jobStarted(queueWait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queued--
	m.running++
	m.queueWait.observe(queueWait.Seconds())
}

// campaignFinished folds one finished campaign's outcome totals into the
// cumulative fault.* counters.
func (m *metrics) campaignFinished(st fault.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.campaigns++
	m.faults.Merge(st)
}

// attackCampaignFinished folds one finished attack campaign's activity
// totals into the cumulative attack.* counters.
func (m *metrics) attackCampaignFinished(st attack.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.attackCampaigns++
	m.attacks.Merge(st)
}

// retryAfter estimates, in whole seconds, how long a refused client should
// wait for a queue slot: the queue's current occupancy divided by the
// observed drain rate (mean job duration over the worker pool, from the
// same runDur histogram /metrics exports). Before any job has finished
// there is no observed rate and the old constant 1 stands in.
func (m *metrics) retryAfter(queueLen, workers int) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.runDur.n == 0 {
		return 1
	}
	if workers < 1 {
		workers = 1
	}
	mean := m.runDur.sum / float64(m.runDur.n)
	secs := int(math.Ceil(mean * float64(queueLen+1) / float64(workers)))
	if secs < 1 {
		return 1
	}
	if secs > 3600 {
		return 3600
	}
	return secs
}

func (m *metrics) jobPanicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panicked++
}

func (m *metrics) jobFinished(ok bool, runDur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	if ok {
		m.done++
	} else {
		m.failed++
	}
	m.runDur.observe(runDur.Seconds())
}

// render writes the Prometheus text exposition: the registry-backed scalars
// first (generated — see newMetrics), then the histograms. traceHits/… come
// from the shared trace cache; queueDepth/queueCap from the job queue
// channel.
func (m *metrics) render(w io.Writer, queueDepth, queueCap int, traceHits, traceMisses uint64, traceBytes int64, traceEntries int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queueDepth, m.queueCap = int64(queueDepth), int64(queueCap)
	m.traceHits, m.traceMisses = traceHits, traceMisses
	m.traceBytes, m.traceEntries = traceBytes, int64(traceEntries)
	m.realbin = realbin.TotalsSnapshot()
	stats.WritePrometheus(w, m.reg.Snapshot(), "vcfrd")

	fmt.Fprintln(w, "# HELP vcfrd_stage_seconds Per-stage job latency: queue = acceptance to execution start, run = execution wall clock.")
	fmt.Fprintln(w, "# TYPE vcfrd_stage_seconds histogram")
	m.queueWait.render(w, "vcfrd_stage_seconds", "queue")
	m.runDur.render(w, "vcfrd_stage_seconds", "run")
}

// histogram is a fixed-bucket latency histogram in seconds.
type histogram struct {
	bounds []float64 // upper bounds, ascending; an implicit +Inf follows
	counts []uint64  // len(bounds)+1
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// render emits the histogram's series in Prometheus cumulative-bucket form
// under name{stage="..."}; the caller prints HELP/TYPE once for the shared
// metric name and holds the metrics mutex.
func (h *histogram) render(w io.Writer, name, stage string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"%g\"} %d\n", name, stage, b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, cum)
	fmt.Fprintf(w, "%s_sum{stage=%q} %g\n", name, stage, h.sum)
	fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, stage, h.n)
}
