package server

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// metrics is the server's observability state: job counters by lifecycle
// state, queue pressure, and per-stage latency histograms. Everything is
// hand-rolled on one mutex — the paper repo carries no metrics dependency,
// and the render below speaks the Prometheus text exposition format, so any
// standard scraper can consume /metrics unchanged.
type metrics struct {
	mu sync.Mutex

	accepted  uint64 // jobs admitted to the queue
	rejected  uint64 // jobs refused with 429 (queue full)
	queued    int    // currently waiting
	running   int    // currently executing
	done      uint64 // finished successfully (cumulative)
	failed    uint64 // finished with an error (cumulative)
	panicked  uint64 // failures caused by a recovered panic (subset of failed)
	queueWait *histogram
	runDur    *histogram
}

func newMetrics() *metrics {
	// Bounds chosen for simulation jobs: sub-millisecond queue waits up to
	// multi-minute uncapped sweeps.
	bounds := []float64{0.001, 0.005, 0.025, 0.1, 0.5, 1, 5, 30, 120}
	return &metrics{
		queueWait: newHistogram(bounds),
		runDur:    newHistogram(bounds),
	}
}

func (m *metrics) jobAccepted() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accepted++
	m.queued++
}

// jobAcceptRolledBack undoes one jobAccepted for a job that was registered
// optimistically but then bounced off a full queue.
func (m *metrics) jobAcceptRolledBack() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.accepted--
	m.queued--
}

func (m *metrics) jobRejected() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rejected++
}

func (m *metrics) jobStarted(queueWait time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.queued--
	m.running++
	m.queueWait.observe(queueWait.Seconds())
}

func (m *metrics) jobPanicked() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.panicked++
}

func (m *metrics) jobFinished(ok bool, runDur time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.running--
	if ok {
		m.done++
	} else {
		m.failed++
	}
	m.runDur.observe(runDur.Seconds())
}

// render writes the Prometheus text exposition. traceHits/… come from the
// shared trace cache; queueDepth/queueCap from the job queue channel.
func (m *metrics) render(w io.Writer, queueDepth, queueCap int, traceHits, traceMisses uint64, traceBytes int64, traceEntries int) {
	m.mu.Lock()
	defer m.mu.Unlock()

	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }
	p("# HELP vcfrd_jobs_accepted_total Jobs admitted to the queue.")
	p("# TYPE vcfrd_jobs_accepted_total counter")
	p("vcfrd_jobs_accepted_total %d", m.accepted)
	p("# HELP vcfrd_jobs_rejected_total Jobs refused with 429 because the queue was full.")
	p("# TYPE vcfrd_jobs_rejected_total counter")
	p("vcfrd_jobs_rejected_total %d", m.rejected)
	p("# HELP vcfrd_jobs_state Jobs currently in each lifecycle state (queued, running) and cumulative terminal counts (done, failed).")
	p("# TYPE vcfrd_jobs_state gauge")
	p(`vcfrd_jobs_state{state="queued"} %d`, m.queued)
	p(`vcfrd_jobs_state{state="running"} %d`, m.running)
	p(`vcfrd_jobs_state{state="done"} %d`, m.done)
	p(`vcfrd_jobs_state{state="failed"} %d`, m.failed)
	p("# HELP vcfrd_job_panics_total Jobs failed by a recovered panic.")
	p("# TYPE vcfrd_job_panics_total counter")
	p("vcfrd_job_panics_total %d", m.panicked)
	p("# HELP vcfrd_queue_depth Jobs waiting in the bounded queue.")
	p("# TYPE vcfrd_queue_depth gauge")
	p("vcfrd_queue_depth %d", queueDepth)
	p("# HELP vcfrd_queue_capacity Bound of the job queue.")
	p("# TYPE vcfrd_queue_capacity gauge")
	p("vcfrd_queue_capacity %d", queueCap)
	p("# HELP vcfrd_trace_cache_hits_total Trace cache hits (replays and coalesced captures) across all jobs.")
	p("# TYPE vcfrd_trace_cache_hits_total counter")
	p("vcfrd_trace_cache_hits_total %d", traceHits)
	p("# HELP vcfrd_trace_cache_misses_total Trace cache misses (each one paid a capture).")
	p("# TYPE vcfrd_trace_cache_misses_total counter")
	p("vcfrd_trace_cache_misses_total %d", traceMisses)
	p("# HELP vcfrd_trace_cache_bytes Bytes of trace data currently cached.")
	p("# TYPE vcfrd_trace_cache_bytes gauge")
	p("vcfrd_trace_cache_bytes %d", traceBytes)
	p("# HELP vcfrd_trace_cache_entries Traces currently cached.")
	p("# TYPE vcfrd_trace_cache_entries gauge")
	p("vcfrd_trace_cache_entries %d", traceEntries)

	p("# HELP vcfrd_stage_seconds Per-stage job latency: queue = acceptance to execution start, run = execution wall clock.")
	p("# TYPE vcfrd_stage_seconds histogram")
	m.queueWait.render(w, "vcfrd_stage_seconds", "queue")
	m.runDur.render(w, "vcfrd_stage_seconds", "run")
}

// histogram is a fixed-bucket latency histogram in seconds.
type histogram struct {
	bounds []float64 // upper bounds, ascending; an implicit +Inf follows
	counts []uint64  // len(bounds)+1
	sum    float64
	n      uint64
}

func newHistogram(bounds []float64) *histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// render emits the histogram's series in Prometheus cumulative-bucket form
// under name{stage="..."}; the caller prints HELP/TYPE once for the shared
// metric name and holds the metrics mutex.
func (h *histogram) render(w io.Writer, name, stage string) {
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"%g\"} %d\n", name, stage, b, cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket{stage=%q,le=\"+Inf\"} %d\n", name, stage, cum)
	fmt.Fprintf(w, "%s_sum{stage=%q} %g\n", name, stage, h.sum)
	fmt.Fprintf(w, "%s_count{stage=%q} %d\n", name, stage, h.n)
}
