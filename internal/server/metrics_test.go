package server

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vcfr/internal/attack"
	"vcfr/internal/fault"
	"vcfr/internal/realbin"
	"vcfr/internal/realbin/fixtures"
	"vcfr/internal/stats"
)

// TestMetricsRegistryExactlyOnce is the spine's anti-drift guarantee for the
// server: every value registered into the metrics registry appears in the
// /metrics exposition exactly once — one sample line per series, and HELP/TYPE
// exactly once per metric name. A counter added to the registry therefore
// cannot be silently dropped from (or duplicated in) the exposition, because
// the text is generated from the same registry this test walks.
func TestMetricsRegistryExactlyOnce(t *testing.T) {
	m := newMetrics()
	m.jobAccepted()
	m.jobStarted(5 * time.Millisecond)
	m.jobFinished(true, 80*time.Millisecond)
	m.campaignFinished(fault.Stats{Injected: 4, DetectedUnmappedR: 3, Masked: 1})
	m.attackCampaignFinished(attack.Stats{ChainsBuilt: 5, ChainsFired: 5,
		Successes: 2, BlockedRPC: 3, Leaks: 40, Rerandomizations: 8})

	var b strings.Builder
	m.render(&b, 3, 16, 7, 2, 4096, 5)
	out := b.String()
	lines := strings.Split(out, "\n")

	countPrefix := func(prefix string) int {
		n := 0
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				n++
			}
		}
		return n
	}

	seenName := make(map[string]bool)
	m.reg.Snapshot().Each(func(d stats.Desc, _ stats.Value) {
		name := stats.PromName("vcfrd", d)
		series := name
		if d.Labels != "" {
			series += "{" + d.Labels + "}"
		}
		if got := countPrefix(series + " "); got != 1 {
			t.Errorf("series %s: %d sample lines, want exactly 1", series, got)
		}
		if !seenName[name] {
			seenName[name] = true
			if got := countPrefix("# HELP " + name + " "); got != 1 {
				t.Errorf("metric %s: %d HELP lines, want exactly 1", name, got)
			}
			if got := countPrefix("# TYPE " + name + " "); got != 1 {
				t.Errorf("metric %s: %d TYPE lines, want exactly 1", name, got)
			}
		}
	})
	if len(seenName) == 0 {
		t.Fatal("registry rendered no metrics")
	}
}

// TestMetricsRenderFormat pins the generated exposition to the exact bytes
// the hand-written renderer used to produce, so swapping in registry-driven
// generation is invisible to scrapers.
func TestMetricsRenderFormat(t *testing.T) {
	m := newMetrics()
	m.jobAccepted()
	m.jobAccepted()
	m.jobStarted(2 * time.Millisecond)
	m.jobFinished(false, 200*time.Millisecond)
	m.jobPanicked()
	m.jobRejected()
	m.campaignFinished(fault.Stats{Injected: 10, DetectedUnmappedR: 6,
		DetectedIllegal: 2, Crashes: 1, SilentCorruptions: 1})
	m.attackCampaignFinished(attack.Stats{ChainsBuilt: 7, ChainsFired: 6,
		Successes: 2, BlockedRPC: 3, BlockedIllegal: 1, Leaks: 55,
		CodePages: 40, MapPages: 15, Rerandomizations: 9})

	// The realbin counters are process-wide and refreshed into the metrics
	// mirror at render time. Lift a fixture so they are provably nonzero,
	// then snapshot: the server package runs no parallel tests, so the
	// render sees exactly this snapshot.
	if _, err := realbin.Load(fixtures.Fib, "fib.elf"); err != nil {
		t.Fatal(err)
	}
	snap := realbin.TotalsSnapshot()
	if snap.BinariesLifted == 0 {
		t.Fatal("realbin totals not accumulating")
	}

	var b strings.Builder
	m.render(&b, 1, 8, 3, 1, 1024, 2)
	out := b.String()

	want := []string{
		"# HELP vcfrd_jobs_accepted_total Jobs admitted to the queue.\n" +
			"# TYPE vcfrd_jobs_accepted_total counter\n" +
			"vcfrd_jobs_accepted_total 2\n",
		"vcfrd_jobs_rejected_total 1\n",
		"# TYPE vcfrd_jobs_state gauge\n" +
			"vcfrd_jobs_state{state=\"queued\"} 1\n" +
			"vcfrd_jobs_state{state=\"running\"} 0\n" +
			"vcfrd_jobs_state{state=\"done\"} 0\n" +
			"vcfrd_jobs_state{state=\"failed\"} 1\n",
		"vcfrd_job_panics_total 1\n",
		"vcfrd_queue_depth 1\n",
		"vcfrd_queue_capacity 8\n",
		"vcfrd_trace_cache_hits_total 3\n",
		"vcfrd_trace_cache_misses_total 1\n",
		"vcfrd_trace_cache_bytes 1024\n",
		"vcfrd_trace_cache_entries 2\n",
		"vcfrd_fault_campaigns_total 1\n",
		"vcfrd_fault_injected_total 10\n",
		"vcfrd_fault_detected_unmapped_rpc_total 6\n",
		"vcfrd_fault_detected_illegal_instruction_total 2\n",
		"vcfrd_fault_crashes_total 1\n",
		"vcfrd_fault_sdc_total 1\n",
		"vcfrd_fault_masked_total 0\n",
		"vcfrd_fault_hangs_total 0\n",
		"vcfrd_attack_campaigns_total 1\n",
		"vcfrd_attack_chains_built_total 7\n",
		"vcfrd_attack_chains_fired_total 6\n",
		"vcfrd_attack_success_total 2\n",
		"vcfrd_attack_blocked_unmapped_rpc_total 3\n",
		"vcfrd_attack_blocked_illegal_instruction_total 1\n",
		"vcfrd_attack_crashed_total 0\n",
		"vcfrd_attack_no_effect_total 0\n",
		"vcfrd_attack_leaks_total 55\n",
		"vcfrd_attack_pages_code_total 40\n",
		"vcfrd_attack_pages_map_total 15\n",
		"vcfrd_attack_rerandomizations_total 9\n",
		"# HELP vcfrd_realbin_binaries_lifted_total ELF binaries lifted to VX images.\n" +
			"# TYPE vcfrd_realbin_binaries_lifted_total counter\n" +
			fmt.Sprintf("vcfrd_realbin_binaries_lifted_total %d\n", snap.BinariesLifted),
		fmt.Sprintf("vcfrd_realbin_instructions_lifted_total %d\n", snap.InstructionsLifted),
		fmt.Sprintf("vcfrd_realbin_blocks_recovered_total %d\n", snap.BlocksRecovered),
		fmt.Sprintf("vcfrd_realbin_landing_pads_total %d\n", snap.LandingPads),
		fmt.Sprintf("vcfrd_realbin_unresolved_indirects_total %d\n", snap.UnresolvedIndirects),
		fmt.Sprintf("vcfrd_realbin_refused_binaries_total %d\n", snap.RefusedBinaries),
		fmt.Sprintf("vcfrd_realbin_refused_functions_total %d\n", snap.RefusedFunctions),
		"# TYPE vcfrd_stage_seconds histogram\n",
	}
	pos := 0
	for _, w := range want {
		i := strings.Index(out[pos:], w)
		if i < 0 {
			t.Fatalf("exposition missing (or out of order) %q\nfull output:\n%s", w, out)
		}
		pos += i + len(w)
	}
}
