// Package server implements vcfrd, the long-running HTTP/JSON simulation
// service: it accepts simulation, sweep, and fault-campaign jobs, runs them
// on a shared
// harness.Runner whose trace cache turns repeated timing-only queries into
// replays, and answers every request in the one versioned wire format of
// internal/results.
//
// Endpoints:
//
//	POST /v1/simulate   one workload, one layout seed — synchronous; the
//	                    response body is byte-identical to the equivalent
//	                    `vcfrsim -stats-json` invocation
//	POST /v1/sweep      full stats sweep — asynchronous; returns 202 and a
//	                    job id to poll
//	POST /v1/faults     fault-injection campaign — asynchronous; returns 202
//	                    and a job id to poll; the finished result is
//	                    byte-identical to `faultsim -json`
//	POST /v1/attacks    adversary-in-the-loop attack campaign — asynchronous;
//	                    returns 202 and a job id to poll; the finished result
//	                    is byte-identical to `attacksim -json`
//	GET  /v1/jobs/{id}  job state, timings, error, and (when done) result
//	GET  /v1/jobs/{id}/result
//	                    the finished job's result envelope, streamed exactly
//	                    as results.Marshal produced it (byte-identical to
//	                    the equivalent CLI invocation)
//	GET  /v1/workloads  the built-in workload catalog
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text: jobs by state, queue pressure,
//	                    trace-cache effectiveness, per-stage latency
//	GET  /debug/pprof/  the standard Go profiler
//
// Robustness model: the job queue is bounded and overload answers 429 with
// Retry-After (backpressure, not collapse); every job runs under a context
// deadline with real mid-simulation cancellation; a panicking job fails
// alone; Shutdown stops intake, lets the HTTP layer finish, and drains
// every accepted job before returning.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
	"vcfr/internal/workloads"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:8642". Port 0 picks an
	// ephemeral port (see Server.Addr).
	Addr string
	// Workers is the number of concurrent job executors. <= 0 means 2.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs; a
	// full queue answers 429. <= 0 means 64.
	QueueDepth int
	// JobTimeout is the default per-job execution deadline; requests may
	// shorten it per job (timeout_ms) but never extend it. 0 = none.
	JobTimeout time.Duration
	// JobRetention caps how many finished jobs (and their result envelopes)
	// stay pollable at /v1/jobs/{id}; beyond it the oldest-finished are
	// evicted, which is what keeps a long-running instance's memory bounded.
	// <= 0 means 256.
	JobRetention int
	// Runner executes jobs. nil builds a default runner with a 256 MiB
	// trace cache. Give it a trace.Cache to share captures across requests.
	Runner *harness.Runner
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 256
	}
	if c.Runner == nil {
		c.Runner = harness.NewRunner(0)
		c.Runner.Traces = trace.NewCache(256 << 20)
	}
	return c
}

// Server is one vcfrd instance. Create with New, start with Start, stop
// with Shutdown.
type Server struct {
	cfg     Config
	runner  *harness.Runner
	metrics *metrics

	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	queue    chan *Job
	jobMu    sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention eviction
	jobSeq   atomic.Uint64
	wg       sync.WaitGroup // job workers
	intakeMu sync.Mutex     // serializes enqueue vs. shutdown's queue close
	draining bool           // guarded by intakeMu

	// exec runs one job's computation. Production is (*Server).execute;
	// lifecycle tests substitute controllable executors.
	exec func(context.Context, *Job) (results.Envelope, error)
}

// New builds a server; it does not listen yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  cfg.Runner,
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
	}
	s.exec = s.execute
	s.routes()
	s.http = &http.Server{Handler: s.mux}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/faults", s.handleFaults)
	s.mux.HandleFunc("POST /v1/attacks", s.handleAttacks)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Start binds the listen address, launches the job workers, and serves HTTP
// in the background. It returns once the listener is bound, so Addr is
// valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails this way if the listener dies under us;
			// nothing to do but let in-flight work finish.
			_ = err
		}
	}()
	return nil
}

// Addr returns the bound listen address (resolving port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: new jobs are refused (503), the
// HTTP layer finishes in-flight requests (including synchronous simulate
// calls still waiting on their job), and every job already accepted into
// the queue runs to completion before Shutdown returns. ctx bounds the
// whole drain; an expired ctx abandons the remaining work and returns its
// error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.intakeMu.Lock()
	already := s.draining
	s.draining = true
	s.intakeMu.Unlock()

	err := s.http.Shutdown(ctx)

	if !already {
		// No enqueue can be in flight past this point: enqueue() holds
		// intakeMu and re-checks draining before touching the channel.
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return err
}

// errQueueFull and errDraining distinguish the two refusal modes.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server shutting down")
)

// enqueue registers j and admits it to the bounded queue without blocking:
// a full queue is backpressure the caller must see, not hidden latency.
// Registration and accounting happen before the channel send — a worker can
// dequeue j the instant it enters the channel, and jobStarted must never
// run against a job the accepted counters haven't seen (the queued gauge
// would dip negative and /v1/jobs/{id} would briefly 404 a running job).
func (s *Server) enqueue(j *Job) error {
	s.intakeMu.Lock()
	defer s.intakeMu.Unlock()
	if s.draining {
		return errDraining
	}
	s.jobMu.Lock()
	s.jobs[j.ID] = j
	s.jobMu.Unlock()
	s.metrics.jobAccepted()
	select {
	case s.queue <- j:
	default:
		s.jobMu.Lock()
		delete(s.jobs, j.ID)
		s.jobMu.Unlock()
		s.metrics.jobAcceptRolledBack()
		s.metrics.jobRejected()
		return errQueueFull
	}
	return nil
}

// retireJob records j as finished and evicts the oldest finished jobs past
// the retention bound, so completed envelopes don't accumulate for the life
// of the process. Waiters holding the *Job (the synchronous simulate path)
// are unaffected — eviction only drops the map entry that serves polling.
func (s *Server) retireJob(j *Job) {
	s.jobMu.Lock()
	defer s.jobMu.Unlock()
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.JobRetention {
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
}

func (s *Server) newJob(kind JobKind, req SimRequest) *Job {
	return newJob(fmt.Sprintf("job-%06d", s.jobSeq.Add(1)), kind, req)
}

// writeError answers with the service's uniform error shape.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeRefusal maps the two intake refusals onto HTTP: queue pressure is
// 429 with a Retry-After hint, drain is 503.
func writeRefusal(w http.ResponseWriter, err error) {
	if errors.Is(err, errQueueFull) {
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	}
	writeError(w, http.StatusServiceUnavailable, "%v", err)
}

func decodeRequest(r *http.Request, kind JobKind) (SimRequest, error) {
	var req SimRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if err := req.normalize(kind); err != nil {
		return req, err
	}
	return req, nil
}

// handleSimulate runs one simulation synchronously: the job goes through
// the same queue and workers as everything else (so backpressure and
// deadlines apply), and the handler streams back the job's envelope bytes
// untouched — the bytes results.Marshal produced, hence byte-identical to
// the CLI.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, JobRun)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.newJob(JobRun, req)
	if err := s.enqueue(j); err != nil {
		writeRefusal(w, err)
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// The client went away; the job still runs to completion and
		// remains pollable at /v1/jobs/{id}.
		writeError(w, http.StatusRequestTimeout, "client cancelled while job %s still runs", j.ID)
		return
	}
	body, errMsg := j.Envelope()
	if errMsg != "" {
		writeError(w, http.StatusInternalServerError, "%s", errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-Id", j.ID)
	_, _ = w.Write(body)
}

// handleSweep enqueues an asynchronous sweep and answers 202 with the job
// id to poll.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, JobSweep)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.newJob(JobSweep, req)
	if err := s.enqueue(j); err != nil {
		writeRefusal(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"id":     j.ID,
		"state":  string(j.State()),
		"status": "/v1/jobs/" + j.ID,
	})
}

// handleFaults enqueues an asynchronous fault-injection campaign and answers
// 202 with the job id to poll, exactly like handleSweep; the finished job's
// result is the campaign envelope faultsim -json emits.
func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, JobFaults)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.newJob(JobFaults, req)
	if err := s.enqueue(j); err != nil {
		writeRefusal(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"id":     j.ID,
		"state":  string(j.State()),
		"status": "/v1/jobs/" + j.ID,
	})
}

// handleAttacks enqueues an asynchronous adversary-in-the-loop attack
// campaign, exactly like handleFaults; the finished job's result is the
// work-factor envelope attacksim -json emits.
func (s *Server) handleAttacks(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, JobAttacks)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	j := s.newJob(JobAttacks, req)
	if err := s.enqueue(j); err != nil {
		writeRefusal(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"id":     j.ID,
		"state":  string(j.State()),
		"status": "/v1/jobs/" + j.ID,
	})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(j.view())
}

// handleJobResult streams a finished job's envelope bytes untouched — the
// polling view (handleJob) re-indents the embedded result, so this is the
// endpoint that preserves byte-identity with the CLIs for async jobs.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no job %q", id)
		return
	}
	switch j.State() {
	case JobDone:
		body, _ := j.Envelope()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	case JobFailed:
		_, errMsg := j.Envelope()
		writeError(w, http.StatusInternalServerError, "%s", errMsg)
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "job %s still %s", id, j.State())
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name string `json:"name"`
		Desc string `json:"desc"`
	}
	var out []entry
	for _, n := range workloads.Names() {
		wl, err := workloads.ByName(n, 1)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		out = append(out, entry{Name: n, Desc: wl.Desc})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, bytes, entries := s.runner.Traces.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, len(s.queue), cap(s.queue), hits, misses, bytes, entries)
}
