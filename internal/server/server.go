// Package server implements vcfrd, the long-running HTTP/JSON simulation
// service: it accepts simulation, sweep, and fault-campaign jobs, runs them
// on a shared
// harness.Runner whose trace cache turns repeated timing-only queries into
// replays, and answers every request in the one versioned wire format of
// internal/results.
//
// Endpoints:
//
//	POST /v1/jobs       unified asynchronous submission: one body with a
//	                    "kind" discriminator (run | sweep | faults |
//	                    attacks) plus the kind's parameters; returns 202
//	                    and a job id. Honors Idempotency-Key: a retried
//	                    POST with the same key dedupes to the original job.
//	GET  /v1/jobs       list jobs over the retention window, with ?state=
//	                    filtering and ?cursor=/?limit= pagination
//	GET  /v1/jobs/{id}  job state, timings, error, and (when done) result
//	GET  /v1/jobs/{id}/result
//	                    the finished job's result envelope, streamed exactly
//	                    as results.Marshal produced it (byte-identical to
//	                    the equivalent CLI invocation)
//	GET  /v1/jobs/{id}/events
//	                    live job progress as Server-Sent Events (state,
//	                    then coalesced progress updates, then done/failed)
//	DELETE /v1/jobs/{id}
//	                    cancel: the job's context is cancelled mid-run and
//	                    the partial-rows envelope is returned
//	POST /v1/simulate   one workload, one layout seed — synchronous; the
//	                    response body is byte-identical to the equivalent
//	                    `vcfrsim -stats-json` invocation
//	POST /v1/sweep      deprecated alias of POST /v1/jobs {"kind":"sweep"}
//	POST /v1/faults     deprecated alias of POST /v1/jobs {"kind":"faults"}
//	POST /v1/attacks    deprecated alias of POST /v1/jobs {"kind":"attacks"}
//	GET/PUT /v1/artifacts/{ns}/{key}
//	                    the content-addressed artifact store (traces,
//	                    result envelopes), when one is configured — how
//	                    fleet peers share captured executions
//	GET  /v1/workloads  the built-in workload catalog
//	GET  /healthz       liveness
//	GET  /metrics       Prometheus text: jobs by state, queue pressure,
//	                    trace-cache effectiveness, per-stage latency
//	GET  /debug/pprof/  the standard Go profiler
//
// Every error answers the one envelope {"error": {"code", "message"}}.
//
// Robustness model: the job queue is bounded and overload answers 429 with
// a Retry-After derived from the observed drain rate (backpressure, not
// collapse); every job runs under a context deadline with real
// mid-simulation cancellation; a panicking job fails alone; Shutdown stops
// intake, lets the HTTP layer finish, and drains every accepted job before
// returning.
//
// A server can also serve as the front of a fleet: Config.Executor
// replaces local execution with a dispatch function (internal/fleet's
// coordinator shards campaigns across worker backends and merges their
// rows byte-identically), and Config.Artifacts/ArtifactPeer connect the
// content-addressed store that lets workers share traces and finished
// envelopes.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"sync/atomic"
	"time"

	"vcfr/internal/artifact"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
	"vcfr/internal/workloads"
)

// Config sizes the service.
type Config struct {
	// Addr is the listen address, e.g. "127.0.0.1:8642". Port 0 picks an
	// ephemeral port (see Server.Addr).
	Addr string
	// Workers is the number of concurrent job executors. <= 0 means 2.
	Workers int
	// QueueDepth bounds the number of accepted-but-not-started jobs; a
	// full queue answers 429. <= 0 means 64.
	QueueDepth int
	// JobTimeout is the default per-job execution deadline; requests may
	// shorten it per job (timeout_ms) but never extend it. 0 = none.
	JobTimeout time.Duration
	// JobRetention caps how many finished jobs (and their result envelopes)
	// stay pollable at /v1/jobs/{id}; beyond it the oldest-finished are
	// evicted, which is what keeps a long-running instance's memory bounded.
	// <= 0 means 256.
	JobRetention int
	// Runner executes jobs. nil builds a default runner with a 256 MiB
	// trace cache. Give it a trace.Cache to share captures across requests.
	Runner *harness.Runner
	// Executor, when set, replaces local execution of asynchronous jobs:
	// it receives the job's kind, its normalized request, and a progress
	// sink, and returns the marshaled results Envelope bytes to serve
	// verbatim. This is the coordinator hook — internal/fleet supplies a
	// function that shards the request across worker backends and merges
	// their rows back byte-identically. Returning the bytes (not a parsed
	// Envelope) is what keeps the merged result byte-for-byte equal to
	// single-process execution: nothing re-marshals it.
	Executor func(ctx context.Context, kind JobKind, req SimRequest, progress func(harness.Progress)) ([]byte, error)
	// Artifacts, when set, is served at /v1/artifacts/{ns}/{key} and used
	// to memoize finished result envelopes by normalized request identity.
	Artifacts *artifact.Store
	// ArtifactPeer, when set, is a remote peer's artifact endpoint used as
	// a second level behind Artifacts for envelope memoization (workers
	// point it at the coordinator). Wiring the peer into the trace cache
	// is the caller's job (trace.Cache.SetRemote), since the cache may be
	// shared beyond this server.
	ArtifactPeer *artifact.Client
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.JobRetention <= 0 {
		c.JobRetention = 256
	}
	if c.Runner == nil {
		c.Runner = harness.NewRunner(0)
		c.Runner.Traces = trace.NewCache(256 << 20)
	}
	return c
}

// Server is one vcfrd instance. Create with New, start with Start, stop
// with Shutdown.
type Server struct {
	cfg     Config
	runner  *harness.Runner
	metrics *metrics

	mux  *http.ServeMux
	http *http.Server
	ln   net.Listener

	queue    chan *Job
	jobMu    sync.Mutex
	jobs     map[string]*Job
	finished []string // finished job IDs, oldest first, for retention eviction
	jobSeq   atomic.Uint64
	wg       sync.WaitGroup // job workers
	intakeMu sync.Mutex     // serializes enqueue vs. shutdown's queue close
	draining bool           // guarded by intakeMu

	// idem maps Idempotency-Key header values to the job they created, so
	// a retried POST returns the original job instead of running twice.
	// Entries die with their job's retention eviction.
	idemMu sync.Mutex
	idem   map[string]string

	// exec runs one job's computation. Production is (*Server).execute;
	// lifecycle tests substitute controllable executors.
	exec func(context.Context, *Job) (results.Envelope, error)
}

// New builds a server; it does not listen yet.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		runner:  cfg.Runner,
		metrics: newMetrics(),
		mux:     http.NewServeMux(),
		queue:   make(chan *Job, cfg.QueueDepth),
		jobs:    make(map[string]*Job),
		idem:    make(map[string]string),
	}
	s.exec = s.execute
	s.routes()
	s.http = &http.Server{Handler: s.mux}
	return s
}

func (s *Server) routes() {
	s.mux.HandleFunc("POST /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobsList)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	s.mux.HandleFunc("POST /v1/faults", s.handleFaults)
	s.mux.HandleFunc("POST /v1/attacks", s.handleAttacks)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobDelete)
	s.mux.HandleFunc("GET /v1/artifacts/{ns}/{key}", s.handleArtifactGet)
	s.mux.HandleFunc("PUT /v1/artifacts/{ns}/{key}", s.handleArtifactPut)
	s.mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Start binds the listen address, launches the job workers, and serves HTTP
// in the background. It returns once the listener is bound, so Addr is
// valid immediately after.
func (s *Server) Start() error {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return err
	}
	s.ln = ln
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go func() {
		if err := s.http.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			// Serve only fails this way if the listener dies under us;
			// nothing to do but let in-flight work finish.
			_ = err
		}
	}()
	return nil
}

// Addr returns the bound listen address (resolving port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Shutdown gracefully stops the server: new jobs are refused (503), the
// HTTP layer finishes in-flight requests (including synchronous simulate
// calls still waiting on their job), and every job already accepted into
// the queue runs to completion before Shutdown returns. ctx bounds the
// whole drain; an expired ctx abandons the remaining work and returns its
// error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.intakeMu.Lock()
	already := s.draining
	s.draining = true
	s.intakeMu.Unlock()

	err := s.http.Shutdown(ctx)

	if !already {
		// No enqueue can be in flight past this point: enqueue() holds
		// intakeMu and re-checks draining before touching the channel.
		close(s.queue)
	}
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}
	return err
}

// Close abruptly stops the server without draining: listeners and in-flight
// HTTP connections are severed mid-stream and no new work is accepted. It
// exists as the crash-simulation counterpart of Shutdown — the fleet tests
// kill one worker of a pair mid-campaign with it to drive the coordinator's
// shard-retry path — and for emergency teardown. Jobs already dequeued by a
// worker goroutine keep running to completion in the background.
func (s *Server) Close() error {
	s.intakeMu.Lock()
	already := s.draining
	s.draining = true
	s.intakeMu.Unlock()
	if !already {
		close(s.queue)
	}
	return s.http.Close()
}

// errQueueFull and errDraining distinguish the two refusal modes.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server shutting down")
)

// enqueue registers j and admits it to the bounded queue without blocking:
// a full queue is backpressure the caller must see, not hidden latency.
// Registration and accounting happen before the channel send — a worker can
// dequeue j the instant it enters the channel, and jobStarted must never
// run against a job the accepted counters haven't seen (the queued gauge
// would dip negative and /v1/jobs/{id} would briefly 404 a running job).
func (s *Server) enqueue(j *Job) error {
	s.intakeMu.Lock()
	defer s.intakeMu.Unlock()
	if s.draining {
		return errDraining
	}
	s.jobMu.Lock()
	s.jobs[j.ID] = j
	s.jobMu.Unlock()
	s.metrics.jobAccepted()
	select {
	case s.queue <- j:
	default:
		s.jobMu.Lock()
		delete(s.jobs, j.ID)
		s.jobMu.Unlock()
		s.metrics.jobAcceptRolledBack()
		s.metrics.jobRejected()
		return errQueueFull
	}
	return nil
}

// retireJob records j as finished and evicts the oldest finished jobs past
// the retention bound, so completed envelopes don't accumulate for the life
// of the process. Waiters holding the *Job (the synchronous simulate path)
// are unaffected — eviction only drops the map entry that serves polling.
// An evicted job's idempotency-key entry dies with it (taken out under
// idemMu after jobMu is released; idemMu is never held inside jobMu).
func (s *Server) retireJob(j *Job) {
	var evicted []*Job
	s.jobMu.Lock()
	s.finished = append(s.finished, j.ID)
	for len(s.finished) > s.cfg.JobRetention {
		if old := s.jobs[s.finished[0]]; old != nil && old.idemKey != "" {
			evicted = append(evicted, old)
		}
		delete(s.jobs, s.finished[0])
		s.finished = s.finished[1:]
	}
	s.jobMu.Unlock()
	if len(evicted) > 0 {
		s.idemMu.Lock()
		for _, old := range evicted {
			if s.idem[old.idemKey] == old.ID {
				delete(s.idem, old.idemKey)
			}
		}
		s.idemMu.Unlock()
	}
}

func (s *Server) newJob(kind JobKind, req SimRequest) *Job {
	seq := s.jobSeq.Add(1)
	return newJob(fmt.Sprintf("job-%06d", seq), seq, kind, req)
}

// apiError is the uniform error shape of every endpoint:
// {"error": {"code", "message"}}. Code is a stable machine-readable slug;
// message is for humans.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// writeError answers with the service's uniform error envelope.
func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(map[string]apiError{
		"error": {Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// writeRefusal maps the two intake refusals onto HTTP: queue pressure is
// 429 with a Retry-After derived from the observed drain rate plus the
// current queue occupancy in the body (so clients can back off
// proportionally), drain is 503.
func (s *Server) writeRefusal(w http.ResponseWriter, err error) {
	if errors.Is(err, errQueueFull) {
		depth, capacity := len(s.queue), cap(s.queue)
		retry := s.metrics.retryAfter(depth, s.cfg.Workers)
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", fmt.Sprintf("%d", retry))
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(struct {
			Error             apiError `json:"error"`
			QueueDepth        int      `json:"queue_depth"`
			QueueCapacity     int      `json:"queue_capacity"`
			RetryAfterSeconds int      `json:"retry_after_seconds"`
		}{
			Error:             apiError{Code: "queue_full", Message: err.Error()},
			QueueDepth:        depth,
			QueueCapacity:     capacity,
			RetryAfterSeconds: retry,
		})
		return
	}
	writeError(w, http.StatusServiceUnavailable, "draining", "%v", err)
}

func decodeRequest(r *http.Request, kind JobKind) (SimRequest, error) {
	var req SimRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, fmt.Errorf("bad request body: %w", err)
	}
	if err := req.normalize(kind); err != nil {
		return req, err
	}
	return req, nil
}

// handleSimulate runs one simulation synchronously: the job goes through
// the same queue and workers as everything else (so backpressure and
// deadlines apply), and the handler streams back the job's envelope bytes
// untouched — the bytes results.Marshal produced, hence byte-identical to
// the CLI.
func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	req, err := decodeRequest(r, JobRun)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	j := s.newJob(JobRun, req)
	if err := s.enqueue(j); err != nil {
		s.writeRefusal(w, err)
		return
	}
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// The client went away; the job still runs to completion and
		// remains pollable at /v1/jobs/{id}.
		writeError(w, http.StatusRequestTimeout, "client_cancelled",
			"client cancelled while job %s still runs", j.ID)
		return
	}
	body, errMsg := j.Envelope()
	if errMsg != "" {
		writeError(w, http.StatusInternalServerError, "job_failed", "%s", errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-Id", j.ID)
	_, _ = w.Write(body)
}

// handleSweep, handleFaults, and handleAttacks are the pre-/v1/jobs
// submission routes, kept as thin aliases: same decode, same queue, same
// job — only a Deprecation header distinguishes them from the unified
// endpoint they forward to.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.handleDeprecatedAlias(w, r, JobSweep)
}

func (s *Server) handleFaults(w http.ResponseWriter, r *http.Request) {
	s.handleDeprecatedAlias(w, r, JobFaults)
}

func (s *Server) handleAttacks(w http.ResponseWriter, r *http.Request) {
	s.handleDeprecatedAlias(w, r, JobAttacks)
}

func (s *Server) handleDeprecatedAlias(w http.ResponseWriter, r *http.Request, kind JobKind) {
	w.Header().Set("Deprecation", "true")
	w.Header().Set("Link", `</v1/jobs>; rel="successor-version"`)
	req, err := decodeRequest(r, kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.submitAsync(w, r, kind, req)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(j.view())
}

// handleJobResult streams a finished job's envelope bytes untouched — the
// polling view (handleJob) re-indents the embedded result, so this is the
// endpoint that preserves byte-identity with the CLIs for async jobs.
func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	switch j.State() {
	case JobDone:
		body, _ := j.Envelope()
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(body)
	case JobFailed:
		_, errMsg := j.Envelope()
		writeError(w, http.StatusInternalServerError, "job_failed", "%s", errMsg)
	default:
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusConflict, "conflict", "job %s still %s", id, j.State())
	}
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		Name   string `json:"name"`
		Desc   string `json:"desc"`
		Source string `json:"source"` // "synthetic" or "elf"
	}
	var out []entry
	for _, n := range workloads.Names() {
		wl, err := workloads.ByName(n, 1)
		if err != nil {
			writeError(w, http.StatusInternalServerError, "internal", "%v", err)
			return
		}
		out = append(out, entry{Name: n, Desc: wl.Desc, Source: wl.Source})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = w.Write([]byte("ok\n"))
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses, bytes, entries := s.runner.Traces.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.render(w, len(s.queue), cap(s.queue), hits, misses, bytes, entries)
}
