package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// JobRequest is the body of POST /v1/jobs: the kind discriminator plus the
// selected kind's parameters (the same fields the per-kind routes accept).
type JobRequest struct {
	// Kind selects the computation: run | sweep | faults | attacks | multicore.
	Kind string `json:"kind"`
	SimRequest
}

func parseKind(s string) (JobKind, error) {
	switch k := JobKind(s); k {
	case JobRun, JobSweep, JobFaults, JobAttacks, JobMulticore:
		return k, nil
	case "":
		return "", fmt.Errorf(`job needs a "kind" (run, sweep, faults, attacks, or multicore)`)
	default:
		return "", fmt.Errorf("unknown job kind %q (want run, sweep, faults, attacks, or multicore)", s)
	}
}

// handleJobs is the unified submission endpoint: every kind, one route, one
// body shape, always asynchronous (202 + job id; synchronous callers keep
// POST /v1/simulate).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	var jr JobRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&jr); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "bad request body: %v", err)
		return
	}
	kind, err := parseKind(jr.Kind)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	req := jr.SimRequest
	if err := req.normalize(kind); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	s.submitAsync(w, r, kind, req)
}

// submitAsync enqueues one asynchronous job and answers 202. When the
// request carries an Idempotency-Key, concurrent and retried submissions
// with the same key collapse onto one job: the key table is checked and
// claimed under one lock, so of 8 identical concurrent POSTs exactly one
// enqueues and 7 replay its id (marked with Idempotency-Replayed: true).
func (s *Server) submitAsync(w http.ResponseWriter, r *http.Request, kind JobKind, req SimRequest) {
	key := r.Header.Get("Idempotency-Key")
	if key == "" {
		j := s.newJob(kind, req)
		if err := s.enqueue(j); err != nil {
			s.writeRefusal(w, err)
			return
		}
		writeAccepted(w, j, false)
		return
	}

	s.idemMu.Lock()
	if id, ok := s.idem[key]; ok {
		s.jobMu.Lock()
		j, live := s.jobs[id]
		s.jobMu.Unlock()
		if live {
			s.idemMu.Unlock()
			writeAccepted(w, j, true)
			return
		}
		// The original job aged out of retention; the key is dead and the
		// request runs fresh.
		delete(s.idem, key)
	}
	// Claim the key before releasing idemMu so a concurrent duplicate
	// can't slip past the check; enqueue only takes leaf locks, so holding
	// idemMu across it is deadlock-free (retireJob takes idemMu only after
	// releasing jobMu).
	j := s.newJob(kind, req)
	j.idemKey = key
	if err := s.enqueue(j); err != nil {
		s.idemMu.Unlock()
		s.writeRefusal(w, err)
		return
	}
	s.idem[key] = j.ID
	s.idemMu.Unlock()
	writeAccepted(w, j, false)
}

func writeAccepted(w http.ResponseWriter, j *Job, replayed bool) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Location", "/v1/jobs/"+j.ID)
	if replayed {
		w.Header().Set("Idempotency-Replayed", "true")
	}
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(map[string]string{
		"id":     j.ID,
		"kind":   string(j.Kind),
		"state":  string(j.State()),
		"status": "/v1/jobs/" + j.ID,
	})
}

// jobSummary is one row of GET /v1/jobs — the lifecycle facts without the
// result payload.
type jobSummary struct {
	ID       string     `json:"id"`
	Kind     JobKind    `json:"kind"`
	State    JobState   `json:"state"`
	Created  time.Time  `json:"created"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
}

// handleJobsList pages over every job the server still remembers (queued,
// running, and finished-within-retention), ordered by submission. The
// cursor is the last-seen job id; because ids are monotonic and eviction
// only removes the oldest, a cursor stays valid even after the job it
// names is evicted — pagination never skips or repeats a surviving job.
func (s *Server) handleJobsList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	stateFilter := JobState(q.Get("state"))
	switch stateFilter {
	case "", JobQueued, JobRunning, JobDone, JobFailed:
	default:
		writeError(w, http.StatusBadRequest, "bad_request",
			"unknown state %q (want queued, running, done, or failed)", stateFilter)
		return
	}
	limit := 50
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > 1000 {
			writeError(w, http.StatusBadRequest, "bad_request", "limit must be 1..1000")
			return
		}
		limit = n
	}
	var afterSeq uint64
	if cur := q.Get("cursor"); cur != "" {
		n, err := parseJobSeq(cur)
		if err != nil {
			writeError(w, http.StatusBadRequest, "bad_request", "bad cursor %q", cur)
			return
		}
		afterSeq = n
	}

	s.jobMu.Lock()
	all := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		all = append(all, j)
	}
	s.jobMu.Unlock()
	sort.Slice(all, func(i, k int) bool { return all[i].seq < all[k].seq })

	type listResponse struct {
		Jobs       []jobSummary `json:"jobs"`
		NextCursor string       `json:"next_cursor,omitempty"`
	}
	resp := listResponse{Jobs: []jobSummary{}}
	for _, j := range all {
		if j.seq <= afterSeq {
			continue
		}
		v := j.view()
		if stateFilter != "" && v.State != stateFilter {
			continue
		}
		if len(resp.Jobs) == limit {
			// One more match exists past the page: point the cursor at the
			// last included job.
			resp.NextCursor = resp.Jobs[limit-1].ID
			break
		}
		resp.Jobs = append(resp.Jobs, jobSummary{
			ID: v.ID, Kind: v.Kind, State: v.State,
			Created: v.Created, Finished: v.Finished, Error: v.Error,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(resp)
}

// parseJobSeq recovers the monotonic sequence number from a job id
// ("job-%06d"; numbers past a million simply widen).
func parseJobSeq(id string) (uint64, error) {
	num, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, fmt.Errorf("not a job id")
	}
	return strconv.ParseUint(num, 10, 64)
}

// handleJobDelete cancels a job via its context — mid-simulation
// cancellation is real (Pipeline.RunContext checks the deadline in the hot
// loop), so a running sweep or campaign stops at the next cell boundary and
// reports the rows it finished — then answers with the partial-rows
// envelope once the job settles.
func (s *Server) handleJobDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	j.cancel()
	select {
	case <-j.Done():
	case <-r.Context().Done():
		writeError(w, http.StatusRequestTimeout, "client_cancelled",
			"client went away while job %s was being cancelled", id)
		return
	}
	body, errMsg := j.Envelope()
	if errMsg != "" {
		writeError(w, http.StatusInternalServerError, "job_failed", "%s", errMsg)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Job-Id", j.ID)
	_, _ = w.Write(body)
}

// handleJobEvents streams a job's life as Server-Sent Events: a "state"
// event on subscribe, coalesced "progress" events while it runs (latest
// wins — a slow client skips intermediate updates instead of buffering
// them), and a terminal "done" or "failed" event. The result payload is
// not inlined; clients follow up with GET /v1/jobs/{id}/result, which is
// the byte-identity-preserving path.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	s.jobMu.Lock()
	j, ok := s.jobs[id]
	s.jobMu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no job %q", id)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "internal", "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	ch := j.subscribe()
	defer j.unsubscribe(ch)

	writeSSE(w, "state", map[string]string{"id": j.ID, "state": string(j.State())})
	fl.Flush()
	for {
		select {
		case p := <-ch:
			writeSSE(w, "progress", p)
			fl.Flush()
		case <-j.Done():
			// Flush any progress update that raced the finish, then the
			// terminal event.
			select {
			case p := <-ch:
				writeSSE(w, "progress", p)
			default:
			}
			_, errMsg := j.Envelope()
			terminal := map[string]string{"id": j.ID, "state": string(j.State())}
			event := "done"
			if errMsg != "" {
				event = "failed"
				terminal["error"] = errMsg
			}
			writeSSE(w, event, terminal)
			fl.Flush()
			return
		case <-r.Context().Done():
			return
		}
	}
}

func writeSSE(w io.Writer, event string, data any) {
	b, err := json.Marshal(data)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

// handleArtifactGet and handleArtifactPut expose the content-addressed
// artifact store to fleet peers. No store configured, no endpoint.
func (s *Server) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Artifacts == nil {
		writeError(w, http.StatusNotFound, "not_found", "no artifact store configured")
		return
	}
	data, ok := s.cfg.Artifacts.Get(r.PathValue("ns"), r.PathValue("key"))
	if !ok {
		writeError(w, http.StatusNotFound, "not_found", "no artifact %s/%s",
			r.PathValue("ns"), r.PathValue("key"))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	_, _ = w.Write(data)
}

func (s *Server) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	if s.cfg.Artifacts == nil {
		writeError(w, http.StatusNotFound, "not_found", "no artifact store configured")
		return
	}
	// A trace for a long workload runs to tens of MiB; 1 GiB is a generous
	// sanity bound, not a tuning knob.
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<30))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "reading body: %v", err)
		return
	}
	if err := s.cfg.Artifacts.Put(r.PathValue("ns"), r.PathValue("key"), data); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}
