package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vcfr/internal/artifact"
	"vcfr/internal/results"
)

// postWithHeaders is post with extra request headers (Idempotency-Key).
func postWithHeaders(t *testing.T, s *Server, path, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, "http://"+s.Addr()+path, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func acceptedID(t *testing.T, body []byte) string {
	t.Helper()
	var acc struct{ ID string }
	if err := json.Unmarshal(body, &acc); err != nil || acc.ID == "" {
		t.Fatalf("bad 202 body: %s", body)
	}
	return acc.ID
}

// TestJobsUnifiedVsAliases is the api_redesign acceptance test: every kind
// submits through POST /v1/jobs, and for each kind with a legacy route the
// result bytes are identical to the legacy submission's — the aliases are
// thin shims over one submission path, not parallel implementations. The
// aliases also announce their deprecation.
func TestJobsUnifiedVsAliases(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 16})

	cases := []struct {
		kind  string
		alias string // "" = no async alias (run compares against /v1/simulate)
		body  string
	}{
		{"run", "", `{"workload": "bzip2", "mode": "vcfr", "instructions": 5000}`},
		{"sweep", "/v1/sweep", `{"workloads": ["bzip2"], "instructions": 5000}`},
		{"faults", "/v1/faults", `{"workloads": ["bzip2"], "mode": "vcfr", "injections": 4, "instructions": 5000}`},
		{"attacks", "/v1/attacks", `{"workloads": ["bzip2"], "mode": "vcfr", "max_leaks": 4, "advance_insts": 500, "instructions": 5000}`},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			resp, body := post(t, s, "/v1/jobs", fmt.Sprintf(`{"kind": %q, %s`, tc.kind, tc.body[1:]))
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("POST /v1/jobs: %d: %s", resp.StatusCode, body)
			}
			id := acceptedID(t, body)
			v := pollJob(t, s, id)
			if v.State != JobDone {
				t.Fatalf("unified %s job failed: %s", tc.kind, v.Error)
			}
			// The byte-identity surface is /result, which writes the stored
			// envelope verbatim (the job view embeds it as a JSON value,
			// which re-encodes).
			rresp, unified := get(t, s, "/v1/jobs/"+id+"/result")
			if rresp.StatusCode != http.StatusOK {
				t.Fatalf("result: %d: %s", rresp.StatusCode, unified)
			}

			var legacy []byte
			if tc.alias == "" {
				resp, legacy = post(t, s, "/v1/simulate", tc.body)
				if resp.StatusCode != http.StatusOK {
					t.Fatalf("POST /v1/simulate: %d: %s", resp.StatusCode, legacy)
				}
			} else {
				resp, body = post(t, s, tc.alias, tc.body)
				if resp.StatusCode != http.StatusAccepted {
					t.Fatalf("POST %s: %d: %s", tc.alias, resp.StatusCode, body)
				}
				if resp.Header.Get("Deprecation") == "" {
					t.Errorf("%s: no Deprecation header", tc.alias)
				}
				if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/jobs") {
					t.Errorf("%s: Link = %q, want successor-version /v1/jobs", tc.alias, link)
				}
				lid := acceptedID(t, body)
				if lv := pollJob(t, s, lid); lv.State != JobDone {
					t.Fatalf("alias %s job failed: %s", tc.alias, lv.Error)
				}
				lresp, lbody := get(t, s, "/v1/jobs/"+lid+"/result")
				if lresp.StatusCode != http.StatusOK {
					t.Fatalf("alias result: %d: %s", lresp.StatusCode, lbody)
				}
				legacy = lbody
			}
			if string(unified) != string(legacy) {
				t.Errorf("%s: /v1/jobs result differs from legacy route:\n--- jobs ---\n%.300s\n--- legacy ---\n%.300s",
					tc.kind, unified, legacy)
			}
		})
	}

	// The unified endpoint rejects a missing and an unknown kind with the
	// structured error envelope every handler shares.
	for _, bad := range []string{`{}`, `{"kind": "exfiltrate"}`} {
		resp, body := post(t, s, "/v1/jobs", bad)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad kind accepted: %d: %s", resp.StatusCode, body)
		}
		var e struct {
			Error struct{ Code, Message string }
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error.Code != "bad_request" || e.Error.Message == "" {
			t.Errorf("error envelope = %s, want {error:{code:bad_request,...}}", body)
		}
	}
}

// swapExec replaces the server's executor with one that finishes instantly
// with a tiny envelope, for tests about lifecycle plumbing rather than
// simulation.
func swapExec(s *Server) {
	s.exec = func(ctx context.Context, j *Job) (results.Envelope, error) {
		return results.NewRun(results.Run{Workload: j.Req.Workload, Mode: "vcfr", Seed: 1}), nil
	}
}

// TestJobsListPagination pins the listing contract: submission order, state
// filtering, and a cursor that stays valid across retention eviction —
// pagination never skips or repeats a surviving job even when the job the
// cursor names has been evicted between pages.
func TestJobsListPagination(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 32, JobRetention: 8})
	swapExec(s)

	submit := func(n int) []string {
		ids := make([]string, 0, n)
		for i := 0; i < n; i++ {
			resp, body := post(t, s, "/v1/jobs", `{"kind": "run", "workload": "bzip2"}`)
			if resp.StatusCode != http.StatusAccepted {
				t.Fatalf("submit: %d: %s", resp.StatusCode, body)
			}
			id := acceptedID(t, body)
			pollJob(t, s, id)
			ids = append(ids, id)
		}
		return ids
	}
	first := submit(10) // retention 8: the oldest two are already evicted

	type page struct {
		Jobs []struct {
			ID    string
			State string
		}
		NextCursor string `json:"next_cursor"`
	}
	list := func(query string) page {
		resp, body := get(t, s, "/v1/jobs"+query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("list %q: %d: %s", query, resp.StatusCode, body)
		}
		var p page
		if err := json.Unmarshal(body, &p); err != nil {
			t.Fatal(err)
		}
		return p
	}

	p1 := list("?limit=3&state=done")
	if len(p1.Jobs) != 3 || p1.NextCursor == "" {
		t.Fatalf("page 1 = %d jobs, cursor %q; want 3 jobs and a cursor", len(p1.Jobs), p1.NextCursor)
	}
	if p1.Jobs[0].ID != first[2] {
		t.Errorf("page 1 starts at %s; want %s (oldest two evicted by retention)", p1.Jobs[0].ID, first[2])
	}

	// Push more jobs through so eviction advances past the cursor itself.
	submit(4)

	p2 := list("?limit=100&state=done&cursor=" + p1.NextCursor)
	seen := map[string]bool{}
	for _, j := range p1.Jobs {
		seen[j.ID] = true
	}
	prev := p1.NextCursor
	for _, j := range p2.Jobs {
		if seen[j.ID] {
			t.Errorf("job %s repeated across pages", j.ID)
		}
		if j.ID <= prev {
			t.Errorf("page 2 out of order: %s after %s", j.ID, prev)
		}
		prev = j.ID
	}
	// Every job the server still remembers and that postdates the cursor
	// must be on page 2: nothing skipped.
	full := list("?limit=100&state=done")
	want := 0
	for _, j := range full.Jobs {
		if j.ID > p1.NextCursor {
			want++
		}
	}
	if len(p2.Jobs) != want {
		t.Errorf("page 2 has %d jobs, want %d (all surviving jobs past the cursor)", len(p2.Jobs), want)
	}

	// Listing rejects junk with the shared error envelope.
	if resp, _ := get(t, s, "/v1/jobs?state=melting"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad state filter: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, s, "/v1/jobs?cursor=nope"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor: %d, want 400", resp.StatusCode)
	}
	if resp, _ := get(t, s, "/v1/jobs?limit=0"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad limit: %d, want 400", resp.StatusCode)
	}
}

// TestJobDeleteMidSweep cancels a running sweep through DELETE and pins the
// response contract: 200 with the partial-rows envelope — the rows that
// finished plus error rows for the cells cancellation reached first.
func TestJobDeleteMidSweep(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})
	resp, body := post(t, s, "/v1/jobs", `{"kind": "sweep", "workloads": ["bzip2", "sjeng", "xalan"]}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	id := acceptedID(t, body)

	// Wait for the job to leave the queue so cancellation lands mid-sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		_, b := get(t, s, "/v1/jobs/"+id)
		var v jobView
		if err := json.Unmarshal(b, &v); err != nil {
			t.Fatal(err)
		}
		if v.State == JobRunning {
			break
		}
		if v.State == JobDone || v.State == JobFailed {
			t.Skip("sweep finished before it could be cancelled; nothing to test")
		}
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(2 * time.Millisecond)
	}

	req, err := http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	dbody, err := io.ReadAll(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE: %d: %.300s", dresp.StatusCode, dbody)
	}
	env, err := results.Unmarshal(dbody)
	if err != nil {
		t.Fatalf("DELETE body is not an envelope: %v", err)
	}
	if env.Kind != results.KindSweep || env.Sweep == nil {
		t.Fatalf("DELETE body kind = %s, want sweep", env.Kind)
	}
	if !env.Sweep.Partial {
		t.Error("cancelled sweep not marked partial")
	}
	cancelled := 0
	for _, r := range env.Sweep.Rows {
		if r.Failed() {
			cancelled++
		}
	}
	if cancelled == 0 {
		t.Error("cancelled sweep has no error rows")
	}

	// The job settles as done (partial rows are a result, not a failure) and
	// a second DELETE answers the same settled envelope.
	v := pollJob(t, s, id)
	if v.State != JobDone {
		t.Errorf("cancelled job state = %s, want done", v.State)
	}

	// Unknown ids 404 with the shared envelope.
	req, _ = http.NewRequest(http.MethodDelete, "http://"+s.Addr()+"/v1/jobs/job-999999", nil)
	nresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	nresp.Body.Close()
	if nresp.StatusCode != http.StatusNotFound {
		t.Errorf("DELETE unknown job: %d, want 404", nresp.StatusCode)
	}
}

// TestIdempotencyKeyDedupe fires 8 concurrent identical submissions with
// one Idempotency-Key and requires exactly one job: one 202 without the
// replay marker, seven with it, all naming the same id.
func TestIdempotencyKeyDedupe(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 32})
	swapExec(s)

	const dupes = 8
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		ids      = map[string]int{}
		replayed int
	)
	for i := 0; i < dupes; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			req, err := http.NewRequest(http.MethodPost, "http://"+s.Addr()+"/v1/jobs",
				strings.NewReader(`{"kind": "run", "workload": "bzip2"}`))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("Content-Type", "application/json")
			req.Header.Set("Idempotency-Key", "dedupe-test-1")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			var acc struct{ ID string }
			if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if resp.StatusCode != http.StatusAccepted {
				t.Errorf("concurrent submit: %d", resp.StatusCode)
				return
			}
			ids[acc.ID]++
			if resp.Header.Get("Idempotency-Replayed") == "true" {
				replayed++
			}
		}()
	}
	wg.Wait()
	if len(ids) != 1 {
		t.Fatalf("8 submissions with one key created %d jobs: %v", len(ids), ids)
	}
	if replayed != dupes-1 {
		t.Errorf("replayed = %d, want %d", replayed, dupes-1)
	}

	// A different key is a different job.
	resp, body := postWithHeaders(t, s, "/v1/jobs",
		`{"kind": "run", "workload": "bzip2"}`, map[string]string{"Idempotency-Key": "dedupe-test-2"})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second key: %d: %s", resp.StatusCode, body)
	}
	var other string
	for id := range ids {
		other = id
	}
	if acceptedID(t, body) == other {
		t.Error("distinct keys shared a job")
	}
}

// TestJobEventsStream subscribes to a job's SSE feed and requires the
// terminal event; a finished job answers immediately, an unknown id 404s.
func TestJobEventsStream(t *testing.T) {
	s := startServer(t, Config{Workers: 2, QueueDepth: 8})
	swapExec(s)
	resp, body := post(t, s, "/v1/jobs", `{"kind": "run", "workload": "bzip2"}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", resp.StatusCode, body)
	}
	id := acceptedID(t, body)
	pollJob(t, s, id)

	sresp, err := http.Get("http://" + s.Addr() + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Errorf("Content-Type = %q", ct)
	}
	var events []string
	sc := bufio.NewScanner(sresp.Body)
	for sc.Scan() {
		if ev, ok := strings.CutPrefix(sc.Text(), "event: "); ok {
			events = append(events, ev)
		}
	}
	if len(events) == 0 || events[len(events)-1] != "done" {
		t.Errorf("event sequence = %v, want ... done", events)
	}

	if r, _ := get(t, s, "/v1/jobs/job-999999/events"); r.StatusCode != http.StatusNotFound {
		t.Errorf("events for unknown job: %d, want 404", r.StatusCode)
	}
}

// TestRetryAfterFromDrainRate pins the 429 contract: once the server has
// observed job durations, a refusal's Retry-After derives from the queue
// depth over the drain rate and the body reports the queue state.
func TestRetryAfterFromDrainRate(t *testing.T) {
	started := make(chan string, 4)
	release := make(chan struct{})
	s := startServer(t, Config{Workers: 1, QueueDepth: 1})
	swapExec(s)

	// Give the histogram one observation so the derived path is taken.
	_, body := post(t, s, "/v1/jobs", `{"kind": "run", "workload": "bzip2"}`)
	pollJob(t, s, acceptedID(t, body))

	s.exec = blockingExec(started, release)
	defer close(release)
	if resp, b := post(t, s, "/v1/jobs", `{"kind": "run", "workload": "bzip2"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 1: %d: %s", resp.StatusCode, b)
	}
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("job 1 never started")
	}
	if resp, b := post(t, s, "/v1/jobs", `{"kind": "run", "workload": "bzip2"}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("job 2: %d: %s", resp.StatusCode, b)
	}
	resp, body := post(t, s, "/v1/jobs", `{"kind": "run", "workload": "bzip2"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job 3: %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" || ra == "0" {
		t.Errorf("Retry-After = %q, want a positive whole-second estimate", ra)
	}
	var refusal struct {
		Error             struct{ Code, Message string }
		QueueDepth        int `json:"queue_depth"`
		QueueCapacity     int `json:"queue_capacity"`
		RetryAfterSeconds int `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(body, &refusal); err != nil {
		t.Fatalf("429 body: %v: %s", err, body)
	}
	if refusal.Error.Code != "queue_full" || refusal.QueueCapacity != 1 || refusal.RetryAfterSeconds < 1 {
		t.Errorf("429 body = %+v: %s", refusal, body)
	}
}

// TestEnvelopeMemoization runs the same campaign twice on a server with an
// artifact store: the repeat must be served from the store (a hit, no new
// simulation needed for identical bytes).
func TestEnvelopeMemoization(t *testing.T) {
	store, err := artifact.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := startServer(t, Config{Workers: 2, QueueDepth: 8, Artifacts: store})

	body := `{"kind": "faults", "workloads": ["bzip2"], "mode": "vcfr", "injections": 4, "instructions": 5000}`
	resp, b := post(t, s, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first: %d: %s", resp.StatusCode, b)
	}
	v1 := pollJob(t, s, acceptedID(t, b))
	if v1.State != JobDone {
		t.Fatalf("first job failed: %s", v1.Error)
	}
	_, hits0, puts0 := store.Stats()
	if puts0 == 0 {
		t.Fatal("finished campaign not stored")
	}

	resp, b = post(t, s, "/v1/jobs", body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second: %d: %s", resp.StatusCode, b)
	}
	v2 := pollJob(t, s, acceptedID(t, b))
	if v2.State != JobDone {
		t.Fatalf("second job failed: %s", v2.Error)
	}
	if _, hits1, _ := store.Stats(); hits1 <= hits0 {
		t.Errorf("repeat was not served from the artifact store (hits %d -> %d)", hits0, hits1)
	}
	if string(v1.Result) != string(v2.Result) {
		t.Error("memoized result differs from the original")
	}
}
