package harness

import (
	"context"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"vcfr/internal/gadget"
	"vcfr/internal/ilr"
)

// Entropy quantifies the Sec. V-C(a) discussion: how hard is it for an
// attacker to *guess* a usable address in the randomized space? For several
// scatter spreads it reports the placement entropy, the density of valid
// instruction starts inside the randomized range, the measured hit rate of
// uniform random guessing (a Monte-Carlo attacker with a seeded generator),
// and the expected number of guesses before the first hit — each failed
// guess being a crash that, under re-randomization, also resets the layout.
// Each spread is one cell ("<app>/spread-N"), so the four layouts
// randomize and simulate concurrently.
func Entropy(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	name := "h264ref"
	if ns := cfg.names(nil); len(ns) > 0 {
		name = ns[0]
	}
	t := &Table{
		ID:    "entropy",
		Title: "Guessing attacks vs scatter spread (" + name + ")",
		Columns: []string{"spread", "entropy-bits", "range-MiB", "valid-density",
			"guess-hit-rate", "expected-guesses"},
	}
	var labels []string
	for _, spread := range []int{2, 8, 32, 128} {
		labels = append(labels, name+"/spread-"+strconv.Itoa(spread))
	}
	cells := s.mapCells(cfg, labels,
		func(ctx context.Context, cfg Config, label string) (Cell, error) {
			app := strings.SplitN(label, "/spread-", 2)
			spread, err := strconv.Atoi(app[1])
			if err != nil {
				return Cell{}, err
			}
			prepped, err := s.prepareOpts(ctx, app[0], cfg, ilr.Options{Spread: spread})
			if err != nil {
				return Cell{}, err
			}
			lo, hi := prepped.R.Tables.RandRange()
			span := float64(hi - lo)
			valid := float64(prepped.R.Tables.Len())
			density := valid / span

			// Monte-Carlo attacker: uniform guesses inside the known range,
			// from the cell's own derived seed.
			rng := rand.New(rand.NewSource(cfg.Seed))
			hits := 0
			const guesses = 200_000
			for i := 0; i < guesses; i++ {
				g := lo + uint32(rng.Int63n(int64(span)))
				if _, ok := prepped.R.Tables.ToOrig(g); ok {
					hits++
				}
			}
			hitRate := float64(hits) / guesses
			expected := math.Inf(1)
			if hitRate > 0 {
				expected = 1 / hitRate
			}
			return Cell{Rows: [][]string{{
				d(spread),
				f1(prepped.R.Stats.EntropyBits),
				f2(span / (1 << 20)),
				pct(density),
				pct(hitRate),
				f1(expected),
			}}}, nil
		})
	appendCells(t, cells)
	t.Note = "guessing a valid randomized address ~ 1/spread per try, and a *useful* one is far " +
		"rarer; each miss crashes the process, and re-randomization resets the layout (Sec. V-C). " +
		"The paper notes 32-bit spaces bound this entropy (Snow et al.) and 64-bit spaces lift it."
	return t, nil
}

// GadgetGuessing extends Entropy to the attacker's real goal: landing on an
// address that both translates and decodes as a useful gadget. It reports,
// per spread, how many of the attacker's Monte-Carlo guesses would have hit
// any surviving-gadget entry point.
func GadgetGuessing(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	name := "xalan" // the workload with surviving failover gadgets
	if ns := cfg.names(nil); len(ns) > 0 {
		name = ns[0]
	}
	t := &Table{
		ID:      "gadget-guessing",
		Title:   "Blind gadget guessing over the full 32-bit space (" + name + ")",
		Columns: []string{"surviving-gadgets", "guesses", "hits", "hit-rate"},
		Note: "surviving gadget entry points are a ~10^-5 sliver of the space; " +
			"every wrong guess is a fault the defender can observe",
	}
	cells := s.mapCells(cfg, []string{name},
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			pool := gadget.Scan(app.R.Orig, gadget.DefaultMaxInsts)
			surv := gadget.Survivors(pool, app.R.Tables)
			survivors := make(map[uint32]bool, len(surv))
			for _, g := range surv {
				survivors[g.Addr] = true
			}
			rng := rand.New(rand.NewSource(cfg.Seed))
			const guesses = 500_000
			hits := 0
			for i := 0; i < guesses; i++ {
				if survivors[rng.Uint32()] {
					hits++
				}
			}
			return Cell{Rows: [][]string{{
				d(len(surv)), d(guesses), d(hits),
				pct(float64(hits) / guesses),
			}}}, nil
		})
	appendCells(t, cells)
	return t, nil
}
