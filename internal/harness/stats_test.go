package harness

import (
	"context"
	"reflect"
	"testing"

	"vcfr/internal/cpu"
)

// TestStatsSweep locks the machine-readable sweep's contract: one row per
// (workload, mode) in stable order, real results inside, and — like the
// table experiments — identical output with and without the trace cache.
func TestStatsSweep(t *testing.T) {
	cfg := tiny("h264ref", "lbm")
	rows, err := StatsSweep(context.Background(), NewRunner(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 2 workloads x 3 modes = 6", len(rows))
	}
	wantOrder := []struct{ w, m string }{
		{"h264ref", "baseline"}, {"h264ref", "naive-ilr"}, {"h264ref", "vcfr"},
		{"lbm", "baseline"}, {"lbm", "naive-ilr"}, {"lbm", "vcfr"},
	}
	for i, r := range rows {
		if r.Workload != wantOrder[i].w || r.Mode != wantOrder[i].m {
			t.Errorf("row %d is %s/%s, want %s/%s", i, r.Workload, r.Mode, wantOrder[i].w, wantOrder[i].m)
		}
		if r.Result.Stats.Instructions == 0 || r.Result.Stats.Cycles == 0 {
			t.Errorf("row %d (%s/%s) has empty stats", i, r.Workload, r.Mode)
		}
		if r.Seed == 0 || r.Seed == cfg.Seed {
			t.Errorf("row %d seed %d not derived per cell", i, r.Seed)
		}
	}
	if rows[0].Config.Mode != cpu.ModeBaseline || rows[2].Config.Mode != cpu.ModeVCFR {
		t.Error("rows carry the wrong machine configuration")
	}

	traced, err := StatsSweep(context.Background(), tracedRunner(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, traced) {
		t.Error("trace-cached stats sweep differs from execute-driven")
	}
}

// TestStatsSweepCancelledPartial locks the redesigned cancellation
// contract: a sweep whose context is already cancelled does not discard the
// table — every workload comes back as an error row with its derived seed,
// so the caller can tell exactly which cells are missing and why.
func TestStatsSweepCancelledPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rows, err := StatsSweep(ctx, NewRunner(2), tiny("h264ref", "lbm"))
	if err != nil {
		t.Fatalf("cancelled sweep must return partial rows, got error %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want one error row per workload (2)", len(rows))
	}
	for i, r := range rows {
		if !r.Failed() {
			t.Errorf("row %d (%s) not marked failed under cancelled context", i, r.Workload)
		}
		if r.Seed == 0 {
			t.Errorf("row %d error row lost its derived seed", i)
		}
	}
}

// TestStatsSweepTimeoutMidRun proves per-cell timeouts cancel a cell
// mid-simulation (not just at run boundaries): an absurdly small budget
// must fail every cell while the sweep itself still returns rows.
func TestStatsSweepTimeoutMidRun(t *testing.T) {
	r := NewRunner(2)
	r.CellTimeout = 1 // 1ns: expires during the first cell's first run
	cfg := tiny("h264ref")
	cfg.MaxInsts = 0 // uncapped: only cancellation can stop the run early
	rows, err := StatsSweep(context.Background(), r, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 || !rows[0].Failed() {
		t.Fatalf("rows = %+v, want a single error row for the timed-out cell", rows)
	}
}
