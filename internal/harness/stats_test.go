package harness

import (
	"context"
	"reflect"
	"testing"

	"vcfr/internal/cpu"
)

// TestStatsSweep locks the machine-readable sweep's contract: one row per
// (workload, mode) in stable order, real results inside, and — like the
// table experiments — identical output with and without the trace cache.
func TestStatsSweep(t *testing.T) {
	cfg := tiny("h264ref", "lbm")
	rows, err := StatsSweep(context.Background(), NewRunner(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 2 workloads x 3 modes = 6", len(rows))
	}
	wantOrder := []struct{ w, m string }{
		{"h264ref", "baseline"}, {"h264ref", "naive-ilr"}, {"h264ref", "vcfr"},
		{"lbm", "baseline"}, {"lbm", "naive-ilr"}, {"lbm", "vcfr"},
	}
	for i, r := range rows {
		if r.Workload != wantOrder[i].w || r.Mode != wantOrder[i].m {
			t.Errorf("row %d is %s/%s, want %s/%s", i, r.Workload, r.Mode, wantOrder[i].w, wantOrder[i].m)
		}
		if r.Result.Stats.Instructions == 0 || r.Result.Stats.Cycles == 0 {
			t.Errorf("row %d (%s/%s) has empty stats", i, r.Workload, r.Mode)
		}
		if r.Seed == 0 || r.Seed == cfg.Seed {
			t.Errorf("row %d seed %d not derived per cell", i, r.Seed)
		}
	}
	if rows[0].Config.Mode != cpu.ModeBaseline || rows[2].Config.Mode != cpu.ModeVCFR {
		t.Error("rows carry the wrong machine configuration")
	}

	traced, err := StatsSweep(context.Background(), tracedRunner(2), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rows, traced) {
		t.Error("trace-cached stats sweep differs from execute-driven")
	}
}
