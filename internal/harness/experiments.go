package harness

import (
	"context"
	"fmt"
	"sort"

	"vcfr/internal/cfg"
	"vcfr/internal/cpu"
	"vcfr/internal/gadget"
	"vcfr/internal/power"
	"vcfr/internal/workloads"
)

// An Experiment regenerates one table or figure of the paper. Run receives
// the Sweep whose worker pool shards the experiment's per-workload cells;
// a failed cell surfaces as an "error: ..." row rather than aborting the
// table (see Sweep.mapCells).
type Experiment struct {
	ID    string
	Desc  string
	Run   func(*Sweep, Config) (*Table, error)
	Paper string // the paper's headline number for EXPERIMENTS.md
}

// Experiments lists every reproducible table and figure, in paper order.
var Experiments = []Experiment{
	{"fig2", "software-emulated ILR slowdown vs native execution", Fig2,
		"execution time increases by over a hundred times"},
	{"fig3", "naive hardware ILR impact on IL1 / prefetch / L2", Fig3,
		"IL1 miss-rate ratio avg 9.4x, prefetch-miss +28%, L2 pressure +36%"},
	{"fig4", "naive hardware ILR normalized IPC", Fig4,
		"average IPC drops to 0.61-0.66 of baseline"},
	{"table1", "execution properties per architecture", Table1,
		"qualitative: VCFR keeps locality+prefetch with diversity"},
	{"table2", "static control-flow analysis per application", Table2,
		"direct transfers dominate; xalan has ~10x the indirect calls"},
	{"fig9", "functions with and without ret instructions", Fig9,
		"both populations present in every application"},
	{"fig11", "gadgets removed by randomization", Fig11,
		"~98% of gadgets removed on average"},
	{"payloads", "ROP payload assembly before/after randomization", Payloads,
		"payloads assemble for every app before, none after"},
	{"fig12", "VCFR speedup over naive hardware ILR (DRC 128)", Fig12,
		"average speedup 1.63x; >2x for namd/h264ref/mcf/xalan"},
	{"fig13", "normalized IPC for DRC sizes 512/128/64", Fig13,
		"avg 98.9% @512; >=97.9% @64 (2.1% overhead)"},
	{"fig14", "DRC miss rates at 512 and 64 entries", Fig14,
		"avg 4.5% @512, 20.6% @64; lbm and xalan worst"},
	{"fig15", "DRC dynamic power overhead (128 entries)", Fig15,
		"avg 0.18% of CPU dynamic power"},
	{"ablation-drc-assoc", "DRC associativity ablation", AblationDRCAssoc,
		"design claim: direct-mapped suffices, miss penalty is marginal"},
	{"ablation-drc-split", "unified vs split DRC ablation", AblationSplitDRC,
		"design claim: one unified buffer uses silicon better"},
	{"ablation-retrand", "return-address randomization modes", AblationRetRand,
		"arch support randomizes every direct call with no code growth"},
	{"ablation-predict-space", "branch prediction space ablation", AblationPredictSpace,
		"design claim: predicting on UPC avoids per-prediction DRC lookups"},
	{"ablation-page-confined", "page-confined randomization ablation", AblationPageConfined,
		"page confinement trades entropy for iTLB pressure"},
	{"ablation-drc2", "dedicated level-2 DRC vs shared-L2 walks", AblationDRC2,
		"design claim: sharing the L2 suffices; a dedicated L2 buffer is unnecessary"},
	{"ablation-context-switch", "context-switch flush cost vs DRC size", AblationContextSwitch,
		"tables are process context; switches restart the DRC cold"},
	{"entropy", "guessing-attack entropy vs scatter spread", Entropy,
		"randomization at instruction granularity gives a large randomization space (Sec. V-C)"},
	{"gadget-guessing", "blind gadget guessing over the 32-bit space", GadgetGuessing,
		"leak-free remote attackers are reduced to random guessing (Sec. II)"},
	{"extension-superscalar", "VCFR on a dual-issue core (future work)", ExtensionSuperscalar,
		"the paper conjectures the idea extends to wider processors (Sec. IX)"},
	{"extension-multicore", "two VCFR processes sharing an L2", ExtensionMulticore,
		"the approach applies to multi-core systems with ease (Sec. IV-D)"},
	{"baseline-inplace", "in-place randomization vs complete ILR", BaselineInPlace,
		"partial randomization cannot use the full address space (Sec. I)"},
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Fig2 measures the whole-program slowdown of interpreting the ILR binary in
// a software VM versus native (baseline pipeline) execution.
func Fig2(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig2",
		Title:   "Software-emulated ILR slowdown over native execution",
		Columns: []string{"app", "native-cycles", "emulated-cycles", "slowdown"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.Fig2Names),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			em, err := runEmulated(ctx, app, cfg.MaxInsts)
			if err != nil {
				return Cell{}, err
			}
			ratio := float64(em.Stats.HostCycles) / float64(base.Stats.Cycles)
			return Cell{
				Rows: [][]string{{name, u(base.Stats.Cycles), u(em.Stats.HostCycles), f1(ratio)}},
				Vals: []float64{ratio},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "", "", f1(mean(vals(cells, 0)))})
	t.Note = "paper: hundreds of times slower (Fig. 2)"
	return t, nil
}

// Fig3 compares naive hardware ILR against the baseline on the three cache
// metrics of the paper's Fig. 3.
func Fig3(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "fig3",
		Title: "Naive ILR cache impact (vs baseline)",
		Columns: []string{"app", "il1-miss-base", "il1-miss-naive", "miss-ratio",
			"pf-useless-base", "pf-useless-naive", "l2-pressure"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			naive, _, err := s.runMode(ctx, app, cpu.ModeNaiveILR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			ratio := missRatio(naive.IL1.MissRate(), base.IL1.MissRate())
			pfDelta := naive.IL1.PrefetchMissRate() - base.IL1.PrefetchMissRate()
			l2Delta := float64(naive.L2.Accesses)/float64(base.L2.Accesses) - 1
			return Cell{
				Rows: [][]string{{name,
					pct(base.IL1.MissRate()), pct(naive.IL1.MissRate()), f1(ratio),
					pct(base.IL1.PrefetchMissRate()), pct(naive.IL1.PrefetchMissRate()),
					"+" + pct(l2Delta)}},
				Vals: []float64{ratio, pfDelta, l2Delta},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "", "", f1(mean(vals(cells, 0))),
		"", "+" + pct(mean(vals(cells, 1))), "+" + pct(mean(vals(cells, 2)))})
	t.Note = "paper: miss-rate ratio avg 9.4x (outliers to 558x), prefetch-miss +28%, L2 +36%. " +
		"Direction and per-app ordering match; the ratios are inflated because short runs " +
		"leave baseline IL1 miss rates compulsory-dominated (the paper's 500M-instruction " +
		"steady state puts a larger denominator under the same effect — its own 558x outlier " +
		"shows the denominator sensitivity)."
	return t, nil
}

func missRatio(naive, base float64) float64 {
	if base <= 0 {
		base = 1e-6 // compulsory-miss floor, avoids infinities on tiny runs
	}
	return naive / base
}

// Fig4 reports the naive hardware ILR IPC normalized to baseline.
func Fig4(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig4",
		Title:   "Naive hardware ILR normalized IPC",
		Columns: []string{"app", "ipc-base", "ipc-naive", "normalized"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			naive, _, err := s.runMode(ctx, app, cpu.ModeNaiveILR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			n := naive.Stats.IPC() / base.Stats.IPC()
			return Cell{
				Rows: [][]string{{name, f3(base.Stats.IPC()), f3(naive.Stats.IPC()), f3(n)}},
				Vals: []float64{n},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "", "", f3(mean(vals(cells, 0)))})
	t.Note = "paper: average normalized IPC 0.61-0.66"
	return t, nil
}

// Table1 reproduces the paper's qualitative comparison, backed by measured
// evidence from one representative application.
func Table1(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	name := "h264ref"
	if ns := cfg.names(nil); len(ns) > 0 {
		name = ns[0]
	}
	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("Execution properties per architecture (measured on %s)", name),
		Columns: []string{"architecture", "control-flow", "il1-accesses/inst",
			"pf-useless", "locality", "normalized-ipc"},
	}
	cells := s.mapCells(cfg, []string{name},
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			type row struct {
				mode cpu.Mode
				cf   string
			}
			rows := []row{
				{cpu.ModeBaseline, "no"},
				{cpu.ModeNaiveILR, "randomized"},
				{cpu.ModeVCFR, "randomized"},
			}
			var c Cell
			var baseIPC float64
			for _, r := range rows {
				res, _, err := s.runMode(ctx, app, r.mode, cfg.MaxInsts, nil)
				if err != nil {
					return Cell{}, err
				}
				if r.mode == cpu.ModeBaseline {
					baseIPC = res.Stats.IPC()
				}
				perInst := float64(res.IL1.Accesses) / float64(res.Stats.Instructions)
				locality := "preserved"
				if perInst > 0.5 {
					locality = "destroyed"
				}
				c.Rows = append(c.Rows, []string{
					r.mode.String(), r.cf, f3(perInst),
					pct(res.IL1.PrefetchMissRate()), locality,
					f3(res.Stats.IPC() / baseIPC)})
			}
			return c, nil
		})
	appendCells(t, cells)
	t.Note = "paper Table I: VCFR = diversity of ILR with the locality/prefetch of no-randomization"
	return t, nil
}

// Table2 reports the static control-flow counts (no simulation).
func Table2(s *Sweep, cfgIn Config) (*Table, error) {
	cfgIn = cfgIn.withDefaults()
	t := &Table{
		ID:    "table2",
		Title: "Static control-flow analysis",
		Columns: []string{"app", "direct-transfers", "indirect-transfers",
			"calls", "indirect-calls", "rets", "resolved-indirect"},
	}
	cells := s.mapCells(cfgIn, cfgIn.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			if err := ctx.Err(); err != nil {
				return Cell{}, err
			}
			w, err := workloads.ByName(name, cfg.Scale)
			if err != nil {
				return Cell{}, err
			}
			g, err := cfg2(w)
			if err != nil {
				return Cell{}, err
			}
			st := g.Stats()
			return Cell{Rows: [][]string{{name, d(st.DirectTransfers),
				d(st.IndirectTransfers), d(st.Calls), d(st.IndirectCalls),
				d(st.Rets), d(st.ResolvedIndirect)}}}, nil
		})
	appendCells(t, cells)
	t.Note = "paper Table II shape: direct >> indirect; xalan dominates indirect calls"
	return t, nil
}

func cfg2(w workloads.Workload) (*cfg.Graph, error) {
	return cfg.Build(w.Img)
}

// Fig9 reports functions with and without ret instructions.
func Fig9(s *Sweep, cfgIn Config) (*Table, error) {
	cfgIn = cfgIn.withDefaults()
	t := &Table{
		ID:      "fig9",
		Title:   "Functions with and without ret instructions",
		Columns: []string{"app", "functions", "with-ret", "without-ret"},
	}
	cells := s.mapCells(cfgIn, cfgIn.names(workloads.SpecNames),
		func(ctx context.Context, ccfg Config, name string) (Cell, error) {
			if err := ctx.Err(); err != nil {
				return Cell{}, err
			}
			w, err := workloads.ByName(name, ccfg.Scale)
			if err != nil {
				return Cell{}, err
			}
			g, err := cfg.Build(w.Img)
			if err != nil {
				return Cell{}, err
			}
			st := g.Stats()
			return Cell{Rows: [][]string{{name, d(st.Functions),
				d(st.FuncsWithRet), d(st.FuncsWithoutRet)}}}, nil
		})
	appendCells(t, cells)
	t.Note = "paper Fig. 9: callees may return without ret (mov/jmp patterns)"
	return t, nil
}

// Fig11 measures the gadget pool before and after randomization.
func Fig11(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig11",
		Title:   "Gadgets removed by control-flow randomization",
		Columns: []string{"app", "gadgets", "surviving", "removed"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			pool := gadget.Scan(app.R.Orig, gadget.DefaultMaxInsts)
			surv := gadget.Survivors(pool, app.R.Tables)
			rate := gadget.RemovalRate(pool, surv)
			return Cell{
				Rows: [][]string{{name, d(len(pool)), d(len(surv)), pct(rate)}},
				Vals: []float64{rate},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "", "", pct(mean(vals(cells, 0)))})
	t.Note = "paper Fig. 11: on average 98% of gadgets removed"
	return t, nil
}

// Payloads runs the Sec. V-B experiment: can ROPgadget-style payload
// templates be assembled before and after randomization?
func Payloads(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "payloads",
		Title:   "ROP payload assembly before/after randomization",
		Columns: []string{"app", "template", "before", "after"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			pool := gadget.Scan(app.R.Orig, gadget.DefaultMaxInsts)
			surv := gadget.Survivors(pool, app.R.Tables)
			before := gadget.TryAllTemplates(pool)
			after := gadget.TryAllTemplates(surv)
			var templates []string
			for tmpl := range before {
				templates = append(templates, tmpl)
			}
			sort.Strings(templates)
			var c Cell
			for _, tmpl := range templates {
				c.Rows = append(c.Rows, []string{name, tmpl,
					yesno(before[tmpl]), yesno(after[tmpl])})
			}
			return c, nil
		})
	appendCells(t, cells)
	t.Note = "paper Sec. V-B: before randomization payloads assemble for every app; after, none"
	return t, nil
}

func yesno(b bool) string {
	if b {
		return "assembles"
	}
	return "fails"
}

// Fig12 measures VCFR's speedup over naive hardware ILR with a 128-entry DRC.
func Fig12(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig12",
		Title:   "VCFR speedup over naive hardware ILR (DRC 128)",
		Columns: []string{"app", "naive-cycles", "vcfr-cycles", "speedup"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			naive, _, err := s.runMode(ctx, app, cpu.ModeNaiveILR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			vcfr, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			sp := float64(naive.Stats.Cycles) / float64(vcfr.Stats.Cycles)
			return Cell{
				Rows: [][]string{{name, u(naive.Stats.Cycles), u(vcfr.Stats.Cycles), f2(sp)}},
				Vals: []float64{sp},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "", "", f2(mean(vals(cells, 0)))})
	t.Note = "paper Fig. 12: average 1.63x; namd/h264ref/mcf/xalan above 2x"
	return t, nil
}

// Fig13 sweeps the DRC size and reports IPC normalized to the baseline.
func Fig13(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{512, 128, 64}
	t := &Table{
		ID:      "fig13",
		Title:   "Normalized IPC under different DRC sizes",
		Columns: []string{"app", "drc-512", "drc-128", "drc-64"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			c := Cell{Rows: [][]string{{name}}}
			for _, size := range sizes {
				size := size
				res, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
					func(c *cpu.Config) { c.DRCEntries = size })
				if err != nil {
					return Cell{}, err
				}
				n := res.Stats.IPC() / base.Stats.IPC()
				c.Rows[0] = append(c.Rows[0], f3(n))
				c.Vals = append(c.Vals, n)
			}
			return c, nil
		})
	appendCells(t, cells)
	avg := []string{"average"}
	for i := range sizes {
		avg = append(avg, f3(mean(vals(cells, i))))
	}
	t.Rows = append(t.Rows, avg)
	t.Note = "paper Fig. 13: avg 98.9% @512 entries; overhead <= 2.1% even @64"
	return t, nil
}

// Fig14 reports DRC miss rates at 512 and 64 entries.
func Fig14(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{512, 64}
	t := &Table{
		ID:      "fig14",
		Title:   "DRC miss rates",
		Columns: []string{"app", "miss-512", "miss-64", "lookups/1k-inst"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			row := []string{name}
			var lookupsPerK float64
			rates := make([]float64, len(sizes))
			for i, size := range sizes {
				size := size
				res, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
					func(c *cpu.Config) { c.DRCEntries = size })
				if err != nil {
					return Cell{}, err
				}
				rates[i] = res.DRC.MissRate()
				row = append(row, pct(res.DRC.MissRate()))
				lookupsPerK = 1000 * float64(res.DRC.Lookups) / float64(res.Stats.Instructions)
			}
			// Apps whose control flow is so predictable that the DRC sees only
			// cold lookups have meaningless miss *rates* (a handful of
			// compulsory misses over a handful of lookups); report them but
			// keep them out of the average (publish no Vals), which the paper
			// computes over apps with steady-state DRC traffic.
			c := Cell{}
			if lookupsPerK >= 0.5 {
				c.Vals = rates
				row = append(row, f1(lookupsPerK))
			} else {
				row = append(row, f1(lookupsPerK)+" (cold only)")
			}
			c.Rows = [][]string{row}
			return c, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average",
		pct(mean(vals(cells, 0))), pct(mean(vals(cells, 1))), ""})
	t.Note = "paper Fig. 14: avg 4.5% @512, 20.6% @64; lbm and xalancbmk worst. " +
		"Cold-only apps (fewer than 0.5 lookups per 1k instructions) are excluded from the average."
	return t, nil
}

// Fig15 reports the DRC's dynamic power overhead with a 128-entry DRC.
func Fig15(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	model := power.DefaultModel()
	t := &Table{
		ID:      "fig15",
		Title:   "DRC dynamic power overhead (128-entry DRC)",
		Columns: []string{"app", "drc-pJ", "cpu-pJ", "overhead"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			res, ccfg, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			b := model.Analyze(res, ccfg)
			return Cell{
				Rows: [][]string{{name, f1(b.DRC), f1(b.Total - b.DRAM),
					fmt.Sprintf("%.3f%%", b.DRCOverheadPct())}},
				Vals: []float64{b.DRCOverheadPct()},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "", "",
		fmt.Sprintf("%.3f%%", mean(vals(cells, 0)))})
	t.Note = "paper Fig. 15: average 0.18% of CPU dynamic power"
	return t, nil
}
