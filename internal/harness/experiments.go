package harness

import (
	"fmt"
	"sort"

	"vcfr/internal/cfg"
	"vcfr/internal/cpu"
	"vcfr/internal/gadget"
	"vcfr/internal/power"
	"vcfr/internal/workloads"
)

// An Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Desc  string
	Run   func(Config) (*Table, error)
	Paper string // the paper's headline number for EXPERIMENTS.md
}

// Experiments lists every reproducible table and figure, in paper order.
var Experiments = []Experiment{
	{"fig2", "software-emulated ILR slowdown vs native execution", Fig2,
		"execution time increases by over a hundred times"},
	{"fig3", "naive hardware ILR impact on IL1 / prefetch / L2", Fig3,
		"IL1 miss-rate ratio avg 9.4x, prefetch-miss +28%, L2 pressure +36%"},
	{"fig4", "naive hardware ILR normalized IPC", Fig4,
		"average IPC drops to 0.61-0.66 of baseline"},
	{"table1", "execution properties per architecture", Table1,
		"qualitative: VCFR keeps locality+prefetch with diversity"},
	{"table2", "static control-flow analysis per application", Table2,
		"direct transfers dominate; xalan has ~10x the indirect calls"},
	{"fig9", "functions with and without ret instructions", Fig9,
		"both populations present in every application"},
	{"fig11", "gadgets removed by randomization", Fig11,
		"~98% of gadgets removed on average"},
	{"payloads", "ROP payload assembly before/after randomization", Payloads,
		"payloads assemble for every app before, none after"},
	{"fig12", "VCFR speedup over naive hardware ILR (DRC 128)", Fig12,
		"average speedup 1.63x; >2x for namd/h264ref/mcf/xalan"},
	{"fig13", "normalized IPC for DRC sizes 512/128/64", Fig13,
		"avg 98.9% @512; >=97.9% @64 (2.1% overhead)"},
	{"fig14", "DRC miss rates at 512 and 64 entries", Fig14,
		"avg 4.5% @512, 20.6% @64; lbm and xalan worst"},
	{"fig15", "DRC dynamic power overhead (128 entries)", Fig15,
		"avg 0.18% of CPU dynamic power"},
	{"ablation-drc-assoc", "DRC associativity ablation", AblationDRCAssoc,
		"design claim: direct-mapped suffices, miss penalty is marginal"},
	{"ablation-drc-split", "unified vs split DRC ablation", AblationSplitDRC,
		"design claim: one unified buffer uses silicon better"},
	{"ablation-retrand", "return-address randomization modes", AblationRetRand,
		"arch support randomizes every direct call with no code growth"},
	{"ablation-predict-space", "branch prediction space ablation", AblationPredictSpace,
		"design claim: predicting on UPC avoids per-prediction DRC lookups"},
	{"ablation-page-confined", "page-confined randomization ablation", AblationPageConfined,
		"page confinement trades entropy for iTLB pressure"},
	{"ablation-drc2", "dedicated level-2 DRC vs shared-L2 walks", AblationDRC2,
		"design claim: sharing the L2 suffices; a dedicated L2 buffer is unnecessary"},
	{"ablation-context-switch", "context-switch flush cost vs DRC size", AblationContextSwitch,
		"tables are process context; switches restart the DRC cold"},
	{"entropy", "guessing-attack entropy vs scatter spread", Entropy,
		"randomization at instruction granularity gives a large randomization space (Sec. V-C)"},
	{"gadget-guessing", "blind gadget guessing over the 32-bit space", GadgetGuessing,
		"leak-free remote attackers are reduced to random guessing (Sec. II)"},
	{"extension-superscalar", "VCFR on a dual-issue core (future work)", ExtensionSuperscalar,
		"the paper conjectures the idea extends to wider processors (Sec. IX)"},
	{"extension-multicore", "two VCFR processes sharing an L2", ExtensionMulticore,
		"the approach applies to multi-core systems with ease (Sec. IV-D)"},
	{"baseline-inplace", "in-place randomization vs complete ILR", BaselineInPlace,
		"partial randomization cannot use the full address space (Sec. I)"},
}

// ByID returns the named experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range Experiments {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("harness: unknown experiment %q", id)
}

// Fig2 measures the whole-program slowdown of interpreting the ILR binary in
// a software VM versus native (baseline pipeline) execution.
func Fig2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig2",
		Title:   "Software-emulated ILR slowdown over native execution",
		Columns: []string{"app", "native-cycles", "emulated-cycles", "slowdown"},
	}
	var ratios []float64
	for _, name := range cfg.names(workloads.Fig2Names) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		base, _, err := app.Run(cpu.ModeBaseline, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		em, err := app.RunEmulated(cfg.MaxInsts)
		if err != nil {
			return nil, err
		}
		ratio := float64(em.Stats.HostCycles) / float64(base.Stats.Cycles)
		ratios = append(ratios, ratio)
		t.Rows = append(t.Rows, []string{
			name, u(base.Stats.Cycles), u(em.Stats.HostCycles), f1(ratio)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", f1(mean(ratios))})
	t.Note = "paper: hundreds of times slower (Fig. 2)"
	return t, nil
}

// Fig3 compares naive hardware ILR against the baseline on the three cache
// metrics of the paper's Fig. 3.
func Fig3(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "fig3",
		Title: "Naive ILR cache impact (vs baseline)",
		Columns: []string{"app", "il1-miss-base", "il1-miss-naive", "miss-ratio",
			"pf-useless-base", "pf-useless-naive", "l2-pressure"},
	}
	var ratios, pf, l2 []float64
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		base, _, err := app.Run(cpu.ModeBaseline, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		naive, _, err := app.Run(cpu.ModeNaiveILR, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		ratio := missRatio(naive.IL1.MissRate(), base.IL1.MissRate())
		pfDelta := naive.IL1.PrefetchMissRate() - base.IL1.PrefetchMissRate()
		l2Delta := float64(naive.L2.Accesses)/float64(base.L2.Accesses) - 1
		ratios = append(ratios, ratio)
		pf = append(pf, pfDelta)
		l2 = append(l2, l2Delta)
		t.Rows = append(t.Rows, []string{name,
			pct(base.IL1.MissRate()), pct(naive.IL1.MissRate()), f1(ratio),
			pct(base.IL1.PrefetchMissRate()), pct(naive.IL1.PrefetchMissRate()),
			"+" + pct(l2Delta)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", f1(mean(ratios)),
		"", "+" + pct(mean(pf)), "+" + pct(mean(l2))})
	t.Note = "paper: miss-rate ratio avg 9.4x (outliers to 558x), prefetch-miss +28%, L2 +36%. " +
		"Direction and per-app ordering match; the ratios are inflated because short runs " +
		"leave baseline IL1 miss rates compulsory-dominated (the paper's 500M-instruction " +
		"steady state puts a larger denominator under the same effect — its own 558x outlier " +
		"shows the denominator sensitivity)."
	return t, nil
}

func missRatio(naive, base float64) float64 {
	if base <= 0 {
		base = 1e-6 // compulsory-miss floor, avoids infinities on tiny runs
	}
	return naive / base
}

// Fig4 reports the naive hardware ILR IPC normalized to baseline.
func Fig4(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig4",
		Title:   "Naive hardware ILR normalized IPC",
		Columns: []string{"app", "ipc-base", "ipc-naive", "normalized"},
	}
	var norm []float64
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		base, _, err := app.Run(cpu.ModeBaseline, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		naive, _, err := app.Run(cpu.ModeNaiveILR, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		n := naive.Stats.IPC() / base.Stats.IPC()
		norm = append(norm, n)
		t.Rows = append(t.Rows, []string{name,
			f3(base.Stats.IPC()), f3(naive.Stats.IPC()), f3(n)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", f3(mean(norm))})
	t.Note = "paper: average normalized IPC 0.61-0.66"
	return t, nil
}

// Table1 reproduces the paper's qualitative comparison, backed by measured
// evidence from one representative application.
func Table1(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	name := "h264ref"
	if ns := cfg.names(nil); len(ns) > 0 {
		name = ns[0]
	}
	app, err := Prepare(name, cfg)
	if err != nil {
		return nil, err
	}
	type row struct {
		mode cpu.Mode
		cf   string
	}
	rows := []row{
		{cpu.ModeBaseline, "no"},
		{cpu.ModeNaiveILR, "randomized"},
		{cpu.ModeVCFR, "randomized"},
	}
	t := &Table{
		ID:    "table1",
		Title: fmt.Sprintf("Execution properties per architecture (measured on %s)", name),
		Columns: []string{"architecture", "control-flow", "il1-accesses/inst",
			"pf-useless", "locality", "normalized-ipc"},
	}
	var baseIPC float64
	for _, r := range rows {
		res, _, err := app.Run(r.mode, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		if r.mode == cpu.ModeBaseline {
			baseIPC = res.Stats.IPC()
		}
		perInst := float64(res.IL1.Accesses) / float64(res.Stats.Instructions)
		locality := "preserved"
		if perInst > 0.5 {
			locality = "destroyed"
		}
		t.Rows = append(t.Rows, []string{
			r.mode.String(), r.cf, f3(perInst),
			pct(res.IL1.PrefetchMissRate()), locality,
			f3(res.Stats.IPC() / baseIPC)})
	}
	t.Note = "paper Table I: VCFR = diversity of ILR with the locality/prefetch of no-randomization"
	return t, nil
}

// Table2 reports the static control-flow counts (no simulation).
func Table2(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "table2",
		Title: "Static control-flow analysis",
		Columns: []string{"app", "direct-transfers", "indirect-transfers",
			"calls", "indirect-calls", "rets", "resolved-indirect"},
	}
	for _, name := range cfg.names(workloads.SpecNames) {
		w, err := workloads.ByName(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		g, err := cfg2(w)
		if err != nil {
			return nil, err
		}
		s := g.Stats()
		t.Rows = append(t.Rows, []string{name, d(s.DirectTransfers),
			d(s.IndirectTransfers), d(s.Calls), d(s.IndirectCalls),
			d(s.Rets), d(s.ResolvedIndirect)})
	}
	t.Note = "paper Table II shape: direct >> indirect; xalan dominates indirect calls"
	return t, nil
}

func cfg2(w workloads.Workload) (*cfg.Graph, error) {
	return cfg.Build(w.Img)
}

// Fig9 reports functions with and without ret instructions.
func Fig9(cfgIn Config) (*Table, error) {
	cfgIn = cfgIn.withDefaults()
	t := &Table{
		ID:      "fig9",
		Title:   "Functions with and without ret instructions",
		Columns: []string{"app", "functions", "with-ret", "without-ret"},
	}
	for _, name := range cfgIn.names(workloads.SpecNames) {
		w, err := workloads.ByName(name, cfgIn.Scale)
		if err != nil {
			return nil, err
		}
		g, err := cfg.Build(w.Img)
		if err != nil {
			return nil, err
		}
		s := g.Stats()
		t.Rows = append(t.Rows, []string{name, d(s.Functions),
			d(s.FuncsWithRet), d(s.FuncsWithoutRet)})
	}
	t.Note = "paper Fig. 9: callees may return without ret (mov/jmp patterns)"
	return t, nil
}

// Fig11 measures the gadget pool before and after randomization.
func Fig11(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig11",
		Title:   "Gadgets removed by control-flow randomization",
		Columns: []string{"app", "gadgets", "surviving", "removed"},
	}
	var rates []float64
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		pool := gadget.Scan(app.R.Orig, gadget.DefaultMaxInsts)
		surv := gadget.Survivors(pool, app.R.Tables)
		rate := gadget.RemovalRate(pool, surv)
		rates = append(rates, rate)
		t.Rows = append(t.Rows, []string{name, d(len(pool)), d(len(surv)), pct(rate)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", pct(mean(rates))})
	t.Note = "paper Fig. 11: on average 98% of gadgets removed"
	return t, nil
}

// Payloads runs the Sec. V-B experiment: can ROPgadget-style payload
// templates be assembled before and after randomization?
func Payloads(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "payloads",
		Title:   "ROP payload assembly before/after randomization",
		Columns: []string{"app", "template", "before", "after"},
	}
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		pool := gadget.Scan(app.R.Orig, gadget.DefaultMaxInsts)
		surv := gadget.Survivors(pool, app.R.Tables)
		before := gadget.TryAllTemplates(pool)
		after := gadget.TryAllTemplates(surv)
		var templates []string
		for tmpl := range before {
			templates = append(templates, tmpl)
		}
		sort.Strings(templates)
		for _, tmpl := range templates {
			t.Rows = append(t.Rows, []string{name, tmpl,
				yesno(before[tmpl]), yesno(after[tmpl])})
		}
	}
	t.Note = "paper Sec. V-B: before randomization payloads assemble for every app; after, none"
	return t, nil
}

func yesno(b bool) string {
	if b {
		return "assembles"
	}
	return "fails"
}

// Fig12 measures VCFR's speedup over naive hardware ILR with a 128-entry DRC.
func Fig12(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "fig12",
		Title:   "VCFR speedup over naive hardware ILR (DRC 128)",
		Columns: []string{"app", "naive-cycles", "vcfr-cycles", "speedup"},
	}
	var speedups []float64
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		naive, _, err := app.Run(cpu.ModeNaiveILR, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		vcfr, _, err := app.Run(cpu.ModeVCFR, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		sp := float64(naive.Stats.Cycles) / float64(vcfr.Stats.Cycles)
		speedups = append(speedups, sp)
		t.Rows = append(t.Rows, []string{name,
			u(naive.Stats.Cycles), u(vcfr.Stats.Cycles), f2(sp)})
	}
	t.Rows = append(t.Rows, []string{"average", "", "", f2(mean(speedups))})
	t.Note = "paper Fig. 12: average 1.63x; namd/h264ref/mcf/xalan above 2x"
	return t, nil
}

// Fig13 sweeps the DRC size and reports IPC normalized to the baseline.
func Fig13(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{512, 128, 64}
	t := &Table{
		ID:      "fig13",
		Title:   "Normalized IPC under different DRC sizes",
		Columns: []string{"app", "drc-512", "drc-128", "drc-64"},
	}
	sums := make([]float64, len(sizes))
	var count int
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		base, _, err := app.Run(cpu.ModeBaseline, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		for i, size := range sizes {
			size := size
			res, _, err := app.Run(cpu.ModeVCFR, cfg.MaxInsts,
				func(c *cpu.Config) { c.DRCEntries = size })
			if err != nil {
				return nil, err
			}
			n := res.Stats.IPC() / base.Stats.IPC()
			sums[i] += n
			row = append(row, f3(n))
		}
		count++
		t.Rows = append(t.Rows, row)
	}
	avg := []string{"average"}
	for _, s := range sums {
		avg = append(avg, f3(s/float64(count)))
	}
	t.Rows = append(t.Rows, avg)
	t.Note = "paper Fig. 13: avg 98.9% @512 entries; overhead <= 2.1% even @64"
	return t, nil
}

// Fig14 reports DRC miss rates at 512 and 64 entries.
func Fig14(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	sizes := []int{512, 64}
	t := &Table{
		ID:      "fig14",
		Title:   "DRC miss rates",
		Columns: []string{"app", "miss-512", "miss-64", "lookups/1k-inst"},
	}
	sums := make([]float64, len(sizes))
	var count int
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		row := []string{name}
		var lookupsPerK float64
		rates := make([]float64, len(sizes))
		for i, size := range sizes {
			size := size
			res, _, err := app.Run(cpu.ModeVCFR, cfg.MaxInsts,
				func(c *cpu.Config) { c.DRCEntries = size })
			if err != nil {
				return nil, err
			}
			rates[i] = res.DRC.MissRate()
			row = append(row, pct(res.DRC.MissRate()))
			lookupsPerK = 1000 * float64(res.DRC.Lookups) / float64(res.Stats.Instructions)
		}
		// Apps whose control flow is so predictable that the DRC sees only
		// cold lookups have meaningless miss *rates* (a handful of
		// compulsory misses over a handful of lookups); report them but keep
		// them out of the average, which the paper computes over apps with
		// steady-state DRC traffic.
		if lookupsPerK >= 0.5 {
			for i := range sizes {
				sums[i] += rates[i]
			}
			count++
			row = append(row, f1(lookupsPerK))
		} else {
			row = append(row, f1(lookupsPerK)+" (cold only)")
		}
		t.Rows = append(t.Rows, row)
	}
	t.Rows = append(t.Rows, []string{"average",
		pct(sums[0] / float64(count)), pct(sums[1] / float64(count)), ""})
	t.Note = "paper Fig. 14: avg 4.5% @512, 20.6% @64; lbm and xalancbmk worst. " +
		"Cold-only apps (fewer than 0.5 lookups per 1k instructions) are excluded from the average."
	return t, nil
}

// Fig15 reports the DRC's dynamic power overhead with a 128-entry DRC.
func Fig15(cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	model := power.DefaultModel()
	t := &Table{
		ID:      "fig15",
		Title:   "DRC dynamic power overhead (128-entry DRC)",
		Columns: []string{"app", "drc-pJ", "cpu-pJ", "overhead"},
	}
	var pcts []float64
	for _, name := range cfg.names(workloads.SpecNames) {
		app, err := Prepare(name, cfg)
		if err != nil {
			return nil, err
		}
		res, ccfg, err := app.Run(cpu.ModeVCFR, cfg.MaxInsts, nil)
		if err != nil {
			return nil, err
		}
		b := model.Analyze(res, ccfg)
		pcts = append(pcts, b.DRCOverheadPct())
		t.Rows = append(t.Rows, []string{name,
			f1(b.DRC), f1(b.Total - b.DRAM), fmt.Sprintf("%.3f%%", b.DRCOverheadPct())})
	}
	t.Rows = append(t.Rows, []string{"average", "", "",
		fmt.Sprintf("%.3f%%", mean(pcts))})
	t.Note = "paper Fig. 15: average 0.18% of CPU dynamic power"
	return t, nil
}
