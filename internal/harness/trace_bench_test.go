package harness

import (
	"context"
	"testing"
)

// benchCfg is the fig13+fig14 DRC-size sweep the acceptance criterion
// measures: a realistic instruction budget over two workloads.
func benchCfg() Config {
	return Config{Workloads: []string{"h264ref", "lbm"}, MaxInsts: 120_000, Scale: 1, Seed: 42, Spread: 8}
}

// runDRCSweep executes fig13 and fig14 once on r and returns the rendered
// tables, so both benchmark variants do identical end-to-end work.
func runDRCSweep(b *testing.B, r *Runner, cfg Config) [2]string {
	b.Helper()
	var out [2]string
	for i, id := range []string{"fig13", "fig14"} {
		exp, err := ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		tb, err := exp.Run(r.Sweep(context.Background(), id), cfg)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = tb.Render()
	}
	return out
}

// BenchmarkDRCSweep measures the acceptance criterion for the trace
// subsystem: the fig13+fig14 DRC-size sweep replayed from cached traces must
// beat the execute-driven sweep by >=2x wall-clock at unchanged output.
//
//	go test ./internal/harness -bench DRCSweep -benchtime 3x
func BenchmarkDRCSweep(b *testing.B) {
	cfg := benchCfg()

	b.Run("execute", func(b *testing.B) {
		r := NewRunner(2)
		want := runDRCSweep(b, r, cfg) // outside the timed region, for the check below
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := runDRCSweep(b, r, cfg); got != want {
				b.Fatal("execute-driven sweep is not deterministic")
			}
		}
	})

	b.Run("replay", func(b *testing.B) {
		r := tracedRunner(2)
		want := runDRCSweep(b, NewRunner(2), cfg)
		// Warm the cache: the first traced sweep captures, later ones replay.
		if got := runDRCSweep(b, r, cfg); got != want {
			b.Fatal("traced sweep output differs from execute-driven")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := runDRCSweep(b, r, cfg); got != want {
				b.Fatal("replayed sweep output differs from execute-driven")
			}
		}
	})
}
