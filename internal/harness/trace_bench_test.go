package harness

import (
	"context"
	"testing"

	"vcfr/internal/cpu"
)

// benchCfg is the fig13+fig14 DRC-size sweep the acceptance criterion
// measures: a realistic instruction budget over two workloads.
func benchCfg() Config {
	return Config{Workloads: []string{"h264ref", "lbm"}, MaxInsts: 120_000, Scale: 1, Seed: 42, Spread: 8}
}

// runDRCSweep executes fig13 and fig14 once on r and returns the rendered
// tables, so both benchmark variants do identical end-to-end work.
func runDRCSweep(b *testing.B, r *Runner, cfg Config) [2]string {
	b.Helper()
	var out [2]string
	for i, id := range []string{"fig13", "fig14"} {
		exp, err := ByID(id)
		if err != nil {
			b.Fatal(err)
		}
		tb, err := exp.Run(r.Sweep(context.Background(), id), cfg)
		if err != nil {
			b.Fatal(err)
		}
		out[i] = tb.Render()
	}
	return out
}

// sweepInstructions computes the total simulated instructions one
// fig13+fig14 sweep executes, for the ns/instr metric: per workload, fig13
// runs one baseline and three VCFR timing configs and fig14 two more VCFR
// configs. Executed instruction counts are a property of the workload's
// functional execution — identical across modes, timing configs, and layout
// seeds (the lockstep tests pin this) — so one baseline + one VCFR run per
// workload yields an exact denominator.
func sweepInstructions(b *testing.B, cfg Config) uint64 {
	b.Helper()
	r := NewRunner(2)
	var total uint64
	for _, w := range cfg.Workloads {
		rows, err := SimulateRuns(context.Background(), r, w,
			[]cpu.Mode{cpu.ModeBaseline, cpu.ModeVCFR}, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		total += rows[0].Result.Stats.Instructions
		total += 5 * rows[1].Result.Stats.Instructions
	}
	return total
}

// BenchmarkDRCSweep measures the acceptance criterion for the trace
// subsystem: the fig13+fig14 DRC-size sweep replayed from cached traces must
// beat the execute-driven sweep by >=2x wall-clock at unchanged output. Both
// variants also report ns/instr (wall clock per simulated instruction), the
// number scripts/bench_pipeline.sh archives in BENCH_pipeline.json so
// refactors of the simulate hot path can be checked against a recorded
// baseline.
//
//	go test ./internal/harness -bench DRCSweep -benchtime 3x
func BenchmarkDRCSweep(b *testing.B) {
	cfg := benchCfg()
	insts := sweepInstructions(b, cfg)
	if insts == 0 {
		b.Fatal("sweep simulates zero instructions")
	}

	b.Run("execute", func(b *testing.B) {
		r := NewRunner(2)
		want := runDRCSweep(b, r, cfg) // outside the timed region, for the check below
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := runDRCSweep(b, r, cfg); got != want {
				b.Fatal("execute-driven sweep is not deterministic")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(insts)*float64(b.N)), "ns/instr")
	})

	b.Run("replay", func(b *testing.B) {
		r := tracedRunner(2)
		want := runDRCSweep(b, NewRunner(2), cfg)
		// Warm the cache: the first traced sweep captures, later ones replay.
		if got := runDRCSweep(b, r, cfg); got != want {
			b.Fatal("traced sweep output differs from execute-driven")
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := runDRCSweep(b, r, cfg); got != want {
				b.Fatal("replayed sweep output differs from execute-driven")
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(insts)*float64(b.N)), "ns/instr")
	})
}
