package harness

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// renderSweep runs every registered experiment through a runner with the
// given worker count and concatenates the rendered tables, in experiment
// order.
func renderSweep(t *testing.T, workers int, cfg Config) string {
	t.Helper()
	r := NewRunner(workers)
	var b strings.Builder
	for _, res := range r.RunAll(context.Background(), Experiments, cfg) {
		if res.Err != nil {
			t.Fatalf("%s: %v", res.Experiment.ID, res.Err)
		}
		b.WriteString(res.Table.Render())
	}
	return b.String()
}

// TestRunnerDeterministicAcrossWorkers is the determinism regression test
// for the parallel runner: the full experiment list must render
// byte-identically at -workers=1 and -workers=8, because every cell's
// randomness comes from its derived seed, never from scheduling order.
func TestRunnerDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("full double sweep in -short mode")
	}
	cfg := Config{MaxInsts: 40_000, Seed: 42}
	start := time.Now()
	serial := renderSweep(t, 1, cfg)
	serialTime := time.Since(start)
	start = time.Now()
	parallel := renderSweep(t, 8, cfg)
	parallelTime := time.Since(start)
	t.Logf("sweep wall-clock: workers=1 %.2fs, workers=8 %.2fs (speedup %.2fx, GOMAXPROCS-bound)",
		serialTime.Seconds(), parallelTime.Seconds(),
		serialTime.Seconds()/parallelTime.Seconds())
	if serial != parallel {
		sl, pl := strings.Split(serial, "\n"), strings.Split(parallel, "\n")
		for i := range sl {
			if i >= len(pl) || sl[i] != pl[i] {
				t.Fatalf("output diverged at line %d:\n workers=1: %q\n workers=8: %q",
					i+1, sl[i], pl[i])
			}
		}
		t.Fatal("outputs differ in length only")
	}
}

// TestRunnerSeedIndependentOfWorkloadSubset: a cell's derived seed depends
// only on (base seed, experiment, cell name), so the rows for a workload
// are identical whether it runs alone or inside the full set — sharding
// never changes results.
func TestRunnerSeedIndependentOfWorkloadSubset(t *testing.T) {
	solo, err := Fig12(sweep("fig12"), tiny("h264ref"))
	if err != nil {
		t.Fatal(err)
	}
	full, err := Fig12(sweep("fig12"), tiny("h264ref", "lbm", "xalan"))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := strings.Join(full.Rows[0], "|"), strings.Join(solo.Rows[0], "|"); got != want {
		t.Errorf("h264ref row depends on the surrounding set:\n solo %s\n full %s", want, got)
	}
}

func TestCellSeedProperties(t *testing.T) {
	a := CellSeed(42, "fig12", "h264ref")
	if a != CellSeed(42, "fig12", "h264ref") {
		t.Error("CellSeed not deterministic")
	}
	seen := map[int64]string{}
	for _, exp := range []string{"fig12", "fig13"} {
		for _, cell := range []string{"h264ref", "lbm", "xalan"} {
			s := CellSeed(42, exp, cell)
			if s == 0 {
				t.Errorf("CellSeed(42, %s, %s) = 0", exp, cell)
			}
			if prev, dup := seen[s]; dup {
				t.Errorf("seed collision: %s/%s vs %s", exp, cell, prev)
			}
			seen[s] = exp + "/" + cell
		}
	}
	if CellSeed(1, "fig12", "h264ref") == CellSeed(2, "fig12", "h264ref") {
		t.Error("base seed ignored")
	}
}

// TestCellErrorBecomesRow: a workload that fails to build surfaces as an
// error row; the rest of the table — including the aggregate — still
// computes from the surviving cells.
func TestCellErrorBecomesRow(t *testing.T) {
	tb, err := Fig4(sweep("fig4"), tiny("h264ref", "doom"))
	if err != nil {
		t.Fatalf("cell failure aborted the experiment: %v", err)
	}
	if len(tb.Rows) != 3 { // h264ref + doom error + average
		t.Fatalf("rows = %d, want 3:\n%s", len(tb.Rows), tb.Render())
	}
	if tb.Rows[1][0] != "doom" || !strings.HasPrefix(tb.Rows[1][1], "error: ") {
		t.Errorf("missing error row, got %v", tb.Rows[1])
	}
	if avg := tb.Rows[2]; avg[0] != "average" || avg[3] == "" || avg[3] == "NaN" {
		t.Errorf("aggregate row broken: %v", avg)
	}
}

// TestCellPanicBecomesRow: a panicking cell is captured and reported as an
// error row instead of killing the sweep.
func TestCellPanicBecomesRow(t *testing.T) {
	s := sweep("panic-test")
	cells := s.mapCells(tiny(), []string{"ok", "boom"},
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			if name == "boom" {
				panic("cell exploded")
			}
			return Cell{Rows: [][]string{{name, "fine"}}}, nil
		})
	if len(cells) != 2 {
		t.Fatalf("cells = %d", len(cells))
	}
	if cells[0].failed() || cells[0].Rows[0][1] != "fine" {
		t.Errorf("healthy cell damaged: %+v", cells[0])
	}
	if !cells[1].failed() || !strings.Contains(cells[1].Rows[0][1], "panic: cell exploded") {
		t.Errorf("panic not captured: %+v", cells[1])
	}
	if strings.Contains(cells[1].Rows[0][1], "\n") {
		t.Error("error row contains a newline (stack leaked into the table)")
	}
}

// TestCellTimeout: a cell that overruns the per-cell budget is cancelled
// at the next run boundary and surfaces as an error row.
func TestCellTimeout(t *testing.T) {
	r := NewRunner(2)
	r.CellTimeout = time.Nanosecond
	s := r.Sweep(context.Background(), "timeout-test")
	cells := s.mapCells(tiny(), []string{"slow"},
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			time.Sleep(2 * time.Millisecond)
			if err := ctx.Err(); err != nil {
				return Cell{}, err
			}
			return Cell{Rows: [][]string{{name, "finished"}}}, nil
		})
	if !cells[0].failed() || !strings.Contains(cells[0].Err, context.DeadlineExceeded.Error()) {
		t.Errorf("timeout not enforced: %+v", cells[0])
	}
}

// TestSweepCancel: cancelling the sweep context drains pending cells as
// error rows without deadlocking.
func TestSweepCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := NewRunner(1)
	cells := r.Sweep(ctx, "cancel-test").mapCells(tiny(), []string{"a", "b", "c"},
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			return Cell{}, ctx.Err()
		})
	for _, c := range cells {
		if !c.failed() || !errors.Is(context.Canceled, errors.New(c.Err)) &&
			!strings.Contains(c.Err, context.Canceled.Error()) {
			t.Errorf("cell %s: want cancellation error, got %q", c.Name, c.Err)
		}
	}
}

// TestCacheRoundTrip: cells memoize on hit, skip recompute, persist to
// disk, and reload across cache instances.
func TestCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cells.json")
	calls := 0
	fn := func(ctx context.Context, cfg Config, name string) (Cell, error) {
		calls++
		return Cell{Rows: [][]string{{name, fmt.Sprint(cfg.Seed)}}, Vals: []float64{1.5}}, nil
	}

	r := NewRunner(1)
	r.Cache = OpenCache(path)
	first := r.Sweep(context.Background(), "cache-test").mapCells(tiny(), []string{"a", "b"}, fn)
	if calls != 2 {
		t.Fatalf("first pass: %d calls", calls)
	}
	second := r.Sweep(context.Background(), "cache-test").mapCells(tiny(), []string{"a", "b"}, fn)
	if calls != 2 {
		t.Errorf("cache did not absorb the second pass: %d calls", calls)
	}
	if fmt.Sprint(first) != fmt.Sprint(second) {
		t.Errorf("cached cells differ:\n %v\n %v", first, second)
	}
	if err := r.Cache.Save(); err != nil {
		t.Fatal(err)
	}

	// Fresh process: reload from disk, still no recompute.
	r2 := NewRunner(1)
	r2.Cache = OpenCache(path)
	if r2.Cache.Len() != 2 {
		t.Fatalf("reloaded cache has %d cells", r2.Cache.Len())
	}
	third := r2.Sweep(context.Background(), "cache-test").mapCells(tiny(), []string{"a", "b"}, fn)
	if calls != 2 {
		t.Errorf("disk cache did not absorb the third pass: %d calls", calls)
	}
	if fmt.Sprint(first) != fmt.Sprint(third) {
		t.Errorf("disk-cached cells differ")
	}

	// A different config misses: the key covers the fields that change
	// simulation results.
	other := tiny()
	other.MaxInsts = 999
	r2.Sweep(context.Background(), "cache-test").mapCells(other, []string{"a"}, fn)
	if calls != 3 {
		t.Errorf("config change did not invalidate the cache: %d calls", calls)
	}
}

// TestCacheNeverStoresFailures: error cells are not memoized, so a
// transient failure re-runs next time.
func TestCacheNeverStoresFailures(t *testing.T) {
	r := NewRunner(1)
	r.Cache = NewCache()
	calls := 0
	fn := func(ctx context.Context, cfg Config, name string) (Cell, error) {
		calls++
		if calls == 1 {
			return Cell{}, errors.New("transient")
		}
		return Cell{Rows: [][]string{{name, "ok"}}}, nil
	}
	s := r.Sweep(context.Background(), "cache-fail")
	if c := s.mapCells(tiny(), []string{"x"}, fn); !c[0].failed() {
		t.Fatal("first call should fail")
	}
	if c := s.mapCells(tiny(), []string{"x"}, fn); c[0].failed() {
		t.Error("failure was cached")
	}
	if calls != 2 {
		t.Errorf("calls = %d, want 2", calls)
	}
}

// TestRunAllCollectsEveryExperiment: RunAll preserves input order and
// isolates failures per experiment.
func TestRunAllCollectsEveryExperiment(t *testing.T) {
	exps := []Experiment{
		mustByID(t, "fig11"),
		{ID: "always-fails", Desc: "x", Paper: "x",
			Run: func(s *Sweep, cfg Config) (*Table, error) {
				return nil, errors.New("no table")
			}},
		mustByID(t, "fig9"),
	}
	out := NewRunner(2).RunAll(context.Background(), exps, tiny("h264ref"))
	if len(out) != 3 {
		t.Fatalf("results = %d", len(out))
	}
	if out[0].Err != nil || out[0].Table.ID != "fig11" {
		t.Errorf("fig11: %+v", out[0].Err)
	}
	if out[1].Err == nil {
		t.Error("failing experiment reported no error")
	}
	if out[2].Err != nil || out[2].Table.ID != "fig9" {
		t.Errorf("fig9 did not survive a sibling failure: %+v", out[2].Err)
	}
}

func mustByID(t *testing.T, id string) Experiment {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	return e
}
