// Package harness runs the paper's experiments end to end: it builds a
// workload, applies the ILR rewriter, runs the cycle simulator in the
// configurations each table or figure needs, and renders the same rows the
// paper reports. Each experiment in experiments.go corresponds to one table
// or figure of the evaluation (see DESIGN.md's experiment index).
package harness

import (
	"context"
	"fmt"
	"math"
	"strings"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/program"
	"vcfr/internal/workloads"
)

// Config scopes an experiment run.
type Config struct {
	// Workloads to include; nil means the experiment's default set (the 11
	// SPEC analogs, or the Fig. 2 set for fig2).
	Workloads []string
	// Scale multiplies workload iteration counts. Default 1.
	Scale int
	// MaxInsts caps simulated instructions per run; 0 runs to completion
	// (the paper runs 500 M or to completion, whichever is longer; our
	// analogs complete in a few hundred thousand instructions per scale
	// unit).
	MaxInsts uint64
	// Seed drives the randomization. Default 42.
	Seed int64
	// Spread is the ILR scatter factor. Default 8 (see withDefaults).
	Spread int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Spread <= 0 {
		// Spread 8 places scattered instructions ~64 bytes apart (about one
		// per cache line): dense enough that the naive layout's damage is
		// dominated by the paper's mechanism (IL1/prefetch/L2 pressure)
		// rather than by iTLB saturation from a sparse gigantic image (see
		// EXPERIMENTS.md, "calibration").
		c.Spread = 8
	}
	return c
}

func (c Config) names(def []string) []string {
	if len(c.Workloads) > 0 {
		return c.Workloads
	}
	return def
}

// App is one prepared workload: generated, assembled, and randomized.
type App struct {
	W workloads.Workload
	R *ilr.Result
}

// Prepare builds and randomizes one workload.
func Prepare(name string, cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	w, err := workloads.ByName(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: cfg.Seed, Spread: cfg.Spread})
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", name, err)
	}
	return &App{W: w, R: res}, nil
}

// PrepareOpts is Prepare with explicit rewriter options (ablations).
func PrepareOpts(name string, cfg Config, opts ilr.Options) (*App, error) {
	cfg = cfg.withDefaults()
	w, err := workloads.ByName(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	if opts.Seed == 0 {
		opts.Seed = cfg.Seed
	}
	if opts.Spread == 0 {
		opts.Spread = cfg.Spread
	}
	res, err := ilr.Rewrite(w.Img, opts)
	if err != nil {
		return nil, fmt.Errorf("harness: %s: %w", name, err)
	}
	return &App{W: w, R: res}, nil
}

// artifacts selects the executed image and the randomization artifacts for
// one architecture mode.
func (a *App) artifacts(mode cpu.Mode) (img *program.Image, trans emu.Translator, randRA map[uint32]uint32, err error) {
	switch mode {
	case cpu.ModeBaseline:
		img = a.R.Orig
	case cpu.ModeNaiveILR:
		img, trans = a.R.Scattered, a.R.Tables
	case cpu.ModeVCFR:
		img, trans, randRA = a.R.VCFR, a.R.Tables, a.R.RandRA
	default:
		err = fmt.Errorf("harness: unknown mode %v", mode)
	}
	return img, trans, randRA, err
}

// Pipeline builds a fresh pipeline for one run of the app in the given mode,
// with the workload's input installed. mutate, if non-nil, adjusts the
// default machine configuration (DRC size, ablation switches, ...).
func (a *App) Pipeline(mode cpu.Mode, mutate func(*cpu.Config)) (*cpu.Pipeline, cpu.Config, error) {
	ccfg := cpu.DefaultConfig(mode)
	if mutate != nil {
		mutate(&ccfg)
	}
	img, trans, randRA, err := a.artifacts(mode)
	if err != nil {
		return nil, ccfg, err
	}
	p, err := cpu.New(img, ccfg, trans, randRA)
	if err != nil {
		return nil, ccfg, err
	}
	p.SetInput(a.W.Input)
	return p, ccfg, nil
}

// Run simulates the app in the given mode. mutate, if non-nil, adjusts the
// default machine configuration (DRC size, ablation switches, ...).
func (a *App) Run(mode cpu.Mode, maxInsts uint64, mutate func(*cpu.Config)) (cpu.Result, cpu.Config, error) {
	return a.RunContext(context.Background(), mode, maxInsts, mutate)
}

// RunContext is Run with mid-run cancellation: a cancelled or deadline-
// expired context stops the simulation within a few thousand instructions
// (see cpu.Pipeline.RunContext) instead of running to the instruction cap.
func (a *App) RunContext(ctx context.Context, mode cpu.Mode, maxInsts uint64, mutate func(*cpu.Config)) (cpu.Result, cpu.Config, error) {
	p, ccfg, err := a.Pipeline(mode, mutate)
	if err != nil {
		return cpu.Result{}, ccfg, err
	}
	res, err := p.RunContext(ctx, maxInsts)
	if err != nil {
		return res, ccfg, fmt.Errorf("harness: %s under %v: %w", a.W.Name, mode, err)
	}
	return res, ccfg, nil
}

// RunEmulated interprets the scattered binary under the software-ILR cost
// model (Fig. 2's baseline).
func (a *App) RunEmulated(maxInsts uint64) (emu.RunResult, error) {
	m, err := emu.NewMachine(a.R.Scattered, emu.Config{
		Mode:     emu.ModeEmulatedILR,
		Trans:    a.R.Tables,
		Input:    a.W.Input,
		MaxSteps: maxInsts,
	})
	if err != nil {
		return emu.RunResult{}, err
	}
	if maxInsts == 0 {
		return m.Run()
	}
	return m.RunN(maxInsts)
}

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Note    string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "note: %s\n", t.Note)
	}
	return b.String()
}

// Formatting helpers.

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }
func u(v uint64) string   { return fmt.Sprintf("%d", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// mean returns the arithmetic mean.
func mean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// geomean returns the geometric mean of positive values.
func geomean(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	var s float64
	for _, v := range vs {
		if v <= 0 {
			return 0
		}
		s += math.Log(v)
	}
	return math.Exp(s / float64(len(vs)))
}
