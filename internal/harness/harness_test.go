package harness

import (
	"context"
	"strings"
	"testing"

	"vcfr/internal/cpu"
)

// tiny returns a config that keeps harness tests fast: two workloads,
// capped instruction budgets.
func tiny(names ...string) Config {
	if len(names) == 0 {
		names = []string{"h264ref", "lbm"}
	}
	return Config{Workloads: names, MaxInsts: 60_000, Scale: 1, Seed: 42, Spread: 8}
}

// sweep builds the execution context for calling one experiment function
// directly in tests, with a small parallel worker pool.
func sweep(id string) *Sweep {
	return NewRunner(2).Sweep(context.Background(), id)
}

func TestPrepareAndRunModes(t *testing.T) {
	app, err := Prepare("h264ref", tiny())
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR} {
		res, _, err := app.Run(mode, 50_000, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Stats.Instructions != 50_000 {
			t.Errorf("%v: ran %d instructions", mode, res.Stats.Instructions)
		}
	}
	if _, _, err := app.Run(cpu.Mode(9), 1000, nil); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestPrepareUnknownWorkload(t *testing.T) {
	if _, err := Prepare("doom", tiny()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunEmulated(t *testing.T) {
	app, err := Prepare("memcpy", tiny())
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.RunEmulated(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.HostCycles == 0 {
		t.Error("no host cycles")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "long-column"},
		Rows:    [][]string{{"xxxxxxxx", "1"}, {"y", "2"}},
		Note:    "hello",
	}
	out := tb.Render()
	for _, want := range []string{"== t: demo ==", "long-column", "xxxxxxxx", "note: hello", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestExperimentRegistry(t *testing.T) {
	seen := make(map[string]bool)
	for _, e := range Experiments {
		if e.ID == "" || e.Desc == "" || e.Run == nil || e.Paper == "" {
			t.Errorf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("fig12"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

// TestEveryExperimentRunsOnTinyConfig smoke-tests each experiment end to end
// on a reduced workload set.
func TestEveryExperimentRunsOnTinyConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep in -short mode")
	}
	r := NewRunner(4)
	for _, e := range Experiments {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tb, err := r.Run(context.Background(), e, tiny())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tb.Rows) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			if tb.ID != e.ID {
				t.Errorf("table id %q != experiment id %q", tb.ID, e.ID)
			}
			if out := tb.Render(); !strings.Contains(out, tb.Title) {
				t.Error("render missing title")
			}
		})
	}
}

func TestFig12ShapeVCFRWins(t *testing.T) {
	tb, err := Fig12(sweep("fig12"), tiny("h264ref"))
	if err != nil {
		t.Fatal(err)
	}
	// The last column of the first row is the speedup; VCFR must beat naive.
	sp := tb.Rows[0][len(tb.Rows[0])-1]
	if !strings.HasPrefix(sp, "1.") && !strings.HasPrefix(sp, "2.") &&
		!strings.HasPrefix(sp, "3.") {
		t.Errorf("speedup %q < 1: naive beat VCFR", sp)
	}
}

func TestMeanGeomean(t *testing.T) {
	if got := mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("mean = %v", got)
	}
	if got := geomean([]float64{1, 4}); got != 2 {
		t.Errorf("geomean = %v", got)
	}
	if mean(nil) != 0 || geomean(nil) != 0 || geomean([]float64{0}) != 0 {
		t.Error("degenerate inputs")
	}
}
