package harness

import (
	"bytes"
	"context"
	"testing"

	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// TestStatsSweepWorkerDeterminism pins scheduling-independence across the
// block-cached execution path: a stats sweep over all 11 analogs plus the
// lifted real-binary fixtures must serialize byte-identically whether cells
// run sequentially on one worker or concurrently on eight. Each cell's
// pipeline (and its block cache) is private, so any divergence means shared
// mutable state leaked between concurrently executing cells.
func TestStatsSweepWorkerDeterminism(t *testing.T) {
	cfg := Config{MaxInsts: 30_000, Scale: 1, Seed: 42, Spread: 8,
		Workloads: append(append([]string{}, workloads.SpecNames...), workloads.ELFNames()...)}
	run := func(workers int) []byte {
		rows, err := StatsSweep(context.Background(), NewRunner(workers), cfg)
		if err != nil {
			t.Fatalf("%d workers: %v", workers, err)
		}
		for _, r := range rows {
			if r.Failed() {
				t.Fatalf("%d workers: cell %s/%s failed: %s", workers, r.Workload, r.Mode, r.Error)
			}
		}
		raw, err := results.Marshal(results.NewSweep(rows))
		if err != nil {
			t.Fatalf("%d workers: marshal: %v", workers, err)
		}
		return raw
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("sweep envelopes diverge between 1 and 8 workers:\n%s",
			firstDiff(serial, parallel))
	}
}
