package harness

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"vcfr/internal/cpu"
	"vcfr/internal/ilr"
	"vcfr/internal/program"
	"vcfr/internal/trace"
)

// Record-once/replay-many execution. When a Runner carries a trace.Cache,
// the first simulation of an (app, mode, instruction cap) triple captures
// its functional instruction trace; every later simulation of that triple —
// under any timing configuration (DRC geometry, issue width, context-switch
// interval, prediction space, ...) — replays the trace instead of
// re-decoding and re-executing every instruction. Replay is bit-identical to
// execution (enforced by the equivalence tests in internal/trace), so tables
// and golden files do not change; only wall-clock time does. Multi-config
// sweeps like fig13/fig14 fan 5-6 timing configurations out of one capture.

// TraceKey derives the trace-cache key for one run: the executed image's
// content hash and the layout seed identify the (workload, layout) pair; the
// mode and instruction cap pin the functional stream; Aux folds in the
// remaining stream-shaping inputs (rewriter options, program input) so two
// layouts that happen to share image bytes and seed still key apart.
func TraceKey(app *App, mode cpu.Mode, maxInsts uint64) trace.Key {
	img, _, _, _ := app.artifacts(mode)
	return trace.Key{
		ImageHash:  imageHash(img),
		LayoutSeed: app.R.Opts.Seed,
		Mode:       mode,
		MaxInsts:   maxInsts,
		Aux:        appAux(app),
	}
}

// imageHash is an FNV-1a content hash over the image's identity, entry
// point, and every segment's placement and bytes.
func imageHash(img *program.Image) uint64 {
	if img == nil {
		return 0
	}
	h := fnv.New64a()
	var b [8]byte
	hstr := func(s string) {
		binary.LittleEndian.PutUint64(b[:], uint64(len(s)))
		h.Write(b[:])
		h.Write([]byte(s))
	}
	h32 := func(v uint32) {
		binary.LittleEndian.PutUint32(b[:4], v)
		h.Write(b[:4])
	}
	hstr(img.Name)
	h32(img.Entry)
	for _, seg := range img.Segments {
		hstr(seg.Name)
		h32(seg.Addr)
		h32(uint32(seg.Perm))
		binary.LittleEndian.PutUint64(b[:], uint64(len(seg.Data)))
		h.Write(b[:])
		h.Write(seg.Data)
	}
	return h.Sum64()
}

// appAux hashes the remaining inputs that shape the functional stream: the
// full rewriter options and the program input served to SysGetChar.
func appAux(app *App) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%#v|", app.R.Opts)
	h.Write(app.W.Input)
	return h.Sum64()
}

// appKey identifies one prepared (workload, layout) pair for the runner's
// prepared-app cache.
func appKey(name string, cfg Config, opts ilr.Options) string {
	cfg = cfg.withDefaults()
	return fmt.Sprintf("%s|%d|%d|%d|%#v", name, cfg.Seed, cfg.Spread, cfg.Scale, opts)
}

// prepare is Prepare with a cancellation check. When the runner traces, the
// prepared app (workload build + ILR rewrite, both deterministic in the
// derived seed) is also memoized, so repeated sweeps skip the rewrite.
func (s *Sweep) prepare(ctx context.Context, name string, cfg Config) (*App, error) {
	return s.prepareOpts(ctx, name, cfg, ilr.Options{})
}

// prepareOpts is PrepareOpts with a cancellation check and, when the runner
// traces, prepared-app memoization.
func (s *Sweep) prepareOpts(ctx context.Context, name string, cfg Config, opts ilr.Options) (*App, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if s.r.Traces == nil {
		return PrepareOpts(name, cfg, opts)
	}
	key := appKey(name, cfg, opts)
	if app := s.r.cachedApp(key); app != nil {
		return app, nil
	}
	app, err := PrepareOpts(name, cfg, opts)
	if err != nil {
		return nil, err
	}
	s.r.storeApp(key, app)
	return app, nil
}

// runMode is App.Run with mid-run cancellation and, when the runner carries
// a trace cache, record-once/replay-many execution. Concurrent calls that
// resolve to the same trace key are coalesced through the cache's
// singleflight: exactly one executes the capture, the rest replay it under
// their own timing configuration.
func (s *Sweep) runMode(ctx context.Context, app *App, mode cpu.Mode, maxInsts uint64, mutate func(*cpu.Config)) (cpu.Result, cpu.Config, error) {
	if err := ctx.Err(); err != nil {
		return cpu.Result{}, cpu.Config{}, err
	}
	tc := s.r.Traces
	if tc == nil {
		return app.RunContext(ctx, mode, maxInsts, mutate)
	}
	key := TraceKey(app, mode, maxInsts)
	p, ccfg, err := app.Pipeline(mode, mutate)
	if err != nil {
		return cpu.Result{}, ccfg, err
	}
	var leadRes cpu.Result
	t, leader, doErr := tc.Do(ctx, key, func() (*trace.Trace, error) {
		tt, res, err := trace.CaptureContext(ctx, p, maxInsts, trace.Meta{
			Workload:   app.W.Name,
			Mode:       mode,
			LayoutSeed: app.R.Opts.Seed,
			Spread:     app.R.Opts.Spread,
			MaxInsts:   maxInsts,
			ImageHash:  key.ImageHash,
		})
		leadRes = res
		return tt, err
	})
	if leader {
		// The leader's capture run already produced this configuration's
		// Result; replaying again would only repeat the same numbers.
		if doErr != nil {
			return leadRes, ccfg, fmt.Errorf("harness: %s under %v: %w", app.W.Name, mode, doErr)
		}
		return leadRes, ccfg, nil
	}
	if doErr == nil {
		res, rerr := trace.ReplayContext(ctx, t, p, maxInsts)
		if rerr == nil {
			return res, ccfg, nil
		}
		// A failed replay means the cached trace does not actually match
		// this app (stale entry or key collision): drop it and fall back to
		// an execute-driven run below.
		tc.Drop(key)
	}
	// Follower fallback: the leader failed (its context may have expired,
	// not ours) or the shared trace proved stale. Execute on a fresh
	// pipeline — the one above may hold partial replay state.
	if err := ctx.Err(); err != nil {
		return cpu.Result{}, ccfg, err
	}
	p2, ccfg2, err := app.Pipeline(mode, mutate)
	if err != nil {
		return cpu.Result{}, ccfg2, err
	}
	t2, res, err := trace.CaptureContext(ctx, p2, maxInsts, trace.Meta{
		Workload:   app.W.Name,
		Mode:       mode,
		LayoutSeed: app.R.Opts.Seed,
		Spread:     app.R.Opts.Spread,
		MaxInsts:   maxInsts,
		ImageHash:  key.ImageHash,
	})
	if err != nil {
		return res, ccfg2, fmt.Errorf("harness: %s under %v: %w", app.W.Name, mode, err)
	}
	tc.Put(key, t2)
	return res, ccfg2, nil
}
