package harness

import (
	"context"
	"strings"

	"vcfr/internal/cpu"
	"vcfr/internal/gadget"
	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

// ablationSet is the default workload subset for ablations: call-dense,
// dispatch-heavy, and streaming representatives.
var ablationSet = []string{"h264ref", "xalan", "sjeng", "lbm"}

// AblationDRCAssoc sweeps the DRC associativity at fixed capacity (64
// entries), testing the paper's claim that a direct-mapped DRC suffices
// because the miss penalty (an L2-backed walk) is marginal.
func AblationDRCAssoc(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	assocs := []int{1, 2, 4}
	t := &Table{
		ID:      "ablation-drc-assoc",
		Title:   "DRC associativity at 64 entries (miss rate / normalized IPC)",
		Columns: []string{"app", "dm-miss", "2way-miss", "4way-miss", "dm-ipc", "2way-ipc", "4way-ipc"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			miss := make([]string, 0, len(assocs))
			ipc := make([]string, 0, len(assocs))
			for _, a := range assocs {
				a := a
				res, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, func(c *cpu.Config) {
					c.DRCEntries, c.DRCAssoc = 64, a
				})
				if err != nil {
					return Cell{}, err
				}
				miss = append(miss, pct(res.DRC.MissRate()))
				ipc = append(ipc, f3(res.Stats.IPC()/base.Stats.IPC()))
			}
			return Cell{Rows: [][]string{append(append([]string{name}, miss...), ipc...)}}, nil
		})
	appendCells(t, cells)
	t.Note = "associativity cuts conflict misses, but IPC barely moves: the L2-backed walk is cheap (Sec. IV-B)"
	return t, nil
}

// AblationSplitDRC compares the paper's unified tagged DRC against two
// half-size direction-split buffers at equal total capacity.
func AblationSplitDRC(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:      "ablation-drc-split",
		Title:   "Unified vs split DRC at 128 total entries",
		Columns: []string{"app", "unified-miss", "split-miss", "unified-ipc", "split-ipc"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			uni, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			split, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
				func(c *cpu.Config) { c.DRCSplit = true })
			if err != nil {
				return Cell{}, err
			}
			return Cell{Rows: [][]string{{name,
				pct(uni.DRC.MissRate()), pct(split.DRC.MissRate()),
				f3(uni.Stats.IPC() / base.Stats.IPC()),
				f3(split.Stats.IPC() / base.Stats.IPC())}}}, nil
		})
	appendCells(t, cells)
	t.Note = "paper Sec. IV-B: one unified buffer uses silicon more efficiently than fixed per-direction halves"
	return t, nil
}

// AblationRetRand compares the three return-address randomization options:
// none, software rewriting (safe sites only, code growth), and the paper's
// architectural mechanism (every direct call, no growth).
func AblationRetRand(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	modes := []ilr.RetRandMode{ilr.RetRandNone, ilr.RetRandSoftware, ilr.RetRandArch}
	t := &Table{
		ID:    "ablation-retrand",
		Title: "Return-address randomization modes",
		Columns: []string{"app", "mode", "calls-randomized", "calls-plain",
			"code-growth-B", "allowed-failovers", "normalized-ipc"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			var c Cell
			var baseIPC float64
			for _, m := range modes {
				app, err := s.prepareOpts(ctx, name, cfg, ilr.Options{RetRand: m})
				if err != nil {
					return Cell{}, err
				}
				if baseIPC == 0 {
					b, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
					if err != nil {
						return Cell{}, err
					}
					baseIPC = b.Stats.IPC()
				}
				res, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, nil)
				if err != nil {
					return Cell{}, err
				}
				c.Rows = append(c.Rows, []string{name, m.String(),
					d(app.R.Stats.CallsRandomized), d(app.R.Stats.CallsPlain),
					d(app.R.Stats.SoftwareGrowth), d(app.R.Tables.AllowedUnrand()),
					f3(res.Stats.IPC() / baseIPC)})
			}
			return c, nil
		})
	appendCells(t, cells)
	t.Note = "arch mode randomizes every direct-call RA with zero code growth (Sec. IV-C)"
	return t, nil
}

// AblationPredictSpace compares predicting in the original space (UPC, the
// paper's design) against predicting on randomized addresses (RPC).
func AblationPredictSpace(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "ablation-predict-space",
		Title: "Branch prediction space: UPC (paper) vs RPC",
		Columns: []string{"app", "upc-drc-lookups", "rpc-drc-lookups",
			"upc-ipc", "rpc-ipc"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			upc, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			rpc, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
				func(c *cpu.Config) { c.PredictOnRPC = true })
			if err != nil {
				return Cell{}, err
			}
			return Cell{Rows: [][]string{{name,
				u(upc.DRC.Lookups), u(rpc.DRC.Lookups),
				f3(upc.Stats.IPC() / base.Stats.IPC()),
				f3(rpc.Stats.IPC() / base.Stats.IPC())}}}, nil
		})
	appendCells(t, cells)
	t.Note = "predicting on RPC forces a DRC de-randomization per predicted-taken transfer (Sec. IV-D)"
	return t, nil
}

// AblationPageConfined compares free instruction placement against
// page-confined randomization (Sec. IV-D), which trades entropy for reduced
// iTLB pressure in the scattered layout.
func AblationPageConfined(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "ablation-page-confined",
		Title: "Free vs page-confined randomization (naive-ILR execution)",
		Columns: []string{"app", "free-entropy-bits", "conf-entropy-bits",
			"free-itlb-miss", "conf-itlb-miss", "free-ipc", "conf-ipc"},
	}
	cells := s.mapCells(cfg, cfg.names([]string{"gcc", "xalan", "h264ref", "sjeng"}),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			free, err := s.prepareOpts(ctx, name, cfg, ilr.Options{})
			if err != nil {
				return Cell{}, err
			}
			conf, err := s.prepareOpts(ctx, name, cfg, ilr.Options{PageConfined: true})
			if err != nil {
				return Cell{}, err
			}
			fRes, _, err := s.runMode(ctx, free, cpu.ModeNaiveILR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			cRes, _, err := s.runMode(ctx, conf, cpu.ModeNaiveILR, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			return Cell{Rows: [][]string{{name,
				f1(free.R.Stats.EntropyBits), f1(conf.R.Stats.EntropyBits),
				itlbMiss(fRes), itlbMiss(cRes),
				f3(fRes.Stats.IPC()), f3(cRes.Stats.IPC())}}}, nil
		})
	appendCells(t, cells)
	t.Note = "page confinement keeps iTLB reach but caps per-instruction entropy at ~10.6 bits"
	return t, nil
}

// AblationDRC2 compares the paper's chosen design — DRC misses walk the
// table through the shared L2 — against the rejected alternative of a
// dedicated level-2 DRC lookup buffer (Sec. IV-B).
func AblationDRC2(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "ablation-drc2",
		Title: "Shared-L2 table walks (paper) vs a dedicated level-2 DRC (64-entry L1 DRC)",
		Columns: []string{"app", "shared-ipc", "drc2-ipc", "drc2-hitrate",
			"shared-l2-walks", "drc2-l2-walks"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			shared, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
				func(c *cpu.Config) { c.DRCEntries = 64 })
			if err != nil {
				return Cell{}, err
			}
			dedicated, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts, func(c *cpu.Config) {
				c.DRCEntries = 64
				c.DRC2Entries = 1024
			})
			if err != nil {
				return Cell{}, err
			}
			hitrate := 0.0
			if dedicated.DRC.L2Lookups > 0 {
				hitrate = float64(dedicated.DRC.L2Hits) / float64(dedicated.DRC.L2Lookups)
			}
			return Cell{Rows: [][]string{{name,
				f3(shared.Stats.IPC() / base.Stats.IPC()),
				f3(dedicated.Stats.IPC() / base.Stats.IPC()),
				pct(hitrate),
				u(shared.DRC.TableWalks), u(dedicated.DRC.TableWalks)}}}, nil
		})
	appendCells(t, cells)
	t.Note = "a dedicated second level absorbs ~85-97% of walks and recovers most of the " +
		"small-DRC loss — but Fig. 13 shows simply growing the first-level DRC does the same, " +
		"so the paper spends the silicon there and shares the L2 instead (Sec. IV-B)"
	return t, nil
}

// AblationContextSwitch measures how context switches (which flush the
// process-private DRC and iTLB state) interact with DRC size: the tables are
// part of the process context, so every switch-in restarts the DRC cold.
func AblationContextSwitch(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	intervals := []uint64{0, 50_000, 10_000}
	t := &Table{
		ID:    "ablation-context-switch",
		Title: "Context-switch frequency vs VCFR overhead (DRC 128)",
		Columns: []string{"app", "no-switch-ipc", "every-50k-ipc", "every-10k-ipc",
			"flushes@10k", "drc-miss@10k"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts, nil)
			if err != nil {
				return Cell{}, err
			}
			row := []string{name}
			var last cpu.Result
			for _, iv := range intervals {
				iv := iv
				res, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
					func(c *cpu.Config) { c.ContextSwitchEvery = iv })
				if err != nil {
					return Cell{}, err
				}
				row = append(row, f3(res.Stats.IPC()/base.Stats.IPC()))
				last = res
			}
			row = append(row, u(last.DRC.Flushes), pct(last.DRC.MissRate()))
			return Cell{Rows: [][]string{row}}, nil
		})
	appendCells(t, cells)
	t.Note = "flushing on switch raises DRC cold misses; the overhead stays bounded because " +
		"the tables re-fill from the L2 (the same property that makes the small DRC viable)"
	return t, nil
}

// BaselineInPlace compares the two software-diversity baselines the paper's
// introduction discusses: Pappas-style in-place randomization (reorder
// inside basic blocks; no hardware, no tables, partial coverage) against
// complete ILR (every instruction moves; ~98% of gadgets gone).
func BaselineInPlace(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "baseline-inplace",
		Title: "In-place (basic-block) randomization vs complete ILR",
		Columns: []string{"app", "gadgets", "inplace-removed", "complete-removed",
			"inplace-payloads", "complete-payloads", "swaps"},
	}
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			pool := gadget.Scan(app.R.Orig, gadget.DefaultMaxInsts)

			inImg, st, err := ilr.InPlace(app.R.Orig, cfg.Seed)
			if err != nil {
				return Cell{}, err
			}
			inSurv := gadget.SurvivorsInImage(pool, inImg)
			compSurv := gadget.Survivors(pool, app.R.Tables)
			inRate := gadget.RemovalRate(pool, inSurv)
			compRate := gadget.RemovalRate(pool, compSurv)
			return Cell{
				Rows: [][]string{{name, d(len(pool)),
					pct(inRate), pct(compRate),
					anyAssembles(gadget.TryAllTemplates(inSurv)),
					anyAssembles(gadget.TryAllTemplates(compSurv)),
					d(st.Swaps)}},
				Vals: []float64{inRate, compRate},
			}, nil
		})
	appendCells(t, cells)
	t.Rows = append(t.Rows, []string{"average", "",
		pct(mean(vals(cells, 0))), pct(mean(vals(cells, 1))), "", "", ""})
	t.Note = "the paper's motivation (Sec. I): partial randomization leaves a usable gadget pool " +
		"(our in-place baseline implements intra-block reordering, one of Pappas et al.'s four " +
		"transformations), while complete ILR removes ~98% and defeats payload assembly"
	return t, nil
}

func anyAssembles(results map[string]bool) string {
	for _, ok := range results {
		if ok {
			return "assembles"
		}
	}
	return "fails"
}

// ExtensionSuperscalar runs the paper's future-work direction: does VCFR's
// overhead stay small on a wider core? It compares the baseline-vs-VCFR gap
// at issue width 1 (the paper's machine) and width 2 (dual-issue in-order).
func ExtensionSuperscalar(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "extension-superscalar",
		Title: "VCFR on a dual-issue core (the paper's future-work direction)",
		Columns: []string{"app", "base-ipc-w1", "base-ipc-w2",
			"vcfr-norm-w1", "vcfr-norm-w2"},
	}
	cells := s.mapCells(cfg, cfg.names(ablationSet),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			row := []string{name}
			var norms []string
			for _, w := range []int{1, 2} {
				w := w
				base, _, err := s.runMode(ctx, app, cpu.ModeBaseline, cfg.MaxInsts,
					func(c *cpu.Config) { c.IssueWidth = w })
				if err != nil {
					return Cell{}, err
				}
				vcfr, _, err := s.runMode(ctx, app, cpu.ModeVCFR, cfg.MaxInsts,
					func(c *cpu.Config) { c.IssueWidth = w })
				if err != nil {
					return Cell{}, err
				}
				row = append(row, f3(base.Stats.IPC()))
				norms = append(norms, f3(vcfr.Stats.IPC()/base.Stats.IPC()))
			}
			return Cell{Rows: [][]string{append(row, norms...)}}, nil
		})
	appendCells(t, cells)
	t.Note = "the DRC's stall cycles are fixed-cost, so a faster core amplifies their relative " +
		"weight slightly; the overhead stays in the low single digits, supporting the paper's " +
		"conjecture that the idea extends to wider processors"
	return t, nil
}

// ExtensionMulticore demonstrates Sec. IV-D's multi-core claim: two VCFR
// processes, each with its own randomization tables, share an L2. Because
// the randomized state is read-only per process, co-running costs only the
// ordinary shared-cache contention — the VCFR machinery adds no cross-core
// interference. Cells are workload pairs ("a/b"), so the two pair studies
// shard like any other cell.
func ExtensionMulticore(s *Sweep, cfg Config) (*Table, error) {
	cfg = cfg.withDefaults()
	t := &Table{
		ID:    "extension-multicore",
		Title: "Two VCFR processes sharing an L2 (solo vs co-run cycles)",
		Columns: []string{"core0/core1", "solo0-cycles", "corun0-cycles",
			"solo1-cycles", "corun1-cycles", "slowdown0", "slowdown1"},
	}
	cells := s.mapCells(cfg, []string{"h264ref/xalan", "lbm/sjeng"},
		func(ctx context.Context, cfg Config, pairName string) (Cell, error) {
			pair := strings.SplitN(pairName, "/", 2)
			apps := make([]*App, 2)
			for i, name := range pair {
				a, err := s.prepare(ctx, name, cfg)
				if err != nil {
					return Cell{}, err
				}
				apps[i] = a
			}
			proc := func(a *App) cpu.ClusterProc {
				return cpu.ClusterProc{
					Img: a.R.VCFR, Trans: a.R.Tables, RandRA: a.R.RandRA, Input: a.W.Input,
				}
			}
			solo := make([]uint64, 2)
			for i := range apps {
				if err := ctx.Err(); err != nil {
					return Cell{}, err
				}
				cl, err := cpu.NewCluster(cpu.DefaultConfig(cpu.ModeVCFR),
					[]cpu.ClusterProc{proc(apps[i])})
				if err != nil {
					return Cell{}, err
				}
				res, err := cl.Run(cfg.MaxInsts)
				if err != nil {
					return Cell{}, err
				}
				solo[i] = res[0].Stats.Cycles
			}
			if err := ctx.Err(); err != nil {
				return Cell{}, err
			}
			cl, err := cpu.NewCluster(cpu.DefaultConfig(cpu.ModeVCFR),
				[]cpu.ClusterProc{proc(apps[0]), proc(apps[1])})
			if err != nil {
				return Cell{}, err
			}
			co, err := cl.Run(cfg.MaxInsts)
			if err != nil {
				return Cell{}, err
			}
			return Cell{Rows: [][]string{{
				pairName,
				u(solo[0]), u(co[0].Stats.Cycles),
				u(solo[1]), u(co[1].Stats.Cycles),
				f2(float64(co[0].Stats.Cycles) / float64(solo[0])),
				f2(float64(co[1].Stats.Cycles) / float64(solo[1])),
			}}}, nil
		})
	appendCells(t, cells)
	t.Note = "co-run slowdowns are ordinary shared-L2 effects; the per-process tables and DRCs " +
		"never interfere because randomized instruction state is read-only (Sec. IV-D)"
	return t, nil
}

func itlbMiss(r cpu.Result) string {
	if r.Stats.ITLBAccesses == 0 {
		return "0%"
	}
	return pct(float64(r.Stats.ITLBMisses) / float64(r.Stats.ITLBAccesses))
}
