package harness

import (
	"context"
	"encoding/json"
	"strings"
	"sync"

	"vcfr/internal/cpu"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// StatsRow is one (workload, mode) run's complete simulator output: the
// exact machine configuration that produced it plus the full Result with
// every cache, DRAM, DRC, and predictor counter.
//
// Deprecated: StatsRow is the versioned wire type results.Run; use that
// package directly. The alias remains so pre-redesign callers keep
// compiling.
type StatsRow = results.Run

// statsModes is the fixed mode order of a stats sweep.
var statsModes = [...]cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}

// StatsSweep simulates every configured workload (default: the 11 SPEC
// analogs) under all three architecture modes on the runner's worker pool
// and returns one row per (workload, mode) in stable (workload, mode) order.
// Per-workload derived seeds and, when the runner carries a trace cache,
// record-once/replay-many execution follow the same rules as the table
// experiments.
//
// A failed or cancelled cell does not discard the sweep: its workload
// contributes a single error row (Mode empty, Error set) and every cell
// that did finish is returned intact. Callers that need all-or-nothing
// semantics can check results.Run.Failed on each row, or wrap the rows with
// results.NewSweep, which derives the Partial flag.
func StatsSweep(ctx context.Context, r *Runner, cfg Config) ([]results.Run, error) {
	return StatsSweepProgress(ctx, r, cfg, nil)
}

// Progress is a sweep's live completion state, reported after each finished
// cell: how many cells are done, how many the sweep has in total, and the
// simulated instructions accumulated by the finished cells (read from the
// statistics spine). Cells served from a disk results cache do not execute
// and therefore do not report.
type Progress struct {
	CellsDone    int    `json:"cells_done"`
	CellsTotal   int    `json:"cells_total"`
	Instructions uint64 `json:"instructions"`
}

// StatsSweepProgress is StatsSweep with a live progress callback: onProgress
// (when non-nil) is invoked after every executed cell, from worker
// goroutines, with a consistent cumulative Progress. The vcfrd service feeds
// this into GET /v1/jobs/{id} so a running sweep is observable mid-flight.
func StatsSweepProgress(ctx context.Context, r *Runner, cfg Config, onProgress func(Progress)) ([]results.Run, error) {
	s := r.Sweep(ctx, "stats")
	cfg = cfg.withDefaults()
	names := cfg.names(workloads.SpecNames)
	var (
		progMu sync.Mutex
		prog   = Progress{CellsTotal: len(names)}
	)
	report := func(insts uint64) {
		if onProgress == nil {
			return
		}
		progMu.Lock()
		prog.CellsDone++
		prog.Instructions += insts
		p := prog
		progMu.Unlock()
		onProgress(p)
	}
	cells := s.mapCells(cfg, names,
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			var rows [][]string
			var cellInsts uint64
			for _, mode := range statsModes {
				res, ccfg, err := s.runMode(ctx, app, mode, cfg.MaxInsts, nil)
				if err != nil {
					return Cell{}, err
				}
				cellInsts += res.Stats.Instructions
				// Cells carry [][]string rows (and must stay cacheable), so
				// the structured row travels JSON-encoded in a single column.
				enc, err := encodeStatsRow(runRow(name, mode, cfg.Seed, ccfg, res, app))
				if err != nil {
					return Cell{}, err
				}
				rows = append(rows, []string{enc})
			}
			report(cellInsts)
			return Cell{Rows: rows}, nil
		})

	var out []results.Run
	for _, c := range cells {
		if c.failed() {
			out = append(out, results.Run{
				Workload: c.Name,
				Seed:     CellSeed(cfg.Seed, s.exp, c.Name),
				Error:    firstLine(c.Err),
			})
			continue
		}
		for _, row := range c.Rows {
			sr, err := decodeStatsRow(row[0])
			if err != nil {
				return out, err
			}
			out = append(out, sr)
		}
	}
	return out, nil
}

// SimulateRuns is the one simulation entry point shared by vcfrsim
// -stats-json and the vcfrd service: it prepares the named workload with
// cfg.Seed as the layout seed (no per-cell derivation — this is a direct
// query, not a sweep) and runs it under each requested mode, in order, with
// mutate applied to the machine configuration. When the runner carries a
// trace cache, repeated timing-only queries replay the captured trace, and
// concurrent identical captures are deduplicated (trace.Cache.Do).
//
// Both producers serialize the returned rows through results.NewRun +
// results.Marshal, which is what makes a service response byte-identical to
// the equivalent CLI invocation.
func SimulateRuns(ctx context.Context, r *Runner, name string, modes []cpu.Mode, cfg Config, mutate func(*cpu.Config)) ([]results.Run, error) {
	s := r.Sweep(ctx, "simulate")
	cfg = cfg.withDefaults()
	app, err := s.prepare(ctx, name, cfg)
	if err != nil {
		return nil, err
	}
	rows := make([]results.Run, 0, len(modes))
	for _, mode := range modes {
		res, ccfg, err := s.runMode(ctx, app, mode, cfg.MaxInsts, mutate)
		if err != nil {
			return rows, err
		}
		rows = append(rows, runRow(name, mode, cfg.Seed, ccfg, res, app))
	}
	return rows, nil
}

// runRow builds the wire row for one finished (workload, mode) simulation,
// attaching the spine-derived extras every producer must agree on: the
// rewriter statistics (absent under baseline, which runs the original
// binary) and the interval series derived from the run's sampled snapshots.
func runRow(name string, mode cpu.Mode, seed int64, ccfg cpu.Config, res cpu.Result, app *App) results.Run {
	row := results.Run{
		Workload:  name,
		Mode:      mode.String(),
		Seed:      seed,
		Config:    ccfg,
		Result:    res,
		Intervals: results.MakeIntervals(res.Intervals),
	}
	if mode != cpu.ModeBaseline {
		st := app.R.Stats
		row.Ilr = &st
	}
	return row
}

// firstLine truncates an error message to its first line (panic values
// carry whole stack traces).
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

func encodeStatsRow(r results.Run) (string, error) {
	b, err := json.Marshal(r)
	return string(b), err
}

func decodeStatsRow(s string) (results.Run, error) {
	var r results.Run
	err := json.Unmarshal([]byte(s), &r)
	return r, err
}
