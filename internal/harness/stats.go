package harness

import (
	"context"
	"encoding/json"
	"fmt"

	"vcfr/internal/cpu"
	"vcfr/internal/workloads"
)

// StatsRow is one (workload, mode) run's complete simulator output: the
// exact machine configuration that produced it plus the full Result with
// every cache, DRAM, DRC, and predictor counter. This is the machine-readable
// counterpart of the experiment tables, meant for downstream analysis
// (cmd/experiments -stats-json).
type StatsRow struct {
	Workload string     `json:"workload"`
	Mode     string     `json:"mode"`
	Seed     int64      `json:"seed"`
	Config   cpu.Config `json:"config"`
	Result   cpu.Result `json:"result"`
}

// statsModes is the fixed mode order of a stats sweep.
var statsModes = [...]cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}

// StatsSweep simulates every configured workload (default: the 11 SPEC
// analogs) under all three architecture modes on the runner's worker pool
// and returns one row per (workload, mode) in stable (workload, mode) order.
// Per-workload derived seeds and, when the runner carries a trace cache,
// record-once/replay-many execution follow the same rules as the table
// experiments.
func StatsSweep(ctx context.Context, r *Runner, cfg Config) ([]StatsRow, error) {
	s := r.Sweep(ctx, "stats")
	cells := s.mapCells(cfg, cfg.names(workloads.SpecNames),
		func(ctx context.Context, cfg Config, name string) (Cell, error) {
			app, err := s.prepare(ctx, name, cfg)
			if err != nil {
				return Cell{}, err
			}
			var rows [][]string
			for _, mode := range statsModes {
				res, ccfg, err := s.runMode(ctx, app, mode, cfg.MaxInsts, nil)
				if err != nil {
					return Cell{}, err
				}
				// Cells carry [][]string rows (and must stay cacheable), so
				// the structured row travels JSON-encoded in a single column.
				enc, err := encodeStatsRow(StatsRow{
					Workload: name,
					Mode:     mode.String(),
					Seed:     cfg.Seed,
					Config:   ccfg,
					Result:   res,
				})
				if err != nil {
					return Cell{}, err
				}
				rows = append(rows, []string{enc})
			}
			return Cell{Rows: rows}, nil
		})

	var out []StatsRow
	for _, c := range cells {
		if c.failed() {
			return nil, fmt.Errorf("harness: stats cell %s: %s", c.Name, c.Err)
		}
		for _, row := range c.Rows {
			sr, err := decodeStatsRow(row[0])
			if err != nil {
				return nil, err
			}
			out = append(out, sr)
		}
	}
	return out, nil
}

func encodeStatsRow(r StatsRow) (string, error) {
	b, err := json.Marshal(r)
	return string(b), err
}

func decodeStatsRow(s string) (StatsRow, error) {
	var r StatsRow
	err := json.Unmarshal([]byte(s), &r)
	return r, err
}
