package harness

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sync"
)

// cacheSchema versions the cell encoding. Bump it whenever any table's
// columns, number formatting, or cell semantics change: the version is
// folded into every cache key, so stale on-disk entries self-invalidate
// instead of resurrecting old-format rows.
const cacheSchema = 1

// Cache memoizes finished experiment cells keyed by (experiment, cell
// name, derived seed, config). An in-memory cache deduplicates work inside
// one process; opening it with a path persists it as JSON so repeated
// invocations of cmd/experiments skip already-computed cells entirely.
// Failed cells are never stored — a transient failure must not stick.
type Cache struct {
	mu      sync.Mutex
	path    string
	entries map[string]Cell
	dirty   bool
	hits    int
	misses  int
}

// NewCache returns an empty in-memory cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]Cell)}
}

// OpenCache loads (or creates) a disk-backed cache at path. A missing or
// unreadable file starts empty rather than failing: the cache is an
// optimization, never a correctness dependency.
func OpenCache(path string) *Cache {
	c := NewCache()
	c.path = path
	data, err := os.ReadFile(path)
	if err != nil {
		return c
	}
	var onDisk map[string]Cell
	if json.Unmarshal(data, &onDisk) == nil {
		c.entries = onDisk
	}
	return c
}

// Save writes the cache back to its path, if it has one and anything
// changed since load.
func (c *Cache) Save() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.path == "" || !c.dirty {
		return nil
	}
	data, err := json.Marshal(c.entries)
	if err != nil {
		return fmt.Errorf("harness: encode cache: %w", err)
	}
	tmp := c.path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.path)
}

// Stats reports cache hits and misses since load.
func (c *Cache) Stats() (hits, misses int) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of stored cells.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// get and put tolerate a nil receiver so Runner code can stay branch-free.

func (c *Cache) get(key string) (Cell, bool) {
	if c == nil {
		return Cell{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	cell, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return cell, ok
}

func (c *Cache) put(key string, cell Cell) {
	if c == nil || cell.failed() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries[key] = cell
	c.dirty = true
}

// cellKey fingerprints one cell: the schema version, the experiment, the
// cell name (which encodes the workload or workload pair), the derived
// seed, and every Config field that changes simulation results.
func cellKey(expID, name string, cfg Config) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s|%d|%d|%d|%d",
		cacheSchema, expID, name, cfg.Seed, cfg.Scale, cfg.MaxInsts, cfg.Spread)
	return fmt.Sprintf("%016x", h.Sum64())
}
