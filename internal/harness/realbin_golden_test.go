package harness

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// TestELFGoldenEnvelopes pins the full three-mode results.Envelope for every
// checked-in real-binary fixture byte for byte. The fixtures are fixed
// binaries and the lifter, randomizer, and pipeline are deterministic per
// seed, so the envelope is a constant document: any drift means the
// real-binary front end changed the program the simulator sees. Regenerate
// with -update after a deliberate lifter or schema change.
//
// The same test proves producer agreement: the sweep path (what
// `experiments -stats-json -workloads <fixture>` runs) derives its own
// per-cell layout seed, so its rows land on a different randomized layout
// than the simulate path (what `vcfrsim -workload <fixture> -stats-json`
// and the vcfrd job executor run) — yet the lifted binary must compute the
// identical output and retire the identical instruction count under both.
func TestELFGoldenEnvelopes(t *testing.T) {
	modes := []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
	cfg := Config{Scale: 1, Seed: 42, Spread: 8}
	for _, name := range workloads.ELFNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			rows, err := SimulateRuns(context.Background(), NewRunner(1), name, modes, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			got, err := results.Marshal(results.NewRun(rows...))
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".golden.json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to regenerate)", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("fixture envelope drifted from %s:\n%s", path, firstDiff(got, want))
			}

			sweepCfg := cfg
			sweepCfg.Workloads = []string{name}
			sweepRows, err := StatsSweep(context.Background(), NewRunner(1), sweepCfg)
			if err != nil {
				t.Fatal(err)
			}
			if len(sweepRows) != len(rows) {
				t.Fatalf("sweep produced %d rows, simulate %d", len(sweepRows), len(rows))
			}
			for i, sr := range sweepRows {
				if sr.Mode != rows[i].Mode || sr.Workload != rows[i].Workload {
					t.Fatalf("row %d is %s/%s, simulate ran %s/%s",
						i, sr.Workload, sr.Mode, rows[i].Workload, rows[i].Mode)
				}
				if string(sr.Result.Out) != string(rows[i].Result.Out) {
					t.Errorf("%s: sweep output %q != simulate output %q under a different layout",
						sr.Mode, sr.Result.Out, rows[i].Result.Out)
				}
				if sr.Result.Stats.Instructions != rows[i].Result.Stats.Instructions {
					t.Errorf("%s: sweep retired %d instructions, simulate %d",
						sr.Mode, sr.Result.Stats.Instructions, rows[i].Result.Stats.Instructions)
				}
			}
		})
	}
}
