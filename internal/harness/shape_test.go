package harness

import (
	"strconv"
	"strings"
	"testing"

	"vcfr/internal/cpu"
)

// These shape tests lock in the reproduction's headline directions on a
// reduced configuration: they are the regression net for the calibration in
// DESIGN.md §5. They intentionally assert inequalities (who wins), never
// absolute numbers.

func cellFloat(t *testing.T, cell string) float64 {
	t.Helper()
	cell = strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	v, err := strconv.ParseFloat(cell, 64)
	if err != nil {
		t.Fatalf("cell %q not numeric: %v", cell, err)
	}
	return v
}

func TestShapeNaiveILRDegradesIPC(t *testing.T) {
	tb, err := Fig4(sweep("fig4"), tiny("h264ref", "lbm"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "average" {
			continue
		}
		norm := cellFloat(t, row[3])
		if norm >= 1.0 {
			t.Errorf("%s: naive ILR did not degrade (%.3f)", row[0], norm)
		}
	}
}

func TestShapeVCFRBeatsNaiveEverywhere(t *testing.T) {
	tb, err := Fig12(sweep("fig12"), tiny("h264ref", "lbm", "xalan"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "average" {
			continue
		}
		if sp := cellFloat(t, row[3]); sp < 1.0 {
			t.Errorf("%s: VCFR slower than naive (%.2fx)", row[0], sp)
		}
	}
}

func TestShapeDRCSizeMonotone(t *testing.T) {
	tb, err := Fig13(sweep("fig13"), tiny("h264ref", "xalan"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "average" {
			continue
		}
		at512, at128, at64 := cellFloat(t, row[1]), cellFloat(t, row[2]), cellFloat(t, row[3])
		// Allow tiny inversions from timing noise, but the trend must hold.
		if at64 > at512+0.005 {
			t.Errorf("%s: smaller DRC faster (%.3f @64 vs %.3f @512)", row[0], at64, at512)
		}
		if at512 < 0.5 || at128 < 0.5 || at64 < 0.5 {
			t.Errorf("%s: VCFR overhead implausible: %v", row[0], row)
		}
	}
}

func TestShapeGadgetRemovalHigh(t *testing.T) {
	tb, err := Fig11(sweep("fig11"), tiny("h264ref", "xalan"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "average" {
			continue
		}
		if removed := cellFloat(t, row[3]); removed < 90 {
			t.Errorf("%s: only %.1f%% of gadgets removed", row[0], removed)
		}
	}
}

func TestShapePowerOverheadSubPercent(t *testing.T) {
	tb, err := Fig15(sweep("fig15"), tiny("h264ref", "lbm"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "average" {
			continue
		}
		if ovh := cellFloat(t, row[3]); ovh > 2.5 {
			t.Errorf("%s: DRC power overhead %.2f%%, out of regime", row[0], ovh)
		}
	}
}

func TestShapeInPlaceWeakerThanComplete(t *testing.T) {
	tb, err := BaselineInPlace(sweep("baseline-inplace"), tiny("h264ref", "xalan"))
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[0] == "average" {
			continue
		}
		inplace, complete := cellFloat(t, row[2]), cellFloat(t, row[3])
		if inplace >= complete {
			t.Errorf("%s: in-place (%.1f%%) >= complete ILR (%.1f%%)",
				row[0], inplace, complete)
		}
	}
}

// TestSoakLargerScale runs one workload end to end at a bigger scale across
// all three architectures — a longer-horizon stability check.
func TestSoakLargerScale(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	app, err := Prepare("h264ref", Config{Scale: 4, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	var outs []string
	for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR} {
		res, _, err := app.Run(mode, 0, nil)
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if res.Stats.Instructions < 800_000 {
			t.Errorf("%v: soak ran only %d instructions", mode, res.Stats.Instructions)
		}
		outs = append(outs, string(res.Out))
	}
	if outs[0] != outs[1] || outs[0] != outs[2] {
		t.Errorf("soak outputs diverged: %q %q %q", outs[0], outs[1], outs[2])
	}
}

// TestShapeStableAcrossSeeds: the headline who-wins results are properties
// of the design, not of one lucky layout.
func TestShapeStableAcrossSeeds(t *testing.T) {
	for _, seed := range []int64{7, 1234, 987654} {
		cfg := tiny("h264ref")
		cfg.Seed = seed
		tb, err := Fig12(sweep("fig12"), cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sp := cellFloat(t, tb.Rows[0][3]); sp < 1.0 {
			t.Errorf("seed %d: VCFR lost to naive (%.2fx)", seed, sp)
		}
		gt, err := Fig11(sweep("fig11"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if removed := cellFloat(t, gt.Rows[0][3]); removed < 90 {
			t.Errorf("seed %d: removal %.1f%%", seed, removed)
		}
	}
}
