package harness

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files with current output")

// goldenCfg pins every input that feeds the tables: with the base seed fixed
// and all cell seeds derived from it, the rendered output is byte-stable
// across runs, worker counts, and machines.
func goldenCfg() Config {
	return Config{MaxInsts: 60_000, Seed: 42}
}

// TestGoldenTables locks the exact rendered output of the headline
// experiments. A diff here means either a real behaviour change (rerun with
// -update and review the diff) or lost determinism (fix the code).
func TestGoldenTables(t *testing.T) {
	for _, id := range []string{"fig2", "fig4", "table1"} {
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			tb, err := exp.Run(sweep(id), goldenCfg())
			if err != nil {
				t.Fatal(err)
			}
			got := tb.Render()
			path := filepath.Join("testdata", id+".golden")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run `go test ./internal/harness -run TestGoldenTables -update` to create it)", err)
			}
			if got != string(want) {
				t.Errorf("output changed (rerun with -update if intended):\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}
