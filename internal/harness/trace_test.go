package harness

import (
	"context"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/trace"
)

// tracedRunner returns a runner whose cells replay cached traces.
func tracedRunner(workers int) *Runner {
	r := NewRunner(workers)
	r.Traces = trace.NewCache(256 << 20)
	return r
}

// TestTracedSweepMatchesExecute locks the harness-level contract: enabling
// the trace cache changes wall-clock time, never output. The multi-config
// experiments (fig13: 4 runs/cell, fig14: 3 runs/cell) must render byte-
// identical tables with and without record-once/replay-many, and the traced
// runner must actually replay (cache hits > 0).
func TestTracedSweepMatchesExecute(t *testing.T) {
	cfg := tiny("h264ref", "lbm")
	// fig13/fig14 run several timing configs per (app, mode) and must hit the
	// cache within one sweep; fig12/table1 run each (app, mode) once, so one
	// pass is all misses — they only check output equality.
	multiConfig := map[string]bool{"fig13": true, "fig14": true}
	for _, id := range []string{"fig13", "fig14", "fig12", "table1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			exp, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := exp.Run(NewRunner(2).Sweep(context.Background(), id), cfg)
			if err != nil {
				t.Fatal(err)
			}
			r := tracedRunner(2)
			traced, err := exp.Run(r.Sweep(context.Background(), id), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := traced.Render(), plain.Render(); got != want {
				t.Errorf("traced table differs from execute-driven:\n--- traced ---\n%s--- execute ---\n%s", got, want)
			}
			hits, misses, _, _ := r.Traces.Stats()
			if multiConfig[id] && hits == 0 {
				t.Errorf("trace cache saw no hits (misses=%d): replay path never ran", misses)
			}
		})
	}
}

// TestTracedSweepDeterministicAcrossWorkers reruns a traced multi-config
// experiment with 1 and 8 workers: per-cell derived seeds plus bit-identical
// replay must keep the output byte-stable regardless of scheduling.
func TestTracedSweepDeterministicAcrossWorkers(t *testing.T) {
	cfg := tiny("h264ref", "lbm")
	exp, err := ByID("fig13")
	if err != nil {
		t.Fatal(err)
	}
	var outs [2]string
	for i, workers := range []int{1, 8} {
		tb, err := exp.Run(tracedRunner(workers).Sweep(context.Background(), "fig13"), cfg)
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = tb.Render()
	}
	if outs[0] != outs[1] {
		t.Errorf("traced output depends on worker count:\n--- 1 worker ---\n%s--- 8 workers ---\n%s", outs[0], outs[1])
	}
}

// TestTraceKeySeparatesStreams spot-checks the cache key: runs that must not
// share a functional trace get different keys.
func TestTraceKeySeparatesStreams(t *testing.T) {
	cfg := tiny()
	app, err := Prepare("h264ref", cfg)
	if err != nil {
		t.Fatal(err)
	}
	base := TraceKey(app, cpu.ModeVCFR, 50_000)
	if k := TraceKey(app, cpu.ModeBaseline, 50_000); k == base {
		t.Error("baseline and VCFR share a key")
	}
	if k := TraceKey(app, cpu.ModeVCFR, 60_000); k == base {
		t.Error("different instruction caps share a key")
	}
	cfg2 := cfg
	cfg2.Seed = cfg.Seed + 1
	app2, err := Prepare("h264ref", cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if k := TraceKey(app2, cpu.ModeVCFR, 50_000); k == base {
		t.Error("different layout seeds share a key")
	}
	other, err := Prepare("lbm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if k := TraceKey(other, cpu.ModeVCFR, 50_000); k == base {
		t.Error("different workloads share a key")
	}
}

// TestTracedRunModeFallsBackOnBadTrace poisons the cache with a trace from a
// different layout and checks the traced runMode recovers by re-executing
// (and repairs the cache entry) instead of failing the cell.
func TestTracedRunModeFallsBackOnBadTrace(t *testing.T) {
	cfg := tiny()
	app, err := Prepare("h264ref", cfg)
	if err != nil {
		t.Fatal(err)
	}
	wrong, err := Prepare("sjeng", cfg)
	if err != nil {
		t.Fatal(err)
	}
	const instCap = 30_000
	r := tracedRunner(1)
	s := r.Sweep(context.Background(), "poison")

	// Capture sjeng's trace, then file it under h264ref's key.
	p, _, err := wrong.Pipeline(cpu.ModeVCFR, nil)
	if err != nil {
		t.Fatal(err)
	}
	badTrace, _, err := trace.Capture(p, instCap, trace.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	key := TraceKey(app, cpu.ModeVCFR, instCap)
	r.Traces.Put(key, badTrace)

	got, _, err := s.runMode(context.Background(), app, cpu.ModeVCFR, instCap, nil)
	if err != nil {
		t.Fatalf("poisoned cache failed the run: %v", err)
	}
	want, _, err := app.Run(cpu.ModeVCFR, instCap, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats != want.Stats {
		t.Error("fallback run differs from direct execution")
	}
	// The poisoned entry must have been replaced by a working capture.
	if tr, ok := r.Traces.Get(key); !ok || tr == badTrace {
		t.Error("cache still holds the poisoned trace")
	}
}
