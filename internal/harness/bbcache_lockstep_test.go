package harness

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// TestBlockCacheLockstepEnvelopes is the block-cache's end-to-end
// differential proof: every SPEC-analog workload, under all three
// architecture modes, produces a byte-identical serialized results.Envelope
// with the basic-block cache enabled and disabled — including the sampled
// Intervals rows, which is what catches a batched-stats flush landing on
// the wrong side of a sample edge.
//
// SampleEvery deliberately does not divide MaxInsts (and is prime), so
// sample edges fall mid-block and the final interval is a partial window.
func TestBlockCacheLockstepEnvelopes(t *testing.T) {
	modes := []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
	// The ELF fixtures join the wall: lifted real-binary text must hold the
	// same cache-vs-direct equivalence as the synthetic analogs.
	names := append(append([]string{}, workloads.SpecNames...), workloads.ELFNames()...)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := Config{MaxInsts: 60_000, Scale: 1, Seed: 42, Spread: 8}
			run := func(noCache bool) []byte {
				rows, err := SimulateRuns(context.Background(), NewRunner(1), name, modes, cfg,
					func(c *cpu.Config) {
						c.SampleEvery = 7013 // prime: edges land mid-block
						c.ContextSwitchEvery = 9001
						c.NoBlockCache = noCache
					})
				if err != nil {
					t.Fatalf("noCache=%v: %v", noCache, err)
				}
				raw, err := results.Marshal(results.NewRun(rows...))
				if err != nil {
					t.Fatalf("noCache=%v: marshal: %v", noCache, err)
				}
				return raw
			}
			cached, direct := run(false), run(true)
			if !bytes.Equal(cached, direct) {
				t.Errorf("envelopes diverge between block-cached and direct execution:\n%s",
					firstDiff(cached, direct))
			}
		})
	}
}

// firstDiff renders the first byte position where two JSON documents differ,
// with surrounding context from both, so a lockstep failure points at the
// diverging field instead of dumping two full envelopes.
func firstDiff(a, b []byte) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	lo := i - 120
	if lo < 0 {
		lo = 0
	}
	end := func(s []byte) int {
		if e := i + 120; e < len(s) {
			return e
		}
		return len(s)
	}
	return fmt.Sprintf("first divergence at byte %d\ncached: …%s…\ndirect: …%s…",
		i, a[lo:end(a)], b[lo:end(b)])
}
