package harness

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"vcfr/internal/emu"
	"vcfr/internal/trace"
)

// Runner executes experiments by sharding their (experiment, workload,
// config) cells across a bounded worker pool. Every cell derives its own
// PRNG seed from (base seed, experiment ID, cell name), so results are
// bit-identical regardless of worker count or goroutine scheduling, and
// cells land in their table in the stable order of the workload list, not
// in completion order.
type Runner struct {
	// Workers bounds the number of concurrently executing cells across
	// every experiment this runner is driving. <= 0 means GOMAXPROCS.
	Workers int
	// CellTimeout caps one cell's wall-clock time; 0 means no limit. A
	// timed-out cell is cancelled mid-run (see cpu.Pipeline.RunContext)
	// and surfaces as an error row while the rest of the sweep completes.
	//
	// Deprecated: field-based timeouts predate context plumbing. New
	// callers should bound the context they pass to Run/RunAll/StatsSweep
	// (context.WithTimeout / WithDeadline) instead; CellTimeout remains as
	// a per-cell refinement of that budget and is honored as a derived
	// per-cell context.WithTimeout.
	CellTimeout time.Duration
	// Cache, if non-nil, memoizes finished cells keyed by (experiment,
	// cell, derived seed, config); see Cache for the disk-backed variant.
	Cache *Cache
	// Traces, if non-nil, switches cells to record-once/replay-many
	// execution: one functional trace is captured per (app, mode,
	// instruction cap) and every further timing configuration replays it
	// (see trace.go). Replay is bit-identical to execution, so enabling the
	// cache changes wall-clock time only, never results.
	Traces *trace.Cache

	semOnce sync.Once
	sem     chan struct{}

	// Prepared-app memoization, active only alongside Traces: workload
	// build + ILR rewrite are deterministic in the derived seed, so
	// repeated sweeps reuse them. Bounded FIFO, maxApps entries.
	appMu    sync.Mutex
	apps     map[string]*App
	appOrder []string
}

// maxApps bounds the prepared-app memo (each entry holds three images plus
// translation tables, a few MB at most).
const maxApps = 64

// cachedApp returns the memoized prepared app for key, or nil.
func (r *Runner) cachedApp(key string) *App {
	r.appMu.Lock()
	defer r.appMu.Unlock()
	return r.apps[key]
}

// storeApp memoizes a prepared app, evicting the oldest entry past maxApps.
func (r *Runner) storeApp(key string, app *App) {
	r.appMu.Lock()
	defer r.appMu.Unlock()
	if r.apps == nil {
		r.apps = make(map[string]*App)
	}
	if _, ok := r.apps[key]; ok {
		return
	}
	if len(r.appOrder) >= maxApps {
		delete(r.apps, r.appOrder[0])
		r.appOrder = r.appOrder[1:]
	}
	r.apps[key] = app
	r.appOrder = append(r.appOrder, key)
}

// NewRunner returns a runner with the given worker budget (<= 0 means
// GOMAXPROCS) and no cache or timeout.
func NewRunner(workers int) *Runner {
	return &Runner{Workers: workers}
}

// slots lazily builds the shared worker-slot channel, so a zero-value
// Runner and flag-configured Workers values both work.
func (r *Runner) slots() chan struct{} {
	r.semOnce.Do(func() {
		n := r.Workers
		if n <= 0 {
			n = runtime.GOMAXPROCS(0)
		}
		r.Workers = n
		r.sem = make(chan struct{}, n)
	})
	return r.sem
}

// Shard runs fn(ctx, i) for every i in [0, n) on the runner's bounded
// worker pool and returns once all of them finished or the context was
// cancelled. Indices whose slot acquisition loses to cancellation are
// simply never invoked — callers detect skipped work by the absence of a
// result for that index, which is how the fault-injection campaign reports
// partial coverage. fn runs with panic capture; a panicking index does not
// take down its worker or the sweep (the panic value is discarded, so fn
// should capture its own failure state before returning).
func (r *Runner) Shard(ctx context.Context, n int, fn func(ctx context.Context, i int)) {
	if ctx == nil {
		ctx = context.Background()
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case r.slots() <- struct{}{}:
				defer func() { <-r.sem }()
			case <-ctx.Done():
				return
			}
			defer func() { _ = recover() }()
			fn(ctx, i)
		}(i)
	}
	wg.Wait()
}

// Sweep returns the execution context for invoking one experiment function
// directly. Production callers go through Run/RunAll; tests and benchmarks
// use Sweep to call a specific experiment function by name.
func (r *Runner) Sweep(ctx context.Context, expID string) *Sweep {
	if ctx == nil {
		ctx = context.Background()
	}
	return &Sweep{ctx: ctx, r: r, exp: expID}
}

// Run executes one experiment through the runner's worker pool.
func (r *Runner) Run(ctx context.Context, e Experiment, cfg Config) (*Table, error) {
	return e.Run(r.Sweep(ctx, e.ID), cfg)
}

// SweepResult is one experiment's outcome in a RunAll sweep.
type SweepResult struct {
	Experiment Experiment
	Table      *Table
	Err        error
	Elapsed    time.Duration
}

// RunAll runs the given experiments concurrently over the shared worker
// pool and returns their results in input order. One experiment failing
// does not abort the others; its SweepResult carries the error.
func (r *Runner) RunAll(ctx context.Context, exps []Experiment, cfg Config) []SweepResult {
	out := make([]SweepResult, len(exps))
	var wg sync.WaitGroup
	for i, e := range exps {
		wg.Add(1)
		go func(i int, e Experiment) {
			defer wg.Done()
			start := time.Now()
			tb, err := r.Run(ctx, e, cfg)
			out[i] = SweepResult{Experiment: e, Table: tb, Err: err, Elapsed: time.Since(start)}
		}(i, e)
	}
	wg.Wait()
	return out
}

// Sweep carries one experiment invocation's context: the runner whose pool
// the cells share, the cancellation context, and the experiment ID that
// namespaces derived seeds and cache keys.
type Sweep struct {
	ctx context.Context
	r   *Runner
	exp string
}

// Cell is one unit of sharded work: the table rows a (experiment,
// workload, config) cell contributes, plus the numeric values it feeds
// into the experiment's aggregate row. Vals' meaning is per-experiment
// (e.g. Fig4 stores the normalized IPC, Fig13 one value per DRC size).
type Cell struct {
	Name string     `json:"name"`
	Rows [][]string `json:"rows"`
	Vals []float64  `json:"vals,omitempty"`
	Err  string     `json:"-"` // non-empty for failed cells; never cached
}

func (c Cell) failed() bool { return c.Err != "" }

// cellFn computes one cell. cfg arrives with the cell's derived seed and
// the workload list cleared; name is the cell's label (usually the
// workload name). fn must honor ctx at simulation-run granularity — the
// prepare/runMode helpers below do that.
type cellFn func(ctx context.Context, cfg Config, name string) (Cell, error)

// CellSeed derives the deterministic per-cell PRNG seed: an FNV-1a hash of
// the base seed, the experiment ID, and the cell name. Cells therefore
// never share randomness, and a cell's stream does not depend on which
// worker ran it or in what order. Never returns 0 (Config treats 0 as
// "use the default seed").
func CellSeed(base int64, expID, cell string) int64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(base))
	h.Write(b[:])
	h.Write([]byte(expID))
	h.Write([]byte{0})
	h.Write([]byte(cell))
	s := int64(h.Sum64())
	if s == 0 {
		s = 1
	}
	return s
}

// mapCells shards fn over names: each name becomes one cell with its own
// derived seed, run on the runner's worker pool. Results come back in the
// order of names. A cell that fails (error, panic, timeout) yields an
// error row instead of aborting the sweep.
func (s *Sweep) mapCells(cfg Config, names []string, fn cellFn) []Cell {
	cfg = cfg.withDefaults()
	cells := make([]Cell, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		ccfg := cfg
		ccfg.Workloads = nil
		ccfg.Seed = CellSeed(cfg.Seed, s.exp, name)
		key := cellKey(s.exp, name, ccfg)
		if c, ok := s.r.Cache.get(key); ok {
			cells[i] = c
			continue
		}
		wg.Add(1)
		go func(i int, name string, ccfg Config) {
			defer wg.Done()
			select {
			case s.r.slots() <- struct{}{}:
				defer func() { <-s.r.sem }()
			case <-s.ctx.Done():
				cells[i] = errCell(name, s.ctx.Err())
				return
			}
			cells[i] = s.runCell(ccfg, name, key, fn)
		}(i, name, ccfg)
	}
	wg.Wait()
	return cells
}

// runCell executes one cell with panic capture and the per-cell timeout.
func (s *Sweep) runCell(cfg Config, name, key string, fn cellFn) (c Cell) {
	defer func() {
		if r := recover(); r != nil {
			c = errCell(name, fmt.Errorf("panic: %v\n%s", r, debug.Stack()))
		}
	}()
	ctx := s.ctx
	if s.r.CellTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.r.CellTimeout)
		defer cancel()
	}
	cell, err := fn(ctx, cfg, name)
	if err != nil {
		return errCell(name, err)
	}
	cell.Name = name
	s.r.Cache.put(key, cell)
	return cell
}

// errCell converts a cell failure into a reported table row. Only the
// first line of the error lands in the table (panic values carry stacks);
// the full text stays in Err.
func errCell(name string, err error) Cell {
	msg := err.Error()
	if i := strings.IndexByte(msg, '\n'); i >= 0 {
		msg = msg[:i]
	}
	return Cell{
		Name: name,
		Rows: [][]string{{name, "error: " + msg}},
		Err:  err.Error(),
	}
}

// appendCells appends every cell's rows to the table, in cell order.
func appendCells(t *Table, cells []Cell) {
	for _, c := range cells {
		t.Rows = append(t.Rows, c.Rows...)
	}
}

// vals collects the i-th aggregate value of every successful cell that has
// one (cells may opt out of aggregation by publishing fewer values, as
// Fig14's cold-only apps do).
func vals(cells []Cell, i int) []float64 {
	var out []float64
	for _, c := range cells {
		if c.failed() || i >= len(c.Vals) {
			continue
		}
		out = append(out, c.Vals[i])
	}
	return out
}

// Cancellation-aware wrappers: cells call these instead of the raw
// Prepare/Run so a per-cell timeout or a sweep-wide cancel takes effect at
// the next simulation-run boundary. The Sweep methods prepare/prepareOpts/
// runMode (trace.go) add trace capture/replay on top when the runner
// carries a trace cache.

// runEmulated is App.RunEmulated with a cancellation check.
func runEmulated(ctx context.Context, app *App, maxInsts uint64) (emu.RunResult, error) {
	if err := ctx.Err(); err != nil {
		return emu.RunResult{}, err
	}
	return app.RunEmulated(maxInsts)
}
