package power

import (
	"testing"

	"vcfr/internal/cpu"
)

func TestAreaDRCIsTiny(t *testing.T) {
	m := DefaultModel()
	b := m.AnalyzeArea(cpu.DefaultConfig(cpu.ModeVCFR))
	if b.DRC <= 0 {
		t.Fatal("no DRC area")
	}
	pct := b.DRCOverheadPct()
	// The paper's claim: "a very small hardware overhead". A 128-entry DRC
	// against 64 KB of L1 + 512 KB of L2 must be well under 1%.
	if pct <= 0 || pct > 1 {
		t.Errorf("DRC area share = %.3f%%, want (0,1]%%", pct)
	}
	if b.Total <= b.L2 {
		t.Error("total area not accumulating")
	}
}

func TestAreaBaselineHasNoDRC(t *testing.T) {
	b := DefaultModel().AnalyzeArea(cpu.DefaultConfig(cpu.ModeBaseline))
	if b.DRC != 0 || b.DRCOverheadPct() != 0 {
		t.Errorf("baseline DRC area = %f", b.DRC)
	}
}

func TestAreaDRC2Counted(t *testing.T) {
	m := DefaultModel()
	cfg := cpu.DefaultConfig(cpu.ModeVCFR)
	without := m.AnalyzeArea(cfg)
	cfg.DRC2Entries = 1024
	with := m.AnalyzeArea(cfg)
	if with.DRC <= without.DRC {
		t.Error("DRC2 area not counted")
	}
}

func TestSRAMAreaMonotone(t *testing.T) {
	m := DefaultModel()
	if m.SRAMArea(0, 1) != 0 {
		t.Error("zero bytes has area")
	}
	if m.SRAMArea(1<<10, 1) >= m.SRAMArea(1<<15, 1) {
		t.Error("area not monotone in capacity")
	}
	if m.SRAMArea(1<<10, 4) <= m.SRAMArea(1<<10, 1) {
		t.Error("associativity tax missing")
	}
	if m.SRAMArea(1024, 0) != m.SRAMArea(1024, 1) {
		t.Error("assoc < 1 not clamped")
	}
}
