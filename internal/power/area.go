package power

import (
	"math"

	"vcfr/internal/cpu"
)

// Area modelling backs the paper's "very small hardware overhead" claim
// (abstract, Sec. IX): the DRC is a few hundred 9-byte entries next to tens
// of kilobytes of L1 and half a megabyte of L2. As with energy, the model is
// CACTI-flavoured and relative: SRAM array area grows slightly
// super-linearly with capacity (peripheral overhead amortizes), and
// associativity adds comparator/mux area.

// SRAMArea returns the area of an array in relative units (µm²-flavoured;
// only ratios are meaningful).
func (m *Model) SRAMArea(bytes, assoc int) float64 {
	if bytes <= 0 {
		return 0
	}
	if assoc < 1 {
		assoc = 1
	}
	cells := float64(bytes) * 8
	// Cell array + peripheral: area ≈ cells^1.02 with a fixed per-way tax.
	return math.Pow(cells, 1.02) * (1 + 0.04*float64(assoc-1))
}

// AreaBreakdown is the on-chip SRAM area of the machine's major structures.
type AreaBreakdown struct {
	IL1   float64
	DL1   float64
	L2    float64
	BPred float64
	BTB   float64
	DRC   float64
	Total float64
}

// DRCOverheadPct returns the DRC's share of total modelled SRAM area.
func (b AreaBreakdown) DRCOverheadPct() float64 {
	if b.Total <= 0 {
		return 0
	}
	return 100 * b.DRC / b.Total
}

// AnalyzeArea computes the structure areas for a machine configuration.
func (m *Model) AnalyzeArea(cfg cpu.Config) AreaBreakdown {
	var b AreaBreakdown
	b.IL1 = m.SRAMArea(cfg.Mem.IL1.Size, cfg.Mem.IL1.Assoc)
	b.DL1 = m.SRAMArea(cfg.Mem.DL1.Size, cfg.Mem.DL1.Assoc)
	b.L2 = m.SRAMArea(cfg.Mem.L2.Size, cfg.Mem.L2.Assoc)
	b.BPred = m.SRAMArea((1<<cfg.GshareBits)/4, 1)
	b.BTB = m.SRAMArea(cfg.BTBEntries*btbEntryBytes, cfg.BTBAssoc)
	if cfg.Mode == cpu.ModeVCFR {
		b.DRC = m.SRAMArea(cfg.DRCEntries*drcEntryBytes, cfg.DRCAssoc)
		if cfg.DRC2Entries > 0 {
			b.DRC += m.SRAMArea(cfg.DRC2Entries*drcEntryBytes, cfg.DRCAssoc)
		}
	}
	b.Total = b.IL1 + b.DL1 + b.L2 + b.BPred + b.BTB + b.DRC
	return b
}
