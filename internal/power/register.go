package power

import "vcfr/internal/stats"

// Register registers the dynamic-energy breakdown into the statistics spine
// under the power.* names (see internal/stats). Energies are derived
// quantities computed once per finished run, so they register as floats.
func (b *Breakdown) Register(r *stats.Registry) {
	sc := r.Scope("power")
	sc.Float("il1", "IL1 dynamic energy (pJ).", &b.IL1)
	sc.Float("dl1", "DL1 dynamic energy (pJ).", &b.DL1)
	sc.Float("l2", "L2 dynamic energy (pJ).", &b.L2)
	sc.Float("dram", "DRAM dynamic energy (pJ).", &b.DRAM)
	sc.Float("bpred", "Branch-predictor dynamic energy (pJ).", &b.BPred)
	sc.Float("drc", "De-Randomization Cache dynamic energy (pJ).", &b.DRC)
	sc.Float("core", "Core (decode + regfile + ALU) dynamic energy (pJ).", &b.Core)
	sc.Float("total", "Total dynamic energy (pJ).", &b.Total)
}
