package power

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/cpu"
	"vcfr/internal/ilr"
)

func TestSRAMAccessMonotonic(t *testing.T) {
	m := DefaultModel()
	small := m.SRAMAccess(1<<10, 1)
	l1 := m.SRAMAccess(32<<10, 2)
	l2 := m.SRAMAccess(512<<10, 8)
	if !(small < l1 && l1 < l2) {
		t.Errorf("energies not monotone: %f %f %f", small, l1, l2)
	}
	// Calibration band: L1 ~25 pJ, L2 ~120 pJ, 1 KB DRC ~3-6 pJ.
	if l1 < 15 || l1 > 40 {
		t.Errorf("L1 access energy %f pJ outside calibration band", l1)
	}
	if l2 < 80 || l2 > 200 {
		t.Errorf("L2 access energy %f pJ outside calibration band", l2)
	}
	if small < 2 || small > 8 {
		t.Errorf("1KB access energy %f pJ outside calibration band", small)
	}
	if m.SRAMAccess(0, 1) != 0 {
		t.Error("zero-size array has energy")
	}
	if m.SRAMAccess(1024, 0) != m.SRAMAccess(1024, 1) {
		t.Error("assoc<1 not clamped")
	}
	if m.SRAMAccess(1024, 4) <= m.SRAMAccess(1024, 1) {
		t.Error("associativity penalty missing")
	}
}

const loopSrc = `
.entry main
main:
	movi r8, 500
loop:
	cmpi r8, 0
	je done
	call work
	subi r8, 1
	jmp loop
done:
	movi r1, 0
	sys 0
.func work
work:
	movi r2, 0x80000
	load r3, [r2+4]
	addi r3, 1
	store [r2+4], r3
	ret
`

func runVCFR(t *testing.T, drcEntries int) (cpu.Result, cpu.Config) {
	t.Helper()
	img := asm.MustAssemble("p", loopSrc)
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	cfg := cpu.DefaultConfig(cpu.ModeVCFR)
	cfg.DRCEntries = drcEntries
	p, err := cpu.New(res.VCFR, cfg, res.Tables, res.RandRA)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	return out, cfg
}

func TestAnalyzeDRCOverheadInPaperBand(t *testing.T) {
	out, cfg := runVCFR(t, 128)
	b := DefaultModel().Analyze(out, cfg)
	if b.DRC <= 0 {
		t.Fatal("no DRC energy for a VCFR run")
	}
	pct := b.DRCOverheadPct()
	// Fig. 15: average 0.18%, per-app up to ~0.3%. Allow a generous band —
	// this tiny kernel is call-dense — but it must stay well under 2%.
	if pct <= 0 || pct > 2.0 {
		t.Errorf("DRC overhead = %.3f%%, want sub-2%% (paper: ~0.18%%)", pct)
	}
	if b.Total <= 0 || b.Core <= 0 || b.IL1 <= 0 {
		t.Errorf("breakdown has empty components: %+v", b)
	}
}

func TestAnalyzeBaselineHasNoDRCEnergy(t *testing.T) {
	img := asm.MustAssemble("p", loopSrc)
	cfg := cpu.DefaultConfig(cpu.ModeBaseline)
	p, err := cpu.New(img, cfg, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := p.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	b := DefaultModel().Analyze(out, cfg)
	if b.DRC != 0 {
		t.Errorf("baseline DRC energy = %f", b.DRC)
	}
	if b.DRCOverheadPct() != 0 {
		t.Error("baseline DRC overhead nonzero")
	}
}

func TestAnalyzeDRCEnergyScalesWithSize(t *testing.T) {
	small, cfgS := runVCFR(t, 64)
	big, cfgB := runVCFR(t, 512)
	m := DefaultModel()
	bs := m.Analyze(small, cfgS)
	bb := m.Analyze(big, cfgB)
	// Per-access energy grows with the array, so with comparable activity
	// the 512-entry DRC burns more energy per lookup.
	perLookupS := bs.DRC / float64(small.DRC.Lookups+small.DRC.Installs)
	perLookupB := bb.DRC / float64(big.DRC.Lookups+big.DRC.Installs)
	if perLookupB <= perLookupS {
		t.Errorf("per-lookup energy: 512-entry %.2f <= 64-entry %.2f",
			perLookupB, perLookupS)
	}
}

func TestBreakdownSumsToTotal(t *testing.T) {
	out, cfg := runVCFR(t, 128)
	b := DefaultModel().Analyze(out, cfg)
	sum := b.IL1 + b.DL1 + b.L2 + b.DRAM + b.BPred + b.DRC + b.Core
	if diff := sum - b.Total; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("components sum %.1f != total %.1f", sum, b.Total)
	}
}

func TestDRCOverheadPctDegenerate(t *testing.T) {
	if (Breakdown{}).DRCOverheadPct() != 0 {
		t.Error("empty breakdown overhead nonzero")
	}
}
