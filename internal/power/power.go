// Package power is the McPAT-substitute dynamic power model (Sec. VI-A,
// Fig. 15). It assigns each micro-architectural structure a per-access
// dynamic energy from a CACTI-style analytic formula (energy grows with the
// square root of capacity and mildly with associativity), multiplies by the
// activity counts the pipeline collected, and reports the DRC's share of
// total CPU dynamic energy — the paper's Fig. 15 metric.
//
// Absolute joules are not the point (the paper itself reports percentages);
// the relative sizes are calibrated against published 32 nm SRAM access
// energies so that the DRC — a few hundred 8-byte entries against 32 KB+
// caches — lands in the sub-percent regime the paper measures.
package power

import (
	"math"

	"vcfr/internal/cpu"
)

// Model holds the per-access energy coefficients, in picojoules.
type Model struct {
	// SRAMBase and SRAMScale parameterize the analytic array-access energy:
	// E(bytes, assoc) = SRAMBase + SRAMScale*sqrt(bytes)*(1+AssocPenalty*(assoc-1)).
	SRAMBase     float64
	SRAMScale    float64
	AssocPenalty float64

	DRAMAccess float64 // per DRAM access
	ALUOp      float64 // per executed instruction (exec + bypass)
	Decode     float64 // per decoded instruction
	Regfile    float64 // per instruction (read ports + write port)
}

// DefaultModel returns coefficients calibrated so that a 32 KB 2-way L1
// access costs ~25 pJ, a 512 KB 8-way L2 ~120 pJ, and a 1 KB direct-mapped
// DRC ~3 pJ — consistent with published CACTI 32 nm numbers.
func DefaultModel() *Model {
	return &Model{
		SRAMBase:     1.0,
		SRAMScale:    0.115,
		AssocPenalty: 0.15,
		DRAMAccess:   2000,
		ALUOp:        9.0,
		Decode:       4.0,
		Regfile:      3.5,
	}
}

// SRAMAccess returns the per-access energy (pJ) of an array of the given
// capacity and associativity.
func (m *Model) SRAMAccess(bytes, assoc int) float64 {
	if bytes <= 0 {
		return 0
	}
	if assoc < 1 {
		assoc = 1
	}
	return m.SRAMBase + m.SRAMScale*math.Sqrt(float64(bytes))*
		(1+m.AssocPenalty*float64(assoc-1))
}

// drcEntryBytes is the storage of one DRC entry: two 32-bit addresses plus
// tag bits, rounded to 9 bytes.
const drcEntryBytes = 9

// btbEntryBytes is one BTB entry: tag + two targets.
const btbEntryBytes = 12

// Breakdown is the per-component dynamic energy of one run, in picojoules.
type Breakdown struct {
	IL1   float64
	DL1   float64
	L2    float64
	DRAM  float64
	BPred float64
	DRC   float64
	Core  float64 // decode + regfile + ALU
	Total float64
}

// DRCOverheadPct returns the paper's Fig. 15 metric: DRC dynamic energy as a
// percentage of total CPU dynamic energy (DRAM excluded — Fig. 15 reports
// "percentages of DRC dynamic power over CPU dynamic power").
func (b Breakdown) DRCOverheadPct() float64 {
	cpuTotal := b.Total - b.DRAM
	if cpuTotal <= 0 {
		return 0
	}
	return 100 * b.DRC / cpuTotal
}

// Analyze converts a pipeline result plus its configuration into the energy
// breakdown.
func (m *Model) Analyze(res cpu.Result, cfg cpu.Config) Breakdown {
	var b Breakdown

	il1E := m.SRAMAccess(cfg.Mem.IL1.Size, cfg.Mem.IL1.Assoc)
	dl1E := m.SRAMAccess(cfg.Mem.DL1.Size, cfg.Mem.DL1.Assoc)
	l2E := m.SRAMAccess(cfg.Mem.L2.Size, cfg.Mem.L2.Assoc)
	b.IL1 = il1E * float64(res.IL1.Accesses+res.IL1.PrefetchIssued)
	b.DL1 = dl1E * float64(res.DL1.Accesses)
	b.L2 = l2E * float64(res.L2.Accesses)
	b.DRAM = m.DRAMAccess * float64(res.DRAM.Accesses)

	gshareBytes := (1 << cfg.GshareBits) / 4 // 2-bit counters
	bpredE := m.SRAMAccess(gshareBytes, 1)
	btbE := m.SRAMAccess(cfg.BTBEntries*btbEntryBytes, cfg.BTBAssoc)
	b.BPred = bpredE*float64(res.BPred.CondLookups) + btbE*float64(res.BPred.BTBLookups)

	if cfg.Mode == cpu.ModeVCFR {
		drcE := m.SRAMAccess(cfg.DRCEntries*drcEntryBytes, cfg.DRCAssoc)
		// Lookups plus installs each cycle the array once.
		b.DRC = drcE * float64(res.DRC.Lookups+res.DRC.Installs)
	}

	insts := float64(res.Stats.Instructions)
	b.Core = insts * (m.Decode + m.Regfile + m.ALUOp)

	b.Total = b.IL1 + b.DL1 + b.L2 + b.DRAM + b.BPred + b.DRC + b.Core
	return b
}
