package ilr

import (
	"fmt"
	"math/rand"

	"vcfr/internal/cfg"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// In-place code randomization — the Pappas et al. baseline the paper's
// introduction contrasts with complete ILR ("reordering instructions within
// the basic block boundaries without changing execution results"). It needs
// no hardware support, no tables, and no extra space: it permutes
// independent adjacent instructions inside each basic block. The price is
// partial coverage — gadgets that survive untouched remain usable, which is
// exactly the gap complete ILR (and VCFR) closes.

// InPlaceStats summarizes one in-place randomization pass.
type InPlaceStats struct {
	Blocks        int // basic blocks examined
	BlocksTouched int // blocks where at least one swap happened
	Swaps         int // adjacent-pair swaps performed
	Instructions  int
}

// resource bit positions for the dependence check: 16 registers, the flags,
// and a single conservative memory token.
const (
	resFlags = 16
	resMem   = 17
)

type resSet uint32

func (s *resSet) add(bit int)        { *s |= 1 << uint(bit) }
func (s resSet) meets(o resSet) bool { return s&o != 0 }

// readsWrites computes the (reads, writes) resource sets of an instruction.
func readsWrites(in isa.Inst) (reads, writes resSet) {
	rd, rs, rt := int(in.Rd), int(in.Rs), int(in.Rt)
	switch in.Op {
	case isa.OpNop:
	case isa.OpMovRR:
		reads.add(rs)
		writes.add(rd)
	case isa.OpMovRI:
		writes.add(rd)
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpMod:
		reads.add(rd)
		reads.add(rs)
		writes.add(rd)
		writes.add(resFlags)
	case isa.OpNeg, isa.OpNot:
		reads.add(rd)
		writes.add(rd)
		writes.add(resFlags)
	case isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpSarI:
		reads.add(rd)
		writes.add(rd)
		writes.add(resFlags)
	case isa.OpCmp, isa.OpTest:
		reads.add(rd)
		reads.add(rs)
		writes.add(resFlags)
	case isa.OpCmpI:
		reads.add(rd)
		writes.add(resFlags)
	case isa.OpLea:
		reads.add(rs)
		writes.add(rd)
	case isa.OpLoad, isa.OpLoadB:
		reads.add(rs)
		reads.add(resMem)
		writes.add(rd)
	case isa.OpLoadR:
		reads.add(rs)
		reads.add(rt)
		reads.add(resMem)
		writes.add(rd)
	case isa.OpStore, isa.OpStoreB:
		reads.add(rd)
		reads.add(rs)
		writes.add(resMem)
	case isa.OpStoreR:
		reads.add(rd)
		reads.add(rs)
		reads.add(rt)
		writes.add(resMem)
	default:
		// Control transfers, push/pop (sp discipline), sys: treated as
		// barriers by canSwap, so the sets do not matter.
	}
	return reads, writes
}

// swappable reports whether the instruction may participate in reordering at
// all. Control flow, stack ops, and syscalls are barriers.
func swappable(in isa.Inst) bool {
	if in.Class() != isa.ClassSeq {
		return false
	}
	switch in.Op {
	case isa.OpPush, isa.OpPop, isa.OpSys:
		return false
	}
	return true
}

// canSwap reports whether adjacent instructions a;b can execute as b;a.
func canSwap(a, b isa.Inst) bool {
	if !swappable(a) || !swappable(b) {
		return false
	}
	ar, aw := readsWrites(a)
	br, bw := readsWrites(b)
	return !aw.meets(br) && // RAW
		!ar.meets(bw) && // WAR
		!aw.meets(bw) // WAW
}

// InPlace returns a copy of img with instructions randomly reordered inside
// basic-block boundaries (dependence-preserving), plus statistics. The
// output runs natively — no tables, no special hardware.
func InPlace(img *program.Image, seed int64) (*program.Image, InPlaceStats, error) {
	g, err := cfg.Build(img)
	if err != nil {
		return nil, InPlaceStats{}, fmt.Errorf("ilr: in-place: %w", err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := img.Clone()
	out.Name = img.Name + ".inplace"
	text := out.Text()

	stats := InPlaceStats{Instructions: len(g.Insts)}
	for _, start := range g.Order {
		b := g.Blocks[start]
		stats.Blocks++
		insts := append([]isa.Inst(nil), b.Insts...)
		swapsHere := 0
		// Several random passes of adjacent-pair swaps approximate a random
		// linear extension of the block's dependence order.
		for pass := 0; pass < 4; pass++ {
			for _, i := range rng.Perm(len(insts) - 1) {
				if canSwap(insts[i], insts[i+1]) && rng.Intn(2) == 1 {
					insts[i], insts[i+1] = insts[i+1], insts[i]
					swapsHere++
				}
			}
		}
		if swapsHere == 0 {
			continue
		}
		stats.BlocksTouched++
		stats.Swaps += swapsHere
		// Re-emit the block's bytes at its original extent; the block's
		// total size is unchanged (same instructions, new order), and
		// nothing targets mid-block addresses (leaders are block starts).
		buf := make([]byte, 0, int(b.End()-b.Start))
		for _, in := range insts {
			buf = isa.Encode(buf, in)
		}
		if uint32(len(buf)) != b.End()-b.Start {
			return nil, stats, fmt.Errorf("ilr: in-place block %#x changed size", b.Start)
		}
		copy(text.Data[b.Start-text.Addr:], buf)
	}
	return out, stats, nil
}
