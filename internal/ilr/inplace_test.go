package ilr

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

func TestInPlacePreservesSemantics(t *testing.T) {
	for _, tp := range equivalencePrograms {
		t.Run(tp.name, func(t *testing.T) {
			img := asm.MustAssemble(tp.name, tp.src)
			want, err := emu.Run(img, emu.Config{Mode: emu.ModeNative, Input: []byte(tp.input)})
			if err != nil {
				t.Fatal(err)
			}
			rand, stats, err := InPlace(img, 9)
			if err != nil {
				t.Fatalf("InPlace: %v", err)
			}
			got, err := emu.Run(rand, emu.Config{Mode: emu.ModeNative, Input: []byte(tp.input)})
			if err != nil {
				t.Fatalf("in-place run: %v", err)
			}
			if string(got.Out) != string(want.Out) {
				t.Errorf("in-place output %q != native %q (stats %+v)",
					got.Out, want.Out, stats)
			}
		})
	}
}

func TestInPlaceActuallyReorders(t *testing.T) {
	// A block full of independent movi instructions gives the permuter
	// maximal freedom.
	src := ".entry main\nmain:\n"
	for r := 0; r < 8; r++ {
		src += "\tmovi r" + string(rune('0'+r)) + ", " + string(rune('1'+r)) + "\n"
	}
	src += "\thalt\n"
	img := asm.MustAssemble("re", src)
	rand, stats, err := InPlace(img, 3)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Swaps == 0 || stats.BlocksTouched == 0 {
		t.Fatalf("no reordering happened: %+v", stats)
	}
	if string(rand.Text().Data) == string(img.Text().Data) {
		t.Error("text bytes unchanged despite swaps")
	}
	if len(rand.Text().Data) != len(img.Text().Data) {
		t.Error("in-place changed the text size")
	}
}

func TestInPlaceRespectsDependences(t *testing.T) {
	// cmp must stay the last flag writer before the branch; the dependent
	// chain r1 -> r2 -> r3 must stay ordered.
	img := asm.MustAssemble("dep", `
.entry main
main:
	movi r1, 5
	mov r2, r1
	add r3, r2
	addi r3, 1
	cmpi r3, 6
	jne bad
	movi r1, 'Y'
	sys 1
	movi r1, 0
	sys 0
bad:
	movi r1, 'N'
	sys 1
	movi r1, 1
	sys 0
`)
	for seed := int64(0); seed < 20; seed++ {
		rand, _, err := InPlace(img, seed)
		if err != nil {
			t.Fatal(err)
		}
		out, err := emu.Run(rand, emu.Config{Mode: emu.ModeNative})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(out.Out) != "Y" {
			t.Fatalf("seed %d: dependence violated, output %q", seed, out.Out)
		}
	}
}

func TestCanSwapRules(t *testing.T) {
	mk := func(op isa.Op, rd, rs isa.Reg) isa.Inst { return isa.Inst{Op: op, Rd: rd, Rs: rs} }
	tests := []struct {
		name string
		a, b isa.Inst
		want bool
	}{
		{"independent", mk(isa.OpAdd, 1, 2), mk(isa.OpAdd, 3, 4), false /* both write flags: WAW */},
		{"independent movs", mk(isa.OpMovRR, 1, 2), mk(isa.OpMovRR, 3, 4), true},
		{"raw", mk(isa.OpMovRR, 1, 2), mk(isa.OpMovRR, 3, 1), false},
		{"war", mk(isa.OpMovRR, 3, 1), mk(isa.OpMovRR, 1, 2), false},
		{"waw", mk(isa.OpMovRR, 1, 2), mk(isa.OpMovRR, 1, 4), false},
		{"store-load", mk(isa.OpStore, 1, 2), mk(isa.OpLoad, 3, 4), false},
		{"load-load", mk(isa.OpLoad, 1, 2), mk(isa.OpLoad, 3, 4), true},
		{"control barrier", isa.Inst{Op: isa.OpJmp}, mk(isa.OpMovRR, 1, 2), false},
		{"push barrier", isa.Inst{Op: isa.OpPush, Rd: 1}, mk(isa.OpMovRR, 2, 3), false},
		{"sys barrier", isa.Inst{Op: isa.OpSys}, mk(isa.OpMovRR, 2, 3), false},
	}
	for _, tt := range tests {
		if got := canSwap(tt.a, tt.b); got != tt.want {
			t.Errorf("%s: canSwap = %v, want %v", tt.name, got, tt.want)
		}
	}
}
