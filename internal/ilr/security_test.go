package ilr

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// TestQuickAttackerTargetsDefaultDeny property-tests the security core: for
// arbitrary attacker-chosen control-transfer targets, the tables either
// translate them (they are legitimate randomized addresses), admit them as
// recorded failover entries, or prohibit them. There is no fourth outcome —
// in particular, un-randomized addresses that are not explicit failover
// entries (including every misaligned byte offset) are always prohibited.
func TestQuickAttackerTargetsDefaultDeny(t *testing.T) {
	img := asm.MustAssemble("p", equivalencePrograms[1].src)
	res, err := Rewrite(img, Options{Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables
	f := func(target uint32) bool {
		if _, isRand := tbl.ToOrig(target); isRand {
			return true // legitimate randomized-space address
		}
		if !tbl.Prohibited(target) {
			// Allowed failover targets must be original instruction starts.
			_, isInst := res.Graph.InstAt[target]
			return isInst
		}
		return true // prohibited: the machine faults
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

// TestRandomIndirectTargetsFaultAtRuntime drives the same property through
// the actual machine: an attacker-controlled register-indirect jump to a
// random address either faults with a control-flow violation, faults on a
// garbage fetch (when it lands on a randomized address whose bytes are not
// a valid instruction boundary)... or — for the rare legitimate targets —
// keeps executing. It must never silently corrupt the run.
func TestRandomIndirectTargetsFaultAtRuntime(t *testing.T) {
	img := asm.MustAssemble("p", equivalencePrograms[1].src)
	res, err := Rewrite(img, Options{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var violations, faults, survived int
	for i := 0; i < 300; i++ {
		m, err := emu.NewMachine(res.VCFR, emu.Config{
			Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA,
			MaxSteps: 50_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Execute a few instructions, then hijack: an indirect jump to a
		// random 32-bit target, as an exploited vulnerability would.
		for s := 0; s < 3; s++ {
			if _, err := m.Step(); err != nil {
				t.Fatal(err)
			}
		}
		target := rng.Uint32()
		m.State().R[7] = target
		// Overwrite the next instruction with "jmpr r7" so the machine's own
		// redirect logic (tag check, failover, de-randomization) adjudicates
		// the hijacked target.
		code := isa.Encode(nil, isa.Inst{Op: isa.OpJmpR, Rd: 7})
		m.Mem().WriteBytes(m.PC(), code)
		_, err = m.Run()
		switch {
		case errors.Is(err, emu.ErrControlViolation):
			violations++
		case err != nil:
			faults++ // garbage fetch / bad decode inside the randomized space
		default:
			survived++
		}
	}
	if violations == 0 {
		t.Error("no hijack produced a control-flow violation; prohibition not firing")
	}
	// Almost all random targets must be stopped. A tiny survivor count is
	// possible (a random value may alias a legitimate randomized address).
	if survived > 3 {
		t.Errorf("%d of 300 random hijacks survived (violations=%d faults=%d)",
			survived, violations, faults)
	}
}
