package ilr

import "vcfr/internal/stats"

// Register registers the rewriter's statistics into the statistics spine
// under the ilr.* names (see internal/stats). These are end-of-rewrite
// facts, not run-time counters, so they register as gauges.
func (s *Stats) Register(r *stats.Registry) {
	sc := r.Scope("ilr")
	sc.Int("instructions", "Instructions randomized.", &s.Instructions)
	sc.Int("relocs.code", "In-code address fields retargeted.", &s.CodeRelocs)
	sc.Int("relocs.data", "Data words (jump tables, pointers) retargeted.", &s.DataRelocs)
	sc.Int("calls.randomized", "Call sites with randomized return addresses.", &s.CallsRandomized)
	sc.Int("calls.plain", "Call sites left un-randomized.", &s.CallsPlain)
	sc.Int("scan_only", "Unpatchable computed-target addresses (failover).", &s.ScanOnly)
	sc.Float("entropy_bits", "Randomization entropy in bits.", &s.EntropyBits)
	sc.Int("table_bytes", "Size of the rand/derand tables in bytes.", &s.TableBytes)
	sc.Int("software_growth", "Code growth (bytes) the software return-address option would add.", &s.SoftwareGrowth)
}
