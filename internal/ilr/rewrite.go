package ilr

import (
	"fmt"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// buildVCFRImage clones the original image and retargets every relocated
// code-address field into the randomized space: direct-transfer target
// fields, movi code constants, and data words (jump tables, function-pointer
// tables). Storage layout is untouched — that is the point of VCFR.
func (res *Result) buildVCFRImage() error {
	img := res.Orig.Clone()
	img.Name = res.Orig.Name + ".vcfr"
	for _, r := range img.Relocs {
		v, err := img.ReadWord(r.Addr)
		if err != nil {
			return fmt.Errorf("ilr: reloc at %#x: %w", r.Addr, err)
		}
		rnd, ok := res.Tables.ToRand(v)
		if !ok {
			// A reloc whose value is not an instruction start (e.g. a word
			// that merely looked relocatable) stays as-is.
			continue
		}
		if err := img.WriteWord(r.Addr, rnd); err != nil {
			return fmt.Errorf("ilr: reloc at %#x: %w", r.Addr, err)
		}
		if r.InCode {
			res.Stats.CodeRelocs++
		} else {
			res.Stats.DataRelocs++
		}
	}
	res.VCFR = img
	return nil
}

// buildScatteredImage materializes the physically randomized layout: the
// instruction originally at U is stored at Tables.ToRand(U). Instruction
// bytes are copied verbatim (the scattered binary is executed logically in
// the original space through the location map, so embedded direct targets
// keep their original values). This is the image a naive hardware ILR
// fetches from and the one the gadget scanner probes.
func (res *Result) buildScatteredImage() error {
	lo, hi := res.Tables.RandRange()
	if hi <= lo {
		return fmt.Errorf("ilr: empty randomized range")
	}
	// hi is one past the highest assigned address; the instruction there may
	// extend up to MaxLength-1 bytes further.
	buf := make([]byte, hi-res.Opts.RandBase+isa.MaxLength-1)
	var enc [isa.MaxLength]byte
	for _, in := range res.Graph.Insts {
		raddr, ok := res.Tables.ToRand(in.Addr)
		if !ok {
			return fmt.Errorf("ilr: instruction at %#x has no randomized address", in.Addr)
		}
		off := raddr - res.Opts.RandBase
		n := copy(buf[off:], isa.Encode(enc[:0], in))
		if n != in.Len() {
			return fmt.Errorf("ilr: truncated copy at randomized %#x", raddr)
		}
	}

	img := &program.Image{
		Name:  res.Orig.Name + ".scattered",
		Entry: mustRand(res.Tables, res.Orig.Entry),
		Segments: []program.Segment{{
			Name: program.SegText,
			Addr: res.Opts.RandBase,
			Data: buf,
			Perm: program.PermR | program.PermX,
		}},
	}
	// Symbols move with their instructions (diagnostics only); data symbols
	// stay. Symbols pointing at padding between instructions are dropped.
	for _, s := range res.Orig.Symbols {
		if r, ok := res.Tables.ToRand(s.Addr); ok {
			img.Symbols = append(img.Symbols, program.Symbol{
				Name: s.Name, Addr: r, Size: s.Size, Func: s.Func,
			})
		} else if seg := res.Orig.SegAt(s.Addr); seg != nil && seg.Perm&program.PermX == 0 {
			img.Symbols = append(img.Symbols, s)
		}
	}
	for _, seg := range res.Orig.Segments {
		if seg.Perm&program.PermX != 0 {
			continue
		}
		img.Segments = append(img.Segments, program.Segment{
			Name: seg.Name,
			Addr: seg.Addr,
			Data: append([]byte(nil), seg.Data...),
			Perm: seg.Perm,
		})
	}
	res.Scattered = img
	return nil
}

func mustRand(t *Tables, orig uint32) uint32 {
	r, ok := t.ToRand(orig)
	if !ok {
		panic(fmt.Sprintf("ilr: no randomized address for %#x", orig))
	}
	return r
}

// softwareGrowthPerSite is the code growth of expanding "call target" (5
// bytes) into "movi rX, randRA; push rX; jmp target" (6+2+5 bytes) under the
// software return-address option.
const softwareGrowthPerSite = 8

// buildRandRA decides, per call site, whether the pushed return address is
// randomized, honoring the configured RetRandMode. Call sites that keep
// their original return address get their fall-through address un-prohibited
// (the ret will legitimately transfer control to the un-randomized address,
// exactly the failover path of Sec. IV-A).
func (res *Result) buildRandRA() {
	res.RandRA = make(map[uint32]uint32)
	safe := res.Graph.SafeReturnSites()
	for _, in := range res.Graph.Insts {
		var randomize bool
		switch in.Class() {
		case isa.ClassCall:
			switch res.Opts.RetRand {
			case RetRandArch:
				randomize = true
			case RetRandSoftware:
				randomize = safe[in.Addr]
			}
		case isa.ClassCallR:
			// Indirect-call return addresses are never randomized (paper,
			// Sec. IV-A).
			randomize = false
		default:
			continue
		}
		next := in.NextAddr()
		if randomize {
			if r, ok := res.Tables.ToRand(next); ok {
				res.RandRA[next] = r
				res.Stats.CallsRandomized++
				if res.Opts.RetRand == RetRandSoftware {
					res.Stats.SoftwareGrowth += softwareGrowthPerSite
				}
				// A callee that reads its return address explicitly may
				// "return" through a plain jmpr of the auto-de-randomized
				// value (Fig. 10). That jump lands on the un-randomized
				// fall-through address, so the address must stay a legal
				// failover target even though the RA itself is randomized.
				if !safe[in.Addr] {
					res.Tables.allow(next)
				}
				continue
			}
		}
		res.Stats.CallsPlain++
		res.Tables.allow(next)
	}
}

// Rerandomize applies a fresh randomization of the same original image with
// a new seed — the paper's periodic re-randomization defense against table
// leakage (Sec. V-C).
func (res *Result) Rerandomize(seed int64) (*Result, error) {
	opts := res.Opts
	opts.Seed = seed
	return Rewrite(res.Orig, opts)
}
