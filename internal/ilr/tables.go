package ilr

import (
	"sort"
)

// Tables are the randomization/de-randomization tables of Sec. IV-B: the
// bidirectional mapping between original and randomized instruction
// addresses, plus the randomized-tag (prohibition) bits. At run time the
// kernel stores them in pages invisible to user-space instructions; the
// processor's DRC caches entries, falling back to the L2-resident table on
// a miss.
//
// Tables implements emu.Translator.
//
// The prohibition model is default-deny: an address that is neither a
// randomized-space address nor an explicitly allowed un-randomized failover
// target is prohibited as a control-transfer destination. This is strictly
// stronger than tagging only instruction starts — a control transfer into
// the middle of an instruction encoding (the classic misaligned-gadget
// trick) has no table entry and therefore faults.
type Tables struct {
	o2r     map[uint32]uint32
	r2o     map[uint32]uint32
	allowed map[uint32]bool // un-randomized addresses reachable as failover targets
}

func newTables(n int) *Tables {
	return &Tables{
		o2r:     make(map[uint32]uint32, n),
		r2o:     make(map[uint32]uint32, n),
		allowed: make(map[uint32]bool),
	}
}

func (t *Tables) add(orig, rand uint32) {
	t.o2r[orig] = rand
	t.r2o[rand] = orig
}

// allow marks orig as a legal un-randomized control-transfer target (the
// failover entries of Sec. IV-A).
func (t *Tables) allow(orig uint32) { t.allowed[orig] = true }

// ToOrig de-randomizes a randomized instruction address.
func (t *Tables) ToOrig(rand uint32) (uint32, bool) {
	v, ok := t.r2o[rand]
	return v, ok
}

// ToRand randomizes an original instruction address.
func (t *Tables) ToRand(orig uint32) (uint32, bool) {
	v, ok := t.o2r[orig]
	return v, ok
}

// Prohibited reports whether control may not transfer to the un-randomized
// address orig. Only explicitly allowed failover targets pass.
func (t *Tables) Prohibited(orig uint32) bool { return !t.allowed[orig] }

// AllowedUnrand returns the number of allowed failover targets.
func (t *Tables) AllowedUnrand() int { return len(t.allowed) }

// Len returns the number of address pairs.
func (t *Tables) Len() int { return len(t.o2r) }

// OrigAddrs returns every original instruction address, ascending. The
// experiment harness uses it to enumerate the instruction space.
func (t *Tables) OrigAddrs() []uint32 {
	out := make([]uint32, 0, len(t.o2r))
	for a := range t.o2r {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// RandRange returns the smallest and one-past-largest randomized addresses.
func (t *Tables) RandRange() (lo, hi uint32) {
	first := true
	for r := range t.r2o {
		if first {
			lo, hi = r, r+1
			first = false
			continue
		}
		if r < lo {
			lo = r
		}
		if r+1 > hi {
			hi = r + 1
		}
	}
	return lo, hi
}
