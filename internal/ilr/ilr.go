// Package ilr implements the randomization software of the paper (Sec. IV-A):
// a static binary rewriter that applies complete, per-instruction
// instruction-location randomization to a VX image.
//
// One Rewrite produces every artifact the evaluation needs:
//
//   - The randomization/de-randomization tables (Tables), mapping every
//     instruction between its original and randomized address, with the
//     per-address "randomized tag" that prohibits control transfers to the
//     un-randomized addresses of safely randomized instructions.
//   - A VCFR image: the original storage layout with every relocated
//     code-address field (direct-transfer targets, code constants, jump
//     tables) retargeted into the randomized space. A VCFR processor
//     executes this image natively; on-chip caches see the original layout.
//   - A scattered image: instruction bytes physically moved to their
//     randomized addresses. This is what a naive hardware ILR executes and
//     what a software ILR VM interprets, and it is the artifact the gadget
//     scanner probes to measure the reduced attack surface.
//   - The safe-return-site map driving return-address randomization, in
//     software (rewrite-based) or architectural (DRC-based) mode.
package ilr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"vcfr/internal/cfg"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// RetRandMode selects how return addresses are randomized (Sec. IV-C).
type RetRandMode int

// Return-address randomization modes.
const (
	// RetRandNone leaves every return address un-randomized.
	RetRandNone RetRandMode = iota + 1

	// RetRandSoftware randomizes only provably safe call sites — the
	// rewrite-based option, which cannot tolerate callees that read their
	// return address directly.
	RetRandSoftware

	// RetRandArch randomizes every direct call site: the architectural
	// stack-bitmap support de-randomizes explicit reads of return-address
	// slots, so PIC idioms and exception unwinding keep working. Indirect
	// call sites stay un-randomized, as in the paper.
	RetRandArch
)

// String names the mode.
func (m RetRandMode) String() string {
	switch m {
	case RetRandNone:
		return "none"
	case RetRandSoftware:
		return "software"
	case RetRandArch:
		return "arch"
	default:
		return fmt.Sprintf("retrand(%d)", int(m))
	}
}

// DefaultRandBase is where the randomized instruction space begins. It is
// far from the text, data, and stack ranges so that randomized and original
// addresses never collide.
const DefaultRandBase = 0x4000_0000

// slotSize is the allocation granule of the randomized space. Eight bytes
// holds the longest encoding (6) at a jitter of up to 2, so instructions
// land at byte-granular addresses without ever overlapping.
const slotSize = 8

// Options configures a rewrite.
type Options struct {
	// Seed drives all randomization; equal seeds give identical layouts.
	Seed int64

	// Spread multiplies the number of slots beyond the instruction count,
	// controlling how sparsely instructions scatter (entropy, and cache
	// behaviour of the scattered image). Default 16.
	Spread int

	// RandBase overrides the base of the randomized space. Default
	// DefaultRandBase.
	RandBase uint32

	// PageConfined keeps each instruction's randomized address within its
	// original 4 KiB page (Sec. IV-D's iTLB-friendly variant). The
	// randomized space mirrors the text pages at RandBase.
	PageConfined bool

	// RetRand selects return-address randomization. Default RetRandArch.
	RetRand RetRandMode
}

func (o Options) withDefaults() Options {
	if o.Spread <= 0 {
		o.Spread = 16
	}
	if o.RandBase == 0 {
		o.RandBase = DefaultRandBase
	}
	if o.RetRand == 0 {
		o.RetRand = RetRandArch
	}
	return o
}

// Stats summarizes one rewrite.
type Stats struct {
	Instructions    int // instructions randomized
	CodeRelocs      int // in-code address fields retargeted
	DataRelocs      int // data words (jump tables, pointers) retargeted
	CallsRandomized int // call sites with randomized return addresses
	CallsPlain      int // call sites left un-randomized
	ScanOnly        int // unpatchable computed-target addresses (failover)
	EntropyBits     float64
	TableBytes      int // size of the rand/derand tables (8 bytes per entry pair)
	// SoftwareGrowth is the code growth (bytes) the software return-address
	// option would add by expanding call into push+jmp at every randomized
	// site. The architectural option keeps it at zero.
	SoftwareGrowth int
}

// Result carries every artifact of one randomization pass.
type Result struct {
	Orig      *program.Image
	VCFR      *program.Image
	Scattered *program.Image
	Tables    *Tables
	// RandRA maps the original return address of each randomized call site
	// to its randomized value.
	RandRA map[uint32]uint32
	Graph  *cfg.Graph
	Opts   Options
	Stats  Stats
}

// Rewrite randomizes img. The input image is not modified.
func Rewrite(img *program.Image, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("ilr: input image: %w", err)
	}
	g, err := cfg.Build(img)
	if err != nil {
		return nil, fmt.Errorf("ilr: %w", err)
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	tables, entropy, err := assignAddresses(g, opts, rng)
	if err != nil {
		return nil, err
	}

	res := &Result{
		Orig:   img,
		Tables: tables,
		Graph:  g,
		Opts:   opts,
	}
	res.Stats.Instructions = len(g.Insts)
	res.Stats.EntropyBits = entropy
	res.Stats.ScanOnly = len(g.ScanOnlyCandidates)
	res.Stats.TableBytes = tables.Len() * 8

	if err := res.buildVCFRImage(); err != nil {
		return nil, err
	}
	if err := res.buildScatteredImage(); err != nil {
		return nil, err
	}
	res.buildRandRA()
	return res, nil
}

// assignAddresses gives every instruction a distinct randomized address and
// builds the tables, including the randomized-tag (prohibition) set.
func assignAddresses(g *cfg.Graph, opts Options, rng *rand.Rand) (*Tables, float64, error) {
	n := len(g.Insts)
	t := newTables(n)

	if opts.PageConfined {
		if err := assignPageConfined(g, opts, rng, t); err != nil {
			return nil, 0, err
		}
	} else {
		slots := n * opts.Spread
		perm := rng.Perm(slots)
		for i, in := range g.Insts {
			jitter := uint32(rng.Intn(slotSize - isa.MaxLength + 1))
			raddr := opts.RandBase + uint32(perm[i])*slotSize + jitter
			t.add(in.Addr, raddr)
		}
	}

	// Failover entries (Sec. IV-A): addresses the analysis could not
	// guarantee free of computed references (scan-only candidates) remain
	// legal un-randomized entry points; every other un-randomized address is
	// prohibited by the default-deny tables.
	for a := range g.ScanOnlyCandidates {
		t.allow(a)
	}

	// Entropy of the placement, in bits per instruction: each instruction
	// independently lands in one of (slots * jitterRange) byte positions.
	entropy := entropyBits(n, opts)
	return t, entropy, nil
}

// assignPageConfined scatters instructions within their original 4 KiB page,
// mirrored at RandBase: each page's instructions are laid out in a random
// order with the page's free bytes distributed as random gaps. A page whose
// instructions total more than the page (possible when an original
// instruction straddles the boundary) spills its tail into the adjacent
// page's layout, so the placement stays within one page of the original —
// the property the iTLB cares about (Sec. IV-D's variant).
func assignPageConfined(g *cfg.Graph, opts Options, rng *rand.Rand, t *Tables) error {
	const pageSize = 4096
	byPage := make(map[uint32][]isa.Inst)
	var pages []uint32
	for _, in := range g.Insts {
		page := in.Addr &^ uint32(pageSize-1)
		if _, ok := byPage[page]; !ok {
			pages = append(pages, page)
		}
		byPage[page] = append(byPage[page], in)
	}
	// Deterministic page order (map iteration would break seed stability).
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	textPage := g.Img.Text().Addr &^ uint32(pageSize-1)

	var carry []isa.Inst // overflow from the previous page
	place := func(page uint32, insts []isa.Inst) []isa.Inst {
		total := 0
		for _, in := range insts {
			total += in.Len()
		}
		free := pageSize - total
		order := rng.Perm(len(insts))
		cursor := uint32(0)
		remainingSlots := len(insts) + 1
		var overflow []isa.Inst
		for _, idx := range order {
			in := insts[idx]
			if cursor+uint32(in.Len()) > pageSize {
				overflow = append(overflow, in)
				continue
			}
			gap := 0
			if free > 0 {
				gap = rng.Intn(free/remainingSlots + 1)
				if cursor+uint32(gap+in.Len()) > pageSize {
					gap = int(pageSize - cursor - uint32(in.Len()))
				}
			}
			free -= gap
			remainingSlots--
			cursor += uint32(gap)
			t.add(in.Addr, opts.RandBase+(page-textPage)+cursor)
			cursor += uint32(in.Len())
		}
		return overflow
	}
	for _, page := range pages {
		carry = place(page, append(carry, byPage[page]...))
	}
	if len(carry) > 0 {
		// Whatever still spills lands right after the last page's mirror.
		last := pages[len(pages)-1]
		carry = place(last+pageSize, carry)
		if len(carry) > 0 {
			return fmt.Errorf("ilr: page-confined layout could not place %d instructions", len(carry))
		}
	}
	return nil
}

// entropyBits is the per-instruction placement entropy: log2 of the number
// of byte positions an instruction can land on.
func entropyBits(n int, opts Options) float64 {
	positions := float64(n*opts.Spread) * float64(slotSize-isa.MaxLength+1)
	if opts.PageConfined {
		positions = 4096 / slotSize * float64(slotSize-isa.MaxLength+1)
	}
	return math.Log2(positions)
}
