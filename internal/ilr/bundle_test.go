package ilr

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
)

func TestBundleRoundTrip(t *testing.T) {
	img := asm.MustAssemble("b", equivalencePrograms[1].src)
	res, err := Rewrite(img, Options{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	data, err := res.Marshal()
	if err != nil {
		t.Fatalf("Marshal: %v", err)
	}
	got, err := UnmarshalBundle(data)
	if err != nil {
		t.Fatalf("UnmarshalBundle: %v", err)
	}

	// Tables identical.
	if got.Tables.Len() != res.Tables.Len() {
		t.Fatalf("table len %d != %d", got.Tables.Len(), res.Tables.Len())
	}
	for _, orig := range res.Tables.OrigAddrs() {
		a, _ := res.Tables.ToRand(orig)
		b, ok := got.Tables.ToRand(orig)
		if !ok || a != b {
			t.Fatalf("mapping diverged at %#x", orig)
		}
		if res.Tables.Prohibited(orig) != got.Tables.Prohibited(orig) {
			t.Fatalf("prohibition diverged at %#x", orig)
		}
	}
	if len(got.RandRA) != len(res.RandRA) {
		t.Error("RandRA lost")
	}
	if got.Opts.Seed != 77 {
		t.Errorf("opts lost: %+v", got.Opts)
	}
	if got.Stats.Instructions != res.Stats.Instructions {
		t.Error("stats lost")
	}
	if got.Graph == nil || len(got.Graph.Insts) != len(res.Graph.Insts) {
		t.Error("graph not rebuilt")
	}

	// The reloaded bundle still executes correctly under VCFR.
	out, err := emu.Run(got.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: got.Tables, RandRA: got.RandRA,
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Out) != "5040" {
		t.Errorf("reloaded bundle output = %q", out.Out)
	}
}

func TestUnmarshalBundleRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalBundle([]byte("nonsense")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := UnmarshalBundle(nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestUnmarshalBundleRejectsIncomplete(t *testing.T) {
	img := asm.MustAssemble("b", ".entry main\nmain: halt")
	res, err := Rewrite(img, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res.VCFR = nil
	data, err := res.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalBundle(data); err == nil {
		t.Error("incomplete bundle accepted")
	}
}
