package ilr

import (
	"fmt"
	"strings"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/program"
)

// equivalencePrograms is a battery of programs exercising every control-flow
// feature the rewriter must preserve. Each must produce identical output
// under native, scattered (naive ILR), emulated ILR, and VCFR execution.
var equivalencePrograms = []struct {
	name, src, input, want string
}{
	{
		name: "fib",
		src: `
.entry main
main:
	movi r1, 0
	movi r2, 1
	movi r3, 15
loop:
	cmpi r3, 0
	je done
	mov r4, r2
	add r2, r1
	mov r1, r4
	subi r3, 1
	jmp loop
done:
	sys 3
	movi r1, 0
	sys 0
`,
		want: "610",
	},
	{
		name: "recursion",
		src: `
.entry main
main:
	movi r1, 7
	call fact
	mov r1, r0
	sys 3
	movi r1, 0
	sys 0
.func fact
fact:
	cmpi r1, 1
	jg rec
	movi r0, 1
	ret
rec:
	push r1
	subi r1, 1
	call fact
	pop r1
	mul r0, r1
	ret
`,
		want: "5040",
	},
	{
		name: "jumptable",
		src: `
.entry main
main:
	movi r7, 0          ; case index
next:
	cmpi r7, 3
	je done
	mov r2, r7
	shli r2, 2
	movi r3, table
	loadr r4, [r3+r2]
	jmpr r4
case0:
	movi r1, 'a'
	jmp emit
case1:
	movi r1, 'b'
	jmp emit
case2:
	movi r1, 'c'
	jmp emit
emit:
	sys 1
	addi r7, 1
	jmp next
done:
	movi r1, 0
	sys 0
.data
table: .addr case0, case1, case2
`,
		want: "abc",
	},
	{
		name: "echo",
		src: `
.entry main
main:
	sys 2
	cmpi r0, -1
	je done
	mov r1, r0
	sys 1
	jmp main
done:
	movi r1, 0
	sys 0
`,
		input: "rand!",
		want:  "rand!",
	},
	{
		name: "indirect-call",
		src: `
.entry main
main:
	movi r5, double
	movi r1, 21
	callr r5
	mov r1, r0
	sys 3
	movi r1, 0
	sys 0
.func double
double:
	mov r0, r1
	add r0, r1
	ret
`,
		want: "42",
	},
	{
		name: "pic-read-ra-and-ret",
		src: `
; callee reads its own return address off the stack, pushes it back, rets.
.entry main
main:
	call picky
	movi r1, 'K'
	sys 1
	movi r1, 0
	sys 0
.func picky
picky:
	pop r4          ; explicit RA read (auto-de-randomized under VCFR)
	push r4         ; plain store: slot is no longer a marked RA slot
	ret
`,
		want: "K",
	},
	{
		name: "pic-return-via-jmpr",
		src: `
; callee returns with pop+jmpr instead of ret (Fig. 10 pattern).
.entry main
main:
	call weird
	movi r1, 'W'
	sys 1
	movi r1, 0
	sys 0
.func weird
weird:
	pop r4
	jmpr r4
`,
		want: "W",
	},
	{
		// The C++-exception-handling pattern of Sec. IV-C: a callee walks
		// the stack through frame pointers and reads every caller's return
		// address. Under VCFR the stack holds RANDOMIZED return addresses,
		// but the bitmap-driven auto-de-randomization makes explicit loads
		// observe the original values — so the checksum of the walked RAs
		// matches native execution exactly.
		name: "stack-unwind",
		src: `
.entry main
main:
	movi r9, 0
	push bp
	mov bp, sp
	call level1
	pop bp
	mov r1, r9
	sys 3
	movi r1, 0
	sys 0
.func level1
level1:
	push bp
	mov bp, sp
	call level2
	pop bp
	ret
.func level2
level2:
	push bp
	mov bp, sp
	call unwinder
	pop bp
	ret
.func unwinder
unwinder:
	push bp
	mov bp, sp
	; walk three frames: each saved bp chains upward, RA at [bp+4]
	mov r4, bp
	movi r3, 3
walk:
	cmpi r3, 0
	je wdone
	load r5, [r4+4]   ; caller return address (auto-de-randomized)
	add r9, r5
	load r4, [r4+0]   ; saved bp of the next frame up
	subi r3, 1
	jmp walk
wdone:
	pop bp
	ret
`,
		want: "12391", // sum of the three original return addresses
	},
	{
		name: "memops",
		src: `
.entry main
main:
	movi r2, 0x80000    ; buffer
	movi r3, 0
fill:
	cmpi r3, 10
	je sum
	mov r4, r3
	mul r4, r4
	shli r3, 2
	storer [r2+r3], r4
	shri r3, 2
	addi r3, 1
	jmp fill
sum:
	movi r5, 0
	movi r3, 0
acc:
	cmpi r3, 10
	je out
	shli r3, 2
	loadr r6, [r2+r3]
	shri r3, 2
	add r5, r6
	addi r3, 1
	jmp acc
out:
	mov r1, r5
	sys 3
	movi r1, 0
	sys 0
`,
		want: "285", // sum of squares 0..9
	},
}

// runMode executes the right artifact for each mode and returns the result.
func runMode(t *testing.T, res *Result, mode emu.Mode, input string) emu.RunResult {
	t.Helper()
	var img *program.Image
	switch mode {
	case emu.ModeNative:
		img = res.Orig
	case emu.ModeScattered, emu.ModeEmulatedILR:
		img = res.Scattered
	case emu.ModeVCFR:
		img = res.VCFR
	}
	out, err := emu.Run(img, emu.Config{
		Mode:   mode,
		Trans:  res.Tables,
		RandRA: res.RandRA,
		Input:  []byte(input),
	})
	if err != nil {
		t.Fatalf("%v run: %v", mode, err)
	}
	return out
}

func TestSemanticEquivalenceAcrossModes(t *testing.T) {
	modes := []emu.Mode{emu.ModeNative, emu.ModeScattered, emu.ModeEmulatedILR, emu.ModeVCFR}
	for _, tp := range equivalencePrograms {
		t.Run(tp.name, func(t *testing.T) {
			img := asm.MustAssemble(tp.name, tp.src)
			res, err := Rewrite(img, Options{Seed: 42})
			if err != nil {
				t.Fatalf("Rewrite: %v", err)
			}
			for _, mode := range modes {
				got := runMode(t, res, mode, tp.input)
				if string(got.Out) != tp.want {
					t.Errorf("%v: out = %q, want %q", mode, got.Out, tp.want)
				}
				if got.ExitCode != 0 {
					t.Errorf("%v: exit = %d", mode, got.ExitCode)
				}
			}
		})
	}
}

func TestRewriteDeterministicBySeed(t *testing.T) {
	img := asm.MustAssemble("d", equivalencePrograms[0].src)
	a, err := Rewrite(img, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Rewrite(img, Options{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, orig := range a.Tables.OrigAddrs() {
		ra, _ := a.Tables.ToRand(orig)
		rb, _ := b.Tables.ToRand(orig)
		if ra != rb {
			t.Fatalf("same seed diverged at %#x: %#x vs %#x", orig, ra, rb)
		}
	}
	c, err := a.Rerandomize(8)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for _, orig := range a.Tables.OrigAddrs() {
		ra, _ := a.Tables.ToRand(orig)
		rc, _ := c.Tables.ToRand(orig)
		if ra == rc {
			same++
		}
	}
	if same == a.Tables.Len() {
		t.Error("re-randomization produced an identical layout")
	}
}

func TestRewriteTablesBijective(t *testing.T) {
	img := asm.MustAssemble("b", equivalencePrograms[1].src)
	res, err := Rewrite(img, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbl := res.Tables
	if tbl.Len() != len(res.Graph.Insts) {
		t.Errorf("table has %d entries for %d instructions", tbl.Len(), len(res.Graph.Insts))
	}
	seen := make(map[uint32]bool)
	for _, orig := range tbl.OrigAddrs() {
		r, ok := tbl.ToRand(orig)
		if !ok {
			t.Fatalf("no rand for %#x", orig)
		}
		if seen[r] {
			t.Fatalf("randomized address %#x assigned twice", r)
		}
		seen[r] = true
		back, ok := tbl.ToOrig(r)
		if !ok || back != orig {
			t.Fatalf("inverse broken: %#x -> %#x -> %#x", orig, r, back)
		}
		if r < DefaultRandBase {
			t.Fatalf("randomized address %#x below RandBase", r)
		}
	}
}

func TestRewriteNoOverlapInScatteredLayout(t *testing.T) {
	img := asm.MustAssemble("o", equivalencePrograms[2].src)
	res, err := Rewrite(img, Options{Seed: 11, Spread: 2})
	if err != nil {
		t.Fatal(err)
	}
	type span struct{ lo, hi uint32 }
	var spans []span
	for _, in := range res.Graph.Insts {
		r, _ := res.Tables.ToRand(in.Addr)
		spans = append(spans, span{r, r + uint32(in.Len())})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[i].lo < spans[j].hi && spans[j].lo < spans[i].hi {
				t.Fatalf("encodings overlap: [%#x,%#x) and [%#x,%#x)",
					spans[i].lo, spans[i].hi, spans[j].lo, spans[j].hi)
			}
		}
	}
}

func TestRewriteStats(t *testing.T) {
	img := asm.MustAssemble("s", equivalencePrograms[1].src)
	res, err := Rewrite(img, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Instructions == 0 || st.CodeRelocs == 0 {
		t.Errorf("stats empty: %+v", st)
	}
	// Arch mode: both direct call sites randomized.
	if st.CallsRandomized != 2 || st.CallsPlain != 0 {
		t.Errorf("calls randomized/plain = %d/%d, want 2/0", st.CallsRandomized, st.CallsPlain)
	}
	if st.EntropyBits < 5 {
		t.Errorf("entropy = %.1f bits, implausibly low", st.EntropyBits)
	}
	if st.TableBytes != res.Tables.Len()*8 {
		t.Errorf("TableBytes = %d", st.TableBytes)
	}
	if st.SoftwareGrowth != 0 {
		t.Errorf("arch mode reports software growth %d", st.SoftwareGrowth)
	}
}

func TestRetRandModes(t *testing.T) {
	src := equivalencePrograms[5].src // pic-read-ra-and-ret: unsafe callee
	img := asm.MustAssemble("rr", src)

	for _, mode := range []RetRandMode{RetRandNone, RetRandSoftware, RetRandArch} {
		t.Run(mode.String(), func(t *testing.T) {
			res, err := Rewrite(img, Options{Seed: 5, RetRand: mode})
			if err != nil {
				t.Fatal(err)
			}
			switch mode {
			case RetRandNone:
				if len(res.RandRA) != 0 {
					t.Errorf("RandRA = %d entries, want 0", len(res.RandRA))
				}
			case RetRandSoftware:
				// The only call's callee reads its RA: unsafe, not randomized.
				if len(res.RandRA) != 0 {
					t.Errorf("software mode randomized an unsafe site")
				}
				if res.Stats.SoftwareGrowth != 0 {
					t.Errorf("growth = %d for zero randomized sites", res.Stats.SoftwareGrowth)
				}
			case RetRandArch:
				if len(res.RandRA) != 1 {
					t.Errorf("arch mode RandRA = %d entries, want 1", len(res.RandRA))
				}
			}
			// All three must still run correctly under VCFR.
			got := runMode(t, res, emu.ModeVCFR, "")
			if string(got.Out) != "K" {
				t.Errorf("out = %q, want K", got.Out)
			}
		})
	}
}

func TestSoftwareGrowthAccounted(t *testing.T) {
	img := asm.MustAssemble("g", equivalencePrograms[1].src) // two safe call sites
	res, err := Rewrite(img, Options{Seed: 5, RetRand: RetRandSoftware})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CallsRandomized != 2 {
		t.Fatalf("randomized sites = %d, want 2", res.Stats.CallsRandomized)
	}
	if res.Stats.SoftwareGrowth != 2*softwareGrowthPerSite {
		t.Errorf("growth = %d, want %d", res.Stats.SoftwareGrowth, 2*softwareGrowthPerSite)
	}
}

func TestPageConfinedMode(t *testing.T) {
	img := asm.MustAssemble("p", equivalencePrograms[0].src)
	res, err := Rewrite(img, Options{Seed: 9, PageConfined: true})
	if err != nil {
		t.Fatal(err)
	}
	textBase := img.Text().Addr &^ uint32(4095)
	for _, in := range res.Graph.Insts {
		r, _ := res.Tables.ToRand(in.Addr)
		origPage := (in.Addr &^ uint32(4095)) - textBase
		randPage := (r - DefaultRandBase) &^ uint32(4095)
		// Confinement allows at most one page of spill for boundary
		// straddlers (see assignPageConfined).
		if randPage != origPage && randPage != origPage+4096 {
			t.Fatalf("inst %#x left its page neighbourhood: rand %#x", in.Addr, r)
		}
	}
	// Still runs correctly.
	got := runMode(t, res, emu.ModeVCFR, "")
	if string(got.Out) != "610" {
		t.Errorf("page-confined VCFR out = %q", got.Out)
	}
	// Page-confined entropy is fixed by the page geometry
	// (log2(4096/8 * 3) ≈ 10.58 bits) regardless of program size.
	if res.Stats.EntropyBits < 10.5 || res.Stats.EntropyBits > 10.7 {
		t.Errorf("page-confined entropy = %.2f bits, want ~10.58", res.Stats.EntropyBits)
	}
	// Free placement entropy scales with instruction count; for a large
	// program it exceeds the page-confined bound.
	var big string
	big = ".entry main\nmain:\n"
	for i := 0; i < 2000; i++ {
		big += "\tnop\n"
	}
	big += "\thalt\n"
	free, err := Rewrite(asm.MustAssemble("big", big), Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if free.Stats.EntropyBits <= res.Stats.EntropyBits {
		t.Errorf("free entropy %.1f <= page-confined %.1f",
			free.Stats.EntropyBits, res.Stats.EntropyBits)
	}
}

func TestProhibitionCoversRandomizedInstructions(t *testing.T) {
	img := asm.MustAssemble("pr", equivalencePrograms[0].src)
	res, err := Rewrite(img, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	prohibited := 0
	for _, in := range res.Graph.Insts {
		if res.Tables.Prohibited(in.Addr) {
			prohibited++
		}
	}
	// Everything except un-randomized failover targets must be prohibited;
	// for this program (no unresolved indirects, arch ret-rand) that is all
	// instructions.
	if prohibited != len(res.Graph.Insts) {
		t.Errorf("prohibited %d of %d instructions", prohibited, len(res.Graph.Insts))
	}
	// Default-deny: misaligned addresses (not instruction starts) are also
	// prohibited — the misaligned-gadget escape hatch is closed.
	mis := res.Graph.Insts[0].Addr + 1
	if !res.Tables.Prohibited(mis) {
		t.Errorf("misaligned address %#x not prohibited", mis)
	}
	if res.Tables.AllowedUnrand() != 0 {
		t.Errorf("allowed failover targets = %d, want 0", res.Tables.AllowedUnrand())
	}
}

func TestVCFRImagePatchesJumpTable(t *testing.T) {
	img := asm.MustAssemble("jt", equivalencePrograms[2].src)
	res, err := Rewrite(img, Options{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	tableAddr, _ := img.Lookup("table")
	for i := uint32(0); i < 3; i++ {
		origWord, _ := res.Orig.ReadWord(tableAddr + 4*i)
		vcfrWord, _ := res.VCFR.ReadWord(tableAddr + 4*i)
		want, _ := res.Tables.ToRand(origWord)
		if vcfrWord != want {
			t.Errorf("table[%d]: VCFR word %#x, want randomized %#x of %#x",
				i, vcfrWord, want, origWord)
		}
	}
	if res.Stats.DataRelocs != 3 {
		t.Errorf("DataRelocs = %d, want 3", res.Stats.DataRelocs)
	}
}

func TestScatteredImageValid(t *testing.T) {
	img := asm.MustAssemble("sc", equivalencePrograms[3].src)
	res, err := Rewrite(img, Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Scattered.Validate(); err != nil {
		t.Errorf("scattered image invalid: %v", err)
	}
	if err := res.VCFR.Validate(); err != nil {
		t.Errorf("VCFR image invalid: %v", err)
	}
	// The scattered entry is the randomized address of the original entry.
	want, _ := res.Tables.ToRand(img.Entry)
	if res.Scattered.Entry != want {
		t.Errorf("scattered entry = %#x, want %#x", res.Scattered.Entry, want)
	}
	// Original image untouched by the rewrite.
	if img.Segments[0].Data[0] != res.Orig.Segments[0].Data[0] ||
		res.Orig != img {
		t.Error("Rewrite modified or replaced the input image")
	}
}

func TestRewriteRejectsInvalidImage(t *testing.T) {
	img := asm.MustAssemble("ok", ".entry main\nmain: halt")
	img.Entry = 0x99999999
	if _, err := Rewrite(img, Options{}); err == nil {
		t.Error("Rewrite accepted an invalid image")
	}
}

func TestRetRandModeString(t *testing.T) {
	for m, want := range map[RetRandMode]string{
		RetRandNone: "none", RetRandSoftware: "software",
		RetRandArch: "arch", RetRandMode(9): "retrand(9)",
	} {
		if got := m.String(); got != want {
			t.Errorf("String() = %q, want %q", got, want)
		}
	}
}

func BenchmarkRewriteWorkloadSized(b *testing.B) {
	// Rewriting a realistic image: ~3.5k instructions (xalan-sized text).
	var src strings.Builder
	src.WriteString(".entry main\nmain:\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&src, "\tcall f%d\n", i)
	}
	src.WriteString("\thalt\n")
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&src, ".func f%d\nf%d:\n", i, i)
		for k := 0; k < 8; k++ {
			fmt.Fprintf(&src, "\taddi r1, %d\n", k+1)
		}
		src.WriteString("\tret\n")
	}
	img := asm.MustAssemble("bench", src.String())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Rewrite(img, Options{Seed: int64(i) + 1}); err != nil {
			b.Fatal(err)
		}
	}
}
