package ilr

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"vcfr/internal/cfg"
	"vcfr/internal/program"
)

// bundleWire is the gob representation of a Result. Map contents are
// exported copies of the unexported table internals.
type bundleWire struct {
	Orig      *program.Image
	VCFR      *program.Image
	Scattered *program.Image
	O2R       map[uint32]uint32
	Allowed   map[uint32]bool
	RandRA    map[uint32]uint32
	Opts      Options
	Stats     Stats
}

// Marshal serializes the complete randomization result — images, tables,
// return-address map, options, statistics — into one self-contained bundle.
// This is what a deployment pipeline ships next to the binary and what the
// kernel would load as process context.
func (res *Result) Marshal() ([]byte, error) {
	w := bundleWire{
		Orig:      res.Orig,
		VCFR:      res.VCFR,
		Scattered: res.Scattered,
		O2R:       res.Tables.o2r,
		Allowed:   res.Tables.allowed,
		RandRA:    res.RandRA,
		Opts:      res.Opts,
		Stats:     res.Stats,
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, fmt.Errorf("ilr: marshal bundle: %w", err)
	}
	return buf.Bytes(), nil
}

// UnmarshalBundle reconstructs a Result from Marshal's output. The CFG is
// rebuilt from the original image (it is derived state).
func UnmarshalBundle(data []byte) (*Result, error) {
	var w bundleWire
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return nil, fmt.Errorf("ilr: unmarshal bundle: %w", err)
	}
	if w.Orig == nil || w.VCFR == nil || w.Scattered == nil || len(w.O2R) == 0 {
		return nil, fmt.Errorf("ilr: bundle is incomplete")
	}
	t := newTables(len(w.O2R))
	for o, r := range w.O2R {
		t.add(o, r)
	}
	if len(t.r2o) != len(t.o2r) {
		return nil, fmt.Errorf("ilr: bundle tables are not bijective")
	}
	for a, ok := range w.Allowed {
		if ok {
			t.allow(a)
		}
	}
	g, err := cfg.Build(w.Orig)
	if err != nil {
		return nil, fmt.Errorf("ilr: bundle original image: %w", err)
	}
	return &Result{
		Orig:      w.Orig,
		VCFR:      w.VCFR,
		Scattered: w.Scattered,
		Tables:    t,
		RandRA:    w.RandRA,
		Graph:     g,
		Opts:      w.Opts,
		Stats:     w.Stats,
	}, nil
}
