package ilr

import (
	"testing"

	"vcfr/internal/workloads"
)

// TestRerandomizeLayoutsDisjoint pins the property the periodic defense
// relies on: two rewrites of the same program under different seeds place
// almost every instruction at a different randomized address, and each epoch
// independently clears the entropy floor the paper's security argument
// needs. A re-randomization that mostly reproduced the old layout would let
// stale disclosures keep working.
func TestRerandomizeLayoutsDisjoint(t *testing.T) {
	cases := []struct {
		workload   string
		seedA      int64
		seedB      int64
		maxOverlap float64 // fraction of instructions allowed to keep their slot
		minEntropy float64 // bits; floor for both epochs
	}{
		{"bzip2", 1, 2, 0.02, 10},
		{"bzip2", 42, 43, 0.02, 10},
		{"sjeng", 7, 1007, 0.02, 10},
		{"xalan", 99, 100, 0.02, 10},
	}
	for _, tc := range cases {
		w, err := workloads.ByName(tc.workload, 1)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Rewrite(w.Img, Options{Seed: tc.seedA})
		if err != nil {
			t.Fatal(err)
		}
		b, err := a.Rerandomize(tc.seedB)
		if err != nil {
			t.Fatal(err)
		}
		if got := a.Stats.EntropyBits; got < tc.minEntropy {
			t.Errorf("%s seed %d: entropy %.1f bits below floor %.1f",
				tc.workload, tc.seedA, got, tc.minEntropy)
		}
		if got := b.Stats.EntropyBits; got < tc.minEntropy {
			t.Errorf("%s seed %d: entropy %.1f bits below floor %.1f",
				tc.workload, tc.seedB, got, tc.minEntropy)
		}
		origs := a.Tables.OrigAddrs()
		same := 0
		for _, o := range origs {
			ra, oka := a.Tables.ToRand(o)
			rb, okb := b.Tables.ToRand(o)
			if !oka || !okb {
				t.Fatalf("%s: instruction %#x missing from an epoch's tables", tc.workload, o)
			}
			if ra == rb {
				same++
			}
		}
		if frac := float64(same) / float64(len(origs)); frac > tc.maxOverlap {
			t.Errorf("%s seeds %d/%d: %.1f%% of %d instructions kept their slot (max %.1f%%)",
				tc.workload, tc.seedA, tc.seedB, 100*frac, len(origs), 100*tc.maxOverlap)
		}
	}
}

// TestRerandomizeTablesConsistentAfterSwap walks a chain of mid-run swaps
// and checks each epoch's tables stay internally consistent — the invariants
// the pipeline's resolveTarget/storageAddr depend on — and that old-epoch
// randomized addresses go dead: almost none survive into the next epoch's
// mapping, and every one that does not is prohibited as a control-transfer
// target (default-deny).
func TestRerandomizeTablesConsistentAfterSwap(t *testing.T) {
	w, err := workloads.ByName("sjeng", 1)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := Rewrite(w.Img, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	wantOrigs := cur.Tables.OrigAddrs()
	for epoch := 0; epoch < 4; epoch++ {
		next, err := cur.Rerandomize(int64(100 + epoch))
		if err != nil {
			t.Fatalf("epoch %d: %v", epoch, err)
		}
		nt := next.Tables

		// Bijection: every original instruction maps, round-trips, and the
		// instruction set is exactly the one the first epoch had.
		origs := nt.OrigAddrs()
		if len(origs) != len(wantOrigs) {
			t.Fatalf("epoch %d: %d instructions, first epoch had %d",
				epoch, len(origs), len(wantOrigs))
		}
		lo, hi := nt.RandRange()
		for i, o := range origs {
			if o != wantOrigs[i] {
				t.Fatalf("epoch %d: instruction set diverged at %#x vs %#x", epoch, o, wantOrigs[i])
			}
			r, ok := nt.ToRand(o)
			if !ok {
				t.Fatalf("epoch %d: %#x unmapped", epoch, o)
			}
			back, ok := nt.ToOrig(r)
			if !ok || back != o {
				t.Fatalf("epoch %d: round trip %#x -> %#x -> %#x,%v", epoch, o, r, back, ok)
			}
			if r < lo || r >= hi {
				t.Fatalf("epoch %d: %#x outside RandRange [%#x,%#x)", epoch, r, lo, hi)
			}
			// A randomized instruction's original home must be prohibited
			// unless it is an explicitly allowed failover target.
			if !nt.Prohibited(o) && nt.AllowedUnrand() == 0 {
				t.Fatalf("epoch %d: %#x reachable without a failover entry", epoch, o)
			}
		}
		if nt.Len() != len(origs) {
			t.Fatalf("epoch %d: Len %d != %d origs", epoch, nt.Len(), len(origs))
		}

		// Stale-leak death: an old-epoch randomized address survives only by
		// coincidental reuse, and when unmapped it must be prohibited.
		reused := 0
		for _, o := range wantOrigs {
			oldR, _ := cur.Tables.ToRand(o)
			if _, ok := nt.ToOrig(oldR); ok {
				reused++
				continue
			}
			if !nt.Prohibited(oldR) {
				t.Fatalf("epoch %d: stale address %#x not prohibited", epoch, oldR)
			}
		}
		if frac := float64(reused) / float64(len(wantOrigs)); frac > 0.10 {
			t.Fatalf("epoch %d: %.1f%% of old randomized addresses still map", epoch, 100*frac)
		}
		cur = next
	}
}
