package fault

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
)

var update = flag.Bool("update", false, "rewrite golden files")

// canonicalReport runs the canonical campaign (the default Config every
// surface runs) exactly once per test binary and shares the report.
var canonicalReport = sync.OnceValues(func() (*Report, error) {
	r := harness.NewRunner(0)
	r.Traces = trace.NewCache(256 << 20)
	return RunCampaign(context.Background(), r, Config{}, nil)
})

// TestCampaignGolden pins the canonical campaign's results envelope byte for
// byte: same seed, same sites, same flip masks, same coverage table, on
// every machine and Go version. Regenerate with -update after a deliberate
// change to the campaign (and bump the results schema if the wire shape
// changed).
func TestCampaignGolden(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	got, err := results.Marshal(rep.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "campaign.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("campaign envelope drifted from %s\n--- got ---\n%.2000s", path, got)
	}
}

// TestVCFRDetectsMoreControlFaults is the dependability acceptance
// criterion: over the control-flow fault kinds the VCFR machine's detection
// rate must be strictly above the baseline's — the corrupted transfer lands
// on an unmapped randomized address and trips the control-violation check,
// where the baseline silently keeps executing mapped original-space code.
func TestVCFRDetectsMoreControlFaults(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("canonical campaign reported partial")
	}
	rates := make(map[cpu.Mode]float64)
	for _, agg := range rep.ControlAggregates() {
		if agg.Stats.Injected == 0 {
			t.Fatalf("mode %s aggregated zero control-flow injections", agg.Mode)
		}
		rates[agg.Mode] = agg.Stats.DetectionRate()
	}
	if rates[cpu.ModeVCFR] <= rates[cpu.ModeBaseline] {
		t.Errorf("VCFR control-flow detection rate %.3f not strictly above baseline %.3f",
			rates[cpu.ModeVCFR], rates[cpu.ModeBaseline])
	}
	// The paper's mechanism, specifically: VCFR must catch faults via the
	// unmapped-RPC path, which the other two architectures cannot.
	var vcfr, baseline Stats
	for _, agg := range rep.ControlAggregates() {
		switch agg.Mode {
		case cpu.ModeVCFR:
			vcfr = agg.Stats
		case cpu.ModeBaseline:
			baseline = agg.Stats
		}
	}
	if vcfr.DetectedUnmappedR == 0 {
		t.Error("VCFR detected no faults via the unmapped-RPC path")
	}
	if baseline.DetectedUnmappedR != 0 {
		t.Errorf("baseline claims %d unmapped-RPC detections; it has no randomized space", baseline.DetectedUnmappedR)
	}
}

// TestCampaignDeterministicAcrossWorkers locks worker-count independence:
// the same seed must yield byte-identical coverage tables whether the
// injections run serially or spread over eight workers.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{
		Workloads:  []string{"bzip2", "xalan"},
		Injections: 24,
		MaxInsts:   10000,
		Seed:       7,
	}
	run := func(workers int) []byte {
		t.Helper()
		r := harness.NewRunner(workers)
		r.Traces = trace.NewCache(64 << 20)
		rep, err := RunCampaign(context.Background(), r, cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := results.Marshal(rep.Envelope())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("coverage table depends on worker count:\n--- workers=1 ---\n%.1500s\n--- workers=8 ---\n%.1500s",
			serial, parallel)
	}
}

// TestCampaignCancellation proves a cancelled campaign returns the partial
// report instead of an error: rows come back in full, unexecuted injections
// are marked, and Partial is set.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCampaign(ctx, harness.NewRunner(1), Config{
		Workloads: []string{"bzip2"}, Injections: 10, MaxInsts: 5000,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Error("cancelled campaign not marked partial")
	}
	wantRows := len(kindsFor(AllKinds(), cpu.ModeBaseline)) +
		len(kindsFor(AllKinds(), cpu.ModeNaiveILR)) + len(AllKinds())
	if len(rep.Rows) != wantRows {
		t.Errorf("cancelled campaign has %d rows, want the full plan of %d", len(rep.Rows), wantRows)
	}
	for _, r := range rep.Rows {
		if r.Error == "" {
			t.Errorf("row %s/%s/%s executed under a cancelled context", r.Workload, r.Mode, r.Kind)
		}
	}
	env := rep.Envelope()
	if !env.Campaign.Partial {
		t.Error("envelope of cancelled campaign not marked partial")
	}
}

// TestCampaignProgress checks the live progress feed: monotone injection
// counts ending at the plan total.
func TestCampaignProgress(t *testing.T) {
	var mu sync.Mutex
	var last harness.Progress
	var calls int
	rep, err := RunCampaign(context.Background(), harness.NewRunner(2), Config{
		Workloads: []string{"bzip2"}, Modes: []cpu.Mode{cpu.ModeVCFR},
		Injections: 20, MaxInsts: 5000,
	}, func(p harness.Progress) {
		// Callbacks from different workers may arrive out of order; keep
		// the furthest point seen.
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.CellsDone > last.CellsDone {
			last = p
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("campaign partial")
	}
	if calls == 0 || last.CellsDone != last.CellsTotal || last.Instructions == 0 {
		t.Errorf("final progress %+v after %d calls, want all injections done with nonzero instructions", last, calls)
	}
}

// TestSplitInjections pins the even split with remainder-first rule.
func TestSplitInjections(t *testing.T) {
	got := splitInjections(10, 4)
	want := []int{3, 3, 2, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitInjections(10, 4) = %v, want %v", got, want)
		}
	}
}
