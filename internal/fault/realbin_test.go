package fault

import (
	"context"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/trace"
)

// TestVCFRDetectsMoreControlFaultsOnRealBinary replays the dependability
// acceptance criterion over lifted real-binary text instead of a synthetic
// analog: injecting control-flow faults into the elf-dispatch fixture, the
// VCFR machine's detection rate over the control-flow kinds must be strictly
// above the baseline's, and the detections must arrive via the unmapped-RPC
// path only VCFR has. This is the paper's claim holding on real RV64 code
// that entered through the ELF front end.
func TestVCFRDetectsMoreControlFaultsOnRealBinary(t *testing.T) {
	r := harness.NewRunner(0)
	r.Traces = trace.NewCache(64 << 20)
	rep, err := RunCampaign(context.Background(), r, Config{
		Workloads:  []string{"elf-dispatch"},
		Injections: 48,
		Seed:       7,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("campaign over elf-dispatch reported partial")
	}
	rates := make(map[cpu.Mode]float64)
	var vcfr, baseline Stats
	for _, agg := range rep.ControlAggregates() {
		if agg.Stats.Injected == 0 {
			t.Fatalf("mode %s aggregated zero control-flow injections", agg.Mode)
		}
		rates[agg.Mode] = agg.Stats.DetectionRate()
		switch agg.Mode {
		case cpu.ModeVCFR:
			vcfr = agg.Stats
		case cpu.ModeBaseline:
			baseline = agg.Stats
		}
	}
	if rates[cpu.ModeVCFR] <= rates[cpu.ModeBaseline] {
		t.Errorf("VCFR control-flow detection rate %.3f not strictly above baseline %.3f on real code",
			rates[cpu.ModeVCFR], rates[cpu.ModeBaseline])
	}
	if vcfr.DetectedUnmappedR == 0 {
		t.Error("VCFR detected no faults via the unmapped-RPC path on real code")
	}
	if baseline.DetectedUnmappedR != 0 {
		t.Errorf("baseline claims %d unmapped-RPC detections; it has no randomized space",
			baseline.DetectedUnmappedR)
	}
}
