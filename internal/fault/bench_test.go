package fault

import (
	"context"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/trace"
)

// BenchmarkCampaign measures end-to-end campaign throughput (reference
// capture amortized through the trace cache, then injected runs), reporting
// injections per second — the number that bounds how large a dependability
// study the simulator can host.
func BenchmarkCampaign(b *testing.B) {
	cfg := Config{
		Workloads:  []string{"bzip2"},
		Modes:      []cpu.Mode{cpu.ModeVCFR},
		Injections: 60,
		MaxInsts:   10000,
	}
	r := harness.NewRunner(0)
	r.Traces = trace.NewCache(64 << 20)
	var injected uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := RunCampaign(context.Background(), r, cfg, nil)
		if err != nil {
			b.Fatal(err)
		}
		if rep.Partial {
			b.Fatal("campaign partial")
		}
		injected += rep.Totals.Injected
	}
	b.ReportMetric(float64(injected)/b.Elapsed().Seconds(), "injections/s")
}

// BenchmarkInjectedRun isolates one injected execution (pipeline build +
// run under hooks + classification) against a warm reference.
func BenchmarkInjectedRun(b *testing.B) {
	app, err := harness.Prepare("bzip2", harness.Config{Scale: 1, Spread: 8, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	c := &cell{workload: "bzip2", mode: cpu.ModeVCFR, app: app}
	if err := c.reference(context.Background(), harness.NewRunner(1), 10000); err != nil {
		b.Fatal(err)
	}
	cands := candidates(c.trace, KindBranchTarget)
	if len(cands) == 0 {
		b.Fatal("no branch-target candidates")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Fault{Kind: KindBranchTarget, Index: cands[i%len(cands)], Bits: 1, Seed: int64(i)}
		if o, _ := runInjection(context.Background(), c, f); o == "" {
			b.Fatal("injection not executed")
		}
	}
}
