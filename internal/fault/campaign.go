package fault

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
	"vcfr/internal/workloads"
)

// Config scopes one fault-injection campaign. The zero value (after
// withDefaults) is the canonical campaign every surface runs: three
// workloads under all three modes, the full fault model, Injections
// injections per (workload, mode) cell — all drawn deterministically from
// Seed, so the same Config always yields the same coverage table.
type Config struct {
	// Workloads to inject into; empty means DefaultWorkloads.
	Workloads []string
	// Modes to evaluate; empty means all three architectures.
	Modes []cpu.Mode
	// Kinds is the fault model subset; empty means AllKinds. Kinds that
	// need VCFR (drc-entry) are skipped in non-VCFR cells.
	Kinds []Kind
	// Injections per (workload, mode) cell, split evenly across that
	// cell's applicable kinds. <= 0 means 120 (with the default three
	// workloads and three modes: 1080 injections).
	Injections int
	// Seed drives everything: the per-workload layout seed and every
	// injection's site choice and flip mask derive from it. 0 means 42.
	Seed int64
	// Scale multiplies workload iteration counts. <= 0 means 1.
	Scale int
	// Spread is the ILR scatter factor. <= 0 means 8.
	Spread int
	// MaxInsts caps the clean reference run (and thereby the injection
	// budget, see Reference.Budget). 0 means 25000 — long enough to cover
	// every fault kind's sites, short enough that a thousand injections
	// finish in seconds.
	MaxInsts uint64
	// Bits flipped per injection. <= 0 means 1 (the classic single-event
	// upset).
	Bits int
}

// DefaultWorkloads is the canonical campaign's workload set: three small,
// behaviorally distinct SPEC analogs, chosen so every fault kind has live
// sites in the reference window (xalan is the one analog that executes
// register-indirect transfers early; sjeng adds deep call/return activity;
// bzip2 is the branchy sequential case).
func DefaultWorkloads() []string { return []string{"bzip2", "sjeng", "xalan"} }

// AllModes returns the three architecture modes in report order.
func AllModes() []cpu.Mode {
	return []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
}

// ParseModes maps a CLI/request mode string onto the campaign's mode list.
func ParseModes(s string) ([]cpu.Mode, error) {
	switch s {
	case "", "all":
		return AllModes(), nil
	case "baseline":
		return []cpu.Mode{cpu.ModeBaseline}, nil
	case "naive":
		return []cpu.Mode{cpu.ModeNaiveILR}, nil
	case "vcfr":
		return []cpu.Mode{cpu.ModeVCFR}, nil
	}
	return nil, fmt.Errorf("fault: unknown mode %q (want baseline, naive, vcfr, or all)", s)
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultWorkloads()
	}
	if len(c.Modes) == 0 {
		c.Modes = AllModes()
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if c.Injections <= 0 {
		c.Injections = 120
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Spread <= 0 {
		c.Spread = 8
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 25000
	}
	if c.Bits <= 0 {
		c.Bits = 1
	}
	return c
}

func (c Config) validate() error {
	for _, w := range c.Workloads {
		if _, err := workloads.ByName(w, 1); err != nil {
			return err
		}
	}
	for _, m := range c.Modes {
		switch m {
		case cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR:
		default:
			return fmt.Errorf("fault: unknown mode %v", m)
		}
	}
	for _, k := range c.Kinds {
		if !k.valid() {
			return fmt.Errorf("fault: unknown fault kind %q", k)
		}
	}
	return nil
}

// Row is one (workload, mode, fault kind) line of the coverage table.
type Row struct {
	Workload string
	Mode     cpu.Mode
	Kind     Kind
	Stats    Stats
	// Error marks the row's injections as not (fully) executed: workload
	// preparation or reference capture failed, or the campaign was
	// cancelled mid-flight.
	Error string
}

// Report is one campaign's full result.
type Report struct {
	Config Config
	Rows   []Row
	Totals Stats
	// Partial is true when any row carries an error.
	Partial bool
}

// kindsFor filters the configured kinds down to the ones meaningful in a
// mode.
func kindsFor(kinds []Kind, mode cpu.Mode) []Kind {
	out := make([]Kind, 0, len(kinds))
	for _, k := range kinds {
		if k.NeedsVCFR() && mode != cpu.ModeVCFR {
			continue
		}
		out = append(out, k)
	}
	return out
}

// splitInjections splits total across n kinds, remainder to the first ones.
func splitInjections(total, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = total / n
		if i < total%n {
			out[i]++
		}
	}
	return out
}

// candidates lists the dynamic instruction indices of the reference trace
// the kind can fire on.
func candidates(t *trace.Trace, k Kind) []uint64 {
	var out []uint64
	it := t.Iter()
	for i := uint64(0); ; i++ {
		rec, ok := it.Next()
		if !ok {
			return out
		}
		if k.matches(rec.Inst.Class(), rec.Taken) {
			out = append(out, i)
		}
	}
}

// injectionSeed derives one injection's PRNG seed from the campaign seed
// and the injection's coordinates, so neither worker count nor scheduling
// order changes any injection.
func injectionSeed(base int64, workload string, mode cpu.Mode, kind Kind, j int) int64 {
	return harness.CellSeed(base, "faults",
		fmt.Sprintf("%s|%s|%s|%d", workload, mode, kind, j))
}

// cell is one (workload, mode) pair's shared state: the prepared app and
// the clean reference its injections are judged against.
type cell struct {
	workload string
	mode     cpu.Mode
	app      *harness.App
	ref      Reference
	trace    *trace.Trace
	kinds    []Kind
	err      error
}

// reference captures the cell's clean run, through the runner's trace
// cache when one is present (record once, judge many).
func (c *cell) reference(ctx context.Context, r *harness.Runner, maxInsts uint64) error {
	p, _, err := c.app.Pipeline(c.mode, nil)
	if err != nil {
		return err
	}
	meta := trace.Meta{
		Workload:   c.app.W.Name,
		Mode:       c.mode,
		LayoutSeed: c.app.R.Opts.Seed,
		Spread:     c.app.R.Opts.Spread,
		MaxInsts:   maxInsts,
	}
	var t *trace.Trace
	if r.Traces == nil {
		t, _, err = trace.CaptureContext(ctx, p, maxInsts, meta)
	} else {
		key := harness.TraceKey(c.app, c.mode, maxInsts)
		meta.ImageHash = key.ImageHash
		t, _, err = r.Traces.Do(ctx, key, func() (*trace.Trace, error) {
			tt, _, cerr := trace.CaptureContext(ctx, p, maxInsts, meta)
			return tt, cerr
		})
	}
	if err != nil {
		return err
	}
	c.trace = t
	c.ref = Reference{Insts: uint64(t.Len()), Halted: t.Halted, ExitCode: t.ExitCode, Out: t.Out}
	return nil
}

// task is one planned injection.
type task struct {
	cell  *cell
	row   int // index into Report.Rows
	fault Fault
}

// RunCampaign executes the configured campaign on the runner's worker pool
// and returns the coverage table. Rows come back in the fixed (workload,
// mode, kind) order of the config regardless of worker count, so identical
// configs produce byte-identical reports. onProgress, if non-nil, receives
// live completion state (CellsDone/CellsTotal count injections).
//
// Cancellation returns the partial report, not an error: finished
// injections keep their counts and unexecuted rows carry the context's
// error, mirroring how sweeps report partial results.
func RunCampaign(ctx context.Context, r *harness.Runner, cfg Config, onProgress func(harness.Progress)) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		r = harness.NewRunner(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Prepare each workload once; every mode cell shares the layout. The
	// layout seed derives from the campaign seed and the workload name, so
	// layouts differ across workloads but never across surfaces.
	apps := make(map[string]*harness.App, len(cfg.Workloads))
	appErr := make(map[string]error, len(cfg.Workloads))
	for _, w := range cfg.Workloads {
		hcfg := harness.Config{
			Scale:  cfg.Scale,
			Spread: cfg.Spread,
			Seed:   harness.CellSeed(cfg.Seed, "faults", w),
		}
		if app, err := harness.Prepare(w, hcfg); err != nil {
			appErr[w] = err
		} else {
			apps[w] = app
		}
	}

	cells := make([]*cell, 0, len(cfg.Workloads)*len(cfg.Modes))
	for _, w := range cfg.Workloads {
		for _, m := range cfg.Modes {
			cells = append(cells, &cell{
				workload: w,
				mode:     m,
				app:      apps[w],
				kinds:    kindsFor(cfg.Kinds, m),
				err:      appErr[w],
			})
		}
	}

	// Phase 1: clean references, sharded across the pool.
	r.Shard(ctx, len(cells), func(ctx context.Context, i int) {
		c := cells[i]
		if c.err != nil {
			return
		}
		if err := c.reference(ctx, r, cfg.MaxInsts); err != nil {
			c.err = err
		}
	})
	for _, c := range cells {
		if c.err == nil && c.trace == nil {
			c.err = notExecuted(ctx)
		}
	}

	// Phase 2: plan every injection up front, in fixed order. The plan is
	// fully deterministic: injection j of a (workload, mode, kind) row
	// picks its site and flip mask from a seed derived from exactly those
	// coordinates.
	var rows []Row
	var tasks []task
	for _, c := range cells {
		counts := splitInjections(cfg.Injections, len(c.kinds))
		for ki, k := range c.kinds {
			rowIdx := len(rows)
			rows = append(rows, Row{Workload: c.workload, Mode: c.mode, Kind: k})
			if c.err != nil {
				rows[rowIdx].Error = firstLine(c.err.Error())
				continue
			}
			cands := candidates(c.trace, k)
			if len(cands) == 0 {
				// No site in the reference window can host this kind; the
				// row reports zero injections rather than an error.
				continue
			}
			for j := 0; j < counts[ki]; j++ {
				rng := rand.New(rand.NewSource(injectionSeed(cfg.Seed, c.workload, c.mode, k, j)))
				tasks = append(tasks, task{
					cell: c,
					row:  rowIdx,
					fault: Fault{
						Kind:  k,
						Index: cands[rng.Intn(len(cands))],
						Bits:  cfg.Bits,
						Seed:  rng.Int63(),
					},
				})
			}
		}
	}

	// Phase 3: execute the injections, sharded across the pool. Outcomes
	// land in a per-task slot, so aggregation order (phase 4) is fixed no
	// matter which worker ran what.
	outcomes := make([]Outcome, len(tasks))
	var (
		progMu    sync.Mutex
		doneCount int
		instTotal uint64
	)
	r.Shard(ctx, len(tasks), func(ctx context.Context, i int) {
		t := tasks[i]
		o, insts := runInjection(ctx, t.cell, t.fault)
		outcomes[i] = o
		if o == "" || onProgress == nil {
			return
		}
		progMu.Lock()
		doneCount++
		instTotal += insts
		p := harness.Progress{CellsDone: doneCount, CellsTotal: len(tasks), Instructions: instTotal}
		progMu.Unlock()
		onProgress(p)
	})

	// Phase 4: aggregate in plan order.
	rep := &Report{Config: cfg, Rows: rows}
	for i, t := range tasks {
		if o := outcomes[i]; o != "" {
			rep.Rows[t.row].Stats.Add(o)
		} else if rep.Rows[t.row].Error == "" {
			rep.Rows[t.row].Error = firstLine(notExecuted(ctx).Error())
		}
	}
	for i := range rep.Rows {
		if rep.Rows[i].Error != "" {
			rep.Partial = true
		}
		rep.Totals.Merge(rep.Rows[i].Stats)
	}
	return rep, nil
}

// notExecuted names why planned work never ran: the context's error when it
// was cancelled, a generic marker otherwise.
func notExecuted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return errors.New("injection not executed")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// runInjection executes one injected run and classifies it. A cancelled run
// returns the empty outcome (not executed); a simulator panic classifies as
// crash — from the fault model's point of view the machine died.
func runInjection(ctx context.Context, c *cell, f Fault) (o Outcome, insts uint64) {
	defer func() {
		if r := recover(); r != nil {
			o = OutcomeCrash
		}
	}()
	p, _, err := c.app.Pipeline(c.mode, nil)
	if err != nil {
		return OutcomeCrash, 0
	}
	p.SetInjector(NewInjector(f).Hooks())
	res, err := p.RunContext(ctx, c.ref.Budget())
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return "", res.Stats.Instructions
	}
	return Classify(res, err, c.ref), res.Stats.Instructions
}

// Envelope renders the report as the versioned wire document every surface
// emits (results schema v3, kind "campaign").
func (rep *Report) Envelope() results.Envelope {
	modes := make([]string, len(rep.Config.Modes))
	for i, m := range rep.Config.Modes {
		modes[i] = m.String()
	}
	kinds := make([]string, len(rep.Config.Kinds))
	for i, k := range rep.Config.Kinds {
		kinds[i] = string(k)
	}
	c := results.Campaign{
		Seed:       rep.Config.Seed,
		Scale:      rep.Config.Scale,
		Spread:     rep.Config.Spread,
		MaxInsts:   rep.Config.MaxInsts,
		Injections: rep.Config.Injections,
		Bits:       rep.Config.Bits,
		Workloads:  rep.Config.Workloads,
		Modes:      modes,
		Faults:     kinds,
		Rows:       make([]results.CampaignRow, 0, len(rep.Rows)),
	}
	for _, r := range rep.Rows {
		c.Rows = append(c.Rows, results.CampaignRow{
			Workload:      r.Workload,
			Mode:          r.Mode.String(),
			Fault:         string(r.Kind),
			Outcomes:      counts(r.Stats),
			DetectionRate: r.Stats.DetectionRate(),
			Error:         r.Error,
		})
	}
	c.Totals = counts(rep.Totals)
	return results.NewCampaign(c)
}

func counts(s Stats) results.CampaignCounts {
	return results.CampaignCounts{
		Injected:            s.Injected,
		DetectedUnmappedRPC: s.DetectedUnmappedR,
		DetectedIllegal:     s.DetectedIllegal,
		Crashes:             s.Crashes,
		SDC:                 s.SilentCorruptions,
		Masked:              s.Masked,
		Hangs:               s.Hangs,
	}
}

// Table renders the report as the human-readable coverage table faultsim
// and experiments print: one row per (workload, mode, fault kind), then a
// per-mode aggregate over the control-flow kinds — the paper's headline
// comparison.
func (rep *Report) Table() *harness.Table {
	t := &harness.Table{
		ID:    "faults",
		Title: "fault-injection detection coverage (baseline vs naive-ILR vs VCFR)",
		Columns: []string{"workload", "mode", "fault", "inj", "det-rpc", "det-illegal",
			"crash", "sdc", "masked", "hang", "detected"},
		Note: fmt.Sprintf("seed %d, %d injections per workload x mode cell, %d-bit flips, reference cap %d insts",
			rep.Config.Seed, rep.Config.Injections, rep.Config.Bits, rep.Config.MaxInsts),
	}
	u := func(v uint64) string { return fmt.Sprintf("%d", v) }
	for _, r := range rep.Rows {
		if r.Error != "" {
			t.Rows = append(t.Rows, []string{r.Workload, r.Mode.String(), string(r.Kind),
				"error: " + r.Error})
			continue
		}
		s := r.Stats
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Mode.String(), string(r.Kind),
			u(s.Injected), u(s.DetectedUnmappedR), u(s.DetectedIllegal),
			u(s.Crashes), u(s.SilentCorruptions), u(s.Masked), u(s.Hangs),
			fmt.Sprintf("%.1f%%", 100*s.DetectionRate()),
		})
	}
	for _, agg := range rep.ControlAggregates() {
		s := agg.Stats
		t.Rows = append(t.Rows, []string{
			"(all)", agg.Mode.String(), "(control-flow)",
			u(s.Injected), u(s.DetectedUnmappedR), u(s.DetectedIllegal),
			u(s.Crashes), u(s.SilentCorruptions), u(s.Masked), u(s.Hangs),
			fmt.Sprintf("%.1f%%", 100*s.DetectionRate()),
		})
	}
	return t
}

// ModeAggregate is one mode's merged statistics over the control-flow
// fault kinds.
type ModeAggregate struct {
	Mode  cpu.Mode
	Stats Stats
}

// ControlAggregates merges each mode's rows over the control-flow fault
// kinds (branch/indirect/return targets and DRC entries — everything but
// opcode flips, which any decoder catches). This is the quantity the
// paper's dependability argument ranks: VCFR must detect strictly more of
// these than the baseline.
func (rep *Report) ControlAggregates() []ModeAggregate {
	control := make(map[Kind]bool)
	for _, k := range ControlKinds() {
		control[k] = true
	}
	out := make([]ModeAggregate, 0, len(rep.Config.Modes))
	for _, m := range rep.Config.Modes {
		agg := ModeAggregate{Mode: m}
		for _, r := range rep.Rows {
			if r.Mode == m && control[r.Kind] && r.Error == "" {
				agg.Stats.Merge(r.Stats)
			}
		}
		out = append(out, agg)
	}
	return out
}
