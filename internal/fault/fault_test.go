package fault

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
	"vcfr/internal/stats"
)

// TestFlipMask locks the mask-drawing contract: exactly min(bits, width)
// distinct bits set, inside the width, and deterministic per seed.
func TestFlipMask(t *testing.T) {
	for _, tc := range []struct{ bits, width, want int }{
		{1, 32, 1}, {3, 32, 3}, {8, 8, 8}, {40, 32, 32}, {5, 8, 5},
	} {
		rng := rand.New(rand.NewSource(99))
		m := flipMask(rng, tc.bits, tc.width)
		if got := bits.OnesCount32(m); got != tc.want {
			t.Errorf("flipMask(bits=%d, width=%d): %d bits set, want %d", tc.bits, tc.width, got, tc.want)
		}
		if tc.width < 32 && m>>tc.width != 0 {
			t.Errorf("flipMask(bits=%d, width=%d) = %#x: bits outside width", tc.bits, tc.width, m)
		}
	}
	a := flipMask(rand.New(rand.NewSource(7)), 4, 32)
	b := flipMask(rand.New(rand.NewSource(7)), 4, 32)
	if a != b {
		t.Errorf("same seed drew different masks: %#x vs %#x", a, b)
	}
}

// TestInjectorDeterminism is the replay guarantee: the same Fault always
// arms the same flip mask, so an injection re-run is bit-identical.
func TestInjectorDeterminism(t *testing.T) {
	f := Fault{Kind: KindBranchTarget, Index: 100, Bits: 2, Seed: 12345}
	a, b := NewInjector(f), NewInjector(f)
	if a.targetXor != b.targetXor {
		t.Errorf("same fault armed different masks: %#x vs %#x", a.targetXor, b.targetXor)
	}
	f2 := f
	f2.Seed = 54321
	if c := NewInjector(f2); c.targetXor == a.targetXor {
		t.Errorf("different seeds armed the same mask %#x", a.targetXor)
	}

	op := Fault{Kind: KindOpcode, Index: 5, Bits: 1, Seed: 9}
	x, y := NewInjector(op), NewInjector(op)
	if x.opcodeXor != y.opcodeXor || x.opcodeXor == 0 {
		t.Errorf("opcode masks %#x vs %#x, want equal and nonzero", x.opcodeXor, y.opcodeXor)
	}
}

// TestInjectorFiresOnce proves each armed fault corrupts exactly one value:
// at its index, never before, and never again after.
func TestInjectorFiresOnce(t *testing.T) {
	t.Run("opcode", func(t *testing.T) {
		j := NewInjector(Fault{Kind: KindOpcode, Index: 3, Seed: 1})
		h := j.Hooks()
		if h.FetchBytes == nil {
			t.Fatal("opcode fault armed no FetchBytes hook")
		}
		buf := []byte{0x10, 0x20}
		h.FetchBytes(2, 0, buf)
		if buf[0] != 0x10 || j.Fired() {
			t.Fatal("fired before its index")
		}
		h.FetchBytes(3, 0, buf)
		if buf[0] == 0x10 || !j.Fired() {
			t.Fatal("did not fire at its index")
		}
		was := buf[0]
		h.FetchBytes(3, 0, buf)
		if buf[0] != was {
			t.Fatal("fired twice")
		}
	})

	t.Run("branch-target", func(t *testing.T) {
		j := NewInjector(Fault{Kind: KindBranchTarget, Index: 7, Seed: 1})
		h := j.Hooks()
		if h.Outcome == nil {
			t.Fatal("branch-target fault armed no Outcome hook")
		}
		branch := isa.Inst{Op: isa.OpJe}
		out := emu.Outcome{Taken: true, Target: 0x400}
		// Not taken at the index: the kind does not match, nothing fires.
		notTaken := emu.Outcome{Taken: false, Target: 0x400}
		h.Outcome(7, branch, &notTaken)
		if notTaken.Target != 0x400 || j.Fired() {
			t.Fatal("fired on a not-taken branch")
		}
		h.Outcome(7, branch, &out)
		if out.Target == 0x400 || !j.Fired() {
			t.Fatal("did not fire on the taken branch at its index")
		}
	})

	t.Run("drc-entry", func(t *testing.T) {
		j := NewInjector(Fault{Kind: KindDRCEntry, Index: 9, Seed: 1})
		h := j.Hooks()
		if h.Translated == nil {
			t.Fatal("drc-entry fault armed no Translated hook")
		}
		orig := uint32(0x1234)
		h.Translated(8, 0xdead, &orig)
		if orig != 0x1234 {
			t.Fatal("fired before its index")
		}
		h.Translated(9, 0xdead, &orig)
		if orig == 0x1234 || !j.Fired() {
			t.Fatal("did not fire at its index")
		}
	})
}

// TestKindMatches pins the fault model's site selection per kind.
func TestKindMatches(t *testing.T) {
	for _, tc := range []struct {
		kind  Kind
		class isa.Class
		taken bool
		want  bool
	}{
		{KindBranchTarget, isa.ClassBranch, true, true},
		{KindBranchTarget, isa.ClassBranch, false, false},
		{KindBranchTarget, isa.ClassCall, true, true},
		{KindBranchTarget, isa.ClassRet, true, false},
		{KindIndirectTarget, isa.ClassJumpR, true, true},
		{KindIndirectTarget, isa.ClassJump, true, false},
		{KindReturnAddress, isa.ClassRet, true, true},
		{KindReturnAddress, isa.ClassCall, true, false},
		{KindOpcode, isa.ClassSeq, false, true},
		{KindDRCEntry, isa.ClassJump, true, true},
		{KindDRCEntry, isa.ClassRet, true, false},
	} {
		if got := tc.kind.matches(tc.class, tc.taken); got != tc.want {
			t.Errorf("%s.matches(%v, taken=%v) = %v, want %v", tc.kind, tc.class, tc.taken, got, tc.want)
		}
	}
}

func TestParseKinds(t *testing.T) {
	ks, err := ParseKinds([]string{"branch-target", " opcode"})
	if err != nil || len(ks) != 2 || ks[0] != KindBranchTarget || ks[1] != KindOpcode {
		t.Errorf("ParseKinds = %v, %v", ks, err)
	}
	if _, err := ParseKinds([]string{"cosmic-ray"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestClassify covers the whole outcome taxonomy against a fixed reference.
func TestClassify(t *testing.T) {
	ref := Reference{Insts: 1000, Halted: true, ExitCode: 0, Out: []byte("ok\n")}
	halted := func(exit uint32, out string) cpu.Result {
		var r cpu.Result
		r.Halted = true
		r.ExitCode = exit
		r.Out = []byte(out)
		return r
	}
	for _, tc := range []struct {
		name string
		res  cpu.Result
		err  error
		ref  Reference
		want Outcome
	}{
		{"control violation", cpu.Result{}, cpu.ErrControlViolation, ref, OutcomeDetectedRPC},
		{"wrapped control violation", cpu.Result{},
			fmt.Errorf("run: %w", cpu.ErrControlViolation), ref, OutcomeDetectedRPC},
		{"failed fetch", cpu.Result{}, &emu.Fault{Addr: 0x99, Msg: "fetch: truncated"}, ref, OutcomeDetectedIllegal},
		{"invalid opcode", cpu.Result{}, &emu.Fault{Addr: 0x99, Msg: "invalid opcode 0xff"}, ref, OutcomeDetectedIllegal},
		{"other fault", cpu.Result{}, &emu.Fault{Addr: 0x99, Msg: "divide by zero"}, ref, OutcomeCrash},
		{"hang", cpu.Result{}, nil, ref, OutcomeHang},
		{"masked", halted(0, "ok\n"), nil, ref, OutcomeMasked},
		{"sdc exit code", halted(1, "ok\n"), nil, ref, OutcomeSDC},
		{"sdc output", halted(0, "no\n"), nil, ref, OutcomeSDC},
		{"capped reference still running", cpu.Result{}, nil,
			Reference{Insts: 1000, Halted: false}, OutcomeMasked},
	} {
		if got := Classify(tc.res, tc.err, tc.ref); got != tc.want {
			t.Errorf("%s: Classify = %s, want %s", tc.name, got, tc.want)
		}
	}
}

func TestReferenceBudget(t *testing.T) {
	if got := (Reference{Insts: 1000, Halted: true}).Budget(); got != 3024 {
		t.Errorf("halted reference budget = %d, want 2*1000+1024", got)
	}
	if got := (Reference{Insts: 1000, Halted: false}).Budget(); got != 1000 {
		t.Errorf("capped reference budget = %d, want 1000", got)
	}
}

// TestStatsSpine locks the fault.* registration: names, order, and that Add
// routes every outcome to its counter.
func TestStatsSpine(t *testing.T) {
	var s Stats
	for _, o := range Outcomes() {
		s.Add(o)
	}
	if s.Injected != uint64(len(Outcomes())) {
		t.Errorf("Injected = %d, want %d", s.Injected, len(Outcomes()))
	}
	if s.Detected() != 2 || s.DetectionRate() != 2.0/float64(len(Outcomes())) {
		t.Errorf("Detected = %d rate = %v", s.Detected(), s.DetectionRate())
	}

	r := stats.New()
	s.Register(r)
	var names []string
	var sum uint64
	r.Snapshot().Each(func(d stats.Desc, v stats.Value) {
		names = append(names, d.Name)
		sum += v.U
	})
	want := []string{"fault.injected", "fault.detected.unmapped_rpc", "fault.detected.illegal_instruction",
		"fault.crashes", "fault.sdc", "fault.masked", "fault.hangs"}
	if len(names) != len(want) {
		t.Fatalf("registered %d counters %v, want %d", len(names), names, len(want))
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("counter %d = %q, want %q", i, names[i], want[i])
		}
	}
	// Injected plus one count per outcome.
	if sum != 2*uint64(len(Outcomes())) {
		t.Errorf("registered values sum to %d, want %d", sum, 2*len(Outcomes()))
	}

	var m Stats
	m.Merge(s)
	m.Merge(s)
	if m.Injected != 2*s.Injected || m.Hangs != 2*s.Hangs {
		t.Errorf("Merge: %+v", m)
	}
}
