// Package fault is the dependability-evaluation subsystem: it injects
// deterministic hardware-style faults into the cycle simulator and
// classifies what each one did to the program, reproducing the paper's
// dependability claim — under complete instruction-address randomization a
// corrupted control transfer lands, with overwhelming probability, on an
// unmapped randomized address, so the DRC/table miss turns silent
// control-flow corruption into a detected fault.
//
// The pieces: a typed fault model (Kind), a per-injection Injector that
// draws its bit flips from a seeded PRNG so every injection replays
// bit-identically, an outcome taxonomy (Outcome, Classify) measured against
// a clean reference run, Stats counters registered in the stats spine, and
// a campaign runner (campaign.go) that shards thousands of injections over
// the harness worker pool and emits a paper-style detection-coverage table.
package fault

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
	"vcfr/internal/stats"
)

// Kind is one entry of the typed fault model: what micro-architectural
// value gets corrupted.
type Kind string

// The fault model. Every kind flips Bits pseudo-random bits in its target
// value at one configured dynamic instruction.
const (
	// KindBranchTarget flips bits in the architectural target of a taken
	// direct transfer (branch, jump, call). Under VCFR the target is a
	// randomized-space address, so the flip lands in RPC space; under
	// baseline it corrupts the original-space target directly.
	KindBranchTarget Kind = "branch-target"
	// KindIndirectTarget flips bits in the register value driving an
	// indirect jump or call — a wild function pointer.
	KindIndirectTarget Kind = "indirect-target"
	// KindReturnAddress flips bits in the return address a ret pops — a
	// stack smash. Under VCFR stored return addresses are randomized, so
	// the flip corrupts an RPC-space value.
	KindReturnAddress Kind = "return-address"
	// KindOpcode flips bits in the first fetched byte of one instruction —
	// a transient corruption of the fetch path. The mutated bytes go
	// through the normal decoder.
	KindOpcode Kind = "opcode"
	// KindDRCEntry flips bits in the original-space translation the DRC
	// returns for a successfully de-randomized target — a corrupted DRC
	// entry. Only meaningful under VCFR (the other modes have no DRC);
	// campaign cells in other modes skip it.
	KindDRCEntry Kind = "drc-entry"
)

// AllKinds returns the full fault model in its stable report order.
func AllKinds() []Kind {
	return []Kind{KindBranchTarget, KindIndirectTarget, KindReturnAddress, KindOpcode, KindDRCEntry}
}

// ControlKinds returns the control-flow fault kinds — the ones the paper's
// detection argument is about (an opcode flip is caught by the decoder in
// any mode; a control-target flip is only reliably caught under VCFR).
func ControlKinds() []Kind {
	return []Kind{KindBranchTarget, KindIndirectTarget, KindReturnAddress, KindDRCEntry}
}

func (k Kind) valid() bool {
	switch k {
	case KindBranchTarget, KindIndirectTarget, KindReturnAddress, KindOpcode, KindDRCEntry:
		return true
	}
	return false
}

// NeedsVCFR reports whether the kind only exists under ModeVCFR.
func (k Kind) NeedsVCFR() bool { return k == KindDRCEntry }

// matches reports whether this kind can fire on an instruction of the given
// class whose transfer was taken.
func (k Kind) matches(class isa.Class, taken bool) bool {
	switch k {
	case KindBranchTarget, KindDRCEntry:
		// drc-entry candidates are restricted to direct taken transfers:
		// those always resolve through the DRC/table path (a correctly
		// RAS-predicted return bypasses it).
		return taken && (class == isa.ClassBranch || class == isa.ClassJump || class == isa.ClassCall)
	case KindIndirectTarget:
		return taken && (class == isa.ClassJumpR || class == isa.ClassCallR)
	case KindReturnAddress:
		return taken && class == isa.ClassRet
	case KindOpcode:
		return true
	}
	return false
}

// ParseKinds maps CLI/request strings onto fault kinds.
func ParseKinds(names []string) ([]Kind, error) {
	out := make([]Kind, 0, len(names))
	for _, n := range names {
		k := Kind(strings.TrimSpace(n))
		if !k.valid() {
			return nil, fmt.Errorf("fault: unknown fault kind %q (want one of %v)", n, AllKinds())
		}
		out = append(out, k)
	}
	return out, nil
}

// Fault is one fully specified injection: flip Bits pseudo-random bits
// (drawn from Seed) in the value Kind names, at dynamic instruction Index.
// The spec is pure data — the same Fault always produces the same injected
// execution.
type Fault struct {
	Kind  Kind   `json:"kind"`
	Index uint64 `json:"index"` // zero-based dynamic instruction number
	Bits  int    `json:"bits"`  // bits to flip; <= 0 means 1
	Seed  int64  `json:"seed"`  // PRNG seed the flip mask is drawn from
}

// Injector arms one Fault as a cpu.InjectHooks set. It fires at most once.
type Injector struct {
	f         Fault
	targetXor uint32
	opcodeXor byte
	fired     bool
}

// NewInjector precomputes the injection's flip mask from the fault's seed.
func NewInjector(f Fault) *Injector {
	if f.Bits <= 0 {
		f.Bits = 1
	}
	rng := rand.New(rand.NewSource(f.Seed))
	j := &Injector{f: f}
	if f.Kind == KindOpcode {
		j.opcodeXor = byte(flipMask(rng, f.Bits, 8))
	} else {
		j.targetXor = flipMask(rng, f.Bits, 32)
	}
	return j
}

// flipMask draws a mask with exactly min(bits, width) distinct bits set.
func flipMask(rng *rand.Rand, bits, width int) uint32 {
	if bits > width {
		bits = width
	}
	var m uint32
	for n := 0; n < bits; {
		b := uint32(1) << rng.Intn(width)
		if m&b == 0 {
			m |= b
			n++
		}
	}
	return m
}

// Fired reports whether the armed fault actually corrupted something. A
// fault that never fired (its index's instruction did not match the kind)
// yields a run identical to the reference and classifies as masked.
func (j *Injector) Fired() bool { return j.fired }

// Hooks returns the pipeline hook set that performs this injection.
func (j *Injector) Hooks() *cpu.InjectHooks {
	switch j.f.Kind {
	case KindOpcode:
		return &cpu.InjectHooks{FetchBytes: j.fetchBytes}
	case KindDRCEntry:
		return &cpu.InjectHooks{Translated: j.translated}
	default:
		return &cpu.InjectHooks{Outcome: j.outcome}
	}
}

func (j *Injector) fetchBytes(seq uint64, addr uint32, buf []byte) {
	if j.fired || seq != j.f.Index {
		return
	}
	buf[0] ^= j.opcodeXor
	j.fired = true
}

func (j *Injector) outcome(seq uint64, in isa.Inst, out *emu.Outcome) {
	if j.fired || seq != j.f.Index {
		return
	}
	if !j.f.Kind.matches(in.Class(), out.Taken) {
		return
	}
	out.Target ^= j.targetXor
	j.fired = true
}

func (j *Injector) translated(seq uint64, rand uint32, orig *uint32) {
	if j.fired || seq != j.f.Index {
		return
	}
	*orig ^= j.targetXor
	j.fired = true
}

// Outcome is one injection's classified effect.
type Outcome string

// The outcome taxonomy, from best (the architecture caught it) to worst
// (it silently corrupted the program's result).
const (
	// OutcomeDetectedRPC: the corrupted control transfer targeted an
	// unmapped or prohibited randomized-space address and the machine
	// raised a control violation — the paper's detection mechanism.
	OutcomeDetectedRPC Outcome = "detected-unmapped-rpc"
	// OutcomeDetectedIllegal: execution reached bytes that do not decode
	// (illegal opcode / failed fetch) and the machine faulted.
	OutcomeDetectedIllegal Outcome = "detected-illegal-instruction"
	// OutcomeCrash: the run died on any other architectural fault (divide
	// by zero, bad syscall, table-page access, simulator panic).
	OutcomeCrash Outcome = "crash"
	// OutcomeSDC: the run completed but its final state (halt status, exit
	// code, output bytes) differs from the clean reference — silent data
	// corruption.
	OutcomeSDC Outcome = "silent-data-corruption"
	// OutcomeMasked: the run completed with final state identical to the
	// reference; the fault was architecturally masked.
	OutcomeMasked Outcome = "masked"
	// OutcomeHang: the reference halted but the injected run was still
	// executing at its (generous) instruction budget — a hang or livelock.
	OutcomeHang Outcome = "hang"
)

// Outcomes returns the taxonomy in its stable report order.
func Outcomes() []Outcome {
	return []Outcome{OutcomeDetectedRPC, OutcomeDetectedIllegal, OutcomeCrash,
		OutcomeSDC, OutcomeMasked, OutcomeHang}
}

// Reference is the clean run's final state an injected run is judged
// against.
type Reference struct {
	Insts    uint64 // instructions the clean run executed
	Halted   bool   // clean run halted (vs hitting the campaign's cap)
	ExitCode uint32
	Out      []byte
}

// Budget is the injected run's instruction allowance: enough slack beyond
// the reference that legitimate detours still finish, small enough that a
// livelock is caught quickly. A reference that never halted (capped run)
// gets exactly its own length — beyond it nothing new can be learned.
func (r Reference) Budget() uint64 {
	if r.Halted {
		return 2*r.Insts + 1024
	}
	return r.Insts
}

// Classify maps one injected run's result onto the outcome taxonomy.
func Classify(res cpu.Result, err error, ref Reference) Outcome {
	if err != nil {
		if errors.Is(err, cpu.ErrControlViolation) {
			return OutcomeDetectedRPC
		}
		var f *emu.Fault
		if errors.As(err, &f) &&
			(strings.HasPrefix(f.Msg, "fetch:") || strings.HasPrefix(f.Msg, "invalid opcode")) {
			return OutcomeDetectedIllegal
		}
		return OutcomeCrash
	}
	if ref.Halted && !res.Halted {
		return OutcomeHang
	}
	if res.Halted == ref.Halted && res.ExitCode == ref.ExitCode && bytes.Equal(res.Out, ref.Out) {
		return OutcomeMasked
	}
	return OutcomeSDC
}

// Stats counts classified injections. It registers into the stats spine
// under the fault.* namespace and is the aggregation unit of campaign rows.
type Stats struct {
	Injected          uint64 `json:"injected"`
	DetectedUnmappedR uint64 `json:"detected_unmapped_rpc"`
	DetectedIllegal   uint64 `json:"detected_illegal_instruction"`
	Crashes           uint64 `json:"crashes"`
	SilentCorruptions uint64 `json:"silent_data_corruptions"`
	Masked            uint64 `json:"masked"`
	Hangs             uint64 `json:"hangs"`
}

// Register adds the counters to a registry under the fault.* namespace.
func (s *Stats) Register(r *stats.Registry) {
	f := r.Scope("fault")
	f.Counter("injected", "Fault injections executed and classified.", &s.Injected)
	f.Counter("detected.unmapped_rpc", "Injections detected as a control transfer to an unmapped/prohibited randomized address.", &s.DetectedUnmappedR)
	f.Counter("detected.illegal_instruction", "Injections detected by a failed fetch/decode or illegal opcode.", &s.DetectedIllegal)
	f.Counter("crashes", "Injections that died on another architectural fault.", &s.Crashes)
	f.Counter("sdc", "Injections that silently corrupted the final program state.", &s.SilentCorruptions)
	f.Counter("masked", "Injections whose final program state matched the clean reference.", &s.Masked)
	f.Counter("hangs", "Injections still running at the instruction budget after the reference halted.", &s.Hangs)
}

// Add counts one classified injection.
func (s *Stats) Add(o Outcome) {
	s.Injected++
	switch o {
	case OutcomeDetectedRPC:
		s.DetectedUnmappedR++
	case OutcomeDetectedIllegal:
		s.DetectedIllegal++
	case OutcomeCrash:
		s.Crashes++
	case OutcomeSDC:
		s.SilentCorruptions++
	case OutcomeMasked:
		s.Masked++
	case OutcomeHang:
		s.Hangs++
	}
}

// Merge accumulates other into s.
func (s *Stats) Merge(other Stats) {
	s.Injected += other.Injected
	s.DetectedUnmappedR += other.DetectedUnmappedR
	s.DetectedIllegal += other.DetectedIllegal
	s.Crashes += other.Crashes
	s.SilentCorruptions += other.SilentCorruptions
	s.Masked += other.Masked
	s.Hangs += other.Hangs
}

// Detected returns how many injections the architecture caught (control
// violation or illegal instruction).
func (s Stats) Detected() uint64 { return s.DetectedUnmappedR + s.DetectedIllegal }

// DetectionRate returns Detected / Injected (0 when nothing was injected).
func (s Stats) DetectionRate() float64 {
	if s.Injected == 0 {
		return 0
	}
	return float64(s.Detected()) / float64(s.Injected)
}
