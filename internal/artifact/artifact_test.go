package artifact

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/trace"
)

func TestStoreRoundtrip(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(TraceNS, "missing"); ok {
		t.Error("hit on an empty store")
	}
	want := []byte("trace bytes")
	if err := s.Put(TraceNS, "k1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Get(TraceNS, "k1")
	if !ok || !bytes.Equal(got, want) {
		t.Errorf("Get = %q, %v; want %q", got, ok, want)
	}
	// Namespaces are disjoint.
	if _, ok := s.Get(EnvelopeNS, "k1"); ok {
		t.Error("key leaked across namespaces")
	}
	// Overwrite wins.
	want2 := []byte("newer")
	if err := s.Put(TraceNS, "k1", want2); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Get(TraceNS, "k1"); !bytes.Equal(got, want2) {
		t.Errorf("overwrite lost: %q", got)
	}
	gets, hits, puts := s.Stats()
	if gets != 4 || hits != 2 || puts != 2 {
		t.Errorf("stats = %d/%d/%d, want 4 gets, 2 hits, 2 puts", gets, hits, puts)
	}
}

// TestStoreRejectsUnsafeNames pins the path-traversal guard: nothing with a
// separator, a leading dot, or an empty element touches the filesystem.
func TestStoreRejectsUnsafeNames(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "..", "../etc", "a/b", ".hidden", "a\x00b", "no spaces"} {
		if err := s.Put(bad, "k", []byte("x")); err == nil {
			t.Errorf("namespace %q accepted", bad)
		}
		if err := s.Put(TraceNS, bad, []byte("x")); err == nil {
			t.Errorf("key %q accepted", bad)
		}
		if _, ok := s.Get(TraceNS, bad); ok {
			t.Errorf("key %q readable", bad)
		}
	}
}

// TestStoreConcurrentWriters races writers of the same key; the temp-file +
// rename protocol must leave one intact value, never a torn file.
func TestStoreConcurrentWriters(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("v"), 1<<16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := s.Put(TraceNS, "contested", payload); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
	got, ok := s.Get(TraceNS, "contested")
	if !ok || !bytes.Equal(got, payload) {
		t.Errorf("contested value torn: %d bytes, ok=%v", len(got), ok)
	}
}

func TestTraceKeyNameStable(t *testing.T) {
	k := trace.Key{ImageHash: 0xdead, LayoutSeed: -1, MaxInsts: 7, Aux: 3}
	if got, want := TraceKeyName(k), TraceKeyName(k); got != want {
		t.Errorf("unstable: %q vs %q", got, want)
	}
	if TraceKeyName(k) == TraceKeyName(trace.Key{ImageHash: 0xdead, LayoutSeed: -1, MaxInsts: 8, Aux: 3}) {
		t.Error("distinct keys collide")
	}
}

// TestClientAgainstHTTPStore drives the peer client against an HTTP server
// backed by a Store — the exact wire shape vcfrd's /v1/artifacts endpoints
// speak — and checks that transport failures degrade to misses.
func TestClientAgainstHTTPStore(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/artifacts/{ns}/{key}", func(w http.ResponseWriter, r *http.Request) {
		data, ok := s.Get(r.PathValue("ns"), r.PathValue("key"))
		if !ok {
			http.NotFound(w, r)
			return
		}
		_, _ = w.Write(data)
	})
	mux.HandleFunc("PUT /v1/artifacts/{ns}/{key}", func(w http.ResponseWriter, r *http.Request) {
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.Put(r.PathValue("ns"), r.PathValue("key"), buf.Bytes()); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	c := NewClient(srv.URL)
	if _, ok := c.Get(TraceNS, "nope"); ok {
		t.Error("client hit on empty store")
	}
	want := []byte("shared trace")
	if err := c.Put(TraceNS, "t1", want); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(TraceNS, "t1")
	if !ok || !bytes.Equal(got, want) {
		t.Errorf("client Get = %q, %v", got, ok)
	}
	// The peer remote adapter sees the same bytes under the trace key form.
	k := trace.Key{ImageHash: 1, LayoutSeed: 2, MaxInsts: 3}
	PeerTraceRemote{C: c}.Store(k, want)
	if got, ok := (PeerTraceRemote{C: c}).Fetch(k); !ok || !bytes.Equal(got, want) {
		t.Errorf("peer remote roundtrip = %q, %v", got, ok)
	}

	// A dead peer is a miss, not an error the trace cache could trip on.
	srv.Close()
	if _, ok := c.Get(TraceNS, "t1"); ok {
		t.Error("dead peer answered")
	}
	if err := c.Put(TraceNS, "t2", want); err == nil {
		t.Error("Put to a dead peer reported success")
	}
}

// TestTraceRemoteInCache wires the disk store under a trace cache and
// checks the second-level flow: a fresh cache with the same backing store
// serves a previously captured trace without re-capturing (fetch returns
// leader=false, so the caller replays).
func TestTraceRemoteInCache(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := trace.NewCache(64 << 20)
	c1.SetRemote(TraceRemote{S: s1})

	k := trace.Key{ImageHash: 42, LayoutSeed: 7, MaxInsts: 0}
	captured := 0
	capture := func() (*trace.Trace, error) {
		captured++
		b := trace.NewBuilder(trace.Meta{Workload: "tiny"})
		var res cpu.Result
		res.Halted = true
		return b.Finish(res), nil
	}
	tr, leader, err := c1.Do(context.Background(), k, capture)
	if err != nil || !leader || tr == nil {
		t.Fatalf("first Do = %v, %v, %v; want a led capture", tr, leader, err)
	}
	if captured != 1 {
		t.Fatalf("captured %d times", captured)
	}
	if _, ok := s1.Get(TraceNS, TraceKeyName(k)); !ok {
		t.Fatal("capture not persisted to the artifact store")
	}

	// A brand-new cache over the same store: no capture, not a leader.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := trace.NewCache(64 << 20)
	c2.SetRemote(TraceRemote{S: s2})
	tr2, leader2, err := c2.Do(context.Background(), k, func() (*trace.Trace, error) {
		return nil, fmt.Errorf("must not capture: the store already has this trace")
	})
	if err != nil || leader2 {
		t.Fatalf("second Do = %v, %v; want a remote hit with leader=false", err, leader2)
	}
	if tr2 == nil || tr2.Len() != tr.Len() {
		t.Fatalf("remote-fetched trace = %v", tr2)
	}
}
