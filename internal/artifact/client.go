package artifact

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"vcfr/internal/trace"
)

// Client talks to a peer vcfrd's artifact endpoints
// (GET/PUT /v1/artifacts/{ns}/{key}). Like the Store it fronts, every
// failure degrades to a miss: a down peer slows the fleet, it never breaks
// it.
type Client struct {
	// Base is the peer's base URL, e.g. "http://127.0.0.1:8642".
	Base string
	// HTTP is the client to use; nil gets a dedicated client with a short
	// timeout (artifact fetches sit on the capture path — a hung peer must
	// not stall a cell longer than re-recording would).
	HTTP *http.Client
}

// NewClient returns a client for the peer at base.
func NewClient(base string) *Client {
	return &Client{
		Base: strings.TrimRight(base, "/"),
		HTTP: &http.Client{Timeout: 30 * time.Second},
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) url(ns, key string) string {
	return strings.TrimRight(c.Base, "/") + "/v1/artifacts/" + ns + "/" + key
}

// Get fetches ns/key from the peer. Any transport or HTTP failure is a
// miss.
func (c *Client) Get(ns, key string) ([]byte, bool) {
	resp, err := c.httpClient().Get(c.url(ns, key))
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return nil, false
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, false
	}
	return data, true
}

// Put uploads ns/key to the peer.
func (c *Client) Put(ns, key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.url(ns, key), bytes.NewReader(data))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("artifact put %s/%s: %s", ns, key, resp.Status)
	}
	return nil
}

// PeerTraceRemote adapts the client to trace.Remote, so a worker's trace
// cache transparently records into / replays from the coordinator's store.
type PeerTraceRemote struct{ C *Client }

// Fetch implements trace.Remote.
func (r PeerTraceRemote) Fetch(k trace.Key) ([]byte, bool) {
	return r.C.Get(TraceNS, TraceKeyName(k))
}

// Store implements trace.Remote.
func (r PeerTraceRemote) Store(k trace.Key, data []byte) {
	_ = r.C.Put(TraceNS, TraceKeyName(k), data)
}
