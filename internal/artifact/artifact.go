// Package artifact is the fleet's content-addressed blob store: a flat
// disk-backed namespace/key → bytes map that vcfrd peers share over plain
// HTTP GET/PUT. Two namespaces matter today:
//
//	traces     encoded .vxt traces keyed by the trace cache's
//	           (image hash, layout seed, mode, cap, aux) identity — the
//	           same Key that makes cells relocatable makes their traces
//	           content-addressed, so a fleet records each execution once
//	envelopes  finished results Envelopes keyed by the normalized job
//	           request, so an identical campaign resubmitted anywhere in
//	           the fleet is served from the store instead of re-run
//
// The store is an accelerator, never a correctness dependency: every error
// degrades to "not found" and the caller re-computes. Writes go through a
// temp file + rename so concurrent writers of the same key (two workers
// capturing the same trace) race benignly — both write identical bytes,
// one rename wins.
package artifact

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"

	"vcfr/internal/trace"
)

// Store is one disk-backed artifact tree: root/<namespace>/<key>. Safe for
// concurrent use.
type Store struct {
	root string

	gets, hits, puts atomic.Uint64
}

// Open creates (if needed) and opens the artifact tree rooted at dir.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("artifact store needs a directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact store: %w", err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's directory.
func (s *Store) Root() string { return s.root }

// validName reports whether a namespace or key is safe to use as a single
// path element: no separators, no traversal, nothing hidden.
func validName(name string) bool {
	if name == "" || len(name) > 200 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.':
		default:
			return false
		}
	}
	return !strings.HasPrefix(name, ".")
}

func (s *Store) path(ns, key string) (string, error) {
	if !validName(ns) || !validName(key) {
		return "", fmt.Errorf("invalid artifact name %q/%q", ns, key)
	}
	return filepath.Join(s.root, ns, key), nil
}

// Get returns the stored bytes for ns/key. Any miss or read failure is
// (nil, false).
func (s *Store) Get(ns, key string) ([]byte, bool) {
	s.gets.Add(1)
	p, err := s.path(ns, key)
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(p)
	if err != nil {
		return nil, false
	}
	s.hits.Add(1)
	return data, true
}

// Put stores data under ns/key atomically (temp file + rename), replacing
// any previous content.
func (s *Store) Put(ns, key string, data []byte) error {
	p, err := s.path(ns, key)
	if err != nil {
		return err
	}
	dir := filepath.Dir(p)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "."+key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	s.puts.Add(1)
	return nil
}

// Stats reports cumulative lookup/hit/store counts.
func (s *Store) Stats() (gets, hits, puts uint64) {
	return s.gets.Load(), s.hits.Load(), s.puts.Load()
}

// TraceNS and EnvelopeNS are the two conventional namespaces.
const (
	TraceNS    = "traces"
	EnvelopeNS = "envelopes"
)

// TraceKeyName renders a trace-cache key as a stable artifact key: the full
// content identity, hex-encoded field by field.
func TraceKeyName(k trace.Key) string {
	return fmt.Sprintf("%016x-%016x-%d-%d-%016x",
		k.ImageHash, uint64(k.LayoutSeed), int(k.Mode), k.MaxInsts, k.Aux)
}

// TraceRemote adapts the local store to the trace cache's second-level
// interface (trace.Remote): workers on one machine can share a directory
// instead of a peer URL.
type TraceRemote struct{ S *Store }

// Fetch implements trace.Remote.
func (r TraceRemote) Fetch(k trace.Key) ([]byte, bool) {
	return r.S.Get(TraceNS, TraceKeyName(k))
}

// Store implements trace.Remote.
func (r TraceRemote) Store(k trace.Key, data []byte) {
	_ = r.S.Put(TraceNS, TraceKeyName(k), data)
}
