package asm

import (
	"fmt"
	"sort"
	"strings"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// Disassemble performs a linear sweep of the image's text segment (the
// objdump role in the paper's toolchain) and returns every instruction in
// address order. The sweep tolerates zero-byte padding between instructions:
// a zero byte is skipped, anything else that fails to decode is an error.
func Disassemble(img *program.Image) ([]isa.Inst, error) {
	text := img.Text()
	if text == nil {
		return nil, fmt.Errorf("asm: image %q has no text segment", img.Name)
	}
	var out []isa.Inst
	for off := 0; off < len(text.Data); {
		if text.Data[off] == 0 {
			off++
			continue
		}
		in, err := isa.Decode(text.Data[off:], text.Addr+uint32(off))
		if err != nil {
			return nil, fmt.Errorf("asm: disassemble %q at %#x: %w",
				img.Name, text.Addr+uint32(off), err)
		}
		out = append(out, in)
		off += in.Len()
	}
	return out, nil
}

// InstMap indexes a disassembly by instruction address.
func InstMap(insts []isa.Inst) map[uint32]isa.Inst {
	m := make(map[uint32]isa.Inst, len(insts))
	for _, in := range insts {
		m[in.Addr] = in
	}
	return m
}

// Listing renders a human-readable disassembly with symbol annotations,
// one instruction per line.
func Listing(img *program.Image) (string, error) {
	insts, err := Disassemble(img)
	if err != nil {
		return "", err
	}
	symAt := make(map[uint32][]string)
	for _, s := range img.Symbols {
		symAt[s.Addr] = append(symAt[s.Addr], s.Name)
	}
	for _, names := range symAt {
		sort.Strings(names)
	}
	var b strings.Builder
	for _, in := range insts {
		for _, name := range symAt[in.Addr] {
			fmt.Fprintf(&b, "%s:\n", name)
		}
		fmt.Fprintf(&b, "  %#08x  %s\n", in.Addr, in)
	}
	return b.String(), nil
}
