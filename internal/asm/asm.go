// Package asm implements the VX toolchain front end: a two-pass assembler
// from textual assembly to a program.Image, and a linear-sweep disassembler.
//
// The assembler stands in for the compiler+linker that produced the paper's
// SPEC binaries; the disassembler plays the role of objdump. (The recursive-
// descent "IDA Pro" role — reachability from the entry point and call
// targets — lives in package cfg, which needs the control-flow worklist
// anyway.)
//
// # Syntax
//
// One statement per line; ';' starts a comment. Labels are "name:" and may
// share a line with a statement. Directives:
//
//	.text [addr]     switch to (or create) the text section, optionally at addr
//	.data [addr]     switch to the data section
//	.entry name      declare the entry label
//	.func name       declare that label `name` starts a function (symbol table)
//	.word v, ...     emit 32-bit words; a label operand emits its address
//	.addr name, ...  emit code-address words with relocations (jump tables)
//	.space n         emit n zero bytes
//	.ascii "s"       emit the bytes of s ( \n \t \\ \" \0 escapes)
//	.align n         pad with zero bytes to an n-byte boundary
//
// Instruction operands: registers r0-r15 (aliases sp, bp), immediates
// (decimal, 0x hex, 'c' character), labels, and memory operands of the form
// [reg], [reg+imm], [reg-imm], or [reg+reg].
//
// A movi whose operand is a text-section label assembles the label's address
// and records a relocation: that is how position-dependent code constants
// (function pointers for callr, jump-table bases) stay visible to the ILR
// rewriter, mirroring the relocation information the paper recovers from
// real binaries.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// Default section base addresses (overridable by directive operands).
const (
	DefaultTextBase = 0x0000_1000
	DefaultDataBase = 0x0010_0000
)

// SyntaxError describes an assembly failure with its source line.
type SyntaxError struct {
	Line int
	Msg  string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg)
}

// item is one assembled statement, sized during pass 1 and encoded in pass 2.
type item struct {
	line int
	addr uint32
	text bool // emitted into the text section

	// Exactly one of the following is active.
	inst     *instItem
	words    []wordOperand // .word / .addr
	raw      []byte        // .ascii / .space / .align padding
	isAddrTb bool          // item came from .addr: every word is a code reloc
}

// instItem is a parsed instruction whose label operands are still unresolved.
type instItem struct {
	in        isa.Inst
	targetRef string // label for jmp/jcc/call target
	immRef    string // label for movi immediate
}

// wordOperand is one operand of .word/.addr: either a constant or a label.
type wordOperand struct {
	val uint32
	ref string
}

type assembler struct {
	items  []item
	labels map[string]uint32 // name -> address (pass 1)
	inText map[string]bool   // name -> defined in text section
	funcs  map[string]bool   // names declared via .func
	entry  string

	textBase, dataBase uint32
	textSet, dataSet   bool
}

// Assemble translates VX assembly source into a validated image named name.
func Assemble(name, source string) (*program.Image, error) {
	a := &assembler{
		labels:   make(map[string]uint32),
		inText:   make(map[string]bool),
		funcs:    make(map[string]bool),
		textBase: DefaultTextBase,
		dataBase: DefaultDataBase,
	}
	if err := a.parse(source); err != nil {
		return nil, err
	}
	return a.emit(name)
}

// MustAssemble is Assemble for generated sources that are known-good by
// construction (workload generators, tests). It panics on error.
func MustAssemble(name, source string) *program.Image {
	img, err := Assemble(name, source)
	if err != nil {
		panic(err)
	}
	return img
}

func (a *assembler) errf(line int, format string, args ...any) error {
	return &SyntaxError{Line: line, Msg: fmt.Sprintf(format, args...)}
}

// parse is pass 1: split statements, compute sizes and addresses, and bind
// labels.
func (a *assembler) parse(source string) error {
	textAddr, dataAddr := a.textBase, a.dataBase
	inText := true
	addr := func() *uint32 {
		if inText {
			return &textAddr
		}
		return &dataAddr
	}

	for lineNo, rawLine := range strings.Split(source, "\n") {
		line := rawLine
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		// Peel off any leading "label:" prefixes.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			// Ignore ':' inside a character literal or string.
			if j := strings.IndexAny(line, `"'`); j >= 0 && j < i {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				return a.errf(lineNo+1, "invalid label %q", label)
			}
			if _, dup := a.labels[label]; dup {
				return a.errf(lineNo+1, "duplicate label %q", label)
			}
			a.labels[label] = *addr()
			a.inText[label] = inText
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".") {
			if err := a.parseDirective(lineNo+1, line, &inText, &textAddr, &dataAddr); err != nil {
				return err
			}
			continue
		}

		if !inText {
			return a.errf(lineNo+1, "instruction %q in data section", line)
		}
		it, err := a.parseInst(lineNo+1, line)
		if err != nil {
			return err
		}
		it.addr = textAddr
		it.text = true
		textAddr += uint32(it.inst.in.Op.Length())
		a.items = append(a.items, it)
	}
	if a.entry == "" {
		if _, ok := a.labels["main"]; ok {
			a.entry = "main"
		} else {
			return a.errf(0, "no .entry directive and no main label")
		}
	}
	return nil
}

func (a *assembler) parseDirective(line int, s string, inText *bool, textAddr, dataAddr *uint32) error {
	dir, rest, _ := strings.Cut(s, " ")
	rest = strings.TrimSpace(rest)
	addr := func() *uint32 {
		if *inText {
			return textAddr
		}
		return dataAddr
	}
	switch dir {
	case ".text", ".data":
		toText := dir == ".text"
		if rest != "" {
			v, err := parseInt(rest)
			if err != nil {
				return a.errf(line, "%s: bad address %q", dir, rest)
			}
			if toText {
				if a.textSet {
					return a.errf(line, ".text base set twice")
				}
				a.textSet, *textAddr = true, uint32(v)
				a.textBase = uint32(v)
			} else {
				if a.dataSet {
					return a.errf(line, ".data base set twice")
				}
				a.dataSet, *dataAddr = true, uint32(v)
				a.dataBase = uint32(v)
			}
		}
		*inText = toText
	case ".entry":
		if !isIdent(rest) {
			return a.errf(line, ".entry: invalid name %q", rest)
		}
		a.entry = rest
	case ".func":
		if !isIdent(rest) {
			return a.errf(line, ".func: invalid name %q", rest)
		}
		a.funcs[rest] = true
	case ".word", ".addr":
		if rest == "" {
			return a.errf(line, "%s with no operands", dir)
		}
		var ops []wordOperand
		for _, f := range strings.Split(rest, ",") {
			f = strings.TrimSpace(f)
			if isIdent(f) {
				ops = append(ops, wordOperand{ref: f})
				continue
			}
			v, err := parseInt(f)
			if err != nil {
				return a.errf(line, "%s: bad operand %q", dir, f)
			}
			ops = append(ops, wordOperand{val: uint32(v)})
		}
		if dir == ".addr" {
			for _, op := range ops {
				if op.ref == "" {
					return a.errf(line, ".addr operands must be labels")
				}
			}
		}
		a.items = append(a.items, item{
			line: line, addr: *addr(), text: *inText,
			words: ops, isAddrTb: dir == ".addr",
		})
		*addr() += uint32(4 * len(ops))
	case ".space":
		n, err := parseInt(rest)
		if err != nil || n < 0 {
			return a.errf(line, ".space: bad size %q", rest)
		}
		a.items = append(a.items, item{line: line, addr: *addr(), text: *inText, raw: make([]byte, n)})
		*addr() += uint32(n)
	case ".ascii":
		b, err := parseString(rest)
		if err != nil {
			return a.errf(line, ".ascii: %v", err)
		}
		a.items = append(a.items, item{line: line, addr: *addr(), text: *inText, raw: b})
		*addr() += uint32(len(b))
	case ".align":
		n, err := parseInt(rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return a.errf(line, ".align: bad alignment %q", rest)
		}
		pad := (uint32(n) - *addr()%uint32(n)) % uint32(n)
		if pad > 0 {
			a.items = append(a.items, item{line: line, addr: *addr(), text: *inText, raw: make([]byte, pad)})
			*addr() += pad
		}
	default:
		return a.errf(line, "unknown directive %q", dir)
	}
	return nil
}

// emit is pass 2: resolve references, encode, and build the image.
func (a *assembler) emit(name string) (*program.Image, error) {
	resolve := func(line int, ref string) (uint32, error) {
		v, ok := a.labels[ref]
		if !ok {
			return 0, a.errf(line, "undefined label %q", ref)
		}
		return v, nil
	}

	var text, data []byte
	var relocs []program.Reloc
	textAddr, dataAddr := a.textBase, a.dataBase

	for i := range a.items {
		it := &a.items[i]
		buf, cur := &data, &dataAddr
		if it.text {
			buf, cur = &text, &textAddr
		}
		if it.addr != *cur {
			return nil, a.errf(it.line, "internal: address drift (%#x vs %#x)", it.addr, *cur)
		}
		switch {
		case it.inst != nil:
			in := it.inst.in
			if ref := it.inst.targetRef; ref != "" {
				v, err := resolve(it.line, ref)
				if err != nil {
					return nil, err
				}
				if !a.inText[ref] {
					return nil, a.errf(it.line, "%s target %q is not in the text section", in.Op, ref)
				}
				in.Target = v
			}
			if ref := it.inst.immRef; ref != "" {
				v, err := resolve(it.line, ref)
				if err != nil {
					return nil, err
				}
				in.Imm = int32(v)
				if a.inText[ref] {
					// A code-address constant: record the field so the ILR
					// rewriter can retarget it.
					relocs = append(relocs, program.Reloc{Addr: it.addr + 2, InCode: true})
				}
			}
			if in.Op.HasTarget() {
				relocs = append(relocs, program.Reloc{Addr: it.addr + isa.TargetFieldOffset, InCode: true})
			}
			*buf = isa.Encode(*buf, in)
			*cur += uint32(in.Op.Length())
		case it.words != nil:
			for wi, op := range it.words {
				v := op.val
				if op.ref != "" {
					rv, err := resolve(it.line, op.ref)
					if err != nil {
						return nil, err
					}
					v = rv
					if it.isAddrTb || a.inText[op.ref] {
						if it.text {
							return nil, a.errf(it.line, "code-address words must live in the data section")
						}
						relocs = append(relocs, program.Reloc{Addr: it.addr + uint32(4*wi), InCode: false})
					}
				}
				*buf = append(*buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
			}
			*cur += uint32(4 * len(it.words))
		default:
			*buf = append(*buf, it.raw...)
			*cur += uint32(len(it.raw))
		}
	}

	entry, ok := a.labels[a.entry]
	if !ok {
		return nil, a.errf(0, "entry label %q undefined", a.entry)
	}
	if !a.inText[a.entry] {
		return nil, a.errf(0, "entry label %q is not in the text section", a.entry)
	}

	img := &program.Image{Name: name, Entry: entry}
	if len(text) == 0 {
		return nil, a.errf(0, "no instructions assembled")
	}
	img.Segments = append(img.Segments, program.Segment{
		Name: program.SegText, Addr: a.textBase, Data: text, Perm: program.PermR | program.PermX,
	})
	if len(data) > 0 {
		img.Segments = append(img.Segments, program.Segment{
			Name: program.SegData, Addr: a.dataBase, Data: data, Perm: program.PermR | program.PermW,
		})
	}
	for label, addr := range a.labels {
		img.Symbols = append(img.Symbols, program.Symbol{
			Name: label,
			Addr: addr,
			Func: a.funcs[label] || label == a.entry,
		})
	}
	img.Relocs = relocs
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("asm: assembled image invalid: %w", err)
	}
	return img, nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '.'):
		default:
			return false
		}
	}
	return true
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	if len(s) >= 3 && s[0] == '\'' && s[len(s)-1] == '\'' {
		body, err := parseString(`"` + s[1:len(s)-1] + `"`)
		if err != nil || len(body) != 1 {
			return 0, fmt.Errorf("bad character literal %q", s)
		}
		return int64(body[0]), nil
	}
	return strconv.ParseInt(s, 0, 64)
}

func parseString(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("expected quoted string, got %q", s)
	}
	body := s[1 : len(s)-1]
	out := make([]byte, 0, len(body))
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in %q", s)
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\', '"', '\'':
			out = append(out, body[i])
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}
