package asm

import (
	"strings"
	"testing"

	"vcfr/internal/emu"
)

// TestListingReassemblesEquivalently: for a code-only program, assembling
// the disassembler's listing reproduces a semantically identical program
// (same output), closing the asm -> disasm -> asm loop.
func TestListingReassemblesEquivalently(t *testing.T) {
	src := `
.entry main
main:
	movi r1, 3
	movi r2, 0
loop:
	cmpi r1, 0
	je done
	call bump
	add r2, r0
	subi r1, 1
	jmp loop
done:
	mov r1, r2
	sys 3
	movi r1, 0
	sys 0
.func bump
bump:
	movi r0, 7
	ret
`
	img := MustAssemble("orig", src)
	want, err := emu.Run(img, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		t.Fatal(err)
	}

	listing, err := Listing(img)
	if err != nil {
		t.Fatal(err)
	}
	// The listing prints "addr  inst" lines plus "label:" lines; strip the
	// addresses and feed the rest back through the assembler. Direct-target
	// operands are absolute hex (0x....) which the assembler accepts, but
	// they refer to the ORIGINAL addresses, so pin the text base.
	var b strings.Builder
	b.WriteString(".text 0x1000\n.entry main\n")
	for _, line := range strings.Split(listing, "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			if line != "main:" { // .entry already declares main
				b.WriteString(line + "\n")
			} else {
				b.WriteString(line + "\n")
			}
			continue
		}
		// "0x00001000  movi r1, 3" -> "movi r1, 3"
		fields := strings.SplitN(line, "  ", 2)
		if len(fields) == 2 {
			b.WriteString("\t" + strings.TrimSpace(fields[1]) + "\n")
		}
	}
	img2, err := Assemble("rt", b.String())
	if err != nil {
		t.Fatalf("reassemble listing: %v\nlisting source:\n%s", err, b.String())
	}
	got, err := emu.Run(img2, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	if string(got.Out) != string(want.Out) {
		t.Errorf("round-tripped output %q != original %q", got.Out, want.Out)
	}
	// Byte-for-byte identical text as well (same base, same encodings).
	if string(img2.Text().Data) != string(img.Text().Data) {
		t.Error("round-tripped text bytes differ")
	}
}

func TestParseIntForms(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"42", 42, true},
		{"-7", -7, true},
		{"0x2a", 42, true},
		{"0o17", 15, true},
		{"'a'", 'a', true},
		{"'\\n'", '\n', true},
		{"'\\0'", 0, true},
		{"''", 0, false},
		{"'ab'", 0, false},
		{"4x2", 0, false},
	}
	for _, tt := range tests {
		got, err := parseInt(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("parseInt(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if tt.ok && got != tt.want {
			t.Errorf("parseInt(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestParseStringEscapes(t *testing.T) {
	got, err := parseString(`"a\tb\nc\\d\"e\0f"`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\tb\nc\\d\"e\x00f"
	if string(got) != want {
		t.Errorf("parseString = %q, want %q", got, want)
	}
	for _, bad := range []string{`"unterminated`, `"bad\q"`, `"trailing\"`, `noquotes`} {
		if _, err := parseString(bad); err == nil {
			t.Errorf("parseString(%q) succeeded", bad)
		}
	}
}

func TestAssembleNumericJumpTarget(t *testing.T) {
	// Absolute numeric targets assemble as-is (the listing round-trip and
	// hand-written shellcode-style tests rely on it).
	img := MustAssemble("n", ".entry main\nmain:\n\tjmp 0x1000\n")
	insts, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if insts[0].Target != 0x1000 {
		t.Errorf("target = %#x", insts[0].Target)
	}
}

func TestAssembleLabelOnOwnLineAndShared(t *testing.T) {
	img := MustAssemble("l", `
.entry main
main:
a: b: nop
c:	halt
`)
	for _, name := range []string{"a", "b", "c", "main"} {
		if _, ok := img.Lookup(name); !ok {
			t.Errorf("label %q missing", name)
		}
	}
	aAddr, _ := img.Lookup("a")
	bAddr, _ := img.Lookup("b")
	if aAddr != bAddr {
		t.Error("stacked labels differ")
	}
}
