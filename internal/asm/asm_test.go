package asm

import (
	"errors"
	"strings"
	"testing"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

const helloSource = `
; tiny program: print "hi", exit 0
.text 0x1000
.entry main

.func main
main:
	movi r1, 'h'
	sys 1
	movi r1, 'i'
	sys 1
	movi r1, 0
	sys 0
	halt

.data 0x20000
greeting: .ascii "hi\n"
nums:     .word 1, 2, 0x10
table:    .addr main, main
gap:      .space 5
.align 4
aligned:  .word 7
`

func TestAssembleHello(t *testing.T) {
	img, err := Assemble("hello", helloSource)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if err := img.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if img.Entry != 0x1000 {
		t.Errorf("entry = %#x, want 0x1000", img.Entry)
	}
	insts, err := Disassemble(img)
	if err != nil {
		t.Fatalf("Disassemble: %v", err)
	}
	if len(insts) != 7 {
		t.Fatalf("got %d instructions, want 7", len(insts))
	}
	if insts[0].Op != isa.OpMovRI || insts[0].Imm != 'h' {
		t.Errorf("first inst = %v", insts[0])
	}
	if insts[6].Op != isa.OpHalt {
		t.Errorf("last inst = %v", insts[6])
	}

	// Data contents: "hi\n", then words, then the .addr table relocated.
	data := img.Seg(program.SegData)
	if data == nil {
		t.Fatal("no data segment")
	}
	if got := string(data.Data[:3]); got != "hi\n" {
		t.Errorf("ascii data = %q", got)
	}
	w, err := img.ReadWord(0x20003)
	if err != nil || w != 1 {
		t.Errorf("nums[0] = %d, %v", w, err)
	}
	addr, ok := img.Lookup("table")
	if !ok {
		t.Fatal("no table symbol")
	}
	w, err = img.ReadWord(addr)
	if err != nil || w != 0x1000 {
		t.Errorf("table[0] = %#x, %v (want main=0x1000)", w, err)
	}
	// .align 4 after 5-byte gap: aligned symbol must be 4-byte aligned.
	aaddr, ok := img.Lookup("aligned")
	if !ok || aaddr%4 != 0 {
		t.Errorf("aligned at %#x", aaddr)
	}

	// Relocations: two .addr words, and nothing else (no direct transfers).
	var dataRelocs int
	for _, r := range img.Relocs {
		if !r.InCode {
			dataRelocs++
		}
	}
	if dataRelocs != 2 {
		t.Errorf("data relocs = %d, want 2", dataRelocs)
	}
}

func TestAssembleControlFlowRelocs(t *testing.T) {
	src := `
.entry main
main:
	movi r1, helper     ; code-address constant -> reloc
	callr r1
	call helper
	cmpi r0, 10
	jne main
	ret
.func helper
helper:
	movi r0, 1
	ret
`
	img, err := Assemble("cf", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	var inCode int
	for _, r := range img.Relocs {
		if r.InCode {
			inCode++
		}
	}
	// movi imm field + call target + jne target.
	if inCode != 3 {
		t.Errorf("in-code relocs = %d, want 3", inCode)
	}
	helper, _ := img.Lookup("helper")
	insts, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	m := InstMap(insts)
	// movi must carry helper's address as an immediate.
	first := insts[0]
	if first.Op != isa.OpMovRI || uint32(first.Imm) != helper {
		t.Errorf("movi = %v, want imm %#x", first, helper)
	}
	// call must target helper.
	found := false
	for _, in := range m {
		if in.Op == isa.OpCall && in.Target == helper {
			found = true
		}
	}
	if !found {
		t.Error("no call targeting helper")
	}
}

func TestAssembleMemOperands(t *testing.T) {
	src := `
.entry main
main:
	load r1, [sp+4]
	load r2, [bp-8]
	load r3, [r4]
	load r5, [r6+r7]    ; auto-converts to loadr
	loadr r8, [r9+r10]
	store [sp+4], r1
	storer [r2+r3], r4
	storeb [r5-1], r6
	lea r7, [sp+16]
	halt
`
	img, err := Assemble("mem", src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	insts, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	wantOps := []isa.Op{
		isa.OpLoad, isa.OpLoad, isa.OpLoad, isa.OpLoadR, isa.OpLoadR,
		isa.OpStore, isa.OpStoreR, isa.OpStoreB, isa.OpLea, isa.OpHalt,
	}
	for i, want := range wantOps {
		if insts[i].Op != want {
			t.Errorf("inst %d = %s, want %s", i, insts[i].Op, want)
		}
	}
	if insts[1].Imm != -8 {
		t.Errorf("bp-8 offset = %d", insts[1].Imm)
	}
	if insts[3].Rs != 6 || insts[3].Rt != 7 {
		t.Errorf("loadr operands = %v", insts[3])
	}
}

func TestAssembleErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", ".entry m\nm: frob r1\nhalt", "unknown mnemonic"},
		{"undefined label", ".entry m\nm: jmp nowhere", "undefined label"},
		{"duplicate label", ".entry m\nm: nop\nm: halt", "duplicate label"},
		{"no entry", "nop", "no .entry"},
		{"bad register", ".entry m\nm: push r99", "not a register"},
		{"bad operand count", ".entry m\nm: add r1", "want 2 operands"},
		{"inst in data", ".entry m\nm: nop\n.data\nadd r1, r2", "in data section"},
		{"offset range", ".entry m\nm: load r1, [sp+40000]", "out of 16-bit range"},
		{"data entry", ".entry x\nnop\n.data\nx: .word 1", "not in the text"},
		{"bad directive", ".entry m\n.bogus 3\nm: halt", "unknown directive"},
		{"addr with number", ".entry m\nm: halt\n.data\n.addr 42", "must be labels"},
		{"jump to data label", ".entry m\nm: jmp d\n.data\nd: .word 0", "not in the text section"},
		{"code addr in text", ".entry m\nm: halt\n.addr m", "must live in the data section"},
		{"storeb indexed", ".entry m\nm: storeb [r1+r2], r3", "storeb does not support"},
		{"loadr with offset", ".entry m\nm: loadr r1, [r2+4]", "loadr requires"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := Assemble("bad", tt.src)
			if err == nil {
				t.Fatal("Assemble succeeded, want error")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Errorf("error %q does not contain %q", err, tt.want)
			}
		})
	}
}

func TestSyntaxErrorHasLine(t *testing.T) {
	_, err := Assemble("bad", ".entry m\nm: nop\nfrob r1\nhalt")
	var serr *SyntaxError
	if !errors.As(err, &serr) {
		t.Fatalf("error %T is not *SyntaxError", err)
	}
	if serr.Line != 3 {
		t.Errorf("line = %d, want 3", serr.Line)
	}
}

func TestRoundTripThroughListing(t *testing.T) {
	img := MustAssemble("rt", `
.entry main
main:
	movi r1, 10
loop:
	subi r1, 1
	cmpi r1, 0
	jne loop
	halt
`)
	listing, err := Listing(img)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"main:", "loop:", "movi r1, 10", "jne", "halt"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestDisassembleSkipsZeroPadding(t *testing.T) {
	img := MustAssemble("pad", ".entry m\nm: nop\n.align 8\nend: halt")
	insts, err := Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) != 2 {
		t.Fatalf("got %d instructions, want 2 (padding skipped)", len(insts))
	}
	endAddr, _ := img.Lookup("end")
	if insts[1].Addr != endAddr {
		t.Errorf("second inst at %#x, want %#x", insts[1].Addr, endAddr)
	}
}

func TestDisassembleRejectsGarbage(t *testing.T) {
	img := MustAssemble("g", ".entry m\nm: halt")
	img.Text().Data[0] = 0xfe // invalid opcode
	if _, err := Disassemble(img); err == nil {
		t.Error("Disassemble of garbage succeeded")
	}
}

func TestMustAssemblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAssemble did not panic on bad source")
		}
	}()
	MustAssemble("bad", "not valid at all")
}

func TestSplitOperands(t *testing.T) {
	tests := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"r1", []string{"r1"}},
		{"r1, r2", []string{"r1", "r2"}},
		{"r1, [sp+4]", []string{"r1", "[sp+4]"}},
		{"[r1+r2], r3", []string{"[r1+r2]", "r3"}},
	}
	for _, tt := range tests {
		got := splitOperands(tt.in)
		if len(got) != len(tt.want) {
			t.Errorf("splitOperands(%q) = %v", tt.in, got)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("splitOperands(%q)[%d] = %q, want %q", tt.in, i, got[i], tt.want[i])
			}
		}
	}
}
