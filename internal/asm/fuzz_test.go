// Fuzz target for the assembler round trip, in an external test package so
// the corpus can be seeded from internal/workloads (which imports asm).
package asm_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/workloads"
)

// FuzzAssembleListingRoundTrip checks the assembler/disassembler closure on
// arbitrary source text: whatever assembles must produce a listing that
// reassembles to byte-identical text. The ISA's encodings are fixed-width
// and canonical, so this is an equality property, not just semantic
// equivalence. The corpus is seeded with every generated workload program
// plus structured random programs — real, full-size inputs rather than
// hand-picked snippets.
func FuzzAssembleListingRoundTrip(f *testing.F) {
	elf := make(map[string]bool)
	for _, name := range workloads.ELFNames() {
		elf[name] = true
	}
	for _, name := range workloads.Names() {
		if elf[name] {
			continue // lifted binaries have no assembly source
		}
		src, err := workloads.Source(name, 1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(src)
	}
	for seed := uint32(1); seed <= 4; seed++ {
		_, src := workloads.RandomSource(seed)
		f.Add(src)
	}
	f.Add(".entry main\nmain:\n\tmovi r1, 0\n\tsys 0\n")
	f.Add(".text 0x2000\n.entry e\ne:\n\thalt\n.data\nbuf: .space 16\n")

	f.Fuzz(func(t *testing.T, src string) {
		img, err := asm.Assemble("fuzz", src)
		if err != nil {
			return // rejecting bad source is the assembler's job, not a bug
		}
		text := img.Text()
		if text == nil || len(text.Data) == 0 {
			return
		}
		listing, err := asm.Listing(img)
		if err != nil {
			t.Fatalf("valid image fails to list: %v", err)
		}

		// Rebuild source from the listing: pin the text base, strip the
		// address column, and re-declare the entry point at the line whose
		// address matches the original entry.
		var b strings.Builder
		fmt.Fprintf(&b, ".text %#x\n.entry __fuzz_entry\n", text.Addr)
		sawEntry := false
		for _, line := range strings.Split(listing, "\n") {
			line = strings.TrimSpace(line)
			if line == "" {
				continue
			}
			if strings.HasSuffix(line, ":") {
				b.WriteString(line + "\n")
				continue
			}
			fields := strings.SplitN(line, "  ", 2)
			if len(fields) != 2 {
				continue
			}
			addr, err := strconv.ParseUint(strings.TrimSpace(fields[0]), 0, 32)
			if err != nil {
				t.Fatalf("unparseable listing address in %q: %v", line, err)
			}
			if uint32(addr) == img.Entry {
				b.WriteString("__fuzz_entry:\n")
				sawEntry = true
			}
			b.WriteString("\t" + strings.TrimSpace(fields[1]) + "\n")
		}
		if !sawEntry {
			// Entry not at an instruction boundary of the listing (e.g. it
			// points into a literal): the reconstruction doesn't apply.
			return
		}
		img2, err := asm.Assemble("fuzz-rt", b.String())
		if err != nil {
			t.Fatalf("listing does not reassemble: %v\nsource:\n%s", err, b.String())
		}
		got := img2.Text()
		if got == nil {
			t.Fatal("round trip lost the text segment")
		}
		if got.Addr != text.Addr {
			t.Fatalf("text base moved: %#x -> %#x", text.Addr, got.Addr)
		}
		if string(got.Data) != string(text.Data) {
			i := 0
			for i < len(got.Data) && i < len(text.Data) && got.Data[i] == text.Data[i] {
				i++
			}
			t.Fatalf("text bytes diverge at offset %#x (lens %d vs %d)",
				i, len(text.Data), len(got.Data))
		}
	})
}
