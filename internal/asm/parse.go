package asm

import (
	"strings"

	"vcfr/internal/isa"
)

// mnemonics maps assembler mnemonics to opcodes. Operand shapes are derived
// from the opcode family in parseInst.
var mnemonics = map[string]isa.Op{
	"nop": isa.OpNop, "halt": isa.OpHalt, "ret": isa.OpRet, "sys": isa.OpSys,
	"mov": isa.OpMovRR, "movi": isa.OpMovRI,
	"add": isa.OpAdd, "sub": isa.OpSub, "and": isa.OpAnd, "or": isa.OpOr,
	"xor": isa.OpXor, "shl": isa.OpShl, "shr": isa.OpShr, "sar": isa.OpSar,
	"mul": isa.OpMul, "div": isa.OpDiv, "mod": isa.OpMod,
	"neg": isa.OpNeg, "not": isa.OpNot,
	"addi": isa.OpAddI, "subi": isa.OpSubI, "andi": isa.OpAndI,
	"ori": isa.OpOrI, "xori": isa.OpXorI,
	"shli": isa.OpShlI, "shri": isa.OpShrI, "sari": isa.OpSarI,
	"cmp": isa.OpCmp, "cmpi": isa.OpCmpI, "test": isa.OpTest,
	"load": isa.OpLoad, "store": isa.OpStore, "loadb": isa.OpLoadB,
	"storeb": isa.OpStoreB, "lea": isa.OpLea,
	"loadr": isa.OpLoadR, "storer": isa.OpStoreR,
	"push": isa.OpPush, "pop": isa.OpPop,
	"jmp": isa.OpJmp, "je": isa.OpJe, "jne": isa.OpJne, "jl": isa.OpJl,
	"jge": isa.OpJge, "jg": isa.OpJg, "jle": isa.OpJle, "jb": isa.OpJb,
	"jae": isa.OpJae, "call": isa.OpCall,
	"jmpr": isa.OpJmpR, "callr": isa.OpCallR,
}

var regNames = func() map[string]isa.Reg {
	m := map[string]isa.Reg{"sp": isa.RegSP, "bp": isa.RegBP}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		m[r.String()] = r
	}
	return m
}()

// memOperand is a parsed [reg], [reg±imm], or [reg+reg] operand.
type memOperand struct {
	base  isa.Reg
	index isa.Reg
	off   int32
	hasIx bool
}

func (a *assembler) parseInst(line int, s string) (item, error) {
	mnem, rest, _ := strings.Cut(s, " ")
	op, ok := mnemonics[mnem]
	if !ok {
		return item{}, a.errf(line, "unknown mnemonic %q", mnem)
	}
	ops := splitOperands(rest)
	ii := &instItem{in: isa.Inst{Op: op}}

	reg := func(i int) (isa.Reg, error) {
		r, ok := regNames[ops[i]]
		if !ok {
			return 0, a.errf(line, "%s: operand %d: %q is not a register", mnem, i+1, ops[i])
		}
		return r, nil
	}
	imm := func(i int) (int32, error) {
		v, err := parseInt(ops[i])
		if err != nil {
			return 0, a.errf(line, "%s: operand %d: bad immediate %q", mnem, i+1, ops[i])
		}
		return int32(v), nil
	}
	want := func(n int) error {
		if len(ops) != n {
			return a.errf(line, "%s: want %d operands, got %d", mnem, n, len(ops))
		}
		return nil
	}

	var err error
	switch op {
	case isa.OpNop, isa.OpHalt, isa.OpRet:
		err = want(0)
	case isa.OpSys:
		if err = want(1); err == nil {
			ii.in.Imm, err = imm(0)
		}
	case isa.OpMovRR, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor,
		isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpCmp, isa.OpTest:
		if err = want(2); err == nil {
			if ii.in.Rd, err = reg(0); err == nil {
				ii.in.Rs, err = reg(1)
			}
		}
	case isa.OpNeg, isa.OpNot, isa.OpPush, isa.OpPop, isa.OpJmpR, isa.OpCallR:
		if err = want(1); err == nil {
			ii.in.Rd, err = reg(0)
		}
	case isa.OpMovRI:
		if err = want(2); err == nil {
			if ii.in.Rd, err = reg(0); err == nil {
				if _, isReg := regNames[ops[1]]; isIdent(ops[1]) && !isReg {
					ii.immRef = ops[1]
				} else {
					ii.in.Imm, err = imm(1)
				}
			}
		}
	case isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI, isa.OpXorI,
		isa.OpShlI, isa.OpShrI, isa.OpSarI, isa.OpCmpI:
		if err = want(2); err == nil {
			if ii.in.Rd, err = reg(0); err == nil {
				ii.in.Imm, err = imm(1)
			}
		}
	case isa.OpLoad, isa.OpLoadB, isa.OpLea, isa.OpLoadR:
		if err = want(2); err != nil {
			break
		}
		var m memOperand
		if m, err = a.parseMem(line, mnem, ops[1]); err != nil {
			break
		}
		var rd isa.Reg
		if rd, err = reg(0); err != nil {
			break
		}
		if m.hasIx != (op == isa.OpLoadR) {
			// load with [reg+reg] silently becomes loadr; loadr with an
			// immediate offset is an error.
			if m.hasIx {
				ii.in.Op = isa.OpLoadR
				if op == isa.OpLea || op == isa.OpLoadB {
					err = a.errf(line, "%s does not support [reg+reg]", mnem)
					break
				}
			} else {
				err = a.errf(line, "loadr requires a [reg+reg] operand")
				break
			}
		}
		ii.in.Rd, ii.in.Rs, ii.in.Rt, ii.in.Imm = rd, m.base, m.index, m.off
	case isa.OpStore, isa.OpStoreB, isa.OpStoreR:
		if err = want(2); err != nil {
			break
		}
		var m memOperand
		if m, err = a.parseMem(line, mnem, ops[0]); err != nil {
			break
		}
		rs, ok := regNames[ops[1]]
		if !ok {
			err = a.errf(line, "%s: source %q is not a register", mnem, ops[1])
			break
		}
		if m.hasIx != (op == isa.OpStoreR) {
			if m.hasIx {
				if op == isa.OpStoreB {
					err = a.errf(line, "storeb does not support [reg+reg]")
					break
				}
				ii.in.Op = isa.OpStoreR
			} else {
				err = a.errf(line, "storer requires a [reg+reg] operand")
				break
			}
		}
		ii.in.Rd, ii.in.Rs, ii.in.Rt, ii.in.Imm = m.base, rs, m.index, m.off
	case isa.OpJmp, isa.OpJe, isa.OpJne, isa.OpJl, isa.OpJge, isa.OpJg,
		isa.OpJle, isa.OpJb, isa.OpJae, isa.OpCall:
		if err = want(1); err != nil {
			break
		}
		if isIdent(ops[0]) {
			ii.targetRef = ops[0]
		} else {
			var v int32
			if v, err = imm(0); err == nil {
				ii.in.Target = uint32(v)
			}
		}
	}
	if err != nil {
		return item{}, err
	}
	return item{line: line, inst: ii}, nil
}

func (a *assembler) parseMem(line int, mnem, s string) (memOperand, error) {
	if len(s) < 2 || s[0] != '[' || s[len(s)-1] != ']' {
		return memOperand{}, a.errf(line, "%s: expected memory operand, got %q", mnem, s)
	}
	body := strings.TrimSpace(s[1 : len(s)-1])
	// Find a +/- separator that is not the leading sign.
	sep := -1
	for i := 1; i < len(body); i++ {
		if body[i] == '+' || body[i] == '-' {
			sep = i
			break
		}
	}
	baseStr, rest := body, ""
	if sep >= 0 {
		baseStr = strings.TrimSpace(body[:sep])
		rest = strings.TrimSpace(body[sep:])
	}
	base, ok := regNames[baseStr]
	if !ok {
		return memOperand{}, a.errf(line, "%s: base %q is not a register", mnem, baseStr)
	}
	m := memOperand{base: base}
	if rest == "" {
		return m, nil
	}
	if ix, ok := regNames[strings.TrimSpace(strings.TrimPrefix(rest, "+"))]; ok {
		if strings.HasPrefix(rest, "-") {
			return memOperand{}, a.errf(line, "%s: negative index register in %q", mnem, s)
		}
		m.index, m.hasIx = ix, true
		return m, nil
	}
	v, err := parseInt(rest)
	if err != nil {
		return memOperand{}, a.errf(line, "%s: bad offset %q", mnem, rest)
	}
	if v < -32768 || v > 32767 {
		return memOperand{}, a.errf(line, "%s: offset %d out of 16-bit range", mnem, v)
	}
	m.off = int32(v)
	return m, nil
}

// splitOperands splits "r1, [sp+4]" into {"r1", "[sp+4]"} while keeping
// bracketed operands intact.
func splitOperands(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}
