package fleet

import (
	"fmt"
	"strings"

	"vcfr/internal/harness"
	"vcfr/internal/results"
)

// This file reassembles per-workload shard envelopes into the document the
// single process would have emitted. The rules that make the merge
// byte-exact:
//
//   - Rows concatenate in canonical workload order (the order the shards
//     were planned in), which is exactly the order the single-process
//     planner emits.
//   - Headers are position-independent: every shard ran with the same
//     request, so the first shard's header is the job's header once its
//     one-workload list is widened back to the full list.
//   - Campaign totals are summed field-wise from the shard totals. The wire
//     rows don't carry enough to recompute them (fault rows fold sub-row
//     state the envelope drops), but totals are themselves field-wise sums
//     over disjoint row sets, so addition commutes with sharding.
//   - Attack per-mode summaries are recomputed over the merged rows with
//     the exact arithmetic attack.Report.Summaries uses; Go's
//     shortest-representation float formatting makes the re-derived means
//     marshal to identical bytes.
//   - The merged body goes back through results.NewSweep / NewCampaign /
//     NewAttack and results.Marshal — the same single serialization path
//     every other producer uses.

// mergeSweep concatenates shard sweep rows in shard order. A permanently
// failed shard degrades to the same shape a failed cell has in a
// single-process sweep: one error row for the workload, Partial derived by
// results.NewSweep.
func mergeSweep(seed int64, shards []shardResult) ([]byte, error) {
	var rows []results.Run
	for _, sh := range shards {
		if sh.err != nil {
			rows = append(rows, results.Run{
				Workload: sh.workload,
				Seed:     harness.CellSeed(seed, "stats", sh.workload),
				Error:    firstLine(sh.err.Error()),
			})
			continue
		}
		env, err := results.Unmarshal(sh.body)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", sh.workload, err)
		}
		if env.Sweep == nil {
			return nil, fmt.Errorf("shard %s: envelope kind %q is not a sweep", sh.workload, env.Kind)
		}
		rows = append(rows, env.Sweep.Rows...)
	}
	return results.Marshal(results.NewSweep(rows))
}

// mergeCampaign reassembles a fault-injection coverage table. Campaign
// shards have no graceful per-row degradation (rows are (workload, mode,
// fault) cells the coordinator can't enumerate without the fault model's
// planner), so a permanently failed shard fails the job.
func mergeCampaign(names []string, shards []shardResult) ([]byte, error) {
	docs := make([]*results.Campaign, len(shards))
	for i, sh := range shards {
		if sh.err != nil {
			return nil, fmt.Errorf("fleet: shard %s failed permanently: %w", sh.workload, sh.err)
		}
		env, err := results.Unmarshal(sh.body)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", sh.workload, err)
		}
		if env.Campaign == nil {
			return nil, fmt.Errorf("shard %s: envelope kind %q is not a campaign", sh.workload, env.Kind)
		}
		docs[i] = env.Campaign
	}
	out := *docs[0]
	out.Workloads = names
	out.Rows = nil
	out.Totals = results.CampaignCounts{}
	out.Partial = false
	for _, d := range docs {
		out.Rows = append(out.Rows, d.Rows...)
		addCampaignCounts(&out.Totals, d.Totals)
	}
	return results.Marshal(results.NewCampaign(out))
}

func addCampaignCounts(dst *results.CampaignCounts, src results.CampaignCounts) {
	dst.Injected += src.Injected
	dst.DetectedUnmappedRPC += src.DetectedUnmappedRPC
	dst.DetectedIllegal += src.DetectedIllegal
	dst.Crashes += src.Crashes
	dst.SDC += src.SDC
	dst.Masked += src.Masked
	dst.Hangs += src.Hangs
}

// mergeAttack reassembles a work-factor table: rows concatenate, totals sum,
// and the per-mode summaries are recomputed over the merged rows (means
// don't shard; the underlying integer sums do).
func mergeAttack(names []string, shards []shardResult) ([]byte, error) {
	docs := make([]*results.Attack, len(shards))
	for i, sh := range shards {
		if sh.err != nil {
			return nil, fmt.Errorf("fleet: shard %s failed permanently: %w", sh.workload, sh.err)
		}
		env, err := results.Unmarshal(sh.body)
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", sh.workload, err)
		}
		if env.Attack == nil {
			return nil, fmt.Errorf("shard %s: envelope kind %q is not an attack campaign", sh.workload, env.Kind)
		}
		docs[i] = env.Attack
	}
	out := *docs[0]
	out.Workloads = names
	out.Rows = nil
	out.Totals = results.AttackCounts{}
	out.Partial = false
	for _, d := range docs {
		out.Rows = append(out.Rows, d.Rows...)
		addAttackCounts(&out.Totals, d.Totals)
	}
	out.Summaries = attackSummaries(out.Modes, out.Rows)
	return results.Marshal(results.NewAttack(out))
}

func addAttackCounts(dst *results.AttackCounts, src results.AttackCounts) {
	dst.ChainsBuilt += src.ChainsBuilt
	dst.ChainsFired += src.ChainsFired
	dst.Successes += src.Successes
	dst.BlockedRPC += src.BlockedRPC
	dst.BlockedIllegal += src.BlockedIllegal
	dst.Crashes += src.Crashes
	dst.NoEffect += src.NoEffect
	dst.Leaks += src.Leaks
	dst.CodePages += src.CodePages
	dst.MapPages += src.MapPages
	dst.Rerandomizations += src.Rerandomizations
}

// attackSummaries is attack.Report.Summaries transposed onto the wire types:
// per mode in header order, aggregated over non-error rows, with the same
// guarded divisions.
func attackSummaries(modes []string, rows []results.AttackRow) []results.AttackModeSummary {
	// Starts nil, like the single-process envelope builder, so an empty
	// summary list marshals identically.
	var out []results.AttackModeSummary
	for _, m := range modes {
		s := results.AttackModeSummary{Mode: m}
		var leakSum, rleakSum int
		for _, r := range rows {
			if r.Mode != m || r.Error != "" {
				continue
			}
			s.Cells++
			if r.Static.Outcome == "success" {
				s.StaticSuccesses++
			}
			if r.Plain.Success {
				s.Successes++
				leakSum += r.Plain.Leaks
			}
			if r.Plain.WithinBudget {
				s.WithinBudget++
			}
			if r.Rerand != nil && r.Rerand.Success {
				s.RerandSuccesses++
				rleakSum += r.Rerand.Leaks
			}
		}
		if s.Cells > 0 {
			s.SuccessRate = float64(s.WithinBudget) / float64(s.Cells)
		}
		if s.Successes > 0 {
			s.MeanLeaks = float64(leakSum) / float64(s.Successes)
		}
		if s.RerandSuccesses > 0 {
			s.MeanRerandLeaks = float64(rleakSum) / float64(s.RerandSuccesses)
		}
		out = append(out, s)
	}
	return out
}

// envelopePartial reports whether a shard envelope is marked partial (or,
// for run envelopes, carries an error row) — a shard the merge must refuse.
func envelopePartial(body []byte) (bool, error) {
	env, err := results.Unmarshal(body)
	if err != nil {
		return false, err
	}
	switch {
	case env.Sweep != nil:
		return env.Sweep.Partial, nil
	case env.Campaign != nil:
		return env.Campaign.Partial, nil
	case env.Attack != nil:
		return env.Attack.Partial, nil
	case env.Multicore != nil:
		return env.Multicore.Partial, nil
	default:
		for _, r := range env.Run {
			if r.Failed() {
				return true, nil
			}
		}
		return false, nil
	}
}

// firstLine truncates an error to its first line, matching the error-row
// convention of the single-process sweep.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
