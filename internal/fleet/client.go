// Package fleet is vcfrd's distributed tier: a Coordinator that splits
// sweep and campaign jobs into per-workload shards, dispatches them to N
// worker vcfrd backends over the unified /v1/jobs API, retries failed
// shards on surviving backends, and merges the shard envelopes back into
// the exact bytes single-process execution would have produced.
//
// Two properties of the existing system make this correct:
//
//   - Per-cell derived seeds (harness.CellSeed) are functions of the
//     campaign seed and the cell's own coordinates, never of which process
//     runs the cell — so a workload's rows are byte-identical wherever
//     (and however often) they execute. Shards are relocatable and
//     re-execution after a worker death is byte-safe.
//   - Every surface serializes through results.Marshal, so merging at the
//     envelope level (concatenate rows in canonical order, re-derive the
//     aggregates with the same arithmetic) reproduces the single-process
//     document byte for byte. The coordinator returns marshaled bytes, and
//     the server stores them verbatim.
package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"vcfr/internal/harness"
	"vcfr/internal/server"
)

// Client drives one vcfrd backend through the unified job API: submit,
// stream progress, fetch the result envelope.
type Client struct {
	// Base is the backend's base URL, e.g. "http://127.0.0.1:8643".
	Base string
	// HTTP is the transport; nil means http.DefaultClient. Give it no
	// global timeout — the event stream of a long campaign is expected to
	// stay open; pass deadlines through ctx instead.
	HTTP *http.Client
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// Submit posts one job and returns its id. Any non-202 answer is an error
// carrying the backend's error envelope text.
func (c *Client) Submit(ctx context.Context, kind server.JobKind, req server.SimRequest) (string, error) {
	body, err := json.Marshal(server.JobRequest{Kind: string(kind), SimRequest: req})
	if err != nil {
		return "", err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(c.Base, "/")+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	if resp.StatusCode != http.StatusAccepted {
		return "", fmt.Errorf("submit: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	var acc struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(data, &acc); err != nil || acc.ID == "" {
		return "", fmt.Errorf("submit: bad 202 body %q", data)
	}
	return acc.ID, nil
}

// Wait follows the job's event stream until it terminates: progress events
// are forwarded to the sink (when non-nil), "done" returns nil, "failed"
// returns the job's error, and a broken stream (worker death mid-campaign)
// returns the transport error so the caller can retry the shard elsewhere.
func (c *Client) Wait(ctx context.Context, id string, progress func(harness.Progress)) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.Base, "/")+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return fmt.Errorf("events: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	event := ""
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			switch event {
			case "progress":
				if progress != nil {
					var p harness.Progress
					if json.Unmarshal(data, &p) == nil {
						progress(p)
					}
				}
			case "done":
				return nil
			case "failed":
				var t struct {
					Error string `json:"error"`
				}
				_ = json.Unmarshal(data, &t)
				if t.Error == "" {
					t.Error = "job failed"
				}
				return fmt.Errorf("backend job %s failed: %s", id, t.Error)
			}
			event, data = "", nil
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = append(data, strings.TrimPrefix(line, "data: ")...)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("event stream broke: %w", err)
	}
	return fmt.Errorf("event stream ended without a terminal event")
}

// Result fetches the finished job's envelope bytes, exactly as the backend
// stored them.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(c.Base, "/")+"/v1/jobs/"+id+"/result", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("result: %s: %s", resp.Status, strings.TrimSpace(string(data)))
	}
	return data, nil
}
