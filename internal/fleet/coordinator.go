package fleet

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"vcfr/internal/attack"
	"vcfr/internal/fault"
	"vcfr/internal/harness"
	"vcfr/internal/server"
	"vcfr/internal/workloads"
)

// Coordinator shards jobs across a fleet of worker vcfrd backends. Plug
// Execute into server.Config.Executor and the coordinator's own /v1/jobs
// surface becomes fleet-backed while staying wire-compatible with a
// single-process vcfrd: same routes, same envelopes, same bytes.
type Coordinator struct {
	// Backends are worker base URLs ("http://host:port"). At least one.
	Backends []string
	// HTTP is the transport shared by all backend conversations; nil means
	// a fresh timeout-free client (event streams stay open for the length
	// of a campaign, so no global timeout — deadlines arrive via ctx).
	HTTP *http.Client
	// Attempts bounds how many backends a single shard tries before giving
	// up; 0 means three passes over the fleet.
	Attempts int
	// Backoff is the base delay between a shard's attempts; 0 means 100ms.
	// The delay grows linearly with the attempt number.
	Backoff time.Duration

	rr atomic.Uint64 // round-robin origin so shards spread over the fleet
}

// New returns a Coordinator over the given worker backends.
func New(backends []string) *Coordinator {
	return &Coordinator{Backends: backends, HTTP: &http.Client{}}
}

// Execute is the fleet implementation of server.Config.Executor: it shards
// the job per workload, dispatches the shards concurrently, retries failures
// on surviving backends, and merges the shard envelopes into the bytes
// single-process execution would have produced.
func (co *Coordinator) Execute(ctx context.Context, kind server.JobKind, req server.SimRequest, progress func(harness.Progress)) ([]byte, error) {
	if len(co.Backends) == 0 {
		return nil, errors.New("fleet: no backends configured")
	}
	switch kind {
	case server.JobRun, server.JobMulticore:
		// A single run is one indivisible cell, and a multicore campaign's
		// cells each co-run the whole tenant mix — neither shards by
		// workload. Proxy the job whole to one backend (retrying elsewhere
		// on failure) and return the result bytes verbatim.
		return co.runShard(ctx, kind, req, progress)
	case server.JobSweep, server.JobFaults, server.JobAttacks:
		return co.executeSharded(ctx, kind, req, progress)
	default:
		return nil, fmt.Errorf("fleet: unknown job kind %q", kind)
	}
}

// shardWorkloads reproduces the workload-list defaulting of the single
// process path: the request's explicit list, else the kind's canonical
// default set. The merged envelope's header carries exactly this list, in
// this order.
func shardWorkloads(kind server.JobKind, req server.SimRequest) []string {
	if len(req.Workloads) > 0 {
		return append([]string(nil), req.Workloads...)
	}
	switch kind {
	case server.JobSweep:
		return append([]string(nil), workloads.SpecNames...)
	case server.JobAttacks:
		return attack.DefaultWorkloads()
	default:
		return fault.DefaultWorkloads()
	}
}

// shardResult is one per-workload shard's terminal state.
type shardResult struct {
	workload string
	body     []byte
	err      error
}

// executeSharded fans a sweep or campaign out one-shard-per-workload and
// merges. Per-cell seeds derive from the campaign seed and the workload
// name, so a shard computes exactly the rows the full job would have
// computed for that workload — wherever it lands and however often it
// re-runs after a worker death.
func (co *Coordinator) executeSharded(ctx context.Context, kind server.JobKind, req server.SimRequest, progress func(harness.Progress)) ([]byte, error) {
	names := shardWorkloads(kind, req)
	shards := make([]shardResult, len(names))
	agg := newProgressAgg(len(names), progress)
	var wg sync.WaitGroup
	for i, w := range names {
		wg.Add(1)
		go func(i int, w string) {
			defer wg.Done()
			sreq := req
			sreq.Workloads = []string{w}
			body, err := co.runShard(ctx, kind, sreq, agg.shard(i))
			shards[i] = shardResult{workload: w, body: body, err: err}
		}(i, w)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	switch kind {
	case server.JobSweep:
		return mergeSweep(*req.Seed, shards)
	case server.JobFaults:
		return mergeCampaign(names, shards)
	default:
		return mergeAttack(names, shards)
	}
}

// runShard executes one shard to completion on some backend: submit, follow
// the event stream, fetch the envelope. Failures (worker death, refusal,
// partial result) rotate to the next backend with a short growing backoff
// until the attempt budget runs out.
func (co *Coordinator) runShard(ctx context.Context, kind server.JobKind, req server.SimRequest, sink func(harness.Progress)) ([]byte, error) {
	n := len(co.Backends)
	attempts := co.Attempts
	if attempts <= 0 {
		attempts = 3 * n
	}
	start := int(co.rr.Add(1)-1) % n
	var lastErr error
	for a := 0; a < attempts; a++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		base := co.Backends[(start+a)%n]
		body, err := co.runOn(ctx, base, kind, req, sink)
		if err == nil {
			return body, nil
		}
		lastErr = fmt.Errorf("%s: %w", base, err)
		if a < attempts-1 {
			select {
			case <-time.After(co.backoff(a)):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return nil, fmt.Errorf("fleet: shard failed on all backends after %d attempts: %w", attempts, lastErr)
}

func (co *Coordinator) backoff(attempt int) time.Duration {
	base := co.Backoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	return base * time.Duration(attempt+1)
}

// runOn runs one shard attempt against one backend. A partial envelope (the
// worker was draining or timed out mid-shard) counts as a failure: merging
// it would silently diverge from the single-process bytes, so the shard
// retries whole instead.
func (co *Coordinator) runOn(ctx context.Context, base string, kind server.JobKind, req server.SimRequest, sink func(harness.Progress)) ([]byte, error) {
	c := &Client{Base: base, HTTP: co.HTTP}
	id, err := c.Submit(ctx, kind, req)
	if err != nil {
		return nil, err
	}
	if err := c.Wait(ctx, id, sink); err != nil {
		return nil, err
	}
	body, err := c.Result(ctx, id)
	if err != nil {
		return nil, err
	}
	if partial, err := envelopePartial(body); err != nil {
		return nil, err
	} else if partial {
		return nil, fmt.Errorf("backend returned a partial envelope for job %s", id)
	}
	return body, nil
}

// progressAgg folds per-shard progress into one fleet-wide cumulative view:
// each shard overwrites its own slot, the sink sees the sums. A retried
// shard restarts its slot from the new attempt's numbers, so the aggregate
// can briefly step backwards after a worker death — progress is
// informational, the envelope is the contract.
type progressAgg struct {
	mu   sync.Mutex
	per  []harness.Progress
	sink func(harness.Progress)
}

func newProgressAgg(n int, sink func(harness.Progress)) *progressAgg {
	return &progressAgg{per: make([]harness.Progress, n), sink: sink}
}

func (a *progressAgg) shard(i int) func(harness.Progress) {
	if a.sink == nil {
		return nil
	}
	return func(p harness.Progress) {
		a.mu.Lock()
		a.per[i] = p
		var tot harness.Progress
		for _, q := range a.per {
			tot.CellsDone += q.CellsDone
			tot.CellsTotal += q.CellsTotal
			tot.Instructions += q.Instructions
		}
		a.mu.Unlock()
		a.sink(tot)
	}
}
