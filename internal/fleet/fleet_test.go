package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"vcfr/internal/harness"
	"vcfr/internal/server"
	"vcfr/internal/trace"
)

// startNode boots one vcfrd instance on an ephemeral port — a worker when
// exec is nil, a coordinator when exec is the fleet executor — and returns
// it with its base URL.
func startNode(t *testing.T, exec func(context.Context, server.JobKind, server.SimRequest, func(harness.Progress)) ([]byte, error)) (*server.Server, string) {
	t.Helper()
	r := harness.NewRunner(0)
	r.Traces = trace.NewCache(64 << 20)
	s := server.New(server.Config{
		Addr:       "127.0.0.1:0",
		Workers:    2,
		QueueDepth: 32,
		JobTimeout: 2 * time.Minute,
		Runner:     r,
		Executor:   exec,
	})
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s, "http://" + s.Addr()
}

// runVia submits one job to a node through the unified API, waits it out,
// and returns the stored envelope bytes.
func runVia(t *testing.T, url string, kind server.JobKind, req server.SimRequest, sink func(harness.Progress)) []byte {
	t.Helper()
	c := &Client{Base: url}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	id, err := c.Submit(ctx, kind, req)
	if err != nil {
		t.Fatalf("submit %s to %s: %v", kind, url, err)
	}
	if err := c.Wait(ctx, id, sink); err != nil {
		t.Fatalf("wait %s: %v", kind, err)
	}
	body, err := c.Result(ctx, id)
	if err != nil {
		t.Fatalf("result %s: %v", kind, err)
	}
	return body
}

// fleetRequests are the job shapes the byte-identity tests shard: small
// enough to finish quickly, big enough that every kind covers multiple
// workloads (so the merge really concatenates).
func fleetRequests() map[server.JobKind]server.SimRequest {
	return map[server.JobKind]server.SimRequest{
		server.JobRun: {Workload: "bzip2", Mode: "all", Instructions: 5000},
		server.JobSweep: {
			Workloads: []string{"bzip2", "sjeng", "xalan"}, Instructions: 5000,
		},
		server.JobFaults: {
			Workloads: []string{"bzip2", "sjeng", "xalan"}, Mode: "all",
			Injections: 4, Instructions: 5000,
		},
		server.JobAttacks: {
			Workloads: []string{"bzip2", "sjeng", "xalan"}, Mode: "all",
			MaxLeaks: 4, AdvanceInsts: 500, Instructions: 5000,
		},
		server.JobMulticore: {
			Workloads: []string{"bzip2", "sjeng"}, Mode: "all",
			Cells: []string{"1c2t"}, Quantum: 1000, Instructions: 5000,
		},
	}
}

// TestFleetMatchesSingleProcess is the tentpole acceptance test: every job
// kind, submitted to a 1-coordinator + 2-worker fleet, must produce result
// bytes identical to the same request on a single-process vcfrd.
func TestFleetMatchesSingleProcess(t *testing.T) {
	_, single := startNode(t, nil)
	_, w1 := startNode(t, nil)
	_, w2 := startNode(t, nil)
	co := New([]string{w1, w2})
	_, coord := startNode(t, co.Execute)

	for kind, req := range fleetRequests() {
		t.Run(string(kind), func(t *testing.T) {
			want := runVia(t, single, kind, req, nil)
			var got []byte
			gotProgress := false
			got = runVia(t, coord, kind, req, func(harness.Progress) { gotProgress = true })
			if string(got) != string(want) {
				t.Errorf("fleet result differs from single process:\n--- fleet ---\n%.400s\n--- single ---\n%.400s", got, want)
			}
			if kind != server.JobRun && !gotProgress {
				t.Error("coordinator forwarded no progress events")
			}
		})
	}
}

// TestFleetSurvivesWorkerDeath kills one of two workers the moment the
// campaign reports progress; the coordinator must retry the dead worker's
// shards on the survivor and still deliver bytes identical to
// single-process execution.
func TestFleetSurvivesWorkerDeath(t *testing.T) {
	_, single := startNode(t, nil)
	victim, w1 := startNode(t, nil)
	_, w2 := startNode(t, nil)
	co := New([]string{w1, w2})
	co.Backoff = 10 * time.Millisecond
	_, coord := startNode(t, co.Execute)

	req := server.SimRequest{
		Workloads: []string{"bzip2", "sjeng", "xalan"}, Mode: "all",
		Injections: 8, Instructions: 20000,
	}
	want := runVia(t, single, server.JobFaults, req, nil)

	var once sync.Once
	got := runVia(t, coord, server.JobFaults, req, func(harness.Progress) {
		// First sign of life from the fleet: pull the plug on worker 1.
		// Close drops its listener and every open event stream; shards it
		// was running must be re-dispatched to worker 2.
		once.Do(func() { _ = victim.Close() })
	})
	if string(got) != string(want) {
		t.Errorf("post-failover result differs from single process:\n--- fleet ---\n%.400s\n--- single ---\n%.400s", got, want)
	}
}

// TestFleetDegradesSweepShards pins the sweep merge's graceful path: with
// every backend dead, a sweep job still answers — each workload degrades to
// the same error-row shape a failed cell has in a single-process sweep.
func TestFleetDegradesSweepShards(t *testing.T) {
	dead, deadURL := startNode(t, nil)
	_ = dead.Close()
	co := New([]string{deadURL})
	co.Attempts = 2
	co.Backoff = time.Millisecond

	seed := int64(42)
	req := server.SimRequest{Workloads: []string{"bzip2", "sjeng"}, Seed: &seed}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	body, err := co.Execute(ctx, server.JobSweep, req, nil)
	if err != nil {
		t.Fatalf("sweep over a dead fleet should degrade, not fail: %v", err)
	}
	var env struct {
		Kind  string `json:"kind"`
		Sweep struct {
			Rows []struct {
				Workload string `json:"workload"`
				Seed     int64  `json:"seed"`
				Error    string `json:"error"`
			} `json:"rows"`
			Partial bool `json:"partial"`
		} `json:"sweep"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if !env.Sweep.Partial || len(env.Sweep.Rows) != 2 {
		t.Fatalf("degraded sweep = partial=%v rows=%d, want partial with 2 error rows", env.Sweep.Partial, len(env.Sweep.Rows))
	}
	for i, w := range []string{"bzip2", "sjeng"} {
		r := env.Sweep.Rows[i]
		if r.Workload != w || r.Error == "" {
			t.Errorf("row %d = %+v, want error row for %s", i, r, w)
		}
		if r.Seed != harness.CellSeed(seed, "stats", w) {
			t.Errorf("row %d seed = %d, want the derived cell seed %d", i, r.Seed, harness.CellSeed(seed, "stats", w))
		}
	}

	// Campaigns have no per-row degradation: the job must fail loudly.
	if _, err := co.Execute(ctx, server.JobFaults, server.SimRequest{Workloads: []string{"bzip2"}}, nil); err == nil {
		t.Error("faults campaign over a dead fleet returned success")
	}
}

// TestCoordinatorAliasRoutes drives a coordinator through a deprecated
// alias, proving the fleet executor sits behind every submission path, not
// just /v1/jobs.
func TestCoordinatorAliasRoutes(t *testing.T) {
	_, single := startNode(t, nil)
	_, w1 := startNode(t, nil)
	co := New([]string{w1})
	coordSrv, _ := startNode(t, co.Execute)

	body := `{"workloads": ["bzip2"], "mode": "vcfr", "injections": 4, "instructions": 5000}`
	resp, err := http.Post("http://"+coordSrv.Addr()+"/v1/faults", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("alias submit: %d", resp.StatusCode)
	}
	var acc struct{ ID string }
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	c := &Client{Base: "http://" + coordSrv.Addr()}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := c.Wait(ctx, acc.ID, nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.Result(ctx, acc.ID)
	if err != nil {
		t.Fatal(err)
	}

	var req server.SimRequest
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	want := runVia(t, single, server.JobFaults, req, nil)
	if string(got) != string(want) {
		t.Errorf("alias-submitted fleet campaign differs from single process:\n--- fleet ---\n%.400s\n--- single ---\n%.400s", got, want)
	}
}

// TestShardWorkloadDefaults pins the coordinator's shard plan to the
// single-process default workload lists — the merge's canonical order.
func TestShardWorkloadDefaults(t *testing.T) {
	if got := shardWorkloads(server.JobFaults, server.SimRequest{}); len(got) != 3 {
		t.Errorf("faults default shards = %v", got)
	}
	if got := shardWorkloads(server.JobSweep, server.SimRequest{}); len(got) != 11 {
		t.Errorf("sweep default shards = %v (want the 11 SPEC analogs)", got)
	}
	want := []string{"xalan", "bzip2"}
	got := shardWorkloads(server.JobAttacks, server.SimRequest{Workloads: want})
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("explicit workloads not preserved in order: %v", got)
	}
}
