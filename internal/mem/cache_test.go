package mem

import "testing"

// flat is a constant-latency terminal level for cache unit tests.
type flat struct {
	latency  int
	accesses uint64
	writes   uint64
}

func (f *flat) Access(addr uint32, write bool) int {
	f.accesses++
	if write {
		f.writes++
	}
	return f.latency
}
func (f *flat) Name() string { return "flat" }

func smallCache(t *testing.T, next Level) *Cache {
	t.Helper()
	// 2 sets x 2 ways x 64B lines = 256 bytes.
	c, err := NewCache(CacheConfig{Name: "t", Size: 256, Assoc: 2, LineSize: 64, Latency: 2}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheConfigValidate(t *testing.T) {
	bad := []CacheConfig{
		{Name: "zero"},
		{Name: "odd-line", Size: 256, Assoc: 2, LineSize: 48, Latency: 1},
		{Name: "indivisible", Size: 250, Assoc: 2, LineSize: 64, Latency: 1},
		{Name: "sets-not-pow2", Size: 3 * 128, Assoc: 2, LineSize: 64, Latency: 1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", cfg.Name, cfg)
		}
	}
	if _, err := NewCache(CacheConfig{Name: "n", Size: 256, Assoc: 2, LineSize: 64, Latency: 1}, nil); err == nil {
		t.Error("NewCache accepted nil next level")
	}
}

func TestCacheHitMiss(t *testing.T) {
	next := &flat{latency: 10}
	c := smallCache(t, next)
	if lat := c.Access(0x100, false); lat != 12 {
		t.Errorf("cold miss latency = %d, want 2+10", lat)
	}
	if lat := c.Access(0x104, false); lat != 2 {
		t.Errorf("same-line hit latency = %d, want 2", lat)
	}
	s := c.Stats()
	if s.Accesses != 2 || s.Misses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if got := s.MissRate(); got != 0.5 {
		t.Errorf("miss rate = %v", got)
	}
	if !c.Contains(0x100) || c.Contains(0x200) {
		t.Error("Contains wrong")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	next := &flat{latency: 10}
	c := smallCache(t, next)
	// Set 0 holds lines with (addr>>6)&1 == 0: 0x000, 0x080, 0x100, ...
	c.Access(0x000, false)
	c.Access(0x080, false) // set 0 now full
	c.Access(0x000, false) // touch 0x000: 0x080 is LRU
	c.Access(0x100, false) // evicts 0x080
	if !c.Contains(0x000) {
		t.Error("MRU line evicted")
	}
	if c.Contains(0x080) {
		t.Error("LRU line survived")
	}
	if c.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", c.Stats().Evictions)
	}
}

func TestCacheWriteback(t *testing.T) {
	next := &flat{latency: 10}
	c := smallCache(t, next)
	c.Access(0x000, true) // dirty
	c.Access(0x080, false)
	c.Access(0x100, false) // evicts dirty 0x000 -> writeback
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d, want 1", s.Writebacks)
	}
	if next.writes != 1 {
		t.Errorf("next-level writes = %d, want 1", next.writes)
	}
	// Clean eviction: no writeback.
	c.Access(0x180, false) // evicts clean 0x080
	if c.Stats().Writebacks != 1 {
		t.Error("clean eviction caused writeback")
	}
}

func TestCachePrefetch(t *testing.T) {
	next := &flat{latency: 10}
	c := smallCache(t, next)
	c.Prefetch(0x000)
	s := c.Stats()
	if s.PrefetchIssued != 1 || s.Accesses != 0 {
		t.Errorf("prefetch stats = %+v", s)
	}
	if !c.Contains(0x000) {
		t.Error("prefetched line absent")
	}
	// Referencing it makes it useful.
	c.Access(0x000, false)
	if c.Stats().PrefetchUseful != 1 {
		t.Error("prefetch not counted useful")
	}
	// A never-referenced prefetch that gets evicted is useless.
	c.Prefetch(0x080)
	c.Access(0x100, false)
	c.Access(0x180, false) // set 0 full of demand lines; 0x080 evicted
	s = c.Stats()
	if s.PrefetchUseless != 1 {
		t.Errorf("useless prefetches = %d, want 1; stats %+v", s.PrefetchUseless, s)
	}
	if got := s.PrefetchMissRate(); got != 0.5 {
		t.Errorf("prefetch miss rate = %v, want 0.5", got)
	}
	// Prefetching a resident line is a no-op.
	issued := c.Stats().PrefetchIssued
	c.Prefetch(0x100)
	if c.Stats().PrefetchIssued != issued {
		t.Error("prefetch of resident line issued traffic")
	}
}

func TestCacheFlush(t *testing.T) {
	next := &flat{latency: 10}
	c := smallCache(t, next)
	c.Access(0x000, true)
	c.Access(0x040, false)
	c.Flush()
	if c.Contains(0x000) || c.Contains(0x040) {
		t.Error("line survived flush")
	}
	if c.Stats().Writebacks != 1 {
		t.Errorf("flush writebacks = %d, want 1", c.Stats().Writebacks)
	}
}

func TestCacheSetIndexing(t *testing.T) {
	next := &flat{latency: 10}
	c := smallCache(t, next)
	// 0x000 and 0x040 are different sets in a 2-set cache: both fit with
	// two more ways each.
	c.Access(0x000, false)
	c.Access(0x040, false)
	c.Access(0x080, false)
	c.Access(0x0c0, false)
	for _, a := range []uint32{0x000, 0x040, 0x080, 0x0c0} {
		if !c.Contains(a) {
			t.Errorf("line %#x missing: set indexing broken", a)
		}
	}
}

func TestDRAMRowBuffer(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	cfg := d.cfg
	// First access: row miss (activate).
	lat1 := d.Access(0x0, false)
	if want := cfg.BusAndCtl + cfg.TRCD + cfg.TCAS; lat1 != want {
		t.Errorf("cold access latency = %d, want %d", lat1, want)
	}
	// Same row: row hit (CAS only).
	lat2 := d.Access(0x40, false)
	if want := cfg.BusAndCtl + cfg.TCAS; lat2 != want {
		t.Errorf("row hit latency = %d, want %d", lat2, want)
	}
	// Same bank, different row: conflict (precharge + activate).
	nbanks := uint32(cfg.Ranks * cfg.BanksPerRank)
	conflictAddr := uint32(cfg.RowBytes) * nbanks
	lat3 := d.Access(conflictAddr, false)
	if want := cfg.BusAndCtl + cfg.TRP + cfg.TRCD + cfg.TCAS; lat3 != want {
		t.Errorf("row conflict latency = %d, want %d", lat3, want)
	}
	s := d.Stats()
	if s.RowHits != 1 || s.RowConflicts != 1 || s.RowMisses != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.RowHitRate() < 0.3 || s.RowHitRate() > 0.34 {
		t.Errorf("hit rate = %v", s.RowHitRate())
	}
}

func TestDRAMRefreshCharged(t *testing.T) {
	d := NewDRAM(DRAMConfig{RefreshEvery: 10})
	base := 0
	for i := 0; i < 10; i++ {
		base = d.Access(0x40*uint32(0), false)
	}
	if d.Stats().Refreshes != 1 {
		t.Errorf("refreshes = %d, want 1", d.Stats().Refreshes)
	}
	_ = base
}

func TestHierarchyComposition(t *testing.T) {
	h, err := NewHierarchy(DefaultHierarchyConfig())
	if err != nil {
		t.Fatal(err)
	}
	// IL1 miss flows to L2 (miss) and DRAM.
	lat := h.IL1.Access(0x1000, false)
	if lat < 2+12 {
		t.Errorf("cold fetch latency = %d, implausibly low", lat)
	}
	if h.L2.Stats().Accesses != 1 || h.DRAM.Stats().Accesses != 1 {
		t.Error("miss did not propagate")
	}
	// Second access hits IL1: no new L2 traffic.
	if lat := h.IL1.Access(0x1000, false); lat != 2 {
		t.Errorf("hit latency = %d", lat)
	}
	if h.L2Pressure() != 1 {
		t.Errorf("L2 pressure = %d", h.L2Pressure())
	}
	// DL1 miss to the same line: L2 now has it (shared).
	lat = h.DL1.Access(0x1000, false)
	if lat != 2+12 {
		t.Errorf("DL1 L2-hit latency = %d, want 14", lat)
	}
	if h.DRAM.Stats().Accesses != 1 {
		t.Error("L2 hit went to DRAM")
	}
}

func TestHierarchyRejectsBadConfig(t *testing.T) {
	cfg := DefaultHierarchyConfig()
	cfg.L2.Assoc = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad L2 accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.IL1.LineSize = 48
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad IL1 accepted")
	}
	cfg = DefaultHierarchyConfig()
	cfg.DL1.Size = -5
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("bad DL1 accepted")
	}
}

func BenchmarkCacheAccessHit(b *testing.B) {
	next := &flat{latency: 10}
	c, _ := NewCache(CacheConfig{Name: "b", Size: 32 << 10, Assoc: 2, LineSize: 64, Latency: 2}, next)
	c.Access(0x1000, false)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Access(0x1000, false)
	}
}
