package mem

import "vcfr/internal/stats"

// This file wires the memory hierarchy into the statistics spine
// (internal/stats): each stat struct registers its fields once, under a
// caller-chosen prefix, and every consumer — text reports, envelope interval
// series, /metrics — derives from that single registration.

// Register registers the cache counters under prefix (e.g. "mem.il1").
func (s *CacheStats) Register(r *stats.Registry, prefix string) {
	sc := r.Scope(prefix)
	sc.Counter("accesses", "Demand accesses.", &s.Accesses)
	sc.Counter("misses", "Demand misses.", &s.Misses)
	sc.Counter("writebacks", "Dirty evictions written to the next level.", &s.Writebacks)
	sc.Counter("evictions", "Lines evicted.", &s.Evictions)
	sc.Counter("prefetch.issued", "Prefetch fills installed.", &s.PrefetchIssued)
	sc.Counter("prefetch.useful", "Prefetched lines referenced before eviction.", &s.PrefetchUseful)
	sc.Counter("prefetch.useless", "Prefetched lines evicted unreferenced.", &s.PrefetchUseless)
}

// Register registers the DRAM counters under prefix (e.g. "dram").
func (s *DRAMStats) Register(r *stats.Registry, prefix string) {
	sc := r.Scope(prefix)
	sc.Counter("accesses", "DRAM accesses.", &s.Accesses)
	sc.Counter("row_hits", "Open-page row-buffer hits.", &s.RowHits)
	sc.Counter("row_conflicts", "Row-buffer conflicts (precharge + activate).", &s.RowConflicts)
	sc.Counter("row_misses", "Closed-page activations.", &s.RowMisses)
	sc.Counter("refreshes", "Refresh cycles taken.", &s.Refreshes)
}

// RegisterStats registers the cache's live counters under prefix: the
// registered pointers alias the fields Access increments, so snapshots taken
// mid-run observe the simulation as it happens at zero hot-path cost.
func (c *Cache) RegisterStats(r *stats.Registry, prefix string) {
	c.stats.Register(r, prefix)
}

// RegisterStats registers the DRAM's live counters under prefix.
func (d *DRAM) RegisterStats(r *stats.Registry, prefix string) {
	d.stats.Register(r, prefix)
}

// Register registers the whole hierarchy's live counters under the canonical
// spine prefixes mem.il1, mem.dl1, mem.l2, dram.
func (h *Hierarchy) Register(r *stats.Registry) {
	h.IL1.RegisterStats(r, "mem.il1")
	h.DL1.RegisterStats(r, "mem.dl1")
	h.L2.RegisterStats(r, "mem.l2")
	h.DRAM.RegisterStats(r, "dram")
}
