package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refCache is a trivially correct fully-associative LRU reference model used
// to cross-check the set-associative implementation when configured with a
// single set (where the two must behave identically).
type refCache struct {
	cap   int
	lines []uint32
}

func (r *refCache) access(line uint32) (hit bool) {
	for i, l := range r.lines {
		if l == line {
			r.lines = append(append(r.lines[:i:i], r.lines[i+1:]...), line)
			return true
		}
	}
	if len(r.lines) >= r.cap {
		r.lines = r.lines[1:]
	}
	r.lines = append(r.lines, line)
	return false
}

// TestCacheMatchesReferenceModel drives a one-set cache and the reference
// LRU model with the same random trace; hit/miss decisions must agree on
// every access.
func TestCacheMatchesReferenceModel(t *testing.T) {
	const ways = 8
	c, err := NewCache(CacheConfig{
		Name: "ref", Size: ways * 64, Assoc: ways, LineSize: 64, Latency: 1,
	}, &flat{latency: 5})
	if err != nil {
		t.Fatal(err)
	}
	ref := &refCache{cap: ways}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50_000; i++ {
		line := uint32(rng.Intn(32)) // working set 4x the capacity
		addr := line * 64
		wantHit := ref.access(line)
		gotHit := c.Access(addr, false) == 1
		if gotHit != wantHit {
			t.Fatalf("access %d (line %d): cache hit=%v, reference hit=%v",
				i, line, gotHit, wantHit)
		}
	}
}

// TestQuickCacheStatsInvariants: for arbitrary access sequences, the
// counters obey their algebra.
func TestQuickCacheStatsInvariants(t *testing.T) {
	f := func(addrs []uint16, writes []bool) bool {
		c, err := NewCache(CacheConfig{
			Name: "q", Size: 1 << 10, Assoc: 2, LineSize: 64, Latency: 1,
		}, &flat{latency: 3})
		if err != nil {
			return false
		}
		for i, a := range addrs {
			w := i < len(writes) && writes[i]
			c.Access(uint32(a), w)
		}
		s := c.Stats()
		return s.Misses <= s.Accesses &&
			s.Accesses == uint64(len(addrs)) &&
			s.Writebacks <= s.Evictions &&
			s.PrefetchUseful+s.PrefetchUseless <= s.PrefetchIssued
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestDRAMBankInterleaving: consecutive rows map to different banks, so a
// row-sized stride keeps every bank's row buffer open (all hits after
// warm-up), while a stride of banks*rowBytes hammers one bank (all
// conflicts).
func TestDRAMBankInterleaving(t *testing.T) {
	d := NewDRAM(DRAMConfig{})
	cfg := d.cfg
	nbanks := uint32(cfg.Ranks * cfg.BanksPerRank)
	rowBytes := uint32(cfg.RowBytes)

	// Warm every bank.
	for b := uint32(0); b < nbanks; b++ {
		d.Access(b*rowBytes, false)
	}
	warm := d.Stats()
	// Second sweep over the same rows: all row hits.
	for b := uint32(0); b < nbanks; b++ {
		d.Access(b*rowBytes+64, false)
	}
	s := d.Stats()
	if s.RowHits-warm.RowHits != uint64(nbanks) {
		t.Errorf("interleaved sweep: %d row hits, want %d", s.RowHits-warm.RowHits, nbanks)
	}

	// Same-bank different-row hammering: conflicts every time.
	before := d.Stats().RowConflicts
	for i := uint32(1); i <= 8; i++ {
		d.Access(i*nbanks*rowBytes, false)
	}
	if got := d.Stats().RowConflicts - before; got != 8 {
		t.Errorf("bank hammering: %d conflicts, want 8", got)
	}
}

// TestSharedHierarchyIsolatesL1s: per-core L1s are private, the L2 is
// genuinely shared.
func TestSharedHierarchyIsolatesL1s(t *testing.T) {
	hs, err := NewSharedHierarchy(DefaultHierarchyConfig(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if hs[0].L2 != hs[1].L2 || hs[0].DRAM != hs[1].DRAM {
		t.Fatal("L2/DRAM not shared")
	}
	if hs[0].IL1 == hs[1].IL1 || hs[0].DL1 == hs[1].DL1 {
		t.Fatal("L1s shared")
	}
	// Core 0 fetches a line; core 1's IL1 stays cold but its L2 access hits.
	hs[0].IL1.Access(0x4000, false)
	if hs[1].IL1.Contains(0x4000) {
		t.Error("core 1 IL1 contains core 0's line")
	}
	dramBefore := hs[0].DRAM.Stats().Accesses
	hs[1].IL1.Access(0x4000, false)
	if hs[0].DRAM.Stats().Accesses != dramBefore {
		t.Error("core 1's fetch went to DRAM despite a shared-L2 hit")
	}
	if _, err := NewSharedHierarchy(DefaultHierarchyConfig(), 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestPrefetchMissRateNoSettledLines(t *testing.T) {
	if (CacheStats{PrefetchIssued: 5}).PrefetchMissRate() != 0 {
		t.Error("unsettled prefetches produced a rate")
	}
}
