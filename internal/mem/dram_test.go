package mem

import "testing"

// small returns a DRAM with a refresh interval far away, so latency tests
// see pure row-buffer behavior.
func small() *DRAM {
	cfg := DefaultDRAMConfig()
	cfg.RefreshEvery = 1 << 62
	return NewDRAM(cfg)
}

func TestDRAMRowHitVsConflictLatency(t *testing.T) {
	d := small()
	cfg := d.cfg
	rowBytes := uint32(cfg.RowBytes)
	nbanks := uint32(cfg.Ranks * cfg.BanksPerRank)

	// First touch of a bank: closed page, activate + column access.
	if got, want := d.Access(0, false), cfg.BusAndCtl+cfg.TRCD+cfg.TCAS; got != want {
		t.Errorf("row miss latency = %d, want %d", got, want)
	}
	// Same row again: open-page hit, column access only.
	if got, want := d.Access(64, false), cfg.BusAndCtl+cfg.TCAS; got != want {
		t.Errorf("row hit latency = %d, want %d", got, want)
	}
	// A different row of the same bank (rows nbanks apart share a bank under
	// the interleave): precharge + activate + column access.
	conflict := nbanks * rowBytes
	if got, want := d.Access(conflict, false), cfg.BusAndCtl+cfg.TRP+cfg.TRCD+cfg.TCAS; got != want {
		t.Errorf("row conflict latency = %d, want %d", got, want)
	}
	// The conflicting row is now the open one.
	if got, want := d.Access(conflict+64, false), cfg.BusAndCtl+cfg.TCAS; got != want {
		t.Errorf("post-conflict row hit latency = %d, want %d", got, want)
	}

	s := d.Stats()
	if s.Accesses != 4 || s.RowMisses != 1 || s.RowHits != 2 || s.RowConflicts != 1 {
		t.Errorf("stats = %+v, want accesses=4 misses=1 hits=2 conflicts=1", s)
	}
	if s.Refreshes != 0 {
		t.Errorf("unexpected refreshes: %d", s.Refreshes)
	}
	if hr := s.RowHitRate(); hr != 0.5 {
		t.Errorf("RowHitRate = %v, want 0.5", hr)
	}
}

// TestDRAMBankMapping pins the bank-decode function itself (the sweep-level
// interleaving behavior lives in TestDRAMBankInterleaving): the 16-bank
// default geometry maps rows less than nbanks apart to distinct banks, and
// exactly nbanks apart to the same bank.
func TestDRAMBankMapping(t *testing.T) {
	d := small()
	cfg := d.cfg
	rowBytes := uint32(cfg.RowBytes)
	nbanks := uint32(cfg.Ranks * cfg.BanksPerRank)
	if nbanks != 16 {
		t.Fatalf("default geometry changed: %d banks", nbanks)
	}

	d.Access(0, false)
	d.Access((nbanks-1)*rowBytes, false)
	if s := d.Stats(); s.RowConflicts != 0 {
		t.Errorf("rows %d apart share a bank: %+v", nbanks-1, s)
	}
	d.Access(nbanks*rowBytes, false)
	if s := d.Stats(); s.RowConflicts != 1 {
		t.Errorf("rows %d apart did not share a bank: %+v", nbanks, s)
	}
}

func TestDRAMRefreshInterference(t *testing.T) {
	cfg := DefaultDRAMConfig()
	d := NewDRAM(cfg)

	// Hammer one open row: every access after the first is a row hit, except
	// that each RefreshEvery-th access additionally pays TRFC.
	d.Access(0, false)
	hit := cfg.BusAndCtl + cfg.TCAS
	total := uint64(3 * cfg.RefreshEvery)
	for i := uint64(2); i <= total; i++ {
		want := hit
		if i%cfg.RefreshEvery == 0 {
			want += cfg.TRFC
		}
		if got := d.Access(64, false); got != want {
			t.Fatalf("access %d: latency %d, want %d", i, got, want)
		}
	}
	s := d.Stats()
	if s.Refreshes != 3 {
		t.Errorf("refreshes = %d, want 3 after %d accesses", s.Refreshes, total)
	}
	if s.Accesses != total {
		t.Errorf("accesses = %d, want %d", s.Accesses, total)
	}
}

func TestDRAMConfigDefaults(t *testing.T) {
	// A zero config takes every default; a partial config keeps what it set.
	d := NewDRAM(DRAMConfig{})
	if d.cfg != DefaultDRAMConfig() {
		t.Errorf("zero config: %+v != defaults %+v", d.cfg, DefaultDRAMConfig())
	}
	if got, want := len(d.banks), d.cfg.Ranks*d.cfg.BanksPerRank; got != want {
		t.Errorf("bank count %d, want %d", got, want)
	}
	p := NewDRAM(DRAMConfig{Ranks: 1, BanksPerRank: 2, TCAS: 5})
	if p.cfg.Ranks != 1 || p.cfg.BanksPerRank != 2 || p.cfg.TCAS != 5 {
		t.Errorf("explicit fields overridden: %+v", p.cfg)
	}
	if p.cfg.TRCD != DefaultDRAMConfig().TRCD {
		t.Errorf("unset field not defaulted: %+v", p.cfg)
	}
	if len(p.banks) != 2 {
		t.Errorf("bank count %d, want 2", len(p.banks))
	}
}
