package mem

// DRAMConfig describes a DDR-style main memory in CPU cycles (the paper
// drives DRAMSim2 from a 1.6 GHz core clock; these defaults approximate
// DDR3-1333 timings seen from that clock).
type DRAMConfig struct {
	Ranks        int
	BanksPerRank int
	RowBytes     int // row-buffer (page) size per bank

	// Latencies in CPU cycles.
	TCAS      int // column access on an open, matching row
	TRCD      int // activate (row open)
	TRP       int // precharge (row close)
	BusAndCtl int // fixed controller + bus transfer overhead

	// Refresh: every RefreshEvery accesses, one access additionally pays
	// TRFC (a deterministic amortization of periodic refresh stalls).
	RefreshEvery uint64
	TRFC         int
}

// DefaultDRAMConfig returns the calibrated DDR3-like configuration.
func DefaultDRAMConfig() DRAMConfig {
	return DRAMConfig{
		Ranks:        2,
		BanksPerRank: 8,
		RowBytes:     8192,
		TCAS:         22,
		TRCD:         22,
		TRP:          22,
		BusAndCtl:    28,
		RefreshEvery: 620,
		TRFC:         170,
	}
}

// DRAMStats counts row-buffer outcomes.
type DRAMStats struct {
	Accesses     uint64
	RowHits      uint64 // open page, matching row
	RowConflicts uint64 // open page, different row (precharge + activate)
	RowMisses    uint64 // closed page (activate)
	Refreshes    uint64
}

// RowHitRate returns row-buffer hits per access.
func (s DRAMStats) RowHitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Accesses)
}

// DRAM is the open-page DDR model terminating the hierarchy.
type DRAM struct {
	cfg   DRAMConfig
	banks []bankState
	stats DRAMStats
}

type bankState struct {
	open bool
	row  uint32
}

// NewDRAM builds a DRAM with cfg (zero-value fields take defaults).
func NewDRAM(cfg DRAMConfig) *DRAM {
	def := DefaultDRAMConfig()
	if cfg.Ranks <= 0 {
		cfg.Ranks = def.Ranks
	}
	if cfg.BanksPerRank <= 0 {
		cfg.BanksPerRank = def.BanksPerRank
	}
	if cfg.RowBytes <= 0 {
		cfg.RowBytes = def.RowBytes
	}
	if cfg.TCAS <= 0 {
		cfg.TCAS = def.TCAS
	}
	if cfg.TRCD <= 0 {
		cfg.TRCD = def.TRCD
	}
	if cfg.TRP <= 0 {
		cfg.TRP = def.TRP
	}
	if cfg.BusAndCtl <= 0 {
		cfg.BusAndCtl = def.BusAndCtl
	}
	if cfg.RefreshEvery == 0 {
		cfg.RefreshEvery = def.RefreshEvery
	}
	if cfg.TRFC <= 0 {
		cfg.TRFC = def.TRFC
	}
	return &DRAM{
		cfg:   cfg,
		banks: make([]bankState, cfg.Ranks*cfg.BanksPerRank),
	}
}

// Name implements Level.
func (d *DRAM) Name() string { return "dram" }

// Stats returns a copy of the counters.
func (d *DRAM) Stats() DRAMStats { return d.stats }

// Access implements Level: bank-interleaved open-page access.
func (d *DRAM) Access(addr uint32, write bool) int {
	d.stats.Accesses++
	nbanks := uint32(len(d.banks))
	rowBytes := uint32(d.cfg.RowBytes)
	// Bank interleave on row-granularity address bits: consecutive rows map
	// to consecutive banks, the usual open-page-friendly mapping.
	rowAddr := addr / rowBytes
	bank := rowAddr % nbanks
	row := rowAddr / nbanks

	lat := d.cfg.BusAndCtl
	b := &d.banks[bank]
	switch {
	case b.open && b.row == row:
		d.stats.RowHits++
		lat += d.cfg.TCAS
	case b.open:
		d.stats.RowConflicts++
		lat += d.cfg.TRP + d.cfg.TRCD + d.cfg.TCAS
		b.row = row
	default:
		d.stats.RowMisses++
		lat += d.cfg.TRCD + d.cfg.TCAS
		b.open, b.row = true, row
	}
	if d.stats.Accesses%d.cfg.RefreshEvery == 0 {
		d.stats.Refreshes++
		lat += d.cfg.TRFC
	}
	return lat
}
