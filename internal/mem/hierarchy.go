package mem

import "fmt"

// HierarchyConfig assembles the paper's cache organization (Sec. VI-C):
// 32 KB 2-way IL1 and DL1 with 64-byte lines and 2-cycle latency, a unified
// 512 KB 8-way L2 at 12 cycles, and DDR DRAM behind it.
type HierarchyConfig struct {
	IL1  CacheConfig
	DL1  CacheConfig
	L2   CacheConfig
	DRAM DRAMConfig
}

// DefaultHierarchyConfig returns the paper's machine parameters.
func DefaultHierarchyConfig() HierarchyConfig {
	return HierarchyConfig{
		IL1:  CacheConfig{Name: "il1", Size: 32 << 10, Assoc: 2, LineSize: 64, Latency: 2},
		DL1:  CacheConfig{Name: "dl1", Size: 32 << 10, Assoc: 2, LineSize: 64, Latency: 2},
		L2:   CacheConfig{Name: "l2", Size: 512 << 10, Assoc: 8, LineSize: 64, Latency: 12},
		DRAM: DefaultDRAMConfig(),
	}
}

// Hierarchy is the assembled memory system: split L1s over a unified L2 over
// DRAM. The DRC table walker also reads through the L2 (Sec. IV-B: "DRC
// shares L2 with IL1").
type Hierarchy struct {
	IL1  *Cache
	DL1  *Cache
	L2   *Cache
	DRAM *DRAM
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg HierarchyConfig) (*Hierarchy, error) {
	dram := NewDRAM(cfg.DRAM)
	l2, err := NewCache(cfg.L2, dram)
	if err != nil {
		return nil, err
	}
	il1, err := NewCache(cfg.IL1, l2)
	if err != nil {
		return nil, err
	}
	dl1, err := NewCache(cfg.DL1, l2)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{IL1: il1, DL1: dl1, L2: l2, DRAM: dram}, nil
}

// L2Pressure returns the total demand accesses the L2 absorbed — the paper's
// Fig. 3 metric for how L1 inefficiency propagates downstream.
func (h *Hierarchy) L2Pressure() uint64 { return h.L2.Stats().Accesses }

// NewSharedHierarchy builds per-core hierarchies that share one unified L2
// and one DRAM — the multi-core organization of Sec. IV-D ("since our
// approach only randomizes instruction address space, which contains
// read-only data, it can be applied to multi-core or multi-processor based
// systems with ease"). Each core keeps private L1s; the L2 and the
// randomization tables behind it are shared fabric.
func NewSharedHierarchy(cfg HierarchyConfig, cores int) ([]*Hierarchy, error) {
	if cores <= 0 {
		return nil, fmt.Errorf("mem: %d cores", cores)
	}
	dram := NewDRAM(cfg.DRAM)
	l2, err := NewCache(cfg.L2, dram)
	if err != nil {
		return nil, err
	}
	out := make([]*Hierarchy, cores)
	for i := range out {
		il1cfg := cfg.IL1
		il1cfg.Name = fmt.Sprintf("il1.%d", i)
		dl1cfg := cfg.DL1
		dl1cfg.Name = fmt.Sprintf("dl1.%d", i)
		il1, err := NewCache(il1cfg, l2)
		if err != nil {
			return nil, err
		}
		dl1, err := NewCache(dl1cfg, l2)
		if err != nil {
			return nil, err
		}
		out[i] = &Hierarchy{IL1: il1, DL1: dl1, L2: l2, DRAM: dram}
	}
	return out, nil
}
