// Package mem models the on-chip memory hierarchy of the paper's simulated
// machine (Sec. VI-C): set-associative write-back caches with LRU
// replacement, a next-line instruction prefetcher, and a DDR-style DRAM with
// per-bank open-page row buffers — the XIOSim/Zesto + DRAMSim2 substitute.
//
// Levels compose through the Level interface: an access that misses in one
// level recursively pays for the next. The returned latency is the total
// cycles for the critical path; the pipeline schedules around it.
package mem

import "fmt"

// Level is one level of the memory hierarchy.
type Level interface {
	// Access performs a demand access and returns its latency in cycles.
	Access(addr uint32, write bool) int
	// Name identifies the level in statistics output.
	Name() string
}

// CacheConfig sizes one cache.
type CacheConfig struct {
	Name     string
	Size     int // total bytes
	Assoc    int // ways
	LineSize int // bytes
	Latency  int // hit latency, cycles
}

// Validate checks the geometry.
func (c CacheConfig) Validate() error {
	switch {
	case c.Size <= 0 || c.Assoc <= 0 || c.LineSize <= 0 || c.Latency <= 0:
		return fmt.Errorf("mem: %s: non-positive geometry %+v", c.Name, c)
	case c.Size%(c.Assoc*c.LineSize) != 0:
		return fmt.Errorf("mem: %s: size %d not divisible by assoc*line %d",
			c.Name, c.Size, c.Assoc*c.LineSize)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("mem: %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	sets := c.Size / (c.Assoc * c.LineSize)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("mem: %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// CacheStats counts cache events.
type CacheStats struct {
	Accesses   uint64 // demand accesses
	Misses     uint64 // demand misses
	Writebacks uint64 // dirty evictions written to the next level
	Evictions  uint64

	PrefetchIssued  uint64 // prefetch fills installed
	PrefetchUseful  uint64 // prefetched lines referenced before eviction
	PrefetchUseless uint64 // prefetched lines evicted unreferenced
}

// MissRate returns demand misses per demand access.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// PrefetchMissRate returns the fraction of prefetched lines that were
// evicted without ever being referenced — wasted prefetches. Lines still
// resident are not counted either way.
func (s CacheStats) PrefetchMissRate() float64 {
	settled := s.PrefetchUseful + s.PrefetchUseless
	if settled == 0 {
		return 0
	}
	return float64(s.PrefetchUseless) / float64(settled)
}

type line struct {
	tag        uint32
	valid      bool
	dirty      bool
	prefetched bool // installed by the prefetcher, unreferenced so far
	lru        uint64
}

// Cache is one set-associative write-back, write-allocate cache level.
type Cache struct {
	cfg      CacheConfig
	next     Level
	sets     [][]line
	setMask  uint32
	lineBits uint
	clock    uint64 // LRU timestamp source
	stats    CacheStats
}

// NewCache builds a cache backed by next.
func NewCache(cfg CacheConfig, next Level) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if next == nil {
		return nil, fmt.Errorf("mem: %s: nil next level", cfg.Name)
	}
	nsets := cfg.Size / (cfg.Assoc * cfg.LineSize)
	c := &Cache{
		cfg:     cfg,
		next:    next,
		sets:    make([][]line, nsets),
		setMask: uint32(nsets - 1),
	}
	for i := range c.sets {
		c.sets[i] = make([]line, cfg.Assoc)
	}
	for l := cfg.LineSize; l > 1; l >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// Name returns the cache's configured name.
func (c *Cache) Name() string { return c.cfg.Name }

// Stats returns a copy of the counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// LineSize returns the line size in bytes.
func (c *Cache) LineSize() int { return c.cfg.LineSize }

func (c *Cache) index(addr uint32) (set uint32, tag uint32) {
	lineAddr := addr >> c.lineBits
	return lineAddr & c.setMask, lineAddr >> 0
}

// lookup finds the way holding addr, or -1.
func (c *Cache) lookup(set, tag uint32) int {
	for w := range c.sets[set] {
		if c.sets[set][w].valid && c.sets[set][w].tag == tag {
			return w
		}
	}
	return -1
}

// victim picks the LRU way in the set.
func (c *Cache) victim(set uint32) int {
	v, oldest := 0, ^uint64(0)
	for w := range c.sets[set] {
		l := &c.sets[set][w]
		if !l.valid {
			return w
		}
		if l.lru < oldest {
			oldest, v = l.lru, w
		}
	}
	return v
}

// evict retires the victim way, accounting write-backs and prefetch waste.
func (c *Cache) evict(set uint32, w int) {
	l := &c.sets[set][w]
	if !l.valid {
		return
	}
	c.stats.Evictions++
	if l.prefetched {
		c.stats.PrefetchUseless++
	}
	if l.dirty {
		c.stats.Writebacks++
		// Write-back cost is off the critical path (write buffer); the next
		// level still sees the traffic.
		c.next.Access(c.unindex(set, l.tag), true)
	}
	l.valid = false
}

// unindex reconstructs a line-aligned address from set and tag.
func (c *Cache) unindex(set, tag uint32) uint32 {
	return tag << c.lineBits
}

// Access performs a demand read or write.
func (c *Cache) Access(addr uint32, write bool) int {
	c.clock++
	c.stats.Accesses++
	set, tag := c.index(addr)
	if w := c.lookup(set, tag); w >= 0 {
		l := &c.sets[set][w]
		l.lru = c.clock
		if l.prefetched {
			c.stats.PrefetchUseful++
			l.prefetched = false
		}
		if write {
			l.dirty = true
		}
		return c.cfg.Latency
	}
	c.stats.Misses++
	lat := c.cfg.Latency + c.next.Access(addr, false)
	w := c.victim(set)
	c.evict(set, w)
	c.sets[set][w] = line{tag: tag, valid: true, dirty: write, lru: c.clock}
	return lat
}

// Contains probes for addr without touching LRU state or statistics.
func (c *Cache) Contains(addr uint32) bool {
	set, tag := c.index(addr)
	return c.lookup(set, tag) >= 0
}

// Prefetch installs addr's line if absent, fetching it from the next level.
// Prefetches are off the demand critical path: no latency is returned, but
// the next level sees the traffic and the fill can displace a line.
func (c *Cache) Prefetch(addr uint32) {
	set, tag := c.index(addr)
	if c.lookup(set, tag) >= 0 {
		return
	}
	c.clock++
	c.stats.PrefetchIssued++
	c.next.Access(addr, false)
	w := c.victim(set)
	c.evict(set, w)
	c.sets[set][w] = line{tag: tag, valid: true, prefetched: true, lru: c.clock}
}

// Flush invalidates every line, writing back dirty ones.
func (c *Cache) Flush() {
	for set := range c.sets {
		for w := range c.sets[set] {
			c.evict(uint32(set), w)
		}
	}
}
