package workloads

// Streaming and memory-bound workload generators: memcpy, libquantum, lbm,
// mcf, soplex, hmmer, bzip2.
//
// Every SPEC analog's hot kernel is unrolled into several hundred to a
// couple thousand static instructions. That matches real SPEC hot regions
// (tens of KB of code) and is what gives the naive-ILR experiments their
// bite: a kernel of ~1.3k instructions occupies ~5 KB in the original
// layout (IL1-resident) but ~650 cache lines once scattered at spread 4 —
// beyond the 512-line IL1.

// genMemcpy: repeated buffer copies with a 64-word unrolled inner loop.
func genMemcpy(scale int) (string, []byte) {
	const (
		words  = 8192 // 32 KiB per buffer: the copy streams through the DL1
		unroll = 64
	)
	s := &src{}
	s.f("; memcpy analog: repeated word-wise buffer copies (unrolled x%d)", unroll)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fill")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "m", 8*scale)
	s.f("\tmovi r2, srcbuf")
	s.f("\tmovi r3, dstbuf")
	s.f("\tmovi r4, %d", words/unroll)
	s.f("cpy:")
	s.f("\tcmpi r4, 0")
	s.f("\tje cdone")
	for k := 0; k < unroll; k++ {
		s.f("\tload r5, [r2+%d]", 4*k)
		s.f("\tstore [r3+%d], r5", 4*k)
	}
	s.f("\taddi r2, %d", 4*unroll)
	s.f("\taddi r3, %d", 4*unroll)
	s.f("\tsubi r4, 1")
	s.f("\tjmp cpy")
	s.f("cdone:")
	s.f("\tadd r9, r5")
	emitRepeatFooter(s, "m")
	emitEpilogue(s)
	emitLCGFillWords(s, "fill", "srcbuf", words, 7)
	s.f(".data")
	s.f("srcbuf: .space %d", words*4)
	s.f("dstbuf: .space %d", words*4)
	return s.String(), nil
}

// genLibquantum: streaming gate sweeps with a 192-element unrolled body
// (~1.3k hot instructions).
func genLibquantum(scale int) (string, []byte) {
	const (
		unroll = 192
		iters  = 84 // 63 KiB register array: sweeps stream through the DL1
		words  = unroll * iters
	)
	s := &src{}
	s.f("; libquantum analog: streaming gate sweeps, %d-element unrolled body", unroll)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fill")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "q", 2*scale)
	s.f("\tmovi r2, qreg")
	s.f("\tmovi r3, %d", iters)
	s.f("\tmovi r6, 0x5a5a")
	s.f("gate:")
	s.f("\tcmpi r3, 0")
	s.f("\tje gdone")
	for k := 0; k < unroll; k++ {
		off := 4 * k
		s.f("\tload r5, [r2+%d]", off)
		s.f("\txor r5, r6")
		s.f("\tmov r7, r5")
		s.f("\tshli r7, 1")
		s.f("\txor r5, r7")
		s.f("\tstore [r2+%d], r5", off)
		s.f("\tadd r9, r5")
	}
	s.f("\taddi r2, %d", 4*unroll)
	s.f("\tsubi r3, 1")
	s.f("\tjmp gate")
	s.f("gdone:")
	emitRepeatFooter(s, "q")
	emitEpilogue(s)
	emitLCGFillWords(s, "fill", "qreg", words, 99)
	s.f(".data")
	s.f("qreg: .space %d", words*4)
	return s.String(), nil
}

// genLBM: a stencil relaxation with a large unrolled loop body plus helper
// calls scattered across it from many distinct return sites — the
// small-data, big-straight-line-code profile that makes lbm one of the worst
// small-DRC cases in the paper (Fig. 14).
func genLBM(scale int) (string, []byte) {
	const (
		cols   = 128
		rows   = 96
		unroll = 94 // cells updated per unrolled body iteration
	)
	s := &src{}
	s.f("; lbm analog: unrolled stencil relaxation over a %dx%d grid", rows, cols)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fill")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "l", scale)
	s.f("\tmovi r2, grid")                     // cell cursor
	s.f("\tmovi r3, %d", (rows-2)*cols/unroll) // unrolled body iterations
	s.f("sweep:")
	s.f("\tcmpi r3, 0")
	s.f("\tje sdone")
	rng := newLCG(5)
	for u := 0; u < unroll; u++ {
		// Five-point stencil on the word at [r2 + u*4], row stride cols*4.
		off := u * 4
		s.f("\tload r4, [r2+%d]", off)
		s.f("\tload r5, [r2+%d]", off+4)
		s.f("\tadd r4, r5")
		s.f("\tload r5, [r2+%d]", off+cols*4)
		s.f("\tadd r4, r5")
		s.f("\tload r5, [r2+%d]", off+2*cols*4)
		s.f("\tadd r4, r5")
		s.f("\tshri r4, 2")
		s.f("\tstore [r2+%d], r4", off+cols*4)
		s.f("\tadd r9, r4")
		// Sprinkled helper calls from many distinct return sites.
		if rng.intn(3) == 0 {
			s.f("\tmov r1, r4")
			s.f("\tcall clamp%d", rng.intn(6))
			s.f("\tadd r9, r0")
		}
	}
	s.f("\taddi r2, %d", unroll*4)
	s.f("\tsubi r3, 1")
	s.f("\tjmp sweep")
	s.f("sdone:")
	emitRepeatFooter(s, "l")
	emitEpilogue(s)
	for i := 0; i < 6; i++ {
		s.f(".func clamp%d", i)
		s.f("clamp%d:", i)
		s.f("\tmov r0, r1")
		s.f("\tandi r0, %d", 1023+i)
		s.f("\taddi r0, %d", i)
		s.f("\tret")
	}
	emitLCGFillWords(s, "fill", "grid", rows*cols, 17)
	s.f(".data")
	s.f("grid: .space %d", rows*cols*4)
	return s.String(), nil
}

// genMCF: pointer chasing around a permuted linked ring, with the chase
// chain unrolled 320 deep (~1.3k hot instructions of pure dependent loads).
func genMCF(scale int) (string, []byte) {
	const (
		nodes  = 16384 // 64 KiB of next-pointers: exceeds DL1
		unroll = 320
	)
	s := &src{}
	s.f("; mcf analog: pointer chasing over a permuted linked ring of %d nodes", nodes)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall build")
	s.f("\tmovi r9, 0")
	s.f("\tmovi r2, 0") // current node index
	s.f("\tmovi r5, ring")
	emitRepeatHeader(s, "c", 16*scale)
	s.f("\tmovi r3, 4") // unrolled blocks per rep
	s.f("chase:")
	s.f("\tcmpi r3, 0")
	s.f("\tje cdone")
	for k := 0; k < unroll; k++ {
		s.f("\tmov r4, r2")
		s.f("\tshli r4, 2")
		s.f("\tloadr r2, [r5+r4]") // r2 = next[r2]
		s.f("\tadd r9, r2")
	}
	s.f("\tsubi r3, 1")
	s.f("\tjmp chase")
	s.f("cdone:")
	emitRepeatFooter(s, "c")
	emitEpilogue(s)
	// build: ring[i] = (i + stride) mod nodes with a large odd stride — a
	// single cycle through all nodes with DL1-hostile jumps.
	s.f(".func build")
	s.f("build:")
	s.f("\tmovi r2, 0")
	s.f("bloop:")
	s.f("\tmovi r4, %d", nodes)
	s.f("\tcmp r2, r4")
	s.f("\tje bdone")
	s.f("\tmov r4, r2")
	s.f("\taddi r4, 3739") // odd stride, coprime with nodes
	s.f("\tmovi r5, %d", nodes-1)
	s.f("\tand r4, r5") // nodes is a power of two
	s.f("\tmov r5, r2")
	s.f("\tshli r5, 2")
	s.f("\tmovi r6, ring")
	s.f("\tstorer [r6+r5], r4")
	s.f("\taddi r2, 1")
	s.f("\tjmp bloop")
	s.f("bdone:")
	s.f("\tret")
	s.f(".data")
	s.f("ring: .space %d", nodes*4)
	return s.String(), nil
}

// genSoplex: sparse matrix-vector products through index arrays, with eight
// fully unrolled row-kernel variants selected by row number (~1.1k hot
// instructions of gather code).
func genSoplex(scale int) (string, []byte) {
	const (
		rows     = 256
		nnz      = 16 // nonzeros per row
		variants = 8
	)
	s := &src{}
	s.f("; soplex analog: sparse matrix-vector products via index indirection")
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fillvals")
	s.f("\tcall fillidx")
	s.f("\tcall fillx")
	s.f("\tmovi r9, 0")
	s.f("\tmovi r11, xvec")
	emitRepeatHeader(s, "s", 4*scale)
	s.f("\tmovi r2, 0") // row
	s.f("rowl:")
	s.f("\tmovi r4, %d", rows)
	s.f("\tcmp r2, r4")
	s.f("\tje rdone")
	// Row base pointers.
	s.f("\tmov r10, r2")
	s.f("\tshli r10, %d", 6) // * nnz * 4
	s.f("\tmovi r12, colidx")
	s.f("\tadd r10, r12")
	s.f("\tmov r12, r2")
	s.f("\tshli r12, 6")
	s.f("\tmovi r4, vals")
	s.f("\tadd r12, r4")
	s.f("\tmovi r5, 0") // accumulator
	// Dispatch to the row-kernel variant for row & 7.
	s.f("\tmov r4, r2")
	s.f("\tandi r4, %d", variants-1)
	for v := 0; v < variants; v++ {
		s.f("\tcmpi r4, %d", v)
		s.f("\tje rowv%d", v)
	}
	s.f("\tjmp rowvdone")
	for v := 0; v < variants; v++ {
		s.f("rowv%d:", v)
		for k := 0; k < nnz; k++ {
			off := 4 * k
			s.f("\tload r3, [r10+%d]", off)
			s.f("\tandi r3, 4095")
			s.f("\tshli r3, 2")
			s.f("\tloadr r0, [r11+r3]") // x[col]
			s.f("\tload r1, [r12+%d]", off)
			s.f("\tshri r1, %d", 8+v%4)
			s.f("\tmul r0, r1")
			s.f("\tadd r5, r0")
		}
		s.f("\tjmp rowvdone")
	}
	s.f("rowvdone:")
	// Pivot-style comparison: track the max row sum.
	s.f("\tcmp r5, r9")
	s.f("\tjle nomax")
	s.f("\tmov r9, r5")
	s.f("nomax:")
	s.f("\taddi r2, 1")
	s.f("\tjmp rowl")
	s.f("rdone:")
	emitRepeatFooter(s, "s")
	emitEpilogue(s)
	emitLCGFillWords(s, "fillvals", "vals", rows*nnz, 23)
	emitLCGFillWords(s, "fillidx", "colidx", rows*nnz, 41)
	emitLCGFillWords(s, "fillx", "xvec", 4096, 61)
	s.f(".data")
	s.f("vals:   .space %d", rows*nnz*4)
	s.f("colidx: .space %d", rows*nnz*4)
	s.f("xvec:   .space %d", 4096*4)
	return s.String(), nil
}

// genHmmer: Viterbi-style dynamic programming with the per-step state loop
// fully unrolled (47 states x ~15 instructions).
func genHmmer(scale int) (string, []byte) {
	const (
		states = 48
		steps  = 128
	)
	s := &src{}
	s.f("; hmmer analog: Viterbi DP, %d-state unrolled inner loop x %d steps", states, steps)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fillem")
	s.f("\tmovi r9, 0")
	s.f("\tmovi r6, score")
	s.f("\tmovi r4, emit")
	emitRepeatHeader(s, "h", 3*scale)
	s.f("\tmovi r2, 0") // t
	s.f("tl:")
	s.f("\tcmpi r2, %d", steps)
	s.f("\tje tdone")
	s.f("\tmov r7, r2")
	s.f("\tmovi r3, %d", states)
	s.f("\tmul r7, r3") // r7 = t*states
	for st := 1; st < states; st++ {
		off := 4 * st
		s.f("\tload r0, [r6+%d]", off)
		s.f("\tload r1, [r6+%d]", off-4)
		s.f("\tcmp r0, r1")
		s.f("\tjge hk%d", st)
		s.f("\tmov r0, r1")
		s.f("hk%d:", st)
		s.f("\tmov r5, r7")
		s.f("\taddi r5, %d", st)
		s.f("\tandi r5, 8191")
		s.f("\tshli r5, 2")
		s.f("\tloadr r1, [r4+r5]")
		s.f("\tshri r1, 8") // emit words are 16-bit; keep an 8-bit increment
		s.f("\tadd r0, r1")
		s.f("\tandi r0, 0x7fff")
		s.f("\tstore [r6+%d], r0", off)
		s.f("\tadd r9, r0")
	}
	s.f("\taddi r2, 1")
	s.f("\tjmp tl")
	s.f("tdone:")
	emitRepeatFooter(s, "h")
	emitEpilogue(s)
	emitLCGFillWords(s, "fillem", "emit", 8192, 77)
	s.f(".data")
	s.f("emit:  .space %d", 8192*4)
	s.f("score: .space %d", states*4)
	return s.String(), nil
}

// genBzip2: RLE + move-to-front over a byte buffer, followed by an unrolled
// bit-mixing output pass — byte loads, data-dependent branches, and a second
// hot phase.
func genBzip2(scale int) (string, []byte) {
	const (
		bytes  = 2048
		unroll = 96
	)
	s := &src{}
	s.f("; bzip2 analog: RLE + move-to-front, then an unrolled bit-mix pass")
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fillin")
	s.f("\tcall initmtf")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "b", 2*scale)
	// Phase 1: RLE + MTF with data-dependent runs.
	s.f("\tmovi r2, inbuf") // cursor
	s.f("\tmovi r3, %d", bytes)
	s.f("rle:")
	s.f("\tcmpi r3, 0")
	s.f("\tje mixphase")
	s.f("\tloadb r4, [r2+0]") // current byte
	s.f("\tandi r4, 63")      // 6-bit alphabet (the MTF table covers 0..63)
	s.f("\tmovi r5, 1")       // run length
	s.f("run:")
	s.f("\tcmpi r3, 1")
	s.f("\tje runout")
	s.f("\tloadb r6, [r2+1]")
	s.f("\tandi r6, 63")
	s.f("\tcmp r6, r4")
	s.f("\tjne runout")
	s.f("\taddi r5, 1")
	s.f("\taddi r2, 1")
	s.f("\tsubi r3, 1")
	s.f("\tcmpi r5, 255")
	s.f("\tjne run")
	s.f("runout:")
	// Move-to-front of r4: find its rank with a linear scan.
	s.f("\tmovi r6, 0") // rank
	s.f("mtfl:")
	s.f("\tmovi r7, mtf")
	s.f("\tloadr r0, [r7+r6]")
	s.f("\tandi r0, 255")
	s.f("\tcmp r0, r4")
	s.f("\tje mtfhit")
	s.f("\taddi r6, 4")
	s.f("\tjmp mtfl")
	s.f("mtfhit:")
	s.f("\tadd r9, r6")
	s.f("\tadd r9, r5")
	s.f("\taddi r2, 1")
	s.f("\tsubi r3, 1")
	s.f("\tjmp rle")
	// Phase 2: unrolled bit-mix/checksum pass over the whole buffer.
	s.f("mixphase:")
	s.f("\tmovi r2, inbuf")
	s.f("\tmovi r3, %d", bytes/4/unroll)
	s.f("mix:")
	s.f("\tcmpi r3, 0")
	s.f("\tje mdone")
	for k := 0; k < unroll; k++ {
		off := 4 * k
		s.f("\tload r5, [r2+%d]", off)
		s.f("\tmov r6, r5")
		s.f("\tshri r6, 7")
		s.f("\txor r5, r6")
		s.f("\tadd r9, r5")
	}
	s.f("\taddi r2, %d", 4*unroll)
	s.f("\tsubi r3, 1")
	s.f("\tjmp mix")
	s.f("mdone:")
	emitRepeatFooter(s, "b")
	emitEpilogue(s)
	emitLCGFillBytes(s, "fillin", "inbuf", bytes, 3)
	// initmtf: mtf[i] = i & 63 (input bytes are masked to 6 bits, so the
	// scan always terminates).
	s.f(".func initmtf")
	s.f("initmtf:")
	s.f("\tmovi r2, 0")
	s.f("il:")
	s.f("\tcmpi r2, 256")
	s.f("\tje idone")
	s.f("\tmov r4, r2")
	s.f("\tandi r4, 63")
	s.f("\tmov r5, r2")
	s.f("\tshli r5, 2")
	s.f("\tmovi r6, mtf")
	s.f("\tstorer [r6+r5], r4")
	s.f("\taddi r2, 1")
	s.f("\tjmp il")
	s.f("idone:")
	s.f("\tret")
	s.f(".data")
	s.f("inbuf: .space %d", bytes)
	s.f("mtf:   .space %d", 256*4)
	return s.String(), nil
}
