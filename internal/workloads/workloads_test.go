package workloads

import (
	"testing"

	"vcfr/internal/cfg"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
)

func TestAllWorkloadsAssembleAndValidate(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w, err := ByName(name, 1)
			if err != nil {
				t.Fatalf("ByName: %v", err)
			}
			if err := w.Img.Validate(); err != nil {
				t.Fatalf("Validate: %v", err)
			}
			if w.Desc == "" {
				t.Error("missing description")
			}
		})
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("quake", 1); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadsRunAndHalt(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w := MustByName(name, 1)
			res, err := emu.Run(w.Img, emu.Config{
				Mode:     emu.ModeNative,
				Input:    w.Input,
				MaxSteps: 5_000_000,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ExitCode != 0 {
				t.Errorf("exit = %d", res.ExitCode)
			}
			if len(res.Out) == 0 {
				t.Error("no checksum output")
			}
			// Scale-1 dynamic size: big enough to be a meaningful benchmark
			// kernel, small enough for the test suite. ELF fixtures are
			// front-end correctness binaries, not benchmark kernels, so the
			// floor applies only to the synthetic analogs.
			if w.Source != SourceELF && res.Stats.Instructions < 40_000 {
				t.Errorf("only %d instructions at scale 1", res.Stats.Instructions)
			}
			if res.Stats.Instructions > 3_000_000 {
				t.Errorf("%d instructions at scale 1: too slow for tests", res.Stats.Instructions)
			}
		})
	}
}

func TestWorkloadsScaleGrowsDynamicCount(t *testing.T) {
	a := MustByName("memcpy", 1)
	b := MustByName("memcpy", 3)
	ra, err := emu.Run(a.Img, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	rb, err := emu.Run(b.Img, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	if rb.Stats.Instructions < 2*ra.Stats.Instructions {
		t.Errorf("scale 3 ran %d vs scale 1's %d", rb.Stats.Instructions, ra.Stats.Instructions)
	}
	// Static code size is scale-invariant.
	if len(a.Img.Text().Data) != len(b.Img.Text().Data) {
		t.Error("scaling changed static code size")
	}
}

func TestWorkloadsDeterministic(t *testing.T) {
	a := MustByName("gcc", 1)
	b := MustByName("gcc", 1)
	if string(a.Img.Text().Data) != string(b.Img.Text().Data) {
		t.Error("generation is not deterministic")
	}
}

// TestWorkloadsEquivalentUnderRandomization is the core soundness check:
// every workload must produce identical output natively, scattered, and
// under VCFR.
func TestWorkloadsEquivalentUnderRandomization(t *testing.T) {
	for _, name := range Names() {
		t.Run(name, func(t *testing.T) {
			w := MustByName(name, 1)
			res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 7, Spread: 4})
			if err != nil {
				t.Fatalf("Rewrite: %v", err)
			}
			native, err := emu.Run(res.Orig, emu.Config{
				Mode: emu.ModeNative, Input: w.Input, MaxSteps: 5_000_000})
			if err != nil {
				t.Fatalf("native: %v", err)
			}
			vcfr, err := emu.Run(res.VCFR, emu.Config{
				Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA,
				Input: w.Input, MaxSteps: 5_000_000})
			if err != nil {
				t.Fatalf("vcfr: %v", err)
			}
			if string(native.Out) != string(vcfr.Out) {
				t.Errorf("VCFR output %q != native %q", vcfr.Out, native.Out)
			}
			scat, err := emu.Run(res.Scattered, emu.Config{
				Mode: emu.ModeScattered, Trans: res.Tables,
				Input: w.Input, MaxSteps: 5_000_000})
			if err != nil {
				t.Fatalf("scattered: %v", err)
			}
			if string(native.Out) != string(scat.Out) {
				t.Errorf("scattered output %q != native %q", scat.Out, native.Out)
			}
		})
	}
}

// TestWorkloadsTableIIShape checks the static control-flow profile of the
// analogs against the paper's Table II shape: direct transfers dominate
// indirect ones everywhere, and xalan has by far the most indirect calls.
func TestWorkloadsTableIIShape(t *testing.T) {
	stats := make(map[string]cfg.Stats)
	for _, name := range SpecNames {
		w := MustByName(name, 1)
		g, err := cfg.Build(w.Img)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stats[name] = g.Stats()
	}
	for name, s := range stats {
		if s.DirectTransfers <= s.IndirectTransfers {
			t.Errorf("%s: direct (%d) <= indirect (%d), Table II shape broken",
				name, s.DirectTransfers, s.IndirectTransfers)
		}
	}
	xalan := stats["xalan"].IndirectCalls
	for name, s := range stats {
		if name == "xalan" {
			continue
		}
		if s.IndirectCalls*5 > xalan {
			t.Errorf("%s indirect calls %d too close to xalan's %d",
				name, s.IndirectCalls, xalan)
		}
	}
	// gcc and xalan are the code-footprint giants.
	for _, small := range []string{"lbm", "libquantum", "mcf"} {
		if stats[small].Instructions >= stats["gcc"].Instructions {
			t.Errorf("%s static size %d >= gcc's %d",
				small, stats[small].Instructions, stats["gcc"].Instructions)
		}
	}
}

// TestWorkloadsFig9Shape: every analog has a sensible function population
// for the Fig. 9 analysis.
func TestWorkloadsFig9Shape(t *testing.T) {
	for _, name := range SpecNames {
		w := MustByName(name, 1)
		g, err := cfg.Build(w.Img)
		if err != nil {
			t.Fatal(err)
		}
		s := g.Stats()
		if s.Functions < 2 {
			t.Errorf("%s: only %d functions", name, s.Functions)
		}
		if s.FuncsWithRet == 0 {
			t.Errorf("%s: no functions with ret", name)
		}
	}
}

func TestFig2SetAndSpecSets(t *testing.T) {
	if got := len(Spec(1)); got != 11 {
		t.Errorf("Spec len = %d, want 11", got)
	}
	if got := len(Fig2Set(1)); got != 6 {
		t.Errorf("Fig2Set len = %d, want 6", got)
	}
}
