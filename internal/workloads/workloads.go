// Package workloads generates the synthetic SPEC CPU2006 analogs the
// evaluation runs (Sec. VI-B). SPEC binaries are licensed and x86-specific,
// so each analog is a generated VX program engineered to exhibit the
// control-flow and memory character that drives the paper's results for the
// corresponding benchmark:
//
//	bzip2       byte-stream compression: RLE + move-to-front, data-dependent branches
//	gcc         very large code footprint, hundreds of functions, irregular call order
//	mcf         pointer chasing over a scattered linked structure (DL1-bound)
//	hmmer       dynamic-programming inner loops (Viterbi-like), regular branches
//	sjeng       recursive game-tree search, deep call/return chains
//	libquantum  long streaming array sweeps, tiny loop body
//	h264ref     motion-estimation block search, call-dense inner loop, byte loads
//	lbm         large unrolled stencil body, helper calls spread across it
//	xalan       virtual-dispatch interpreter over a tree, huge code + indirect calls
//	namd        pairwise force loops, call-dense fixed-point arithmetic
//	soplex      sparse matrix-vector products through index indirection
//
// plus the Fig. 2 extras:
//
//	memcpy      word-wise copy loops
//	python      bytecode interpreter running a synthetic program (dispatch-heavy)
//
// Every workload prints a final checksum via SysWriteInt, so functional
// equivalence between the original and every randomized execution mode is
// checked end to end. Generation is deterministic: the same name and scale
// always produce the same image.
//
// Alongside the synthetic analogs, the registry serves the embedded
// real-binary fixtures (elf-fib, elf-crc32, elf-dispatch): RV64 ELF
// executables lifted through internal/realbin into the same Workload shape.
// Every consumer of ByName — the harness, the fault/attack/multicore
// campaigns, the vcfrd job API — gets real-binary support through this one
// entry point.
package workloads

import (
	"fmt"
	"sort"

	"vcfr/internal/asm"
	"vcfr/internal/program"
	"vcfr/internal/realbin"
	"vcfr/internal/realbin/fixtures"
)

// Workload source kinds.
const (
	// SourceSynthetic marks workloads generated as VX assembly.
	SourceSynthetic = "synthetic"
	// SourceELF marks workloads lifted from embedded RV64 ELF binaries.
	SourceELF = "elf"
)

// Workload is one benchmark program, ready to run.
type Workload struct {
	Name   string
	Desc   string
	Source string // SourceSynthetic or SourceELF
	Img    *program.Image
	Input  []byte // stdin served to SysGetChar (empty for most)
}

// generator builds a workload's assembly source at a given scale.
type generator struct {
	desc  string
	build func(scale int) (source string, input []byte)
}

// registry maps workload names to generators. Populated in this file so the
// ordering of All is explicit and stable.
var registry = map[string]generator{
	"bzip2":      {"RLE + move-to-front compression over a pseudo-random buffer", genBzip2},
	"gcc":        {"large irregular code footprint, hundreds of small functions", genGCC},
	"mcf":        {"pointer chasing over a permuted linked ring", genMCF},
	"hmmer":      {"Viterbi-style dynamic-programming sweeps", genHmmer},
	"sjeng":      {"recursive negamax game-tree search", genSjeng},
	"libquantum": {"streaming gate operations over a large register array", genLibquantum},
	"h264ref":    {"SAD block motion search with helper calls in the inner loop", genH264},
	"lbm":        {"unrolled stencil relaxation with scattered helper calls", genLBM},
	"xalan":      {"virtual-dispatch tree transformation interpreter", genXalan},
	"namd":       {"pairwise force computation, call-dense fixed-point math", genNamd},
	"soplex":     {"sparse matrix-vector products via index arrays", genSoplex},
	"memcpy":     {"repeated word-wise buffer copies", genMemcpy},
	"python":     {"bytecode interpreter executing a synthetic program", genPython},
}

// SpecNames are the 11 SPEC CPU2006 analogs, in the paper's Table II order.
var SpecNames = []string{
	"bzip2", "gcc", "h264ref", "hmmer", "lbm", "libquantum",
	"mcf", "namd", "sjeng", "soplex", "xalan",
}

// Fig2Names are the applications of the paper's Fig. 2.
var Fig2Names = []string{"bzip2", "h264ref", "hmmer", "memcpy", "python", "xalan"}

// ELFNames returns the embedded real-binary workload names, in canonical
// fixture order.
func ELFNames() []string {
	var out []string
	for _, f := range fixtures.All() {
		out = append(out, f.Name)
	}
	return out
}

// Names returns every available workload name — synthetic and ELF — sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	out = append(out, ELFNames()...)
	sort.Strings(out)
	return out
}

// ByName builds the named workload at the given scale (scale <= 0 means 1).
// Scale multiplies iteration counts, not code size, so static analyses are
// scale-invariant while dynamic instruction counts grow. ELF workloads are
// fixed binaries; scale is ignored for them.
func ByName(name string, scale int) (Workload, error) {
	if fx, ok := fixtures.ByName(name); ok {
		lifted, err := realbin.Load(fx.Data, fx.Name)
		if err != nil {
			return Workload{}, fmt.Errorf("workloads: %s: %w", name, err)
		}
		return Workload{Name: fx.Name, Desc: fx.Desc, Source: SourceELF, Img: lifted.Img}, nil
	}
	g, ok := registry[name]
	if !ok {
		return Workload{}, fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	if scale <= 0 {
		scale = 1
	}
	src, input := g.build(scale)
	img, err := asm.Assemble(name, src)
	if err != nil {
		return Workload{}, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return Workload{Name: name, Desc: g.desc, Source: SourceSynthetic, Img: img, Input: input}, nil
}

// FromELF lifts an arbitrary RV64 ELF binary (e.g. one passed to
// `vcfrsim -elf`) into a Workload.
func FromELF(data []byte, name string) (Workload, error) {
	lifted, err := realbin.Load(data, name)
	if err != nil {
		return Workload{}, fmt.Errorf("workloads: %s: %w", name, err)
	}
	return Workload{
		Name:   name,
		Desc:   fmt.Sprintf("lifted RV64 ELF binary (%d VX instructions)", lifted.Report.VXInstructions),
		Source: SourceELF,
		Img:    lifted.Img,
	}, nil
}

// Source returns the generated assembly source for the named workload at
// the given scale — the exact text ByName assembles. It exists to seed
// corpora (the assembler round-trip fuzzer) with realistic whole programs.
func Source(name string, scale int) (string, error) {
	g, ok := registry[name]
	if !ok {
		if _, elf := fixtures.ByName(name); elf {
			return "", fmt.Errorf("workloads: %s is an ELF workload with no assembly source", name)
		}
		return "", fmt.Errorf("workloads: unknown workload %q (have %v)", name, Names())
	}
	if scale <= 0 {
		scale = 1
	}
	src, _ := g.build(scale)
	return src, nil
}

// MustAssembleSource assembles generated source that is known-good by
// construction; it panics on error (generator bugs are programming errors).
func MustAssembleSource(name, source string) *program.Image {
	return asm.MustAssemble(name, source)
}

// MustByName is ByName for known-good names; it panics on error.
func MustByName(name string, scale int) Workload {
	w, err := ByName(name, scale)
	if err != nil {
		panic(err)
	}
	return w
}

// Spec builds all 11 SPEC analogs.
func Spec(scale int) []Workload {
	out := make([]Workload, 0, len(SpecNames))
	for _, n := range SpecNames {
		out = append(out, MustByName(n, scale))
	}
	return out
}

// Fig2Set builds the Fig. 2 application set.
func Fig2Set(scale int) []Workload {
	out := make([]Workload, 0, len(Fig2Names))
	for _, n := range Fig2Names {
		out = append(out, MustByName(n, scale))
	}
	return out
}
