package workloads

// Call-dense workload generators: sjeng, namd, h264ref. These are the
// profiles where return-address randomization and DRC randomization-direction
// lookups matter most, and where naive ILR loses badly (Fig. 12 shows
// namd/h264ref among the biggest VCFR wins).

// emitEval emits an unrolled feature-evaluation block: r0 = mix of r1 over
// `features` terms. Used to give sjeng's leaf evaluation a realistic
// instruction footprint.
func emitEval(s *src, label string, features int, rng *lcg) {
	s.f("%s:", label)
	s.f("\tmovi r0, 0")
	for f := 0; f < features; f++ {
		s.f("\tmov r5, r1")
		s.f("\tshri r5, %d", rng.intn(13))
		s.f("\txori r5, %d", rng.intn(1<<12))
		s.f("\tadd r0, r5")
	}
	s.f("\tandi r0, 0x3fff")
	s.f("\tret")
}

// genSjeng: recursive negamax-style tree search with branching factor 3.
// Two mutually recursive search variants (even/odd ply) and an unrolled
// 72-feature leaf evaluator give the search a realistic hot-code footprint;
// the deep call/return chains exercise the RAS and the return-address
// randomization machinery.
func genSjeng(scale int) (string, []byte) {
	const depth = 7
	rng := newLCG(777)
	s := &src{}
	s.f("; sjeng analog: recursive game-tree search, branching 3, depth %d", depth)
	s.f(".entry main")
	s.f("main:")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "g", scale)
	s.f("\tmov r1, r8") // root position varies per repetition
	s.f("\tmovi r2, %d", depth)
	s.f("\tcall negamaxa")
	s.f("\tadd r9, r0")
	emitRepeatFooter(s, "g")
	emitEpilogue(s)

	// Two specialized search variants calling each other (even/odd ply).
	for v, names := range [][2]string{{"negamaxa", "negamaxb"}, {"negamaxb", "negamaxa"}} {
		self, other := names[0], names[1]
		s.f(".func %s", self)
		s.f("%s:", self)
		s.f("\tcmpi r2, 0")
		s.f("\tjg %s_rec", self)
		s.f("\tjmp eval%d", v)
		s.f("%s_rec:", self)
		s.f("\tpush bp")
		s.f("\tmov bp, sp")
		s.f("\tsubi sp, 16") // [bp-4]=pos [bp-8]=depth [bp-12]=move [bp-16]=best
		s.f("\tstore [bp-4], r1")
		s.f("\tstore [bp-8], r2")
		s.f("\tmovi r4, 0")
		s.f("\tstore [bp-12], r4")
		s.f("\tstore [bp-16], r4")
		s.f("%s_ml:", self)
		s.f("\tload r4, [bp-12]")
		s.f("\tcmpi r4, 3")
		s.f("\tje %s_mdone", self)
		// child = pos ^ ((move+1) * golden >> 7)
		s.f("\tload r1, [bp-4]")
		s.f("\tmov r5, r4")
		s.f("\taddi r5, 1")
		s.f("\tmovi r6, 2654435761")
		s.f("\tmul r5, r6")
		s.f("\tshri r5, 7")
		s.f("\txor r1, r5")
		s.f("\tload r2, [bp-8]")
		s.f("\tsubi r2, 1")
		s.f("\tcall %s", other)
		s.f("\tload r5, [bp-16]")
		s.f("\tcmp r0, r5")
		s.f("\tjle %s_keep", self)
		s.f("\tstore [bp-16], r0")
		s.f("%s_keep:", self)
		s.f("\tload r4, [bp-12]")
		s.f("\taddi r4, 1")
		s.f("\tstore [bp-12], r4")
		s.f("\tjmp %s_ml", self)
		s.f("%s_mdone:", self)
		s.f("\tload r0, [bp-16]")
		s.f("\tmov sp, bp")
		s.f("\tpop bp")
		s.f("\tret")
	}
	// Unrolled leaf evaluators (one per search variant).
	s.f(".func eval0")
	emitEval(s, "eval0", 72, rng)
	s.f(".func eval1")
	emitEval(s, "eval1", 72, rng)
	return s.String(), nil
}

// genNamd: pairwise force computation over N particles. The inner loop is
// unrolled eight-wide, and each unroll slot calls its own specialized
// ~30-term force kernel — the call-dense numeric profile that makes namd one
// of the paper's biggest VCFR-over-naive wins.
func genNamd(scale int) (string, []byte) {
	const (
		n        = 96
		unroll   = 8
		variants = 8
		terms    = 30
	)
	rng := newLCG(4242)
	s := &src{}
	s.f("; namd analog: pairwise force loops over %d particles, %d force kernels", n, variants)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fillpx")
	s.f("\tcall fillpy")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "n", scale)
	s.f("\tmovi r10, 0") // i
	s.f("il:")
	s.f("\tcmpi r10, %d", n-1)
	s.f("\tje idone")
	s.f("\tmov r11, r10")
	s.f("\taddi r11, 1") // j
	// Unrolled block while j+unroll <= n.
	s.f("jblk:")
	s.f("\tmov r4, r11")
	s.f("\taddi r4, %d", unroll)
	s.f("\tcmpi r4, %d", n)
	s.f("\tjg jtail")
	for k := 0; k < unroll; k++ {
		emitPairBody(s, k)
		s.f("\tcall force%d", k%variants)
		s.f("\tadd r9, r0")
		s.f("\taddi r11, 1")
	}
	s.f("\tjmp jblk")
	// Scalar tail.
	s.f("jtail:")
	s.f("\tcmpi r11, %d", n)
	s.f("\tje jdone")
	emitPairBody(s, 0)
	s.f("\tcall force0")
	s.f("\tadd r9, r0")
	s.f("\taddi r11, 1")
	s.f("\tjmp jtail")
	s.f("jdone:")
	s.f("\taddi r10, 1")
	s.f("\tjmp il")
	s.f("idone:")
	emitRepeatFooter(s, "n")
	emitEpilogue(s)

	// Specialized force kernels: |dx|,|dy| then an unrolled fixed-point
	// polynomial with per-variant coefficients.
	for v := 0; v < variants; v++ {
		s.f(".func force%d", v)
		s.f("force%d:", v)
		s.f("\tcmpi r1, 0")
		s.f("\tjge f%dx", v)
		s.f("\tneg r1")
		s.f("f%dx:", v)
		s.f("\tcmpi r2, 0")
		s.f("\tjge f%dy", v)
		s.f("\tneg r2")
		s.f("f%dy:", v)
		s.f("\tshri r1, 12")
		s.f("\tshri r2, 12")
		s.f("\tmov r0, r1")
		s.f("\tmul r0, r1")
		s.f("\tmov r3, r2")
		s.f("\tmul r3, r2")
		s.f("\tadd r0, r3")
		s.f("\taddi r0, 1")
		for t := 0; t < terms; t++ {
			s.f("\tmov r3, r0")
			s.f("\tshri r3, %d", 1+rng.intn(6))
			s.f("\txori r3, %d", rng.intn(1<<11))
			s.f("\tadd r0, r3")
		}
		s.f("\tandi r0, 0x3fff")
		s.f("\tret")
	}

	emitLCGFillWords(s, "fillpx", "px", n, 111)
	emitLCGFillWords(s, "fillpy", "py", n, 222)
	s.f(".data")
	s.f("px: .space %d", n*4)
	s.f("py: .space %d", n*4)
	return s.String(), nil
}

// emitPairBody loads particle i (r10) and j (r11) coordinates and leaves
// dx in r1 and dy in r2.
func emitPairBody(s *src, slot int) {
	s.f("\tmov r4, r10")
	s.f("\tshli r4, 2")
	s.f("\tmovi r5, px")
	s.f("\tloadr r1, [r5+r4]")
	s.f("\tmovi r5, py")
	s.f("\tloadr r2, [r5+r4]")
	s.f("\tmov r4, r11")
	s.f("\tshli r4, 2")
	s.f("\tmovi r5, px")
	s.f("\tloadr r6, [r5+r4]")
	s.f("\tmovi r5, py")
	s.f("\tloadr r7, [r5+r4]")
	s.f("\tsub r1, r6")
	s.f("\tsub r2, r7")
}

// genH264: exhaustive SAD block motion search. Two fully unrolled 64-pixel
// SAD kernels (called for even/odd candidates) with per-row early exits —
// byte loads, branchy, call-dense.
func genH264(scale int) (string, []byte) {
	const (
		frameW = 40 // reference frame is frameW x frameW bytes
		block  = 8
		search = 4 // +/- window
	)
	s := &src{}
	s.f("; h264ref analog: %dx%d SAD motion search over a +/-%d window", block, block, search)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fillframe")
	s.f("\tcall fillcur")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "v", 6*scale)
	s.f("\tmovi r12, 99999999") // best SAD
	s.f("\tmovi r10, 0")        // dy in [0, 2*search]
	s.f("dyl:")
	s.f("\tcmpi r10, %d", 2*search+1)
	s.f("\tje dydone")
	s.f("\tmovi r11, 0") // dx
	s.f("dxl:")
	s.f("\tcmpi r11, %d", 2*search+1)
	s.f("\tje dxdone")
	// r1 = frame offset of candidate block = (dy*frameW + dx)
	s.f("\tmov r1, r10")
	s.f("\tmovi r4, %d", frameW)
	s.f("\tmul r1, r4")
	s.f("\tadd r1, r11")
	// Even/odd candidates use the two specialized kernels.
	s.f("\tmov r4, r11")
	s.f("\tandi r4, 1")
	s.f("\tcmpi r4, 0")
	s.f("\tje evenk")
	s.f("\tcall sadodd")
	s.f("\tjmp kdone")
	s.f("evenk:")
	s.f("\tcall sadeven")
	s.f("kdone:")
	s.f("\tcmp r0, r12")
	s.f("\tjge nosave")
	s.f("\tmov r12, r0")
	s.f("nosave:")
	s.f("\taddi r11, 1")
	s.f("\tjmp dxl")
	s.f("dxdone:")
	s.f("\taddi r10, 1")
	s.f("\tjmp dyl")
	s.f("dydone:")
	s.f("\tadd r9, r12")
	emitRepeatFooter(s, "v")
	emitEpilogue(s)

	for _, name := range []string{"sadeven", "sadodd"} {
		s.f(".func %s", name)
		s.f("%s:", name)
		s.f("\tmovi r0, 0") // sad
		s.f("\tmovi r5, frame")
		s.f("\tadd r5, r1") // candidate base
		s.f("\tmovi r4, cur")
		for r := 0; r < block; r++ {
			for c := 0; c < block; c++ {
				fOff := r*frameW + c
				cOff := r*block + c
				s.f("\tloadb r6, [r5+%d]", fOff)
				s.f("\tloadb r7, [r4+%d]", cOff)
				s.f("\tsub r6, r7")
				s.f("\tcmpi r6, 0")
				s.f("\tjge %s_p%d_%d", name, r, c)
				s.f("\tneg r6")
				s.f("%s_p%d_%d:", name, r, c)
				s.f("\tadd r0, r6")
			}
			// Early exit after each row: partial SAD already worse.
			s.f("\tcmp r0, r12")
			s.f("\tjge %s_out", name)
		}
		s.f("%s_out:", name)
		s.f("\tret")
	}

	emitLCGFillBytes(s, "fillframe", "frame", frameW*frameW, 8)
	emitLCGFillBytes(s, "fillcur", "cur", block*block, 9)
	s.f(".data")
	s.f("frame: .space %d", frameW*frameW)
	s.f("cur:   .space %d", block*block)
	return s.String(), nil
}
