package workloads

import (
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
)

// TestRandomProgramsDifferential is the repository's heaviest correctness
// test: for many random structured programs, every execution substrate must
// agree — reference interpreter (native), scattered interpretation,
// emulated-ILR interpretation, VCFR interpretation, and all three
// cycle-level pipeline modes.
func TestRandomProgramsDifferential(t *testing.T) {
	seeds := 40
	if testing.Short() {
		seeds = 8
	}
	for seed := uint32(0); seed < uint32(seeds); seed++ {
		w := Random(seed)
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: int64(seed) + 1})
		if err != nil {
			t.Fatalf("seed %d: Rewrite: %v", seed, err)
		}

		want, err := emu.Run(res.Orig, emu.Config{Mode: emu.ModeNative, MaxSteps: 3_000_000})
		if err != nil {
			t.Fatalf("seed %d: native: %v", seed, err)
		}
		if len(want.Out) == 0 {
			t.Fatalf("seed %d: empty output", seed)
		}

		check := func(label string, out []byte, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("seed %d: %s: %v", seed, label, err)
			}
			if string(out) != string(want.Out) {
				t.Fatalf("seed %d: %s output %q != native %q", seed, label, out, want.Out)
			}
		}

		r, err := emu.Run(res.Scattered, emu.Config{
			Mode: emu.ModeScattered, Trans: res.Tables, MaxSteps: 3_000_000})
		check("scattered-emu", r.Out, err)
		r, err = emu.Run(res.Scattered, emu.Config{
			Mode: emu.ModeEmulatedILR, Trans: res.Tables, MaxSteps: 3_000_000})
		check("emulated-ilr", r.Out, err)
		r, err = emu.Run(res.VCFR, emu.Config{
			Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, MaxSteps: 3_000_000})
		check("vcfr-emu", r.Out, err)

		for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR} {
			var img = res.Orig
			var trans emu.Translator
			var randRA map[uint32]uint32
			switch mode {
			case cpu.ModeNaiveILR:
				img, trans = res.Scattered, res.Tables
			case cpu.ModeVCFR:
				img, trans, randRA = res.VCFR, res.Tables, res.RandRA
			}
			p, err := cpu.New(img, cpu.DefaultConfig(mode), trans, randRA)
			if err != nil {
				t.Fatalf("seed %d: %v: %v", seed, mode, err)
			}
			out, err := p.Run(3_000_000)
			check("pipeline-"+mode.String(), out.Out, err)
		}
	}
}

// TestRandomProgramsDeterministic: the generator is seed-stable.
func TestRandomProgramsDeterministic(t *testing.T) {
	a := Random(7)
	b := Random(7)
	if string(a.Img.Text().Data) != string(b.Img.Text().Data) {
		t.Error("Random(7) differs between calls")
	}
	c := Random(8)
	if string(a.Img.Text().Data) == string(c.Img.Text().Data) {
		t.Error("different seeds produced identical programs")
	}
}
