package workloads

import "fmt"

// Random generates a structured random program for differential testing:
// a handful of leaf functions with random ALU/memory bodies, and a main
// routine that runs a bounded counted loop of random direct calls, forward
// conditional branches, indirect calls through code-address constants, and
// scratch-memory traffic, finishing with a register checksum.
//
// Programs are total by construction (the only backward edge is the counted
// loop), deterministic for a given seed, and exercise every control-flow
// feature the rewriter must preserve. The test suites run them through
// every execution substrate and compare outputs.
func Random(seed uint32) Workload {
	name, source := RandomSource(seed)
	return Workload{
		Name: name,
		Desc: "structured random differential-test program",
		Img:  MustAssembleSource(name, source),
	}
}

// RandomSource generates the source text of Random without assembling it,
// for corpora that want the raw program (e.g. the assembler fuzzer).
func RandomSource(seed uint32) (name, source string) {
	rng := newLCG(seed*2654435761 + 12345)
	nfuncs := 3 + rng.intn(6)
	s := &src{}
	s.f("; random differential-test program, seed %d", seed)
	s.f(".entry main")
	s.f("main:")
	s.f("\tmovi r9, 0")
	s.f("\tmovi r12, %d", 20+rng.intn(60)) // loop counter
	s.f("mainloop:")

	blocks := 4 + rng.intn(8)
	for b := 0; b < blocks; b++ {
		// A few random ALU ops on r0-r7.
		for i, n := 0, 1+rng.intn(4); i < n; i++ {
			emitRandomALU(s, rng)
		}
		switch rng.intn(5) {
		case 0: // direct call
			s.f("\tmovi r1, %d", rng.intn(1<<12))
			s.f("\tcall rf%d", rng.intn(nfuncs))
			s.f("\tadd r9, r0")
		case 1: // indirect call through a code constant
			// The pointer lives only in r11, which never feeds arithmetic,
			// memory, or the checksum: ILR legitimately changes code-address
			// *values* (they move to the randomized space), so a program
			// that leaks them into its output is not ILR-compatible — the
			// paper's "code address computations are rare" assumption.
			s.f("\tmovi r1, %d", rng.intn(1<<12))
			s.f("\tmovi r11, rf%d", rng.intn(nfuncs))
			s.f("\tcallr r11")
			s.f("\tadd r9, r0")
		case 2: // forward conditional skip
			s.f("\tcmpi r%d, %d", rng.intn(8), rng.intn(1<<10))
			s.f("\t%s skip_%d_%d", randomBranch(rng), seed, b)
			emitRandomALU(s, rng)
			emitRandomALU(s, rng)
			s.f("skip_%d_%d:", seed, b)
		case 3: // scratch memory traffic
			s.f("\tmovi r5, scratch")
			s.f("\tmov r6, r%d", rng.intn(8))
			s.f("\tandi r6, 1020")
			s.f("\tstorer [r5+r6], r%d", rng.intn(8))
			s.f("\tloadr r7, [r5+r6]")
			s.f("\tadd r9, r7")
		case 4: // push/pop pair
			r := rng.intn(8)
			s.f("\tpush r%d", r)
			emitRandomALU(s, rng)
			s.f("\tpop r%d", r)
		}
	}
	s.f("\tsubi r12, 1")
	s.f("\tcmpi r12, 0")
	s.f("\tjg mainloop")
	// Checksum every register into r9 (masking keeps the decimal short).
	for r := 0; r < 8; r++ {
		s.f("\tadd r9, r%d", r)
	}
	s.f("\tandi r9, 0x7fffffff")
	emitEpilogue(s)

	for f := 0; f < nfuncs; f++ {
		s.f(".func rf%d", f)
		s.f("rf%d:", f)
		s.f("\tmov r0, r1")
		for i, n := 0, 2+rng.intn(6); i < n; i++ {
			switch rng.intn(4) {
			case 0:
				s.f("\taddi r0, %d", rng.intn(1<<12))
			case 1:
				s.f("\txori r0, %d", rng.intn(1<<12))
			case 2:
				s.f("\tshri r0, %d", 1+rng.intn(8))
			case 3:
				s.f("\tmovi r3, %d", 3+rng.intn(100))
				s.f("\tmul r0, r3")
			}
		}
		if rng.intn(4) == 0 && f > 0 {
			// Nested direct call to an earlier function (no recursion).
			s.f("\tpush r1")
			s.f("\tmov r1, r0")
			s.f("\tcall rf%d", rng.intn(f))
			s.f("\tpop r1")
		}
		s.f("\tandi r0, 0xffff")
		s.f("\tret")
	}
	s.f(".data")
	s.f("scratch: .space 2048")

	return fmt.Sprintf("random-%d", seed), s.String()
}

// emitRandomALU emits one random flag-safe ALU instruction over r0-r7.
func emitRandomALU(s *src, rng *lcg) {
	a, b := rng.intn(8), rng.intn(8)
	switch rng.intn(7) {
	case 0:
		s.f("\tadd r%d, r%d", a, b)
	case 1:
		s.f("\tsub r%d, r%d", a, b)
	case 2:
		s.f("\txor r%d, r%d", a, b)
	case 3:
		s.f("\tand r%d, r%d", a, b)
	case 4:
		s.f("\tor r%d, r%d", a, b)
	case 5:
		s.f("\tshri r%d, %d", a, 1+rng.intn(8))
	case 6:
		s.f("\tnot r%d", a)
	}
}

// randomBranch picks a conditional mnemonic.
func randomBranch(rng *lcg) string {
	return []string{"je", "jne", "jl", "jge", "jg", "jle", "jb", "jae"}[rng.intn(8)]
}
