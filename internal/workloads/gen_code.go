package workloads

// Large-code and dispatch-heavy workload generators: gcc, xalan, python.

// emitBytes packs a byte array into .word directives (little-endian).
func emitBytes(s *src, label string, data []byte) {
	s.f("%s:", label)
	for i := 0; i < len(data); i += 4 {
		var w uint32
		for j := 0; j < 4 && i+j < len(data); j++ {
			w |= uint32(data[i+j]) << (8 * j)
		}
		s.f("\t.word %d", w)
	}
}

// genGCC: hundreds of distinct small functions invoked in a long, irregular,
// statically unrolled call sequence — the huge-instruction-footprint profile
// of gcc. Total code is ~33 KB, slightly over the 32 KB IL1, so even the
// baseline sees instruction misses, and the scattered layout thrashes.
func genGCC(scale int) (string, []byte) {
	const (
		funcs      = 300
		phases     = 12
		phaseCalls = 100 // call sites per phase
		phaseReps  = 8   // times each phase body repeats before moving on
	)
	rng := newLCG(2024)
	s := &src{}
	s.f("; gcc analog: %d functions, %d phases x %d call sites, phased execution",
		funcs, phases, phaseCalls)
	s.f(".entry main")
	s.f("main:")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "d", scale)
	// Phased driver: each phase repeats its own 100-site call block several
	// times before moving on (real gcc passes have strong phase locality:
	// branch/call working sets fit the BTB within a phase, while the total
	// code footprint is far larger than the IL1).
	for ph := 0; ph < phases; ph++ {
		s.f("\tmovi r7, %d", phaseReps)
		s.f("phase%d:", ph)
		for c := 0; c < phaseCalls; c++ {
			fn := (ph*funcs/phases + rng.intn(funcs/phases)) % funcs
			s.f("\tmovi r1, %d", rng.intn(1<<14))
			s.f("\tcall pass%d", fn)
			s.f("\tadd r9, r0")
		}
		s.f("\tsubi r7, 1")
		s.f("\tcmpi r7, 0")
		s.f("\tjg phase%d", ph)
	}
	emitRepeatFooter(s, "d")
	emitEpilogue(s)
	for i := 0; i < funcs; i++ {
		s.f(".func pass%d", i)
		s.f("pass%d:", i)
		s.f("\tmov r0, r1")
		// A unique small body: a few arithmetic ops plus a conditional
		// early-out, so function shapes differ.
		ops := 3 + rng.intn(6)
		for k := 0; k < ops; k++ {
			switch rng.intn(5) {
			case 0:
				s.f("\taddi r0, %d", 1+rng.intn(99))
			case 1:
				s.f("\txori r0, %d", rng.intn(1<<14))
			case 2:
				s.f("\tshri r0, %d", 1+rng.intn(3))
			case 3:
				s.f("\tmovi r3, %d", 3+rng.intn(60))
				s.f("\tmul r0, r3")
			case 4:
				s.f("\tori r0, %d", rng.intn(255))
			}
		}
		s.f("\tcmpi r0, %d", rng.intn(1<<13))
		s.f("\tjl p%dout", i)
		s.f("\tshri r0, 1")
		s.f("p%dout:", i)
		s.f("\tandi r0, 0x3fff")
		if i%5 == 4 {
			// Shared-epilogue functions: no ret of their own (Fig. 9's
			// "functions without ret" population).
			s.f("\tjmp gccret")
		} else {
			s.f("\tret")
		}
	}
	s.f(".func gccret")
	s.f("gccret:")
	s.f("\tret")
	return s.String(), nil
}

// genXalan: a virtual-dispatch interpreter over a node stream. Every handler
// makes a further virtual call through a method table, giving xalan by far
// the highest static indirect-call count — the paper's Table II shape
// (xalan: 15465 indirect calls, an order of magnitude above the rest).
func genXalan(scale int) (string, []byte) {
	const (
		handlers = 160
		leaves   = 32
		nodes    = 2048
	)
	rng := newLCG(31337)
	s := &src{}
	s.f("; xalan analog: virtual-dispatch tree transform, %d handlers, %d leaf methods", handlers, leaves)
	s.f(".entry main")
	s.f("main:")
	s.f("\tcall fillnodes")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "x", 3*scale)
	s.f("\tmovi r10, 0") // node index
	s.f("nl:")
	s.f("\tmovi r4, %d", nodes)
	s.f("\tcmp r10, r4")
	s.f("\tje ndone")
	s.f("\tmovi r4, nodestream")
	s.f("\tadd r4, r10")
	s.f("\tloadb r1, [r4+0]") // node type byte
	s.f("\tmov r5, r1")
	s.f("\tandi r5, 255")
	s.f("\tshli r5, 2")
	s.f("\tmovi r4, vtable")
	s.f("\tloadr r6, [r4+r5]")
	s.f("\tcallr r6") // virtual dispatch on node type
	s.f("\tadd r9, r0")
	s.f("\taddi r10, 1")
	s.f("\tjmp nl")
	s.f("ndone:")
	emitRepeatFooter(s, "x")
	emitEpilogue(s)

	// Handlers: transform the node value and make a second-level virtual
	// call into the leaf method table.
	for i := 0; i < handlers; i++ {
		s.f(".func handle%d", i)
		s.f("handle%d:", i)
		s.f("\tmov r0, r1")
		s.f("\taddi r0, %d", i)
		s.f("\txori r0, %d", rng.intn(1<<12))
		// Direct control flow inside the method: a guard branch and a
		// direct call to a shared utility (real xalan methods are dominated
		// by direct transfers; Table II has direct >> indirect).
		s.f("\tcmpi r0, %d", rng.intn(1<<11))
		s.f("\tjl h%dskip", i)
		s.f("\tmov r1, r0")
		s.f("\tcall util%d", rng.intn(8))
		s.f("h%dskip:", i)
		s.f("\tcmpi r0, %d", rng.intn(1<<11))
		s.f("\tjge h%dalt", i)
		s.f("\taddi r0, %d", 1+rng.intn(63))
		s.f("h%dalt:", i)
		s.f("\tmov r2, r0")
		s.f("\tandi r2, %d", leaves-1)
		s.f("\tshli r2, 2")
		s.f("\tmovi r3, ltable")
		s.f("\tloadr r3, [r3+r2]")
		s.f("\tpush r0")
		s.f("\tcallr r3") // second-level virtual call
		s.f("\tpop r1")
		s.f("\tadd r0, r1")
		s.f("\tandi r0, 0x7fff")
		if i%8 == 7 {
			s.f("\tjmp xalanret") // shared epilogue: handler has no ret
		} else {
			s.f("\tret")
		}
	}
	s.f(".func xalanret")
	s.f("xalanret:")
	s.f("\tret")
	// Shared utilities reached by direct calls from the handlers.
	for i := 0; i < 8; i++ {
		s.f(".func util%d", i)
		s.f("util%d:", i)
		s.f("\tmov r0, r1")
		s.f("\tshri r0, %d", 1+i%3)
		s.f("\txori r0, %d", rng.intn(1<<10))
		s.f("\tret")
	}
	// Leaf methods: pure arithmetic, no further calls.
	for i := 0; i < leaves; i++ {
		s.f(".func leaf%d", i)
		s.f("leaf%d:", i)
		s.f("\tmov r0, r1")
		s.f("\tshri r0, %d", 1+rng.intn(4))
		s.f("\taddi r0, %d", 1+rng.intn(200))
		s.f("\tret")
	}

	emitLCGFillBytes(s, "fillnodes", "nodestream", nodes, 4)
	s.f(".data")
	s.f("nodestream: .space %d", nodes)
	// 256-entry vtable covering every type byte.
	vt := make([]string, 256)
	for i := range vt {
		vt[i] = "handle" + of(uint32(rng.intn(handlers)))
	}
	s.f("vtable: .addr %s", join(vt))
	lt := make([]string, leaves)
	for i := range lt {
		lt[i] = "leaf" + of(uint32(i))
	}
	s.f("ltable: .addr %s", join(lt))
	return s.String(), nil
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += ", "
		}
		out += p
	}
	return out
}

// of formats a uint32 in decimal (no fmt import churn in hot generators).
func of(v uint32) string {
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

// Bytecode opcodes for the python analog's virtual machine.
const (
	bcHalt = iota
	bcPush // imm8
	bcAdd
	bcSub
	bcMul
	bcDup
	bcDec
	bcJnz // imm8 absolute bytecode address
	bcAcc
	bcXor
)

// genPython: a bytecode interpreter interpreting a synthetic program — the
// interpreter-on-interpreter profile that makes python the worst case of
// Fig. 2's emulation slowdowns.
func genPython(scale int) (string, []byte) {
	// Guest program: acc += c*c for c = 180 down to 1.
	prog := []byte{
		bcPush, 180,
		/* loop @2 */ bcDup, bcDup, bcMul, bcAcc,
		bcDec,
		bcJnz, 2,
		bcHalt,
	}
	s := &src{}
	s.f("; python analog: bytecode VM, %d-byte guest program", len(prog))
	s.f(".entry main")
	s.f("main:")
	s.f("\tmovi r9, 0")
	emitRepeatHeader(s, "p", 8*scale)
	s.f("\tmovi r11, 0")       // ip
	s.f("\tmovi r10, vmstack") // vm stack pointer (grows up)
	s.f("dispatch:")
	s.f("\tmovi r4, prog")
	s.f("\tadd r4, r11")
	s.f("\tloadb r5, [r4+0]") // opcode
	s.f("\tloadb r6, [r4+1]") // inline operand (may be junk)
	s.f("\taddi r11, 1")
	s.f("\tshli r5, 2")
	s.f("\tmovi r4, optable")
	s.f("\tloadr r5, [r4+r5]")
	s.f("\tjmpr r5") // threaded dispatch

	s.f("op_halt:")
	s.f("\tjmp vmexit")
	s.f("op_push:")
	s.f("\tstore [r10+0], r6")
	s.f("\taddi r10, 4")
	s.f("\taddi r11, 1")
	s.f("\tjmp dispatch")
	s.f("op_add:")
	s.f("\tsubi r10, 4")
	s.f("\tload r4, [r10+0]")
	s.f("\tload r5, [r10-4]")
	s.f("\tadd r5, r4")
	s.f("\tstore [r10-4], r5")
	s.f("\tjmp dispatch")
	s.f("op_sub:")
	s.f("\tsubi r10, 4")
	s.f("\tload r4, [r10+0]")
	s.f("\tload r5, [r10-4]")
	s.f("\tsub r5, r4")
	s.f("\tstore [r10-4], r5")
	s.f("\tjmp dispatch")
	s.f("op_mul:")
	s.f("\tsubi r10, 4")
	s.f("\tload r4, [r10+0]")
	s.f("\tload r5, [r10-4]")
	s.f("\tmul r5, r4")
	s.f("\tstore [r10-4], r5")
	s.f("\tjmp dispatch")
	s.f("op_dup:")
	s.f("\tload r4, [r10-4]")
	s.f("\tstore [r10+0], r4")
	s.f("\taddi r10, 4")
	s.f("\tjmp dispatch")
	s.f("op_dec:")
	s.f("\tload r4, [r10-4]")
	s.f("\tsubi r4, 1")
	s.f("\tstore [r10-4], r4")
	s.f("\tjmp dispatch")
	s.f("op_jnz:")
	s.f("\tload r4, [r10-4]")
	s.f("\tcmpi r4, 0")
	s.f("\tje jnzfall")
	s.f("\tmov r11, r6")
	s.f("\tjmp dispatch")
	s.f("jnzfall:")
	s.f("\taddi r11, 1")
	s.f("\tjmp dispatch")
	s.f("op_acc:")
	s.f("\tsubi r10, 4")
	s.f("\tload r4, [r10+0]")
	s.f("\tadd r9, r4")
	s.f("\tjmp dispatch")
	s.f("op_xor:")
	s.f("\tsubi r10, 4")
	s.f("\tload r4, [r10+0]")
	s.f("\tload r5, [r10-4]")
	s.f("\txor r5, r4")
	s.f("\tstore [r10-4], r5")
	s.f("\tjmp dispatch")
	s.f("vmexit:")
	emitRepeatFooter(s, "p")
	emitEpilogue(s)

	s.f(".data")
	emitBytes(s, "prog", prog)
	s.f("optable: .addr op_halt, op_push, op_add, op_sub, op_mul, op_dup, op_dec, op_jnz, op_acc, op_xor")
	s.f("vmstack: .space 4096")
	return s.String(), nil
}
