package workloads

import (
	"fmt"
	"strings"
)

// src accumulates generated assembly.
type src struct{ b strings.Builder }

func (s *src) f(format string, args ...any) {
	fmt.Fprintf(&s.b, format, args...)
	s.b.WriteByte('\n')
}

func (s *src) String() string { return s.b.String() }

// lcg is a compile-time pseudo-random source for the generators. Workload
// generation must be deterministic, so it never uses math/rand global state.
type lcg struct{ s uint32 }

func newLCG(seed uint32) *lcg { return &lcg{s: seed} }

func (l *lcg) next() uint32 {
	l.s = l.s*1103515245 + 12345
	return l.s
}

func (l *lcg) intn(n int) int { return int((l.next() >> 8) % uint32(n)) }

// emitLCGFillWords emits a function that fills `words` 32-bit words at label
// buf with LCG-generated values. Clobbers r2-r5.
func emitLCGFillWords(s *src, fnName, buf string, words int, seed uint32) {
	s.f(".func %s", fnName)
	s.f("%s:", fnName)
	s.f("\tmovi r2, %s", buf)
	s.f("\tmovi r3, %d", words)
	s.f("\tmovi r4, %d", seed)
	s.f("%s_loop:", fnName)
	s.f("\tcmpi r3, 0")
	s.f("\tje %s_done", fnName)
	s.f("\tmovi r5, 1103515245")
	s.f("\tmul r4, r5")
	s.f("\taddi r4, 12345")
	s.f("\tmov r5, r4")
	s.f("\tshri r5, 16")
	s.f("\tstore [r2+0], r5")
	s.f("\taddi r2, 4")
	s.f("\tsubi r3, 1")
	s.f("\tjmp %s_loop", fnName)
	s.f("%s_done:", fnName)
	s.f("\tret")
}

// emitLCGFillBytes is emitLCGFillWords for byte buffers (low byte of each
// LCG step). Clobbers r2-r5.
func emitLCGFillBytes(s *src, fnName, buf string, bytes int, seed uint32) {
	s.f(".func %s", fnName)
	s.f("%s:", fnName)
	s.f("\tmovi r2, %s", buf)
	s.f("\tmovi r3, %d", bytes)
	s.f("\tmovi r4, %d", seed)
	s.f("%s_loop:", fnName)
	s.f("\tcmpi r3, 0")
	s.f("\tje %s_done", fnName)
	s.f("\tmovi r5, 1103515245")
	s.f("\tmul r4, r5")
	s.f("\taddi r4, 12345")
	s.f("\tmov r5, r4")
	s.f("\tshri r5, 13")
	s.f("\tstoreb [r2+0], r5")
	s.f("\taddi r2, 1")
	s.f("\tsubi r3, 1")
	s.f("\tjmp %s_loop", fnName)
	s.f("%s_done:", fnName)
	s.f("\tret")
}

// emitEpilogue prints the checksum in r9 and exits through the runtime
// library, then emits the runtime itself. Every workload links the same
// small "libc": I/O wrappers, register-restore helpers, and a store utility.
// Like a real statically linked binary, these few functions are where the
// classic ROP gadgets (pop rX ; ret / sys N ; ret / store ; ret) live — the
// paper's Sec. V-B observation that ROPgadget can assemble payloads for
// every unprotected SPEC binary depends on exactly this runtime code.
func emitEpilogue(s *src) {
	s.f("finish:")
	s.f("\tmov r1, r9")
	s.f("\tmovi r3, rt_writeint") // indirect dispatch through the runtime,
	s.f("\tcall rt_apply")        // as a function-pointer-using libc would
	s.f("\tmovi r1, 0")
	s.f("\tcall rt_exit")
	s.f("\thalt") // unreachable; rt_exit terminates
	emitRuntime(s)
}

// emitRuntime emits the shared runtime library.
func emitRuntime(s *src) {
	s.f(".func rt_putch")
	s.f("rt_putch:") // write low byte of r1
	s.f("\tsys 1")
	s.f("\tret")
	s.f(".func rt_writeint")
	s.f("rt_writeint:") // write r1 as decimal
	s.f("\tsys 3")
	s.f("\tret")
	s.f(".func rt_exit")
	s.f("rt_exit:") // terminate with code r1
	s.f("\tsys 0")
	s.f("\tret")
	s.f(".func rt_getch")
	s.f("rt_getch:") // read one byte into r0
	s.f("\tsys 2")
	s.f("\tret")
	// Register-restore helpers (the callee-save epilogue idiom).
	s.f(".func rt_restore1")
	s.f("rt_restore1:")
	s.f("\tpop r1")
	s.f("\tret")
	s.f(".func rt_restore5")
	s.f("rt_restore5:")
	s.f("\tpop r5")
	s.f("\tret")
	// Indirect application: call the function whose address is in r3.
	s.f(".func rt_apply")
	s.f("rt_apply:")
	s.f("\tpush r4")
	s.f("\tmov r4, r3")
	s.f("\tcallr r4")
	s.f("\tpop r4")
	s.f("\tret")
	// A no-ret epilogue pattern: returns to the caller by jumping through a
	// shared stub (the paper's Fig. 9 "functions without ret" population).
	s.f(".func rt_mix")
	s.f("rt_mix:")
	s.f("\txori r0, 23")
	s.f("\tjmp rt_retstub")
	s.f(".func rt_retstub")
	s.f("rt_retstub:")
	s.f("\tret")
	// Store utility: *r5 = r1.
	s.f(".func rt_storeword")
	s.f("rt_storeword:")
	s.f("\tstore [r5+0], r1")
	s.f("\tret")
	// Load utility: r1 = *r5.
	s.f(".func rt_loadword")
	s.f("rt_loadword:")
	s.f("\tload r1, [r5+0]")
	s.f("\tret")
}

// emitRepeatHeader opens an outer repetition loop driven by r8 (count n).
// The matching emitRepeatFooter closes it. The body must preserve r8.
func emitRepeatHeader(s *src, label string, n int) {
	s.f("\tmovi r8, %d", n)
	s.f("%s_rep:", label)
	s.f("\tcmpi r8, 0")
	s.f("\tje finish")
}

func emitRepeatFooter(s *src, label string) {
	s.f("\tsubi r8, 1")
	s.f("\tjmp %s_rep", label)
}
