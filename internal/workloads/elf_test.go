package workloads

import (
	"strings"
	"testing"

	"vcfr/internal/realbin/fixtures"
)

func TestELFWorkloadsRegistered(t *testing.T) {
	names := ELFNames()
	if len(names) != 3 {
		t.Fatalf("ELFNames = %v, want 3 fixtures", names)
	}
	all := strings.Join(Names(), " ")
	for _, n := range names {
		if !strings.Contains(all, n) {
			t.Errorf("Names() missing %s", n)
		}
		w, err := ByName(n, 1)
		if err != nil {
			t.Fatalf("ByName(%s): %v", n, err)
		}
		if w.Source != SourceELF {
			t.Errorf("%s: Source = %q, want %q", n, w.Source, SourceELF)
		}
		if w.Desc == "" {
			t.Errorf("%s: empty description", n)
		}
	}
}

func TestSyntheticSourceField(t *testing.T) {
	w, err := ByName("bzip2", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Source != SourceSynthetic {
		t.Errorf("Source = %q, want %q", w.Source, SourceSynthetic)
	}
}

func TestFromELF(t *testing.T) {
	w, err := FromELF(fixtures.Fib, "my-binary")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "my-binary" || w.Source != SourceELF || w.Img == nil {
		t.Errorf("FromELF = %+v", w)
	}
	if _, err := FromELF([]byte("not an elf"), "bad"); err == nil {
		t.Error("FromELF accepted garbage")
	}
}

func TestELFSourceHasNoAssembly(t *testing.T) {
	if _, err := Source("elf-fib", 1); err == nil ||
		!strings.Contains(err.Error(), "no assembly source") {
		t.Errorf("Source(elf-fib) err = %v", err)
	}
}
