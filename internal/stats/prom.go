package stats

import (
	"fmt"
	"io"
	"strings"
)

// PromName converts a registry name into its Prometheus series name:
// namespace prefix, dots to underscores, and the conventional `_total`
// suffix on counters. jobs.accepted under namespace vcfrd becomes
// vcfrd_jobs_accepted_total.
func PromName(ns string, d Desc) string {
	name := strings.ReplaceAll(d.Name, ".", "_")
	if ns != "" {
		name = ns + "_" + name
	}
	if d.Kind == KindCounter {
		name += "_total"
	}
	return name
}

func promType(k Kind) string {
	if k == KindCounter {
		return "counter"
	}
	return "gauge"
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Entries sharing one metric name (labelled series) must be
// registered consecutively with identical help and kind; HELP and TYPE are
// emitted once per metric name, then one sample line per series. The output
// order is registration order — generated /metrics stay byte-stable run to
// run.
func WritePrometheus(w io.Writer, s Snapshot, ns string) {
	prev := ""
	s.Each(func(d Desc, v Value) {
		name := PromName(ns, d)
		if name != prev {
			fmt.Fprintf(w, "# HELP %s %s\n", name, d.Help)
			fmt.Fprintf(w, "# TYPE %s %s\n", name, promType(d.Kind))
			prev = name
		}
		series := name
		if d.Labels != "" {
			series += "{" + d.Labels + "}"
		}
		switch d.Kind {
		case KindCounter:
			fmt.Fprintf(w, "%s %d\n", series, v.U)
		case KindGauge:
			fmt.Fprintf(w, "%s %d\n", series, v.G)
		case KindFloat:
			fmt.Fprintf(w, "%s %g\n", series, v.F)
		}
	})
}
