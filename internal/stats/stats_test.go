package stats

import (
	"strings"
	"testing"
)

func TestRegistryRoundTrip(t *testing.T) {
	var (
		cycles uint64 = 100
		misses uint64 = 7
		depth  int64  = 3
		total         = 4.5
	)
	r := New()
	r.Counter("cpu.cycles", "Total cycles.", &cycles)
	sc := r.Scope("mem.il1")
	sc.Counter("misses", "Demand misses.", &misses)
	r.Gauge("queue.depth", "Jobs waiting.", &depth)
	r.Float("power.total", "Total dynamic energy (pJ).", &total)

	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	s := r.Snapshot()
	if v, ok := s.Uint("cpu.cycles"); !ok || v != 100 {
		t.Errorf("cpu.cycles = %d,%v", v, ok)
	}
	if v, ok := s.Uint("mem.il1.misses"); !ok || v != 7 {
		t.Errorf("mem.il1.misses = %d,%v (scope prefixing broken)", v, ok)
	}
	if v, ok := s.Float("queue.depth"); !ok || v != 3 {
		t.Errorf("queue.depth = %g,%v", v, ok)
	}
	if v, ok := s.Float("power.total"); !ok || v != 4.5 {
		t.Errorf("power.total = %g,%v", v, ok)
	}
	if _, ok := s.Uint("no.such"); ok {
		t.Error("lookup of unregistered name succeeded")
	}

	// Snapshots are value copies: later increments must not leak in.
	cycles += 50
	if v, _ := s.Uint("cpu.cycles"); v != 100 {
		t.Errorf("snapshot mutated by later increment: %d", v)
	}
	s2 := r.Snapshot()
	d, err := s2.Delta(s)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Uint("cpu.cycles"); v != 50 {
		t.Errorf("delta cpu.cycles = %d, want 50", v)
	}
	if v, _ := d.Uint("mem.il1.misses"); v != 0 {
		t.Errorf("delta mem.il1.misses = %d, want 0", v)
	}
	// Gauges and floats carry the newer reading, not a difference.
	depth = 9
	s3 := r.Snapshot()
	d, err = s3.Delta(s)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.Float("queue.depth"); v != 9 {
		t.Errorf("delta gauge = %g, want 9 (latest value)", v)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	var a, b uint64
	r := New()
	r.Counter("cpu.cycles", "h", &a)
	r.Counter("cpu.cycles", "h", &b)
}

func TestCounterDecreaseDetected(t *testing.T) {
	var c uint64 = 10
	r := New()
	r.Counter("c", "h", &c)
	before := r.Snapshot()
	c = 5
	after := r.Snapshot()
	if _, err := after.Delta(before); err == nil {
		t.Fatal("Delta accepted a decreasing counter")
	}
	if err := after.Monotonic(before); err == nil {
		t.Fatal("Monotonic accepted a decreasing counter")
	}
	c = 10
	if err := r.Snapshot().Monotonic(before); err != nil {
		t.Fatalf("Monotonic rejected an unchanged counter: %v", err)
	}
}

func TestLabels(t *testing.T) {
	var hits uint64 = 2
	r := NewLabeled("core", "1")
	r.Counter("drc.hits", "DRC hits.", &hits)
	s := r.Snapshot()
	if got := s.Desc(0).Labels; got != `core="1"` {
		t.Errorf("labels = %q", got)
	}
	if _, ok := s.Uint(`drc.hits{core="1"}`); !ok {
		t.Error("labelled key lookup failed")
	}

	// Entry-level labels: several series under one metric name.
	var q, run uint64
	m := New()
	m.CounterL("jobs.state", `state="queued"`, "h", &q)
	m.CounterL("jobs.state", `state="running"`, "h", &run)
	if m.Len() != 2 {
		t.Fatalf("labelled series collapsed: %d", m.Len())
	}
}

func TestWritePrometheus(t *testing.T) {
	var (
		acc   uint64 = 12
		q     int64  = 3
		run   int64  = 1
		bytes int64  = 4096
	)
	r := New()
	r.Counter("jobs.accepted", "Jobs admitted to the queue.", &acc)
	r.GaugeL("jobs.state", `state="queued"`, "Jobs in each state.", &q)
	r.GaugeL("jobs.state", `state="running"`, "Jobs in each state.", &run)
	r.Gauge("trace.cache.bytes", "Bytes cached.", &bytes)

	var b strings.Builder
	WritePrometheus(&b, r.Snapshot(), "vcfrd")
	got := b.String()
	want := `# HELP vcfrd_jobs_accepted_total Jobs admitted to the queue.
# TYPE vcfrd_jobs_accepted_total counter
vcfrd_jobs_accepted_total 12
# HELP vcfrd_jobs_state Jobs in each state.
# TYPE vcfrd_jobs_state gauge
vcfrd_jobs_state{state="queued"} 3
vcfrd_jobs_state{state="running"} 1
# HELP vcfrd_trace_cache_bytes Bytes cached.
# TYPE vcfrd_trace_cache_bytes gauge
vcfrd_trace_cache_bytes 4096
`
	if got != want {
		t.Errorf("prometheus output:\n%s\nwant:\n%s", got, want)
	}
}

func TestDeltaShapeMismatch(t *testing.T) {
	var a, b uint64
	r1 := New()
	r1.Counter("a", "h", &a)
	r2 := New()
	r2.Counter("a", "h", &a)
	r2.Counter("b", "h", &b)
	if _, err := r2.Snapshot().Delta(r1.Snapshot()); err == nil {
		t.Fatal("Delta accepted mismatched shapes")
	}
}
