// Package stats is the simulator's one measurement spine: a typed counter
// registry that every subsystem (cpu, mem, emu, ilr, power, the harness, the
// vcfrd service) registers its existing stat structs into, and that every
// consumer (text reports, the results envelope's interval series, Prometheus
// /metrics) derives from.
//
// The design constraint is the simulate hot loop: counters stay plain struct
// fields (`p.stats.Cycles += cost`) — the registry holds *pointers* to those
// fields, so registration adds zero allocation and zero indirection to the
// paths that increment. Reading is the only thing that goes through the
// registry: Snapshot copies every value at one instant, and Delta subtracts
// two snapshots to produce a per-window view.
//
// Naming scheme (see docs/ARCHITECTURE.md "Statistics spine"): hierarchical
// dotted lower-case names, subsystem first — cpu.cycles, cpu.stall.fetch,
// bpred.btb.misses, mem.il1.misses, dram.row_conflicts, drc.table_walks,
// emu.instructions, ilr.entropy_bits, power.total. A name is registered
// exactly once per registry; duplicate registration panics at construction
// time, which is what keeps the three consumers from drifting apart.
package stats

import (
	"fmt"
	"sort"
)

// Kind classifies a registered value for consumers that care (the Prometheus
// renderer maps KindCounter to `counter` + a `_total` suffix, everything else
// to `gauge`).
type Kind int

// Value kinds.
const (
	// KindCounter is a monotonically non-decreasing uint64 (the hardware
	// counters). Delta subtracts counters window-over-window.
	KindCounter Kind = iota
	// KindGauge is a signed instantaneous value (queue depths, cache bytes).
	// Delta carries the newer value through unchanged.
	KindGauge
	// KindFloat is a float64 derived quantity (energy picojoules, entropy
	// bits). Delta carries the newer value through unchanged.
	KindFloat
)

// Desc describes one registered value: its hierarchical dotted name, a help
// string (reused verbatim as the Prometheus HELP line), its kind, and an
// optional label pair rendered into Prometheus series (e.g. state="queued",
// or core="1" for per-core cluster registries).
type Desc struct {
	Name   string
	Help   string
	Kind   Kind
	Labels string // rendered Prometheus label list without braces; "" = none
}

// key is the identity a Desc registers under: name alone, or name plus the
// label set when several series share one metric name.
func (d Desc) key() string {
	if d.Labels == "" {
		return d.Name
	}
	return d.Name + "{" + d.Labels + "}"
}

type entry struct {
	desc Desc
	u    *uint64  // KindCounter
	g    *int64   // KindGauge
	gi   *int     // KindGauge registered from an int field (ilr.Stats)
	f    *float64 // KindFloat
}

// Registry is an ordered collection of registered counters. The zero value
// is not usable; construct with New or NewLabeled. Registration is not
// concurrency-safe (do it at construction time); Snapshot may race with
// writers by design — simulator counters are single-writer and torn reads of
// in-flight uint64 increments are acceptable for sampling, while the server
// snapshots under its own metrics mutex.
type Registry struct {
	labels  string // registry-wide label list applied to every entry
	entries []entry
	index   map[string]int
	descs   []Desc // built lazily on first Snapshot, shared by all snapshots
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{index: make(map[string]int)}
}

// NewLabeled returns an empty registry whose every entry carries the given
// key="value" pairs (alternating key, value arguments) — the per-core and
// per-tenant dimensions multi-core clusters use.
func NewLabeled(pairs ...string) *Registry {
	if len(pairs) == 0 || len(pairs)%2 != 0 {
		panic("stats: NewLabeled needs alternating key, value pairs")
	}
	r := New()
	for i := 0; i < len(pairs); i += 2 {
		r.labels = joinLabels(r.labels, fmt.Sprintf("%s=%q", pairs[i], pairs[i+1]))
	}
	return r
}

// Labels returns the registry-wide label list ("" when unlabeled).
func (r *Registry) Labels() string { return r.labels }

// Len returns the number of registered entries.
func (r *Registry) Len() int { return len(r.entries) }

func (r *Registry) add(e entry) {
	e.desc.Labels = joinLabels(r.labels, e.desc.Labels)
	k := e.desc.key()
	if _, dup := r.index[k]; dup {
		panic(fmt.Sprintf("stats: duplicate registration of %q", k))
	}
	r.index[k] = len(r.entries)
	r.entries = append(r.entries, e)
	r.descs = nil // invalidate the shared descriptor cache
}

func joinLabels(a, b string) string {
	switch {
	case a == "":
		return b
	case b == "":
		return a
	default:
		return a + "," + b
	}
}

// Counter registers a monotonic uint64 counter by pointer.
func (r *Registry) Counter(name, help string, v *uint64) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil counter %q", name))
	}
	r.add(entry{desc: Desc{Name: name, Help: help, Kind: KindCounter}, u: v})
}

// CounterL is Counter with an entry-level label pair (several series sharing
// one metric name, e.g. jobs.state{state="queued"}).
func (r *Registry) CounterL(name, labels, help string, v *uint64) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil counter %q", name))
	}
	r.add(entry{desc: Desc{Name: name, Help: help, Kind: KindCounter, Labels: labels}, u: v})
}

// Gauge registers a signed instantaneous value by pointer.
func (r *Registry) Gauge(name, help string, v *int64) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil gauge %q", name))
	}
	r.add(entry{desc: Desc{Name: name, Help: help, Kind: KindGauge}, g: v})
}

// GaugeL is Gauge with an entry-level label pair.
func (r *Registry) GaugeL(name, labels, help string, v *int64) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil gauge %q", name))
	}
	r.add(entry{desc: Desc{Name: name, Help: help, Kind: KindGauge, Labels: labels}, g: v})
}

// Int registers a signed instantaneous value held in a plain int field
// (ilr.Stats counts in ints); it reads as a KindGauge.
func (r *Registry) Int(name, help string, v *int) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil int %q", name))
	}
	r.add(entry{desc: Desc{Name: name, Help: help, Kind: KindGauge}, gi: v})
}

// Float registers a float64 value by pointer.
func (r *Registry) Float(name, help string, v *float64) {
	if v == nil {
		panic(fmt.Sprintf("stats: nil float %q", name))
	}
	r.add(entry{desc: Desc{Name: name, Help: help, Kind: KindFloat}, f: v})
}

// Descs returns the registered descriptors in registration order.
func (r *Registry) Descs() []Desc {
	out := make([]Desc, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.desc
	}
	return out
}

// Scope returns a registrar that prefixes every name with prefix + "." —
// how a struct registers the same fields under mem.il1 in one cache and
// mem.dl1 in another.
func (r *Registry) Scope(prefix string) Scope {
	return Scope{r: r, prefix: prefix + "."}
}

// Scope is a prefixing view of a Registry.
type Scope struct {
	r      *Registry
	prefix string
}

// Counter registers prefix.name as a monotonic counter.
func (s Scope) Counter(name, help string, v *uint64) {
	s.r.Counter(s.prefix+name, help, v)
}

// Gauge registers prefix.name as a signed gauge.
func (s Scope) Gauge(name, help string, v *int64) {
	s.r.Gauge(s.prefix+name, help, v)
}

// Int registers prefix.name as a signed gauge held in an int field.
func (s Scope) Int(name, help string, v *int) {
	s.r.Int(s.prefix+name, help, v)
}

// Float registers prefix.name as a float value.
func (s Scope) Float(name, help string, v *float64) {
	s.r.Float(s.prefix+name, help, v)
}

// Value is one snapshotted reading; which field is meaningful follows the
// entry's Kind.
type Value struct {
	U uint64
	G int64
	F float64
}

// Snapshot is a point-in-time copy of every registered value, in
// registration order. Snapshots from the same Registry share descriptors.
type Snapshot struct {
	descs  []Desc
	index  map[string]int
	labels string
	vals   []Value
}

// Snapshot copies every registered value at one instant.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{labels: r.labels, vals: make([]Value, len(r.entries))}
	s.descs, s.index = r.descSlices()
	for i, e := range r.entries {
		switch {
		case e.u != nil:
			s.vals[i].U = *e.u
		case e.g != nil:
			s.vals[i].G = *e.g
		case e.gi != nil:
			s.vals[i].G = int64(*e.gi)
		case e.f != nil:
			s.vals[i].F = *e.f
		}
	}
	return s
}

// descSlices returns the shared descriptor slice and index map; they are
// built once per registry shape and shared by every snapshot (read-only).
func (r *Registry) descSlices() ([]Desc, map[string]int) {
	if r.descs == nil {
		r.descs = make([]Desc, len(r.entries))
		for i, e := range r.entries {
			r.descs[i] = e.desc
		}
	}
	return r.descs, r.index
}

// Len returns the number of values in the snapshot.
func (s Snapshot) Len() int { return len(s.vals) }

// Desc returns descriptor i in registration order.
func (s Snapshot) Desc(i int) Desc { return s.descs[i] }

// Value returns reading i in registration order.
func (s Snapshot) Value(i int) Value { return s.vals[i] }

// Labels returns the registry-wide label list the snapshot inherited.
func (s Snapshot) Labels() string { return s.labels }

// Uint looks a counter up by its registration key (name, or name{labels}
// for labelled entries) and returns its value. ok is false when the name is
// absent — a caller-friendly miss, because registries legitimately differ by
// mode (no drc.* outside VCFR).
func (s Snapshot) Uint(key string) (v uint64, ok bool) {
	i, ok := s.index[key]
	if !ok {
		return 0, false
	}
	return s.vals[i].U, true
}

// Float looks any entry up by key and returns its reading as a float64
// (counters and gauges are converted).
func (s Snapshot) Float(key string) (v float64, ok bool) {
	i, ok := s.index[key]
	if !ok {
		return 0, false
	}
	switch s.descs[i].Kind {
	case KindCounter:
		return float64(s.vals[i].U), true
	case KindGauge:
		return float64(s.vals[i].G), true
	default:
		return s.vals[i].F, true
	}
}

// Each calls fn for every (descriptor, reading) pair in registration order.
func (s Snapshot) Each(fn func(Desc, Value)) {
	for i, d := range s.descs {
		fn(d, s.vals[i])
	}
}

// Delta returns s minus prev: counters subtract (the per-window view),
// gauges and floats carry s's reading through unchanged. It errors when the
// snapshots come from differently shaped registries or when any counter
// decreased — counters are contractually monotonic, so a decrease is a bug
// in the producer, not a value to silently wrap.
func (s Snapshot) Delta(prev Snapshot) (Snapshot, error) {
	if len(s.vals) != len(prev.vals) {
		return Snapshot{}, fmt.Errorf("stats: delta over mismatched snapshots (%d vs %d entries)",
			len(s.vals), len(prev.vals))
	}
	d := Snapshot{descs: s.descs, index: s.index, labels: s.labels, vals: make([]Value, len(s.vals))}
	for i := range s.vals {
		if s.descs[i].key() != prev.descs[i].key() {
			return Snapshot{}, fmt.Errorf("stats: delta over mismatched snapshots (%q vs %q at %d)",
				s.descs[i].key(), prev.descs[i].key(), i)
		}
		switch s.descs[i].Kind {
		case KindCounter:
			if s.vals[i].U < prev.vals[i].U {
				return Snapshot{}, fmt.Errorf("stats: counter %s decreased (%d -> %d)",
					s.descs[i].key(), prev.vals[i].U, s.vals[i].U)
			}
			d.vals[i].U = s.vals[i].U - prev.vals[i].U
		case KindGauge:
			d.vals[i].G = s.vals[i].G
		case KindFloat:
			d.vals[i].F = s.vals[i].F
		}
	}
	return d, nil
}

// Monotonic verifies that no counter in s is below its reading in prev —
// the property mid-run sampling relies on. Gauges and floats are exempt.
func (s Snapshot) Monotonic(prev Snapshot) error {
	_, err := s.Delta(prev)
	return err
}

// Keys returns every registration key in sorted order (test helper).
func (s Snapshot) Keys() []string {
	out := make([]string, 0, len(s.index))
	for k := range s.index {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
