// Package attack is the adversary-in-the-loop security evaluation: instead
// of the static entropy argument (internal/gadget counts what a scanner sees)
// or the accidental-fault argument (internal/fault measures detection
// coverage), it simulates a deliberate attacker against live baseline,
// naive-ILR, and VCFR machines and measures the work the attacker must do.
//
// Three cooperating models, composed per campaign cell:
//
//  1. A ROP chain builder (chain.go): given a gadget view, it compiles one of
//     three payload templates — proof-of-control print, write-what-where, or
//     secret exfiltration — into a concrete chain of stack words, and the
//     campaign fires that chain through a first-return stack smash on a real
//     pipeline (fire.go). Success is judged architecturally: marker bytes on
//     the output channel, the poked memory word, or the leaked secret.
//
//  2. A JIT-ROP-style disclosure attacker (knowledge.go): the attacker starts
//     with zero knowledge of the victim (diversified deployment — the Snow et
//     al. setting the paper cites) and spends a budgeted leak oracle, one
//     4 KiB page per operation, to rebuild a gadget view from only-disclosed
//     bytes. Re-attempting the chain after every leak yields the
//     pages-leaked-vs-success work-factor curve. What a page is worth differs
//     by mode and is the heart of the measurement:
//
//     baseline: a leaked text page is the executable layout — gadget
//     addresses are directly mountable, so a page or two decides the game.
//
//     naive ILR: the leaked text is the scattered image, so instruction
//     ADJACENCY is destroyed (a byte-offset gadget body no longer sits in
//     one place) and a code page alone names no original address. Naive
//     hardware ILR keeps its location map in ordinary memory, so the oracle
//     can also leak map pages ((original, randomized) address pairs); a
//     code fragment becomes a usable gadget only when the SAME EPOCH
//     discloses both its map entry and its code bytes. Chains then target
//     original instruction-start addresses, which the naive fetch path
//     translates — the un-randomized space is left live, the mode's
//     characteristic weakness.
//
//     VCFR: the leaked text shows the original layout (that is what memory
//     holds), but every such address carries the randomized tag, so the
//     compiled chain faults on its first gadget: default-deny turns the
//     whole disclosure channel into detection events. The translation
//     tables live in processor-protected pages and cannot be leaked at all
//     — the paper's central hardware-support argument.
//
//  3. A periodic re-randomization defense (the rerand arm of each cell): the
//     victim keeps executing while the campaign re-runs the ILR rewriter
//     every RerandEvery leak operations and swaps the live pipeline onto the
//     new layout (cpu.Pipeline.Rerandomize — new image bytes, tables, DRC,
//     predictors; architectural state preserved). Leaked knowledge that
//     names the randomized space goes stale: un-paired naive map entries and
//     disclosed code pages die with the epoch, so the attacker's
//     cross-channel pairing rate collapses and the leak budget needed for
//     the same success strictly grows. Knowledge of ORIGINAL-space facts
//     survives re-randomization by construction — the campaign reports
//     that, too, as the honest limit of the defense under naive ILR.
//
// Everything is deterministic: cell seeds derive from the campaign seed via
// harness.CellSeed, so the same Config yields byte-identical reports at any
// worker count, and the canonical campaign is golden-pinned.
package attack

import (
	"fmt"
	"strings"

	"vcfr/internal/stats"
)

// Payload names one attack template the chain builder can compile.
type Payload string

// The payload templates, in report order. They are the classic goals of a
// code-reuse attacker: prove control, corrupt state, and steal data.
const (
	// PayloadPrint prints a marker string through the putchar syscall and
	// exits — the proof-of-control payload.
	PayloadPrint Payload = "print-and-exit"
	// PayloadWrite stores a chosen value at a chosen address — the
	// write-what-where integrity attack.
	PayloadWrite Payload = "write-what-where"
	// PayloadExfil reads a planted secret out of victim memory and emits it
	// on the output channel — the confidentiality attack.
	PayloadExfil Payload = "exfiltrate"
)

// AllPayloads returns the payload templates in their stable report order.
func AllPayloads() []Payload { return []Payload{PayloadPrint, PayloadWrite, PayloadExfil} }

func (p Payload) valid() bool {
	switch p {
	case PayloadPrint, PayloadWrite, PayloadExfil:
		return true
	}
	return false
}

// ParsePayloads maps CLI/request strings onto payload templates.
func ParsePayloads(names []string) ([]Payload, error) {
	out := make([]Payload, 0, len(names))
	for _, n := range names {
		p := Payload(strings.TrimSpace(n))
		if !p.valid() {
			return nil, fmt.Errorf("attack: unknown payload %q (want one of %v)", n, AllPayloads())
		}
		out = append(out, p)
	}
	return out, nil
}

// The payloads' concrete parameters. The scratch addresses sit in the unused
// gap between the text base (0x1000) and the data base (0x10_0000), so no
// workload touches them on its own.
const (
	// marker is what PayloadPrint must emit to count as a success.
	marker = "VX-PWN"
	// WriteAddr/WriteValue are PayloadWrite's what and where.
	WriteAddr  = 0x0008_0000
	WriteValue = 0xC0DE_FACE
	// SecretAddr is where the campaign plants the secret PayloadExfil must
	// leak.
	SecretAddr = 0x0008_4000
)

// secret is the planted value PayloadExfil must reproduce on the output
// channel. The bytes are outside the printable range every workload emits.
var secret = []byte{0xCA, 0xFE, 0xD0, 0x0D}

// Outcome classifies one fired chain (or the absence of one).
type Outcome string

// The fire taxonomy, from the attacker's win down to never having a chain.
const (
	// OutcomeSuccess: the payload's architectural effect was observed.
	OutcomeSuccess Outcome = "success"
	// OutcomeBlockedRPC: a chain transfer targeted an unmapped or prohibited
	// randomized-space address and the machine raised a control violation —
	// the defense detected the attack.
	OutcomeBlockedRPC Outcome = "blocked-unmapped-rpc"
	// OutcomeBlockedIllegal: the chain ran into bytes that do not decode
	// (e.g. the zeroed gaps of the scattered layout).
	OutcomeBlockedIllegal Outcome = "blocked-illegal-instruction"
	// OutcomeCrash: the hijacked run died on another architectural fault.
	OutcomeCrash Outcome = "crashed"
	// OutcomeNoEffect: the run finished without the payload's effect (or the
	// victim never executed a hijackable return).
	OutcomeNoEffect Outcome = "no-effect"
	// OutcomeNoChain: the attacker's view never compiled into a chain.
	OutcomeNoChain Outcome = "no-chain"
)

// Stats counts the attacker's activity and the defense's responses. It
// registers into the stats spine under the attack.* namespace and aggregates
// across campaign cells.
type Stats struct {
	ChainsBuilt      uint64 `json:"chains_built"`
	ChainsFired      uint64 `json:"chains_fired"`
	Successes        uint64 `json:"successes"`
	BlockedRPC       uint64 `json:"blocked_unmapped_rpc"`
	BlockedIllegal   uint64 `json:"blocked_illegal_instruction"`
	Crashes          uint64 `json:"crashes"`
	NoEffect         uint64 `json:"no_effect"`
	Leaks            uint64 `json:"leaks"`
	CodePages        uint64 `json:"code_pages"`
	MapPages         uint64 `json:"map_pages"`
	Rerandomizations uint64 `json:"rerandomizations"`
}

// Register adds the counters to a registry under the attack.* namespace.
func (s *Stats) Register(r *stats.Registry) {
	a := r.Scope("attack")
	a.Counter("chains.built", "ROP chains the attacker compiled from its current gadget view.", &s.ChainsBuilt)
	a.Counter("chains.fired", "Compiled chains fired through the first-return hijack.", &s.ChainsFired)
	a.Counter("success", "Fired chains whose payload effect was observed.", &s.Successes)
	a.Counter("blocked.unmapped_rpc", "Fired chains detected as a transfer to an unmapped/prohibited randomized address.", &s.BlockedRPC)
	a.Counter("blocked.illegal_instruction", "Fired chains detected by a failed fetch or illegal opcode.", &s.BlockedIllegal)
	a.Counter("crashed", "Fired chains that died on another architectural fault.", &s.Crashes)
	a.Counter("no_effect", "Fired chains that ran without producing the payload effect.", &s.NoEffect)
	a.Counter("leaks", "Disclosure operations the leak oracle served.", &s.Leaks)
	a.Counter("pages.code", "Code pages disclosed to the attacker.", &s.CodePages)
	a.Counter("pages.map", "Naive-ILR location-map pages disclosed to the attacker.", &s.MapPages)
	a.Counter("rerandomizations", "Mid-execution layout swaps the re-randomization defense performed.", &s.Rerandomizations)
}

// AddFire counts one fired chain's classified outcome.
func (s *Stats) AddFire(o Outcome) {
	s.ChainsFired++
	switch o {
	case OutcomeSuccess:
		s.Successes++
	case OutcomeBlockedRPC:
		s.BlockedRPC++
	case OutcomeBlockedIllegal:
		s.BlockedIllegal++
	case OutcomeCrash:
		s.Crashes++
	case OutcomeNoEffect:
		s.NoEffect++
	}
}

// Merge accumulates other into s.
func (s *Stats) Merge(other Stats) {
	s.ChainsBuilt += other.ChainsBuilt
	s.ChainsFired += other.ChainsFired
	s.Successes += other.Successes
	s.BlockedRPC += other.BlockedRPC
	s.BlockedIllegal += other.BlockedIllegal
	s.Crashes += other.Crashes
	s.NoEffect += other.NoEffect
	s.Leaks += other.Leaks
	s.CodePages += other.CodePages
	s.MapPages += other.MapPages
	s.Rerandomizations += other.Rerandomizations
}
