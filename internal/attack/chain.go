package attack

import (
	"context"
	"fmt"

	"vcfr/internal/cpu"
	"vcfr/internal/gadget"
	"vcfr/internal/harness"
	"vcfr/internal/ilr"
)

// buildChain compiles one payload template against a gadget pool.
func buildChain(pool []gadget.Gadget, p Payload) (gadget.Chain, error) {
	switch p {
	case PayloadWrite:
		return gadget.BuildWriteChain(pool, WriteAddr, WriteValue)
	case PayloadExfil:
		return gadget.BuildExfilChain(pool, SecretAddr, len(secret))
	default:
		return gadget.BuildPrintChain(pool, marker)
	}
}

// chainKey fingerprints a chain by its stack words, so a chain that already
// failed is not pointlessly re-fired when the view grows elsewhere.
func chainKey(c gadget.Chain) string {
	return fmt.Sprint(c.Words)
}

// staticPool is the full-knowledge gadget view of one mode: what an
// attacker holding the program binary can compile against before leaking
// anything. Under baseline that is simply the binary's pool. Under naive
// ILR the binary still yields every intended-instruction gadget, because
// original addresses stay live (the fetch path translates them) — the
// static phase exists to surface exactly that hole. Under VCFR the pool is
// scanned from the deployed image, but every address it names requires the
// randomized tag the attacker does not have.
func staticPool(res *ilr.Result, mode cpu.Mode) []gadget.Gadget {
	switch mode {
	case cpu.ModeNaiveILR:
		intended := make(map[uint32]bool)
		for _, a := range res.Tables.OrigAddrs() {
			intended[a] = true
		}
		var out []gadget.Gadget
		for _, g := range gadget.Scan(res.Orig, 0) {
			if intended[g.Addr] {
				out = append(out, g)
			}
		}
		return out
	case cpu.ModeVCFR:
		return gadget.Scan(res.VCFR, 0)
	default:
		return gadget.Scan(res.Orig, 0)
	}
}

// Static is the full-knowledge diagnostic phase of one cell: pool size,
// whether the payload compiled, and what the machine did when the chain was
// fired at the deployment's first epoch.
type Static struct {
	PoolSize int     `json:"pool_size"`
	Built    bool    `json:"built"`
	ChainLen int     `json:"chain_len"` // stack words, when built
	Outcome  Outcome `json:"outcome"`
}

// runStatic executes one cell's full-knowledge phase. The returned error is
// only ever the context's: an unfinished phase must not golden-pin as a
// no-chain result.
func runStatic(ctx context.Context, app *harness.App, mode cpu.Mode, payload Payload, cfg Config, st *Stats) (Static, error) {
	pool := staticPool(app.R, mode)
	s := Static{PoolSize: len(pool), Outcome: OutcomeNoChain}
	ch, err := buildChain(pool, payload)
	if err != nil {
		return s, nil
	}
	s.Built, s.ChainLen = true, len(ch.Words)
	st.ChainsBuilt++
	o := fire(ctx, app, mode, app.R, ch, payload, cfg.MaxInsts)
	if o == "" {
		return s, notExecuted(ctx)
	}
	st.AddFire(o)
	s.Outcome = o
	return s, nil
}
