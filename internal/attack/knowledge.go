package attack

import (
	"math/rand"

	"vcfr/internal/cpu"
	"vcfr/internal/gadget"
	"vcfr/internal/harness"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// pageSize is the leak oracle's disclosure unit.
const pageSize = 1 << gadget.PageBits

// mapEntryBytes is one naive-ILR location-map entry as it sits in kernel
// memory — an (original, randomized) address pair. VCFR has no leakable
// counterpart: its tables live in processor-protected pages.
const mapEntryBytes = 8

// executedImage returns the image a pipeline in the given mode fetches from.
func executedImage(res *ilr.Result, mode cpu.Mode) *program.Image {
	switch mode {
	case cpu.ModeNaiveILR:
		return res.Scattered
	case cpu.ModeVCFR:
		return res.VCFR
	}
	return res.Orig
}

// viewImage wraps the attacker's reconstructed bytes as a scannable image.
// Unknown bytes are zero, which the decoder rejects, so the scanners only
// ever walk bytes the attacker has actually seen.
func viewImage(name string, addr uint32, data []byte) *program.Image {
	return &program.Image{
		Name: name + "+attacker-view",
		Segments: []program.Segment{
			{Name: "text", Addr: addr, Data: data, Perm: program.PermR | program.PermX},
		},
	}
}

// oracle is the JIT-ROP disclosure attacker's knowledge state against one
// victim. Each leak op serves one page; what a page reveals depends on the
// mode (see the package comment's threat-model table). The victim pipeline
// keeps executing between leaks and is swapped onto fresh layouts by the
// re-randomization arm, so knowledge is split into what survives an epoch
// (original-space facts) and what dies with it (randomized-space facts).
type oracle struct {
	mode   cpu.Mode
	res    *ilr.Result // current epoch's artifacts
	victim *cpu.Pipeline
	rng    *rand.Rand
	st     *Stats

	// The attacker's reconstructed text: the original layout under baseline
	// and naive ILR, the VCFR image under VCFR. Unknown bytes are zero.
	viewAddr uint32
	viewData []byte
	grew     bool // view changed since the last pool build

	served          int // leak ops actually served (drives channel alternation)
	codePagesServed int
	mapPagesServed  int

	// Per-epoch code-page channel: the executed image's text pages in a
	// seed-shuffled serve order.
	disclosedCode map[uint32]bool
	codeOrder     []uint32
	codeNext      int

	// Naive ILR's second channel: the in-memory location map. pairs are the
	// (orig -> rand) entries leaked THIS epoch; intended marks original
	// instruction starts whose bytes made it into viewData (those survive
	// re-randomization — the chain targets original addresses).
	origAddrs []uint32
	mapPages  int
	mapOrder  []int
	mapNext   int
	pairs     map[uint32]uint32
	intended  map[uint32]bool
}

// newOracle builds the attacker's zero-knowledge state and its live victim.
func newOracle(app *harness.App, mode cpu.Mode, rng *rand.Rand, st *Stats) (*oracle, error) {
	victim, _, err := app.Pipeline(mode, nil)
	if err != nil {
		return nil, err
	}
	o := &oracle{mode: mode, res: app.R, victim: victim, rng: rng, st: st}
	switch mode {
	case cpu.ModeNaiveILR:
		// The view reconstructs the ORIGINAL layout: that is the space naive
		// ILR leaves live and the space the attacker's chain will target.
		text := app.R.Orig.Text()
		o.viewAddr, o.viewData = text.Addr, make([]byte, len(text.Data))
		o.origAddrs = app.R.Tables.OrigAddrs()
		o.mapPages = (len(o.origAddrs)*mapEntryBytes + pageSize - 1) / pageSize
		o.intended = make(map[uint32]bool, len(o.origAddrs))
	default:
		text := executedImage(app.R, mode).Text()
		o.viewAddr, o.viewData = text.Addr, make([]byte, len(text.Data))
	}
	o.resetEpoch()
	return o, nil
}

// resetEpoch clears the epoch-scoped channels and draws fresh serve orders.
func (o *oracle) resetEpoch() {
	pages := gadget.TextPages(executedImage(o.res, o.mode))
	o.codeOrder = append([]uint32(nil), pages...)
	o.rng.Shuffle(len(o.codeOrder), func(i, j int) {
		o.codeOrder[i], o.codeOrder[j] = o.codeOrder[j], o.codeOrder[i]
	})
	o.codeNext = 0
	o.disclosedCode = make(map[uint32]bool, len(o.codeOrder))
	if o.mode == cpu.ModeNaiveILR {
		o.mapOrder = o.rng.Perm(o.mapPages)
		o.mapNext = 0
		o.pairs = make(map[uint32]uint32)
	}
}

// applyEpoch swaps the live victim onto the next layout and expires the
// attacker's epoch-scoped knowledge: disclosed code pages and map entries
// name the old randomized space and are dead. Under VCFR the whole view
// dies (it described the old image's randomized immediates); under naive
// ILR the original-space bytes already paired stay good.
func (o *oracle) applyEpoch(next *ilr.Result) error {
	if err := o.victim.Rerandomize(executedImage(next, o.mode), next.Tables, next.RandRA); err != nil {
		return err
	}
	o.res = next
	if o.mode == cpu.ModeVCFR {
		for i := range o.viewData {
			o.viewData[i] = 0
		}
		o.grew = false
	}
	o.resetEpoch()
	o.st.Rerandomizations++
	return nil
}

// universe is the number of distinct pages one epoch exposes — the
// denominator of the work-factor curve and the basis of the leak cap.
func (o *oracle) universe() int {
	n := len(o.codeOrder)
	if o.mode == cpu.ModeNaiveILR {
		n += o.mapPages
	}
	return n
}

// leak serves one disclosure op. It returns false when the current epoch
// has nothing left to leak (the attacker idles until the next swap, or is
// done for good without one).
func (o *oracle) leak() bool {
	switch o.mode {
	case cpu.ModeNaiveILR:
		mapLeft := o.mapNext < len(o.mapOrder)
		codeLeft := o.codeNext < len(o.codeOrder)
		switch {
		case !mapLeft && !codeLeft:
			return false
		case mapLeft && (!codeLeft || o.served%2 == 0):
			o.leakMapPage()
		default:
			o.leakCodePage()
		}
		o.pairNew()
	default:
		if o.codeNext >= len(o.codeOrder) {
			return false
		}
		o.leakCodePage()
		o.grew = true
	}
	o.served++
	o.st.Leaks++
	return true
}

// leakCodePage discloses the next code page of the serve order, reading the
// bytes out of the live victim's memory. Under baseline/VCFR the page lands
// directly in the view (the executed text IS the addressable layout); under
// naive ILR a scattered page is useless until pairNew matches it with map
// entries from the same epoch.
func (o *oracle) leakCodePage() {
	pg := o.codeOrder[o.codeNext]
	o.codeNext++
	o.disclosedCode[pg] = true
	o.codePagesServed++
	o.st.CodePages++
	if o.mode == cpu.ModeNaiveILR {
		return
	}
	text := executedImage(o.res, o.mode).Text()
	lo, hi := pg<<gadget.PageBits, (pg+1)<<gadget.PageBits
	if lo < text.Addr {
		lo = text.Addr
	}
	if hi > text.End() {
		hi = text.End()
	}
	mem := o.victim.State().Mem
	for a := lo; a < hi; a++ {
		o.viewData[a-o.viewAddr] = mem.ByteAt(a)
	}
}

// leakMapPage discloses the next location-map page: every (orig, rand)
// entry on it. Naive hardware ILR keeps this map in ordinary kernel memory
// — that is exactly the exposure the paper's protected tables close.
func (o *oracle) leakMapPage() {
	m := o.mapOrder[o.mapNext]
	o.mapNext++
	o.mapPagesServed++
	o.st.MapPages++
	lo, hi := m*(pageSize/mapEntryBytes), (m+1)*(pageSize/mapEntryBytes)
	if hi > len(o.origAddrs) {
		hi = len(o.origAddrs)
	}
	for _, orig := range o.origAddrs[lo:hi] {
		if r, ok := o.res.Tables.ToRand(orig); ok {
			o.pairs[orig] = r
		}
	}
}

// pairNew promotes every instruction whose map entry AND code bytes are
// both disclosed in the current epoch into the persistent original-space
// view. This cross-channel join is what periodic re-randomization attacks:
// a swap expires both channels, so partially assembled knowledge is lost.
func (o *oracle) pairNew() {
	mem := o.victim.State().Mem
	var buf [isa.MaxLength]byte
	for _, orig := range o.origAddrs {
		if o.intended[orig] {
			continue
		}
		r, ok := o.pairs[orig]
		if !ok || !o.disclosedCode[r>>gadget.PageBits] {
			continue
		}
		for i := range buf {
			buf[i] = mem.ByteAt(r + uint32(i))
		}
		in, err := isa.Decode(buf[:], orig)
		if err != nil {
			continue
		}
		ln := uint32(in.Len())
		covered := true
		for pg := r >> gadget.PageBits; pg <= (r+ln-1)>>gadget.PageBits; pg++ {
			if !o.disclosedCode[pg] {
				covered = false
				break
			}
		}
		if !covered {
			continue
		}
		copy(o.viewData[orig-o.viewAddr:], buf[:ln])
		o.intended[orig] = true
		o.grew = true
	}
}

// pool compiles the attacker's current gadget view. Under naive ILR only
// gadgets anchored at learned instruction starts are mountable (a byte-
// offset gadget's original address is not a map key, so its fetch would
// fall through to the zeroed original space); under baseline/VCFR the view
// is scanned page-limited, exactly like the full scanner would.
func (o *oracle) pool() []gadget.Gadget {
	img := viewImage(o.res.Orig.Name, o.viewAddr, o.viewData)
	if o.mode == cpu.ModeNaiveILR {
		var out []gadget.Gadget
		for _, g := range gadget.Scan(img, 0) {
			if o.intended[g.Addr] {
				out = append(out, g)
			}
		}
		return out
	}
	return gadget.ScanPages(img, o.disclosedCode, 0)
}
