package attack

import (
	"bytes"
	"context"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
)

var update = flag.Bool("update", false, "rewrite golden files")

// canonicalReport runs the canonical campaign (the default Config every
// surface runs) exactly once per test binary and shares the report.
var canonicalReport = sync.OnceValues(func() (*Report, error) {
	return RunCampaign(context.Background(), harness.NewRunner(0), Config{}, nil)
})

// TestCampaignGolden pins the canonical campaign's results envelope byte for
// byte: same layouts, same leak serve orders, same chains, same work-factor
// numbers, on every machine and Go version. Regenerate with -update after a
// deliberate change to the attacker, the defense, or the wire shape (and bump
// the results schema when the latter changes).
func TestCampaignGolden(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	got, err := results.Marshal(rep.Envelope())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "campaign.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("campaign envelope drifted from %s\n--- got ---\n%.2000s", path, got)
	}
}

// TestAttackOrdering is the security acceptance criterion: under the
// canonical leak budget the plain-disclosure success rate must rank
//
//	baseline > naive ILR >= VCFR,
//
// with VCFR admitting no success through any phase — not full-knowledge
// static chains, not plain disclosure, not disclosure against
// re-randomization — because every compiled chain names untagged addresses
// and default-deny turns the fire into a detection.
func TestAttackOrdering(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("canonical campaign reported partial")
	}
	rates := make(map[cpu.Mode]ModeSummary)
	for _, s := range rep.Summaries() {
		if s.Cells == 0 {
			t.Fatalf("mode %s summarized zero cells", s.Mode)
		}
		rates[s.Mode] = s
	}
	b, n, v := rates[cpu.ModeBaseline], rates[cpu.ModeNaiveILR], rates[cpu.ModeVCFR]
	if !(b.SuccessRate > n.SuccessRate && n.SuccessRate >= v.SuccessRate) {
		t.Errorf("success rates not ordered: baseline %.3f > naive %.3f >= vcfr %.3f",
			b.SuccessRate, n.SuccessRate, v.SuccessRate)
	}
	if b.SuccessRate != 1 {
		t.Errorf("baseline in-budget success rate %.3f, want 1.0 (every cell falls in a page or two)", b.SuccessRate)
	}
	if v.StaticSuccesses != 0 || v.Successes != 0 || v.RerandSuccesses != 0 {
		t.Errorf("VCFR admitted successes (static %d, plain %d, rerand %d), want none",
			v.StaticSuccesses, v.Successes, v.RerandSuccesses)
	}
	// Naive ILR's characteristic hole: the un-randomized space stays live, so
	// full-knowledge static chains at original addresses still work.
	if n.StaticSuccesses != n.Cells {
		t.Errorf("naive ILR static successes %d/%d, want the un-randomized-space hole on every cell",
			n.StaticSuccesses, n.Cells)
	}
	if b.StaticSuccesses != b.Cells {
		t.Errorf("baseline static successes %d/%d, want all", b.StaticSuccesses, b.Cells)
	}
	// And the mechanism, specifically: every VCFR fire must be detected as an
	// unmapped/prohibited randomized-space transfer, never a silent no-effect.
	for _, r := range rep.Rows {
		if r.Mode != cpu.ModeVCFR {
			continue
		}
		if r.Stats.ChainsFired == 0 {
			t.Errorf("vcfr/%s/%s fired no chains; the disclosure attacker should at least try", r.Workload, r.Payload)
		}
		if r.Stats.ChainsFired != r.Stats.BlockedRPC {
			t.Errorf("vcfr/%s/%s: %d fires but %d unmapped-RPC detections; every fire must trip default-deny",
				r.Workload, r.Payload, r.Stats.ChainsFired, r.Stats.BlockedRPC)
		}
	}
}

// TestRerandomizationRaisesWorkFactor locks the re-randomization claim: for
// every cell whose plain attacker succeeded, racing the same attacker against
// periodic layout swaps must either strictly raise the leaks needed or defeat
// it outright — and neither side of that disjunction may be vacuous over the
// canonical campaign.
func TestRerandomizationRaisesWorkFactor(t *testing.T) {
	rep, err := canonicalReport()
	if err != nil {
		t.Fatal(err)
	}
	var strictlyMore, defeated int
	for _, r := range rep.Rows {
		if !r.Plain.Success || r.Rerand == nil {
			continue
		}
		switch {
		case !r.Rerand.Success:
			defeated++
		case r.Rerand.Leaks > r.Plain.Leaks:
			strictlyMore++
		default:
			t.Errorf("%s/%s/%s: re-randomization did not raise the work factor (plain %d leaks, rerand %d, success %v)",
				r.Workload, r.Mode, r.Payload, r.Plain.Leaks, r.Rerand.Leaks, r.Rerand.Success)
		}
		if r.Rerand.Epochs == 0 {
			t.Errorf("%s/%s/%s: rerand arm swapped zero epochs", r.Workload, r.Mode, r.Payload)
		}
	}
	if strictlyMore == 0 {
		t.Error("no cell where re-randomization strictly raised the leak count; the claim is vacuous")
	}
	if defeated == 0 {
		t.Error("no cell where re-randomization defeated the attacker outright; the claim is vacuous")
	}
	if rep.Totals.Rerandomizations == 0 {
		t.Error("campaign performed zero re-randomizations")
	}
}

// TestCampaignDeterministicAcrossWorkers locks worker-count independence: the
// same seed must yield byte-identical work-factor tables whether the cells
// run serially or spread over eight workers.
func TestCampaignDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{
		Workloads: []string{"bzip2", "sjeng"},
		Seed:      7,
	}
	run := func(workers int) []byte {
		t.Helper()
		rep, err := RunCampaign(context.Background(), harness.NewRunner(workers), cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		b, err := results.Marshal(rep.Envelope())
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	serial := run(1)
	parallel := run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("work-factor table depends on worker count:\n--- workers=1 ---\n%.1500s\n--- workers=8 ---\n%.1500s",
			serial, parallel)
	}
}

// TestCampaignCancellation proves a cancelled campaign returns the partial
// report instead of an error: the full cell plan comes back, unexecuted
// cells are marked, and Partial is set — on the report and on the wire.
func TestCampaignCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := RunCampaign(ctx, harness.NewRunner(1), Config{Workloads: []string{"bzip2"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Partial {
		t.Error("cancelled campaign not marked partial")
	}
	wantRows := len(AllModes()) * len(AllPayloads())
	if len(rep.Rows) != wantRows {
		t.Errorf("cancelled campaign has %d rows, want the full plan of %d", len(rep.Rows), wantRows)
	}
	for _, r := range rep.Rows {
		if r.Error == "" {
			t.Errorf("row %s/%s/%s executed under a cancelled context", r.Workload, r.Mode, r.Payload)
		}
	}
	env := rep.Envelope()
	if !env.Attack.Partial {
		t.Error("envelope of cancelled campaign not marked partial")
	}
}

// TestCampaignProgress checks the live progress feed: monotone cell counts
// ending at the plan total with victim instructions attributed.
func TestCampaignProgress(t *testing.T) {
	var mu sync.Mutex
	var last harness.Progress
	var calls int
	rep, err := RunCampaign(context.Background(), harness.NewRunner(2), Config{
		Workloads: []string{"bzip2"}, Modes: []cpu.Mode{cpu.ModeVCFR},
	}, func(p harness.Progress) {
		// Callbacks from different workers may arrive out of order; keep the
		// furthest point seen.
		mu.Lock()
		defer mu.Unlock()
		calls++
		if p.CellsDone > last.CellsDone {
			last = p
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("campaign partial")
	}
	if calls == 0 || last.CellsDone != last.CellsTotal || last.Instructions == 0 {
		t.Errorf("final progress %+v after %d calls, want all cells done with nonzero instructions", last, calls)
	}
}

// TestParseModes and TestParsePayloads pin the CLI/request vocabularies.
func TestParseModes(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want []cpu.Mode
	}{
		{"", AllModes()},
		{"all", AllModes()},
		{"baseline", []cpu.Mode{cpu.ModeBaseline}},
		{"naive", []cpu.Mode{cpu.ModeNaiveILR}},
		{"vcfr", []cpu.Mode{cpu.ModeVCFR}},
	} {
		got, err := ParseModes(tc.in)
		if err != nil || len(got) != len(tc.want) {
			t.Fatalf("ParseModes(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Errorf("ParseModes(%q)[%d] = %v, want %v", tc.in, i, got[i], tc.want[i])
			}
		}
	}
	if _, err := ParseModes("bogus"); err == nil {
		t.Error("ParseModes(bogus) accepted")
	}
}

func TestParsePayloads(t *testing.T) {
	got, err := ParsePayloads([]string{"print-and-exit", " exfiltrate"})
	if err != nil || len(got) != 2 || got[0] != PayloadPrint || got[1] != PayloadExfil {
		t.Fatalf("ParsePayloads = %v, %v", got, err)
	}
	if _, err := ParsePayloads([]string{"rootkit"}); err == nil {
		t.Error("ParsePayloads(rootkit) accepted")
	}
	if err := (Config{Payloads: []Payload{"rootkit"}}).withDefaults().validate(); err == nil {
		t.Error("validate accepted an unknown payload")
	}
	if err := (Config{Workloads: []string{"no-such-workload"}}).withDefaults().validate(); err == nil {
		t.Error("validate accepted an unknown workload")
	}
}

// BenchmarkChainBuild measures the chain builder alone: payload templates
// compiled per second against a full-knowledge baseline gadget pool.
// scripts/bench_attack.sh records this as chains evaluated per second.
func BenchmarkChainBuild(b *testing.B) {
	app, err := harness.Prepare("sjeng", harness.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	pool := staticPool(app.R, cpu.ModeBaseline)
	payloads := AllPayloads()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range payloads {
			if _, err := buildChain(pool, p); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(payloads)*b.N)/b.Elapsed().Seconds(), "chains/s")
}

// BenchmarkFire measures the full hijack round trip: build the victim, smash
// the first return with a compiled chain, classify the architectural outcome.
func BenchmarkFire(b *testing.B) {
	app, err := harness.Prepare("sjeng", harness.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	ch, err := buildChain(staticPool(app.R, cpu.ModeBaseline), PayloadPrint)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if o := fire(ctx, app, cpu.ModeBaseline, app.R, ch, PayloadPrint, 25000); o != OutcomeSuccess {
			b.Fatalf("fire = %v, want success", o)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "fires/s")
}
