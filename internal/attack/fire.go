package attack

import (
	"bytes"
	"context"
	"errors"
	"strings"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/gadget"
	"vcfr/internal/harness"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// epochPipeline builds a fresh victim from one epoch's artifacts — the
// deployment the attacker's chain is fired against. (app.Pipeline always
// uses the first epoch; re-randomized cells need the current one.)
func epochPipeline(app *harness.App, mode cpu.Mode, res *ilr.Result) (*cpu.Pipeline, error) {
	ccfg := cpu.DefaultConfig(mode)
	var (
		img    *program.Image
		trans  emu.Translator
		randRA map[uint32]uint32
	)
	switch mode {
	case cpu.ModeNaiveILR:
		img, trans = res.Scattered, res.Tables
	case cpu.ModeVCFR:
		img, trans, randRA = res.VCFR, res.Tables, res.RandRA
	default:
		img = res.Orig
	}
	p, err := cpu.New(img, ccfg, trans, randRA)
	if err != nil {
		return nil, err
	}
	p.SetInput(app.W.Input)
	return p, nil
}

// fire launches the chain through the canonical memory-corruption entry
// point: the victim runs normally until its first return, whose popped
// return address is replaced by the chain's first gadget and whose stack
// slot is overflowed with the remaining words — a classic stack smash,
// expressed as injector hooks so every mode's machine reacts exactly as its
// hardware would. The empty outcome means the context was cancelled before
// a verdict. A simulator panic classifies as a crash: the machine died with
// the attack in flight.
func fire(ctx context.Context, app *harness.App, mode cpu.Mode, res *ilr.Result,
	ch gadget.Chain, payload Payload, maxInsts uint64) (o Outcome) {
	defer func() {
		if recover() != nil {
			o = OutcomeCrash
		}
	}()
	p, err := epochPipeline(app, mode, res)
	if err != nil {
		return OutcomeCrash
	}
	mem := p.State().Mem
	if payload == PayloadExfil {
		for i, b := range secret {
			mem.SetByte(SecretAddr+uint32(i), b)
		}
	}
	fired := false
	p.SetInjector(&cpu.InjectHooks{
		Outcome: func(seq uint64, in isa.Inst, out *emu.Outcome) {
			if fired || in.Class() != isa.ClassRet {
				return
			}
			fired = true
			out.Target = ch.Words[0]
			for i, w := range ch.Words[1:] {
				mem.WriteWord(out.MemAddr+4+uint32(i)*4, w)
			}
		},
	})
	res2, err := p.RunContext(ctx, maxInsts)
	if err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return ""
	}
	return classify(p, res2, err, payload, fired)
}

// classify maps one hijacked run onto the outcome taxonomy. Success is
// judged purely architecturally, against the payload's intended effect.
func classify(p *cpu.Pipeline, res cpu.Result, err error, payload Payload, fired bool) Outcome {
	if err != nil {
		if errors.Is(err, cpu.ErrControlViolation) {
			return OutcomeBlockedRPC
		}
		var f *emu.Fault
		if errors.As(err, &f) &&
			(strings.HasPrefix(f.Msg, "fetch:") || strings.HasPrefix(f.Msg, "invalid opcode")) {
			return OutcomeBlockedIllegal
		}
		return OutcomeCrash
	}
	if !fired {
		return OutcomeNoEffect
	}
	switch payload {
	case PayloadWrite:
		if p.State().Mem.ReadWord(WriteAddr) == WriteValue {
			return OutcomeSuccess
		}
	case PayloadExfil:
		if bytes.Contains(res.Out, secret) {
			return OutcomeSuccess
		}
	default:
		if bytes.Contains(res.Out, []byte(marker)) {
			return OutcomeSuccess
		}
	}
	return OutcomeNoEffect
}
