package attack

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"

	"vcfr/internal/cpu"
	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/workloads"
)

// Config scopes one attack campaign. The zero value (after withDefaults) is
// the canonical campaign every surface runs: three workloads under all
// three modes and all three payloads, each cell attacked statically, by
// plain disclosure, and (except baseline) by disclosure against periodic
// re-randomization — all drawn deterministically from Seed, so the same
// Config always yields the same work-factor table.
type Config struct {
	// Workloads to attack; empty means DefaultWorkloads.
	Workloads []string
	// Modes to evaluate; empty means all three architectures.
	Modes []cpu.Mode
	// Payloads is the attack-template subset; empty means AllPayloads.
	Payloads []Payload
	// Seed drives everything: per-workload layouts, leak serve orders, and
	// every epoch's re-randomization. 0 means 42.
	Seed int64
	// Scale multiplies workload iteration counts. <= 0 means 1.
	Scale int
	// Spread is the ILR scatter factor. <= 0 means 8.
	Spread int
	// MaxInsts caps each fired (hijacked) run. 0 means 25000.
	MaxInsts uint64
	// LeakBudget is the canonical disclosure allowance B0 the success-rate
	// metric is measured at: a cell counts as within budget when its plain
	// attacker succeeds using at most this many leak ops. <= 0 means 16.
	LeakBudget int
	// MaxLeaks caps each arm's leak ops (the exploration horizon, beyond
	// which an attacker is declared defeated). <= 0 derives it from the
	// cell's universe: 8 pages of budget per leakable page.
	MaxLeaks int
	// RerandEvery is the re-randomization arm's period, in leak ops per
	// epoch. <= 0 means 5.
	RerandEvery int
	// AdvanceInsts is how many instructions the victim executes between
	// leak ops — the race between execution and disclosure. 0 means 2000.
	AdvanceInsts uint64
}

// DefaultWorkloads is the canonical campaign's workload set, matching the
// fault campaign's: three small, behaviorally distinct SPEC analogs whose
// text sizes span one page (bzip2, sjeng) to several (xalan).
func DefaultWorkloads() []string { return []string{"bzip2", "sjeng", "xalan"} }

// AllModes returns the three architecture modes in report order.
func AllModes() []cpu.Mode {
	return []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}
}

// ParseModes maps a CLI/request mode string onto the campaign's mode list.
func ParseModes(s string) ([]cpu.Mode, error) {
	switch s {
	case "", "all":
		return AllModes(), nil
	case "baseline":
		return []cpu.Mode{cpu.ModeBaseline}, nil
	case "naive":
		return []cpu.Mode{cpu.ModeNaiveILR}, nil
	case "vcfr":
		return []cpu.Mode{cpu.ModeVCFR}, nil
	}
	return nil, fmt.Errorf("attack: unknown mode %q (want baseline, naive, vcfr, or all)", s)
}

func (c Config) withDefaults() Config {
	if len(c.Workloads) == 0 {
		c.Workloads = DefaultWorkloads()
	}
	if len(c.Modes) == 0 {
		c.Modes = AllModes()
	}
	if len(c.Payloads) == 0 {
		c.Payloads = AllPayloads()
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Spread <= 0 {
		c.Spread = 8
	}
	if c.MaxInsts == 0 {
		c.MaxInsts = 25000
	}
	if c.LeakBudget <= 0 {
		c.LeakBudget = 16
	}
	if c.RerandEvery <= 0 {
		c.RerandEvery = 5
	}
	if c.AdvanceInsts == 0 {
		c.AdvanceInsts = 2000
	}
	return c
}

func (c Config) validate() error {
	for _, w := range c.Workloads {
		if _, err := workloads.ByName(w, 1); err != nil {
			return err
		}
	}
	for _, m := range c.Modes {
		switch m {
		case cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR:
		default:
			return fmt.Errorf("attack: unknown mode %v", m)
		}
	}
	for _, p := range c.Payloads {
		if !p.valid() {
			return fmt.Errorf("attack: unknown payload %q", p)
		}
	}
	return nil
}

// maxLeaksFor resolves the exploration horizon for one cell.
func (c Config) maxLeaksFor(universe int) int {
	if c.MaxLeaks > 0 {
		return c.MaxLeaks
	}
	n := 8 * universe
	if n < 8*c.RerandEvery {
		n = 8 * c.RerandEvery
	}
	return n
}

// Disclosure is one arm's work-factor result: how much the leak oracle had
// to serve before the attacker won, or the proof it never did.
type Disclosure struct {
	Success      bool    `json:"success"`
	WithinBudget bool    `json:"within_budget"` // Success with Leaks <= LeakBudget
	Leaks        int     `json:"leaks"`         // leak ops actually served
	CodePages    int     `json:"code_pages"`
	MapPages     int     `json:"map_pages"`
	ChainsBuilt  int     `json:"chains_built"`
	ChainsFired  int     `json:"chains_fired"`
	Blocked      int     `json:"blocked"` // fires the machine detected
	Epochs       int     `json:"epochs"`  // re-randomizations survived (rerand arm)
	Outcome      Outcome `json:"outcome"` // final fire verdict, or no-chain
}

// Row is one (workload, mode, payload) cell of the campaign: the static
// full-knowledge phase plus the plain and re-randomized disclosure arms.
type Row struct {
	Workload string
	Mode     cpu.Mode
	Payload  Payload
	Static   Static
	Plain    Disclosure
	// Rerand is the disclosure arm raced against periodic re-randomization;
	// nil under baseline (no layout to re-randomize).
	Rerand *Disclosure
	Stats  Stats
	// Error marks the cell as not (fully) executed.
	Error string
}

// Report is one campaign's full result.
type Report struct {
	Config Config
	Rows   []Row
	Totals Stats
	// Partial is true when any row carries an error.
	Partial bool
}

// armSeed derives one arm's PRNG seed from the campaign seed and the cell
// coordinates, so neither worker count nor scheduling order changes any
// serve order.
func armSeed(base int64, workload string, mode cpu.Mode, payload Payload, arm string) int64 {
	return harness.CellSeed(base, "attacks",
		fmt.Sprintf("%s|%s|%s|%s", workload, mode, payload, arm))
}

// epochSeed derives one re-randomization epoch's layout seed.
func epochSeed(base int64, workload string, mode cpu.Mode, payload Payload, epoch int) int64 {
	return harness.CellSeed(base, "attacks",
		fmt.Sprintf("%s|%s|%s|epoch%d", workload, mode, payload, epoch))
}

// RunCampaign executes the configured campaign on the runner's worker pool
// and returns the work-factor table. Rows come back in the fixed (workload,
// mode, payload) order of the config regardless of worker count, so
// identical configs produce byte-identical reports. onProgress, if non-nil,
// receives live completion state (CellsDone/CellsTotal count cells,
// Instructions counts victim instructions executed under attack).
//
// Cancellation returns the partial report, not an error: finished cells
// keep their results and unexecuted cells carry the context's error,
// mirroring the fault campaign.
func RunCampaign(ctx context.Context, r *harness.Runner, cfg Config, onProgress func(harness.Progress)) (*Report, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if r == nil {
		r = harness.NewRunner(0)
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Prepare each workload once; every cell shares the first-epoch layout.
	// The layout seed derives from the campaign seed and the workload name,
	// so layouts differ across workloads but never across surfaces.
	apps := make(map[string]*harness.App, len(cfg.Workloads))
	appErr := make(map[string]error, len(cfg.Workloads))
	for _, w := range cfg.Workloads {
		hcfg := harness.Config{
			Scale:  cfg.Scale,
			Spread: cfg.Spread,
			Seed:   harness.CellSeed(cfg.Seed, "attacks", w),
		}
		if app, err := harness.Prepare(w, hcfg); err != nil {
			appErr[w] = err
		} else {
			apps[w] = app
		}
	}

	// The cell plan, in fixed order; results land in per-cell slots so
	// aggregation is deterministic no matter which worker ran what.
	rep := &Report{Config: cfg}
	for _, w := range cfg.Workloads {
		for _, m := range cfg.Modes {
			for _, p := range cfg.Payloads {
				row := Row{Workload: w, Mode: m, Payload: p}
				if err := appErr[w]; err != nil {
					row.Error = firstLine(err.Error())
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}

	var (
		progMu    sync.Mutex
		doneCount int
		instTotal uint64
	)
	r.Shard(ctx, len(rep.Rows), func(ctx context.Context, i int) {
		row := &rep.Rows[i]
		if row.Error != "" {
			return
		}
		insts := runCell(ctx, apps[row.Workload], cfg, row)
		if onProgress == nil {
			return
		}
		progMu.Lock()
		doneCount++
		instTotal += insts
		p := harness.Progress{CellsDone: doneCount, CellsTotal: len(rep.Rows), Instructions: instTotal}
		progMu.Unlock()
		onProgress(p)
	})

	for i := range rep.Rows {
		row := &rep.Rows[i]
		// A cell the shard never reached (cancellation) reports why.
		if row.Error == "" && row.Stats.ChainsBuilt == 0 && row.Stats.Leaks == 0 &&
			row.Static.PoolSize == 0 {
			row.Error = firstLine(notExecuted(ctx).Error())
		}
		if row.Error != "" {
			rep.Partial = true
		}
		rep.Totals.Merge(row.Stats)
	}
	return rep, nil
}

// runCell executes one cell: static phase, plain disclosure arm, and (for
// randomized modes) the disclosure arm raced against re-randomization. It
// returns the victim instructions executed, for progress reporting.
func runCell(ctx context.Context, app *harness.App, cfg Config, row *Row) (insts uint64) {
	st := &row.Stats
	var err error
	if row.Static, err = runStatic(ctx, app, row.Mode, row.Payload, cfg, st); err != nil {
		row.Error = firstLine(err.Error())
		return insts
	}
	var n uint64
	if row.Plain, n, err = runDisclosure(ctx, app, cfg, row, false, st); err != nil {
		row.Error = firstLine(err.Error())
		return insts + n
	}
	insts += n
	if row.Mode == cpu.ModeBaseline {
		return insts // no layout to re-randomize: the rerand arm is moot
	}
	var d Disclosure
	if d, n, err = runDisclosure(ctx, app, cfg, row, true, st); err != nil {
		row.Error = firstLine(err.Error())
		return insts + n
	}
	insts += n
	row.Rerand = &d
	return insts
}

// runDisclosure runs one JIT-ROP arm: the victim executes, the oracle
// serves one page per op, and whenever the attacker's view grows enough to
// compile the payload, the chain is fired against the victim's CURRENT
// deployment. With rerand, the layout is swapped under the live victim
// every RerandEvery ops, expiring the epoch-scoped knowledge.
func runDisclosure(ctx context.Context, app *harness.App, cfg Config, row *Row, rerand bool, st *Stats) (Disclosure, uint64, error) {
	arm := "plain"
	if rerand {
		arm = "rerand"
	}
	rng := rand.New(rand.NewSource(armSeed(cfg.Seed, row.Workload, row.Mode, row.Payload, arm)))
	o, err := newOracle(app, row.Mode, rng, st)
	if err != nil {
		return Disclosure{}, 0, err
	}
	d := Disclosure{Outcome: OutcomeNoChain}
	maxOps := cfg.maxLeaksFor(o.universe())
	failed := make(map[string]bool)
	var ran uint64
	for op := 1; op <= maxOps; op++ {
		if err := ctx.Err(); err != nil {
			return d, ran, err
		}
		if rerand && op > 1 && (op-1)%cfg.RerandEvery == 0 {
			d.Epochs++
			next, err := o.res.Rerandomize(epochSeed(cfg.Seed, row.Workload, row.Mode, row.Payload, d.Epochs))
			if err != nil {
				return d, ran, err
			}
			if err := o.applyEpoch(next); err != nil {
				return d, ran, err
			}
		}
		// The victim keeps computing while the attacker works — the race
		// the re-randomization defense is about.
		ran += cfg.AdvanceInsts
		if _, err := o.victim.Run(ran); err != nil {
			return d, ran, fmt.Errorf("attack: victim faulted without attacker help: %w", err)
		}
		if !o.leak() {
			if !rerand {
				break // nothing left to learn, ever: the attacker is done
			}
			continue // epoch exhausted; idle until the next swap
		}
		d.Leaks++
		if !o.grew {
			continue
		}
		o.grew = false
		ch, err := buildChain(o.pool(), row.Payload)
		if err != nil || failed[chainKey(ch)] {
			continue
		}
		st.ChainsBuilt++
		d.ChainsBuilt++
		outcome := fire(ctx, app, row.Mode, o.res, ch, row.Payload, cfg.MaxInsts)
		if outcome == "" {
			return d, ran, notExecuted(ctx)
		}
		st.AddFire(outcome)
		d.ChainsFired++
		d.Outcome = outcome
		d.CodePages, d.MapPages = o.codePagesServed, o.mapPagesServed
		if outcome == OutcomeSuccess {
			d.Success = true
			d.WithinBudget = d.Leaks <= cfg.LeakBudget
			return d, ran, nil
		}
		failed[chainKey(ch)] = true
		if outcome == OutcomeBlockedRPC || outcome == OutcomeBlockedIllegal {
			d.Blocked++
		}
	}
	d.CodePages, d.MapPages = o.codePagesServed, o.mapPagesServed
	return d, ran, nil
}

// notExecuted names why planned work never ran: the context's error when it
// was cancelled, a generic marker otherwise.
func notExecuted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return errors.New("attack cell not executed")
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}

// ModeSummary is one mode's aggregate over the campaign's cells — the
// numbers the paper-style claim ranks.
type ModeSummary struct {
	Mode            cpu.Mode
	Cells           int
	StaticSuccesses int     // full-knowledge chains that worked
	Successes       int     // plain-arm disclosure successes (any budget)
	WithinBudget    int     // plain-arm successes within LeakBudget
	SuccessRate     float64 // WithinBudget / Cells
	MeanLeaks       float64 // mean leaks over plain-arm successes
	RerandSuccesses int     // rerand-arm successes (any budget)
	MeanRerandLeaks float64 // mean leaks over rerand-arm successes
}

// Summaries aggregates per mode, in the config's mode order. Cells carrying
// errors are excluded.
func (rep *Report) Summaries() []ModeSummary {
	out := make([]ModeSummary, 0, len(rep.Config.Modes))
	for _, m := range rep.Config.Modes {
		s := ModeSummary{Mode: m}
		var leakSum, rleakSum int
		for _, r := range rep.Rows {
			if r.Mode != m || r.Error != "" {
				continue
			}
			s.Cells++
			if r.Static.Outcome == OutcomeSuccess {
				s.StaticSuccesses++
			}
			if r.Plain.Success {
				s.Successes++
				leakSum += r.Plain.Leaks
			}
			if r.Plain.WithinBudget {
				s.WithinBudget++
			}
			if r.Rerand != nil && r.Rerand.Success {
				s.RerandSuccesses++
				rleakSum += r.Rerand.Leaks
			}
		}
		if s.Cells > 0 {
			s.SuccessRate = float64(s.WithinBudget) / float64(s.Cells)
		}
		if s.Successes > 0 {
			s.MeanLeaks = float64(leakSum) / float64(s.Successes)
		}
		if s.RerandSuccesses > 0 {
			s.MeanRerandLeaks = float64(rleakSum) / float64(s.RerandSuccesses)
		}
		out = append(out, s)
	}
	return out
}

// Envelope renders the report as the versioned wire document every surface
// emits (results schema v4, kind "attack").
func (rep *Report) Envelope() results.Envelope {
	modes := make([]string, len(rep.Config.Modes))
	for i, m := range rep.Config.Modes {
		modes[i] = m.String()
	}
	payloads := make([]string, len(rep.Config.Payloads))
	for i, p := range rep.Config.Payloads {
		payloads[i] = string(p)
	}
	a := results.Attack{
		Seed:         rep.Config.Seed,
		Scale:        rep.Config.Scale,
		Spread:       rep.Config.Spread,
		MaxInsts:     rep.Config.MaxInsts,
		LeakBudget:   rep.Config.LeakBudget,
		MaxLeaks:     rep.Config.MaxLeaks,
		RerandEvery:  rep.Config.RerandEvery,
		AdvanceInsts: rep.Config.AdvanceInsts,
		Workloads:    rep.Config.Workloads,
		Modes:        modes,
		Payloads:     payloads,
		Rows:         make([]results.AttackRow, 0, len(rep.Rows)),
	}
	for _, r := range rep.Rows {
		ar := results.AttackRow{
			Workload: r.Workload,
			Mode:     r.Mode.String(),
			Payload:  string(r.Payload),
			Static: results.AttackStatic{
				PoolSize: r.Static.PoolSize,
				Built:    r.Static.Built,
				ChainLen: r.Static.ChainLen,
				Outcome:  string(r.Static.Outcome),
			},
			Plain: disclosureDoc(r.Plain),
			Error: r.Error,
		}
		if r.Rerand != nil {
			d := disclosureDoc(*r.Rerand)
			ar.Rerand = &d
		}
		a.Rows = append(a.Rows, ar)
	}
	for _, s := range rep.Summaries() {
		a.Summaries = append(a.Summaries, results.AttackModeSummary{
			Mode:            s.Mode.String(),
			Cells:           s.Cells,
			StaticSuccesses: s.StaticSuccesses,
			Successes:       s.Successes,
			WithinBudget:    s.WithinBudget,
			SuccessRate:     s.SuccessRate,
			MeanLeaks:       s.MeanLeaks,
			RerandSuccesses: s.RerandSuccesses,
			MeanRerandLeaks: s.MeanRerandLeaks,
		})
	}
	a.Totals = results.AttackCounts{
		ChainsBuilt:      rep.Totals.ChainsBuilt,
		ChainsFired:      rep.Totals.ChainsFired,
		Successes:        rep.Totals.Successes,
		BlockedRPC:       rep.Totals.BlockedRPC,
		BlockedIllegal:   rep.Totals.BlockedIllegal,
		Crashes:          rep.Totals.Crashes,
		NoEffect:         rep.Totals.NoEffect,
		Leaks:            rep.Totals.Leaks,
		CodePages:        rep.Totals.CodePages,
		MapPages:         rep.Totals.MapPages,
		Rerandomizations: rep.Totals.Rerandomizations,
	}
	return results.NewAttack(a)
}

func disclosureDoc(d Disclosure) results.AttackDisclosure {
	return results.AttackDisclosure{
		Success:      d.Success,
		WithinBudget: d.WithinBudget,
		Leaks:        d.Leaks,
		CodePages:    d.CodePages,
		MapPages:     d.MapPages,
		ChainsBuilt:  d.ChainsBuilt,
		ChainsFired:  d.ChainsFired,
		Blocked:      d.Blocked,
		Epochs:       d.Epochs,
		Outcome:      string(d.Outcome),
	}
}

// Table renders the report as the human-readable work-factor table
// attacksim and experiments print: one row per cell, then the per-mode
// summary — the paper's headline comparison (baseline falls in a page or
// two, naive ILR falls to map+code pairing, VCFR converts every attempt
// into a detection).
func (rep *Report) Table() *harness.Table {
	t := &harness.Table{
		ID:    "attacks",
		Title: "adversary-in-the-loop attack evaluation (baseline vs naive-ILR vs VCFR)",
		Columns: []string{"workload", "mode", "payload", "static", "pool",
			"leaks", "pages", "fired", "outcome", "rr-leaks", "rr-outcome"},
		Note: fmt.Sprintf("seed %d, leak budget %d ops, re-randomize every %d ops, victim advance %d insts/op",
			rep.Config.Seed, rep.Config.LeakBudget, rep.Config.RerandEvery, rep.Config.AdvanceInsts),
	}
	for _, r := range rep.Rows {
		if r.Error != "" {
			t.Rows = append(t.Rows, []string{r.Workload, r.Mode.String(), string(r.Payload),
				"error: " + r.Error})
			continue
		}
		static := string(r.Static.Outcome)
		if !r.Static.Built {
			static = string(OutcomeNoChain)
		}
		rrLeaks, rrOutcome := "-", "-"
		if r.Rerand != nil {
			rrLeaks = fmt.Sprintf("%d", r.Rerand.Leaks)
			rrOutcome = string(r.Rerand.Outcome)
		}
		t.Rows = append(t.Rows, []string{
			r.Workload, r.Mode.String(), string(r.Payload),
			static,
			fmt.Sprintf("%d", r.Static.PoolSize),
			fmt.Sprintf("%d", r.Plain.Leaks),
			fmt.Sprintf("%d+%d", r.Plain.CodePages, r.Plain.MapPages),
			fmt.Sprintf("%d", r.Plain.ChainsFired),
			string(r.Plain.Outcome),
			rrLeaks, rrOutcome,
		})
	}
	for _, s := range rep.Summaries() {
		t.Rows = append(t.Rows, []string{
			"(all)", s.Mode.String(), "(summary)",
			fmt.Sprintf("%d static-ok", s.StaticSuccesses),
			fmt.Sprintf("%d cells", s.Cells),
			fmt.Sprintf("%.1f mean", s.MeanLeaks),
			"-",
			fmt.Sprintf("%d ok", s.Successes),
			fmt.Sprintf("%.0f%% in-budget", 100*s.SuccessRate),
			fmt.Sprintf("%.1f mean", s.MeanRerandLeaks),
			fmt.Sprintf("%d ok", s.RerandSuccesses),
		})
	}
	return t
}
