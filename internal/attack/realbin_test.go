package attack

import (
	"context"
	"testing"

	"vcfr/internal/harness"
	"vcfr/internal/results"
	"vcfr/internal/trace"
)

// TestAttackCampaignOverRealBinary runs the adversary-in-the-loop evaluation
// over lifted real-binary text: the campaign must complete (every cell
// executed), the gadget scanner must find a non-empty pool in the lifted
// dispatch fixture, and the report must ride the same versioned envelope as
// the synthetic campaigns. The fixture's pool is tiny compared to the
// analogs, so the claim here is that real code flows through the security
// evaluation unchanged — not that any particular payload lands.
func TestAttackCampaignOverRealBinary(t *testing.T) {
	r := harness.NewRunner(0)
	r.Traces = trace.NewCache(64 << 20)
	rep, err := RunCampaign(context.Background(), r, Config{
		Workloads: []string{"elf-dispatch"},
		Seed:      7,
		MaxLeaks:  64,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial {
		t.Fatal("campaign over elf-dispatch reported partial")
	}
	if len(rep.Rows) == 0 {
		t.Fatal("campaign produced no rows")
	}
	for _, row := range rep.Rows {
		if row.Error != "" {
			t.Errorf("%s/%s/%s: %s", row.Workload, row.Mode, row.Payload, row.Error)
		}
		if row.Static.PoolSize == 0 {
			t.Errorf("%s/%s/%s: empty gadget pool over lifted text",
				row.Workload, row.Mode, row.Payload)
		}
	}
	if _, err := results.Marshal(rep.Envelope()); err != nil {
		t.Fatalf("envelope does not marshal: %v", err)
	}
}
