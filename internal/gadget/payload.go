package gadget

import (
	"encoding/binary"
	"fmt"

	"vcfr/internal/isa"
)

// This file is the auto-roper: ROPgadget's payload compiler. Given a gadget
// pool, it assembles concrete return-oriented chains from templates. The
// chains are real: fed to a vulnerable program running on the simulator,
// they execute (see examples/ropdefense and the integration tests).

// Role classifies what a chain-builder needs a gadget to do.
type Role int

// Gadget roles.
const (
	// RolePopReg: "pop rX ; ... ; ret" — load a constant from the stack into
	// a specific register.
	RolePopReg Role = iota + 1
	// RoleSyscall: "sys N ; ... ; ret" — invoke a specific syscall.
	RoleSyscall
	// RoleStore: "store [rA+k], rB ; ... ; ret" — write-what-where.
	RoleStore
	// RoleArith: register arithmetic ending in ret.
	RoleArith
)

// FindPopReg returns a gadget whose first instruction pops into reg and
// whose body performs no other stack pops (so the chain layout stays
// simple), ending in ret.
func FindPopReg(gs []Gadget, reg isa.Reg) (Gadget, bool) {
	for _, g := range gs {
		if g.End.Op != isa.OpRet || len(g.Insts) == 0 {
			continue
		}
		if g.Insts[0].Op != isa.OpPop || g.Insts[0].Rd != reg {
			continue
		}
		clean := true
		for _, in := range g.Insts[1:] {
			if touchesStack(in) || clobbers(in, reg) {
				clean = false
				break
			}
		}
		if clean {
			return g, true
		}
	}
	return Gadget{}, false
}

// FindSyscall returns a "sys num" gadget ending in ret whose body does not
// touch the stack.
func FindSyscall(gs []Gadget, num int32) (Gadget, bool) {
	for _, g := range gs {
		if g.End.Op != isa.OpRet {
			continue
		}
		sawSys := false
		clean := true
		for _, in := range g.Insts {
			switch {
			case in.Op == isa.OpSys && in.Imm == num:
				sawSys = true
			case touchesStack(in):
				clean = false
			}
		}
		if sawSys && clean {
			return g, true
		}
	}
	return Gadget{}, false
}

// FindStore returns a write-what-where gadget: a single store through
// registers, ending in ret.
func FindStore(gs []Gadget) (Gadget, bool) {
	for _, g := range gs {
		if g.End.Op != isa.OpRet {
			continue
		}
		for _, in := range g.Insts {
			if in.Op == isa.OpStore || in.Op == isa.OpStoreR {
				return g, true
			}
		}
	}
	return Gadget{}, false
}

func touchesStack(in isa.Inst) bool {
	switch in.Op {
	case isa.OpPush, isa.OpPop:
		return true
	case isa.OpLoad, isa.OpStore, isa.OpLoadB, isa.OpStoreB:
		return in.Rs == isa.RegSP || in.Rd == isa.RegSP
	default:
		return writesReg(in) && in.Rd == isa.RegSP
	}
}

func clobbers(in isa.Inst, reg isa.Reg) bool {
	return writesReg(in) && in.Rd == reg
}

func writesReg(in isa.Inst) bool {
	switch in.Op {
	case isa.OpMovRR, isa.OpMovRI, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv,
		isa.OpMod, isa.OpNeg, isa.OpNot, isa.OpAddI, isa.OpSubI, isa.OpAndI,
		isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpSarI,
		isa.OpLoad, isa.OpLoadB, isa.OpLoadR, isa.OpLea, isa.OpPop:
		return true
	default:
		return false
	}
}

// Chain is an assembled ROP payload: the 32-bit words laid over the stack
// starting at the overwritten return-address slot.
type Chain struct {
	Words   []uint32
	Gadgets []Gadget // the distinct gadgets the chain uses
}

// Bytes serializes the chain little-endian, ready to be injected.
func (c Chain) Bytes() []byte {
	out := make([]byte, 4*len(c.Words))
	for i, w := range c.Words {
		binary.LittleEndian.PutUint32(out[4*i:], w)
	}
	return out
}

// BuildPrintChain assembles the classic proof-of-control payload: print each
// byte of msg via the SysPutChar syscall, then exit. It needs a
// "pop r1 ; ret" gadget and a "sys 1 ; ret" gadget; the exit uses a
// "sys 0 ; ret" or "sys 0" - terminated gadget if present, else the chain
// ends by re-entering the putchar gadget with a halt... it simply requires a
// sys-0 gadget and fails otherwise (the pool decides, as with ROPgadget).
func BuildPrintChain(gs []Gadget, msg string) (Chain, error) {
	popR1, ok := FindPopReg(gs, 1)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'pop r1 ; ret' gadget in pool of %d", len(gs))
	}
	putc, ok := FindSyscall(gs, isa.SysPutChar)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'sys 1 ; ret' gadget in pool of %d", len(gs))
	}
	exit, ok := FindSyscall(gs, isa.SysExit)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'sys 0 ; ret' gadget in pool of %d", len(gs))
	}
	var c Chain
	c.Gadgets = []Gadget{popR1, putc, exit}
	for _, ch := range []byte(msg) {
		// ret -> pop r1 (value = ch) -> ret -> sys 1 -> ret -> ...
		c.Words = append(c.Words, popR1.Addr, uint32(ch), putc.Addr)
	}
	// r1 = 0; exit.
	c.Words = append(c.Words, popR1.Addr, 0, exit.Addr)
	return c, nil
}

// BuildWriteChain assembles a write-what-where payload: store value at addr
// using pop gadgets to set up the address and value registers, then exit.
// Like ROPgadget's compiler, it tries every store gadget in the pool until
// one has the supporting pop gadgets it needs.
func BuildWriteChain(gs []Gadget, addr, value uint32) (Chain, error) {
	exit, ok := FindSyscall(gs, isa.SysExit)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no exit gadget in pool of %d", len(gs))
	}
	for _, st := range gs {
		if st.End.Op != isa.OpRet {
			continue
		}
		var storeInst isa.Inst
		for _, in := range st.Insts {
			if in.Op == isa.OpStore || in.Op == isa.OpStoreR {
				storeInst = in
				break
			}
		}
		if storeInst.Op == 0 {
			continue
		}
		popAddr, okA := FindPopReg(gs, storeInst.Rd)
		popVal, okV := FindPopReg(gs, storeInst.Rs)
		if !okA || !okV {
			continue
		}
		var c Chain
		if storeInst.Op == isa.OpStoreR {
			popIx, okI := FindPopReg(gs, storeInst.Rt)
			if !okI {
				continue
			}
			c.Words = []uint32{popAddr.Addr, addr, popVal.Addr, value,
				popIx.Addr, 0, st.Addr, exit.Addr}
			c.Gadgets = []Gadget{popAddr, popVal, popIx, st, exit}
			return c, nil
		}
		base := addr - uint32(storeInst.Imm)
		c.Words = []uint32{popAddr.Addr, base, popVal.Addr, value, st.Addr, exit.Addr}
		c.Gadgets = []Gadget{popAddr, popVal, st, exit}
		return c, nil
	}
	return Chain{}, fmt.Errorf("gadget: no workable store gadget combination in pool of %d", len(gs))
}

// TryAllTemplates reports which payload templates can be assembled from the
// pool — the Sec. V-B experiment ("for all the benchmark applications, no
// attack payloads can be generated" after randomization).
func TryAllTemplates(gs []Gadget) map[string]bool {
	out := make(map[string]bool, 3)
	_, errPrint := BuildPrintChain(gs, "x")
	out["print-and-exit"] = errPrint == nil
	_, errWrite := BuildWriteChain(gs, 0x80000, 1)
	out["write-what-where"] = errWrite == nil
	_, errExfil := BuildExfilChain(gs, 0x80000, 1)
	out["exfiltrate"] = errExfil == nil
	return out
}

// FindLoadTo returns a gadget that loads memory through a pop-settable
// address register into a specific destination register, ending in ret.
func FindLoadTo(gs []Gadget, dst isa.Reg) (Gadget, isa.Reg, bool) {
	for _, g := range gs {
		if g.End.Op != isa.OpRet {
			continue
		}
		for _, in := range g.Insts {
			if in.Op == isa.OpLoad && in.Rd == dst && in.Imm == 0 {
				return g, in.Rs, true
			}
		}
	}
	return Gadget{}, 0, false
}

// BuildExfilChain assembles a data-exfiltration payload: for each of n bytes
// starting at addr, load the word through a load gadget into r1 and emit its
// low byte with a putchar gadget; then exit. This is the confidentiality
// attack — ROP used to leak secrets rather than spawn a shell.
func BuildExfilChain(gs []Gadget, addr uint32, n int) (Chain, error) {
	loadG, addrReg, ok := FindLoadTo(gs, 1)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'load r1, [rX] ; ret' gadget in pool of %d", len(gs))
	}
	popAddr, ok := FindPopReg(gs, addrReg)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'pop %s ; ret' gadget", addrReg)
	}
	putc, ok := FindSyscall(gs, isa.SysPutChar)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'sys 1 ; ret' gadget")
	}
	exit, ok := FindSyscall(gs, isa.SysExit)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no exit gadget")
	}
	popR1, ok := FindPopReg(gs, 1)
	if !ok {
		return Chain{}, fmt.Errorf("gadget: no 'pop r1 ; ret' gadget")
	}
	var c Chain
	c.Gadgets = []Gadget{popAddr, loadG, putc, popR1, exit}
	for i := 0; i < n; i++ {
		c.Words = append(c.Words, popAddr.Addr, addr+uint32(i), loadG.Addr, putc.Addr)
	}
	c.Words = append(c.Words, popR1.Addr, 0, exit.Addr)
	return c, nil
}
