package gadget

import (
	"sort"

	"vcfr/internal/program"
)

// This file is the disclosure-limited view of the scanner: the gadget set an
// attacker can actually assemble when only some code pages have been leaked
// (the JIT-ROP threat model, Snow et al.). internal/attack drives it with an
// incrementally growing disclosed-page set; disclosing every text page must
// reproduce the full Scan exactly, which TestScanPagesFullDisclosure pins.

// PageBits is the disclosure granularity: 4 KiB pages, matching the address
// space and iTLB page size. A JIT-ROP-style leak discloses code in page
// units.
const PageBits = 12

// TextPages returns the sorted page indices (addr >> PageBits) spanned by
// the image's executable segment — the universe a disclosure attacker can
// leak from.
func TextPages(img *program.Image) []uint32 {
	text := img.Text()
	if text == nil || len(text.Data) == 0 {
		return nil
	}
	first := text.Addr >> PageBits
	last := (text.Addr + uint32(len(text.Data)) - 1) >> PageBits
	out := make([]uint32, 0, last-first+1)
	for pg := first; pg <= last; pg++ {
		out = append(out, pg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ByteLen returns the gadget's total encoded size in bytes, first
// instruction through the terminator.
func (g Gadget) ByteLen() uint32 {
	size := uint32(g.End.Len())
	for _, in := range g.Insts {
		size += uint32(in.Len())
	}
	return size
}

// ScanPages probes the image's executable segment exactly like Scan but
// admits a gadget only when every byte of it — first instruction through the
// terminating transfer — lies on a disclosed page, because those are the
// only bytes the attacker has seen. disclosed is keyed by page index
// (addr >> PageBits). Disclosing every page of TextPages is equivalent to a
// full Scan.
func ScanPages(img *program.Image, disclosed map[uint32]bool, maxInsts int) []Gadget {
	if maxInsts <= 0 {
		maxInsts = DefaultMaxInsts
	}
	text := img.Text()
	if text == nil {
		return nil
	}
	var out []Gadget
	for off := 0; off < len(text.Data); off++ {
		addr := text.Addr + uint32(off)
		if !disclosed[addr>>PageBits] {
			continue
		}
		g, ok := scanAt(text.Data, text.Addr, off, maxInsts)
		if !ok {
			continue
		}
		// The whole byte span must be disclosed, not just the leading page:
		// a gadget straddling into an unleaked page is one the attacker
		// cannot have read.
		covered := true
		for pg := addr >> PageBits; pg <= (addr+g.ByteLen()-1)>>PageBits; pg++ {
			if !disclosed[pg] {
				covered = false
				break
			}
		}
		if covered {
			out = append(out, g)
		}
	}
	return out
}
