package gadget

import (
	"math/rand"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// TestScanRandomImagesNeverPanics throws random byte soup at the scanner:
// it must terminate, never panic, and every reported gadget must decode
// cleanly from its start address and end in an indirect transfer.
func TestScanRandomImagesNeverPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		data := make([]byte, 512+rng.Intn(2048))
		rng.Read(data)
		img := &program.Image{
			Name:  "fuzz",
			Entry: 0x1000,
			Segments: []program.Segment{{
				Name: program.SegText, Addr: 0x1000, Data: data,
				Perm: program.PermR | program.PermX,
			}},
		}
		for _, g := range Scan(img, DefaultMaxInsts) {
			// Re-decode the gadget from scratch and verify its shape.
			off := g.Addr - 0x1000
			addr := g.Addr
			for _, want := range g.Insts {
				in, err := isa.Decode(data[off:], addr)
				if err != nil {
					t.Fatalf("trial %d: reported gadget fails to decode at %#x: %v",
						trial, addr, err)
				}
				if in.Op != want.Op {
					t.Fatalf("trial %d: decode disagrees at %#x", trial, addr)
				}
				off += uint32(in.Len())
				addr += uint32(in.Len())
			}
			end, err := isa.Decode(data[off:], addr)
			if err != nil || !end.Class().IsIndirect() {
				t.Fatalf("trial %d: gadget terminator invalid at %#x", trial, addr)
			}
			if len(g.Insts) > DefaultMaxInsts {
				t.Fatalf("trial %d: gadget longer than bound", trial)
			}
		}
	}
}

// TestSurvivorsSubsetProperty: survivors are always a subset of the scanned
// pool, and removal never exceeds 100%.
func TestSurvivorsSubsetProperty(t *testing.T) {
	img := asm.MustAssemble("s", victimSrc)
	pool := Scan(img, DefaultMaxInsts)
	inPool := make(map[uint32]bool, len(pool))
	for _, g := range pool {
		inPool[g.Addr] = true
	}
	for seed := int64(1); seed <= 5; seed++ {
		res, err := ilr.Rewrite(img, ilr.Options{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		surv := Survivors(pool, res.Tables)
		if len(surv) > len(pool) {
			t.Fatalf("seed %d: more survivors than pool", seed)
		}
		for _, g := range surv {
			if !inPool[g.Addr] {
				t.Fatalf("seed %d: survivor %#x not in pool", seed, g.Addr)
			}
		}
		rate := RemovalRate(pool, surv)
		if rate < 0 || rate > 1 {
			t.Fatalf("seed %d: removal rate %f out of range", seed, rate)
		}
	}
}

// TestChainsAreWellFormed: assembled chains reference only gadget addresses
// from the pool plus immediates; the gadget list matches the words.
func TestChainsAreWellFormed(t *testing.T) {
	img := asm.MustAssemble("c", victimSrc)
	pool := Scan(img, DefaultMaxInsts)
	addrs := make(map[uint32]bool, len(pool))
	for _, g := range pool {
		addrs[g.Addr] = true
	}
	chain, err := BuildPrintChain(pool, "ABC")
	if err != nil {
		t.Fatal(err)
	}
	gadgetWords := 0
	for _, w := range chain.Words {
		if addrs[w] {
			gadgetWords++
		}
	}
	// Per character: pop-gadget + putc-gadget; plus pop + exit at the end.
	if gadgetWords != 2*3+2 {
		t.Errorf("chain has %d gadget words, want 8", gadgetWords)
	}
	for _, g := range chain.Gadgets {
		if !addrs[g.Addr] {
			t.Errorf("chain gadget %#x not from pool", g.Addr)
		}
	}
}
