package gadget

import (
	"sort"

	"vcfr/internal/isa"
)

// Kind is the coarse capability a gadget offers an attacker, in ROPgadget's
// taxonomy.
type Kind string

// Gadget kinds.
const (
	KindLoadReg   Kind = "load-reg"    // pop rX: load a constant from the chain
	KindMoveReg   Kind = "move-reg"    // mov rX, rY
	KindArith     Kind = "arith"       // ALU over registers
	KindLoadMem   Kind = "load-mem"    // read memory into a register
	KindStoreMem  Kind = "store-mem"   // write-what-where primitive
	KindSyscall   Kind = "syscall"     // kernel interaction
	KindStackPiv  Kind = "stack-pivot" // rewrites sp
	KindJumpStart Kind = "jop"         // ends in jmpr/callr (JOP, not ROP)
	KindBare      Kind = "bare-ret"    // empty body: chain glue only
)

// Classify reports every capability class a gadget provides. A gadget can
// carry several (e.g. "pop r5 ; store [r5], r1 ; ret" is both load-reg and
// store-mem).
func Classify(g Gadget) []Kind {
	set := make(map[Kind]bool)
	if len(g.Insts) == 0 && g.End.Op == isa.OpRet {
		set[KindBare] = true
	}
	for _, in := range g.Insts {
		switch in.Op {
		case isa.OpPop:
			set[KindLoadReg] = true
			if in.Rd == isa.RegSP {
				set[KindStackPiv] = true
			}
		case isa.OpMovRR:
			set[KindMoveReg] = true
			if in.Rd == isa.RegSP {
				set[KindStackPiv] = true
			}
		case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
			isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpMod, isa.OpNeg,
			isa.OpNot, isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI,
			isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpSarI:
			set[KindArith] = true
			if in.Rd == isa.RegSP {
				set[KindStackPiv] = true
			}
		case isa.OpLoad, isa.OpLoadB, isa.OpLoadR:
			set[KindLoadMem] = true
			if in.Rd == isa.RegSP {
				set[KindStackPiv] = true
			}
		case isa.OpStore, isa.OpStoreB, isa.OpStoreR:
			set[KindStoreMem] = true
		case isa.OpSys:
			set[KindSyscall] = true
		}
	}
	if g.End.Op != isa.OpRet {
		set[KindJumpStart] = true
	}
	out := make([]Kind, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// KindCensus counts, per kind, how many gadgets in the pool provide it —
// the attacker's capability inventory.
func KindCensus(pool []Gadget) map[Kind]int {
	out := make(map[Kind]int)
	for _, g := range pool {
		for _, k := range Classify(g) {
			out[k]++
		}
	}
	return out
}
