package gadget

import (
	"testing"

	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

// TestScanPagesFullDisclosure pins the satellite contract: disclosing every
// text page makes ScanPages return exactly the full-image Scan, gadget for
// gadget, over every stock workload and both the original and scattered
// layouts.
func TestScanPagesFullDisclosure(t *testing.T) {
	for _, name := range workloads.Names() {
		w, err := workloads.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range []struct {
			label string
		}{{"orig"}, {"scattered"}} {
			img := res.Orig
			if tc.label == "scattered" {
				img = res.Scattered
			}
			all := make(map[uint32]bool)
			for _, pg := range TextPages(img) {
				all[pg] = true
			}
			full := Scan(img, DefaultMaxInsts)
			part := ScanPages(img, all, DefaultMaxInsts)
			if len(full) != len(part) {
				t.Fatalf("%s/%s: full scan %d gadgets, all-pages scan %d",
					name, tc.label, len(full), len(part))
			}
			for i := range full {
				if full[i].Addr != part[i].Addr || full[i].String() != part[i].String() {
					t.Fatalf("%s/%s: gadget %d differs: %#x %q vs %#x %q",
						name, tc.label, i, full[i].Addr, full[i],
						part[i].Addr, part[i])
				}
			}
		}
	}
}

// TestScanPagesPartialSubset checks the monotonicity the work-factor curve
// relies on: every gadget visible under a partial disclosure is in the full
// set, disclosing nothing yields nothing, and a strictly growing disclosure
// never loses gadgets.
func TestScanPagesPartialSubset(t *testing.T) {
	w, err := workloads.ByName("xalan", 1)
	if err != nil {
		t.Fatal(err)
	}
	full := Scan(w.Img, DefaultMaxInsts)
	inFull := make(map[string]bool, len(full))
	for _, g := range full {
		inFull[g.String()+"@"+itoa(g.Addr)] = true
	}
	if got := ScanPages(w.Img, nil, DefaultMaxInsts); len(got) != 0 {
		t.Fatalf("no disclosure yielded %d gadgets", len(got))
	}
	pages := TextPages(w.Img)
	disclosed := make(map[uint32]bool)
	prev := 0
	for _, pg := range pages {
		disclosed[pg] = true
		got := ScanPages(w.Img, disclosed, DefaultMaxInsts)
		if len(got) < prev {
			t.Fatalf("disclosure of page %#x shrank the view: %d -> %d", pg, prev, len(got))
		}
		prev = len(got)
		for _, g := range got {
			if !inFull[g.String()+"@"+itoa(g.Addr)] {
				t.Fatalf("partial view invented gadget %q at %#x", g, g.Addr)
			}
		}
	}
	if prev != len(full) {
		t.Fatalf("all pages disclosed: %d gadgets, full scan has %d", prev, len(full))
	}
}
