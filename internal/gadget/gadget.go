// Package gadget is the ROPgadget-4.0.1 substitute of the paper's security
// evaluation (Sec. V-B, Fig. 11): a byte-granularity gadget scanner over VX
// images, a gadget classifier, and a payload compiler that assembles working
// ROP chains from the discovered gadget pool.
//
// Like the paper's modified ROPgadget, the randomization-aware analysis
// searches for gadgets "using un-randomized instruction locations": a gadget
// survives randomization only if the attacker can still transfer control to
// its start address, which the default-deny randomization tables permit only
// for explicitly allowed failover targets.
package gadget

import (
	"fmt"
	"strings"

	"vcfr/internal/emu"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// DefaultMaxInsts is the default gadget length bound (instructions before
// the terminating transfer), matching ROPgadget's typical depth.
const DefaultMaxInsts = 5

// Gadget is an instruction sequence, discovered at an arbitrary byte offset,
// that ends in an attacker-steerable control transfer.
type Gadget struct {
	Addr  uint32     // address of the first instruction
	Insts []isa.Inst // body, excluding the terminator
	End   isa.Inst   // ret / jmpr / callr
}

// String renders the gadget ROPgadget-style: "pop r1 ; ret".
func (g Gadget) String() string {
	var b strings.Builder
	for _, in := range g.Insts {
		b.WriteString(in.String())
		b.WriteString(" ; ")
	}
	b.WriteString(g.End.Op.String())
	if g.End.Op != isa.OpRet {
		fmt.Fprintf(&b, " %s", g.End.Rd)
	}
	return b.String()
}

// Scan probes every byte offset of the image's executable segment for
// gadgets of at most maxInsts body instructions. Sequences are cut, as in
// ROPgadget, by anything that surrenders control predictably to the program
// (direct transfers, halt) or fails to decode.
func Scan(img *program.Image, maxInsts int) []Gadget {
	if maxInsts <= 0 {
		maxInsts = DefaultMaxInsts
	}
	text := img.Text()
	if text == nil {
		return nil
	}
	var out []Gadget
	for off := 0; off < len(text.Data); off++ {
		if g, ok := scanAt(text.Data, text.Addr, off, maxInsts); ok {
			out = append(out, g)
		}
	}
	return out
}

// scanAt tries to read one gadget starting at byte offset off.
func scanAt(data []byte, base uint32, off, maxInsts int) (Gadget, bool) {
	g := Gadget{Addr: base + uint32(off)}
	for steps := 0; steps <= maxInsts; steps++ {
		in, err := isa.Decode(data[off:], base+uint32(off))
		if err != nil {
			return Gadget{}, false
		}
		switch in.Class() {
		case isa.ClassRet, isa.ClassJumpR, isa.ClassCallR:
			g.End = in
			return g, true
		case isa.ClassSeq:
			g.Insts = append(g.Insts, in)
			off += in.Len()
			if off >= len(data) {
				return Gadget{}, false
			}
		default:
			// Direct transfer or halt: control leaves attacker hands.
			return Gadget{}, false
		}
	}
	return Gadget{}, false
}

// Unique deduplicates gadgets by their instruction content (the ROPgadget
// "unique gadgets" count).
func Unique(gs []Gadget) []Gadget {
	seen := make(map[string]bool, len(gs))
	var out []Gadget
	for _, g := range gs {
		k := g.String()
		if !seen[k] {
			seen[k] = true
			out = append(out, g)
		}
	}
	return out
}

// Survivors filters a gadget pool to those an attacker can still reach after
// randomization: the gadget's start address must be a legal control-transfer
// target in the un-randomized space (an allowed failover entry). Everything
// else faults on the randomized-tag check.
func Survivors(gs []Gadget, trans emu.Translator) []Gadget {
	var out []Gadget
	for _, g := range gs {
		if _, isRand := trans.ToOrig(g.Addr); isRand {
			// The address collides with the randomized space — reaching it
			// executes a different (randomized-space) instruction, not this
			// gadget.
			continue
		}
		if !trans.Prohibited(g.Addr) {
			out = append(out, g)
		}
	}
	return out
}

// SurvivorsInImage returns the gadgets from pool whose exact bytes still sit
// at their original addresses in img — the survivor criterion for software
// in-place randomization (Pappas et al.), where the attacker's precomputed
// gadget works iff its bytes were not disturbed.
func SurvivorsInImage(pool []Gadget, img *program.Image) []Gadget {
	text := img.Text()
	if text == nil {
		return nil
	}
	var out []Gadget
	for _, g := range pool {
		size := g.ByteLen()
		off := g.Addr - text.Addr
		if g.Addr < text.Addr || off+size > uint32(len(text.Data)) {
			continue
		}
		if sg, ok := scanAt(text.Data, text.Addr, int(off), len(g.Insts)); ok &&
			sg.String() == g.String() {
			out = append(out, g)
		}
	}
	return out
}

// RemovalRate returns the Fig. 11 metric: the fraction of the original
// gadget pool no longer mountable after randomization.
func RemovalRate(orig, surviving []Gadget) float64 {
	if len(orig) == 0 {
		return 0
	}
	return 1 - float64(len(surviving))/float64(len(orig))
}
