package gadget

import (
	"errors"
	"strings"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
)

// victimSrc is a program with a stack-overflow vulnerability and a natural
// supply of gadgets (utility functions whose epilogues pop registers, a
// putchar helper, an exit helper) — the moral equivalent of a small binary
// linked against a libc.
const victimSrc = `
.entry main
main:
	call vuln
	movi r1, 'o'
	sys 1
	movi r1, 'k'
	sys 1
	movi r1, 0
	sys 0

; vuln reads its input into a 32-byte stack buffer with no bounds check.
.func vuln
vuln:
	subi sp, 32
	mov r2, sp
readl:
	sys 2
	cmpi r0, -1
	je rdone
	mov r1, r0
	storeb [r2+0], r1
	addi r2, 1
	jmp readl
rdone:
	addi sp, 32
	ret

; "library" functions that happen to contain useful gadgets.
.func putch
putch:
	sys 1
	ret

.func quit
quit:
	sys 0
	ret

.func restore1
restore1:
	pop r1
	ret

.func restore5
restore5:
	pop r5
	ret

.func storefn
storefn:
	store [r5+0], r1
	ret

.func loadfn
loadfn:
	load r1, [r5+0]
	ret
`

func scanVictim(t *testing.T) ([]Gadget, *ilr.Result) {
	t.Helper()
	img := asm.MustAssemble("victim", victimSrc)
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 1234})
	if err != nil {
		t.Fatal(err)
	}
	return Scan(res.Orig, DefaultMaxInsts), res
}

func TestScanFindsKnownGadgets(t *testing.T) {
	gs, _ := scanVictim(t)
	if len(gs) == 0 {
		t.Fatal("no gadgets found")
	}
	var texts []string
	for _, g := range gs {
		texts = append(texts, g.String())
	}
	joined := strings.Join(texts, "\n")
	for _, want := range []string{"pop r1 ; ret", "pop r5 ; ret", "sys 1 ; ret", "sys 0 ; ret"} {
		if !strings.Contains(joined, want) {
			t.Errorf("gadget %q not found in:\n%s", want, joined)
		}
	}
}

func TestScanFindsMisalignedGadget(t *testing.T) {
	// Encode "pop r1 ; ret" inside a movi immediate — the VX analogue of
	// x86's unintended instructions.
	imm := uint32(byte(isa.OpPop)) | uint32(1)<<8 | uint32(byte(isa.OpRet))<<16 |
		uint32(byte(isa.OpNop))<<24
	img := asm.MustAssemble("mis", ".entry main\nmain:\n\tmovi r9, "+itoa(imm)+"\n\thalt")
	gs := Scan(img, DefaultMaxInsts)
	found := false
	for _, g := range gs {
		if g.String() == "pop r1 ; ret" && g.Addr == img.Entry+2 {
			found = true
		}
	}
	if !found {
		t.Errorf("misaligned gadget not found; gadgets: %v", render(gs))
	}
}

func itoa(v uint32) string {
	return strings.TrimSpace(strings.Join([]string{of(v)}, ""))
}

func of(v uint32) string {
	// minimal uint formatting without fmt in a helper-heavy test file
	if v == 0 {
		return "0"
	}
	var b [10]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}

func render(gs []Gadget) []string {
	out := make([]string, len(gs))
	for i, g := range gs {
		out[i] = g.String()
	}
	return out
}

func TestUniqueDeduplicates(t *testing.T) {
	img := asm.MustAssemble("dup", `
.entry main
main:
	halt
.func a
a:
	pop r1
	ret
.func b
b:
	pop r1
	ret
`)
	gs := Scan(img, DefaultMaxInsts)
	uq := Unique(gs)
	if len(uq) >= len(gs) && len(gs) > 1 {
		t.Errorf("Unique did not deduplicate: %d -> %d", len(gs), len(uq))
	}
	counts := make(map[string]int)
	for _, g := range uq {
		counts[g.String()]++
		if counts[g.String()] > 1 {
			t.Errorf("duplicate gadget %q in unique set", g)
		}
	}
}

func TestSurvivorsNearlyEmptyAfterRandomization(t *testing.T) {
	gs, res := scanVictim(t)
	surv := Survivors(gs, res.Tables)
	rate := RemovalRate(gs, surv)
	if rate < 0.9 {
		t.Errorf("removal rate %.3f, want >= 0.9 (paper: ~0.98 avg)", rate)
	}
	// Every survivor must genuinely be an allowed failover target.
	for _, g := range surv {
		if res.Tables.Prohibited(g.Addr) {
			t.Errorf("survivor at %#x is prohibited", g.Addr)
		}
	}
}

func TestScanScatteredImageFindsAlmostNothing(t *testing.T) {
	gs, res := scanVictim(t)
	scattered := Scan(res.Scattered, DefaultMaxInsts)
	// The scattered text is mostly zero padding between isolated
	// instructions: multi-instruction gadget bodies cannot survive.
	long := 0
	for _, g := range scattered {
		if len(g.Insts) > 0 {
			long++
		}
	}
	origLong := 0
	for _, g := range gs {
		if len(g.Insts) > 0 {
			origLong++
		}
	}
	if origLong == 0 {
		t.Fatal("original pool has no multi-instruction gadgets")
	}
	if long*10 > origLong {
		t.Errorf("scattered image still has %d multi-inst gadgets (orig %d)", long, origLong)
	}
}

func TestBuildPrintChainOnOriginalPool(t *testing.T) {
	gs, _ := scanVictim(t)
	chain, err := BuildPrintChain(gs, "HI")
	if err != nil {
		t.Fatalf("BuildPrintChain: %v", err)
	}
	// 3 words per character + 3 for the exit.
	if len(chain.Words) != 2*3+3 {
		t.Errorf("chain words = %d", len(chain.Words))
	}
	if len(chain.Bytes()) != 4*len(chain.Words) {
		t.Error("Bytes length mismatch")
	}
}

func TestBuildChainsFailOnSurvivorPool(t *testing.T) {
	gs, res := scanVictim(t)
	surv := Survivors(gs, res.Tables)
	if _, err := BuildPrintChain(surv, "X"); err == nil {
		t.Error("print chain assembled from survivor pool")
	}
	results := TryAllTemplates(surv)
	for name, ok := range results {
		if ok {
			t.Errorf("template %q still assemblable after randomization", name)
		}
	}
	// And on the original pool, both templates work.
	results = TryAllTemplates(gs)
	for name, ok := range results {
		if !ok {
			t.Errorf("template %q not assemblable on the original pool", name)
		}
	}
}

// TestEndToEndROPAttack mounts the assembled chain against the vulnerable
// program: on the unprotected baseline the attack hijacks control and prints
// the attacker's message; under VCFR the very first gadget address faults on
// the randomized-tag check.
func TestEndToEndROPAttack(t *testing.T) {
	gs, res := scanVictim(t)
	chain, err := BuildPrintChain(gs, "PWNED")
	if err != nil {
		t.Fatal(err)
	}
	payload := append(make([]byte, 32), chain.Bytes()...) // fill buffer, smash RA

	// Unprotected: the attack succeeds.
	got, err := emu.Run(res.Orig, emu.Config{Mode: emu.ModeNative, Input: payload})
	if err != nil {
		t.Fatalf("native run under attack: %v", err)
	}
	if !strings.Contains(string(got.Out), "PWNED") {
		t.Errorf("attack output = %q, want PWNED (attack should succeed on baseline)", got.Out)
	}
	if strings.Contains(string(got.Out), "ok") {
		t.Error("victim completed normally despite hijack")
	}

	// VCFR: the first gadget address is a prohibited un-randomized address.
	_, err = emu.Run(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, Input: payload,
	})
	if !errors.Is(err, emu.ErrControlViolation) {
		t.Errorf("VCFR under attack: err = %v, want ErrControlViolation", err)
	}

	// And with benign input both run identically.
	benign := []byte("hello")
	a, err := emu.Run(res.Orig, emu.Config{Mode: emu.ModeNative, Input: benign})
	if err != nil {
		t.Fatal(err)
	}
	b, err := emu.Run(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, Input: benign,
	})
	if err != nil {
		t.Fatalf("VCFR benign run: %v", err)
	}
	if string(a.Out) != string(b.Out) {
		t.Errorf("benign outputs differ: %q vs %q", a.Out, b.Out)
	}
}

func TestBuildWriteChainExecutes(t *testing.T) {
	gs, res := scanVictim(t)
	const target, value = 0x00180000, 0xdeadbeef
	chain, err := BuildWriteChain(gs, target, value)
	if err != nil {
		t.Fatal(err)
	}
	payload := append(make([]byte, 32), chain.Bytes()...)
	m, err := emu.NewMachine(res.Orig, emu.Config{Mode: emu.ModeNative, Input: payload})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(); err != nil {
		t.Fatalf("attack run: %v", err)
	}
	if got := m.Mem().ReadWord(target); got != value {
		t.Errorf("write-what-where: mem[%#x] = %#x, want %#x", target, got, value)
	}
}

func TestScanRespectsMaxInsts(t *testing.T) {
	img := asm.MustAssemble("long", `
.entry main
main:
	halt
.func f
f:
	addi r1, 1
	addi r2, 1
	addi r3, 1
	addi r4, 1
	addi r5, 1
	addi r6, 1
	ret
`)
	short := Scan(img, 2)
	long := Scan(img, 10)
	if len(long) <= len(short) {
		t.Errorf("maxInsts had no effect: %d vs %d", len(short), len(long))
	}
	for _, g := range short {
		if len(g.Insts) > 2 {
			t.Errorf("gadget longer than bound: %v", g)
		}
	}
}

func TestRemovalRateDegenerate(t *testing.T) {
	if RemovalRate(nil, nil) != 0 {
		t.Error("empty pools should report 0")
	}
}

// TestJITROPDisclosureAttack replays the Snow-et-al. just-in-time code-reuse
// sequence (disclose code at run time, harvest gadgets, compile, hijack):
// it must defeat in-place randomization but fault under VCFR, where the
// disclosed (original-layout) addresses are not executable.
func TestJITROPDisclosureAttack(t *testing.T) {
	img := asm.MustAssemble("victim", victimSrc)

	// In-place randomized victim: the leak IS the executable layout.
	inplace, _, err := ilr.InPlace(img, 33)
	if err != nil {
		t.Fatal(err)
	}
	text := inplace.Text()
	m, err := emu.NewMachine(inplace, emu.Config{Mode: emu.ModeNative})
	if err != nil {
		t.Fatal(err)
	}
	leaked := make([]byte, len(text.Data))
	m.Mem().ReadBytes(text.Addr, leaked)
	leakImg := inplace.Clone()
	leakImg.Text().Data = leaked
	pool := Scan(leakImg, DefaultMaxInsts)
	chain, err := BuildPrintChain(pool, "X")
	if err != nil {
		t.Fatalf("JIT-ROP payload vs in-place: %v", err)
	}
	payload := append(make([]byte, 32), chain.Bytes()...)
	out, err := emu.Run(inplace, emu.Config{Mode: emu.ModeNative, Input: payload})
	if err != nil || !strings.Contains(string(out.Out), "X") {
		t.Errorf("JIT-ROP vs in-place should succeed: out=%q err=%v", out.Out, err)
	}

	// VCFR victim: identical disclosure, compiled chain faults.
	res, err := ilr.Rewrite(img, ilr.Options{Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := emu.NewMachine(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA})
	if err != nil {
		t.Fatal(err)
	}
	vt := res.VCFR.Text()
	vleaked := make([]byte, len(vt.Data))
	vm.Mem().ReadBytes(vt.Addr, vleaked)
	vleakImg := res.VCFR.Clone()
	vleakImg.Text().Data = vleaked
	vpool := Scan(vleakImg, DefaultMaxInsts)
	vchain, err := BuildPrintChain(vpool, "X")
	if err != nil {
		t.Fatalf("JIT-ROP payload vs VCFR leak: %v", err)
	}
	vpayload := append(make([]byte, 32), vchain.Bytes()...)
	_, err = emu.Run(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, Input: vpayload})
	if !errors.Is(err, emu.ErrControlViolation) {
		t.Errorf("JIT-ROP vs VCFR: err = %v, want ErrControlViolation", err)
	}
}

// TestBuildExfilChainLeaksSecret: the confidentiality attack — exfiltrate a
// secret planted in the victim's data through a compiled ROP chain.
func TestBuildExfilChainLeaksSecret(t *testing.T) {
	gs, res := scanVictim(t)
	const secretAddr = 0x00180000
	chain, err := BuildExfilChain(gs, secretAddr, 6)
	if err != nil {
		t.Fatal(err)
	}
	payload := append(make([]byte, 32), chain.Bytes()...)

	m, err := emu.NewMachine(res.Orig, emu.Config{Mode: emu.ModeNative, Input: payload})
	if err != nil {
		t.Fatal(err)
	}
	m.Mem().WriteBytes(secretAddr, []byte("SECRET"))
	out, err := m.Run()
	if err != nil {
		t.Fatalf("exfil run: %v", err)
	}
	if !strings.Contains(string(out.Out), "SECRET") {
		t.Errorf("exfiltration failed: out = %q", out.Out)
	}

	// Under VCFR the same chain faults before leaking a byte.
	vm, err := emu.NewMachine(res.VCFR, emu.Config{
		Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, Input: payload})
	if err != nil {
		t.Fatal(err)
	}
	vm.Mem().WriteBytes(secretAddr, []byte("SECRET"))
	vout, err := vm.Run()
	if !errors.Is(err, emu.ErrControlViolation) {
		t.Errorf("VCFR exfil: err = %v, want ErrControlViolation", err)
	}
	if strings.Contains(string(vout.Out), "S") && strings.Contains(string(vout.Out), "SECRET") {
		t.Errorf("VCFR leaked the secret: %q", vout.Out)
	}
}
