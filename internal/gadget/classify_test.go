package gadget

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/isa"
)

func kindsOf(t *testing.T, body string) map[Kind]bool {
	t.Helper()
	img := asm.MustAssemble("k", ".entry main\nmain:\n\thalt\n.func g\ng:\n"+body+"\tret\n")
	gaddr, _ := img.Lookup("g")
	for _, g := range Scan(img, DefaultMaxInsts) {
		if g.Addr == gaddr {
			out := make(map[Kind]bool)
			for _, k := range Classify(g) {
				out[k] = true
			}
			return out
		}
	}
	t.Fatalf("gadget at g not found")
	return nil
}

func TestClassifyKinds(t *testing.T) {
	tests := []struct {
		body string
		want Kind
	}{
		{"\tpop r1\n", KindLoadReg},
		{"\tmov r1, r2\n", KindMoveReg},
		{"\tadd r1, r2\n", KindArith},
		{"\tload r1, [r2+0]\n", KindLoadMem},
		{"\tstore [r1+0], r2\n", KindStoreMem},
		{"\tsys 1\n", KindSyscall},
		{"\tmov sp, r1\n", KindStackPiv},
		{"\tpop sp\n", KindStackPiv},
		{"", KindBare},
	}
	for _, tt := range tests {
		got := kindsOf(t, tt.body)
		if !got[tt.want] {
			t.Errorf("body %q: kinds %v missing %q", tt.body, got, tt.want)
		}
	}
}

func TestClassifyJOP(t *testing.T) {
	g := Gadget{End: isa.Inst{Op: isa.OpJmpR, Rd: 3}}
	found := false
	for _, k := range Classify(g) {
		if k == KindJumpStart {
			found = true
		}
	}
	if !found {
		t.Error("jmpr-terminated gadget not classified as JOP")
	}
}

func TestKindCensus(t *testing.T) {
	img := asm.MustAssemble("c", victimSrc)
	census := KindCensus(Scan(img, DefaultMaxInsts))
	for _, want := range []Kind{KindLoadReg, KindSyscall, KindStoreMem} {
		if census[want] == 0 {
			t.Errorf("census missing %q: %v", want, census)
		}
	}
}
