package realbin

import (
	"testing"

	"vcfr/internal/realbin/fixtures"
	"vcfr/internal/realbin/rvasm"
)

// FuzzELFParse drives the whole front end — parser plus lifter — with
// arbitrary bytes. The contract under test: malformed input must come back
// as an error (*ParseError, *DecodeError, *RefuseError), never a panic, and
// any input that does lift must produce an image that validates.
//
// Seeds: the real fixtures (so mutations explore the accepted format) plus
// the checked-in corpus under testdata/fuzz/FuzzELFParse.
func FuzzELFParse(f *testing.F) {
	for _, fx := range fixtures.All() {
		f.Add(fx.Data)
	}
	f.Add([]byte{})
	f.Add([]byte("\x7fELF"))
	f.Add(fixtures.Fib[:64])
	mangled := append([]byte(nil), fixtures.Dispatch...)
	mangled[24] = 0xff // entry low byte
	f.Add(mangled)
	f.Fuzz(func(t *testing.T, data []byte) {
		lifted, err := Load(data, "fuzz")
		if err != nil {
			return
		}
		if err := lifted.Img.Validate(); err != nil {
			t.Fatalf("lifted image fails validation: %v", err)
		}
	})
}

// FuzzRV64Decode checks the decoder never panics and that whatever decodes
// also formats without panicking.
func FuzzRV64Decode(f *testing.F) {
	f.Add(uint32(0), uint64(0))
	f.Add(uint32(0x73), uint64(0x10000)) // ecall
	f.Add(rvasm.EncI(0x13, 0, 10, 0, -42), uint64(4))
	f.Add(rvasm.EncJ(0x6f, 1, -2048), uint64(0x10000))
	f.Add(rvasm.EncB(0x63, 4, 10, 5, 64), uint64(0x10000))
	f.Add(uint32(0xffffffff), uint64(1<<63))
	f.Fuzz(func(t *testing.T, w uint32, addr uint64) {
		in, err := DecodeRV64(w, addr)
		if err != nil {
			if err.Error() == "" {
				t.Fatal("empty decode error")
			}
			return
		}
		if in.String() == "" {
			t.Fatal("empty formatting")
		}
	})
}
