// Command fixturegen deterministically regenerates the RV64 ELF fixture
// binaries under internal/realbin/fixtures. The programs themselves live in
// internal/realbin/rvasm (a tiny RV64I+M assembler plus an ELF64 writer):
// the container that grows this repo has no riscv64 cross-compiler, so the
// checked-in fixtures are built by this tool from the same programs the C
// sources under fixtures/src document. With a real toolchain present,
// scripts/realbin_fixtures.sh can rebuild from C instead (a golden-repinning
// developer operation).
//
// Output is byte-deterministic: same source, same bytes, stable SHA256s.
//
//	go run ./internal/realbin/fixturegen -out internal/realbin/fixtures
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"vcfr/internal/realbin/rvasm"
)

func main() {
	out := flag.String("out", "internal/realbin/fixtures", "output directory")
	flag.Parse()
	for _, fx := range rvasm.Fixtures() {
		path := filepath.Join(*out, fx.Name)
		if err := os.WriteFile(path, fx.Data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "fixturegen:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(fx.Data))
	}
}
