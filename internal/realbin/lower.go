package realbin

import (
	"encoding/binary"
	"fmt"
	"sort"

	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// Branch condition mapping. RV compares two registers directly; VX lowers
// to cmp + jcc. Every lifted branch re-establishes its own flags, so VX
// flag-clobbering by intervening ALU lowerings is harmless by construction.
var branchOp = map[RVOp]isa.Op{
	rvBEQ: isa.OpJe, rvBNE: isa.OpJne,
	rvBLT: isa.OpJl, rvBGE: isa.OpJge,
	rvBLTU: isa.OpJb, rvBGEU: isa.OpJae,
}

var aluOp = map[RVOp]isa.Op{
	rvADD: isa.OpAdd, rvSUB: isa.OpSub, rvSLL: isa.OpShl, rvSRL: isa.OpShr,
	rvSRA: isa.OpSar, rvXOR: isa.OpXor, rvOR: isa.OpOr, rvAND: isa.OpAnd,
	rvMUL: isa.OpMul, rvDIV: isa.OpDiv, rvREM: isa.OpMod,
}

var aluCommutes = map[RVOp]bool{
	rvADD: true, rvXOR: true, rvOR: true, rvAND: true, rvMUL: true,
}

var aluImmOp = map[RVOp]isa.Op{
	rvXORI: isa.OpXorI, rvORI: isa.OpOrI, rvANDI: isa.OpAndI,
}

var shiftImmOp = map[RVOp]isa.Op{
	rvSLLI: isa.OpShlI, rvSRLI: isa.OpShrI, rvSRAI: isa.OpSarI,
}

func seq(ops ...isa.Inst) []liftedInst {
	out := make([]liftedInst, len(ops))
	for i, op := range ops {
		out[i] = liftedInst{vx: op}
	}
	return out
}

func mov(rd, rs isa.Reg) isa.Inst       { return isa.Inst{Op: isa.OpMovRR, Rd: rd, Rs: rs} }
func movi(rd isa.Reg, v int32) isa.Inst { return isa.Inst{Op: isa.OpMovRI, Rd: rd, Imm: v} }

// lowerAll lowers every live slot and sizes the lowerings, gathering
// refusals as it goes. Dropped instructions (writes to x0, fences, true
// nops) lower to zero bytes: a branch into one lands on the next
// instruction's code, which matches the RV semantics of executing a
// no-effect instruction and falling through.
func (l *lifter) lowerAll() {
	for i := range l.slots {
		s := &l.slots[i]
		if s.pad || s.consumed {
			continue
		}
		s.ops = l.lowerSlot(i)
		for _, op := range s.ops {
			s.size += op.vx.Len()
		}
		l.report.Instructions++
	}
	l.checkFuncSymbols()
	l.scanDataPointers()
}

// checkTarget validates a static control-transfer destination: it must be a
// lifted instruction start (not padding, not the tail of an auipc pair).
func (l *lifter) checkTarget(from, target uint64, what string) bool {
	idx, ok := l.idxAt[target]
	switch {
	case !ok:
		l.refuse(from, "%s target %#x outside text", what, target)
	case l.slots[idx].pad:
		l.refuse(from, "%s target %#x lands in padding", what, target)
	case l.slots[idx].consumed:
		l.refuse(from, "%s target %#x splits an auipc pair", what, target)
	default:
		return true
	}
	return false
}

func (l *lifter) lowerSlot(i int) []liftedInst {
	in := l.slots[i].inst
	m := l.m
	switch in.Op {
	case rvLUI:
		if in.Rd == rvSP {
			l.refuse(in.Addr, "absolute stack-pointer initialization (lui sp); the VX machine owns sp")
			return nil
		}
		if in.Rd == rvZero {
			return nil
		}
		// Hardening against the medlow code model: a lui whose 4 KiB page
		// intersects text is (almost certainly) building a code address the
		// lift cannot see or retarget. Refuse rather than mis-lift.
		if v := uint64(in.Imm); v+0xfff >= l.text.Vaddr && v < l.text.End() {
			l.refuse(in.Addr, "lui of a code-page address %#x (medlow model); rebuild with -mcmodel=medany", uint64(in.Imm))
			return nil
		}
		return seq(movi(m(in.Rd), int32(in.Imm)))

	case rvAUIPC:
		if in.Rd == rvZero {
			return seq(isa.Inst{Op: isa.OpNop}) // landing pad: real, relocatable address
		}
		next := l.slots[i+1].inst // pairAUIPC guaranteed the pair
		target := uint64(int64(in.Addr) + in.Imm + next.Imm)
		if next.Op == rvJALR {
			if !l.checkTarget(in.Addr, target, "far call") {
				return nil
			}
			op := isa.OpCall
			if next.Rd == rvZero {
				op = isa.OpJmp
			}
			return []liftedInst{{vx: isa.Inst{Op: op}, rvTarget: target, hasRVTarget: true}}
		}
		// la rd, sym
		if in.Rd == rvSP {
			l.refuse(in.Addr, "absolute stack-pointer initialization (la sp); the VX machine owns sp")
			return nil
		}
		if target >= l.text.Vaddr && target < l.text.End() {
			if !l.checkTarget(in.Addr, target, "code-address constant") {
				return nil
			}
			return []liftedInst{{vx: movi(m(in.Rd), 0), moviRV: target, hasMoviRV: true}}
		}
		if target > 0xffff_ffff {
			l.refuse(in.Addr, "la of %#x outside the 32-bit VX address space", target)
			return nil
		}
		return seq(movi(m(in.Rd), int32(uint32(target))))

	case rvJAL:
		target := uint64(int64(in.Addr) + in.Imm)
		if !l.checkTarget(in.Addr, target, "jump") {
			return nil
		}
		switch in.Rd {
		case rvRA:
			return []liftedInst{{vx: isa.Inst{Op: isa.OpCall}, rvTarget: target, hasRVTarget: true}}
		case rvZero:
			return []liftedInst{{vx: isa.Inst{Op: isa.OpJmp}, rvTarget: target, hasRVTarget: true}}
		default:
			l.refuse(in.Addr, "jal with link register %s (only ra/zero have a VX call/jmp analog)", in.Rd)
			return nil
		}

	case rvJALR:
		if in.Imm != 0 {
			l.refuse(in.Addr, "jalr with displacement %d: computed target the rewriter cannot prove", in.Imm)
			return nil
		}
		switch {
		case in.Rd == rvZero && in.Rs1 == rvRA:
			return seq(isa.Inst{Op: isa.OpRet})
		case in.Rd == rvZero:
			return seq(isa.Inst{Op: isa.OpJmpR, Rd: m(in.Rs1)})
		case in.Rd == rvRA:
			return seq(isa.Inst{Op: isa.OpCallR, Rd: m(in.Rs1)})
		default:
			l.refuse(in.Addr, "jalr with link register %s", in.Rd)
			return nil
		}

	case rvBEQ, rvBNE, rvBLT, rvBGE, rvBLTU, rvBGEU:
		target := uint64(int64(in.Addr) + in.Imm)
		if !l.checkTarget(in.Addr, target, "branch") {
			return nil
		}
		return []liftedInst{
			{vx: isa.Inst{Op: isa.OpCmp, Rd: m(in.Rs1), Rs: m(in.Rs2)}},
			{vx: isa.Inst{Op: branchOp[in.Op]}, rvTarget: target, hasRVTarget: true},
		}

	case rvLW, rvLWU, rvLD:
		if in.Rd == rvZero {
			return nil
		}
		return seq(isa.Inst{Op: isa.OpLoad, Rd: m(in.Rd), Rs: m(in.Rs1), Imm: int32(in.Imm)})
	case rvLBU:
		if in.Rd == rvZero {
			return nil
		}
		return seq(isa.Inst{Op: isa.OpLoadB, Rd: m(in.Rd), Rs: m(in.Rs1), Imm: int32(in.Imm)})
	case rvLB:
		if in.Rd == rvZero {
			return nil
		}
		rd := m(in.Rd)
		return seq(
			isa.Inst{Op: isa.OpLoadB, Rd: rd, Rs: m(in.Rs1), Imm: int32(in.Imm)},
			isa.Inst{Op: isa.OpShlI, Rd: rd, Imm: 24},
			isa.Inst{Op: isa.OpSarI, Rd: rd, Imm: 24},
		)

	case rvSW, rvSD:
		return seq(isa.Inst{Op: isa.OpStore, Rd: m(in.Rs1), Rs: m(in.Rs2), Imm: int32(in.Imm)})
	case rvSB:
		return seq(isa.Inst{Op: isa.OpStoreB, Rd: m(in.Rs1), Rs: m(in.Rs2), Imm: int32(in.Imm)})

	case rvADDI:
		if in.Rd == rvSP && in.Rs1 == rvZero {
			l.refuse(in.Addr, "absolute stack-pointer initialization (li sp); the VX machine owns sp")
			return nil
		}
		if in.Rd == rvZero {
			return nil // includes the canonical nop
		}
		switch {
		case in.Rs1 == rvZero:
			return seq(movi(m(in.Rd), int32(in.Imm)))
		case in.Rd == in.Rs1 && in.Imm == 0:
			return nil
		case in.Rd == in.Rs1:
			return seq(isa.Inst{Op: isa.OpAddI, Rd: m(in.Rd), Imm: int32(in.Imm)})
		case in.Imm == 0:
			return seq(mov(m(in.Rd), m(in.Rs1)))
		default:
			return seq(mov(m(in.Rd), m(in.Rs1)),
				isa.Inst{Op: isa.OpAddI, Rd: m(in.Rd), Imm: int32(in.Imm)})
		}

	case rvSLTI, rvSLTIU:
		if in.Rd == rvZero {
			return nil
		}
		jcc := isa.OpJl
		if in.Op == rvSLTIU {
			jcc = isa.OpJb
		}
		return []liftedInst{
			{vx: isa.Inst{Op: isa.OpCmpI, Rd: m(in.Rs1), Imm: int32(in.Imm)}},
			{vx: movi(m(in.Rd), 1)},
			{vx: isa.Inst{Op: jcc}, skipLocal: true},
			{vx: movi(m(in.Rd), 0)},
		}

	case rvXORI, rvORI, rvANDI:
		if in.Rd == rvZero {
			return nil
		}
		op := aluImmOp[in.Op]
		if in.Rs1 == rvZero {
			v := int32(in.Imm)
			if in.Op == rvANDI {
				v = 0
			}
			return seq(movi(m(in.Rd), v))
		}
		if in.Rd == in.Rs1 {
			return seq(isa.Inst{Op: op, Rd: m(in.Rd), Imm: int32(in.Imm)})
		}
		return seq(mov(m(in.Rd), m(in.Rs1)),
			isa.Inst{Op: op, Rd: m(in.Rd), Imm: int32(in.Imm)})

	case rvSLLI, rvSRLI, rvSRAI:
		if in.Rd == rvZero {
			return nil
		}
		if in.Imm > 31 {
			l.refuse(in.Addr, "%s amount %d ≥ 32: 64-bit value manipulation outside the 32-bit lift", in.Op, in.Imm)
			return nil
		}
		op := shiftImmOp[in.Op]
		if in.Rd == in.Rs1 {
			return seq(isa.Inst{Op: op, Rd: m(in.Rd), Imm: int32(in.Imm)})
		}
		return seq(mov(m(in.Rd), m(in.Rs1)),
			isa.Inst{Op: op, Rd: m(in.Rd), Imm: int32(in.Imm)})

	case rvSLT, rvSLTU:
		if in.Rd == rvZero {
			return nil
		}
		jcc := isa.OpJl
		if in.Op == rvSLTU {
			jcc = isa.OpJb
		}
		return []liftedInst{
			{vx: isa.Inst{Op: isa.OpCmp, Rd: m(in.Rs1), Rs: m(in.Rs2)}},
			{vx: movi(m(in.Rd), 1)},
			{vx: isa.Inst{Op: jcc}, skipLocal: true},
			{vx: movi(m(in.Rd), 0)},
		}

	case rvADD, rvSUB, rvSLL, rvSRL, rvSRA, rvXOR, rvOR, rvAND, rvMUL, rvDIV, rvREM:
		if in.Rd == rvZero {
			return nil
		}
		op := aluOp[in.Op]
		rd, r1, r2 := m(in.Rd), m(in.Rs1), m(in.Rs2)
		switch {
		case rd == r1:
			return seq(isa.Inst{Op: op, Rd: rd, Rs: r2})
		case rd == r2 && aluCommutes[in.Op]:
			return seq(isa.Inst{Op: op, Rd: rd, Rs: r1})
		case rd == r2:
			// rd = rs1 OP rd needs the reserved scratch register.
			return seq(mov(vxScratch, r1),
				isa.Inst{Op: op, Rd: vxScratch, Rs: rd},
				mov(rd, vxScratch))
		default:
			return seq(mov(rd, r1), isa.Inst{Op: op, Rd: rd, Rs: r2})
		}

	case rvFENCE:
		return nil // pure ordering; the VX machine is sequentially consistent

	case rvECALL:
		num, ok := l.resolveSysNum(i)
		if !ok {
			l.refuse(in.Addr, "ecall with unresolved a7 (no dominating `li a7, n` in the basic block)")
			return nil
		}
		a0 := m(rvA0)
		switch num {
		case rvSysExit:
			return seq(mov(vxSysReg, a0), isa.Inst{Op: isa.OpSys, Imm: isa.SysExit})
		case rvSysPutChar:
			return seq(mov(vxSysReg, a0), isa.Inst{Op: isa.OpSys, Imm: isa.SysPutChar})
		case rvSysGetChar:
			return seq(isa.Inst{Op: isa.OpSys, Imm: isa.SysGetChar}, mov(a0, vxScratch))
		case rvSysWriteInt:
			return seq(mov(vxSysReg, a0), isa.Inst{Op: isa.OpSys, Imm: isa.SysWriteInt})
		default:
			l.refuse(in.Addr, "ecall %d outside the vcfr runtime convention (93, 1001-1003)", num)
			return nil
		}

	case rvEBREAK:
		return seq(isa.Inst{Op: isa.OpHalt})

	default:
		l.refuse(in.Addr, "no lowering for %s", in)
		return nil
	}
}

// writesRV reports whether the instruction writes register r.
func writesRV(in RVInst, r RVReg) bool {
	switch in.Op {
	case rvLUI, rvAUIPC, rvJAL, rvJALR,
		rvLB, rvLBU, rvLW, rvLWU, rvLD,
		rvADDI, rvSLTI, rvSLTIU, rvXORI, rvORI, rvANDI, rvSLLI, rvSRLI, rvSRAI,
		rvADD, rvSUB, rvSLL, rvSLT, rvSLTU, rvXOR, rvSRL, rvSRA, rvOR, rvAND,
		rvMUL, rvDIV, rvREM:
		return in.Rd == r
	case rvECALL:
		return r == rvA0
	}
	return false
}

// resolveSysNum statically resolves a7 at an ecall by walking backward
// through the straight-line predecessors: it must find `li a7, n` before
// any other a7 write, any control transfer, or any join point (a branch
// target or function entry), all of which make the value path-dependent.
func (l *lifter) resolveSysNum(i int) (int64, bool) {
	for j := i - 1; j >= 0 && i-j <= 64; j-- {
		s := &l.slots[j]
		if s.pad {
			return 0, false
		}
		if s.consumed {
			continue
		}
		in := s.inst
		if in.Op == rvADDI && in.Rd == rvA7 && in.Rs1 == rvZero {
			return in.Imm, true
		}
		if writesRV(in, rvA7) {
			return 0, false
		}
		switch in.Op {
		case rvJAL, rvJALR, rvBEQ, rvBNE, rvBLT, rvBGE, rvBLTU, rvBGEU, rvECALL, rvEBREAK:
			return 0, false
		}
		if l.targets[in.Addr] || l.funcAt[in.Addr] {
			return 0, false
		}
	}
	return 0, false
}

// checkFuncSymbols refuses function symbols that do not name a lifted
// instruction start — a symbol into padding or mid-pair would seed the CFG
// leader algorithm with a bogus ground-truth entry.
func (l *lifter) checkFuncSymbols() {
	for _, s := range l.funcList {
		idx, ok := l.idxAt[s.Value]
		if !ok || l.slots[idx].pad || l.slots[idx].consumed {
			l.refuse(s.Value, "function symbol %s does not name a lifted instruction", s.Name)
		}
	}
}

// dataPtr is one 8-byte data word holding a text address, to be rewritten
// to the lifted address during emission.
type dataPtr struct {
	segIdx int
	off    int
	rv     uint64
}

// scanDataPointers finds 8-byte-aligned data words pointing into text —
// function-pointer tables and jump tables. Grounded targets (function
// symbols, landing pads) get relocations so ILR can retarget them;
// ungrounded hits are rewritten but stay scan-only failover candidates.
// A pointer into the middle of an instruction refuses the lift.
func (l *lifter) scanDataPointers() {
	for si := range l.f.Segments {
		seg := &l.f.Segments[si]
		if seg.Flags&pfX != 0 {
			continue
		}
		for off := 0; off+8 <= len(seg.Data); off += 8 {
			v := binary.LittleEndian.Uint64(seg.Data[off:])
			if v < l.text.Vaddr || v >= l.text.End() {
				continue
			}
			idx, ok := l.idxAt[v]
			if !ok || l.slots[idx].pad || l.slots[idx].consumed {
				l.refuse(seg.Vaddr+uint64(off), "data word holds %#x, inside an instruction or padding", v)
				continue
			}
			l.dataPtrs = append(l.dataPtrs, dataPtr{segIdx: si, off: off, rv: v})
		}
	}
}

// emit lays out the lifted text, encodes it, rewrites data pointers, and
// assembles the final VX image.
func (l *lifter) emit() (*program.Image, error) {
	// Entry shim: pin the zero register, then jump to the lifted entry.
	// (The VX machine owns sp and zeroes registers; RV code relies only on
	// x0 being zero, which r12 now is — and nothing ever writes it.)
	const shimSize = 6 + 5
	eIdx, ok := l.idxAt[l.f.Entry]
	if !ok || l.slots[eIdx].pad || l.slots[eIdx].consumed {
		return nil, parseErr("entry", "%#x is not a lifted instruction", l.f.Entry)
	}

	// Layout: offsets first, then pick the base. Identity-map the text base
	// when the (larger) lifted text still fits without touching a data
	// segment; otherwise place it page-aligned after the last segment.
	ofs := uint32(shimSize)
	for i := range l.slots {
		l.slots[i].vxAddr = ofs
		ofs += uint32(l.slots[i].size)
	}
	totalText := ofs

	var maxEnd uint64
	for i := range l.f.Segments {
		seg := &l.f.Segments[i]
		if seg.Flags&pfX != 0 {
			continue
		}
		if seg.Vaddr+uint64(len(seg.Data)) > maxEnd {
			maxEnd = seg.Vaddr + uint64(len(seg.Data))
		}
		if seg.End() > liftAddrCeiling {
			return nil, parseErr("segments", "data segment at %#x ends past the lift ceiling %#x",
				seg.Vaddr, uint64(liftAddrCeiling))
		}
	}
	base := uint32(l.text.Vaddr)
	if l.text.Vaddr > liftAddrCeiling {
		return nil, parseErr("segments", "text at %#x past the lift ceiling %#x", l.text.Vaddr, uint64(liftAddrCeiling))
	}
	for i := range l.f.Segments {
		seg := &l.f.Segments[i]
		if seg.Flags&pfX != 0 {
			continue
		}
		if uint64(base)+uint64(totalText) > seg.Vaddr && uint64(base) < seg.End() {
			base = uint32((maxEnd + 0xfff) &^ 0xfff)
			l.report.Relocated = true
			break
		}
	}
	if uint64(base)+uint64(totalText) > liftAddrCeiling {
		return nil, parseErr("text", "lifted text [%#x,%#x) past the lift ceiling %#x",
			base, uint64(base)+uint64(totalText), uint64(liftAddrCeiling))
	}
	for i := range l.slots {
		l.slots[i].vxAddr += base
	}

	img := &program.Image{Name: l.name, Entry: base}

	// Encode the text.
	grounded := func(rv uint64) bool { return l.funcAt[rv] || l.lpadAt[rv] }
	buf := make([]byte, 0, totalText)
	addReloc := func(addr uint32) {
		img.Relocs = append(img.Relocs, program.Reloc{Addr: addr, InCode: true})
	}
	buf = isa.Encode(buf, movi(vxZero, 0))
	buf = isa.Encode(buf, isa.Inst{Op: isa.OpJmp, Target: l.slots[eIdx].vxAddr})
	addReloc(base + 6 + isa.TargetFieldOffset)
	for i := range l.slots {
		s := &l.slots[i]
		for _, op := range s.ops {
			cur := base + uint32(len(buf))
			vx := op.vx
			switch {
			case op.hasRVTarget:
				vx.Target = l.slots[l.idxAt[op.rvTarget]].vxAddr
				addReloc(cur + isa.TargetFieldOffset)
			case op.skipLocal:
				vx.Target = s.vxAddr + uint32(s.size)
				addReloc(cur + isa.TargetFieldOffset)
			case op.hasMoviRV:
				vx.Imm = int32(l.slots[l.idxAt[op.moviRV]].vxAddr)
				if grounded(op.moviRV) {
					img.Relocs = append(img.Relocs, program.Reloc{Addr: cur + 2, InCode: true})
					l.report.GroundedPtrs++
				} else {
					l.report.ScanOnlyPtrs++
				}
			}
			buf = isa.Encode(buf, vx)
			l.report.VXInstructions++
		}
	}
	if uint32(len(buf)) != totalText {
		return nil, fmt.Errorf("realbin: internal: emitted %d text bytes, laid out %d", len(buf), totalText)
	}
	l.report.TextBytes = len(buf)
	img.Segments = append(img.Segments, program.Segment{
		Name: program.SegText, Addr: base, Data: buf, Perm: program.PermR | program.PermX,
	})

	// Data segments: identity-mapped copies with text pointers rewritten.
	segName := func(flags uint32, n int) string {
		name := "rodata"
		if flags&pfW != 0 {
			name = "data"
		}
		if n > 0 {
			name = fmt.Sprintf("%s%d", name, n+1)
		}
		return name
	}
	segIdxToImage := map[int]int{}
	counts := map[uint32]int{}
	for si := range l.f.Segments {
		seg := &l.f.Segments[si]
		if seg.Flags&pfX != 0 {
			continue
		}
		perm := program.PermR
		if seg.Flags&pfW != 0 {
			perm |= program.PermW
		}
		flagKey := seg.Flags & pfW
		segIdxToImage[si] = len(img.Segments)
		img.Segments = append(img.Segments, program.Segment{
			Name: segName(seg.Flags, counts[flagKey]),
			Addr: uint32(seg.Vaddr),
			Data: append([]byte(nil), seg.Data...),
			Perm: perm,
		})
		counts[flagKey]++
	}
	for _, p := range l.dataPtrs {
		is := &img.Segments[segIdxToImage[p.segIdx]]
		vx := l.slots[l.idxAt[p.rv]].vxAddr
		binary.LittleEndian.PutUint32(is.Data[p.off:], vx)
		binary.LittleEndian.PutUint32(is.Data[p.off+4:], 0)
		if grounded(p.rv) {
			img.Relocs = append(img.Relocs, program.Reloc{Addr: is.Addr + uint32(p.off), InCode: false})
			l.report.GroundedPtrs++
		} else {
			l.report.ScanOnlyPtrs++
		}
	}

	// Landing-pad table: one relocated word per pad, so every pad is a
	// ground-truth (and retargetable) indirect candidate even with no
	// static reference — the CET-paper guarantee.
	if len(l.lpadAt) > 0 {
		end := uint64(base) + uint64(totalText)
		if maxEnd > end {
			end = maxEnd
		}
		taddr := uint32((end + 0xfff) &^ 0xfff)
		var pads []uint64
		for a := range l.lpadAt {
			pads = append(pads, a)
		}
		sort.Slice(pads, func(i, j int) bool { return pads[i] < pads[j] })
		tdata := make([]byte, 0, 4*len(pads))
		for k, a := range pads {
			tdata = binary.LittleEndian.AppendUint32(tdata, l.slots[l.idxAt[a]].vxAddr)
			img.Relocs = append(img.Relocs, program.Reloc{Addr: taddr + uint32(4*k), InCode: false})
			l.report.GroundedPtrs++
		}
		if uint64(taddr)+uint64(len(tdata)) > liftAddrCeiling {
			return nil, parseErr("targets", "landing-pad table past the lift ceiling")
		}
		img.Segments = append(img.Segments, program.Segment{
			Name: "targets", Addr: taddr, Data: tdata, Perm: program.PermR,
		})
		l.report.LandingPads = len(pads)
	}

	// Symbols: lifted function entries plus identity-mapped data objects.
	for _, s := range l.f.Symbols {
		if s.Func {
			if idx, ok := l.idxAt[s.Value]; ok && !l.slots[idx].pad && !l.slots[idx].consumed {
				img.Symbols = append(img.Symbols, program.Symbol{
					Name: s.Name, Addr: l.slots[idx].vxAddr, Func: true,
				})
			}
			continue
		}
		if s.Value > 0xffff_ffff {
			continue
		}
		if seg := img.SegAt(uint32(s.Value)); seg != nil && seg.Perm&program.PermX == 0 {
			img.Symbols = append(img.Symbols, program.Symbol{
				Name: s.Name, Addr: uint32(s.Value), Size: uint32(s.Size),
			})
		}
	}
	sort.Slice(img.Relocs, func(i, j int) bool { return img.Relocs[i].Addr < img.Relocs[j].Addr })
	return img, nil
}
