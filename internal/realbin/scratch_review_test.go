package realbin

import (
	"encoding/binary"
	"testing"
)

// buildELF builds a minimal ELF64 RV64 ET_EXEC with given program headers and payload.
func buildReviewELF(text []byte, extraPhdr bool, extraMemsz uint64) []byte {
	le := binary.LittleEndian
	phnum := 1
	if extraPhdr {
		phnum = 2
	}
	phoff := uint64(64)
	textOff := phoff + uint64(phnum)*56
	b := make([]byte, textOff+uint64(len(text)))
	copy(b, "\x7fELF")
	b[4] = 2 // ELFCLASS64
	b[5] = 1 // LE
	b[6] = 1
	le.PutUint16(b[16:], 2)   // ET_EXEC
	le.PutUint16(b[18:], 243) // EM_RISCV
	le.PutUint64(b[24:], 0x10000)
	le.PutUint64(b[32:], phoff)
	le.PutUint16(b[54:], 56)
	le.PutUint16(b[56:], uint16(phnum))
	// phdr 0: PT_LOAD exec text at 0x10000
	p := b[phoff:]
	le.PutUint32(p, 1)               // PT_LOAD
	le.PutUint32(p[4:], 4|1)         // R|X
	le.PutUint64(p[8:], textOff)     // offset
	le.PutUint64(p[16:], 0x10000)    // vaddr
	le.PutUint64(p[32:], uint64(len(text))) // filesz
	le.PutUint64(p[40:], uint64(len(text))) // memsz
	copy(b[textOff:], text)
	if extraPhdr {
		p2 := b[phoff+56:]
		le.PutUint32(p2, 1)          // PT_LOAD
		le.PutUint32(p2[4:], 4)      // R
		le.PutUint64(p2[8:], 0)      // offset
		le.PutUint64(p2[16:], 0x90000) // vaddr
		le.PutUint64(p2[32:], 0)     // filesz
		le.PutUint64(p2[40:], extraMemsz)
	}
	return b
}

func TestReviewTotalMemWrap(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("ParseELF panicked: %v", r)
		}
	}()
	text := make([]byte, 8)
	binary.LittleEndian.PutUint32(text, 0x00000013) // addi x0,x0,0 (nop)
	binary.LittleEndian.PutUint32(text[4:], 0x00000073)
	elf := buildReviewELF(text, true, ^uint64(0)-0x40) // memsz near 2^64 wraps totalMem
	_, err := ParseELF(elf)
	t.Logf("err=%v", err)
}

func TestReviewTrailingAUIPC(t *testing.T) {
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("Load panicked: %v", r)
		}
	}()
	text := make([]byte, 8)
	binary.LittleEndian.PutUint32(text, 0x00000013)     // nop
	binary.LittleEndian.PutUint32(text[4:], 0x00000517) // auipc a0, 0 (last slot)
	elf := buildReviewELF(text, false, 0)
	_, err := Load(elf, "t")
	t.Logf("err=%v", err)
}
