package realbin

import (
	"encoding/binary"
	"strings"
	"testing"

	"vcfr/internal/realbin/fixtures"
	"vcfr/internal/realbin/rvasm"
)

// TestParseFixture parses a checked-in fixture and checks the extracted
// structure.
func TestParseFixture(t *testing.T) {
	f, err := ParseELF(fixtures.Dispatch)
	if err != nil {
		t.Fatalf("ParseELF: %v", err)
	}
	if f.Machine != elfMachRISCV {
		t.Errorf("Machine = %d", f.Machine)
	}
	if len(f.Segments) != 2 {
		t.Fatalf("got %d segments, want 2", len(f.Segments))
	}
	text := f.Text()
	if text == nil || text.Vaddr != 0x10000 {
		t.Fatalf("text = %+v", text)
	}
	if f.Entry != 0x10000 {
		t.Errorf("entry = %#x", f.Entry)
	}
	var funcs []string
	for _, s := range f.Symbols {
		if s.Func {
			funcs = append(funcs, s.Name)
		}
	}
	want := "_start op_add op_sub op_mul op_xor"
	if got := strings.Join(funcs, " "); got != want {
		t.Errorf("func symbols = %q, want %q", got, want)
	}
}

// mangle returns a copy of the dispatch fixture with patch applied.
func mangle(patch func(b []byte)) []byte {
	b := append([]byte(nil), fixtures.Dispatch...)
	patch(b)
	return b
}

func TestParseRejects(t *testing.T) {
	le := binary.LittleEndian
	tests := []struct {
		name string
		data []byte
		sub  string
	}{
		{"empty", nil, "header"},
		{"truncated", fixtures.Dispatch[:40], "header"},
		{"magic", mangle(func(b []byte) { b[0] = 'X' }), "magic"},
		{"class32", mangle(func(b []byte) { b[4] = 1 }), "class"},
		{"big-endian", mangle(func(b []byte) { b[5] = 2 }), "endian"},
		{"dyn", mangle(func(b []byte) { le.PutUint16(b[16:], 3) }), "ET_EXEC"},
		{"entry-outside-text", mangle(func(b []byte) { le.PutUint64(b[24:], 0x9999999) }), "outside text"},
		{"phnum-bomb", mangle(func(b []byte) { le.PutUint16(b[56:], 0xffff) }), "phnum"},
		{"shnum-bomb", mangle(func(b []byte) { le.PutUint16(b[60:], 0xffff) }), "shnum"},
		{"memsz-bomb", mangle(func(b []byte) { le.PutUint64(b[64+40:], 1<<40) }), "exceeds limits"},
		{"memsz-lt-filesz", mangle(func(b []byte) { le.PutUint64(b[64+40:], 1) }), "memsz"},
		{"phoff-outside", mangle(func(b []byte) { le.PutUint64(b[32:], 1<<40) }), "program header"},
		{"two-exec", mangle(func(b []byte) { le.PutUint32(b[64+56+4:], 4|1) }), "executable"},
		{"overlap", mangle(func(b []byte) { le.PutUint64(b[64+56+16:], 0x10000) }), "overlaps"},
		{"symtab-offset", mangle(func(b []byte) {
			shoff := le.Uint64(b[40:])
			le.PutUint64(b[shoff+64+24:], 1<<40) // .symtab sh_offset
		}), "symtab"},
		{"strtab-link", mangle(func(b []byte) {
			shoff := le.Uint64(b[40:])
			le.PutUint32(b[shoff+64+40:], 99) // .symtab sh_link
		}), "string table link"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseELF(tc.data)
			if err == nil {
				t.Fatalf("ParseELF succeeded, want error about %q", tc.sub)
			}
			if _, ok := err.(*ParseError); !ok {
				t.Fatalf("error %T (%v), want *ParseError", err, err)
			}
			if !strings.Contains(err.Error(), tc.sub) {
				t.Errorf("error %q does not mention %q", err, tc.sub)
			}
		})
	}
}

// TestParseNoSections accepts a sectionless image (no symbols).
func TestParseNoSections(t *testing.T) {
	a := rvasm.New(0x10000)
	a.Fn("_start")
	a.Li("a0", 0)
	a.Li("a7", 93)
	a.Ecall()
	data := a.Emit("_start")
	binary.LittleEndian.PutUint16(data[60:], 0) // shnum = 0
	f, err := ParseELF(data)
	if err != nil {
		t.Fatalf("ParseELF: %v", err)
	}
	if len(f.Symbols) != 0 {
		t.Errorf("got %d symbols, want 0", len(f.Symbols))
	}
}

// TestBSSZeroFill checks memsz > filesz demand-zero extension.
func TestBSSZeroFill(t *testing.T) {
	a := rvasm.New(0x10000)
	a.Fn("_start")
	a.Li("a0", 0)
	a.Li("a7", 93)
	a.Ecall()
	seg := a.Seg("data", 0x20000, true)
	seg.Bytes([]byte{1, 2, 3})
	data := a.Emit("_start")
	// Grow the data segment's memsz past its filesz.
	binary.LittleEndian.PutUint64(data[64+56+40:], 64)
	f, err := ParseELF(data)
	if err != nil {
		t.Fatalf("ParseELF: %v", err)
	}
	d := f.Segments[1]
	if len(d.Data) != 64 || d.Data[0] != 1 || d.Data[3] != 0 || d.Data[63] != 0 {
		t.Errorf("BSS extension wrong: len=%d data=%v", len(d.Data), d.Data[:8])
	}
}
