// ELF64 parsing: program headers, PT_LOAD segment extraction, and the
// .symtab/.strtab symbol table. The parser is hand-rolled rather than
// delegating to debug/elf so that every field read is bounds-checked with a
// precise diagnostic and the whole surface is fuzzable (FuzzELFParse):
// malformed headers, truncated segments, and overlapping loads must come
// back as errors, never as panics or silently wrong images.
package realbin

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// ELF constants for the subset we accept.
const (
	elfMagic      = "\x7fELF"
	elfClass64    = 2
	elfDataLE     = 1
	elfTypeExec   = 2   // ET_EXEC: statically linked, fixed load addresses
	elfMachRISCV  = 243 // EM_RISCV
	elfPhdrSize   = 56
	elfShdrSize   = 64
	elfSymSize    = 24
	elfHeaderSize = 64

	ptLoad    = 1
	shtSymtab = 2

	pfX = 1
	pfW = 2
	pfR = 4

	sttFunc = 2
)

// Parsing limits. ELF headers are attacker-controlled input (and fuzz
// input); these caps keep a 100-byte file from demanding gigabytes of
// demand-zero memory or a million symbol-table walks.
const (
	maxPhnum   = 64
	maxShnum   = 256
	maxSymbols = 1 << 16
	maxMemSize = 1 << 24 // 16 MiB total across PT_LOADs
)

// ELFSegment is one PT_LOAD, with BSS (memsz > filesz) zero-filled.
type ELFSegment struct {
	Vaddr uint64
	Data  []byte
	Flags uint32 // PF_R|PF_W|PF_X
}

// End returns the first address past the segment.
func (s *ELFSegment) End() uint64 { return s.Vaddr + uint64(len(s.Data)) }

// ELFSymbol is one .symtab entry we keep (named, defined, object or func).
type ELFSymbol struct {
	Name  string
	Value uint64
	Size  uint64
	Func  bool
}

// ELFFile is the parsed, validated view the lifter consumes.
type ELFFile struct {
	Entry    uint64
	Machine  uint16
	Segments []ELFSegment // ascending Vaddr, non-overlapping
	Symbols  []ELFSymbol
}

// Text returns the executable segment. ParseELF guarantees exactly one.
func (f *ELFFile) Text() *ELFSegment {
	for i := range f.Segments {
		if f.Segments[i].Flags&pfX != 0 {
			return &f.Segments[i]
		}
	}
	return nil
}

// ParseError reports a malformed ELF input.
type ParseError struct {
	Field  string
	Reason string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("realbin: bad ELF %s: %s", e.Field, e.Reason)
}

func parseErr(field, format string, args ...any) error {
	return &ParseError{Field: field, Reason: fmt.Sprintf(format, args...)}
}

// field reads size bytes at off, bounds-checked.
func field(b []byte, off, size uint64) ([]byte, error) {
	end := off + size
	if end < off || end > uint64(len(b)) {
		return nil, parseErr("offset", "[%#x,%#x) outside %d-byte file", off, end, len(b))
	}
	return b[off:end:end], nil
}

// ParseELF parses a little-endian ELF64 executable. It never panics; any
// input outside the accepted subset (wrong class, endianness, type, out of
// bounds offsets, overlapping loads, oversized memory demands) returns a
// *ParseError describing the first violated invariant.
func ParseELF(b []byte) (*ELFFile, error) {
	if uint64(len(b)) < elfHeaderSize {
		return nil, parseErr("header", "%d bytes, need %d", len(b), elfHeaderSize)
	}
	if string(b[:4]) != elfMagic {
		return nil, parseErr("magic", "%x", b[:4])
	}
	if b[4] != elfClass64 {
		return nil, parseErr("class", "%d, want ELFCLASS64", b[4])
	}
	if b[5] != elfDataLE {
		return nil, parseErr("data encoding", "%d, want little-endian", b[5])
	}
	if b[6] != 1 {
		return nil, parseErr("version", "%d", b[6])
	}
	le := binary.LittleEndian
	if t := le.Uint16(b[16:]); t != elfTypeExec {
		return nil, parseErr("type", "%d, want ET_EXEC (dynamic objects unsupported)", t)
	}
	f := &ELFFile{
		Machine: le.Uint16(b[18:]),
		Entry:   le.Uint64(b[24:]),
	}
	phoff := le.Uint64(b[32:])
	shoff := le.Uint64(b[40:])
	phentsize := uint64(le.Uint16(b[54:]))
	phnum := uint64(le.Uint16(b[56:]))
	shentsize := uint64(le.Uint16(b[58:]))
	shnum := uint64(le.Uint16(b[60:]))

	// Program headers → PT_LOAD segments.
	if phnum > maxPhnum {
		return nil, parseErr("phnum", "%d exceeds limit %d", phnum, maxPhnum)
	}
	if phnum > 0 && phentsize != elfPhdrSize {
		return nil, parseErr("phentsize", "%d, want %d", phentsize, elfPhdrSize)
	}
	var totalMem uint64
	for i := uint64(0); i < phnum; i++ {
		ph, err := field(b, phoff+i*elfPhdrSize, elfPhdrSize)
		if err != nil {
			return nil, parseErr("program header", "entry %d: %v", i, err)
		}
		if le.Uint32(ph) != ptLoad {
			continue
		}
		seg := ELFSegment{
			Flags: le.Uint32(ph[4:]),
			Vaddr: le.Uint64(ph[16:]),
		}
		off := le.Uint64(ph[8:])
		filesz := le.Uint64(ph[32:])
		memsz := le.Uint64(ph[40:])
		if memsz < filesz {
			return nil, parseErr("program header", "entry %d: memsz %#x < filesz %#x", i, memsz, filesz)
		}
		if memsz == 0 {
			continue
		}
		totalMem += memsz
		if totalMem > maxMemSize || seg.Vaddr+memsz < seg.Vaddr {
			return nil, parseErr("program header", "entry %d: load of %#x bytes at %#x exceeds limits", i, memsz, seg.Vaddr)
		}
		raw, err := field(b, off, filesz)
		if err != nil {
			return nil, parseErr("program header", "entry %d: file range: %v", i, err)
		}
		seg.Data = make([]byte, memsz)
		copy(seg.Data, raw)
		f.Segments = append(f.Segments, seg)
	}
	if len(f.Segments) == 0 {
		return nil, parseErr("program headers", "no non-empty PT_LOAD segments")
	}
	sort.SliceStable(f.Segments, func(i, j int) bool {
		return f.Segments[i].Vaddr < f.Segments[j].Vaddr
	})
	var nx int
	for i := range f.Segments {
		if i > 0 && f.Segments[i].Vaddr < f.Segments[i-1].End() {
			return nil, parseErr("program headers", "PT_LOAD at %#x overlaps predecessor ending %#x",
				f.Segments[i].Vaddr, f.Segments[i-1].End())
		}
		if f.Segments[i].Flags&pfX != 0 {
			nx++
		}
	}
	if nx != 1 {
		return nil, parseErr("program headers", "%d executable PT_LOADs, want exactly 1", nx)
	}
	t := f.Text()
	if f.Entry < t.Vaddr || f.Entry >= t.End() {
		return nil, parseErr("entry", "%#x outside text [%#x,%#x)", f.Entry, t.Vaddr, t.End())
	}

	// Section headers → .symtab, if present. A missing or damaged section
	// table degrades to "no symbols" only when shnum says there is nothing
	// to parse; a declared-but-unreadable table is an error.
	if shnum == 0 {
		return f, nil
	}
	if shnum > maxShnum {
		return nil, parseErr("shnum", "%d exceeds limit %d", shnum, maxShnum)
	}
	if shentsize != elfShdrSize {
		return nil, parseErr("shentsize", "%d, want %d", shentsize, elfShdrSize)
	}
	type shdr struct {
		typ            uint32
		off, size, ent uint64
		link           uint32
	}
	sections := make([]shdr, shnum)
	for i := uint64(0); i < shnum; i++ {
		sh, err := field(b, shoff+i*elfShdrSize, elfShdrSize)
		if err != nil {
			return nil, parseErr("section header", "entry %d: %v", i, err)
		}
		sections[i] = shdr{
			typ:  le.Uint32(sh[4:]),
			off:  le.Uint64(sh[24:]),
			size: le.Uint64(sh[32:]),
			link: le.Uint32(sh[40:]),
			ent:  le.Uint64(sh[56:]),
		}
	}
	for i, sh := range sections {
		if sh.typ != shtSymtab {
			continue
		}
		if sh.ent != elfSymSize {
			return nil, parseErr("symtab", "section %d entsize %d, want %d", i, sh.ent, elfSymSize)
		}
		if sh.size%elfSymSize != 0 {
			return nil, parseErr("symtab", "section %d size %#x not a multiple of %d", i, sh.size, elfSymSize)
		}
		n := sh.size / elfSymSize
		if n > maxSymbols {
			return nil, parseErr("symtab", "%d symbols exceeds limit %d", n, maxSymbols)
		}
		if int(sh.link) >= len(sections) {
			return nil, parseErr("symtab", "string table link %d out of range", sh.link)
		}
		strs, err := field(b, sections[sh.link].off, sections[sh.link].size)
		if err != nil {
			return nil, parseErr("strtab", "%v", err)
		}
		for j := uint64(0); j < n; j++ {
			sym, err := field(b, sh.off+j*elfSymSize, elfSymSize)
			if err != nil {
				return nil, parseErr("symtab", "entry %d: %v", j, err)
			}
			nameOff := uint64(le.Uint32(sym))
			info := sym[4]
			value := le.Uint64(sym[8:])
			size := le.Uint64(sym[16:])
			if nameOff == 0 {
				continue
			}
			if nameOff >= uint64(len(strs)) {
				return nil, parseErr("symtab", "entry %d: name offset %#x outside string table", j, nameOff)
			}
			name := cString(strs[nameOff:])
			if name == "" {
				continue
			}
			f.Symbols = append(f.Symbols, ELFSymbol{
				Name:  name,
				Value: value,
				Size:  size,
				Func:  info&0xf == sttFunc,
			})
		}
		break
	}
	return f, nil
}

// cString reads a NUL-terminated string (the whole slice if unterminated).
func cString(b []byte) string {
	for i, c := range b {
		if c == 0 {
			return string(b[:i])
		}
	}
	return string(b)
}
