/* crc32.c: bit-serial IEEE CRC-32 over a rodata message — exercises la
 * (auipc+addi), byte loads, W-form shifts, and lui+addi constant building.
 * Prints the checksum as a signed 32-bit decimal.
 *
 * The checked-in crc32.elf is the fixturegen-assembled equivalent of this
 * program. See vcfr_rt.h for build flags.
 */
#include "vcfr_rt.h"

static const char msg[] =
    "hardware supported instruction address space randomization";

void _start(void) {
  unsigned int crc = 0xffffffffu;
  for (const char *p = msg; *p; p++) {
    crc ^= (unsigned char)*p;
    for (int i = 0; i < 8; i++)
      crc = (crc >> 1) ^ (crc & 1 ? 0xedb88320u : 0);
  }
  vcfr_print_result((int)~crc);
}
