/* fib.c: deep recursive call/return chains — exercises the return-address
 * channel VCFR randomizes. Prints fib(12) = 144.
 *
 * The checked-in fib.elf is the fixturegen-assembled equivalent of this
 * program (same algorithm, same runtime convention, hand-scheduled
 * registers); rebuilding from this source with a riscv64 toolchain is a
 * golden-repinning operation. See vcfr_rt.h for build flags.
 */
#include "vcfr_rt.h"

static long fib(long n) {
  if (n < 2)
    return n;
  return fib(n - 1) + fib(n - 2);
}

void _start(void) { vcfr_print_result(fib(12)); }
