/* vcfr_rt.h: the freestanding runtime convention the fixture binaries use.
 *
 * The VX machine exposes four syscalls; the lift recognizes `ecall` with a
 * statically resolved a7 and maps these numbers onto them. 93 is the
 * standard RISC-V Linux exit number; the I/O calls use private numbers
 * small enough for `li a7, n` to stay a single addi.
 *
 * Build (golden repinning, requires a riscv64 cross toolchain):
 *   riscv64-linux-gnu-gcc -nostdlib -static -march=rv64im -mabi=lp64 \
 *     -mcmodel=medany -fno-builtin -O1 -o fib.elf fib.c
 * See scripts/realbin_fixtures.sh. Without a toolchain the checked-in
 * binaries are regenerated bit-exactly by internal/realbin/fixturegen.
 */
#ifndef VCFR_RT_H
#define VCFR_RT_H

#define SYS_EXIT 93
#define SYS_PUTCHAR 1001
#define SYS_GETCHAR 1002
#define SYS_WRITEINT 1003

static inline long vcfr_ecall1(long num, long arg) {
  register long a0 __asm__("a0") = arg;
  register long a7 __asm__("a7") = num;
  __asm__ volatile("ecall" : "+r"(a0) : "r"(a7) : "memory");
  return a0;
}

static inline void vcfr_exit(long code) { vcfr_ecall1(SYS_EXIT, code); }
static inline void vcfr_putchar(long c) { vcfr_ecall1(SYS_PUTCHAR, c); }
static inline long vcfr_getchar(void) { return vcfr_ecall1(SYS_GETCHAR, 0); }
static inline void vcfr_writeint(long v) { vcfr_ecall1(SYS_WRITEINT, v); }

static inline void vcfr_print_result(long v) {
  vcfr_writeint(v);
  vcfr_putchar('\n');
  vcfr_exit(0);
}

#endif /* VCFR_RT_H */
