/* dispatch.c: a writable function-pointer table driving indirect calls —
 * the CFG-recovery stress case. Four handlers open with `auipc x0` landing
 * pads (the Zicfilp lpad / ENDBR analog, ground truth for the rewriter);
 * the fifth is static, unsymboled, and pad-less, so its table slot can only
 * be found by the byte scan and exercises the scan-only failover path.
 *
 * The checked-in dispatch.elf is the fixturegen-assembled equivalent of
 * this program (the landing pads are emitted explicitly there; a real
 * Zicfilp toolchain would emit them with -fcf-protection). See vcfr_rt.h
 * for build flags.
 */
#include "vcfr_rt.h"

#define LPAD __asm__ volatile("auipc x0, 0")

long op_add(long a, long b) { LPAD; return a + b; }
long op_sub(long a, long b) { LPAD; return a - b; }
long op_mul(long a, long b) { LPAD; return a * b; }
long op_xor(long a, long b) { LPAD; return a ^ b; }
/* no symbol in the fixture, no landing pad: scan-only failover */
static long op_secret(long a, long b) { return a + 2 * b; }

long (*table[5])(long, long) = {op_add, op_sub, op_mul, op_xor, op_secret};

void _start(void) {
  long acc = 0;
  for (long i = 0; i < 16; i++)
    acc = table[i % 5](acc, 3 * i + 1);
  vcfr_print_result(acc);
}
