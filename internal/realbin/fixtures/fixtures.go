// Package fixtures embeds the checked-in RV64 ELF fixture binaries so the
// rest of the tree (workloads registry, tests, benchmarks, the server) can
// load them without filesystem paths. The binaries are byte-deterministic
// outputs of internal/realbin/fixturegen; scripts/realbin_fixtures.sh
// rebuilds or verifies them against SHA256SUMS.
package fixtures

import _ "embed"

//go:embed fib.elf
var Fib []byte

//go:embed crc32.elf
var CRC32 []byte

//go:embed dispatch.elf
var Dispatch []byte

// Fixture is one embedded fixture binary.
type Fixture struct {
	Name string // workload-style short name
	File string // file name under internal/realbin/fixtures
	Desc string
	Data []byte
}

// All returns the fixture set in its canonical order.
func All() []Fixture {
	return []Fixture{
		{
			Name: "elf-fib", File: "fib.elf",
			Desc: "recursive fib(12): deep call/return chains (return-address channel)",
			Data: Fib,
		},
		{
			Name: "elf-crc32", File: "crc32.elf",
			Desc: "bit-serial CRC-32 over a rodata message (la/lbu/W-shifts)",
			Data: CRC32,
		},
		{
			Name: "elf-dispatch", File: "dispatch.elf",
			Desc: "function-pointer table dispatch: landing pads + scan-only failover",
			Data: Dispatch,
		},
	}
}

// ByName returns the named fixture, or false.
func ByName(name string) (Fixture, bool) {
	for _, f := range All() {
		if f.Name == name || f.File == name {
			return f, true
		}
	}
	return Fixture{}, false
}
