// The lifter: RV64 machine code → a VX program.Image that flows through the
// unchanged cfg → ilr → cpu stack.
//
// The lift is structural, not emulative. RISC-V control flow is rebuilt from
// idioms so that VCFR's protected channels survive translation:
//
//   - jal ra, f        → call f         (return address lives on the VX
//   - jalr x0, 0(ra)   → ret             stack, where ILR randomizes it;
//     the ra register dataflow becomes a
//     dead shadow)
//   - jal x0, l        → jmp l
//   - jalr ra, 0(rs)   → callr m(rs)
//   - jalr x0, 0(rs)   → jmpr m(rs)
//   - auipc rd + addi  → movi m(rd), addr   ("la": a relocated code
//     constant when grounded)
//   - auipc rd + jalr  → call/jmp addr      (far-call relaxation)
//   - auipc x0         → nop                (landing pad, see below)
//
// CFG-recovery hardening (per the CET-guided-disassembly approach): function
// symbols and `auipc x0` landing pads — the RV64 analog of Zicfilp's lpad /
// x86 ENDBR — are ground-truth indirect targets. Every landing pad's lifted
// address is emitted into a relocated `targets` table, so the ILR rewriter
// can retarget them; code pointers the lift cannot ground stay at their
// original addresses via the existing scan-only failover. Anything the
// lifter cannot translate soundly is *refused* with a per-function
// diagnostic — never silently mis-lifted.
//
// Subset contract (checked, not assumed): RV64I+M base encodings only, ≤ 12
// live general registers (x0 and sp excluded), 32-bit value semantics (the
// VX machine is 32-bit; ld/sd move the low word of 8-byte slots), shift
// amounts < 32, signed divide/remainder, ecall with a statically resolved
// a7. Violations surface as DecodeError or RefuseError.
package realbin

import (
	"fmt"
	"sort"

	"vcfr/internal/cfg"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// VX register assignment for lifted code.
//
// r0/r1 are reserved: the VX syscall contract reads r1 and writes r0
// architecturally, and multi-instruction lowerings need a scratch register
// that no RV value can live in. r12 is the pinned zero (x0): the entry shim
// zeroes it and no lowering ever writes it. sp maps to sp. Everything else
// comes from the 12-slot pool, assigned to the binary's used registers in
// ascending RV number order — deterministic, so lifted images are
// byte-stable.
const (
	vxScratch = isa.Reg(0)
	vxSysReg  = isa.Reg(1)
	vxZero    = isa.Reg(12)
)

var vxPool = []isa.Reg{2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 13, 14}

// Lifted addresses must stay below the VX stack region (DefaultStackTop
// 0x0fff_fff0 grows down) and far below ilr.DefaultRandBase (0x4000_0000).
const liftAddrCeiling = 0x0e00_0000

// vcfr runtime ecall numbers (see fixtures/src/vcfr_rt.h). 93 is the
// standard RISC-V Linux exit; the I/O calls use private numbers small
// enough for `li a7, n` to stay a single addi.
const (
	rvSysExit     = 93
	rvSysPutChar  = 1001
	rvSysGetChar  = 1002
	rvSysWriteInt = 1003
)

// Refusal is one precise reason a binary could not be lifted soundly.
type Refusal struct {
	Addr   uint64 // RV virtual address
	Func   string // enclosing function symbol, if known
	Reason string
}

func (r Refusal) String() string {
	where := fmt.Sprintf("%#x", r.Addr)
	if r.Func != "" {
		where = fmt.Sprintf("%s (in %s)", where, r.Func)
	}
	return fmt.Sprintf("%s: %s", where, r.Reason)
}

// RefuseError reports every site that blocked the lift. Refusing with a
// complete diagnostic list is a first-class outcome: the rewriter must
// never run over code it might have mis-lifted.
type RefuseError struct {
	Name     string
	Refusals []Refusal
}

func (e *RefuseError) Error() string {
	msg := fmt.Sprintf("realbin: refusing to lift %q: %d unsound site(s)", e.Name, len(e.Refusals))
	max := len(e.Refusals)
	if max > 8 {
		max = 8
	}
	for _, r := range e.Refusals[:max] {
		msg += "\n  " + r.String()
	}
	if max < len(e.Refusals) {
		msg += fmt.Sprintf("\n  ... and %d more", len(e.Refusals)-max)
	}
	return msg
}

// Funcs returns the distinct refused function names (unknown sites count as
// one pseudo-function "?").
func (e *RefuseError) Funcs() []string {
	seen := map[string]bool{}
	var out []string
	for _, r := range e.Refusals {
		name := r.Func
		if name == "" {
			name = "?"
		}
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Report summarizes a successful lift.
type Report struct {
	Instructions   int  // RV instructions lifted (padding and pair-tails excluded)
	VXInstructions int  // VX instructions emitted
	TextBytes      int  // lifted text size
	LandingPads    int  // auipc-x0 ground-truth targets
	GroundedPtrs   int  // code pointers rewritten with relocations
	ScanOnlyPtrs   int  // code pointers rewritten without grounding (failover)
	Blocks         int  // basic blocks cfg recovers over the lifted text
	RegsMapped     int  // RV registers assigned VX pool slots
	Relocated      bool // lifted text could not keep the original base address
}

// Lifted is the product of a successful lift.
type Lifted struct {
	Img    *program.Image
	Report Report
}

// Load parses and lifts an ELF64 RV64 executable in one step.
func Load(data []byte, name string) (*Lifted, error) {
	f, err := ParseELF(data)
	if err != nil {
		return nil, err
	}
	return Lift(f, name)
}

// liftedInst is one emitted VX instruction plus the symbolic fixups the
// second pass resolves once lifted addresses are known.
type liftedInst struct {
	vx          isa.Inst
	rvTarget    uint64 // direct-transfer target, RV address space
	hasRVTarget bool
	skipLocal   bool   // jcc to the end of this lowering (slt/sltu sequences)
	moviRV      uint64 // movi of this RV text address (remap, maybe relocate)
	hasMoviRV   bool
}

// rvSlot is one 4-byte text word and its lowering.
type rvSlot struct {
	inst     RVInst
	pad      bool // zero word (inter-function padding)
	consumed bool // second half of an auipc pair
	ops      []liftedInst
	size     int
	vxAddr   uint32
}

type lifter struct {
	f        *ELFFile
	name     string
	text     *ELFSegment
	slots    []rvSlot
	idxAt    map[uint64]int // RV address → slot index
	regMap   map[RVReg]isa.Reg
	lpadAt   map[uint64]bool // landing-pad RV addresses
	funcAt   map[uint64]bool // function-symbol RV addresses
	funcList []ELFSymbol     // func symbols sorted by value
	targets  map[uint64]bool // static branch/jump targets
	dataPtrs []dataPtr       // data words holding text addresses
	refusals []Refusal
	report   Report
}

// Lift translates a parsed RV64 ELF into a VX image. On refusal it returns
// a *RefuseError listing every unsound site.
func Lift(f *ELFFile, name string) (*Lifted, error) {
	if f.Machine != elfMachRISCV {
		return nil, parseErr("machine", "%d, want EM_RISCV (%d)", f.Machine, elfMachRISCV)
	}
	l := &lifter{
		f:      f,
		name:   name,
		text:   f.Text(),
		idxAt:  make(map[uint64]int),
		lpadAt: make(map[uint64]bool),
		funcAt: make(map[uint64]bool),
	}
	for _, s := range f.Symbols {
		if s.Func && s.Value >= l.text.Vaddr && s.Value < l.text.End() {
			l.funcAt[s.Value] = true
			l.funcList = append(l.funcList, s)
		}
	}
	sort.Slice(l.funcList, func(i, j int) bool { return l.funcList[i].Value < l.funcList[j].Value })

	if err := l.decode(); err != nil {
		return nil, err
	}
	l.scanTargets()
	l.pairAUIPC()
	if err := l.mapRegisters(); err != nil {
		return nil, err
	}
	l.lowerAll()
	if len(l.refusals) > 0 {
		err := &RefuseError{Name: name, Refusals: l.refusals}
		totals.noteRefusal(len(err.Funcs()))
		return nil, err
	}
	img, err := l.emit()
	if err != nil {
		return nil, err
	}
	// The lifted image must survive the stack it feeds: structural
	// validation plus a full disassembly + CFG build. A failure here is a
	// lifter bug surfaced before any simulation trusts the image.
	if err := img.Validate(); err != nil {
		return nil, fmt.Errorf("realbin: lifted image invalid: %w", err)
	}
	g, err := cfg.Build(img)
	if err != nil {
		return nil, fmt.Errorf("realbin: lifted image fails CFG recovery: %w", err)
	}
	l.report.Blocks = len(g.Blocks)
	l.report.RegsMapped = len(l.regMap)
	totals.noteLift(l.report)
	return &Lifted{Img: img, Report: l.report}, nil
}

// funcName returns the function symbol covering addr, for diagnostics.
func (l *lifter) funcName(addr uint64) string {
	i := sort.Search(len(l.funcList), func(i int) bool { return l.funcList[i].Value > addr })
	if i == 0 {
		return ""
	}
	return l.funcList[i-1].Name
}

func (l *lifter) refuse(addr uint64, format string, args ...any) {
	l.refusals = append(l.refusals, Refusal{
		Addr:   addr,
		Func:   l.funcName(addr),
		Reason: fmt.Sprintf(format, args...),
	})
}

// decode splits text into 4-byte words. All-zero words are inter-function
// padding (the VX convention: padding never decodes). Undecodable non-zero
// words become refusals, not decode aborts, so one diagnostic pass reports
// every bad site.
func (l *lifter) decode() error {
	data := l.text.Data
	n := len(data) / 4
	if tail := len(data) % 4; tail != 0 {
		for _, b := range data[n*4:] {
			if b != 0 {
				return parseErr("text", "size %#x not a multiple of 4 with non-zero tail", len(data))
			}
		}
	}
	l.slots = make([]rvSlot, n)
	for i := 0; i < n; i++ {
		addr := l.text.Vaddr + uint64(i*4)
		l.idxAt[addr] = i
		w := uint32(data[i*4]) | uint32(data[i*4+1])<<8 | uint32(data[i*4+2])<<16 | uint32(data[i*4+3])<<24
		if w == 0 {
			l.slots[i].pad = true
			continue
		}
		in, err := DecodeRV64(w, addr)
		if err != nil {
			l.refuse(addr, "%v", err)
			l.slots[i].pad = true // keep indexing; the refusal blocks emission
			continue
		}
		l.slots[i].inst = in
	}
	return nil
}

// scanTargets records every static branch/jump destination. A destination
// must land on a decoded instruction start; landing in padding or mid-pair
// refuses the lift.
func (l *lifter) scanTargets() {
	l.targets = make(map[uint64]bool)
	for i := range l.slots {
		s := &l.slots[i]
		if s.pad {
			continue
		}
		switch s.inst.Op {
		case rvJAL, rvBEQ, rvBNE, rvBLT, rvBGE, rvBLTU, rvBGEU:
			l.targets[uint64(int64(s.inst.Addr)+s.inst.Imm)] = true
		}
	}
}

// pairAUIPC fuses the two-instruction pc-relative idioms. An auipc the
// lifter cannot pair is refused: a live "pc + offset" value has no sound
// meaning once instructions move.
func (l *lifter) pairAUIPC() {
	for i := range l.slots {
		s := &l.slots[i]
		if s.pad || s.consumed || s.inst.Op != rvAUIPC {
			continue
		}
		if s.inst.Rd == rvZero {
			// Landing pad (Zicfilp lpad analog): a ground-truth indirect
			// target, lifted to a nop whose address lands in the relocated
			// targets table.
			l.lpadAt[s.inst.Addr] = true
			continue
		}
		if i+1 >= len(l.slots) || l.slots[i+1].pad || l.slots[i+1].consumed {
			l.refuse(s.inst.Addr, "auipc %s with no pairable successor", s.inst.Rd)
			continue
		}
		next := &l.slots[i+1]
		ok := false
		switch {
		case next.inst.Op == rvADDI && next.inst.Rd == s.inst.Rd && next.inst.Rs1 == s.inst.Rd:
			ok = true // la rd, sym
		case next.inst.Op == rvJALR && next.inst.Rs1 == s.inst.Rd &&
			(next.inst.Rd == rvRA || next.inst.Rd == rvZero):
			ok = true // call/tail relaxation
		}
		if !ok {
			l.refuse(s.inst.Addr, "auipc %s followed by %s: unsupported pc-relative idiom",
				s.inst.Rd, next.inst)
			continue
		}
		if l.targets[next.inst.Addr] {
			l.refuse(next.inst.Addr, "branch target splits an auipc pair")
			continue
		}
		next.consumed = true
	}
}

// mapRegisters assigns VX pool registers to the RV registers the binary
// actually uses, in ascending RV order.
func (l *lifter) mapRegisters() error {
	used := map[RVReg]bool{}
	note := func(r RVReg) {
		if r != rvZero && r != rvSP {
			used[r] = true
		}
	}
	for i := range l.slots {
		s := &l.slots[i]
		if s.pad {
			continue
		}
		in := s.inst
		switch in.Op {
		case rvLUI, rvAUIPC:
			note(in.Rd)
		case rvJAL, rvJALR:
			// Return addresses live on the VX stack; ra itself is only a
			// shadow, but code that saves/restores it still reads the
			// register, so count it when named.
			note(in.Rd)
			if in.Op == rvJALR {
				note(in.Rs1)
			}
		case rvBEQ, rvBNE, rvBLT, rvBGE, rvBLTU, rvBGEU:
			note(in.Rs1)
			note(in.Rs2)
		case rvLB, rvLBU, rvLW, rvLWU, rvLD:
			note(in.Rd)
			note(in.Rs1)
		case rvSB, rvSW, rvSD:
			note(in.Rs1)
			note(in.Rs2)
		case rvADDI, rvSLTI, rvSLTIU, rvXORI, rvORI, rvANDI, rvSLLI, rvSRLI, rvSRAI:
			note(in.Rd)
			note(in.Rs1)
		case rvADD, rvSUB, rvSLL, rvSLT, rvSLTU, rvXOR, rvSRL, rvSRA, rvOR, rvAND,
			rvMUL, rvDIV, rvREM:
			note(in.Rd)
			note(in.Rs1)
			note(in.Rs2)
		case rvECALL:
			note(rvA0)
			note(rvA7)
		}
	}
	var order []RVReg
	for r := range used {
		order = append(order, r)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	if len(order) > len(vxPool) {
		return &RefuseError{Name: l.name, Refusals: []Refusal{{
			Addr: l.f.Entry,
			Func: l.funcName(l.f.Entry),
			Reason: fmt.Sprintf("uses %d general registers; the VX lift supports at most %d (plus zero and sp)",
				len(order), len(vxPool)),
		}}}
	}
	l.regMap = make(map[RVReg]isa.Reg, len(order))
	for i, r := range order {
		l.regMap[r] = vxPool[i]
	}
	return nil
}

// m maps an RV register to its VX register.
func (l *lifter) m(r RVReg) isa.Reg {
	switch r {
	case rvZero:
		return vxZero
	case rvSP:
		return isa.RegSP
	default:
		vx, ok := l.regMap[r]
		if !ok {
			panic(fmt.Sprintf("realbin: register %s escaped the usage scan", r))
		}
		return vx
	}
}
