package realbin

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"vcfr/internal/core"
	"vcfr/internal/emu"
	"vcfr/internal/realbin/fixtures"
	"vcfr/internal/realbin/rvasm"
)

// dispatchExpected reimplements the dispatch fixture's loop in Go (int32
// semantics) so the pinned output is derived, not guessed.
func dispatchExpected() int32 {
	var acc int32
	ops := []func(a, b int32) int32{
		func(a, b int32) int32 { return a + b },
		func(a, b int32) int32 { return a - b },
		func(a, b int32) int32 { return a * b },
		func(a, b int32) int32 { return a ^ b },
		func(a, b int32) int32 { return a + 2*b },
	}
	for i := int32(0); i < 16; i++ {
		acc = ops[i%5](acc, 3*i+1)
	}
	return acc
}

// fixtureWant maps fixture name to the exact expected output. The crc32
// expectation is pinned against Go's hash/crc32 over the same message — if
// the lift mis-translates a single shift or xor, this diverges.
func fixtureWant(t *testing.T, name string) string {
	t.Helper()
	switch name {
	case "elf-fib":
		return "144\n"
	case "elf-crc32":
		return fmt.Sprintf("%d\n", int32(crc32.ChecksumIEEE([]byte(rvasm.CRCMessage))))
	case "elf-dispatch":
		return fmt.Sprintf("%d\n", dispatchExpected())
	default:
		t.Fatalf("no expectation for fixture %q", name)
		return ""
	}
}

func loadFixture(t *testing.T, fx fixtures.Fixture) *Lifted {
	t.Helper()
	lifted, err := Load(fx.Data, fx.Name)
	if err != nil {
		t.Fatalf("Load(%s): %v", fx.Name, err)
	}
	return lifted
}

// TestFixturesRunNative lifts each checked-in fixture and runs it natively:
// the strongest end-to-end evidence the structural lift preserves program
// semantics.
func TestFixturesRunNative(t *testing.T) {
	for _, fx := range fixtures.All() {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			lifted := loadFixture(t, fx)
			res, err := emu.Run(lifted.Img, emu.Config{Mode: emu.ModeNative})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if res.ExitCode != 0 {
				t.Errorf("exit code = %d, want 0", res.ExitCode)
			}
			if got, want := string(res.Out), fixtureWant(t, fx.Name); got != want {
				t.Errorf("output = %q, want %q", got, want)
			}
		})
	}
}

// TestFixturesAllModes runs every fixture through the full randomization
// stack in all three functional modes; outputs must agree exactly. This is
// the contract the tentpole promises: real binaries flow through the
// *unchanged* cfg → ilr → emu stack.
func TestFixturesAllModes(t *testing.T) {
	for _, fx := range fixtures.All() {
		fx := fx
		t.Run(fx.Name, func(t *testing.T) {
			lifted := loadFixture(t, fx)
			sys, err := core.NewSystem(lifted.Img, core.Options{Seed: 7})
			if err != nil {
				t.Fatalf("NewSystem: %v", err)
			}
			want := fixtureWant(t, fx.Name)
			for _, mode := range []core.ExecMode{core.ExecNative, core.ExecVCFR, core.ExecEmulated} {
				res, err := sys.Run(mode)
				if err != nil {
					t.Fatalf("Run(%v): %v", mode, err)
				}
				if res.ExitCode != 0 {
					t.Errorf("Run(%v): exit code = %d, want 0", mode, res.ExitCode)
				}
				if string(res.Out) != want {
					t.Errorf("Run(%v): output = %q, want %q", mode, res.Out, want)
				}
			}
		})
	}
}

// TestFixturesRerandomized re-randomizes with fresh seeds; semantics must
// hold under every layout.
func TestFixturesRerandomized(t *testing.T) {
	fx, _ := fixtures.ByName("elf-dispatch")
	lifted := loadFixture(t, fx)
	want := fixtureWant(t, fx.Name)
	sys, err := core.NewSystem(lifted.Img, core.Options{Seed: 1})
	if err != nil {
		t.Fatalf("NewSystem: %v", err)
	}
	for seed := int64(2); seed <= 5; seed++ {
		sys, err = sys.Rerandomize(seed)
		if err != nil {
			t.Fatalf("Rerandomize(%d): %v", seed, err)
		}
		res, err := sys.Run(core.ExecVCFR)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if string(res.Out) != want {
			t.Errorf("seed %d: output = %q, want %q", seed, res.Out, want)
		}
	}
}

// TestLiftDeterministic lifts the same bytes twice and requires identical
// images — the property the golden envelope pinning stands on.
func TestLiftDeterministic(t *testing.T) {
	fx, _ := fixtures.ByName("elf-dispatch")
	a := loadFixture(t, fx)
	b := loadFixture(t, fx)
	if a.Report != b.Report {
		t.Errorf("reports differ:\n%+v\n%+v", a.Report, b.Report)
	}
	if len(a.Img.Segments) != len(b.Img.Segments) {
		t.Fatalf("segment counts differ")
	}
	for i := range a.Img.Segments {
		if !bytes.Equal(a.Img.Segments[i].Data, b.Img.Segments[i].Data) {
			t.Errorf("segment %d bytes differ", i)
		}
	}
}

// TestCheckedInFixturesMatchGenerator pins the checked-in binaries to the
// generator output byte for byte.
func TestCheckedInFixturesMatchGenerator(t *testing.T) {
	embedded := map[string][]byte{
		"fib.elf":      fixtures.Fib,
		"crc32.elf":    fixtures.CRC32,
		"dispatch.elf": fixtures.Dispatch,
	}
	for _, gen := range rvasm.Fixtures() {
		if !bytes.Equal(embedded[gen.Name], gen.Data) {
			t.Errorf("%s: checked-in bytes differ from generator output; run `make realbin`", gen.Name)
		}
	}
}

// TestDispatchReport checks the CFG-recovery hardening evidence on the
// dispatch fixture: four ground-truth landing pads, a relocated table slot
// for each, and exactly one scan-only pointer (op_secret).
func TestDispatchReport(t *testing.T) {
	fx, _ := fixtures.ByName("elf-dispatch")
	r := loadFixture(t, fx).Report
	if r.LandingPads != 4 {
		t.Errorf("LandingPads = %d, want 4", r.LandingPads)
	}
	if r.ScanOnlyPtrs != 1 {
		t.Errorf("ScanOnlyPtrs = %d, want 1 (op_secret)", r.ScanOnlyPtrs)
	}
	// 4 grounded table slots + 4 landing-pad table words.
	if r.GroundedPtrs != 8 {
		t.Errorf("GroundedPtrs = %d, want 8", r.GroundedPtrs)
	}
	if r.Blocks == 0 || r.Instructions == 0 || r.VXInstructions < r.Instructions {
		t.Errorf("implausible report: %+v", r)
	}
	if r.RegsMapped != 11 {
		t.Errorf("RegsMapped = %d, want 11", r.RegsMapped)
	}
}

// refuseCase builds a tiny ELF via rvasm and asserts Lift refuses it with a
// diagnostic matching wantSub.
func refuseCase(t *testing.T, wantSub string, build func(a *rvasm.Asm)) {
	t.Helper()
	a := rvasm.New(0x10000)
	a.Fn("_start")
	build(a)
	_, err := Load(a.Emit("_start"), "refuse-case")
	if err == nil {
		t.Fatalf("Load succeeded, want refusal containing %q", wantSub)
	}
	re, ok := err.(*RefuseError)
	if !ok {
		t.Fatalf("error %T (%v), want *RefuseError", err, err)
	}
	if !strings.Contains(re.Error(), wantSub) {
		t.Errorf("refusal %q does not mention %q", re.Error(), wantSub)
	}
	if len(re.Funcs()) == 0 {
		t.Errorf("refusal names no functions")
	}
}

func exitCleanly(a *rvasm.Asm) {
	a.Li("a0", 0)
	a.Li("a7", 93)
	a.Ecall()
}

func TestRefusals(t *testing.T) {
	t.Run("compressed", func(t *testing.T) {
		refuseCase(t, "compressed", func(a *rvasm.Asm) {
			exitCleanly(a)
			a.Fixed(0x0001_4501) // low half is a C-extension pattern
		})
	})
	t.Run("sp-init", func(t *testing.T) {
		refuseCase(t, "stack-pointer initialization", func(a *rvasm.Asm) {
			a.Li("sp", 1024)
			exitCleanly(a)
		})
	})
	t.Run("unpaired-auipc", func(t *testing.T) {
		refuseCase(t, "unsupported pc-relative idiom", func(a *rvasm.Asm) {
			a.Fixed(rvasm.EncU(0x17, rvasm.Reg("t0"), 0)) // auipc t0, 0
			exitCleanly(a)
		})
	})
	t.Run("jalr-displacement", func(t *testing.T) {
		refuseCase(t, "displacement", func(a *rvasm.Asm) {
			a.Fixed(rvasm.EncI(0x67, 0, 0, rvasm.Reg("t0"), 8)) // jalr x0, 8(t0)
			exitCleanly(a)
		})
	})
	t.Run("unresolved-ecall", func(t *testing.T) {
		refuseCase(t, "unresolved a7", func(a *rvasm.Asm) {
			a.Ecall() // no dominating li a7
			exitCleanly(a)
		})
	})
	t.Run("shift-64", func(t *testing.T) {
		refuseCase(t, "64-bit value manipulation", func(a *rvasm.Asm) {
			a.Slli("t0", "t0", 33)
			exitCleanly(a)
		})
	})
	t.Run("medlow-lui", func(t *testing.T) {
		refuseCase(t, "medlow", func(a *rvasm.Asm) {
			a.Lui("t0", 0x10) // 0x10000: the text page itself
			exitCleanly(a)
		})
	})
	t.Run("too-many-registers", func(t *testing.T) {
		refuseCase(t, "general registers", func(a *rvasm.Asm) {
			for _, r := range []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6",
				"s0", "s1", "s2", "s3", "s4", "s5"} {
				a.Li(r, 1)
			}
			exitCleanly(a)
		})
	})
	t.Run("multiple-sites-reported", func(t *testing.T) {
		a := rvasm.New(0x10000)
		a.Fn("_start")
		a.Li("sp", 1024)
		a.Slli("t0", "t0", 40)
		exitCleanly(a)
		_, err := Load(a.Emit("_start"), "multi")
		re, ok := err.(*RefuseError)
		if !ok {
			t.Fatalf("error %T, want *RefuseError", err)
		}
		if len(re.Refusals) != 2 {
			t.Errorf("got %d refusals, want 2: %v", len(re.Refusals), re)
		}
	})
}

// TestWrongMachine rejects a non-RISC-V ELF before lifting.
func TestWrongMachine(t *testing.T) {
	a := rvasm.New(0x10000)
	a.Fn("_start")
	exitCleanly(a)
	data := a.Emit("_start")
	data[18] = 0x3e // EM_X86_64
	if _, err := Load(data, "x86"); err == nil ||
		!strings.Contains(err.Error(), "EM_RISCV") {
		t.Errorf("Load = %v, want machine error", err)
	}
}

// TestTotalsAccumulate checks that lifts and refusals land on the stats
// spine counters.
func TestTotalsAccumulate(t *testing.T) {
	before := TotalsSnapshot()
	fx, _ := fixtures.ByName("elf-fib")
	loadFixture(t, fx)
	a := rvasm.New(0x10000)
	a.Fn("_start")
	a.Li("sp", 1024)
	exitCleanly(a)
	if _, err := Load(a.Emit("_start"), "refused"); err == nil {
		t.Fatal("refusal case lifted")
	}
	after := TotalsSnapshot()
	if after.BinariesLifted != before.BinariesLifted+1 {
		t.Errorf("BinariesLifted %d -> %d, want +1", before.BinariesLifted, after.BinariesLifted)
	}
	if after.InstructionsLifted <= before.InstructionsLifted {
		t.Errorf("InstructionsLifted did not advance")
	}
	if after.RefusedBinaries != before.RefusedBinaries+1 {
		t.Errorf("RefusedBinaries %d -> %d, want +1", before.RefusedBinaries, after.RefusedBinaries)
	}
	if after.RefusedFunctions != before.RefusedFunctions+1 {
		t.Errorf("RefusedFunctions %d -> %d, want +1", before.RefusedFunctions, after.RefusedFunctions)
	}
}
