// RV64 instruction decoding: the fixed 32-bit base encoding of RV64I plus
// the M-extension multiply/divide group — the subset the lifter accepts.
//
// The decoder is deliberately strict. Anything outside the supported subset
// (compressed 16-bit encodings, floating point, atomics, CSR accesses)
// decodes to an error carrying the raw word and the reason, so the lifter
// can refuse a function with a precise diagnostic instead of silently
// mis-lifting it. This mirrors the soundness posture of CET-guided
// disassembly: when the front end cannot prove what an instruction is, it
// must say so, not guess.
package realbin

import "fmt"

// RVReg is an RV64 integer register x0-x31.
type RVReg uint8

// ABI register names, used in diagnostics.
var rvRegNames = [32]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"s0", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// Architectural registers the lifter treats specially.
const (
	rvZero RVReg = 0  // x0: hardwired zero
	rvRA   RVReg = 1  // x1: return address
	rvSP   RVReg = 2  // x2: stack pointer
	rvA0   RVReg = 10 // x10: first argument / return value
	rvA7   RVReg = 17 // x17: syscall number
)

// String returns the ABI name of the register.
func (r RVReg) String() string {
	if int(r) < len(rvRegNames) {
		return rvRegNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// RVOp identifies one supported RV64 operation.
type RVOp uint8

// Supported RV64I + M operations. The zero value is invalid.
const (
	rvInvalid RVOp = iota

	rvLUI
	rvAUIPC
	rvJAL
	rvJALR

	rvBEQ
	rvBNE
	rvBLT
	rvBGE
	rvBLTU
	rvBGEU

	rvLB
	rvLBU
	rvLW
	rvLWU
	rvLD

	rvSB
	rvSW
	rvSD

	rvADDI
	rvSLTI
	rvSLTIU
	rvXORI
	rvORI
	rvANDI
	rvSLLI
	rvSRLI
	rvSRAI

	rvADD
	rvSUB
	rvSLL
	rvSLT
	rvSLTU
	rvXOR
	rvSRL
	rvSRA
	rvOR
	rvAND

	rvMUL
	rvDIV
	rvREM

	rvFENCE
	rvECALL
	rvEBREAK

	rvNumOps
)

var rvOpNames = [rvNumOps]string{
	rvLUI: "lui", rvAUIPC: "auipc", rvJAL: "jal", rvJALR: "jalr",
	rvBEQ: "beq", rvBNE: "bne", rvBLT: "blt", rvBGE: "bge",
	rvBLTU: "bltu", rvBGEU: "bgeu",
	rvLB: "lb", rvLBU: "lbu", rvLW: "lw", rvLWU: "lwu", rvLD: "ld",
	rvSB: "sb", rvSW: "sw", rvSD: "sd",
	rvADDI: "addi", rvSLTI: "slti", rvSLTIU: "sltiu", rvXORI: "xori",
	rvORI: "ori", rvANDI: "andi", rvSLLI: "slli", rvSRLI: "srli", rvSRAI: "srai",
	rvADD: "add", rvSUB: "sub", rvSLL: "sll", rvSLT: "slt", rvSLTU: "sltu",
	rvXOR: "xor", rvSRL: "srl", rvSRA: "sra", rvOR: "or", rvAND: "and",
	rvMUL: "mul", rvDIV: "div", rvREM: "rem",
	rvFENCE: "fence", rvECALL: "ecall", rvEBREAK: "ebreak",
}

// String returns the mnemonic.
func (op RVOp) String() string {
	if op > rvInvalid && op < rvNumOps {
		return rvOpNames[op]
	}
	return fmt.Sprintf("rvop(%d)", uint8(op))
}

// RVInst is one decoded RV64 instruction. Word variants (addw, slliw, ...)
// decode to their base op: VX registers are 32-bit, so on the lifted machine
// the W forms and the 64-bit forms coincide.
type RVInst struct {
	Op   RVOp
	Rd   RVReg
	Rs1  RVReg
	Rs2  RVReg
	Imm  int64  // sign-extended immediate (branch/jump offsets included)
	Addr uint64 // virtual address the instruction was decoded from
	Raw  uint32 // original encoding, for diagnostics
	Word bool   // true for *W variants (32-bit result semantics)
}

// String renders the instruction for diagnostics.
func (in RVInst) String() string {
	suffix := ""
	if in.Word {
		suffix = "w"
	}
	switch in.Op {
	case rvLUI, rvAUIPC:
		return fmt.Sprintf("%s %s, %#x", in.Op, in.Rd, uint64(in.Imm)>>12&0xfffff)
	case rvJAL:
		return fmt.Sprintf("jal %s, %#x", in.Rd, in.Addr+uint64(in.Imm))
	case rvJALR:
		return fmt.Sprintf("jalr %s, %d(%s)", in.Rd, in.Imm, in.Rs1)
	case rvBEQ, rvBNE, rvBLT, rvBGE, rvBLTU, rvBGEU:
		return fmt.Sprintf("%s %s, %s, %#x", in.Op, in.Rs1, in.Rs2, in.Addr+uint64(in.Imm))
	case rvLB, rvLBU, rvLW, rvLWU, rvLD:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rd, in.Imm, in.Rs1)
	case rvSB, rvSW, rvSD:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, in.Rs2, in.Imm, in.Rs1)
	case rvADDI, rvSLTI, rvSLTIU, rvXORI, rvORI, rvANDI, rvSLLI, rvSRLI, rvSRAI:
		return fmt.Sprintf("%s%s %s, %s, %d", in.Op, suffix, in.Rd, in.Rs1, in.Imm)
	case rvADD, rvSUB, rvSLL, rvSLT, rvSLTU, rvXOR, rvSRL, rvSRA, rvOR, rvAND,
		rvMUL, rvDIV, rvREM:
		return fmt.Sprintf("%s%s %s, %s, %s", in.Op, suffix, in.Rd, in.Rs1, in.Rs2)
	case rvFENCE, rvECALL, rvEBREAK:
		return in.Op.String()
	default:
		return fmt.Sprintf("rv(%#08x)", in.Raw)
	}
}

// DecodeError reports an RV64 word the decoder does not accept.
type DecodeError struct {
	Addr   uint64
	Raw    uint32
	Reason string
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("realbin: undecodable instruction %#08x at %#x: %s", e.Raw, e.Addr, e.Reason)
}

func decErr(addr uint64, raw uint32, format string, args ...any) error {
	return &DecodeError{Addr: addr, Raw: raw, Reason: fmt.Sprintf(format, args...)}
}

// Immediate extraction helpers (RISC-V unprivileged spec, Sec. 2.3).

func immI(w uint32) int64 { return int64(int32(w) >> 20) }

func immS(w uint32) int64 {
	return int64(int32(w)>>25<<5) | int64(w>>7&0x1f)
}

func immB(w uint32) int64 {
	return int64(int32(w)>>31<<12) | int64(w>>7&1)<<11 | int64(w>>25&0x3f)<<5 | int64(w>>8&0xf)<<1
}

func immU(w uint32) int64 { return int64(int32(w &^ 0xfff)) }

func immJ(w uint32) int64 {
	return int64(int32(w)>>31<<20) | int64(w>>12&0xff)<<12 | int64(w>>20&1)<<11 | int64(w>>21&0x3ff)<<1
}

// DecodeRV64 decodes the 32-bit word w fetched from addr. Compressed
// encodings and instructions outside the supported RV64I+M subset return a
// *DecodeError; the decoder never panics, whatever the input.
func DecodeRV64(w uint32, addr uint64) (RVInst, error) {
	if w&3 != 3 {
		return RVInst{}, decErr(addr, w, "compressed (C-extension) encoding; rebuild with -march=rv64i")
	}
	in := RVInst{
		Rd:   RVReg(w >> 7 & 0x1f),
		Rs1:  RVReg(w >> 15 & 0x1f),
		Rs2:  RVReg(w >> 20 & 0x1f),
		Addr: addr,
		Raw:  w,
	}
	funct3 := w >> 12 & 7
	funct7 := w >> 25

	switch w & 0x7f {
	case 0x37: // LUI
		in.Op, in.Imm = rvLUI, immU(w)
	case 0x17: // AUIPC
		in.Op, in.Imm = rvAUIPC, immU(w)
	case 0x6f: // JAL
		in.Op, in.Imm = rvJAL, immJ(w)
	case 0x67: // JALR
		if funct3 != 0 {
			return RVInst{}, decErr(addr, w, "jalr funct3 %d", funct3)
		}
		in.Op, in.Imm = rvJALR, immI(w)
	case 0x63: // BRANCH
		ops := map[uint32]RVOp{0: rvBEQ, 1: rvBNE, 4: rvBLT, 5: rvBGE, 6: rvBLTU, 7: rvBGEU}
		op, ok := ops[funct3]
		if !ok {
			return RVInst{}, decErr(addr, w, "branch funct3 %d", funct3)
		}
		in.Op, in.Imm = op, immB(w)
	case 0x03: // LOAD
		ops := map[uint32]RVOp{0: rvLB, 2: rvLW, 3: rvLD, 4: rvLBU, 6: rvLWU}
		op, ok := ops[funct3]
		if !ok {
			return RVInst{}, decErr(addr, w, "load width funct3 %d (lh/lhu unsupported)", funct3)
		}
		in.Op, in.Imm = op, immI(w)
	case 0x23: // STORE
		ops := map[uint32]RVOp{0: rvSB, 2: rvSW, 3: rvSD}
		op, ok := ops[funct3]
		if !ok {
			return RVInst{}, decErr(addr, w, "store width funct3 %d (sh unsupported)", funct3)
		}
		in.Op, in.Imm = op, immS(w)
	case 0x13, 0x1b: // OP-IMM, OP-IMM-32
		in.Word = w&0x7f == 0x1b
		switch funct3 {
		case 0:
			in.Op, in.Imm = rvADDI, immI(w)
		case 2:
			in.Op, in.Imm = rvSLTI, immI(w)
		case 3:
			in.Op, in.Imm = rvSLTIU, immI(w)
		case 4:
			in.Op, in.Imm = rvXORI, immI(w)
		case 6:
			in.Op, in.Imm = rvORI, immI(w)
		case 7:
			in.Op, in.Imm = rvANDI, immI(w)
		case 1:
			if funct7&^1 != 0 {
				return RVInst{}, decErr(addr, w, "slli funct7 %#x", funct7)
			}
			in.Op, in.Imm = rvSLLI, int64(w>>20&0x3f)
		case 5:
			switch funct7 &^ 1 {
			case 0:
				in.Op = rvSRLI
			case 0x20:
				in.Op = rvSRAI
			default:
				return RVInst{}, decErr(addr, w, "shift-imm funct7 %#x", funct7)
			}
			in.Imm = int64(w >> 20 & 0x3f)
		}
		if in.Word && (in.Op == rvSLTI || in.Op == rvSLTIU || in.Op == rvXORI || in.Op == rvORI || in.Op == rvANDI) {
			return RVInst{}, decErr(addr, w, "OP-IMM-32 funct3 %d", funct3)
		}
	case 0x33, 0x3b: // OP, OP-32
		in.Word = w&0x7f == 0x3b
		switch {
		case funct7 == 0x01: // M extension
			switch funct3 {
			case 0:
				in.Op = rvMUL
			case 4:
				in.Op = rvDIV
			case 6:
				in.Op = rvREM
			case 5, 7:
				return RVInst{}, decErr(addr, w, "unsigned divide/remainder (divu/remu) unsupported")
			default:
				return RVInst{}, decErr(addr, w, "M-extension funct3 %d (mulh variants unsupported)", funct3)
			}
		case funct7 == 0x00:
			ops := map[uint32]RVOp{0: rvADD, 1: rvSLL, 2: rvSLT, 3: rvSLTU, 4: rvXOR, 5: rvSRL, 6: rvOR, 7: rvAND}
			in.Op = ops[funct3]
		case funct7 == 0x20:
			switch funct3 {
			case 0:
				in.Op = rvSUB
			case 5:
				in.Op = rvSRA
			default:
				return RVInst{}, decErr(addr, w, "OP funct7 0x20 funct3 %d", funct3)
			}
		default:
			return RVInst{}, decErr(addr, w, "OP funct7 %#x", funct7)
		}
		if in.Word && (in.Op == rvSLT || in.Op == rvSLTU) {
			return RVInst{}, decErr(addr, w, "OP-32 funct3 %d", funct3)
		}
	case 0x0f: // MISC-MEM
		if funct3 != 0 {
			return RVInst{}, decErr(addr, w, "fence funct3 %d", funct3)
		}
		in.Op = rvFENCE
	case 0x73: // SYSTEM
		switch w >> 7 {
		case 0:
			in.Op = rvECALL
		case 1 << 13:
			in.Op = rvEBREAK
		default:
			return RVInst{}, decErr(addr, w, "SYSTEM encoding (CSR instructions unsupported)")
		}
	default:
		return RVInst{}, decErr(addr, w, "opcode %#02x outside the RV64I+M subset", w&0x7f)
	}
	if in.Op == rvInvalid {
		return RVInst{}, decErr(addr, w, "unrecognized encoding")
	}
	return in, nil
}
