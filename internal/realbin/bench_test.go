package realbin_test

import (
	"testing"

	"vcfr/internal/core"
	"vcfr/internal/cpu"
	"vcfr/internal/realbin"
	"vcfr/internal/realbin/fixtures"
)

// BenchmarkLift measures front-end throughput: parse + decode + lift of a
// checked-in fixture, reported as lifted RV64 instructions per second. This
// bounds how fast real binaries can enter the simulator.
func BenchmarkLift(b *testing.B) {
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lifted, err := realbin.Load(fixtures.CRC32, "crc32.elf")
		if err != nil {
			b.Fatal(err)
		}
		insts += uint64(lifted.Report.Instructions)
	}
	b.ReportMetric(float64(insts)/b.Elapsed().Seconds(), "instrs/s")
}

// BenchmarkLiftedSimulate measures the simulator on lifted real-binary
// text: a full VCFR-mode run of the crc32 fixture, reported as
// nanoseconds per simulated instruction — directly comparable to the
// pipeline budget pinned for the synthetic analogs.
func BenchmarkLiftedSimulate(b *testing.B) {
	lifted, err := realbin.Load(fixtures.CRC32, "crc32.elf")
	if err != nil {
		b.Fatal(err)
	}
	sys, err := core.NewSystem(lifted.Img, core.Options{Seed: 42, Spread: 8})
	if err != nil {
		b.Fatal(err)
	}
	var insts uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.Simulate(cpu.ModeVCFR, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		insts += res.Stats.Instructions
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/instr")
}
