package realbin

import (
	"sync/atomic"

	"vcfr/internal/stats"
)

// Totals are the process-wide realbin counters on the stats spine. The
// package accumulates them atomically (lifts can run concurrently under the
// harness worker pool); consumers hold their own Totals mirror, refresh it
// from TotalsSnapshot at render time, and register the mirror's fields —
// the same pattern the server uses for trace-cache and campaign counters.
type Totals struct {
	BinariesLifted      uint64 // successful lifts
	InstructionsLifted  uint64 // RV instructions translated
	BlocksRecovered     uint64 // basic blocks cfg recovered over lifted text
	LandingPads         uint64 // ground-truth landing pads found
	UnresolvedIndirects uint64 // scan-only code pointers (failover path)
	RefusedBinaries     uint64 // lifts refused end to end
	RefusedFunctions    uint64 // distinct functions named in refusals
}

// Register registers the totals under realbin.* names.
func (t *Totals) Register(r *stats.Registry) {
	sc := r.Scope("realbin")
	sc.Counter("binaries_lifted", "ELF binaries lifted to VX images.", &t.BinariesLifted)
	sc.Counter("instructions_lifted", "RV64 instructions lifted.", &t.InstructionsLifted)
	sc.Counter("blocks_recovered", "Basic blocks recovered over lifted text.", &t.BlocksRecovered)
	sc.Counter("landing_pads", "Ground-truth landing pads (auipc x0) found.", &t.LandingPads)
	sc.Counter("unresolved_indirects", "Code pointers rewritten without grounding (scan-only failover).", &t.UnresolvedIndirects)
	sc.Counter("refused_binaries", "Binaries refused by the lifter.", &t.RefusedBinaries)
	sc.Counter("refused_functions", "Distinct functions named in lift refusals.", &t.RefusedFunctions)
}

// liveTotals is the package-wide accumulator.
type liveTotals struct {
	binaries, instructions, blocks, pads, scanOnly, refusedBins, refusedFuncs atomic.Uint64
}

var totals liveTotals

func (t *liveTotals) noteLift(r Report) {
	t.binaries.Add(1)
	t.instructions.Add(uint64(r.Instructions))
	t.blocks.Add(uint64(r.Blocks))
	t.pads.Add(uint64(r.LandingPads))
	t.scanOnly.Add(uint64(r.ScanOnlyPtrs))
}

func (t *liveTotals) noteRefusal(funcs int) {
	t.refusedBins.Add(1)
	t.refusedFuncs.Add(uint64(funcs))
}

// TotalsSnapshot reads the process-wide counters at one instant.
func TotalsSnapshot() Totals {
	return Totals{
		BinariesLifted:      totals.binaries.Load(),
		InstructionsLifted:  totals.instructions.Load(),
		BlocksRecovered:     totals.blocks.Load(),
		LandingPads:         totals.pads.Load(),
		UnresolvedIndirects: totals.scanOnly.Load(),
		RefusedBinaries:     totals.refusedBins.Load(),
		RefusedFunctions:    totals.refusedFuncs.Load(),
	}
}
