package realbin

import (
	"strings"
	"testing"

	"vcfr/internal/realbin/rvasm"
)

// TestDecodeKnownEncodings cross-checks DecodeRV64 against the independent
// rvasm encoders.
func TestDecodeKnownEncodings(t *testing.T) {
	tests := []struct {
		name string
		w    uint32
		want RVInst
	}{
		{"addi", rvasm.EncI(0x13, 0, 10, 0, -42), RVInst{Op: rvADDI, Rd: 10, Imm: -42}},
		{"andi", rvasm.EncI(0x13, 7, 7, 28, 1), RVInst{Op: rvANDI, Rd: 7, Rs1: 28, Imm: 1}},
		{"xori", rvasm.EncI(0x13, 4, 10, 28, -1), RVInst{Op: rvXORI, Rd: 10, Rs1: 28, Imm: -1}},
		{"slli", rvasm.EncR(0x13, 1, 0, 5, 19, 3), RVInst{Op: rvSLLI, Rd: 5, Rs1: 19, Imm: 3}},
		{"srliw", rvasm.EncR(0x1b, 5, 0, 28, 28, 1), RVInst{Op: rvSRLI, Rd: 28, Rs1: 28, Imm: 1, Word: true}},
		{"add", rvasm.EncR(0x33, 0, 0, 10, 10, 11), RVInst{Op: rvADD, Rd: 10, Rs1: 10, Rs2: 11}},
		{"sub", rvasm.EncR(0x33, 0, 0x20, 10, 10, 11), RVInst{Op: rvSUB, Rd: 10, Rs1: 10, Rs2: 11}},
		{"mul", rvasm.EncR(0x33, 0, 1, 10, 10, 11), RVInst{Op: rvMUL, Rd: 10, Rs1: 10, Rs2: 11}},
		{"lui", rvasm.EncU(0x37, 29, 0xedb88), RVInst{Op: rvLUI, Rd: 29, Imm: -0x12478000}},
		{"auipc", rvasm.EncU(0x17, 0, 0), RVInst{Op: rvAUIPC, Imm: 0}},
		{"jal", rvasm.EncJ(0x6f, 1, -2048), RVInst{Op: rvJAL, Rd: 1, Imm: -2048}},
		{"jalr-ret", rvasm.EncI(0x67, 0, 0, 1, 0), RVInst{Op: rvJALR, Rs1: 1}},
		{"beq", rvasm.EncB(0x63, 0, 5, 0, 64), RVInst{Op: rvBEQ, Rs1: 5, Imm: 64}},
		{"blt", rvasm.EncB(0x63, 4, 10, 5, -4096), RVInst{Op: rvBLT, Rs1: 10, Rs2: 5, Imm: -4096}},
		{"lbu", rvasm.EncI(0x03, 4, 5, 8, 0), RVInst{Op: rvLBU, Rd: 5, Rs1: 8}},
		{"ld", rvasm.EncI(0x03, 3, 1, 2, 24), RVInst{Op: rvLD, Rd: 1, Rs1: 2, Imm: 24}},
		{"sd", rvasm.EncS(0x23, 3, 2, 1, 24), RVInst{Op: rvSD, Rs1: 2, Rs2: 1, Imm: 24}},
		{"ecall", 0x73, RVInst{Op: rvECALL}},
		{"ebreak", 0x0010_0073, RVInst{Op: rvEBREAK}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DecodeRV64(tc.w, 0x1000)
			if err != nil {
				t.Fatalf("DecodeRV64(%#x): %v", tc.w, err)
			}
			got.Addr, got.Raw = 0, 0
			// Register fields are decoded from fixed bit positions whatever
			// the format; blank the ones the format doesn't use (immediate
			// bits alias them).
			switch tc.want.Op {
			case rvLUI, rvAUIPC, rvJAL:
				got.Rs1, got.Rs2 = 0, 0
			case rvJALR, rvLB, rvLBU, rvLW, rvLWU, rvLD,
				rvADDI, rvSLTI, rvSLTIU, rvXORI, rvORI, rvANDI,
				rvSLLI, rvSRLI, rvSRAI:
				got.Rs2 = 0
			case rvSB, rvSW, rvSD:
				got.Rd = 0
			case rvECALL, rvEBREAK:
				got.Rd, got.Rs1, got.Rs2, got.Imm = 0, 0, 0, 0
			}
			if got != tc.want {
				t.Errorf("DecodeRV64(%#x) = %+v, want %+v", tc.w, got, tc.want)
			}
		})
	}
}

// TestDecodeRejects covers the deliberate subset boundaries.
func TestDecodeRejects(t *testing.T) {
	tests := []struct {
		name string
		w    uint32
		sub  string
	}{
		{"compressed", 0x0000_4501, "compressed"},
		{"lh", rvasm.EncI(0x03, 1, 5, 8, 0), "lh/lhu unsupported"},
		{"sh", rvasm.EncS(0x23, 1, 2, 1, 0), "sh unsupported"},
		{"divu", rvasm.EncR(0x33, 5, 1, 10, 10, 11), "divu/remu"},
		{"mulh", rvasm.EncR(0x33, 1, 1, 10, 10, 11), "mulh"},
		{"csrrw", 0x3000_1073, "CSR"},
		{"float", 0x0000_0007, "outside the RV64I+M subset"},
		{"atomic", 0x0000_002f, "outside the RV64I+M subset"},
		{"bad-branch-f3", rvasm.EncB(0x63, 2, 0, 0, 0), "branch funct3"},
		{"sltw", rvasm.EncR(0x3b, 2, 0, 5, 5, 6), "OP-32"},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeRV64(tc.w, 0x1000)
			if err == nil {
				t.Fatalf("DecodeRV64(%#x) succeeded, want error about %q", tc.w, tc.sub)
			}
			if !strings.Contains(err.Error(), tc.sub) {
				t.Errorf("error %q does not mention %q", err, tc.sub)
			}
			de, ok := err.(*DecodeError)
			if !ok {
				t.Fatalf("error %T, want *DecodeError", err)
			}
			if de.Raw != tc.w || de.Addr != 0x1000 {
				t.Errorf("DecodeError carries raw=%#x addr=%#x", de.Raw, de.Addr)
			}
		})
	}
}

// TestDecodeNeverPanics sweeps structured corners of the encoding space.
func TestDecodeNeverPanics(t *testing.T) {
	words := []uint32{0, 1, 2, 3, 0xffff_ffff, 0x7fff_ffff, 0x8000_0000}
	for op := uint32(0); op < 0x80; op++ {
		for f3 := uint32(0); f3 < 8; f3++ {
			words = append(words, op|f3<<12, op|f3<<12|0xfff0_0000, op|f3<<12|0x0200_0000)
		}
	}
	for _, w := range words {
		in, err := DecodeRV64(w, 0)
		if err == nil {
			_ = in.String() // formatting must not panic either
		}
	}
}
