package rvasm

// The three checked-in fixture programs. They live here (not in the
// fixturegen command) so the realbin tests can regenerate them and assert
// the checked-in binaries are byte-identical — the determinism guarantee
// scripts/realbin_fixtures.sh verifies by SHA256.

// CRCMessage is the byte string the crc32 fixture checksums; the lift test
// pins the output against Go's hash/crc32 over the same bytes.
const CRCMessage = "hardware supported instruction address space randomization"

// GenFib builds fib.elf: deep recursive call/return chains — the
// return-address channel.
func GenFib() []byte {
	a := New(0x10000)
	a.Fn("_start")
	a.Li("a0", 12)
	a.Call("fib")
	a.PrintResult()

	a.Fn("fib")
	a.Li("t0", 2)
	a.Blt("a0", "t0", "fib_ret")
	a.Addi("sp", "sp", -32)
	a.Sd("ra", "sp", 24)
	a.Sd("s0", "sp", 16)
	a.Sd("s1", "sp", 8)
	a.Mv("s0", "a0")
	a.Addi("a0", "a0", -1)
	a.Call("fib")
	a.Mv("s1", "a0")
	a.Addi("a0", "s0", -2)
	a.Call("fib")
	a.Add("a0", "a0", "s1")
	a.Ld("ra", "sp", 24)
	a.Ld("s0", "sp", 16)
	a.Ld("s1", "sp", 8)
	a.Addi("sp", "sp", 32)
	a.Label("fib_ret")
	a.Ret()
	return a.Emit("_start")
}

// GenCRC32 builds crc32.elf: bit-twiddling over a rodata message (la, lbu,
// W-form shifts, lui+addi constant building). Output = IEEE CRC-32 of
// CRCMessage.
func GenCRC32() []byte {
	a := New(0x10000)
	ro := a.Seg("rodata", 0x20000, false)
	a.DLabel(ro, "msg", true)
	ro.Bytes(append([]byte(CRCMessage), 0))

	a.Fn("_start")
	a.La("s0", "msg")
	a.Li("t3", -1) // crc = 0xffffffff
	a.Lui("t4", 0xedb88)
	a.Addi("t4", "t4", 0x320) // poly = 0xedb88320
	a.Label("byteloop")
	a.Lbu("t0", "s0", 0)
	a.Beq("t0", "zero", "done")
	a.Xor("t3", "t3", "t0")
	a.Li("t1", 8)
	a.Label("bitloop")
	a.Andi("t2", "t3", 1)
	a.Srliw("t3", "t3", 1)
	a.Beq("t2", "zero", "skip")
	a.Xor("t3", "t3", "t4")
	a.Label("skip")
	a.Addi("t1", "t1", -1)
	a.Bne("t1", "zero", "bitloop")
	a.Addi("s0", "s0", 1)
	a.J("byteloop")
	a.Label("done")
	a.Xori("a0", "t3", -1)
	a.PrintResult()
	return a.Emit("_start")
}

// GenDispatch builds dispatch.elf: a writable function-pointer table driving
// indirect calls. Four handlers open with `auipc x0` landing pads (ground
// truth for the rewriter); the fifth is deliberately unsymboled and
// pad-less, so its table slot exercises the scan-only failover path.
func GenDispatch() []byte {
	a := New(0x10000)

	a.Fn("_start")
	a.Li("s0", 0) // i
	a.Li("s1", 0) // acc
	a.Li("s3", 0) // table index
	a.La("s2", "table")
	a.Label("loop")
	a.Slli("t0", "s3", 3)
	a.Add("t0", "t0", "s2")
	a.Ld("t1", "t0", 0)
	a.Mv("a0", "s1")
	a.Slli("a1", "s0", 1)
	a.Add("a1", "a1", "s0")
	a.Addi("a1", "a1", 1) // a1 = 3i + 1
	a.JalrRA("t1")
	a.Mv("s1", "a0")
	a.Addi("s3", "s3", 1)
	a.Li("t2", 5)
	a.Bne("s3", "t2", "noreset")
	a.Li("s3", 0)
	a.Label("noreset")
	a.Addi("s0", "s0", 1)
	a.Li("t2", 16)
	a.Blt("s0", "t2", "loop")
	a.Mv("a0", "s1")
	a.PrintResult()

	a.Fn("op_add")
	a.Lpad()
	a.Add("a0", "a0", "a1")
	a.Ret()
	a.Fn("op_sub")
	a.Lpad()
	a.Sub("a0", "a0", "a1")
	a.Ret()
	a.Fn("op_mul")
	a.Lpad()
	a.Mul("a0", "a0", "a1")
	a.Ret()
	a.Fn("op_xor")
	a.Lpad()
	a.Xor("a0", "a0", "a1")
	a.Ret()
	// No symbol, no landing pad: only the byte scan can find this one.
	a.Label("op_secret")
	a.Add("a0", "a0", "a1")
	a.Add("a0", "a0", "a1")
	a.Ret()

	data := a.Seg("data", 0x30000, true)
	a.DLabel(data, "table", true)
	data.DwordLabel("op_add")
	data.DwordLabel("op_sub")
	data.DwordLabel("op_mul")
	data.DwordLabel("op_xor")
	data.DwordLabel("op_secret")
	return a.Emit("_start")
}

// Fixtures returns the fixture set in its canonical order.
func Fixtures() []struct {
	Name string
	Data []byte
} {
	return []struct {
		Name string
		Data []byte
	}{
		{"fib.elf", GenFib()},
		{"crc32.elf", GenCRC32()},
		{"dispatch.elf", GenDispatch()},
	}
}
