// Package rvasm is a tiny deterministic RV64I+M assembler and ELF64 writer.
// It exists for two consumers: the fixturegen command, which regenerates the
// checked-in fixture binaries (the growth container has no riscv64
// cross-compiler), and the realbin tests, which assemble purpose-built
// binaries to exercise the lifter's refusal paths and pin the decoder
// against known-good encodings.
//
// Output is byte-deterministic: same program, same bytes, stable SHA256s.
package rvasm

import (
	"encoding/binary"
	"fmt"
)

// registers maps ABI names to register numbers.
var registers = map[string]uint32{
	"zero": 0, "ra": 1, "sp": 2, "gp": 3, "tp": 4,
	"t0": 5, "t1": 6, "t2": 7, "s0": 8, "s1": 9,
	"a0": 10, "a1": 11, "a2": 12, "a3": 13, "a4": 14, "a5": 15,
	"a6": 16, "a7": 17, "s2": 18, "s3": 19, "s4": 20, "s5": 21,
	"s6": 22, "s7": 23, "s8": 24, "s9": 25, "s10": 26, "s11": 27,
	"t3": 28, "t4": 29, "t5": 30, "t6": 31,
}

// Reg returns the register number for an ABI name.
func Reg(name string) uint32 {
	n, ok := registers[name]
	if !ok {
		panic("rvasm: unknown register " + name)
	}
	return n
}

// Instruction encoders (RISC-V unprivileged spec formats). Exported so the
// decoder tests can cross-check DecodeRV64 against independent encodings.

// EncR encodes an R-type instruction.
func EncR(op, f3, f7, rd, rs1, rs2 uint32) uint32 {
	return op | rd<<7 | f3<<12 | rs1<<15 | rs2<<20 | f7<<25
}

// EncI encodes an I-type instruction.
func EncI(op, f3, rd, rs1 uint32, imm int64) uint32 {
	if imm < -2048 || imm > 2047 {
		panic(fmt.Sprintf("rvasm: I-immediate %d out of range", imm))
	}
	return op | rd<<7 | f3<<12 | rs1<<15 | uint32(imm&0xfff)<<20
}

// EncS encodes an S-type instruction.
func EncS(op, f3, rs1, rs2 uint32, imm int64) uint32 {
	if imm < -2048 || imm > 2047 {
		panic(fmt.Sprintf("rvasm: S-immediate %d out of range", imm))
	}
	u := uint32(imm & 0xfff)
	return op | (u&0x1f)<<7 | f3<<12 | rs1<<15 | rs2<<20 | (u>>5)<<25
}

// EncB encodes a B-type instruction.
func EncB(op, f3, rs1, rs2 uint32, imm int64) uint32 {
	if imm < -4096 || imm > 4094 || imm&1 != 0 {
		panic(fmt.Sprintf("rvasm: B-immediate %d out of range", imm))
	}
	u := uint32(imm) & 0x1fff
	return op | (u>>11&1)<<7 | (u>>1&0xf)<<8 | f3<<12 | rs1<<15 | rs2<<20 |
		(u>>5&0x3f)<<25 | (u>>12&1)<<31
}

// EncU encodes a U-type instruction.
func EncU(op, rd, hi20 uint32) uint32 { return op | rd<<7 | hi20<<12 }

// EncJ encodes a J-type instruction.
func EncJ(op, rd uint32, imm int64) uint32 {
	if imm < -(1<<20) || imm >= 1<<20 || imm&1 != 0 {
		panic(fmt.Sprintf("rvasm: J-immediate %d out of range", imm))
	}
	u := uint32(imm) & 0x1fffff
	return op | rd<<7 | (u>>12&0xff)<<12 | (u>>11&1)<<20 | (u>>1&0x3ff)<<21 | (u>>20&1)<<31
}

// Asm assembles one program: text words with label fixups, plus data
// segments whose 8-byte words may hold code-label addresses.
type Asm struct {
	textBase uint64
	words    []func(pc uint64) uint32 // encoded lazily once labels resolve
	labels   map[string]uint64
	segs     []Dseg
	syms     []sym
}

// Dseg is one data segment under construction.
type Dseg struct {
	name     string
	base     uint64
	writable bool
	items    []dataItem
}

type dataItem struct {
	raw   []byte
	label string // 8-byte code address when non-empty
}

type sym struct {
	name  string
	label string
	size  uint64
	fn    bool
}

// New opens a program whose text starts at textBase.
func New(textBase uint64) *Asm {
	return &Asm{textBase: textBase, labels: map[string]uint64{}}
}

// PC is the address of the next instruction.
func (a *Asm) PC() uint64 { return a.textBase + uint64(4*len(a.words)) }

// Label binds name to the current PC.
func (a *Asm) Label(name string) {
	if _, dup := a.labels[name]; dup {
		panic("rvasm: duplicate label " + name)
	}
	a.labels[name] = a.PC()
}

// Fn binds a label and emits a GLOBAL FUNC symbol for it.
func (a *Asm) Fn(name string) {
	a.Label(name)
	a.syms = append(a.syms, sym{name: name, label: name, fn: true})
}

func (a *Asm) resolve(name string) uint64 {
	v, ok := a.labels[name]
	if !ok {
		panic("rvasm: unresolved label " + name)
	}
	return v
}

// Word appends a lazily encoded instruction word.
func (a *Asm) Word(fn func(pc uint64) uint32) { a.words = append(a.words, fn) }

// Fixed appends a pre-encoded instruction word.
func (a *Asm) Fixed(w uint32) { a.Word(func(uint64) uint32 { return w }) }

// Instruction helpers. W-suffixed forms use the *W opcodes so assembled
// programs stay faithful 32-bit programs on real RV64 hardware too.

// Li emits addi rd, zero, imm.
func (a *Asm) Li(rd string, imm int64) { a.Fixed(EncI(0x13, 0, Reg(rd), 0, imm)) }

// Addi emits addi rd, rs, imm.
func (a *Asm) Addi(rd, rs string, imm int64) { a.Fixed(EncI(0x13, 0, Reg(rd), Reg(rs), imm)) }

// Andi emits andi rd, rs, imm.
func (a *Asm) Andi(rd, rs string, imm int64) { a.Fixed(EncI(0x13, 7, Reg(rd), Reg(rs), imm)) }

// Xori emits xori rd, rs, imm.
func (a *Asm) Xori(rd, rs string, imm int64) { a.Fixed(EncI(0x13, 4, Reg(rd), Reg(rs), imm)) }

// Slli emits slli rd, rs, sh (64-bit form).
func (a *Asm) Slli(rd, rs string, sh uint32) { a.Fixed(EncR(0x13, 1, 0, Reg(rd), Reg(rs), sh)) }

// Srliw emits srliw rd, rs, sh.
func (a *Asm) Srliw(rd, rs string, sh uint32) { a.Fixed(EncR(0x1b, 5, 0, Reg(rd), Reg(rs), sh)) }

// Mv emits addi rd, rs, 0.
func (a *Asm) Mv(rd, rs string) { a.Addi(rd, rs, 0) }

// Add emits add rd, rs1, rs2.
func (a *Asm) Add(rd, rs1, rs2 string) { a.Fixed(EncR(0x33, 0, 0, Reg(rd), Reg(rs1), Reg(rs2))) }

// Sub emits sub rd, rs1, rs2.
func (a *Asm) Sub(rd, rs1, rs2 string) { a.Fixed(EncR(0x33, 0, 0x20, Reg(rd), Reg(rs1), Reg(rs2))) }

// Xor emits xor rd, rs1, rs2.
func (a *Asm) Xor(rd, rs1, rs2 string) { a.Fixed(EncR(0x33, 4, 0, Reg(rd), Reg(rs1), Reg(rs2))) }

// Mul emits mul rd, rs1, rs2.
func (a *Asm) Mul(rd, rs1, rs2 string) { a.Fixed(EncR(0x33, 0, 1, Reg(rd), Reg(rs1), Reg(rs2))) }

// Lui emits lui rd, hi20.
func (a *Asm) Lui(rd string, hi20 uint32) { a.Fixed(EncU(0x37, Reg(rd), hi20)) }

// Lbu emits lbu rd, off(rs).
func (a *Asm) Lbu(rd, rs string, off int64) { a.Fixed(EncI(0x03, 4, Reg(rd), Reg(rs), off)) }

// Ld emits ld rd, off(rs).
func (a *Asm) Ld(rd, rs string, off int64) { a.Fixed(EncI(0x03, 3, Reg(rd), Reg(rs), off)) }

// Sd emits sd rs2, off(rs1).
func (a *Asm) Sd(rs2, rs1 string, off int64) { a.Fixed(EncS(0x23, 3, Reg(rs1), Reg(rs2), off)) }

// Ecall emits ecall.
func (a *Asm) Ecall() { a.Fixed(0x73) }

// Ret emits jalr x0, 0(ra).
func (a *Asm) Ret() { a.Fixed(EncI(0x67, 0, 0, Reg("ra"), 0)) }

// JalrRA emits jalr ra, 0(rs) — an indirect call.
func (a *Asm) JalrRA(rs string) { a.Fixed(EncI(0x67, 0, Reg("ra"), Reg(rs), 0)) }

// Lpad emits auipc x0, 0 — the landing-pad convention.
func (a *Asm) Lpad() { a.Fixed(EncU(0x17, 0, 0)) }

func (a *Asm) branch(f3 uint32, rs1, rs2, label string) {
	a.Word(func(pc uint64) uint32 {
		return EncB(0x63, f3, Reg(rs1), Reg(rs2), int64(a.resolve(label))-int64(pc))
	})
}

// Beq emits beq rs1, rs2, label.
func (a *Asm) Beq(rs1, rs2, l string) { a.branch(0, rs1, rs2, l) }

// Bne emits bne rs1, rs2, label.
func (a *Asm) Bne(rs1, rs2, l string) { a.branch(1, rs1, rs2, l) }

// Blt emits blt rs1, rs2, label.
func (a *Asm) Blt(rs1, rs2, l string) { a.branch(4, rs1, rs2, l) }

// Jal emits jal rd, label.
func (a *Asm) Jal(rd, label string) {
	a.Word(func(pc uint64) uint32 {
		return EncJ(0x6f, Reg(rd), int64(a.resolve(label))-int64(pc))
	})
}

// Call emits jal ra, label.
func (a *Asm) Call(label string) { a.Jal("ra", label) }

// J emits jal zero, label.
func (a *Asm) J(label string) { a.Jal("zero", label) }

// La expands to the medany auipc+addi pair.
func (a *Asm) La(rd, label string) {
	a.Word(func(pc uint64) uint32 {
		off := int64(a.resolve(label)) - int64(pc)
		hi := (off + 0x800) >> 12
		return EncU(0x17, Reg(rd), uint32(hi)&0xfffff)
	})
	a.Word(func(pc uint64) uint32 {
		off := int64(a.resolve(label)) - int64(pc-4)
		lo := off - ((off+0x800)>>12)<<12
		return EncI(0x13, 0, Reg(rd), Reg(rd), lo)
	})
}

// Seg opens a data segment; labels inside it resolve like text labels.
func (a *Asm) Seg(name string, base uint64, writable bool) *Dseg {
	a.segs = append(a.segs, Dseg{name: name, base: base, writable: writable})
	return &a.segs[len(a.segs)-1]
}

func (s *Dseg) size() uint64 {
	var n uint64
	for _, it := range s.items {
		if it.label != "" {
			n += 8
		} else {
			n += uint64(len(it.raw))
		}
	}
	return n
}

// DLabel binds name to the current end of the segment; obj additionally
// emits a GLOBAL OBJECT symbol.
func (a *Asm) DLabel(s *Dseg, name string, obj bool) {
	a.labels[name] = s.base + s.size()
	if obj {
		a.syms = append(a.syms, sym{name: name, label: name})
	}
}

// Bytes appends raw bytes to the segment.
func (s *Dseg) Bytes(b []byte) { s.items = append(s.items, dataItem{raw: b}) }

// DwordLabel appends an 8-byte word holding a code label's address.
func (s *Dseg) DwordLabel(l string) { s.items = append(s.items, dataItem{label: l}) }

// vcfr runtime ecall numbers (see realbin/fixtures/src/vcfr_rt.h).
const (
	sysExit     = 93
	sysPutChar  = 1001
	sysWriteInt = 1003
)

// PrintResult emits writeint(a0); putchar('\n'); exit(0).
func (a *Asm) PrintResult() {
	a.Li("a7", sysWriteInt)
	a.Ecall()
	a.Li("a0", '\n')
	a.Li("a7", sysPutChar)
	a.Ecall()
	a.Li("a0", 0)
	a.Li("a7", sysExit)
	a.Ecall()
}

// Emit lays the program out as an ELF64 RV64 ET_EXEC image.
func (a *Asm) Emit(entryLabel string) []byte {
	text := make([]byte, 0, 4*len(a.words))
	for i, fn := range a.words {
		text = binary.LittleEndian.AppendUint32(text, fn(a.textBase+uint64(4*i)))
	}

	type load struct {
		vaddr uint64
		data  []byte
		flags uint32
	}
	loads := []load{{vaddr: a.textBase, data: text, flags: 4 | 1}} // R+X
	for i := range a.segs {
		s := &a.segs[i]
		var data []byte
		for _, it := range s.items {
			if it.label != "" {
				data = binary.LittleEndian.AppendUint64(data, a.resolve(it.label))
			} else {
				data = append(data, it.raw...)
			}
		}
		flags := uint32(4)
		if s.writable {
			flags |= 2
		}
		loads = append(loads, load{vaddr: s.base, data: data, flags: flags})
	}

	// String and symbol tables.
	strtab := []byte{0}
	type rawSym struct {
		nameOff uint32
		info    byte
		value   uint64
		size    uint64
	}
	rsyms := []rawSym{{}} // index 0: null symbol
	for _, s := range a.syms {
		off := uint32(len(strtab))
		strtab = append(strtab, s.name...)
		strtab = append(strtab, 0)
		info := byte(0x11) // GLOBAL | OBJECT
		if s.fn {
			info = 0x12 // GLOBAL | FUNC
		}
		rsyms = append(rsyms, rawSym{nameOff: off, info: info, value: a.resolve(s.label), size: s.size})
	}

	// Layout: ehdr, phdrs, page-aligned loads, symtab, strtab, shdrs.
	const (
		ehsize = 64
		phsize = 56
		shsize = 64
		align  = 0x1000
	)
	alignUp := func(v uint64) uint64 { return (v + align - 1) &^ (align - 1) }

	off := alignUp(uint64(ehsize + phsize*len(loads)))
	offsets := make([]uint64, len(loads))
	for i := range loads {
		offsets[i] = off
		off = alignUp(off + uint64(len(loads[i].data)))
	}
	symOff := off
	symSize := uint64(24 * len(rsyms))
	strOff := symOff + symSize
	shOff := strOff + uint64(len(strtab))
	total := shOff + 3*shsize

	out := make([]byte, total)
	le := binary.LittleEndian

	// ELF header.
	copy(out, "\x7fELF")
	out[4], out[5], out[6] = 2, 1, 1 // ELF64, little-endian, current
	le.PutUint16(out[16:], 2)        // ET_EXEC
	le.PutUint16(out[18:], 243)      // EM_RISCV
	le.PutUint32(out[20:], 1)
	le.PutUint64(out[24:], a.resolve(entryLabel))
	le.PutUint64(out[32:], ehsize) // phoff
	le.PutUint64(out[40:], shOff)
	le.PutUint16(out[52:], ehsize)
	le.PutUint16(out[54:], phsize)
	le.PutUint16(out[56:], uint16(len(loads)))
	le.PutUint16(out[58:], shsize)
	le.PutUint16(out[60:], 3)
	le.PutUint16(out[62:], 0)

	// Program headers + segment contents.
	for i, l := range loads {
		ph := out[ehsize+phsize*i:]
		le.PutUint32(ph, 1) // PT_LOAD
		le.PutUint32(ph[4:], l.flags)
		le.PutUint64(ph[8:], offsets[i])
		le.PutUint64(ph[16:], l.vaddr)
		le.PutUint64(ph[24:], l.vaddr)
		le.PutUint64(ph[32:], uint64(len(l.data)))
		le.PutUint64(ph[40:], uint64(len(l.data)))
		le.PutUint64(ph[48:], align)
		copy(out[offsets[i]:], l.data)
	}

	// Symbol table.
	for i, s := range rsyms {
		sy := out[symOff+uint64(24*i):]
		le.PutUint32(sy, s.nameOff)
		sy[4] = s.info
		le.PutUint16(sy[6:], 1) // st_shndx: defined
		le.PutUint64(sy[8:], s.value)
		le.PutUint64(sy[16:], s.size)
	}
	copy(out[strOff:], strtab)

	// Sections: null, .symtab, .strtab.
	sh := func(i int, typ, link uint32, o, size, entsize uint64) {
		s := out[shOff+uint64(shsize*i):]
		le.PutUint32(s[4:], typ)
		le.PutUint64(s[24:], o)
		le.PutUint64(s[32:], size)
		le.PutUint32(s[40:], link)
		le.PutUint64(s[56:], entsize)
	}
	sh(1, 2, 2, symOff, symSize, 24)            // SHT_SYMTAB, link=.strtab
	sh(2, 3, 0, strOff, uint64(len(strtab)), 0) // SHT_STRTAB
	return out
}
