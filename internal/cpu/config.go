// Package cpu implements the cycle-level in-order x86-style pipeline model of
// the paper's evaluation (Sec. VI): a single-issue five-block pipeline
// (fetch, decode, alloc, exec, commit) with a decoupled front end, a 2-level
// gshare branch predictor, a BTB, a return-address stack, split L1 caches
// over a unified L2 and DDR DRAM — extended with the paper's proposal:
//
//   - two architectural program counters, RPC (randomized space) and UPC
//     (original space), with all prediction performed in the original space;
//   - a small direct-mapped De-Randomization Cache (DRC) holding
//     randomization and de-randomization entries, backed by table pages that
//     are read through the L2 on a miss;
//   - architectural return-address randomization with a stack bitmap that
//     auto-de-randomizes explicit loads of return-address slots.
//
// The pipeline executes functionally through emu.Exec (the same semantics as
// the reference interpreter) and accounts cycles around it, so the timing
// model can never diverge semantically from the golden model.
package cpu

import (
	"fmt"

	"vcfr/internal/mem"
)

// Mode selects the fetch-path architecture being simulated.
type Mode int

// Simulated architectures.
const (
	// ModeBaseline runs the original binary with no randomization.
	ModeBaseline Mode = iota + 1
	// ModeNaiveILR runs the scattered binary with direct hardware support
	// and the paper's zero-cost address-mapping assumption: control flow
	// resolves for free, but every instruction fetch touches its scattered
	// address, destroying fetch locality (Sec. III).
	ModeNaiveILR
	// ModeVCFR runs the VCFR binary: original storage layout, randomized
	// control flow, DRC-mediated translation at the fetch boundary.
	ModeVCFR
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeBaseline:
		return "baseline"
	case ModeNaiveILR:
		return "naive-ilr"
	case ModeVCFR:
		return "vcfr"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// Config parameterizes the machine. DefaultConfig matches Sec. VI-C.
type Config struct {
	Mode Mode

	Mem mem.HierarchyConfig

	// Branch prediction.
	GshareBits int // global-history length and table index width
	BTBEntries int
	BTBAssoc   int
	RASDepth   int

	// DRC (VCFR only).
	DRCEntries int
	DRCAssoc   int  // 1 = direct-mapped (paper's design)
	DRCSplit   bool // two half-size buffers (rand/derand) instead of one unified
	// DRC2Entries enables the paper's rejected alternative (Sec. IV-B: "One
	// option is to include a larger level two DRC lookup buffer"): a
	// dedicated second-level buffer probed on a DRC miss before walking the
	// L2-resident tables. 0 disables it (the paper's design).
	DRC2Entries int
	DRC2Latency int    // probe latency of the level-2 buffer
	TableBase   uint32 // where the rand/derand table pages live

	// Instruction TLB: fully associative, LRU. Misses pay PageWalkLatency.
	ITLBEntries     int
	PageWalkLatency int

	// Pipeline latencies (cycles).
	MispredictPenalty int // full flush + refill on a wrong prediction
	TakenBubble       int // correctly predicted taken transfer
	DecodeRedirect    int // direct jump resolved at decode on a BTB miss
	MulLatency        int // extra cycles beyond 1
	DivLatency        int
	SyscallLatency    int

	// FetchAhead is how many cycles of line-fetch latency the decoupled
	// front end hides by running ahead of decode on the predicted stream.
	FetchAhead int

	// ContextSwitchEvery, when nonzero, flushes the process-private
	// translation state (DRC, iTLB) every N instructions, modelling context
	// switches: the rand/derand tables are part of the process context
	// (Sec. IV-B), so the DRC restarts cold on every switch-in.
	ContextSwitchEvery uint64

	// SampleEvery, when nonzero, snapshots the live counter registry every
	// N instructions during RunContext (plus once at run end), filling
	// Result.Intervals with cumulative readings. Consumers turn consecutive
	// snapshots into per-window IPC/miss-rate series (results.Interval).
	// 0 disables sampling; the hot loop then pays a single always-false
	// compare per instruction.
	SampleEvery uint64

	// NoBlockCache disables the basic-block cache of pre-decoded
	// instructions (bbcache.go) and forces the per-instruction decode path
	// everywhere. The cache is a pure memoization — results are bit-identical
	// either way — so this knob exists for the differential tests that prove
	// exactly that, and as an escape hatch. Excluded from the JSON shape:
	// it cannot change any result, so it is not part of a run's identity.
	NoBlockCache bool `json:"-"`

	// PredictOnRPC indexes the branch predictor with randomized addresses
	// instead of de-randomized ones — the ablation showing why VCFR keeps
	// prediction in the original space (Sec. IV-D).
	PredictOnRPC bool

	// IssueWidth widens the in-order core (the paper's future-work
	// direction: "extend the idea to the out-of-order superscalar
	// processor"). Width 1 is the paper's machine; width 2 pairs adjacent
	// independent simple-ALU instructions in the same cycle, a classic
	// dual-issue in-order core. The VCFR machinery is unchanged — the point
	// of the extension experiment is that DRC overheads stay small relative
	// to a faster baseline.
	IssueWidth int
}

// DefaultConfig returns the paper's simulated machine.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:              mode,
		Mem:               mem.DefaultHierarchyConfig(),
		GshareBits:        12,
		BTBEntries:        512,
		BTBAssoc:          4,
		RASDepth:          16,
		DRCEntries:        128,
		DRCAssoc:          1,
		DRC2Latency:       3,
		TableBase:         0x2000_0000,
		ITLBEntries:       64,
		PageWalkLatency:   30,
		MispredictPenalty: 7,
		TakenBubble:       1,
		DecodeRedirect:    3,
		MulLatency:        2,
		DivLatency:        11,
		SyscallLatency:    30,
		FetchAhead:        13,
		IssueWidth:        1,
	}
}

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.Mode < ModeBaseline || c.Mode > ModeVCFR {
		return fmt.Errorf("cpu: invalid mode %d", int(c.Mode))
	}
	if c.GshareBits <= 0 || c.GshareBits > 24 {
		return fmt.Errorf("cpu: gshare bits %d out of range", c.GshareBits)
	}
	if c.BTBEntries <= 0 || c.BTBAssoc <= 0 || c.BTBEntries%c.BTBAssoc != 0 {
		return fmt.Errorf("cpu: BTB %d entries / %d ways invalid", c.BTBEntries, c.BTBAssoc)
	}
	if c.RASDepth <= 0 {
		return fmt.Errorf("cpu: RAS depth %d invalid", c.RASDepth)
	}
	if c.ITLBEntries <= 0 || c.PageWalkLatency < 0 {
		return fmt.Errorf("cpu: iTLB %d entries / walk %d invalid",
			c.ITLBEntries, c.PageWalkLatency)
	}
	if c.DRCSplit && c.Mode == ModeVCFR && c.DRCEntries%2 != 0 {
		return fmt.Errorf("cpu: split DRC needs an even entry count, got %d", c.DRCEntries)
	}
	if c.DRC2Entries < 0 || (c.DRC2Entries > 0 && c.DRC2Latency <= 0) {
		return fmt.Errorf("cpu: DRC2 %d entries / %d latency invalid",
			c.DRC2Entries, c.DRC2Latency)
	}
	if c.IssueWidth < 1 || c.IssueWidth > 4 {
		return fmt.Errorf("cpu: issue width %d out of range [1,4]", c.IssueWidth)
	}
	if c.Mode == ModeVCFR {
		if c.DRCEntries <= 0 || c.DRCAssoc <= 0 || c.DRCEntries%c.DRCAssoc != 0 {
			return fmt.Errorf("cpu: DRC %d entries / %d ways invalid", c.DRCEntries, c.DRCAssoc)
		}
	}
	return nil
}
