package cpu

import (
	"fmt"

	"vcfr/internal/emu"
	"vcfr/internal/isa"
	"vcfr/internal/program"
)

// This file implements mid-execution re-randomization, the paper's periodic
// defense against table leakage (Sec. V-C): the kernel re-runs the ILR
// rewriter, installs the new translation tables, and the processor resumes
// the same architectural computation under a fresh layout. An attacker's
// previously disclosed layout knowledge goes stale — a leaked randomized
// address from the old epoch no longer has a table entry, so transferring
// control to it faults on the default-deny prohibition check.
//
// Rerandomize is the processor/kernel half of that hand-off. The caller
// produces the new epoch's artifacts (ilr.Result.Rerandomize) and passes the
// mode-appropriate executed image plus the new translator; Rerandomize swaps
// the live pipeline onto them in place, preserving architectural state:
//
//   - the executed image's text bytes are rewritten in memory (under VCFR the
//     new image re-encodes direct-transfer immediates and movi code constants
//     for the new layout; under naive ILR the whole scattered text moves),
//   - randomized code pointers held in data reloc slots, in bitmap-marked
//     stack slots (architecturally randomized return addresses), and in
//     registers are re-translated old-epoch -> original -> new-epoch,
//   - every structure caching stale translations is rebuilt: the DRC
//     hierarchy (its entries embed the old Translator), the BTB and RAS
//     (their targetPair entries pair original PCs with old-epoch randomized
//     targets), the iTLB (the code pages' contents changed), the fetch byte
//     queue, and the pre-decoded block cache.
//
// The UPC needs no adjustment: it is original-space in every mode, which is
// exactly what makes the swap transparent to the running computation.
//
// Pointer re-translation is conservative in the same way the paper's kernel
// is: a word is treated as a stale code pointer iff the old translator
// de-randomizes it. The randomized space (RandBase 0x4000_0000+) is disjoint
// from program data and stack addresses, so false positives do not arise in
// practice; the documented approximation is that a program storing a
// deliberately crafted integer equal to an old randomized address would see
// it re-translated.
func (p *Pipeline) Rerandomize(img *program.Image, trans emu.Translator, randRA map[uint32]uint32) error {
	if p.cfg.Mode == ModeBaseline {
		return fmt.Errorf("cpu: mode %v does not re-randomize", p.cfg.Mode)
	}
	if trans == nil {
		return fmt.Errorf("cpu: Rerandomize requires a Translator")
	}
	old := p.trans

	switch p.cfg.Mode {
	case ModeNaiveILR:
		if err := p.swapScatteredText(img, old); err != nil {
			return err
		}
		// Architectural state (registers, stack, data) is entirely
		// original-space under naive ILR — only fetch is remapped — so the
		// table swap alone re-targets every future instruction fetch.
		p.trans = trans

	case ModeVCFR:
		// New epoch's code bytes, in place: same addresses, re-encoded
		// randomized immediates.
		for i := range img.Segments {
			seg := &img.Segments[i]
			if seg.Perm&program.PermX != 0 {
				p.mem.WriteBytes(seg.Addr, seg.Data)
			}
		}
		// Stale randomized pointers at data reloc sites (function-pointer
		// tables, jump tables in data). Code relocs were rewritten with the
		// text bytes above. A slot the program overwrote with a non-pointer
		// fails the old-epoch ToOrig and is left alone.
		for _, r := range img.Relocs {
			if r.InCode {
				continue
			}
			p.retranslateWord(r.Addr, old, trans)
		}
		// Architecturally randomized return addresses on the stack: exactly
		// the slots the store hook marked.
		for addr := range p.bitmap {
			p.retranslateWord(addr, old, trans)
		}
		// Randomized code pointers held in registers (a leaked RA moved to a
		// register, a movi-loaded function pointer awaiting an indirect call).
		for i := range p.state.R {
			if orig, ok := old.ToOrig(p.state.R[i]); ok {
				if r, ok := trans.ToRand(orig); ok {
					p.state.R[i] = r
				}
			}
		}
		p.trans = trans
		p.randRA = randRA
		// The DRC hierarchy resolves misses through the translator it was
		// built with and its entries cache old-epoch pairs: rebuild, keeping
		// the accumulated statistics (the swap itself counts as a flush).
		dstats := p.drc.stats
		dstats.Flushes++
		p.drc = newDRC(p.cfg.DRCEntries, p.cfg.DRCAssoc, p.cfg.DRCSplit, trans)
		p.drc.stats = dstats
		if p.drc2 != nil {
			d2 := p.drc2.stats
			p.drc2 = newDRC(p.cfg.DRC2Entries, p.cfg.DRCAssoc, false, trans)
			p.drc2.stats = d2
		}
		p.tableSlots = nextPow2(uint32(translatorLen(trans)))
		p.tableEnd = p.cfg.TableBase + p.tableSlots*8
		_, p.inRand = trans.ToRand(p.pc)
	}

	// BTB and RAS entries pair original PCs with old-epoch randomized
	// targets; a stale pair could alias a new-epoch target and redirect the
	// pc to the wrong original address. They have no flush — rebuild them
	// (prediction state only; the BPred counters live in p.stats).
	p.btb = newBTB(p.cfg.BTBEntries, p.cfg.BTBAssoc)
	p.ras = newRAS(p.cfg.RASDepth)
	// Code pages changed contents: shoot down the iTLB, drop the queued
	// fetch line, and invalidate every pre-decoded block.
	p.itlb.pages = make(map[uint32]uint64, p.itlb.cap)
	p.curLine = noLine
	p.InvalidateBlocks()
	return nil
}

// swapScatteredText replaces the old epoch's scattered text with the new
// one: the old randomized range is zeroed (those bytes no longer decode to
// anything — fetching them faults, like an unmapped page), then the new
// scattered segment is written. img must be a re-randomization of the same
// original program under the same options, so both epochs share RandBase.
func (p *Pipeline) swapScatteredText(img *program.Image, old emu.Translator) error {
	text := img.Text()
	if text == nil {
		return fmt.Errorf("cpu: re-randomized image %q has no text segment", img.Name)
	}
	end := text.Addr + uint32(len(text.Data))
	if ranged, ok := old.(interface{ RandRange() (uint32, uint32) }); ok {
		if _, hi := ranged.RandRange(); hi+isa.MaxLength-1 > end {
			end = hi + isa.MaxLength - 1
		}
	}
	p.mem.WriteBytes(text.Addr, make([]byte, end-text.Addr))
	p.mem.WriteBytes(text.Addr, text.Data)
	return nil
}

// retranslateWord rewrites one memory word from the old epoch's randomized
// space into the new one, when it is a stale randomized pointer.
func (p *Pipeline) retranslateWord(addr uint32, old, next emu.Translator) {
	v := p.mem.ReadWord(addr)
	orig, ok := old.ToOrig(v)
	if !ok {
		return
	}
	if r, ok := next.ToRand(orig); ok {
		p.mem.WriteWord(addr, r)
	}
}
