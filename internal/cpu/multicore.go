package cpu

import (
	"fmt"

	"vcfr/internal/emu"
	"vcfr/internal/mem"
	"vcfr/internal/program"
)

// This file adds multi-core execution: several pipelines, each with private
// L1s, predictors, DRC, and randomization tables, over one shared L2 and
// DRAM. The paper argues this composition is easy precisely because VCFR
// randomizes only the instruction address space — read-only state — so
// nothing a core caches in its private DRC can be invalidated by another
// core (Sec. IV-D). Each process carries its own tables as context.
//
// Timing model: the cluster steps cores round-robin, one instruction per
// turn. Shared-cache contention appears through shared capacity and
// replacement state; port contention is not modelled (documented
// simplification — the paper's single-issue cores rarely saturate an L2
// port).

// NewWithHierarchy is New with an externally built memory hierarchy, the
// hook multi-core clusters use to share an L2.
func NewWithHierarchy(img *program.Image, cfg Config, trans emu.Translator,
	randRA map[uint32]uint32, hier *mem.Hierarchy) (*Pipeline, error) {
	p, err := New(img, cfg, trans, randRA)
	if err != nil {
		return nil, err
	}
	p.hier = hier
	return p, nil
}

// Cluster is a set of cores advancing together over a shared L2.
type Cluster struct {
	Cores []*Pipeline
}

// NewCluster wires cores[i] to per-core L1s over one shared L2/DRAM. Each
// entry supplies the image and randomization context for that core's
// process.
func NewCluster(cfg Config, procs []ClusterProc) (*Cluster, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("cpu: empty cluster")
	}
	hiers, err := mem.NewSharedHierarchy(cfg.Mem, len(procs))
	if err != nil {
		return nil, err
	}
	cl := &Cluster{Cores: make([]*Pipeline, len(procs))}
	for i, pr := range procs {
		mode := cfg.Mode
		if pr.Mode != 0 {
			mode = pr.Mode
		}
		ccfg := cfg
		ccfg.Mode = mode
		p, err := NewWithHierarchy(pr.Img, ccfg, pr.Trans, pr.RandRA, hiers[i])
		if err != nil {
			return nil, fmt.Errorf("cpu: core %d: %w", i, err)
		}
		p.SetInput(pr.Input)
		cl.Cores[i] = p
	}
	return cl, nil
}

// ClusterProc describes one core's process.
type ClusterProc struct {
	Img    *program.Image
	Trans  emu.Translator
	RandRA map[uint32]uint32
	Input  []byte
	Mode   Mode // 0 inherits the cluster config's mode
}

// Run steps every core round-robin until all halt or each reaches maxInsts
// (0 = run to completion). It returns one result per core.
func (cl *Cluster) Run(maxInsts uint64) ([]Result, error) {
	if maxInsts == 0 {
		maxInsts = emu.DefaultMaxSteps
	}
	running := make([]bool, len(cl.Cores))
	for i := range running {
		running[i] = true
	}
	for {
		alive := false
		for i, p := range cl.Cores {
			if !running[i] {
				continue
			}
			if p.stats.Instructions >= maxInsts {
				running[i] = false
				continue
			}
			ok, err := p.Step()
			if err != nil {
				return cl.results(), fmt.Errorf("cpu: core %d: %w", i, err)
			}
			if !ok {
				running[i] = false
				continue
			}
			alive = true
		}
		if !alive {
			break
		}
	}
	return cl.results(), nil
}

func (cl *Cluster) results() []Result {
	out := make([]Result, len(cl.Cores))
	for i, p := range cl.Cores {
		out[i] = p.result()
	}
	return out
}
