package cpu

import (
	"context"
	"errors"
	"fmt"

	"vcfr/internal/emu"
	"vcfr/internal/mem"
	"vcfr/internal/program"
)

// This file adds multi-tenant multi-core execution: a deterministic
// time-slice scheduler dispatches processes (tenants) onto cores, each core
// with private L1s, predictors, DRC, and randomization tables, over one
// shared L2 and DRAM. The paper argues this composition is easy precisely
// because VCFR randomizes only the instruction address space — read-only
// state — so nothing a core caches in its private DRC can be invalidated by
// another core (Sec. IV-D). Each process carries its own tables as context;
// what a process pays for is the switch itself, modeled below.
//
// Timing model: the scheduler advances cores round-robin, one quantum per
// turn, through the same block-cached advanceTo path single-core runs use.
// A tenant is pinned to core (tenant index mod cores) for its lifetime — no
// migration (documented simplification). When a core dispatches a different
// tenant than it last ran, the incoming tenant pays the paper's switch-in
// cost: its process-private translation state (DRC hierarchy, iTLB) is
// flushed and refills cold, and for per-process-key modes the decoded-block
// memoization is dropped too. Shared-cache contention appears through shared
// L2/DRAM capacity and replacement state; port contention is not modelled
// (documented simplification — the paper's single-issue cores rarely
// saturate an L2 port).

// NewWithHierarchy is New with an externally built memory hierarchy, the
// hook multi-core clusters use to share an L2.
func NewWithHierarchy(img *program.Image, cfg Config, trans emu.Translator,
	randRA map[uint32]uint32, hier *mem.Hierarchy) (*Pipeline, error) {
	p, err := New(img, cfg, trans, randRA)
	if err != nil {
		return nil, err
	}
	p.hier = hier
	return p, nil
}

// DefaultQuantum is the scheduler time slice in committed instructions when
// SchedConfig.Quantum is zero.
const DefaultQuantum = 10_000

// SchedConfig shapes the cluster's deterministic time-slice scheduler.
type SchedConfig struct {
	// Cores is the number of physical cores (each with private L1s over the
	// shared L2). Zero means one core per process.
	Cores int `json:"cores,omitempty"`
	// Quantum is the time slice in committed instructions; a tenant runs at
	// most this many instructions per dispatch before the core moves to the
	// next tenant pinned to it. Zero means DefaultQuantum.
	Quantum uint64 `json:"quantum,omitempty"`
}

// SchedStats counts one core's scheduling activity.
type SchedStats struct {
	Quanta       uint64 // dispatches (time slices started)
	Switches     uint64 // dispatches that changed tenants (switch-in cost charged)
	Preemptions  uint64 // quanta ended with the tenant still runnable
	BlockDrops   uint64 // decoded-block cache invalidations on switch-in
	SwitchedIn   uint64 // instructions executed in post-switch (cold) quanta
	TenantsBound uint64 // tenants pinned to this core
}

// ClusterProc describes one tenant process.
type ClusterProc struct {
	Img    *program.Image
	Trans  emu.Translator
	RandRA map[uint32]uint32
	Input  []byte
	Mode   Mode // 0 inherits the cluster config's mode
}

// Cluster schedules tenant processes over a set of cores sharing an L2.
type Cluster struct {
	// Tenants holds one pipeline per process, in ClusterProc order. Tenant i
	// is pinned to core i mod Cores.
	Tenants []*Pipeline

	sched   SchedConfig
	perCore [][]int      // tenant indices pinned to each core
	nextIdx []int        // per-core round-robin cursor into perCore
	lastRun []int        // tenant last dispatched on each core (-1 = none yet)
	stats   []SchedStats // per-core scheduler counters
	errs    []error      // per-tenant fault; a faulted tenant stops, others run on
}

// NewCluster wires one core per process — every tenant runs alone on its
// core, the original co-run deployment. See NewScheduledCluster for the
// general tenants-over-cores form.
func NewCluster(cfg Config, procs []ClusterProc) (*Cluster, error) {
	return NewScheduledCluster(cfg, SchedConfig{Cores: len(procs)}, procs)
}

// NewScheduledCluster builds a cluster of sched.Cores cores running
// len(procs) tenant processes. Each entry supplies the image and
// randomization context for that tenant; tenant i is pinned to core
// i mod Cores. More tenants than cores time-share via the quantum scheduler.
func NewScheduledCluster(cfg Config, sched SchedConfig, procs []ClusterProc) (*Cluster, error) {
	if len(procs) == 0 {
		return nil, fmt.Errorf("cpu: empty cluster")
	}
	if sched.Cores == 0 {
		sched.Cores = len(procs)
	}
	if sched.Cores < 0 {
		return nil, fmt.Errorf("cpu: %d cores", sched.Cores)
	}
	if sched.Quantum == 0 {
		sched.Quantum = DefaultQuantum
	}
	if sched.Cores > len(procs) {
		sched.Cores = len(procs) // idle cores contribute nothing
	}
	hiers, err := mem.NewSharedHierarchy(cfg.Mem, sched.Cores)
	if err != nil {
		return nil, err
	}
	cl := &Cluster{
		Tenants: make([]*Pipeline, len(procs)),
		sched:   sched,
		perCore: make([][]int, sched.Cores),
		nextIdx: make([]int, sched.Cores),
		lastRun: make([]int, sched.Cores),
		stats:   make([]SchedStats, sched.Cores),
		errs:    make([]error, len(procs)),
	}
	for i, pr := range procs {
		mode := cfg.Mode
		if pr.Mode != 0 {
			mode = pr.Mode
		}
		ccfg := cfg
		ccfg.Mode = mode
		core := i % sched.Cores
		p, err := NewWithHierarchy(pr.Img, ccfg, pr.Trans, pr.RandRA, hiers[core])
		if err != nil {
			return nil, fmt.Errorf("cpu: tenant %d: %w", i, err)
		}
		p.SetInput(pr.Input)
		// Each tenant occupies its own physical pages in the shared fabric:
		// a page-granular tag distinguishes equal virtual addresses from
		// different processes in every timed cache (see Pipeline.phys).
		// Tenant 0's tag is zero, so a solo cluster times exactly like a
		// single-core pipeline.
		p.asTag = (uint32(i) * 0x9e3779b9) &^ 0xfff
		cl.Tenants[i] = p
		cl.perCore[core] = append(cl.perCore[core], i)
		cl.stats[core].TenantsBound++
	}
	for c := range cl.lastRun {
		cl.lastRun[c] = -1
	}
	return cl, nil
}

// Cores returns the number of physical cores.
func (cl *Cluster) Cores() int { return cl.sched.Cores }

// CoreOf returns the core tenant t is pinned to.
func (cl *Cluster) CoreOf(t int) int { return t % cl.sched.Cores }

// SchedStats returns the per-core scheduler counters (indexed by core).
func (cl *Cluster) SchedStats() []SchedStats {
	out := make([]SchedStats, len(cl.stats))
	copy(out, cl.stats)
	return out
}

// Errors returns the per-tenant fault slice (nil entries for tenants that
// ran clean). A tenant that faults stops; its co-tenants keep running, and
// its entry here carries the error its result row should record.
func (cl *Cluster) Errors() []error {
	out := make([]error, len(cl.errs))
	copy(out, cl.errs)
	return out
}

// Run schedules every tenant until all halt, fault, or reach maxInsts
// (0 = run to completion). It returns one result per tenant plus the joined
// per-tenant errors (nil when every tenant ran clean). Unlike a single-core
// run, one tenant's fault does not abort the cluster: the faulted tenant
// stops and surviving tenants finish, matching the sweep runner's per-cell
// error-row convention.
func (cl *Cluster) Run(maxInsts uint64) ([]Result, error) {
	return cl.RunContext(context.Background(), maxInsts)
}

// RunContext is Run with mid-run cancellation: the context is polled between
// quanta, so a cancelled or deadline-expired cluster job stops promptly and
// returns the partial per-tenant results collected so far alongside ctx's
// error.
func (cl *Cluster) RunContext(ctx context.Context, maxInsts uint64) ([]Result, error) {
	if maxInsts == 0 {
		maxInsts = emu.DefaultMaxSteps
	}
	for {
		if err := ctx.Err(); err != nil {
			return cl.results(), err
		}
		alive := false
		for c := range cl.perCore {
			if cl.dispatch(c, maxInsts) {
				alive = true
			}
		}
		if !alive {
			break
		}
	}
	return cl.results(), errors.Join(cl.errs...)
}

// runnable reports whether tenant t still has work under maxInsts.
func (cl *Cluster) runnable(t int, maxInsts uint64) bool {
	p := cl.Tenants[t]
	return cl.errs[t] == nil && !p.state.Halted && p.stats.Instructions < maxInsts
}

// dispatch runs one quantum on core c: pick the next runnable tenant
// round-robin, charge the switch-in cost if the core last ran a different
// tenant, and advance it through the block-cached path. Returns false when
// no tenant pinned to c is runnable.
func (cl *Cluster) dispatch(c int, maxInsts uint64) bool {
	tenants := cl.perCore[c]
	t := -1
	for range tenants {
		cand := tenants[cl.nextIdx[c]]
		cl.nextIdx[c] = (cl.nextIdx[c] + 1) % len(tenants)
		if cl.runnable(cand, maxInsts) {
			t = cand
			break
		}
	}
	if t < 0 {
		return false
	}
	p := cl.Tenants[t]
	st := &cl.stats[c]
	st.Quanta++
	switched := false
	if prev := cl.lastRun[c]; prev != t {
		if prev >= 0 {
			// The switch-in cost of Sec. IV-D: the incoming process's
			// private translation state restarts cold, and per-process-key
			// modes drop the decoded-block memoization too.
			st.Switches++
			switched = true
			p.SwitchIn()
			if p.cfg.Mode != ModeBaseline {
				st.BlockDrops++
			}
		}
		cl.lastRun[c] = t
	}
	target := p.stats.Instructions + cl.sched.Quantum
	if target > maxInsts {
		target = maxInsts
	}
	before := p.stats.Instructions
	running, err := p.advanceTo(target)
	if switched {
		st.SwitchedIn += p.stats.Instructions - before
	}
	if err != nil {
		cl.errs[t] = fmt.Errorf("cpu: tenant %d (core %d): %w", t, c, err)
		return true
	}
	if running && p.stats.Instructions < maxInsts && len(tenants) > 1 {
		st.Preemptions++
	}
	return true
}

func (cl *Cluster) results() []Result {
	out := make([]Result, len(cl.Tenants))
	for i, p := range cl.Tenants {
		p.closeIntervals()
		out[i] = p.result()
	}
	return out
}
