package cpu

import (
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// ExecRecord is one instruction's functional outcome — everything the timing
// model consumes from the functional execute stage. A sequence of ExecRecords
// therefore determines the cycle accounting completely: replaying the records
// through the pipeline reproduces Stats/Result bit-for-bit without running
// FetchDecode or Exec again.
//
// The record carries the fully decoded instruction (not just its UPC) so
// replay stays correct even for self-modifying images: the instruction that
// actually executed is what lands in the record.
type ExecRecord struct {
	Inst    isa.Inst
	Taken   bool        // control transferred away from the fall-through
	Target  uint32      // architectural (possibly randomized-space) target
	MemKind emu.MemKind // at most one data access per instruction
	MemAddr uint32
	Derands int  // auto-de-randomizing stack-bitmap loads (VCFR hook)
	Halt    bool // this instruction halted the machine
}

// ReplaySource feeds ExecRecords to a pipeline in execution order. Next
// returns ok=false when the trace is exhausted; Final supplies the program
// output and exit code observed at capture time, which the pipeline adopts
// when the replayed stream ends.
type ReplaySource interface {
	Next() (ExecRecord, bool)
	Final() (out []byte, exitCode uint32)
}

// SetRecorder installs a capture callback invoked once per successfully
// executed instruction, after the functional execute stage and before timing
// is charged. Recording does not perturb timing. nil disables capture.
func (p *Pipeline) SetRecorder(fn func(ExecRecord)) { p.recorder = fn }

// SetReplay switches the pipeline's front end from execute-driven fetch to
// trace-driven replay: Step consumes records from src instead of calling
// FetchDecode/Exec, while every timing structure (caches, predictors, DRC,
// iTLB, issue logic) operates exactly as in an execute-driven run. nil
// restores execute-driven fetch.
//
// Sources that additionally implement Records() []ExecRecord (a materialized
// record slice) get a zero-copy fast path: Step reads records in place
// instead of calling Next per instruction.
//
// A replayed run reproduces the capture run's Result bit-for-bit only when it
// consumes the trace to its end (same instruction cap as capture): the
// emulated program's Out/ExitCode are adopted from the source when the stream
// finishes, not rebuilt incrementally.
func (p *Pipeline) SetReplay(src ReplaySource) {
	p.replay = src
	p.replayRecs, p.replayPos = nil, 0
	// Replayed instructions do not execute stores against memory, so cached
	// decodes could silently go stale across a replay segment; drop them on
	// any transition into or out of replay.
	p.InvalidateBlocks()
	if src == nil {
		return
	}
	if rp, ok := src.(interface{ Records() []ExecRecord }); ok {
		p.replayRecs = rp.Records()
	}
}

// nextReplay fetches the next record, preferring the in-place slice fast
// path. done=true means the source is exhausted and the machine should stop
// as the capture run did. The returned pointer is only valid until the next
// call.
func (p *Pipeline) nextReplay() (rec *ExecRecord, done bool) {
	if p.replayRecs != nil {
		if p.replayPos >= len(p.replayRecs) {
			p.adoptReplayFinal()
			return nil, true
		}
		rec = &p.replayRecs[p.replayPos]
		p.replayPos++
		return rec, false
	}
	r, ok := p.replay.Next()
	if !ok {
		p.adoptReplayFinal()
		return nil, true
	}
	p.replayScratch = r
	return &p.replayScratch, false
}

// adoptReplayFinal installs the capture run's program output and exit code
// into the architectural state, making the replayed Result's Out/ExitCode
// identical to the captured one.
func (p *Pipeline) adoptReplayFinal() {
	out, code := p.replay.Final()
	p.state.Out = out
	p.state.ExitCode = code
}
