package cpu

// This file implements the front-end predictors. Everything is indexed with
// the de-randomized (original-space) PC by default — the key property that
// keeps VCFR's prediction accuracy identical to the baseline's (Sec. IV-D).
// Targets are stored as (orig, rand) pairs so that a correct prediction
// redirects the fetch stream in the original space without consulting the
// DRC, while execution verifies the prediction against the randomized
// target it computed.

// BPredStats counts predictor events.
type BPredStats struct {
	CondLookups   uint64
	CondMispred   uint64 // wrong direction
	BTBLookups    uint64
	BTBMisses     uint64
	BTBWrongTgt   uint64 // hit with a stale target
	RASPushes     uint64
	RASPops       uint64
	RASMispred    uint64
	IndirectWrong uint64
}

// CondAccuracy returns the conditional direction-prediction accuracy.
func (s BPredStats) CondAccuracy() float64 {
	if s.CondLookups == 0 {
		return 0
	}
	return 1 - float64(s.CondMispred)/float64(s.CondLookups)
}

// gshare is a 2-level adaptive direction predictor: global history XOR PC
// indexing a table of 2-bit saturating counters.
type gshare struct {
	history uint32
	mask    uint32
	table   []uint8
}

func newGshare(bits int) *gshare {
	return &gshare{
		mask:  (1 << bits) - 1,
		table: make([]uint8, 1<<bits),
	}
}

func (g *gshare) index(pc uint32) uint32 {
	return (g.history ^ (pc >> 1)) & g.mask
}

// predict returns the predicted direction for the branch at pc.
func (g *gshare) predict(pc uint32) bool {
	return g.table[g.index(pc)] >= 2
}

// update trains the counter and shifts the outcome into the history.
func (g *gshare) update(pc uint32, taken bool) {
	i := g.index(pc)
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else {
		if g.table[i] > 0 {
			g.table[i]--
		}
	}
	g.history = (g.history<<1 | b2u(taken)) & g.mask
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}

// targetPair is a BTB/RAS payload: the same target in both spaces.
type targetPair struct {
	orig uint32
	rand uint32
}

// btbEntry is one BTB way.
type btbEntry struct {
	valid bool
	tag   uint32
	tgt   targetPair
	lru   uint64
}

// btb is a set-associative branch target buffer.
type btb struct {
	sets  [][]btbEntry
	mask  uint32
	clock uint64
}

func newBTB(entries, assoc int) *btb {
	nsets := entries / assoc
	b := &btb{sets: make([][]btbEntry, nsets), mask: uint32(nsets - 1)}
	for i := range b.sets {
		b.sets[i] = make([]btbEntry, assoc)
	}
	return b
}

func (b *btb) index(pc uint32) (uint32, uint32) {
	return (pc >> 1) & b.mask, pc
}

// lookup returns the stored target pair for the transfer at pc.
func (b *btb) lookup(pc uint32) (targetPair, bool) {
	set, tag := b.index(pc)
	for w := range b.sets[set] {
		e := &b.sets[set][w]
		if e.valid && e.tag == tag {
			b.clock++
			e.lru = b.clock
			return e.tgt, true
		}
	}
	return targetPair{}, false
}

// install records the taken target pair for the transfer at pc.
func (b *btb) install(pc uint32, tgt targetPair) {
	set, tag := b.index(pc)
	b.clock++
	victim, oldest := 0, ^uint64(0)
	for w := range b.sets[set] {
		e := &b.sets[set][w]
		if e.valid && e.tag == tag {
			e.tgt, e.lru = tgt, b.clock
			return
		}
		if !e.valid {
			victim, oldest = w, 0
			break
		}
		if e.lru < oldest {
			victim, oldest = w, e.lru
		}
	}
	b.sets[set][victim] = btbEntry{valid: true, tag: tag, tgt: tgt, lru: b.clock}
}

// ras is the return-address stack, holding (orig, rand) pairs. Overflow
// wraps (oldest entries are lost), underflow predicts garbage — both are
// counted as mispredictions when detected, like hardware.
type ras struct {
	stack []targetPair
	top   int // number of live entries, capped at len(stack)
}

func newRAS(depth int) *ras {
	return &ras{stack: make([]targetPair, depth)}
}

func (r *ras) push(t targetPair) {
	copy(r.stack[1:], r.stack[:len(r.stack)-1])
	r.stack[0] = t
	if r.top < len(r.stack) {
		r.top++
	}
}

// pop returns the predicted return target; ok is false on underflow.
func (r *ras) pop() (targetPair, bool) {
	if r.top == 0 {
		return targetPair{}, false
	}
	t := r.stack[0]
	copy(r.stack[:len(r.stack)-1], r.stack[1:])
	r.top--
	return t, true
}
