package cpu

import (
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// This file implements the basic-block cache, the software analog of the
// paper's DRC applied to the simulator itself: decode and address-translate
// each leader-started block once, then execute subsequent visits straight
// from the pre-decoded form. The cached form carries everything the hot loop
// would otherwise recompute per instruction — the decoded isa.Inst (no
// per-byte Memory interface dispatch through emu.FetchDecode), the storage
// address (no per-instruction Translator map lookup under naive ILR), the
// encoded length, and the control-class verdict.
//
// Correctness contract: a block-cached run is bit-identical to the
// per-instruction Step path. The cached form is purely a memoization of
// FetchDecode + storageAddr, both of which touch no timed structure, so the
// timing model cannot observe the difference; the lockstep and fuzz tests in
// bbcache_test.go / bbcache_fuzz_test.go enforce this.
//
// Invalidation: the cache drops everything whenever the bytes or the
// translation that produced a cached decode may have changed —
//
//   - a store that hits a page containing cached instruction bytes
//     (self-modifying code; detected in stepTail for both execution paths),
//   - SetInjector arming (a FetchBytes hook must observe every raw fetch, so
//     injected runs also bypass the cache entirely),
//   - SetReplay installing or removing a trace source (replayed runs do not
//     execute stores, so memory may silently diverge from an executed run),
//   - an explicit InvalidateBlocks call, required after mutating program
//     memory from outside the pipeline (test harnesses, attack payloads,
//     mid-run re-randomization that rewrites image bytes in place).
//
// Same-process context switches (Config.ContextSwitchEvery) flush the DRC
// and iTLB but not this cache: the cached decode depends only on image bytes
// and the static translator, neither of which such a switch changes. A
// *tenant* switch on a multi-core cluster is different — the incoming
// process brings its own image and tables — so Pipeline.SwitchIn drops the
// cache for per-process-key modes; the drop is timing-invariant (the cache
// memoizes work, it never changes it), which FuzzBlockCacheInvalidation's
// context-switch action checks against the per-instruction path.

// maxBlockInsts caps one cached block. Blocks end at the first control
// transfer anyway; the cap only bounds pathological straight-line runs so a
// mid-block interruption (sample edge, instruction budget) never leaves more
// than this many instructions between event checks.
const maxBlockInsts = 64

// bbPageBits is the granularity of the self-modification watch: any store
// into a page holding cached instruction bytes invalidates the cache.
const bbPageBits = 12

// decoded is one pre-decoded, pre-translated instruction of a cached block.
type decoded struct {
	in    isa.Inst
	sAddr uint32 // storage address of the bytes (≠ in.Addr under naive ILR)
	n     int    // encoded length, memoized from in.Len()
	ctl   bool   // control class other than halt: resolved via control()
}

// bblock is one decoded basic block: a leader-started run of instructions
// ending at the first control transfer (inclusive) or at maxBlockInsts.
type bblock struct {
	insts []decoded
}

// BlockCacheStats counts block-cache activity. The counters are diagnostic
// (exposed via Pipeline.BlockCacheStats, not registered on the stats spine,
// so result envelopes and /metrics are unchanged by the cache's existence).
type BlockCacheStats struct {
	Blocks  uint64 // blocks decoded
	Insts   uint64 // instructions pre-decoded into blocks
	Hits    uint64 // block-granular lookups served from the cache
	Flushes uint64 // whole-cache invalidations
}

// blockCache maps leader UPCs to decoded blocks and watches for stores into
// the pages its cached bytes came from.
type blockCache struct {
	blocks map[uint32]*bblock
	// pages marks storage pages (addr >> bbPageBits) that hold cached
	// instruction bytes. Indexed directly so the per-store check is one
	// bounds-checked load; stack and heap pages beyond the highest code page
	// reject on the bounds check alone.
	pages   []bool
	flushed bool // latched by flush() so an executing block stops itself
	stats   BlockCacheStats
}

func newBlockCache() *blockCache {
	return &blockCache{blocks: make(map[uint32]*bblock)}
}

// cover marks the pages of one cached instruction's byte range.
func (c *blockCache) cover(addr uint32, n int) {
	last := (addr + uint32(n) - 1) >> bbPageBits
	for pg := addr >> bbPageBits; pg <= last; pg++ {
		if pg >= uint32(len(c.pages)) {
			np := make([]bool, pg+1)
			copy(np, c.pages)
			c.pages = np
		}
		c.pages[pg] = true
	}
}

// covers reports whether addr lies in a page holding cached bytes.
func (c *blockCache) covers(addr uint32) bool {
	pg := addr >> bbPageBits
	return pg < uint32(len(c.pages)) && c.pages[pg]
}

// noteStore invalidates the cache when a store may have rewritten cached
// instruction bytes. A word store spans at most [addr, addr+3].
func (c *blockCache) noteStore(addr uint32) {
	if c.covers(addr) || c.covers(addr+3) {
		c.flush()
	}
}

// flush drops every cached block and the page watch. The latched flushed
// flag makes the block executor abandon the block it is running mid-way, so
// a self-modifying store never lets a stale decode of a *later* instruction
// in the same block execute.
func (c *blockCache) flush() {
	if len(c.blocks) > 0 || len(c.pages) > 0 {
		c.blocks = make(map[uint32]*bblock)
		c.pages = nil
	}
	c.flushed = true
	c.stats.Flushes++
}

// InvalidateBlocks drops every cached pre-decoded block. Call it after
// mutating program memory from outside the pipeline (the executing program's
// own stores are detected automatically). A nil receiver-side cache (replay
// pipelines, Config.NoBlockCache) makes this a no-op.
func (p *Pipeline) InvalidateBlocks() {
	if p.bb != nil {
		p.bb.flush()
	}
}

// BlockCacheStats returns a snapshot of the block cache's activity counters
// (zero value when the cache is disabled).
func (p *Pipeline) BlockCacheStats() BlockCacheStats {
	if p.bb == nil {
		return BlockCacheStats{}
	}
	return p.bb.stats
}

// decodeBlock decodes and address-translates the block starting at leader
// and installs it. Decoding touches only functional memory — never a timed
// structure — so pre-decoding is invisible to the timing model. A decode
// error at the leader is returned (matching what Step would produce at that
// pc); an error later in the block just truncates it, and execution falling
// through the truncated end re-attempts the faulting pc as a fresh leader.
func (p *Pipeline) decodeBlock(leader uint32) (*bblock, error) {
	b := &bblock{insts: make([]decoded, 0, 8)}
	pc := leader
	for len(b.insts) < maxBlockInsts {
		sAddr := p.storageAddr(pc)
		in, err := emu.FetchDecode(p.mem, sAddr)
		if err != nil {
			if len(b.insts) == 0 {
				return nil, err
			}
			break
		}
		in.Addr = pc
		cls := in.Class()
		n := in.Len()
		p.bb.cover(sAddr, n)
		b.insts = append(b.insts, decoded{
			in:    in,
			sAddr: sAddr,
			n:     n,
			ctl:   cls.IsControl() && cls != isa.ClassHalt,
		})
		if cls.IsControl() {
			break
		}
		pc = in.NextAddr()
	}
	p.bb.blocks[leader] = b
	p.bb.stats.Blocks++
	p.bb.stats.Insts += uint64(len(b.insts))
	return b, nil
}

// runBlocks executes instructions from the block cache until the committed
// instruction count reaches limit, the machine halts, or an error surfaces.
// The caller (RunContext) owns all count-triggered events and picks limit so
// none falls inside a call: context-switch boundaries, sample edges, and
// cancellation checks all land exactly between runBlocks calls.
//
// Statistics are batched: the unconditionally-touched counters
// (instructions, cycles, fetch stalls) accumulate in locals and flush into
// the registry-registered fields only at return, so a Snapshot taken at an
// interval edge can never observe a partially-executed block.
func (p *Pipeline) runBlocks(limit uint64) (bool, error) {
	if p.state.Halted {
		return false, nil
	}
	if every := p.cfg.ContextSwitchEvery; every > 0 &&
		p.stats.Instructions > 0 && p.stats.Instructions%every == 0 {
		p.contextSwitch()
	}
	var (
		insts, cycles, fetchStall uint64

		base     = p.stats.Instructions
		lineMask = ^uint32(p.cfg.Mem.IL1.LineSize - 1)
		width    = p.cfg.IssueWidth
		vcfr     = p.cfg.Mode == ModeVCFR
	)
	flush := func() {
		p.stats.Instructions = base + insts
		p.stats.Cycles += cycles
		p.stats.FetchStall += fetchStall
	}
	for base+insts < limit {
		blk := p.bb.blocks[p.pc]
		if blk == nil {
			var err error
			if blk, err = p.decodeBlock(p.pc); err != nil {
				flush()
				return false, err
			}
		} else {
			p.bb.stats.Hits++
		}
		p.bb.flushed = false
		for i := range blk.insts {
			if base+insts >= limit {
				break
			}
			d := &blk.insts[i]
			// Front end: the same accounting as fetchSupply, with the common
			// case — every byte on the already-queued line — short-circuited.
			var bubble uint64
			if first := d.sAddr & lineMask; first != p.curLine ||
				(d.sAddr+uint32(d.n)-1)&lineMask != first {
				bubble = p.fetchSupply(d.sAddr, d.n)
				fetchStall += bubble
			}
			cost := 1 + bubble

			p.pendingDerands = 0
			var out emu.Outcome
			if err := emu.ExecInto(p.state, &d.in, &out); err != nil {
				flush()
				return false, err
			}
			if p.recorder != nil {
				p.recorder(ExecRecord{
					Inst:    d.in,
					Taken:   out.Taken,
					Target:  out.Target,
					MemKind: out.MemKind,
					MemAddr: out.MemAddr,
					Derands: p.pendingDerands,
					Halt:    p.state.Halted,
				})
			}
			insts++
			if vcfr && !p.inRand {
				p.stats.Unrand++
			}
			tail, err := p.stepTail(&d.in, &out, d.ctl)
			if err != nil {
				flush()
				return false, err
			}
			cost += tail
			if width > 1 && p.issue.coIssues(width, d.in, out, cost != 1) {
				cost = 0
			}
			cycles += cost
			if p.state.Halted {
				flush()
				return false, nil
			}
			if p.bb.flushed {
				// A store invalidated the cache (possibly rewriting a later
				// instruction of this very block): abandon the cached form
				// and re-decode from the current pc.
				break
			}
		}
	}
	flush()
	return true, nil
}
