// Lockstep differential tests live in an external test package so they can
// derive layout seeds with harness.CellSeed — the same derivation the
// experiment runner uses — without an import cycle.
package cpu_test

import (
	"fmt"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/harness"
	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

// lockstepPair builds the pipeline and the reference interpreter for one
// (image, mode) point of the differential sweep.
func lockstepPair(t *testing.T, res *ilr.Result, mode cpu.Mode, input []byte) (*cpu.Pipeline, *emu.Machine) {
	t.Helper()
	var (
		p   *cpu.Pipeline
		m   *emu.Machine
		err error
	)
	switch mode {
	case cpu.ModeBaseline:
		p, err = cpu.New(res.Orig, cpu.DefaultConfig(cpu.ModeBaseline), nil, nil)
		if err == nil {
			m, err = emu.NewMachine(res.Orig, emu.Config{Mode: emu.ModeNative, Input: input})
		}
	case cpu.ModeVCFR:
		p, err = cpu.New(res.VCFR, cpu.DefaultConfig(cpu.ModeVCFR), res.Tables, res.RandRA)
		if err == nil {
			m, err = emu.NewMachine(res.VCFR, emu.Config{
				Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA, Input: input})
		}
	default:
		t.Fatalf("no lockstep reference for mode %v", mode)
	}
	if err != nil {
		t.Fatal(err)
	}
	p.SetInput(input)
	return p, m
}

// lockstep steps the cycle-level pipeline and the reference interpreter one
// instruction at a time and compares the complete architectural state
// (registers, flags, PC, halt status) after every step — a far stronger
// invariant than output equality.
func lockstep(t *testing.T, p *cpu.Pipeline, m *emu.Machine, steps int) {
	t.Helper()
	for step := 0; step < steps; step++ {
		pRunning, pErr := p.Step()
		mRunning, mErr := m.Step()
		if (pErr != nil) != (mErr != nil) {
			t.Fatalf("step %d: error divergence: pipeline=%v machine=%v", step, pErr, mErr)
		}
		if pErr != nil {
			return
		}
		ps, ms := p.State(), m.State()
		if ps.R != ms.R {
			t.Fatalf("step %d (pc %#x): registers diverged\n pipe %v\n mach %v",
				step, p.PC(), ps.R, ms.R)
		}
		if ps.Z != ms.Z || ps.N != ms.N || ps.C != ms.C || ps.V != ms.V {
			t.Fatalf("step %d: flags diverged", step)
		}
		if p.PC() != m.PC() {
			t.Fatalf("step %d: PC diverged %#x vs %#x", step, p.PC(), m.PC())
		}
		if pRunning != mRunning {
			t.Fatalf("step %d: halt divergence", step)
		}
		if !pRunning {
			return
		}
	}
}

// TestPipelineLockstepWithEmulator runs the lockstep comparison over
// randomly generated programs — instruction-mix coverage the hand-written
// workloads don't reach.
func TestPipelineLockstepWithEmulator(t *testing.T) {
	const steps = 30_000
	for seed := uint32(100); seed < 106; seed++ {
		w := workloads.Random(seed)
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeVCFR} {
			t.Run(fmt.Sprintf("rand-%d/%v", seed, mode), func(t *testing.T) {
				p, m := lockstepPair(t, res, mode, w.Input)
				lockstep(t, p, m, steps)
			})
		}
	}
}

// TestDifferentialSweepAllWorkloads is the differential sweep: every SPEC
// analog workload, under several randomized ILR layouts (seed and spread
// both derived per cell, like the experiment runner derives them), compared
// against the reference interpreter in lockstep for both the baseline and
// the VCFR pipeline. A rewriter layout that breaks any instruction sequence
// anywhere in the corpus diverges here within a few thousand steps.
func TestDifferentialSweepAllWorkloads(t *testing.T) {
	steps := 15_000
	layouts := 3
	if testing.Short() {
		steps, layouts = 4_000, 1
	}
	spreads := []int{2, 16, 64}
	for _, name := range workloads.SpecNames {
		w, err := workloads.ByName(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		for li := 0; li < layouts; li++ {
			// Derive the layout seed the same way the harness derives cell
			// seeds, so the sweep exercises layouts the experiments will
			// actually run under.
			seed := harness.CellSeed(42, "lockstep", fmt.Sprintf("%s/layout-%d", name, li))
			opts := ilr.Options{Seed: seed, Spread: spreads[li%len(spreads)]}
			res, err := ilr.Rewrite(w.Img, opts)
			if err != nil {
				t.Fatalf("%s layout %d: %v", name, li, err)
			}
			for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeVCFR} {
				t.Run(fmt.Sprintf("%s/layout-%d/%v", name, li, mode), func(t *testing.T) {
					t.Parallel()
					p, m := lockstepPair(t, res, mode, w.Input)
					lockstep(t, p, m, steps)
				})
			}
		}
	}
}
