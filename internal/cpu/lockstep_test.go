package cpu

import (
	"testing"

	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

// TestPipelineLockstepWithEmulator steps the cycle-level pipeline and the
// reference interpreter one instruction at a time and compares the complete
// architectural state (registers, flags, halt status) after every step — a
// far stronger invariant than output equality. Run for the baseline and for
// VCFR (against the VCFR-mode interpreter).
func TestPipelineLockstepWithEmulator(t *testing.T) {
	const steps = 30_000
	for seed := uint32(100); seed < 106; seed++ {
		w := workloads.Random(seed)
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}

		type pair struct {
			name string
			p    *Pipeline
			m    *emu.Machine
		}
		basePipe, err := New(res.Orig, DefaultConfig(ModeBaseline), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		baseMach, err := emu.NewMachine(res.Orig, emu.Config{Mode: emu.ModeNative})
		if err != nil {
			t.Fatal(err)
		}
		vcfrPipe, err := New(res.VCFR, DefaultConfig(ModeVCFR), res.Tables, res.RandRA)
		if err != nil {
			t.Fatal(err)
		}
		vcfrMach, err := emu.NewMachine(res.VCFR, emu.Config{
			Mode: emu.ModeVCFR, Trans: res.Tables, RandRA: res.RandRA})
		if err != nil {
			t.Fatal(err)
		}
		for _, pr := range []pair{
			{"baseline", basePipe, baseMach},
			{"vcfr", vcfrPipe, vcfrMach},
		} {
			for step := 0; step < steps; step++ {
				pRunning, pErr := pr.p.Step()
				mRunning, mErr := pr.m.Step()
				if (pErr != nil) != (mErr != nil) {
					t.Fatalf("seed %d %s step %d: error divergence: pipeline=%v machine=%v",
						seed, pr.name, step, pErr, mErr)
				}
				if pErr != nil {
					break
				}
				ps, ms := pr.p.State(), pr.m.State()
				if ps.R != ms.R {
					t.Fatalf("seed %d %s step %d (pc %#x): registers diverged\n pipe %v\n mach %v",
						seed, pr.name, step, pr.p.PC(), ps.R, ms.R)
				}
				if ps.Z != ms.Z || ps.N != ms.N || ps.C != ms.C || ps.V != ms.V {
					t.Fatalf("seed %d %s step %d: flags diverged", seed, pr.name, step)
				}
				if pr.p.PC() != pr.m.PC() {
					t.Fatalf("seed %d %s step %d: PC diverged %#x vs %#x",
						seed, pr.name, step, pr.p.PC(), pr.m.PC())
				}
				if pRunning != mRunning {
					t.Fatalf("seed %d %s step %d: halt divergence", seed, pr.name, step)
				}
				if !pRunning {
					break
				}
			}
		}
	}
}
