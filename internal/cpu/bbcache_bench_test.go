package cpu_test

import (
	"fmt"
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/ilr"
	"vcfr/internal/workloads"
)

// BenchmarkPipelineExecute is the block cache's direct A/B: one pipeline,
// one workload, execute-driven, with the cache enabled (the default) and
// with Config.NoBlockCache forcing the per-instruction decode path. The
// ns/instr gap between the two variants is the cache's whole effect — the
// numbers quoted in EXPERIMENTS.md's "Simulator throughput" table.
//
//	go test ./internal/cpu -bench PipelineExecute -benchtime 3x
func BenchmarkPipelineExecute(b *testing.B) {
	const cap = 60_000
	w := workloads.MustByName("h264ref", 1)
	res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR} {
		for _, noCache := range []bool{false, true} {
			variant := "cached"
			if noCache {
				variant = "direct"
			}
			b.Run(fmt.Sprintf("%v/%s", mode, variant), func(b *testing.B) {
				var insts uint64
				for i := 0; i < b.N; i++ {
					p := pipeFor(b, res, mode, w.Input, func(c *cpu.Config) {
						c.NoBlockCache = noCache
					})
					r, err := p.Run(cap)
					if err != nil {
						b.Fatal(err)
					}
					insts += r.Stats.Instructions
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(insts), "ns/instr")
			})
		}
	}
}
