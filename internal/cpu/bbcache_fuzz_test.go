package cpu_test

import (
	"testing"

	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
	"vcfr/internal/program"
	"vcfr/internal/workloads"
)

// FuzzBlockCacheInvalidation drives a block-cached pipeline and a
// per-instruction reference pipeline through a fuzzed schedule of mid-run
// events — code-byte rewrites (the shape of a mid-run re-randomization),
// injector arming/disarming at arbitrary instruction indices, explicit
// invalidations, and uneven run-segment boundaries — and demands identical
// architectural state, identical counters, and identical errors after every
// segment. Any stale cached decode, missed invalidation, or mis-batched
// statistic diverges the pair.
//
// The script is interpreted as 4-byte records [action, a, b, c]:
//
//	action%6 == 0  run a segment of 1 + (a|b<<8)%6000 instructions
//	action%6 == 1  rewrite the text byte at offset (a|b<<8)%len(text) to c
//	               on both pipelines, then InvalidateBlocks (a re-rand poke)
//	action%6 == 2  arm deterministic injector hooks parameterized by a, b
//	action%6 == 3  disarm the injector
//	action%6 == 4  full mid-run re-randomization: rewrite the program with a
//	               fresh seed derived from a|b<<8 and swap both pipelines
//	               onto the new layout (no-op under baseline mode)
//	action%6 == 5  scheduler context switch: SwitchIn on both pipelines —
//	               the DRC/iTLB flush plus per-process-key block drop a
//	               multi-tenant cluster charges when a core changes tenants.
//	               The cached pipeline loses its memoized blocks, the direct
//	               one has none: timing and state must still agree exactly.
func FuzzBlockCacheInvalidation(f *testing.F) {
	f.Add(uint32(300), []byte{0, 100, 10, 0, 1, 40, 0, byte(isa.OpNop), 0, 200, 20, 0})
	f.Add(uint32(301), []byte{0, 0, 4, 0, 2, 7, 3, 0, 0, 0, 8, 0, 3, 0, 0, 0, 0, 0, 40, 0})
	f.Add(uint32(302), []byte{1, 0, 0, 0xff, 0, 50, 0, 0, 1, 1, 0, 0x7f, 0, 50, 0, 0})
	f.Add(uint32(304), []byte{2, 251, 1, 0, 0, 16, 39, 0, 1, 13, 1, 0x55, 0, 232, 3, 0})
	// Re-randomization schedules: swap-then-run, run-swap-run under an armed
	// injector, and a swap racing a text poke.
	f.Add(uint32(301), []byte{4, 1, 0, 0, 0, 100, 10, 0, 4, 2, 0, 0, 0, 200, 20, 0})
	f.Add(uint32(305), []byte{0, 16, 1, 0, 2, 9, 4, 0, 4, 77, 0, 0, 0, 100, 30, 0, 3, 0, 0, 0})
	f.Add(uint32(302), []byte{1, 12, 0, 0x40, 4, 5, 1, 0, 0, 150, 8, 0, 1, 3, 0, 0x11, 0, 90, 2, 0})
	// Context-switch schedules: run-switch-run, a switch racing an armed
	// injector, and a switch back-to-back with a re-randomization swap.
	f.Add(uint32(300), []byte{0, 100, 10, 0, 5, 0, 0, 0, 0, 200, 20, 0})
	f.Add(uint32(304), []byte{2, 17, 2, 0, 0, 60, 5, 0, 5, 0, 0, 0, 0, 90, 1, 0, 3, 0, 0, 0})
	f.Add(uint32(301), []byte{0, 30, 2, 0, 4, 9, 0, 0, 5, 0, 0, 0, 0, 150, 12, 0})

	f.Fuzz(func(t *testing.T, seed uint32, script []byte) {
		seed = 300 + seed%8 // a small stable pool keeps rewrites cheap
		w := workloads.Random(seed)
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err) // workload generation is deterministic; never fails
		}
		mode := []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR}[seed%3]
		build := func(noCache bool) *cpu.Pipeline {
			return pipeFor(t, res, mode, w.Input, func(c *cpu.Config) {
				c.SampleEvery = 1531
				c.ContextSwitchEvery = 2753
				c.NoBlockCache = noCache
			})
		}
		cached, direct := build(false), build(true)

		// The executed image: pokes must land on the bytes this mode
		// actually fetches (the scattered/VCFR image, not the original).
		executed := func(r *ilr.Result) *program.Image {
			switch mode {
			case cpu.ModeNaiveILR:
				return r.Scattered
			case cpu.ModeVCFR:
				return r.VCFR
			}
			return r.Orig
		}
		text := executed(res).Seg("text")
		if text == nil || len(text.Data) == 0 {
			t.Skip("no text segment")
		}

		hooks := func(a, b byte) *cpu.InjectHooks {
			mod := uint64(a)%251 + 2
			hit := uint64(b) % mod
			return &cpu.InjectHooks{
				FetchBytes: func(seq uint64, addr uint32, buf []byte) {
					if seq%mod == hit {
						buf[len(buf)-1] ^= 0x01 // beyond most encodings: usually harmless
					}
				},
				Outcome: func(seq uint64, in isa.Inst, out *emu.Outcome) {
					if seq%mod == hit && out.MemKind != emu.MemNone {
						out.MemAddr ^= 4 // perturb the timed DL1 access
					}
				},
			}
		}

		compare := func(stage int) bool {
			t.Helper()
			cs, ds := cached.State(), direct.State()
			if cs.R != ds.R || cs.Z != ds.Z || cs.N != ds.N || cs.C != ds.C || cs.V != ds.V {
				t.Fatalf("record %d: architectural state diverged", stage)
			}
			if cached.PC() != direct.PC() || cs.Halted != ds.Halted {
				t.Fatalf("record %d: pc/halt diverged: %#x/%v vs %#x/%v",
					stage, cached.PC(), cs.Halted, direct.PC(), ds.Halted)
			}
			return !cs.Halted
		}

		var ran uint64
		for rec := 0; rec+4 <= len(script) && ran < 60_000; rec += 4 {
			action, a, b, c := script[rec], script[rec+1], script[rec+2], script[rec+3]
			switch action % 6 {
			case 0:
				ran += 1 + (uint64(a)|uint64(b)<<8)%6000
				cr, cerr := cached.Run(ran)
				dr, derr := direct.Run(ran)
				if (cerr == nil) != (derr == nil) ||
					(cerr != nil && cerr.Error() != derr.Error()) {
					t.Fatalf("record %d: error diverged:\n cached: %v\n direct: %v", rec, cerr, derr)
				}
				diffResults(t, "fuzz segment", cr, dr)
				if cerr != nil || !compare(rec) {
					return
				}
			case 1:
				off := (uint32(a) | uint32(b)<<8) % uint32(len(text.Data))
				cached.State().Mem.SetByte(text.Addr+off, c)
				direct.State().Mem.SetByte(text.Addr+off, c)
				cached.InvalidateBlocks()
				direct.InvalidateBlocks()
			case 2:
				cached.SetInjector(hooks(a, b))
				direct.SetInjector(hooks(a, b))
			case 3:
				cached.SetInjector(nil)
				direct.SetInjector(nil)
			case 4:
				if mode == cpu.ModeBaseline {
					break // baseline has no layout to swap
				}
				next, err := res.Rerandomize(int64(seed)*1000 + int64(uint32(a)|uint32(b)<<8))
				if err != nil {
					t.Fatal(err) // deterministic rewrite; never fails
				}
				img := executed(next)
				if cerr := cached.Rerandomize(img, next.Tables, next.RandRA); cerr != nil {
					t.Fatalf("record %d: cached swap: %v", rec, cerr)
				}
				if derr := direct.Rerandomize(img, next.Tables, next.RandRA); derr != nil {
					t.Fatalf("record %d: direct swap: %v", rec, derr)
				}
				res = next
				// Pokes must now land on the new epoch's bytes.
				if nt := img.Seg("text"); nt != nil && len(nt.Data) > 0 {
					text = nt
				}
				if !compare(rec) {
					return
				}
			case 5:
				cached.SwitchIn()
				direct.SwitchIn()
			}
		}
		// Drain to a final common cap so every schedule ends in a compared
		// state even when the script had no trailing run record.
		cr, cerr := cached.Run(ran + 2000)
		dr, derr := direct.Run(ran + 2000)
		if (cerr == nil) != (derr == nil) || (cerr != nil && cerr.Error() != derr.Error()) {
			t.Fatalf("final drain: error diverged:\n cached: %v\n direct: %v", cerr, derr)
		}
		diffResults(t, "final drain", cr, dr)
		compare(len(script))
	})
}
