package cpu

import (
	"strings"
	"testing"

	"vcfr/internal/ilr"
)

func clusterProcs(t *testing.T) []ClusterProc {
	t.Helper()
	a := rewriteSrc(t, "fib", fibSrc)
	b, err := ilr.Rewrite(a.Orig, ilr.Options{Seed: 555}) // same program, different epoch
	if err != nil {
		t.Fatal(err)
	}
	c := rewriteSrc(t, "calls", callHeavySrc)
	return []ClusterProc{
		{Img: a.VCFR, Trans: a.Tables, RandRA: a.RandRA},
		{Img: b.VCFR, Trans: b.Tables, RandRA: b.RandRA},
		{Img: c.VCFR, Trans: c.Tables, RandRA: c.RandRA},
	}
}

func TestClusterRunsIndependentProcesses(t *testing.T) {
	cl, err := NewCluster(DefaultConfig(ModeVCFR), clusterProcs(t))
	if err != nil {
		t.Fatal(err)
	}
	results, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Two differently randomized copies of the same program agree with each
	// other; the third process computes its own answer.
	if string(results[0].Out) != "6765" || string(results[1].Out) != "6765" {
		t.Errorf("fib cores: %q, %q", results[0].Out, results[1].Out)
	}
	if string(results[2].Out) != "144000" {
		t.Errorf("calls core: %q", results[2].Out)
	}
	for i, r := range results {
		if !r.Halted {
			t.Errorf("core %d did not halt", i)
		}
		if r.DRC.Lookups == 0 {
			t.Errorf("core %d never used its private DRC", i)
		}
	}
	// Shared L2: the per-core views report the same (shared) L2 counters.
	if results[0].L2.Accesses != results[2].L2.Accesses {
		t.Error("cores disagree about the shared L2 counters")
	}
}

// TestClusterSharedL2Contention: co-running raises a core's cycle count
// relative to running alone (shared L2 capacity), but never changes results.
func TestClusterSharedL2Contention(t *testing.T) {
	procs := clusterProcs(t)

	solo, err := NewCluster(DefaultConfig(ModeVCFR), procs[:1])
	if err != nil {
		t.Fatal(err)
	}
	soloRes, err := solo.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	co, err := NewCluster(DefaultConfig(ModeVCFR), procs)
	if err != nil {
		t.Fatal(err)
	}
	coRes, err := co.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(soloRes[0].Out) != string(coRes[0].Out) {
		t.Errorf("co-running changed output: %q vs %q", soloRes[0].Out, coRes[0].Out)
	}
	if coRes[0].Stats.Instructions != soloRes[0].Stats.Instructions {
		t.Error("co-running changed the instruction count")
	}
}

func TestClusterMixedModes(t *testing.T) {
	a := rewriteSrc(t, "fib", fibSrc)
	cl, err := NewCluster(DefaultConfig(ModeVCFR), []ClusterProc{
		{Img: a.VCFR, Trans: a.Tables, RandRA: a.RandRA},
		{Img: a.Orig, Mode: ModeBaseline},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(results[0].Out) != string(results[1].Out) {
		t.Errorf("protected and unprotected cores disagree: %q vs %q",
			results[0].Out, results[1].Out)
	}
	if results[1].DRC.Lookups != 0 {
		t.Error("baseline core used a DRC")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(DefaultConfig(ModeVCFR), nil); err == nil {
		t.Error("empty cluster accepted")
	}
	a := rewriteSrc(t, "fib", fibSrc)
	if _, err := NewCluster(DefaultConfig(ModeVCFR), []ClusterProc{
		{Img: a.VCFR /* missing translator */},
	}); err == nil || !strings.Contains(err.Error(), "Translator") {
		t.Errorf("VCFR core without translator accepted: %v", err)
	}
}
