package cpu

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/ilr"
	"vcfr/internal/stats"
)

func clusterProcs(t *testing.T) []ClusterProc {
	t.Helper()
	a := rewriteSrc(t, "fib", fibSrc)
	b, err := ilr.Rewrite(a.Orig, ilr.Options{Seed: 555}) // same program, different epoch
	if err != nil {
		t.Fatal(err)
	}
	c := rewriteSrc(t, "calls", callHeavySrc)
	return []ClusterProc{
		{Img: a.VCFR, Trans: a.Tables, RandRA: a.RandRA},
		{Img: b.VCFR, Trans: b.Tables, RandRA: b.RandRA},
		{Img: c.VCFR, Trans: c.Tables, RandRA: c.RandRA},
	}
}

func TestClusterRunsIndependentProcesses(t *testing.T) {
	cl, err := NewCluster(DefaultConfig(ModeVCFR), clusterProcs(t))
	if err != nil {
		t.Fatal(err)
	}
	results, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	// Two differently randomized copies of the same program agree with each
	// other; the third process computes its own answer.
	if string(results[0].Out) != "6765" || string(results[1].Out) != "6765" {
		t.Errorf("fib cores: %q, %q", results[0].Out, results[1].Out)
	}
	if string(results[2].Out) != "144000" {
		t.Errorf("calls core: %q", results[2].Out)
	}
	for i, r := range results {
		if !r.Halted {
			t.Errorf("core %d did not halt", i)
		}
		if r.DRC.Lookups == 0 {
			t.Errorf("core %d never used its private DRC", i)
		}
	}
	// Shared L2: the per-core views report the same (shared) L2 counters.
	if results[0].L2.Accesses != results[2].L2.Accesses {
		t.Error("cores disagree about the shared L2 counters")
	}
}

// TestClusterSharedL2Contention: co-running raises a core's cycle count
// relative to running alone (shared L2 capacity), but never changes results.
func TestClusterSharedL2Contention(t *testing.T) {
	procs := clusterProcs(t)

	solo, err := NewCluster(DefaultConfig(ModeVCFR), procs[:1])
	if err != nil {
		t.Fatal(err)
	}
	soloRes, err := solo.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	co, err := NewCluster(DefaultConfig(ModeVCFR), procs)
	if err != nil {
		t.Fatal(err)
	}
	coRes, err := co.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(soloRes[0].Out) != string(coRes[0].Out) {
		t.Errorf("co-running changed output: %q vs %q", soloRes[0].Out, coRes[0].Out)
	}
	if coRes[0].Stats.Instructions != soloRes[0].Stats.Instructions {
		t.Error("co-running changed the instruction count")
	}
}

func TestClusterMixedModes(t *testing.T) {
	a := rewriteSrc(t, "fib", fibSrc)
	cl, err := NewCluster(DefaultConfig(ModeVCFR), []ClusterProc{
		{Img: a.VCFR, Trans: a.Tables, RandRA: a.RandRA},
		{Img: a.Orig, Mode: ModeBaseline},
	})
	if err != nil {
		t.Fatal(err)
	}
	results, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(results[0].Out) != string(results[1].Out) {
		t.Errorf("protected and unprotected cores disagree: %q vs %q",
			results[0].Out, results[1].Out)
	}
	if results[1].DRC.Lookups != 0 {
		t.Error("baseline core used a DRC")
	}
}

// TestClusterSoloMatchesPipeline is the refactor's anchor: a 1-core,
// 1-tenant cluster must produce a byte-identical Result — counters, timing,
// output, and the sampled interval series — to the plain single-core
// pipeline with the block cache on. This proves the scheduler advances
// tenants through the same cached advanceTo path, not a second interpreter,
// and that solo tenants are never charged a switch-in.
func TestClusterSoloMatchesPipeline(t *testing.T) {
	res := rewriteSrc(t, "callheavy", callHeavySrc)
	for _, mode := range []Mode{ModeBaseline, ModeNaiveILR, ModeVCFR} {
		t.Run(mode.String(), func(t *testing.T) {
			// 997 is prime: sample edges align with neither quantum nor
			// block boundaries.
			single := runPipe(t, res, mode, func(c *Config) { c.SampleEvery = 997 })
			cfg := DefaultConfig(mode)
			cfg.SampleEvery = 997
			var proc ClusterProc
			switch mode {
			case ModeBaseline:
				proc = ClusterProc{Img: res.Orig}
			case ModeNaiveILR:
				proc = ClusterProc{Img: res.Scattered, Trans: res.Tables}
			case ModeVCFR:
				proc = ClusterProc{Img: res.VCFR, Trans: res.Tables, RandRA: res.RandRA}
			}
			cl, err := NewCluster(cfg, []ClusterProc{proc})
			if err != nil {
				t.Fatal(err)
			}
			out, err := cl.Run(0)
			if err != nil {
				t.Fatal(err)
			}
			a, err := json.Marshal(single)
			if err != nil {
				t.Fatal(err)
			}
			b, err := json.Marshal(out[0])
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(a, b) {
				t.Errorf("solo cluster result diverges from the single-core pipeline:\npipeline %s\ncluster  %s", a, b)
			}
			if len(single.Intervals) != len(out[0].Intervals) {
				t.Fatalf("snapshot counts diverge: pipeline %d, cluster %d",
					len(single.Intervals), len(out[0].Intervals))
			}
			for i := range single.Intervals {
				d, err := out[0].Intervals[i].Delta(single.Intervals[i])
				if err != nil {
					t.Fatalf("snapshot %d: %v", i, err)
				}
				d.Each(func(desc stats.Desc, v stats.Value) {
					if v.U != 0 || v.G != 0 || v.F != 0 {
						t.Errorf("snapshot %d: %s diverges between cluster and pipeline", i, desc.Name)
					}
				})
			}
			if st := cl.SchedStats(); st[0].Switches != 0 {
				t.Errorf("solo tenant charged %d switch-ins", st[0].Switches)
			}
		})
	}
}

// TestClusterTimeSharing: more tenants than cores. Scheduling must never
// change architectural results (outputs, instruction counts match the
// one-tenant-per-core run); it must charge the paper's switch-in cost (DRC
// flushes on the VCFR tenants, block-cache drops counted per core).
func TestClusterTimeSharing(t *testing.T) {
	procs := clusterProcs(t)

	wide, err := NewCluster(DefaultConfig(ModeVCFR), procs)
	if err != nil {
		t.Fatal(err)
	}
	wideRes, err := wide.Run(0)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := NewScheduledCluster(DefaultConfig(ModeVCFR), SchedConfig{Cores: 1, Quantum: 50}, procs)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Cores() != 1 {
		t.Fatalf("Cores() = %d, want 1", cl.Cores())
	}
	out, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if string(out[i].Out) != string(wideRes[i].Out) {
			t.Errorf("tenant %d: time-sharing changed output: %q vs %q", i, out[i].Out, wideRes[i].Out)
		}
		if out[i].Stats.Instructions != wideRes[i].Stats.Instructions {
			t.Errorf("tenant %d: time-sharing changed the instruction count", i)
		}
		if !out[i].Halted {
			t.Errorf("tenant %d did not halt", i)
		}
		if out[i].DRC.Flushes == 0 {
			t.Errorf("tenant %d paid no DRC flushes under time-sharing", i)
		}
		if wideRes[i].DRC.Flushes != 0 {
			t.Errorf("tenant %d paid DRC flushes with a core to itself", i)
		}
	}
	st := cl.SchedStats()
	if len(st) != 1 {
		t.Fatalf("SchedStats() = %d cores, want 1", len(st))
	}
	if st[0].TenantsBound != 3 {
		t.Errorf("tenants bound = %d, want 3", st[0].TenantsBound)
	}
	if st[0].Switches == 0 || st[0].Quanta < st[0].Switches {
		t.Errorf("implausible scheduling counters: %+v", st[0])
	}
	if st[0].BlockDrops == 0 {
		t.Errorf("per-process-key tenants switched without block-cache drops: %+v", st[0])
	}
	if st[0].Preemptions == 0 {
		t.Errorf("50-instruction quanta never preempted anyone: %+v", st[0])
	}
}

// TestClusterTenantFaultIsolated: one tenant's fault lands on that tenant's
// row; co-tenants run to completion (the sweep runner's per-cell error-row
// convention, applied to the cluster).
func TestClusterTenantFaultIsolated(t *testing.T) {
	snoop := asm.MustAssemble("snoop", `
.entry main
main:
	movi r2, 0x20000000   ; TableBase
	load r3, [r2+0]       ; user-space read of an invisible page
	halt
`)
	bad, err := ilr.Rewrite(snoop, ilr.Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	good := rewriteSrc(t, "fib", fibSrc)
	cl, err := NewScheduledCluster(DefaultConfig(ModeVCFR), SchedConfig{Cores: 1}, []ClusterProc{
		{Img: bad.VCFR, Trans: bad.Tables, RandRA: bad.RandRA},
		{Img: good.VCFR, Trans: good.Tables, RandRA: good.RandRA},
	})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Run(0)
	if err == nil || !errors.Is(err, ErrTablePageAccess) || !strings.Contains(err.Error(), "tenant 0") {
		t.Errorf("Run error = %v, want tenant 0's ErrTablePageAccess", err)
	}
	if len(out) != 2 {
		t.Fatalf("results = %d, want one per tenant", len(out))
	}
	if string(out[1].Out) != "6765" || !out[1].Halted {
		t.Errorf("surviving tenant did not finish: halted=%v out=%q", out[1].Halted, out[1].Out)
	}
	errs := cl.Errors()
	if !errors.Is(errs[0], ErrTablePageAccess) {
		t.Errorf("Errors()[0] = %v, want ErrTablePageAccess", errs[0])
	}
	if errs[1] != nil {
		t.Errorf("Errors()[1] = %v, want nil", errs[1])
	}
}

// TestClusterRunContextCancelled: a cancelled context stops the scheduler
// between quanta and still hands back one (partial) result per tenant.
func TestClusterRunContextCancelled(t *testing.T) {
	cl, err := NewCluster(DefaultConfig(ModeVCFR), clusterProcs(t))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := cl.RunContext(ctx, 0)
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if len(out) != 3 {
		t.Fatalf("partial results = %d, want one per tenant", len(out))
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := NewCluster(DefaultConfig(ModeVCFR), nil); err == nil {
		t.Error("empty cluster accepted")
	}
	a := rewriteSrc(t, "fib", fibSrc)
	if _, err := NewCluster(DefaultConfig(ModeVCFR), []ClusterProc{
		{Img: a.VCFR /* missing translator */},
	}); err == nil || !strings.Contains(err.Error(), "Translator") {
		t.Errorf("VCFR core without translator accepted: %v", err)
	}
}
