package cpu

import (
	"context"
	"errors"
	"fmt"

	"vcfr/internal/emu"
	"vcfr/internal/isa"
	"vcfr/internal/mem"
	"vcfr/internal/program"
	"vcfr/internal/stats"
)

// Stats aggregates one simulation's counters.
type Stats struct {
	Cycles       uint64
	Instructions uint64

	Branches   uint64 // executed conditional branches
	Jumps      uint64 // executed unconditional direct jumps
	Calls      uint64
	Rets       uint64
	Indirects  uint64 // jmpr + callr executed
	Loads      uint64
	Stores     uint64
	Syscalls   uint64
	Unrand     uint64 // instructions executed at un-randomized addresses
	FetchLines uint64 // line fetches issued by the front end

	// Stall breakdown (cycles).
	FetchStall    uint64
	MemStall      uint64
	ExecStall     uint64
	ControlStall  uint64
	DRCStall      uint64
	SyscallCycles uint64

	ITLBAccesses uint64
	ITLBMisses   uint64

	BPred BPredStats
}

// IPC returns instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Result is everything one run produces, including the component statistics
// the experiments and the power model consume.
type Result struct {
	Stats Stats
	IL1   mem.CacheStats
	DL1   mem.CacheStats
	L2    mem.CacheStats
	DRAM  mem.DRAMStats
	DRC   DRCStats
	BPred BPredStats

	Out      []byte
	ExitCode uint32
	Halted   bool

	// Intervals holds the cumulative mid-run snapshots taken every
	// Config.SampleEvery instructions (plus one at run end); empty when
	// sampling is off. It is excluded from the Result's JSON shape — the
	// wire form is the derived results.Interval series.
	Intervals []stats.Snapshot `json:"-"`
}

// ErrControlViolation mirrors emu.ErrControlViolation for the pipeline: a
// control transfer targeted the prohibited un-randomized address of a
// randomized instruction.
var ErrControlViolation = errors.New("cpu: control transfer to prohibited un-randomized address")

// ErrTablePageAccess reports a user-space data access to the
// randomization/de-randomization table pages. The paper protects them with a
// TLB page-visibility bit (Sec. IV-B): "during execution of an application,
// these address translation tables can only be accessed by the
// micro-architecture".
var ErrTablePageAccess = errors.New("cpu: user-space access to invisible translation-table page")

// noLine marks an empty byte queue.
const noLine = ^uint32(0)

// Pipeline is the cycle-accounting machine.
type Pipeline struct {
	cfg    Config
	state  *emu.State
	mem    *program.AddressSpace
	hier   *mem.Hierarchy
	gsh    *gshare
	btb    *btb
	ras    *ras
	drc    *drc
	drc2   *drc // optional dedicated level-2 buffer (Config.DRC2Entries)
	trans  emu.Translator
	randRA map[uint32]uint32
	bitmap map[uint32]bool

	pc         uint32 // UPC: the original-space cursor
	inRand     bool
	curLine    uint32
	asTag      uint32 // per-tenant physical page tag (see phys); 0 = identity
	tableSlots uint32
	tableEnd   uint32 // TableBase + tableSlots*8, hoisted out of stepTail
	itlb       *itlb
	stats      Stats

	// reg is the lazily built live counter registry (see register.go);
	// intervals accumulates the cumulative snapshots Config.SampleEvery
	// asks for. nextSample is the next sampling edge, persistent across
	// advanceTo slices so a scheduler preempting mid-window (multicore
	// quanta) keeps every snapshot on an exact SampleEvery boundary; 0
	// means not yet initialized.
	reg        *stats.Registry
	intervals  []stats.Snapshot
	nextSample uint64

	// pendingDerands counts auto-de-randomizing stack-bitmap loads performed
	// by the current instruction (timing charged after Exec).
	pendingDerands int

	issue  issueState
	tracer func(TraceEvent)

	// inject, when non-nil, is the fault-injection hook set (see inject.go);
	// injectSeq latches the executing instruction's sequence number at the
	// top of Step for hooks that fire after the commit counter advances
	// (Translated runs inside control-flow resolution). injectOut is the
	// scratch Outcome handed to the Outcome hook: passing a pointer to a
	// struct field instead of a stack variable keeps the hot loop's Outcome
	// from escaping to the heap on every Step.
	inject    *InjectHooks
	injectSeq uint64
	injectOut emu.Outcome

	// bb is the basic-block cache of pre-decoded instructions (bbcache.go);
	// nil when Config.NoBlockCache disabled it.
	bb *blockCache

	// recorder captures each executed instruction's functional outcome
	// (trace capture); replay, when non-nil, substitutes a recorded stream
	// for FetchDecode+Exec (trace replay). replayRecs/replayPos are the
	// zero-copy fast path for sources exposing a materialized slice;
	// replayScratch backs the pointer handed out on the interface path.
	// See replay.go.
	recorder      func(ExecRecord)
	replay        ReplaySource
	replayRecs    []ExecRecord
	replayPos     int
	replayScratch ExecRecord
}

// New builds a pipeline for img under cfg. trans and randRA supply the
// randomization artifacts; both must be nil for ModeBaseline and non-nil
// (trans at least) otherwise.
func New(img *program.Image, cfg Config, trans emu.Translator, randRA map[uint32]uint32) (*Pipeline, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Mode != ModeBaseline && trans == nil {
		return nil, fmt.Errorf("cpu: mode %v requires a Translator", cfg.Mode)
	}
	hier, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	space := program.NewAddressSpace()
	space.LoadImage(img)
	st := emu.NewState(space)
	st.SetSP(emu.DefaultStackTop)

	p := &Pipeline{
		cfg:     cfg,
		state:   st,
		mem:     space,
		hier:    hier,
		gsh:     newGshare(cfg.GshareBits),
		btb:     newBTB(cfg.BTBEntries, cfg.BTBAssoc),
		ras:     newRAS(cfg.RASDepth),
		trans:   trans,
		randRA:  randRA,
		pc:      img.Entry,
		inRand:  cfg.Mode == ModeVCFR,
		curLine: noLine,
		itlb:    newITLB(cfg.ITLBEntries),
	}
	if !cfg.NoBlockCache {
		p.bb = newBlockCache()
	}
	switch cfg.Mode {
	case ModeVCFR:
		p.drc = newDRC(cfg.DRCEntries, cfg.DRCAssoc, cfg.DRCSplit, trans)
		if cfg.DRC2Entries > 0 {
			p.drc2 = newDRC(cfg.DRC2Entries, cfg.DRCAssoc, false, trans)
		}
		p.bitmap = make(map[uint32]bool)
		st.Hooks = emu.Hooks{
			ReturnAddr: p.vcfrReturnAddr,
			LoadedWord: p.vcfrLoadedWord,
			StoredWord: p.vcfrStoredWord,
		}
		p.tableSlots = nextPow2(uint32(translatorLen(trans)))
		p.tableEnd = cfg.TableBase + p.tableSlots*8
	case ModeNaiveILR:
		if orig, ok := trans.ToOrig(img.Entry); ok {
			p.pc = orig
		}
	}
	return p, nil
}

// translatorLen sizes the in-memory table for walk addressing; translators
// that do not expose a length get a default.
func translatorLen(t emu.Translator) int {
	type sized interface{ Len() int }
	if s, ok := t.(sized); ok {
		return s.Len()
	}
	return 4096
}

func nextPow2(v uint32) uint32 {
	n := uint32(1)
	for n < v {
		n <<= 1
	}
	if n == 0 {
		n = 1
	}
	return n
}

// SetInput provides the byte stream served to SysGetChar.
func (p *Pipeline) SetInput(in []byte) { p.state.In = in }

// TraceEvent describes one executed instruction for the tracer: the program
// counter in both spaces, where the bytes were fetched from, and the
// cumulative cycle count before the instruction issued.
type TraceEvent struct {
	Seq     uint64
	UPC     uint32 // original-space program counter
	RPC     uint32 // randomized-space program counter (== UPC when unmapped)
	Storage uint32 // address the bytes were fetched from
	Text    string // disassembled instruction
	Cycle   uint64
}

// SetTracer installs a per-instruction callback (nil disables tracing).
// Tracing does not perturb timing.
func (p *Pipeline) SetTracer(fn func(TraceEvent)) { p.tracer = fn }

func (p *Pipeline) emitTrace(in isa.Inst, sAddr uint32) {
	if p.tracer == nil {
		return
	}
	rpc := p.pc
	if p.cfg.Mode != ModeBaseline && p.trans != nil {
		if r, ok := p.trans.ToRand(p.pc); ok {
			rpc = r
		}
	}
	p.tracer(TraceEvent{
		Seq:     p.stats.Instructions,
		UPC:     p.pc,
		RPC:     rpc,
		Storage: sAddr,
		Text:    in.String(),
		Cycle:   p.stats.Cycles,
	})
}

// State exposes architectural state for tests and the attack harness.
func (p *Pipeline) State() *emu.State { return p.state }

// Hierarchy exposes the memory system (power model, experiments).
func (p *Pipeline) Hierarchy() *mem.Hierarchy { return p.hier }

// PC returns the current original-space program counter.
func (p *Pipeline) PC() uint32 { return p.pc }

func (p *Pipeline) vcfrReturnAddr(next uint32) uint32 {
	if r, ok := p.randRA[next]; ok {
		return r
	}
	return next
}

func (p *Pipeline) vcfrLoadedWord(addr, val uint32) uint32 {
	if !p.bitmap[addr] {
		return val
	}
	if orig, ok := p.trans.ToOrig(val); ok {
		p.pendingDerands++
		return orig
	}
	return val
}

func (p *Pipeline) vcfrStoredWord(addr, val uint32, isCallPush bool) {
	if isCallPush {
		if _, ok := p.trans.ToOrig(val); ok {
			p.bitmap[addr] = true
			return
		}
	}
	delete(p.bitmap, addr)
}

// storageAddr maps the logical pc to where the bytes live.
func (p *Pipeline) storageAddr(pc uint32) uint32 {
	if p.cfg.Mode == ModeNaiveILR {
		if r, ok := p.trans.ToRand(pc); ok {
			return r
		}
	}
	return pc
}

// predictIndex is the PC the predictors are indexed with: the original-space
// PC, or the randomized one under the PredictOnRPC ablation.
func (p *Pipeline) predictIndex(pc uint32) uint32 {
	if p.cfg.PredictOnRPC && p.cfg.Mode == ModeVCFR {
		if r, ok := p.trans.ToRand(pc); ok {
			return r
		}
	}
	return pc
}

// lineOf returns the line-aligned address containing addr.
func (p *Pipeline) lineOf(addr uint32) uint32 {
	return addr &^ uint32(p.cfg.Mem.IL1.LineSize-1)
}

// itlb is the fully associative instruction TLB. A miss pays the page-walk
// latency. The randomization tables' page-visibility bit lives conceptually
// in this structure; the pipeline enforces it in Step.
type itlb struct {
	pages    map[uint32]uint64 // page number -> last-use clock
	cap      int
	clock    uint64
	accesses uint64
	misses   uint64
}

func newITLB(entries int) *itlb {
	return &itlb{pages: make(map[uint32]uint64, entries), cap: entries}
}

// access touches the page containing addr and reports whether it missed.
func (t *itlb) access(addr uint32) bool {
	page := addr >> 12
	t.clock++
	t.accesses++
	if _, ok := t.pages[page]; ok {
		t.pages[page] = t.clock
		return false
	}
	t.misses++
	if len(t.pages) >= t.cap {
		var victim uint32
		oldest := ^uint64(0)
		for pg, use := range t.pages {
			if use < oldest {
				oldest, victim = use, pg
			}
		}
		delete(t.pages, victim)
	}
	t.pages[page] = t.clock
	return true
}

// phys maps a process-virtual address onto the shared hierarchy's physical
// address space: a page-granular per-tenant tag XORed in above the page
// offset. Co-tenants of a cluster occupy distinct physical pages, so equal
// virtual addresses from different processes never alias in a shared cache's
// tags; within one page, locality is untouched. Solo pipelines and tenant 0
// carry tag 0, making the mapping the identity there (byte-identical solo
// timing).
func (p *Pipeline) phys(addr uint32) uint32 { return addr ^ p.asTag }

// fetchLine brings a new line into the byte queue and returns its fetch
// latency. It also fires the next-line prefetcher and the iTLB. The iTLB is
// process-private and virtually indexed; the cache sees physical lines.
func (p *Pipeline) fetchLine(line uint32) int {
	p.stats.FetchLines++
	lat := p.hier.IL1.Access(p.phys(line), false)
	if p.itlb.access(line) {
		lat += p.cfg.PageWalkLatency
	}
	p.hier.IL1.Prefetch(p.phys(line + uint32(p.cfg.Mem.IL1.LineSize)))
	p.curLine = line
	return lat
}

// fetchSupply accounts the front-end bubbles needed to deliver the
// instruction at sAddr (length n) along the sequential/predicted stream,
// where the decoupled front end hides up to FetchAhead cycles.
func (p *Pipeline) fetchSupply(sAddr uint32, n int) uint64 {
	var bubble int
	first := p.lineOf(sAddr)
	last := p.lineOf(sAddr + uint32(n) - 1)
	for line := first; ; line += uint32(p.cfg.Mem.IL1.LineSize) {
		if line != p.curLine {
			if lat := p.fetchLine(line); lat > p.cfg.FetchAhead {
				bubble += lat - p.cfg.FetchAhead
			}
		}
		if line == last {
			break
		}
	}
	return uint64(bubble)
}

// redirectFill accounts the target-line fetch of a control-flow redirect.
// overlap is the number of redirect cycles already being charged, which the
// line fetch proceeds under.
func (p *Pipeline) redirectFill(target uint32, overlap int) uint64 {
	line := p.lineOf(target)
	if line == p.curLine {
		return 0
	}
	lat := p.fetchLine(line)
	if lat > overlap {
		return uint64(lat - overlap)
	}
	return 0
}

// drcWalkAddr is the table-page address a missed key walks to (open-address
// layout: 8 bytes per slot starting at TableBase).
func (p *Pipeline) drcWalkAddr(key uint32) uint32 {
	slot := (key >> 2) & (p.tableSlots - 1)
	return p.cfg.TableBase + slot*8
}

// drcLookup performs a timed DRC access in the given direction. It returns
// the translation (ok=false when the key has no entry) and the stall cycles
// exposed beyond overlap.
func (p *Pipeline) drcLookup(kind lookupKind, key uint32, overlap int) (val uint32, ok bool, stall uint64) {
	val, hit, ok := p.drc.lookup(kind, key)
	if hit {
		return val, ok, 0
	}
	// Optional dedicated level-2 buffer (the paper's considered-and-rejected
	// alternative): a hit there avoids the L2 table walk.
	if p.drc2 != nil {
		p.drc.stats.L2Lookups++
		if _, hit2 := p.drc2.probe(kind, key); hit2 {
			p.drc.stats.L2Hits++
			if p.cfg.DRC2Latency > overlap {
				stall = uint64(p.cfg.DRC2Latency - overlap)
			}
			return val, ok, stall
		}
	}
	p.drc.stats.TableWalks++
	walk := p.hier.L2.Access(p.phys(p.drcWalkAddr(key)), false)
	if walk > overlap {
		stall = uint64(walk - overlap)
	}
	if p.drc2 != nil && ok {
		p.drc2.install(kind, key, val)
	}
	return val, ok, stall
}

// SwitchIn models a scheduler dispatching this pipeline onto a core another
// process just used: process-private translation state (DRC hierarchy,
// iTLB) is flushed and refills cold, and for per-process-key modes —
// everything but the baseline, whose decode is address-space independent —
// the decoded-block memoization is dropped too, since cached blocks encode
// the previous process's randomized layout. The drop is timing-invariant
// (the cache memoizes work, it never changes it), so differential and
// replay equivalence hold across switches.
func (p *Pipeline) SwitchIn() {
	p.contextSwitch()
	if p.cfg.Mode != ModeBaseline {
		p.InvalidateBlocks()
	}
}

// contextSwitch models a switch-out/switch-in pair: process-private
// translation state (DRC hierarchy, iTLB) is flushed.
func (p *Pipeline) contextSwitch() {
	if p.drc != nil {
		p.drc.flush()
	}
	if p.drc2 != nil {
		p.drc2.flush()
	}
	p.itlb.pages = make(map[uint32]uint64, p.itlb.cap)
}

// Step executes one instruction. It returns false once the machine halts.
func (p *Pipeline) Step() (bool, error) {
	if p.state.Halted {
		return false, nil
	}
	if every := p.cfg.ContextSwitchEvery; every > 0 &&
		p.stats.Instructions > 0 && p.stats.Instructions%every == 0 {
		p.contextSwitch()
	}
	var (
		in         isa.Inst
		out        emu.Outcome
		err        error
		recDerands int
		recHalt    bool
	)
	replaying := p.replay != nil
	if replaying {
		rec, done := p.nextReplay()
		if done {
			return false, nil
		}
		in = rec.Inst
		if in.Addr != p.pc {
			return false, fmt.Errorf(
				"cpu: replay divergence at instruction %d: trace UPC %#x, pipeline UPC %#x",
				p.stats.Instructions, in.Addr, p.pc)
		}
		out = emu.Outcome{Taken: rec.Taken, Target: rec.Target, MemKind: rec.MemKind, MemAddr: rec.MemAddr}
		recDerands, recHalt = rec.Derands, rec.Halt
	}
	sAddr := p.storageAddr(p.pc)
	if !replaying {
		if p.inject != nil {
			p.injectSeq = p.stats.Instructions
			if p.inject.FetchBytes != nil {
				in, err = p.fetchDecodeInjected(sAddr)
			} else {
				in, err = emu.FetchDecode(p.mem, sAddr)
			}
		} else {
			in, err = emu.FetchDecode(p.mem, sAddr)
		}
		if err != nil {
			return false, err
		}
		in.Addr = p.pc
	}
	if p.tracer != nil {
		p.emitTrace(in, sAddr)
	}

	// Front end.
	fetchBubble := p.fetchSupply(sAddr, in.Len())
	p.stats.FetchStall += fetchBubble
	cost := 1 + fetchBubble

	// Execute functionally — or take the recorded functional outcome.
	if replaying {
		p.pendingDerands = recDerands
		if recHalt {
			p.state.Halted = true
			p.adoptReplayFinal()
		}
	} else {
		p.pendingDerands = 0
		out, err = emu.Exec(p.state, in)
		if err != nil {
			return false, err
		}
		if p.inject != nil && p.inject.Outcome != nil {
			p.injectOut = out
			p.inject.Outcome(p.stats.Instructions, in, &p.injectOut)
			out = p.injectOut
		}
		if p.recorder != nil {
			p.recorder(ExecRecord{
				Inst:    in,
				Taken:   out.Taken,
				Target:  out.Target,
				MemKind: out.MemKind,
				MemAddr: out.MemAddr,
				Derands: p.pendingDerands,
				Halt:    p.state.Halted,
			})
		}
	}
	p.stats.Instructions++
	if p.cfg.Mode == ModeVCFR && !p.inRand {
		p.stats.Unrand++
	}
	cls := in.Class()
	tail, err := p.stepTail(&in, &out, cls.IsControl() && cls != isa.ClassHalt)
	if err != nil {
		return false, err
	}
	cost += tail

	// Multi-issue: a simple, hazard-free ALU instruction that incurred no
	// stalls joins the current issue group for free. At width 1 coIssues is
	// always false and its state is never consulted, so skip it entirely.
	if p.cfg.IssueWidth > 1 && p.issue.coIssues(p.cfg.IssueWidth, in, out, cost != 1) {
		cost = 0
	}
	p.stats.Cycles += cost
	return !p.state.Halted, nil
}

// stepTail is the shared back half of one executed instruction — identical
// for the per-instruction Step path and the block-cached executor
// (runBlocks): page-visibility enforcement, the self-modification watch,
// execute-stage stalls, auto-de-randomization charges, and control-flow
// resolution (which advances the pc). The returned cost excludes the base
// cycle and the fetch bubble, which the caller owns.
func (p *Pipeline) stepTail(in *isa.Inst, out *emu.Outcome, isCtl bool) (uint64, error) {
	// Page-visibility enforcement: the translation tables are invisible to
	// user-space data accesses.
	if p.cfg.Mode == ModeVCFR && out.MemKind != emu.MemNone &&
		out.MemAddr >= p.cfg.TableBase && out.MemAddr < p.tableEnd {
		return 0, fmt.Errorf("%w: %#x", ErrTablePageAccess, out.MemAddr)
	}
	if p.bb != nil && out.MemKind == emu.MemStore {
		p.bb.noteStore(out.MemAddr)
	}

	// Execution-stage stalls.
	cost := p.execStall(in, out)

	// Auto-de-randomized stack loads each pay a standalone DRC lookup.
	for i := 0; i < p.pendingDerands; i++ {
		// The key was the randomized value; the hook already translated it
		// functionally. Charge a derand lookup on the raw value — we can't
		// recover it here, so account a representative lookup keyed by the
		// load address (documented approximation: one DRC access + possible
		// walk per marked-slot load).
		_, _, stall := p.drcLookup(lookupDerand, out.MemAddr, 0)
		p.stats.DRCStall += stall
		cost += stall
	}

	// Control flow.
	if isCtl {
		ctl, err := p.control(*in, *out)
		if err != nil {
			return 0, err
		}
		cost += ctl
	} else {
		p.pc = in.NextAddr()
	}
	return cost, nil
}

// execStall accounts execute-stage stalls: data-cache misses, long-latency
// arithmetic, and syscalls.
func (p *Pipeline) execStall(in *isa.Inst, out *emu.Outcome) uint64 {
	var stall uint64
	switch out.MemKind {
	case emu.MemLoad:
		p.stats.Loads++
		lat := p.hier.DL1.Access(p.phys(out.MemAddr), false)
		if lat > p.cfg.Mem.DL1.Latency {
			stall += uint64(lat - p.cfg.Mem.DL1.Latency)
		}
	case emu.MemStore:
		p.stats.Stores++
		// Stores retire through the write buffer: traffic, no stall.
		p.hier.DL1.Access(p.phys(out.MemAddr), true)
	}
	p.stats.MemStall += stall

	var execExtra uint64
	switch in.Op {
	case isa.OpMul:
		execExtra = uint64(p.cfg.MulLatency)
	case isa.OpDiv, isa.OpMod:
		execExtra = uint64(p.cfg.DivLatency)
	case isa.OpSys:
		p.stats.Syscalls++
		execExtra = uint64(p.cfg.SyscallLatency)
		p.stats.SyscallCycles += execExtra
	}
	p.stats.ExecStall += execExtra
	return stall + execExtra
}

// resolveTarget converts the architectural (possibly randomized) target into
// the next original-space pc, enforcing the randomized-tag prohibition.
func (p *Pipeline) resolveTarget(target uint32) (uint32, error) {
	if p.cfg.Mode != ModeVCFR {
		return target, nil
	}
	if orig, ok := p.trans.ToOrig(target); ok {
		if p.inject != nil && p.inject.Translated != nil {
			p.inject.Translated(p.injectSeq, target, &orig)
		}
		p.inRand = true
		return orig, nil
	}
	if p.trans.Prohibited(target) {
		return 0, fmt.Errorf("%w: %#x", ErrControlViolation, target)
	}
	p.inRand = false
	return target, nil
}

// control accounts prediction, redirect, and DRC costs for an executed
// control-transfer instruction, and advances the pc.
func (p *Pipeline) control(in isa.Inst, out emu.Outcome) (uint64, error) {
	idx := p.predictIndex(in.Addr)
	var cost uint64

	// Architectural target in the executed space; nextUPC computed below.
	switch in.Class() {
	case isa.ClassBranch:
		p.stats.Branches++
		p.stats.BPred.CondLookups++
		predicted := p.gsh.predict(idx)
		p.gsh.update(idx, out.Taken)
		switch {
		case predicted != out.Taken:
			p.stats.BPred.CondMispred++
			cost += uint64(p.cfg.MispredictPenalty)
			if out.Taken {
				c, err := p.redirect(in, out, p.cfg.MispredictPenalty)
				if err != nil {
					return 0, err
				}
				cost += c
			} else {
				p.pc = in.NextAddr()
				cost += p.redirectFill(p.storageAddr(p.pc), p.cfg.MispredictPenalty)
			}
		case out.Taken:
			c, err := p.predictedTaken(idx, in, out)
			if err != nil {
				return 0, err
			}
			cost += c
		default:
			p.pc = in.NextAddr()
		}
		p.stats.ControlStall += cost
		return cost, nil

	case isa.ClassJump:
		p.stats.Jumps++
		c, err := p.predictedTaken(idx, in, out)
		if err != nil {
			return 0, err
		}
		p.stats.ControlStall += c
		return c, nil

	case isa.ClassCall, isa.ClassCallR:
		if in.Class() == isa.ClassCall {
			p.stats.Calls++
		} else {
			p.stats.Calls++
			p.stats.Indirects++
		}
		var c uint64
		var err error
		if in.Class() == isa.ClassCall {
			c, err = p.predictedTaken(idx, in, out)
		} else {
			c, err = p.indirectResolve(idx, in, out)
		}
		if err != nil {
			return 0, err
		}
		// RAS push: the pair of the fall-through in both spaces.
		nextUPC := in.NextAddr()
		pushed := nextUPC
		if p.cfg.Mode == ModeVCFR {
			if r, ok := p.randRA[nextUPC]; ok {
				pushed = r
				// The randomization-direction DRC lookup that produces the
				// randomized RA. The fall-through address is known as soon as
				// the call is decoded, so the decoupled front end starts the
				// walk in the fetch-ahead shadow.
				_, _, stall := p.drcLookup(lookupRand, nextUPC, p.cfg.FetchAhead)
				p.stats.DRCStall += stall
				c += stall
			}
		}
		p.ras.push(targetPair{orig: nextUPC, rand: pushed})
		p.stats.BPred.RASPushes++
		p.stats.ControlStall += c
		return c, nil

	case isa.ClassRet:
		p.stats.Rets++
		p.stats.Indirects++
		p.stats.BPred.RASPops++
		pair, ok := p.ras.pop()
		if ok && pair.rand == out.Target {
			// Correct RAS prediction: fetch already redirected to pair.orig.
			p.pc = pair.orig
			p.inRandAfterRet(out.Target)
			c := uint64(p.cfg.TakenBubble)
			c += p.redirectFill(p.storageAddr(p.pc), p.cfg.FetchAhead)
			p.stats.ControlStall += c
			return c, nil
		}
		p.stats.BPred.RASMispred++
		cost = uint64(p.cfg.MispredictPenalty)
		c, err := p.redirect(in, out, p.cfg.MispredictPenalty)
		if err != nil {
			return 0, err
		}
		cost += c
		p.stats.ControlStall += cost
		return cost, nil

	case isa.ClassJumpR:
		p.stats.Indirects++
		c, err := p.indirectResolve(idx, in, out)
		if err != nil {
			return 0, err
		}
		p.stats.ControlStall += c
		return c, nil
	}
	return 0, fmt.Errorf("cpu: unexpected control class %v", in.Class())
}

// inRandAfterRet updates the space flag after a correctly predicted return.
func (p *Pipeline) inRandAfterRet(target uint32) {
	if p.cfg.Mode != ModeVCFR {
		return
	}
	if _, ok := p.trans.ToOrig(target); ok {
		p.inRand = true
	} else {
		p.inRand = false
	}
}

// predictedTaken handles a direct transfer that is actually taken: BTB hit
// with the right target is a cheap front-end redirect; otherwise the jump
// resolves at decode (direct transfers carry their target), paying the
// decode-redirect penalty and, under VCFR, a DRC de-randomization of the
// randomized target.
func (p *Pipeline) predictedTaken(idx uint32, in isa.Inst, out emu.Outcome) (uint64, error) {
	p.stats.BPred.BTBLookups++
	pair, hit := p.btb.lookup(idx)
	nextUPC, err := p.resolveTarget(out.Target)
	if err != nil {
		return 0, err
	}
	var cost uint64
	switch {
	case hit && pair.rand == out.Target:
		cost = uint64(p.cfg.TakenBubble)
		cost += p.rpcPredictionTax(out.Target)
		p.pc = nextUPC
		cost += p.redirectFill(p.storageAddr(nextUPC), p.cfg.FetchAhead)
	default:
		if hit {
			p.stats.BPred.BTBWrongTgt++
		} else {
			p.stats.BPred.BTBMisses++
		}
		cost = uint64(p.cfg.DecodeRedirect)
		if p.cfg.Mode == ModeVCFR {
			// A direct transfer's randomized target is an immediate: the
			// pre-decode pipeline exposes it while the front end is still
			// running ahead, so the walk overlaps the fetch-ahead window.
			_, _, stall := p.drcLookup(lookupDerand, out.Target, p.cfg.FetchAhead)
			p.stats.DRCStall += stall
			cost += stall
		}
		p.pc = nextUPC
		cost += p.redirectFill(p.storageAddr(nextUPC), int(cost))
	}
	p.btb.install(idx, targetPair{orig: nextUPC, rand: out.Target})
	return cost, nil
}

// indirectResolve handles register-indirect transfers: BTB-predicted when the
// stored randomized target matches the register value; a full misprediction
// otherwise.
func (p *Pipeline) indirectResolve(idx uint32, in isa.Inst, out emu.Outcome) (uint64, error) {
	p.stats.BPred.BTBLookups++
	pair, hit := p.btb.lookup(idx)
	nextUPC, err := p.resolveTarget(out.Target)
	if err != nil {
		return 0, err
	}
	var cost uint64
	if hit && pair.rand == out.Target {
		cost = uint64(p.cfg.TakenBubble)
		cost += p.rpcPredictionTax(out.Target)
		p.pc = nextUPC
		cost += p.redirectFill(p.storageAddr(nextUPC), p.cfg.FetchAhead)
	} else {
		if hit {
			p.stats.BPred.IndirectWrong++
		} else {
			p.stats.BPred.BTBMisses++
		}
		cost = uint64(p.cfg.MispredictPenalty)
		if p.cfg.Mode == ModeVCFR {
			_, _, stall := p.drcLookup(lookupDerand, out.Target, p.cfg.MispredictPenalty)
			p.stats.DRCStall += stall
			cost += stall
		}
		p.pc = nextUPC
		cost += p.redirectFill(p.storageAddr(nextUPC), int(cost))
	}
	p.btb.install(idx, targetPair{orig: nextUPC, rand: out.Target})
	return cost, nil
}

// rpcPredictionTax models the PredictOnRPC ablation: when the front end
// predicts in randomized space, even a correct taken prediction must
// de-randomize the predicted target through the DRC before fetch can use it
// (Sec. IV-D explains that VCFR avoids exactly this by predicting on UPC).
func (p *Pipeline) rpcPredictionTax(randTarget uint32) uint64 {
	if !p.cfg.PredictOnRPC || p.cfg.Mode != ModeVCFR {
		return 0
	}
	_, _, stall := p.drcLookup(lookupDerand, randTarget, p.cfg.TakenBubble)
	p.stats.DRCStall += stall
	return stall
}

// redirect handles the taken side of a mispredicted transfer: resolve the
// target (with DRC under VCFR) and refill the fetch stream.
func (p *Pipeline) redirect(in isa.Inst, out emu.Outcome, overlap int) (uint64, error) {
	nextUPC, err := p.resolveTarget(out.Target)
	if err != nil {
		return 0, err
	}
	var cost uint64
	if p.cfg.Mode == ModeVCFR {
		_, _, stall := p.drcLookup(lookupDerand, out.Target, overlap)
		p.stats.DRCStall += stall
		cost += stall
	}
	p.pc = nextUPC
	cost += p.redirectFill(p.storageAddr(nextUPC), overlap+int(cost))
	return cost, nil
}

// Run executes up to maxInsts instructions (0 means emu.DefaultMaxSteps) and
// returns the collected result.
func (p *Pipeline) Run(maxInsts uint64) (Result, error) {
	return p.RunContext(context.Background(), maxInsts)
}

// cancelCheckEvery is how many instructions RunContext executes between
// cancellation checks: frequent enough that a timed-out or abandoned run
// stops within microseconds of wall clock, rare enough that the check is
// invisible in the hot loop.
const cancelCheckEvery = 4096

// RunContext is Run with real mid-run cancellation: the context is polled
// every cancelCheckEvery instructions, so a cancelled or deadline-expired
// run stops promptly instead of executing to its instruction cap. The
// partial Result collected so far is returned alongside ctx's error.
func (p *Pipeline) RunContext(ctx context.Context, maxInsts uint64) (Result, error) {
	if maxInsts == 0 {
		maxInsts = emu.DefaultMaxSteps
	}
	next := p.stats.Instructions + cancelCheckEvery
	for p.stats.Instructions < maxInsts {
		if p.stats.Instructions >= next {
			next = p.stats.Instructions + cancelCheckEvery
			if err := ctx.Err(); err != nil {
				return p.result(), err
			}
		}
		target := next
		if maxInsts < target {
			target = maxInsts
		}
		running, err := p.advanceTo(target)
		if err != nil {
			return p.result(), err
		}
		if !running {
			break
		}
	}
	p.closeIntervals()
	return p.result(), nil
}

// advanceTo executes until the committed-instruction counter reaches target,
// the machine halts, or an error occurs. It is the re-enterable core of
// RunContext and the unit of scheduling for multi-tenant clusters: a quantum
// is one advanceTo call, and because the sampling edge (p.nextSample)
// persists on the pipeline, a tenant preempted mid-window resumes with every
// later snapshot still on an exact SampleEvery boundary.
//
// The block-cached fast path executes whole pre-decoded blocks per call,
// so every count-triggered event (quantum end, sample edge, context-switch
// boundary) is folded into the per-call instruction limit and lands exactly
// where the per-instruction path would put it. Replayed, injected, and
// traced runs take the per-instruction Step path: replay substitutes
// recorded outcomes for fetch/decode, injection must observe every raw
// fetch, and the tracer reads live cumulative counters.
func (p *Pipeline) advanceTo(target uint64) (bool, error) {
	// Interval sampling piggybacks on the same threshold pattern as the
	// quantum bound: one uint64 compare per instruction when sampling is
	// off, so the hot loop pays nothing for the spine.
	sampleEvery := p.cfg.SampleEvery
	if sampleEvery > 0 && p.nextSample == 0 {
		p.Registry() // build p.reg before the loop
		p.nextSample = p.stats.Instructions + sampleEvery
	}
	nextSample := ^uint64(0)
	if sampleEvery > 0 {
		nextSample = p.nextSample
	}
	useBlocks := p.bb != nil && p.replay == nil
	for p.stats.Instructions < target {
		if p.stats.Instructions >= nextSample {
			p.intervals = append(p.intervals, p.reg.Snapshot())
			nextSample = p.stats.Instructions + sampleEvery
			p.nextSample = nextSample
		}
		var (
			running bool
			err     error
		)
		if useBlocks && p.inject == nil && p.tracer == nil {
			limit := target
			if nextSample < limit {
				limit = nextSample
			}
			if every := p.cfg.ContextSwitchEvery; every > 0 {
				if nb := (p.stats.Instructions/every + 1) * every; nb < limit {
					limit = nb
				}
			}
			running, err = p.runBlocks(limit)
		} else {
			running, err = p.Step()
		}
		if err != nil || !running {
			return running, err
		}
	}
	return true, nil
}

// closeIntervals closes the final (possibly partial) sampling window unless
// the run ended exactly on the last sampled boundary. Idempotent; called
// once per finished (or cancelled) run.
func (p *Pipeline) closeIntervals() {
	if p.cfg.SampleEvery == 0 {
		return
	}
	if n := len(p.intervals); n == 0 || snapshotInsts(p.intervals[n-1]) < p.stats.Instructions {
		p.intervals = append(p.intervals, p.Registry().Snapshot())
	}
}

// snapshotInsts reads the committed-instruction count out of a snapshot.
func snapshotInsts(s stats.Snapshot) uint64 {
	v, _ := s.Uint("cpu.instructions")
	return v
}

func (p *Pipeline) result() Result {
	p.stats.ITLBAccesses = p.itlb.accesses
	p.stats.ITLBMisses = p.itlb.misses
	r := Result{
		Stats:    p.stats,
		IL1:      p.hier.IL1.Stats(),
		DL1:      p.hier.DL1.Stats(),
		L2:       p.hier.L2.Stats(),
		DRAM:     p.hier.DRAM.Stats(),
		BPred:    p.stats.BPred,
		Out:      p.state.Out,
		ExitCode: p.state.ExitCode,
		Halted:   p.state.Halted,
	}
	if p.drc != nil {
		r.DRC = p.drc.stats
	}
	r.Intervals = p.intervals
	return r
}
