package cpu

import (
	"strings"
	"testing"

	"vcfr/internal/ilr"
	"vcfr/internal/stats"
)

// TestIntervalDeltasSumToTotals is the sampling spine's conservation
// property: for every counter, the per-window increments (consecutive
// snapshot Deltas, with the first window measured against zero) must sum to
// exactly the run's final total, and every mid-run snapshot must be monotonic
// with respect to its predecessor. A counter that is ever decremented, or a
// sampling hook that loses a window, breaks one of the two.
func TestIntervalDeltasSumToTotals(t *testing.T) {
	res := rewriteSrc(t, "callheavy", callHeavySrc)
	for _, mode := range []Mode{ModeBaseline, ModeNaiveILR, ModeVCFR} {
		for _, noCache := range []bool{false, true} {
			mode, noCache := mode, noCache
			name := mode.String() + "/block-cached"
			if noCache {
				name = mode.String() + "/per-instruction"
			}
			t.Run(name, func(t *testing.T) {
				checkIntervalConservation(t, res, mode, noCache)
			})
		}
	}
}

func checkIntervalConservation(t *testing.T, res *ilr.Result, mode Mode, noCache bool) {
	const every = 1000
	out := runPipe(t, res, mode, func(c *Config) {
		c.SampleEvery = every
		c.NoBlockCache = noCache
	})
	snaps := out.Intervals
	if len(snaps) < 2 {
		t.Fatalf("got %d snapshots, want >= 2 (run is %d instructions, window %d)",
			len(snaps), out.Stats.Instructions, every)
	}

	for i := 1; i < len(snaps); i++ {
		if err := snaps[i].Monotonic(snaps[i-1]); err != nil {
			t.Fatalf("snapshot %d not monotonic over %d: %v", i, i-1, err)
		}
	}

	// No snapshot may observe an unflushed partial block: every mid-run
	// snapshot must land exactly on a sample edge (a multiple of the
	// window), and consecutive edges must be exactly one window apart. Only
	// the final snapshot — the run-end close of the last partial window —
	// may fall off-edge. This is the property the block executor's batched
	// counter flush has to preserve.
	for i, s := range snaps[:len(snaps)-1] {
		n := snapshotInsts(s)
		if n%every != 0 {
			t.Errorf("snapshot %d taken at %d instructions: mid-block observation (window %d)",
				i, n, every)
		}
		if want := uint64(every) * uint64(i+1); n != want {
			t.Errorf("snapshot %d at %d instructions, want edge %d", i, n, want)
		}
	}

	// Accumulate the window increments counter by counter.
	sums := make(map[string]uint64)
	var prev stats.Snapshot
	for i, s := range snaps {
		win := s
		if i > 0 {
			d, err := s.Delta(prev)
			if err != nil {
				t.Fatalf("Delta(%d, %d): %v", i, i-1, err)
			}
			win = d
		}
		win.Each(func(d stats.Desc, v stats.Value) {
			if d.Kind == stats.KindCounter {
				sums[d.Name] += v.U
			}
		})
		prev = s
	}

	// The sums must equal the finished run's totals. Result.Registry
	// registers drc.* unconditionally while the live registry only has
	// them under VCFR; a name the live run never sampled must total 0.
	final := out.Registry().Snapshot()
	checked := 0
	final.Each(func(d stats.Desc, v stats.Value) {
		if d.Kind != stats.KindCounter {
			return
		}
		checked++
		got, sampled := sums[d.Name]
		if !sampled && v.U != 0 {
			t.Errorf("%s: final total %d but counter never sampled", d.Name, v.U)
			return
		}
		if got != v.U {
			t.Errorf("%s: interval deltas sum to %d, final total %d", d.Name, got, v.U)
		}
	})
	if checked == 0 {
		t.Fatal("final registry exposed no counters")
	}
	if sums["cpu.instructions"] != out.Stats.Instructions {
		t.Errorf("cpu.instructions deltas sum to %d, Result says %d",
			sums["cpu.instructions"], out.Stats.Instructions)
	}
}

// TestIntervalSnapshotsCacheInvariant pins the sampled series itself: the
// block-cached run's snapshots must equal the per-instruction path's
// value-for-value, including the final partial window. A batched flush that
// lands a single counter increment in the wrong window fails this even if
// conservation (sums-to-totals) still holds.
func TestIntervalSnapshotsCacheInvariant(t *testing.T) {
	res := rewriteSrc(t, "callheavy", callHeavySrc)
	for _, mode := range []Mode{ModeBaseline, ModeNaiveILR, ModeVCFR} {
		t.Run(mode.String(), func(t *testing.T) {
			run := func(noCache bool) []stats.Snapshot {
				// 997 is prime: no block boundary alignment with edges.
				return runPipe(t, res, mode, func(c *Config) {
					c.SampleEvery = 997
					c.NoBlockCache = noCache
				}).Intervals
			}
			cached, direct := run(false), run(true)
			if len(cached) != len(direct) {
				t.Fatalf("snapshot counts diverge: cached %d, direct %d", len(cached), len(direct))
			}
			for i := range cached {
				d, err := cached[i].Delta(direct[i])
				if err != nil {
					t.Fatalf("snapshot %d: %v", i, err)
				}
				d.Each(func(desc stats.Desc, v stats.Value) {
					if v.U != 0 || v.G != 0 || v.F != 0 {
						t.Errorf("snapshot %d: %s diverges by %d/%d/%g between cached and direct",
							i, desc.Name, v.U, v.G, v.F)
					}
				})
			}
		})
	}
}

// TestSamplingOffKeepsIntervalsEmpty pins the default: no SampleEvery, no
// snapshots, no per-run allocation.
func TestSamplingOffKeepsIntervalsEmpty(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	out := runPipe(t, res, ModeVCFR, nil)
	if len(out.Intervals) != 0 {
		t.Errorf("sampling off produced %d snapshots, want 0", len(out.Intervals))
	}
}

// TestClusterRegistriesLabelled checks the multi-tenant dimension: each
// tenant's registry carries core="<pin>",tenant="<i>" labels on every entry,
// so per-tenant series stay distinguishable when merged into one exposition —
// including when several tenants time-share one core.
func TestClusterRegistriesLabelled(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	cfg := DefaultConfig(ModeVCFR)
	procs := []ClusterProc{
		{Img: res.VCFR, Trans: res.Tables, RandRA: res.RandRA},
		{Img: res.VCFR, Trans: res.Tables, RandRA: res.RandRA},
	}
	for _, tc := range []struct {
		name  string
		cores int
		want  []string
	}{
		{"one-per-core", 2, []string{`core="0",tenant="0"`, `core="1",tenant="1"`}},
		{"time-shared", 1, []string{`core="0",tenant="0"`, `core="0",tenant="1"`}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cl, err := NewScheduledCluster(cfg, SchedConfig{Cores: tc.cores}, procs)
			if err != nil {
				t.Fatal(err)
			}
			regs := cl.Registries()
			if len(regs) != len(procs) {
				t.Fatalf("Registries() = %d, want one per tenant", len(regs))
			}
			for i, r := range regs {
				want := tc.want[i]
				if r.Labels() != want {
					t.Errorf("tenant %d labels = %q, want %q", i, r.Labels(), want)
				}
				s := r.Snapshot()
				if s.Len() == 0 {
					t.Fatalf("tenant %d registry is empty", i)
				}
				sched := false
				s.Each(func(d stats.Desc, _ stats.Value) {
					if d.Labels != want {
						t.Errorf("tenant %d entry %s labels = %q, want %q", i, d.Name, d.Labels, want)
					}
					if d.Name == "sched.quanta" {
						sched = true
					}
				})
				if !sched {
					t.Errorf("tenant %d registry misses the pinned core's sched.* counters", i)
				}
			}
		})
	}
}

// TestClusterIntervalConservation extends the conservation property to the
// labeled multi-tenant dimension: with several tenants time-sharing a core
// under the quantum scheduler (context switches flushing the DRC and block
// cache between them), each tenant's interval deltas must still sum to that
// tenant's final totals, every mid-run snapshot must land on an exact
// SampleEvery edge of the tenant's own instruction counter, and the series
// must stay monotonic. Preemption mid-window must neither lose nor double a
// window.
func TestClusterIntervalConservation(t *testing.T) {
	res := rewriteSrc(t, "callheavy", callHeavySrc)
	const every = 1000
	cfg := DefaultConfig(ModeVCFR)
	cfg.SampleEvery = every
	proc := ClusterProc{Img: res.VCFR, Trans: res.Tables, RandRA: res.RandRA}
	cl, err := NewScheduledCluster(cfg, SchedConfig{Cores: 2, Quantum: 1531},
		[]ClusterProc{proc, proc, proc, proc})
	if err != nil {
		t.Fatal(err)
	}
	out, err := cl.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	sstats := cl.SchedStats()
	if sstats[0].Switches == 0 || sstats[1].Switches == 0 {
		t.Fatalf("no context switches under 2 tenants/core (sched: %+v) — property not exercised", sstats)
	}
	regs := cl.Registries()
	for ti, res := range out {
		snaps := res.Intervals
		if len(snaps) < 2 {
			t.Fatalf("tenant %d: got %d snapshots, want >= 2", ti, len(snaps))
		}
		for i := 1; i < len(snaps); i++ {
			if err := snaps[i].Monotonic(snaps[i-1]); err != nil {
				t.Fatalf("tenant %d: snapshot %d not monotonic over %d: %v", ti, i, i-1, err)
			}
		}
		for i, s := range snaps[:len(snaps)-1] {
			n := snapshotInsts(s)
			if want := uint64(every) * uint64(i+1); n != want {
				t.Errorf("tenant %d: snapshot %d at %d instructions, want edge %d", ti, i, n, want)
			}
		}
		sums := make(map[string]uint64)
		var prev stats.Snapshot
		for i, s := range snaps {
			win := s
			if i > 0 {
				d, err := s.Delta(prev)
				if err != nil {
					t.Fatalf("tenant %d: Delta(%d, %d): %v", ti, i, i-1, err)
				}
				win = d
			}
			win.Each(func(d stats.Desc, v stats.Value) {
				if d.Kind == stats.KindCounter {
					sums[d.Name] += v.U
				}
			})
			prev = s
		}
		// Totals come from the tenant's labeled live registry. The sched.*
		// counters are core-scoped (shared with co-tenants) and not part of
		// the tenant's sampled series, so they are excluded; everything else
		// — including the core-shared cache levels, static once the cluster
		// has halted — must be conserved window by window.
		final := regs[ti].Snapshot()
		checked := 0
		final.Each(func(d stats.Desc, v stats.Value) {
			if d.Kind != stats.KindCounter || strings.HasPrefix(d.Name, "sched.") {
				return
			}
			checked++
			if got := sums[d.Name]; got != v.U {
				t.Errorf("tenant %d: %s interval deltas sum to %d, final total %d", ti, d.Name, got, v.U)
			}
		})
		if checked == 0 {
			t.Fatalf("tenant %d: labeled registry exposed no counters", ti)
		}
		if sums["cpu.instructions"] != res.Stats.Instructions {
			t.Errorf("tenant %d: cpu.instructions deltas sum to %d, Result says %d",
				ti, sums["cpu.instructions"], res.Stats.Instructions)
		}
	}
}
