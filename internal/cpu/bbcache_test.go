// Block-cache differential tests: every behavior of the basic-block cache
// is checked against the per-instruction path (Config.NoBlockCache), which
// the lockstep suite already proves equivalent to the golden interpreter.
package cpu_test

import (
	"fmt"
	"reflect"
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/cpu"
	"vcfr/internal/emu"
	"vcfr/internal/ilr"
	"vcfr/internal/isa"
	"vcfr/internal/program"
	"vcfr/internal/workloads"
)

// pipeFor builds one pipeline for a rewritten image in the given mode.
func pipeFor(t testing.TB, res *ilr.Result, mode cpu.Mode, input []byte,
	mutate func(*cpu.Config)) *cpu.Pipeline {
	t.Helper()
	cfg := cpu.DefaultConfig(mode)
	if mutate != nil {
		mutate(&cfg)
	}
	var (
		img    *program.Image
		trans  emu.Translator
		randRA map[uint32]uint32
	)
	switch mode {
	case cpu.ModeBaseline:
		img = res.Orig
	case cpu.ModeNaiveILR:
		img, trans = res.Scattered, res.Tables
	case cpu.ModeVCFR:
		img, trans, randRA = res.VCFR, res.Tables, res.RandRA
	}
	p, err := cpu.New(img, cfg, trans, randRA)
	if err != nil {
		t.Fatal(err)
	}
	p.SetInput(input)
	return p
}

// diffResults fails the test when two Results differ, naming the first
// diverging field instead of dumping both structs.
func diffResults(t *testing.T, label string, cached, direct cpu.Result) {
	t.Helper()
	if reflect.DeepEqual(cached, direct) {
		return
	}
	cv, dv := reflect.ValueOf(cached), reflect.ValueOf(direct)
	for i := 0; i < cv.NumField(); i++ {
		if !reflect.DeepEqual(cv.Field(i).Interface(), dv.Field(i).Interface()) {
			t.Errorf("%s: Result.%s diverged\n cached: %+v\n direct: %+v", label,
				cv.Type().Field(i).Name, cv.Field(i).Interface(), dv.Field(i).Interface())
		}
	}
}

// TestBlockCacheResultIdentical sweeps the timing-relevant configuration
// matrix over random workloads and all three modes: the block-cached run's
// full Result (every counter, every cache/DRC/predictor stat, the sampled
// snapshots, program output) must equal the per-instruction path's exactly.
func TestBlockCacheResultIdentical(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*cpu.Config)
	}{
		{"default", nil},
		{"sampled", func(c *cpu.Config) { c.SampleEvery = 1531 }},
		{"ctxswitch", func(c *cpu.Config) { c.ContextSwitchEvery = 2048 }},
		{"sampled-ctxswitch", func(c *cpu.Config) {
			c.SampleEvery = 1531
			c.ContextSwitchEvery = 1531 // coinciding edges
		}},
		{"dual-issue", func(c *cpu.Config) { c.IssueWidth = 2 }},
		{"drc2", func(c *cpu.Config) { c.DRC2Entries = 256 }},
		{"predict-rpc", func(c *cpu.Config) { c.PredictOnRPC = true }},
		{"split-drc", func(c *cpu.Config) { c.DRCSplit = true }},
	}
	for seed := uint32(300); seed < 303; seed++ {
		w := workloads.Random(seed)
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		for _, mode := range []cpu.Mode{cpu.ModeBaseline, cpu.ModeNaiveILR, cpu.ModeVCFR} {
			for _, m := range mutations {
				t.Run(fmt.Sprintf("rand-%d/%v/%s", seed, mode, m.name), func(t *testing.T) {
					const cap = 40_000
					run := func(noCache bool) cpu.Result {
						p := pipeFor(t, res, mode, w.Input, func(c *cpu.Config) {
							if m.mut != nil {
								m.mut(c)
							}
							c.NoBlockCache = noCache
						})
						r, err := p.Run(cap)
						if err != nil {
							t.Fatalf("noCache=%v: %v", noCache, err)
						}
						return r
					}
					diffResults(t, m.name, run(false), run(true))
				})
			}
		}
	}
}

// selfModifySrc prints a character, then bumps the immediate byte inside
// the printing instruction itself — classic self-modifying code. A stale
// cached decode prints "AAAA"; correct invalidation prints "ABCD".
const selfModifySrc = `
	.entry main
	.text 0x1000
main:
	movi r5, 4
loop:
patch:
	movi r1, 65          ; the patched instruction; imm32 starts at patch+2
	sys 1                ; putchar(r1)
	movi r3, patch
	loadb r4, [r3+2]
	addi r4, 1
	storeb [r3+2], r4    ; 'A' -> 'B' -> 'C' -> 'D'
	subi r5, 1
	cmpi r5, 0
	jg loop
	movi r1, 0
	sys 0
`

// TestBlockCacheSelfModify proves the store watch: a program that rewrites
// an instruction it is about to re-execute must see its own writes, block
// cache or not.
func TestBlockCacheSelfModify(t *testing.T) {
	img, err := asm.Assemble("selfmod", selfModifySrc)
	if err != nil {
		t.Fatal(err)
	}
	run := func(noCache bool) cpu.Result {
		cfg := cpu.DefaultConfig(cpu.ModeBaseline)
		cfg.NoBlockCache = noCache
		p, err := cpu.New(img, cfg, nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		r, err := p.Run(10_000)
		if err != nil {
			t.Fatalf("noCache=%v: %v", noCache, err)
		}
		return r
	}
	cached, direct := run(false), run(true)
	if got := string(cached.Out); got != "ABCD" {
		t.Errorf("block-cached self-modifying run printed %q, want %q", got, "ABCD")
	}
	diffResults(t, "selfmod", cached, direct)
}

// TestBlockCacheInjectorBypass proves SetInjector forces the raw-fetch
// path: a FetchBytes hook must observe every single fetch even on code the
// cache already holds, and disarming mid-run must return results to the
// uninjected baseline exactly.
func TestBlockCacheInjectorBypass(t *testing.T) {
	const warm, armed, cap = 5_000, 9_000, 30_000
	w, res := longRunningWorkload(t, 310, armed)
	run := func(noCache bool) (cpu.Result, uint64) {
		p := pipeFor(t, res, cpu.ModeVCFR, w.Input, func(c *cpu.Config) {
			c.NoBlockCache = noCache
		})
		// Warm the cache, then arm hooks, then disarm and finish.
		if _, err := p.Run(warm); err != nil {
			t.Fatal(err)
		}
		var fetches uint64
		p.SetInjector(&cpu.InjectHooks{
			FetchBytes: func(seq uint64, addr uint32, buf []byte) { fetches++ },
		})
		if _, err := p.Run(armed); err != nil {
			t.Fatal(err)
		}
		p.SetInjector(nil)
		r, err := p.Run(cap)
		if err != nil {
			t.Fatal(err)
		}
		return r, fetches
	}
	cached, cachedFetches := run(false)
	direct, directFetches := run(true)
	if want := uint64(armed - warm); cachedFetches != want {
		t.Errorf("FetchBytes fired %d times on the block-cached pipeline, want %d (every armed fetch)",
			cachedFetches, want)
	}
	if cachedFetches != directFetches {
		t.Errorf("fetch-hook counts diverge: cached %d, direct %d", cachedFetches, directFetches)
	}
	diffResults(t, "inject", cached, direct)
}

// longRunningWorkload scans random-workload seeds from start for one whose
// baseline run executes at least minInsts instructions, so tests that need
// a mid-run event window don't race the program's natural completion.
func longRunningWorkload(t testing.TB, start uint32, minInsts uint64) (workloads.Workload, *ilr.Result) {
	t.Helper()
	for seed := start; seed < start+50; seed++ {
		w := workloads.Random(seed)
		res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: int64(seed)})
		if err != nil {
			t.Fatal(err)
		}
		p := pipeFor(t, res, cpu.ModeBaseline, w.Input, nil)
		r, err := p.Run(minInsts + 1)
		if err == nil && r.Stats.Instructions > minInsts {
			return w, res
		}
	}
	t.Fatalf("no random workload from seed %d runs %d+ instructions", start, minInsts)
	return workloads.Workload{}, nil
}

// TestBlockCacheExternalPoke proves the documented InvalidateBlocks
// contract: memory mutated from outside the pipeline is picked up once the
// caller invalidates, identically to the per-instruction path.
func TestBlockCacheExternalPoke(t *testing.T) {
	w := workloads.Random(311)
	res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 311})
	if err != nil {
		t.Fatal(err)
	}
	// Pick an address inside the original text segment and a byte value
	// that decodes (a nop) so the poke changes behavior without faulting.
	text := res.Orig.Seg("text")
	if text == nil {
		t.Fatal("no text segment")
	}
	poke := text.Addr + uint32(len(text.Data))/2
	const seg1, cap = 4_000, 20_000
	run := func(noCache bool) (cpu.Result, error) {
		p := pipeFor(t, res, cpu.ModeBaseline, w.Input, func(c *cpu.Config) {
			c.NoBlockCache = noCache
		})
		if _, err := p.Run(seg1); err != nil {
			return cpu.Result{}, err
		}
		for i := uint32(0); i < 16; i++ {
			p.State().Mem.SetByte(poke+i, byte(isa.OpNop))
		}
		p.InvalidateBlocks()
		return p.Run(cap)
	}
	cached, errC := run(false)
	direct, errD := run(true)
	if (errC == nil) != (errD == nil) || (errC != nil && errC.Error() != errD.Error()) {
		t.Fatalf("error divergence after external poke: cached=%v direct=%v", errC, errD)
	}
	diffResults(t, "poke", cached, direct)
}

// TestBlockCacheStatsCounters sanity-checks the diagnostic counters and the
// disabled-cache zero value.
func TestBlockCacheStatsCounters(t *testing.T) {
	w := workloads.Random(312)
	res, err := ilr.Rewrite(w.Img, ilr.Options{Seed: 312})
	if err != nil {
		t.Fatal(err)
	}
	p := pipeFor(t, res, cpu.ModeBaseline, w.Input, nil)
	if _, err := p.Run(20_000); err != nil {
		t.Fatal(err)
	}
	st := p.BlockCacheStats()
	if st.Blocks == 0 || st.Insts < st.Blocks || st.Hits == 0 {
		t.Errorf("implausible block-cache stats after a hot run: %+v", st)
	}
	flushes := st.Flushes
	p.InvalidateBlocks()
	if got := p.BlockCacheStats().Flushes; got != flushes+1 {
		t.Errorf("InvalidateBlocks: flushes %d, want %d", got, flushes+1)
	}

	off := pipeFor(t, res, cpu.ModeBaseline, w.Input, func(c *cpu.Config) { c.NoBlockCache = true })
	if _, err := off.Run(5_000); err != nil {
		t.Fatal(err)
	}
	if got := off.BlockCacheStats(); got != (cpu.BlockCacheStats{}) {
		t.Errorf("disabled cache reports nonzero stats: %+v", got)
	}
	off.InvalidateBlocks() // must be a no-op, not a panic
}
