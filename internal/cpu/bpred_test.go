package cpu

import "testing"

func TestGshareLearnsLoop(t *testing.T) {
	g := newGshare(10)
	// A branch taken 9 of every 10 times (loop back-edge): after warm-up,
	// the predictor should be right most of the time.
	correct := 0
	for i := 0; i < 1000; i++ {
		taken := i%10 != 9
		if g.predict(0x1234) == taken {
			correct++
		}
		g.update(0x1234, taken)
	}
	if correct < 800 {
		t.Errorf("gshare correct %d/1000 on a 90%% biased branch", correct)
	}
}

func TestGshareAlternatingWithHistory(t *testing.T) {
	g := newGshare(10)
	// A strictly alternating branch is perfectly predictable with global
	// history once warmed up.
	correct := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if i >= 1000 && g.predict(0x40) == taken {
			correct++
		}
		g.update(0x40, taken)
	}
	if correct < 950 {
		t.Errorf("gshare correct %d/1000 on alternating branch", correct)
	}
}

func TestBTBInstallLookup(t *testing.T) {
	b := newBTB(16, 4)
	if _, hit := b.lookup(0x100); hit {
		t.Error("empty BTB hit")
	}
	b.install(0x100, targetPair{orig: 0x200, rand: 0x9200})
	pair, hit := b.lookup(0x100)
	if !hit || pair.orig != 0x200 || pair.rand != 0x9200 {
		t.Errorf("lookup = %+v, %v", pair, hit)
	}
	// Reinstall updates in place.
	b.install(0x100, targetPair{orig: 0x300, rand: 0x9300})
	pair, _ = b.lookup(0x100)
	if pair.orig != 0x300 {
		t.Error("reinstall did not update")
	}
}

func TestBTBLRUWithinSet(t *testing.T) {
	b := newBTB(8, 4) // 2 sets x 4 ways
	// Fill one set (pcs mapping to set 0) beyond capacity.
	pcs := []uint32{0x00, 0x10, 0x20, 0x30, 0x40} // (pc>>1)&1 == 0 for all
	for _, pc := range pcs {
		b.install(pc, targetPair{orig: pc + 1})
	}
	if _, hit := b.lookup(0x00); hit {
		t.Error("LRU victim survived")
	}
	for _, pc := range pcs[1:] {
		if _, hit := b.lookup(pc); !hit {
			t.Errorf("entry %#x evicted prematurely", pc)
		}
	}
}

func TestRASPushPop(t *testing.T) {
	r := newRAS(4)
	if _, ok := r.pop(); ok {
		t.Error("empty RAS popped")
	}
	for i := uint32(1); i <= 3; i++ {
		r.push(targetPair{orig: i})
	}
	for want := uint32(3); want >= 1; want-- {
		pair, ok := r.pop()
		if !ok || pair.orig != want {
			t.Errorf("pop = %+v, %v, want orig %d", pair, ok, want)
		}
	}
	if _, ok := r.pop(); ok {
		t.Error("drained RAS popped")
	}
}

func TestRASOverflowLosesOldest(t *testing.T) {
	r := newRAS(2)
	r.push(targetPair{orig: 1})
	r.push(targetPair{orig: 2})
	r.push(targetPair{orig: 3}) // overflow: 1 is lost
	if p, ok := r.pop(); !ok || p.orig != 3 {
		t.Errorf("pop1 = %+v", p)
	}
	if p, ok := r.pop(); !ok || p.orig != 2 {
		t.Errorf("pop2 = %+v", p)
	}
	if _, ok := r.pop(); ok {
		t.Error("overflowed entry resurfaced")
	}
}

func TestBPredStatsAccuracy(t *testing.T) {
	s := BPredStats{CondLookups: 100, CondMispred: 5}
	if got := s.CondAccuracy(); got != 0.95 {
		t.Errorf("accuracy = %v", got)
	}
	if (BPredStats{}).CondAccuracy() != 0 {
		t.Error("zero lookups accuracy not 0")
	}
}
