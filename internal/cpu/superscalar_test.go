package cpu

import (
	"testing"

	"vcfr/internal/asm"
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

func TestDualIssueImprovesIPC(t *testing.T) {
	res := rewriteSrc(t, "fib", fibSrc)
	single := runPipe(t, res, ModeBaseline, nil)
	dual := runPipe(t, res, ModeBaseline, func(c *Config) { c.IssueWidth = 2 })
	if string(single.Out) != string(dual.Out) {
		t.Fatalf("issue width changed output: %q vs %q", single.Out, dual.Out)
	}
	if dual.Stats.IPC() <= single.Stats.IPC() {
		t.Errorf("dual-issue IPC %.3f <= single %.3f", dual.Stats.IPC(), single.Stats.IPC())
	}
	if dual.Stats.IPC() > 2*single.Stats.IPC() {
		t.Errorf("dual-issue IPC %.3f more than doubled %.3f", dual.Stats.IPC(), single.Stats.IPC())
	}
}

func TestDualIssueVCFRStillCorrect(t *testing.T) {
	res := rewriteSrc(t, "calls", callHeavySrc)
	out := runPipe(t, res, ModeVCFR, func(c *Config) { c.IssueWidth = 2 })
	if string(out.Out) != "144000" {
		t.Errorf("dual-issue VCFR output = %q", out.Out)
	}
	if out.DRC.Lookups == 0 {
		t.Error("DRC unused under dual-issue VCFR")
	}
}

func TestIssueWidthValidation(t *testing.T) {
	cfg := DefaultConfig(ModeBaseline)
	cfg.IssueWidth = 0
	if err := cfg.Validate(); err == nil {
		t.Error("width 0 accepted")
	}
	cfg.IssueWidth = 5
	if err := cfg.Validate(); err == nil {
		t.Error("width 5 accepted")
	}
}

func TestIssueStateHazards(t *testing.T) {
	// Direct unit checks on the pairing rules.
	var st issueState

	// Two independent adds pair.
	add12 := decodeOne(t, "add r1, r2")
	add34 := decodeOne(t, "add r3, r4")
	if st.coIssues(2, add12, outNone(), false) {
		t.Error("first instruction of a group co-issued")
	}
	if !st.coIssues(2, add34, outNone(), false) {
		t.Error("independent add did not pair")
	}

	// RAW: second reads what the first wrote.
	st = issueState{}
	st.coIssues(2, add12, outNone(), false) // writes r1
	useR1 := decodeOne(t, "add r5, r1")
	if st.coIssues(2, useR1, outNone(), false) {
		t.Error("RAW hazard paired")
	}

	// WAW: both write r1.
	st = issueState{}
	st.coIssues(2, add12, outNone(), false)
	movi1 := decodeOne(t, "movi r1, 5")
	if st.coIssues(2, movi1, outNone(), false) {
		t.Error("WAW hazard paired")
	}

	// Width cap: third simple op does not join a 2-wide group.
	st = issueState{}
	st.coIssues(2, add12, outNone(), false)
	st.coIssues(2, add34, outNone(), false)
	add56 := decodeOne(t, "add r5, r6")
	if st.coIssues(2, add56, outNone(), false) {
		t.Error("third instruction joined a 2-wide group")
	}

	// A stalled instruction never pairs.
	st = issueState{}
	st.coIssues(2, add12, outNone(), false)
	if st.coIssues(2, add34, outNone(), true) {
		t.Error("stalled instruction paired")
	}
}

// decodeOne assembles a single instruction for unit tests.
func decodeOne(t *testing.T, line string) isa.Inst {
	t.Helper()
	img := asm.MustAssemble("one", ".entry main\nmain:\n\t"+line+"\n\thalt")
	insts, err := asm.Disassemble(img)
	if err != nil {
		t.Fatal(err)
	}
	return insts[0]
}

func outNone() emu.Outcome { return emu.Outcome{} }
