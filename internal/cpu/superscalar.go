package cpu

import (
	"vcfr/internal/emu"
	"vcfr/internal/isa"
)

// This file implements the dual-issue pairing logic for Config.IssueWidth > 1
// — the repository's take on the paper's future-work direction of wider
// cores. The model is a classic in-order multi-issue machine: an instruction
// co-issues with its predecessors in the same cycle when
//
//   - it is a simple ALU/move instruction (no memory access, no control
//     transfer, no syscall),
//   - it has no read-after-write or write-after-write hazard against the
//     instructions already issued this cycle, and
//   - an issue slot is free and nothing stalled this cycle.
//
// Co-issued instructions contribute zero additional cycles. Everything else
// (stalls, transfers, memory) starts a new cycle group, exactly as before.

// regSet is a bitmask over the 16 architectural registers.
type regSet uint16

func (s regSet) has(r isa.Reg) bool { return s&(1<<uint(r)) != 0 }
func (s *regSet) add(r isa.Reg)     { *s |= 1 << uint(r) }

// instReads returns the registers the instruction reads.
func instReads(in isa.Inst) regSet {
	var s regSet
	switch in.Op {
	case isa.OpMovRR:
		s.add(in.Rs)
	case isa.OpMovRI:
		// immediate only
	case isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr, isa.OpXor, isa.OpShl,
		isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv, isa.OpMod,
		isa.OpCmp, isa.OpTest:
		s.add(in.Rd)
		s.add(in.Rs)
	case isa.OpNeg, isa.OpNot, isa.OpAddI, isa.OpSubI, isa.OpAndI, isa.OpOrI,
		isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpSarI, isa.OpCmpI:
		s.add(in.Rd)
	case isa.OpLea:
		s.add(in.Rs)
	}
	return s
}

// instWrite returns the register the instruction writes, if any.
func instWrite(in isa.Inst) (isa.Reg, bool) {
	switch in.Op {
	case isa.OpMovRR, isa.OpMovRI, isa.OpAdd, isa.OpSub, isa.OpAnd, isa.OpOr,
		isa.OpXor, isa.OpShl, isa.OpShr, isa.OpSar, isa.OpMul, isa.OpDiv,
		isa.OpMod, isa.OpNeg, isa.OpNot, isa.OpAddI, isa.OpSubI, isa.OpAndI,
		isa.OpOrI, isa.OpXorI, isa.OpShlI, isa.OpShrI, isa.OpSarI, isa.OpLea:
		return in.Rd, true
	}
	return 0, false
}

// pairable reports whether the instruction is eligible for co-issue at all:
// simple ALU/move work with no side channels into memory or control flow.
func pairable(in isa.Inst, out emu.Outcome) bool {
	if in.Class() != isa.ClassSeq || out.MemKind != emu.MemNone {
		return false
	}
	switch in.Op {
	case isa.OpMul, isa.OpDiv, isa.OpMod, isa.OpSys:
		return false // long-latency or privileged
	}
	return true
}

// issueState tracks the current cycle's issue group.
type issueState struct {
	slots   int    // instructions issued in the current group
	written regSet // registers written by the group so far
}

// coIssues decides whether the instruction joins the current group (true:
// zero-cycle issue) or starts a new one. It updates the state either way.
func (st *issueState) coIssues(width int, in isa.Inst, out emu.Outcome, stalled bool) bool {
	if width <= 1 || stalled || !pairable(in, out) {
		st.reset(in, out)
		return false
	}
	if st.slots == 0 || st.slots >= width {
		st.reset(in, out)
		return false
	}
	reads := instReads(in)
	if reads&st.written != 0 {
		st.reset(in, out) // RAW against the group
		return false
	}
	if w, ok := instWrite(in); ok {
		if st.written.has(w) {
			st.reset(in, out) // WAW against the group
			return false
		}
		st.written.add(w)
	}
	st.slots++
	return true
}

// reset starts a new issue group seeded with the instruction.
func (st *issueState) reset(in isa.Inst, out emu.Outcome) {
	st.slots = 1
	st.written = 0
	if pairable(in, out) {
		if w, ok := instWrite(in); ok {
			st.written.add(w)
		}
	} else {
		// Non-pairable instructions occupy the whole group.
		st.slots = 1 << 16 // poison: nothing can join
	}
}
